// Benchmarks regenerating every table and figure of the paper's
// evaluation, one testing.B benchmark per artifact:
//
//	BenchmarkFigure1            — Figure 1 (transitive-arc retention)
//	BenchmarkTable1Survey       — Table 1 (registry rendering)
//	BenchmarkTable2Algorithms   — Table 2 (the six algorithms, timed)
//	BenchmarkTable3Structure    — Table 3 (benchmark generation + stats)
//	BenchmarkTable4N2           — Table 4 (n² approach per benchmark)
//	BenchmarkTable5TableFwd/Bwd — Table 5 (table building, both passes)
//	BenchmarkIntermediatePass   — Section 4 / conclusion 4 (level lists
//	                              vs reverse walk)
//	BenchmarkPairing            — conclusion 6 (construction direction ×
//	                              forward scheduling)
//	BenchmarkLandskovAblation   — conclusion 3 (transitive-arc avoidance)
//	BenchmarkWindowSweepN2      — Section 6's 300-400 window advice
//	BenchmarkMemoryModels       — Section 2's disambiguation policies
//	BenchmarkReservation        — Section 1's reservation-table method
//	BenchmarkRenaming           — false-dependence removal (extension)
//	BenchmarkDelaySlotFill      — the control-hazard pass (extension)
//	BenchmarkLoadLatencySweep   — scheduling value vs memory latency
//	BenchmarkBranchAndBound     — future work (optimal small blocks)
//
// Run with: go test -bench=. -benchmem
package daginsched_test

import (
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/dag"
	"daginsched/internal/delayslot"
	"daginsched/internal/heur"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/rename"
	"daginsched/internal/resource"
	"daginsched/internal/sched"
	"daginsched/internal/synth"
	"daginsched/internal/tables"
)

// benchSets caches generated benchmarks across sub-benchmarks.
var benchSets = func() map[string][]*block.Block {
	m := map[string][]*block.Block{}
	for _, p := range synth.Profiles() {
		m[p.Name] = p.Generate()
		if p.Name == "fpppp" {
			m["fpppp-1000"] = p.GenerateWindowed(1000)
			m["fpppp-2000"] = p.GenerateWindowed(2000)
			m["fpppp-4000"] = p.GenerateWindowed(4000)
		}
	}
	return m
}()

// table4Names are the benchmarks the paper ran under n² (it stopped at
// fpppp-1000: "excessive time and space requirements").
var table4Names = []string{
	"grep", "regex", "dfa", "cccp", "linpack", "lloops", "tomcatv", "nasa7", "fpppp-1000",
}

// table5Names adds the remaining windowed rows and full fpppp.
var table5Names = append(append([]string{}, table4Names...),
	"fpppp-2000", "fpppp-4000", "fpppp")

func runApproach(b *testing.B, blocks []*block.Block, ap tables.Approach) {
	b.Helper()
	m := machine.Pipe1()
	b.ReportAllocs()
	b.ResetTimer()
	var arcs float64
	for i := 0; i < b.N; i++ {
		st := tables.Run("bench", blocks, ap, m, 1)
		if st.Cycles <= 0 {
			b.Fatal("no work done")
		}
		arcs += st.ArcsAvg * float64(len(blocks))
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)*float64(len(blocks))/secs, "blocks/sec")
		b.ReportMetric(arcs/secs, "arcs/sec")
	}
}

func BenchmarkFigure1(b *testing.B) {
	m := machine.Pipe1()
	insts := tables.Figure1Block()
	blk := &block.Block{Name: "fig1", Insts: insts}
	rt := resource.NewTable(resource.MemExprModel)
	for i := 0; i < b.N; i++ {
		rt.PrepareBlock(blk.Insts)
		d := dag.TableForward{}.Build(blk, m, rt)
		a := heur.New(d, m)
		a.ComputeBackward()
		if a.MaxDelayToLeaf[0] != 20 {
			b.Fatalf("transitive arc lost: %d", a.MaxDelayToLeaf[0])
		}
	}
}

func BenchmarkTable1Survey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(tables.Table1()) < 100 {
			b.Fatal("survey truncated")
		}
	}
}

func BenchmarkTable2Algorithms(b *testing.B) {
	m := machine.Pipe1()
	blocks := benchSets["lloops"]
	for _, al := range sched.Table2() {
		b.Run(al.Name, func(b *testing.B) {
			bld := al.Builder()
			rt := resource.NewTable(resource.MemExprModel)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var cycles int64
				for _, blk := range blocks {
					rt.PrepareBlock(blk.Insts)
					d := bld.Build(blk, m, rt)
					cycles += int64(al.Run(d, m).Cycles)
				}
				if cycles <= 0 {
					b.Fatal("no cycles")
				}
			}
		})
	}
}

func BenchmarkTable3Structure(b *testing.B) {
	for _, p := range synth.Profiles() {
		b.Run(p.Name, func(b *testing.B) {
			rt := resource.NewTable(resource.MemExprModel)
			for i := 0; i < b.N; i++ {
				blocks := p.Generate()
				s := block.Measure(blocks, func(blk *block.Block) int {
					rt.PrepareBlock(blk.Insts)
					return rt.UniqueMemExprs()
				})
				if s.Insts != p.Insts {
					b.Fatalf("structure drifted: %d insts", s.Insts)
				}
			}
		})
	}
}

func BenchmarkTable4N2(b *testing.B) {
	ap := tables.Approaches()[0]
	for _, name := range table4Names {
		b.Run(name, func(b *testing.B) {
			runApproach(b, benchSets[name], ap)
		})
	}
}

func BenchmarkTable5TableFwd(b *testing.B) {
	ap := tables.Approaches()[1]
	for _, name := range table5Names {
		b.Run(name, func(b *testing.B) {
			runApproach(b, benchSets[name], ap)
		})
	}
}

func BenchmarkTable5TableBwd(b *testing.B) {
	ap := tables.Approaches()[2]
	for _, name := range table5Names {
		b.Run(name, func(b *testing.B) {
			runApproach(b, benchSets[name], ap)
		})
	}
}

// BenchmarkIntermediatePass quantifies conclusion 4: the level
// algorithm buys nothing over a reverse walk of the instruction list.
func BenchmarkIntermediatePass(b *testing.B) {
	m := machine.Pipe1()
	blocks := benchSets["fpppp"]
	rt := resource.NewTable(resource.MemExprModel)
	var dags []*dag.DAG
	for _, blk := range blocks {
		rt.PrepareBlock(blk.Insts)
		dags = append(dags, dag.TableForward{}.Build(blk, m, rt))
	}
	b.Run("reverse-walk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, d := range dags {
				heur.New(d, m).ComputeBackward()
			}
		}
	})
	b.Run("level-lists", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, d := range dags {
				heur.New(d, m).ComputeBackwardLevelLists()
			}
		}
	})
}

// BenchmarkPairing quantifies conclusion 6: pairing a DAG-construction
// direction with an opposite-direction scheduling pass makes no
// measurable difference; both feed the same forward scheduler here.
func BenchmarkPairing(b *testing.B) {
	blocks := benchSets["nasa7"]
	b.Run("fwd-construction", func(b *testing.B) {
		runApproach(b, blocks, tables.Approaches()[1])
	})
	b.Run("bwd-construction", func(b *testing.B) {
		runApproach(b, blocks, tables.Approaches()[2])
	})
}

// BenchmarkLandskovAblation quantifies conclusion 3's trade-off: what
// transitive-arc avoidance costs to build, next to plain table building
// (which keeps the timing-relevant arcs for free).
func BenchmarkLandskovAblation(b *testing.B) {
	m := machine.Pipe1()
	blocks := benchSets["tomcatv"]
	for _, bld := range []dag.Builder{
		dag.TableForward{}, dag.Landskov{}, dag.TableBackward{PreventTransitive: true},
	} {
		b.Run(bld.Name(), func(b *testing.B) {
			rt := resource.NewTable(resource.MemExprModel)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				arcs := 0
				for _, blk := range blocks {
					rt.PrepareBlock(blk.Insts)
					arcs += bld.Build(blk, m, rt).NumArcs
				}
				if arcs <= 0 {
					b.Fatal("no arcs")
				}
			}
		})
	}
}

// BenchmarkWindowSweepN2 sweeps the instruction window under the n²
// approach on fpppp, the experiment behind Section 6's advice that "an
// instruction window size ... of no more than 300-400 instructions
// should be maintained" for n² to stay practical. Cost grows roughly
// linearly in the window (quadratic per block × inversely fewer
// blocks).
func BenchmarkWindowSweepN2(b *testing.B) {
	p, _ := synth.ByName("fpppp")
	ap := tables.Approaches()[0]
	for _, w := range []int{100, 200, 400, 800, 1600} {
		blocks := p.GenerateWindowed(w)
		b.Run(windowName(w), func(b *testing.B) {
			runApproach(b, blocks, ap)
		})
	}
}

func windowName(w int) string {
	switch w {
	case 100:
		return "w100"
	case 200:
		return "w200"
	case 400:
		return "w400"
	case 800:
		return "w800"
	}
	return "w1600"
}

// BenchmarkMemoryModels compares Section 2's disambiguation policies:
// per-expression (the paper's), per-storage-class (Warren's
// observation), and single-resource serialization. Finer models build
// fewer arcs and schedule tighter code.
func BenchmarkMemoryModels(b *testing.B) {
	m := machine.Pipe1()
	blocks := benchSets["lloops"]
	for _, mm := range []resource.MemModel{
		resource.MemExprModel, resource.MemClassModel, resource.MemSingleModel,
	} {
		b.Run(mm.String(), func(b *testing.B) {
			rt := resource.NewTable(mm)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				arcs := 0
				for _, blk := range blocks {
					rt.PrepareBlock(blk.Insts)
					arcs += dag.TableForward{}.Build(blk, m, rt).NumArcs
				}
				b.ReportMetric(float64(arcs)/float64(len(blocks)), "arcs/block")
			}
		})
	}
}

// BenchmarkReservation times the Section 1 reservation-table scheduler
// against the in-order list scheduler on the FPU machine, where
// structural hazards are what the table exists to pack around.
func BenchmarkReservation(b *testing.B) {
	m := machine.FPU()
	blocks := benchSets["linpack"]
	rt := resource.NewTable(resource.MemExprModel)
	var dags []*dag.DAG
	for _, blk := range blocks {
		rt.PrepareBlock(blk.Insts)
		dags = append(dags, dag.TableForward{}.Build(blk, m, rt))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cycles int64
		for _, d := range dags {
			cycles += int64(sched.ReservationDefault(d, m).Cycles)
		}
		if cycles <= 0 {
			b.Fatal("no cycles")
		}
	}
}

// BenchmarkRenaming measures the register-renaming prepass: how fast
// it runs over a full benchmark and (via the reported metric) how many
// false-dependence arcs it deletes per block on lloops.
func BenchmarkRenaming(b *testing.B) {
	m := machine.Pipe1()
	blocks := benchSets["lloops"]
	rt := resource.NewTable(resource.MemExprModel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var removed int64
		for _, blk := range blocks {
			rt.PrepareBlock(blk.Insts)
			before := dag.TableForward{}.Build(blk, m, rt).NumArcs
			ren := rename.Block(blk.Insts)
			nb := *blk
			nb.Insts = ren.Insts
			rt.PrepareBlock(nb.Insts)
			after := dag.TableForward{}.Build(&nb, m, rt).NumArcs
			removed += int64(before - after)
		}
		b.ReportMetric(float64(removed)/float64(len(blocks)), "arcs-removed/block")
	}
}

// BenchmarkDelaySlotFill measures the control-hazard pass over a
// reassembled benchmark program.
func BenchmarkDelaySlotFill(b *testing.B) {
	var prog []isa.Inst
	for _, blk := range benchSets["grep"] {
		prog = append(prog, blk.Insts...)
		if blk.EndsInCTI() {
			prog = append(prog, isa.Nop())
		}
	}
	m := machine.Pipe1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := delayslot.Fill(prog, m, resource.MemExprModel)
		if r.Filled == 0 {
			b.Fatal("nothing filled")
		}
	}
}

// BenchmarkLoadLatencySweep characterizes how the value of scheduling
// scales with memory latency (a "which attributes" companion to the
// future-work studies): the reported metric is the percentage of
// cycles Krishnamurthy's scheduler saves over program order on lloops
// as load latency deepens. On the large FP blocks the savings grow
// with latency; on tiny system-code blocks (swap in "dfa") they do not
// — there is nothing to cover the deeper delay slots with, the same
// size effect the winners-by-size study shows.
func BenchmarkLoadLatencySweep(b *testing.B) {
	loads := []isa.Opcode{isa.LD, isa.LDUB, isa.LDSB, isa.LDUH, isa.LDSH,
		isa.LDF, isa.LDD, isa.LDDF}
	for _, lat := range []int{2, 3, 4, 6} {
		name := map[int]string{2: "lat2", 3: "lat3", 4: "lat4", 6: "lat6"}[lat]
		b.Run(name, func(b *testing.B) {
			m := machine.Pipe1()
			for _, op := range loads {
				m.SetLatency(op, lat)
			}
			al := sched.Krishnamurthy()
			blocks := benchSets["lloops"]
			rt := resource.NewTable(resource.MemExprModel)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var base, scheduled int64
				for _, blk := range blocks {
					rt.PrepareBlock(blk.Insts)
					d := al.Builder().Build(blk, m, rt)
					base += int64(sched.InOrder(d, m).Cycles)
					scheduled += int64(al.Run(d, m).Cycles)
				}
				b.ReportMetric(100*float64(base-scheduled)/float64(base), "%saved")
			}
		})
	}
}

// BenchmarkBranchAndBound times the future-work optimal scheduler on
// paper-scale small blocks (grep's basic blocks average 2.4
// instructions; anything up to 12 is in easy reach).
func BenchmarkBranchAndBound(b *testing.B) {
	m := machine.Pipe1()
	var small []*block.Block
	for _, blk := range benchSets["grep"] {
		if blk.Len() <= 12 {
			small = append(small, blk)
		}
		if len(small) == 200 {
			break
		}
	}
	rt := resource.NewTable(resource.MemExprModel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, blk := range small {
			rt.PrepareBlock(blk.Insts)
			d := dag.TableForward{}.Build(blk, m, rt)
			if r := sched.BranchAndBound(d, m); r.Cycles < 0 {
				b.Fatal("bad result")
			}
		}
	}
}
