// Schedlint is the repo's static-analysis driver: it loads every
// package named by its arguments (default ./...) and runs the four
// invariant passes of internal/analysis — noalloc, arenalife,
// guardedby, benchallocs. Findings print as
//
//	file:line:col: [pass] message
//
// (or as JSON with -json) and the exit status is 1 when any finding
// survives suppression, so `go run ./cmd/schedlint ./...` is a CI
// gate. Suppress a finding with //sched:lint-ignore <pass> <reason>
// on the flagged line or the line above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"daginsched/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON ({\"findings\": [...]})")
	passes := flag.String("passes", "", "comma-separated pass subset (default: all)")
	dir := flag.String("C", ".", "directory whose module is analyzed")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: schedlint [flags] [packages]\n\npasses:\n")
		for _, p := range analysis.Passes {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", p.Name, p.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	ctx, err := analysis.Load(*dir, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}
	var sel []string
	if *passes != "" {
		sel = strings.Split(*passes, ",")
	}
	diags, err := ctx.Run(sel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}

	if *jsonOut {
		doc := struct {
			Findings []analysis.Diag `json:"findings"`
		}{Findings: diags}
		if doc.Findings == nil {
			doc.Findings = []analysis.Diag{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "schedlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "schedlint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
