// Schedlint is the repo's static-analysis driver: it loads every
// package named by its arguments (default ./...) and runs the nine
// invariant passes of internal/analysis — noalloc, arenalife,
// guardedby, benchallocs, lockorder, atomicfield, condloop,
// cancelpoll, panicsafe. Findings print as
//
//	file:line:col: [pass] message
//
// (or as JSON with -json) and the exit status is 1 when any finding
// survives suppression, so `go run ./cmd/schedlint ./...` is a CI
// gate. Suppress a finding with //sched:lint-ignore <pass> <reason>
// on the flagged line or the line above it.
//
// -strict additionally audits the suppressions themselves: a
// lint-ignore whose pass ran but never fired on its line is reported
// as stale. -stats prints per-pass finding counts and wall time to
// stderr, so the cost of the growing pass suite stays visible.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"daginsched/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON ({\"findings\": [...]})")
	passes := flag.String("passes", "", "comma-separated pass subset (default: all)")
	strict := flag.Bool("strict", false, "report unused suppressions (stale //sched:lint-ignore comments)")
	stats := flag.Bool("stats", false, "print per-pass finding counts and wall time to stderr")
	dir := flag.String("C", ".", "directory whose module is analyzed")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: schedlint [flags] [packages]\n\npasses:\n")
		for _, p := range analysis.Passes {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", p.Name, p.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	ctx, err := analysis.Load(*dir, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}
	ctx.Audit = *strict
	var sel []string
	if *passes != "" {
		sel = strings.Split(*passes, ",")
	}
	diags, err := ctx.Run(sel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedlint:", err)
		os.Exit(2)
	}

	if *jsonOut {
		doc := struct {
			Findings []analysis.Diag `json:"findings"`
		}{Findings: diags}
		if doc.Findings == nil {
			doc.Findings = []analysis.Diag{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "schedlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if *stats {
		for _, s := range ctx.Stats {
			fmt.Fprintf(os.Stderr, "schedlint: %-12s %3d finding(s) %12s\n", s.Name, s.Findings, s.Duration.Round(10*time.Microsecond))
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "schedlint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
