// Dagstat prints dependence-DAG structural statistics — arcs per block,
// children per instruction, transitive-arc census — for an assembly
// file or a synthetic benchmark, under each construction algorithm.
// It is the exploratory companion to cmd/schedbench: where schedbench
// reproduces the paper's tables, dagstat lets you inspect any input.
//
// Usage:
//
//	dagstat [-bench name | file.s] [-model name] [-builders list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"daginsched/internal/asm"
	"daginsched/internal/block"
	"daginsched/internal/dag"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/synth"
)

func main() {
	var (
		bench    = flag.String("bench", "", "synthetic benchmark name (grep, …, fpppp)")
		model    = flag.String("model", "pipe1", "machine model")
		builders = flag.String("builders", "n2f,tablef,tableb,landskov,tableb-bitmap",
			"comma-separated builder list")
		dot = flag.Bool("dot", false, "emit the first block's DAG in Graphviz dot (first builder only)")
	)
	flag.Parse()

	m, ok := machine.ByName(*model)
	if !ok {
		fail("unknown machine model %q", *model)
	}
	var blocks []*block.Block
	switch {
	case *bench != "":
		p, ok := synth.ByName(*bench)
		if !ok {
			fail("unknown benchmark %q", *bench)
		}
		blocks = p.Generate()
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fail("%v", err)
		}
		insts, err := asm.Parse(string(src))
		if err != nil {
			fail("%v", err)
		}
		blocks = block.Partition(insts)
	default:
		fail("need -bench or an assembly file")
	}

	if *dot {
		name := strings.SplitN(*builders, ",", 2)[0]
		bld, ok := dag.ByName(strings.TrimSpace(name))
		if !ok {
			fail("unknown builder %q", name)
		}
		rt := resource.NewTable(resource.MemExprModel)
		rt.PrepareBlock(blocks[0].Insts)
		d := bld.Build(blocks[0], m, rt)
		if err := d.WriteDOT(os.Stdout, blocks[0].Name); err != nil {
			fail("%v", err)
		}
		return
	}

	fmt.Printf("%-14s %8s %10s %10s %10s %10s %12s\n",
		"builder", "arcs", "arcs/blk", "child max", "child avg", "trans", "trans/arcs")
	fmt.Println(strings.Repeat("-", 80))
	for _, name := range strings.Split(*builders, ",") {
		bld, ok := dag.ByName(strings.TrimSpace(name))
		if !ok {
			fail("unknown builder %q", name)
		}
		var arcs, childMax, trans, insts int
		rt := resource.NewTable(resource.MemExprModel)
		for _, b := range blocks {
			rt.PrepareBlock(b.Insts)
			d := bld.Build(b, m, rt)
			arcs += d.NumArcs
			insts += b.Len()
			trans += d.TransitiveArcs()
			for i := range d.Nodes {
				if c := d.Nodes[i].NumChildren(); c > childMax {
					childMax = c
				}
			}
		}
		ratio := 0.0
		if arcs > 0 {
			ratio = float64(trans) / float64(arcs)
		}
		fmt.Printf("%-14s %8d %10.2f %10d %10.2f %10d %12.3f\n",
			bld.Name(), arcs, float64(arcs)/float64(len(blocks)),
			childMax, float64(arcs)/float64(insts), trans, ratio)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dagstat: "+format+"\n", args...)
	os.Exit(2)
}
