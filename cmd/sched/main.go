// Sched is the end-user instruction scheduler: it reads assembly text,
// partitions it into basic blocks, builds each block's dependence DAG,
// schedules it with a chosen algorithm, and writes the rescheduled
// assembly. With -report it prints per-block cycle accounting instead.
//
// Usage:
//
//	sched [-algo name] [-model name] [-builder name] [-mem model]
//	      [-window n] [-report] [file.s]
//
// Reading standard input when no file is given. Algorithms are the six
// of Table 2: gibbons-muchnick, krishnamurthy, schlansker,
// shieh-papachristou, tiemann, warren; plus "optimal" (branch and
// bound, small blocks only).
//
// Exit codes are distinct by failure class so build drivers can
// dispatch on them: 0 success, 1 runtime failure, 2 usage error (bad
// flag or flag value), 3 malformed or unreadable input, 4 internal
// error (a panic caught at the top-level guard — always a bug, never
// caused by input).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"daginsched/internal/core"
	"daginsched/internal/dag"
	"daginsched/internal/machine"
	"daginsched/internal/pipe"
	"daginsched/internal/resource"
	"daginsched/internal/sched"
)

// The tool's exit codes, one per failure class.
const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
	exitInput   = 3
	exitPanic   = 4
)

func main() { os.Exit(run()) }

// run is main behind the panic guard: no input, however malformed, may
// crash the tool with a stack trace — a caught panic is reported as a
// one-line diagnostic and the distinct internal-error exit code.
func run() (code int) {
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(os.Stderr, "sched: internal error: %v\n", p)
			code = exitPanic
		}
	}()
	var (
		algo    = flag.String("algo", "krishnamurthy", "scheduling algorithm (Table 2 name)")
		model   = flag.String("model", "pipe1", "machine model: pipe1, fpu, asym, super2")
		builder = flag.String("builder", "", "DAG builder override: n2f, n2b, tablef, tableb, landskov, tableb-bitmap")
		mem     = flag.String("mem", "expr", "memory disambiguation: expr, class, single")
		window  = flag.Int("window", 0, "instruction window (0 = none)")
		report  = flag.Bool("report", false, "print per-block cycle report instead of assembly")
		fill    = flag.Bool("fillslots", false, "run the delay-slot scheduler on the output")
		timing  = flag.Bool("timeline", false, "print a per-block cycle timeline instead of assembly")
		explain = flag.Bool("explain", false, "print a stall attribution of the scheduled program")
		ren     = flag.Bool("rename", false, "rename registers to remove WAR/WAW arcs before scheduling")
		global  = flag.Bool("globalcarry", false, "inherit operation latencies across blocks via the CFG")
	)
	flag.Parse()

	p := core.Default()
	var ok bool
	if p.Machine, ok = machine.ByName(*model); !ok {
		return fail(exitUsage, "unknown machine model %q", *model)
	}
	var err error
	if p.Algorithm, err = sched.AlgorithmByName(*algo); err != nil {
		return fail(exitUsage, "%v", err)
	}
	if *builder != "" {
		if p.Builder, ok = dag.ByName(*builder); !ok {
			return fail(exitUsage, "unknown builder %q", *builder)
		}
	}
	switch *mem {
	case "expr":
		p.MemModel = resource.MemExprModel
	case "class":
		p.MemModel = resource.MemClassModel
	case "single":
		p.MemModel = resource.MemSingleModel
	default:
		return fail(exitUsage, "unknown memory model %q", *mem)
	}
	p.Window = *window
	p.FillSlots = *fill
	p.Rename = *ren
	p.GlobalCarry = *global

	src, err := readInput(flag.Args())
	if err != nil {
		return fail(exitInput, "%v", err)
	}
	out, res, err := p.ScheduleAsm(src)
	if err != nil {
		// The only error ScheduleAsm returns is the parser's: input.
		return fail(exitInput, "%v", err)
	}
	switch {
	case *report:
		fmt.Print(res.Report())
		if *fill {
			fmt.Printf("delay slots filled: %d\n", res.SlotsFilled)
		}
	case *timing:
		for _, br := range res.Blocks {
			fmt.Printf("block %s:\n", br.Block.Name)
			fmt.Print(sched.Timeline(br.DAG, p.Machine, br.Schedule))
			fmt.Println()
		}
	case *explain:
		insts := res.Insts()
		rt := resource.NewTable(p.MemModel)
		rt.PrepareBlock(insts)
		det := pipe.Explain(insts, nil, p.Machine, rt)
		fmt.Print(det.Report(insts, nil))
	default:
		fmt.Print(out)
	}
	return exitOK
}

func readInput(args []string) (string, error) {
	if len(args) == 0 {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(args[0])
	return string(b), err
}

// fail prints the one-line diagnostic and returns the exit code.
func fail(code int, format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "sched: "+format+"\n", args...)
	return code
}
