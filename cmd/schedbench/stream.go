// The -stream benchmark: drive the engine's streaming pipeline from
// the constant-memory synthetic producer until a target instruction
// count has flowed through, and report steady-state throughput, queue
// occupancy and the process RSS high-water mark. A batch-mode run over
// the mixed corpus is measured alongside so the report can state the
// stream/batch throughput ratio (the acceptance bar: streaming should
// cost at most a few percent over batch, because ingestion and
// generation overlap scheduling instead of preceding it).
package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"daginsched/internal/block"
	"daginsched/internal/engine"
	"daginsched/internal/machine"
	"daginsched/internal/synth"
)

// streamReport is the -stream section of BENCH_engine.json.
type streamReport struct {
	// InstsRequested is the -insts target; Blocks/Insts are what
	// actually flowed (the stream stops at a block boundary).
	InstsRequested int64        `json:"insts_requested"`
	Blocks         int64        `json:"blocks"`
	Insts          int64        `json:"insts"`
	Depth          int          `json:"depth"`
	Stats          engine.Stats `json:"stats"`
	// RSSHighWaterKB is the kernel's peak-resident-set figure
	// (VmHWM) after the run — the bounded-memory witness. Zero where
	// /proc is unavailable.
	RSSHighWaterKB int64 `json:"rss_high_water_kb"`
	// HeapPeakBytes is the largest runtime.MemStats.HeapAlloc observed
	// by a 100ms sampler during the stream.
	HeapPeakBytes uint64 `json:"heap_peak_bytes"`
	// BatchInstsPerSec is a warmed batch-mode Run over the mixed
	// corpus on an identically configured engine; StreamVsBatch is
	// stream insts/sec over batch insts/sec.
	BatchInstsPerSec float64 `json:"batch_insts_per_sec"`
	StreamVsBatch    float64 `json:"stream_vs_batch"`
}

// runStream executes the streaming benchmark and merges the report
// into the engine JSON document at jsonPath (preserving any batch
// sections already recorded there).
func runStream(m *machine.Model, modelName string, cfg parallelConfig, insts float64, depth int, benchFilter string, jsonPath string) error {
	profiles := synth.Profiles()
	if benchFilter != "" {
		var keep []synth.Profile
		for _, p := range profiles {
			if strings.HasPrefix(p.Name, benchFilter) {
				keep = append(keep, p)
			}
		}
		if len(keep) == 0 {
			return fmt.Errorf("-stream: no synthetic profile matches %q", benchFilter)
		}
		profiles = keep
	}
	target := int64(insts)
	if target <= 0 {
		return fmt.Errorf("-insts %v: want a positive instruction target", insts)
	}
	mk := func() (*engine.Engine, error) {
		return engine.New(engine.Config{
			Workers: cfg.workers, Model: m, Builder: cfg.builder, Verify: cfg.verify,
			DisableCSR: !cfg.csr, Cache: cfg.cache,
			DisableAdaptive: !cfg.adaptive, Crossover: cfg.crossover, ChunkSize: cfg.chunk,
			StreamDepth: depth,
		})
	}
	e, err := mk()
	if err != nil {
		return err
	}

	fmt.Printf("Streaming engine: %d workers, model %s, builder %s, cache %v, adaptive %v, depth %d, target %d insts\n",
		e.Workers(), modelName, cfg.builder, cfg.cache, cfg.adaptive, depth, target)

	// Warm the worker arenas (and calibration already ran inside New)
	// on one small pass so the measured stream sees the steady state.
	warm := make(chan *block.Block, 64)
	go synth.StreamCorpus(context.Background(), profiles, 0, warm, nil)
	if _, err := e.RunStream(context.Background(), warm, nil); err != nil {
		return err
	}

	// The freelist is what bounds producer-side memory: the sink feeds
	// finished blocks back and the producer reuses them, so the blocks
	// in circulation are the ones in the pipeline's queues plus this
	// slack. Sends are non-blocking on both sides; a full freelist
	// just lets the garbage collector take the block.
	free := make(chan *block.Block, 4*depth+256)
	src := make(chan *block.Block, 64)

	heapPeak := uint64(0)
	sampleDone := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		var ms runtime.MemStats
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-sampleDone:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > heapPeak {
					heapPeak = ms.HeapAlloc
				}
			}
		}
	}()

	var prodBlocks, prodInsts int64
	var prodErr error
	var prodWG sync.WaitGroup
	prodWG.Add(1)
	go func() {
		defer prodWG.Done()
		prodBlocks, prodInsts, prodErr = synth.StreamCorpus(context.Background(), profiles, target, src, free)
	}()
	sink := func(o engine.BlockOutcome) {
		select {
		case free <- o.Block:
		default: // freelist full; let the GC have it
		}
	}
	stats, err := e.RunStream(context.Background(), src, sink)
	prodWG.Wait()
	close(sampleDone)
	sampleWG.Wait()
	if err != nil {
		return err
	}
	if prodErr != nil {
		return prodErr
	}

	rep := streamReport{
		InstsRequested: target,
		Blocks:         prodBlocks,
		Insts:          prodInsts,
		Depth:          stats.StreamDepth,
		Stats:          stats,
		RSSHighWaterKB: rssHighWaterKB(),
		HeapPeakBytes:  heapPeak,
	}

	// Batch yardstick on a fresh engine with the same configuration:
	// warm arenas and cache on pass 0, then time pass 1 — fresh block
	// content, exactly what the stream's steady state sees — including
	// its generation, because batch mode has to materialize a corpus
	// before the first block can be scheduled. (Timing a second pass
	// over the *same* corpus would measure the cache serving ~100%
	// hits, a workload the stream never sees.)
	be, err := mk()
	if err != nil {
		return err
	}
	var warmup []*block.Block
	for _, p := range profiles {
		warmup = append(warmup, p.Generate()...)
	}
	res := new(engine.BatchResult)
	if _, err := be.RunInto(res, warmup); err != nil {
		return err
	}
	bt0 := time.Now()
	var passB []*block.Block
	for _, p := range profiles {
		passB = append(passB, p.GeneratePass(1)...)
	}
	if _, err := be.RunInto(res, passB); err != nil {
		return err
	}
	if secs := time.Since(bt0).Seconds(); secs > 0 {
		rep.BatchInstsPerSec = float64(res.Stats.Insts) / secs
	}
	if rep.BatchInstsPerSec > 0 {
		rep.StreamVsBatch = stats.InstsPerSec / rep.BatchInstsPerSec
	}

	fmt.Printf("  streamed   %12d insts in %d blocks, %.2fs wall\n", prodInsts, prodBlocks, stats.WallSeconds)
	fmt.Printf("  throughput %12.0f insts/s stream, %12.0f insts/s batch (ratio %.3f)\n",
		stats.InstsPerSec, rep.BatchInstsPerSec, rep.StreamVsBatch)
	fmt.Printf("  queues     bigQ peak %d/%d blocks, smallQ peak %d chunks, reorder peak %d pending\n",
		stats.BigQueuePeak, stats.StreamDepth, stats.SmallQueuePeak, stats.PendingPeak)
	fmt.Printf("  memory     RSS high-water %d KB, heap peak %d KB\n",
		rep.RSSHighWaterKB, heapPeak/1024)
	fmt.Printf("  latency    p50 %.1fus p99 %.1fus, degraded %d, cache hit %.1f%%\n",
		stats.P50Micros, stats.P99Micros, stats.DegradedBlocks, stats.CacheHitRate*100)

	return mergeStreamReport(jsonPath, &rep)
}

// mergeStreamReport writes rep into the Stream slot of the engine
// JSON document, preserving an existing document's batch sections.
func mergeStreamReport(jsonPath string, rep *streamReport) error {
	doc, err := readEngineFileForMerge(jsonPath)
	if err != nil {
		return err
	}
	doc.Stream = rep
	if err := writeEngineFile(jsonPath, doc); err != nil {
		return err
	}
	fmt.Printf("\nstream statistics merged into %s\n", jsonPath)
	return nil
}

// rssHighWaterKB reads the process's peak resident set (VmHWM) from
// /proc/self/status, or 0 where that interface does not exist.
func rssHighWaterKB() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmHWM:"):])
		if len(fields) == 0 {
			return 0
		}
		v, err := strconv.ParseInt(string(fields[0]), 10, 64)
		if err != nil {
			return 0
		}
		return v
	}
	return 0
}
