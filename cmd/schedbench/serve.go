// The -serve load-generator mode: drive a running schedd daemon with
// open-loop traffic and report the service-level picture — p50/p99
// request latency, achieved throughput, and the shed rate — merged
// into BENCH_engine.json under the existing -diff regression gate.
//
// Open-loop means arrivals are scheduled by a clock, not by
// completions: a daemon that slows down does not slow the generator
// down, so overload actually builds queues and exercises the admission
// path instead of being politely absorbed by a closed loop. The
// request mix round-robins a set of assembly units (rendered from the
// Table 3 corpus, one label per block so boundaries survive the text
// round-trip) across -servetenants distinct X-Tenant identities.
//
// -servecheck turns the generator into an identity gate: every 200
// response's schedules must be byte-identical to a local
// cache-disabled reference engine run over the same unit — the proof
// CI leans on that a daemon restarted over a kill -9 survivor cache
// file serves exactly what a cold engine would have computed.
// -servewarm makes it the warm-restart gate: the daemon's /stats
// engine counters over the load window must show a hit rate at or
// above the floor with at least one block served from the persistent
// tier.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"daginsched/internal/asm"
	"daginsched/internal/block"
	"daginsched/internal/engine"
	"daginsched/internal/machine"
	"daginsched/internal/server"
	"daginsched/internal/tables"
)

// serveUnitBlocks is how many basic blocks one request body carries.
const serveUnitBlocks = 32

// serveReport is the -serve section of BENCH_engine.json.
type serveReport struct {
	RatePerSec  float64 `json:"rate_per_sec"` // offered arrival rate
	DurationSec float64 `json:"duration_sec"` // load window
	Tenants     int     `json:"tenants"`      // distinct X-Tenant identities
	Requests    int64   `json:"requests"`     // sent
	OK          int64   `json:"ok"`           // 200s
	Shed        int64   `json:"shed"`         // 429/503 refusals
	Errors      int64   `json:"errors"`       // everything else
	OKPerSec    float64 `json:"ok_per_sec"`   // achieved goodput
	ShedRate    float64 `json:"shed_rate"`    // Shed / Requests
	P50Millis   float64 `json:"p50_millis"`   // OK-request latency
	P99Millis   float64 `json:"p99_millis"`   //
	HitRate     float64 `json:"hit_rate"`     // daemon cache hit rate over the window
	DiskHits    int64   `json:"disk_hits"`    // blocks served from the persistent tier
	Checked     int64   `json:"checked"`      // responses proven byte-identical (-servecheck)
}

// serveConfig carries the -serve flag group.
type serveConfig struct {
	url        string        // daemon base URL
	rate       float64       // offered requests/sec
	duration   time.Duration // load window
	tenants    int           // tenant mix size
	warmExpect float64       // warm hit-rate floor (0 disables)
	check      bool          // verify byte-identity against a local reference
}

// serveUnit is one request body plus its local reference schedules.
type serveUnit struct {
	body string
	want [][]int32 // nil unless -servecheck
}

// renderUnits slices the corpus into request bodies. Every block gets
// an explicit label line: synthesized blocks carry none of their own,
// and without labels consecutive blocks that do not end in a CTI would
// fuse when the daemon re-partitions the text.
func renderUnits(sets []tables.BenchmarkSet) []serveUnit {
	var all []*block.Block
	for _, set := range sets {
		all = append(all, set.Blocks...)
	}
	var units []serveUnit
	for start := 0; start < len(all); start += serveUnitBlocks {
		end := min(start+serveUnitBlocks, len(all))
		var sb strings.Builder
		for i, b := range all[start:end] {
			fmt.Fprintf(&sb, "u%d:\n", i)
			sb.WriteString(asm.Print(b.Insts))
		}
		units = append(units, serveUnit{body: sb.String()})
	}
	return units
}

// referenceUnit schedules one unit's text on the local cache-disabled
// engine, exactly as the daemon will parse it.
func referenceUnit(e *engine.Engine, body string) ([][]int32, error) {
	sc := asm.NewBlockScanner(strings.NewReader(body))
	var blocks []*block.Block
	for {
		b := &block.Block{}
		ok, err := sc.Next(b)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		blocks = append(blocks, b)
	}
	res, err := e.Run(blocks)
	if err != nil {
		return nil, err
	}
	// res.Orders shares the result's arena; copy out.
	orders := make([][]int32, len(res.Orders))
	for i, o := range res.Orders {
		orders[i] = append([]int32(nil), o...)
	}
	return orders, nil
}

// serveBlockResult / serveScheduleResp mirror the daemon's
// /v1/schedule response shape.
type serveBlockResult struct {
	Name   string  `json:"name"`
	Cycles int32   `json:"cycles"`
	Rung   string  `json:"rung"`
	Order  []int32 `json:"order"`
}

type serveScheduleResp struct {
	Blocks  int                `json:"blocks"`
	Results []serveBlockResult `json:"results"`
}

// serveTally collects the load run's outcomes across request
// goroutines.
type serveTally struct {
	mu        sync.Mutex
	requests  int64
	ok        int64
	shed      int64
	errors    int64
	checked   int64
	mismatch  string // first identity violation, sticky
	firstErr  string // first non-shed failure, sticky
	latencies []time.Duration
}

// waitReady polls the daemon's /readyz until it answers 200.
func waitReady(client *http.Client, base string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			code := resp.StatusCode
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if code == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("daemon at %s never became ready: %v", base, err)
			}
			return fmt.Errorf("daemon at %s never became ready", base)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// fetchSnapshot reads the daemon's /stats.
func fetchSnapshot(client *http.Client, base string) (*server.Snapshot, error) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/stats: HTTP %d", resp.StatusCode)
	}
	snap := new(server.Snapshot)
	if err := json.NewDecoder(resp.Body).Decode(snap); err != nil {
		return nil, err
	}
	return snap, nil
}

// serveRequest posts one unit and folds the outcome into the tally.
func serveRequest(client *http.Client, base string, u *serveUnit, tenant string, tally *serveTally) {
	t0 := time.Now()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/schedule", strings.NewReader(u.body))
	if err != nil {
		tally.fail(err.Error())
		return
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		tally.fail(err.Error())
		return
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		var dec serveScheduleResp
		if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
			tally.fail("decoding 200 body: " + err.Error())
			return
		}
		tally.succeed(time.Since(t0), &dec, u)
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		_, _ = io.Copy(io.Discard, resp.Body)
		tally.refuse()
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		tally.fail(fmt.Sprintf("HTTP %d: %s", resp.StatusCode, body))
	}
}

func (t *serveTally) succeed(d time.Duration, dec *serveScheduleResp, u *serveUnit) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ok++
	t.latencies = append(t.latencies, d)
	if u.want == nil {
		return
	}
	t.checked++
	if len(dec.Results) != len(u.want) {
		t.setMismatch(fmt.Sprintf("%d blocks in response, reference has %d", len(dec.Results), len(u.want)))
		return
	}
	for i := range u.want {
		got := dec.Results[i].Order
		if len(got) != len(u.want[i]) {
			t.setMismatch(fmt.Sprintf("block %d: order length %d, want %d", i, len(got), len(u.want[i])))
			return
		}
		for k := range got {
			if got[k] != u.want[i][k] {
				t.setMismatch(fmt.Sprintf("block %d position %d: node %d, want %d", i, k, got[k], u.want[i][k]))
				return
			}
		}
	}
}

func (t *serveTally) setMismatch(msg string) {
	if t.mismatch == "" {
		t.mismatch = msg
	}
}

func (t *serveTally) refuse() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.shed++
}

func (t *serveTally) fail(msg string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.errors++
	if t.firstErr == "" {
		t.firstErr = msg
	}
}

// percentile returns the p-th percentile of sorted durations in
// milliseconds (nearest-rank).
func percentileMillis(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// runServe fires the open-loop load at the daemon and merges the SLO
// report into the engine JSON. Gate failures (identity mismatch, warm
// floor miss) come back as errors for the exit-1 path.
func runServe(sets []tables.BenchmarkSet, m *machine.Model, cfg serveConfig, jsonPath string) error {
	if cfg.rate <= 0 {
		return fmt.Errorf("-serverate must be positive, got %v", cfg.rate)
	}
	if cfg.tenants < 1 {
		cfg.tenants = 1
	}
	units := renderUnits(sets)
	if len(units) == 0 {
		return fmt.Errorf("no blocks in the selected corpus")
	}
	if cfg.check {
		ref, err := engine.New(engine.Config{Workers: 1, Model: m, KeepOrders: true})
		if err != nil {
			return err
		}
		for i := range units {
			if units[i].want, err = referenceUnit(ref, units[i].body); err != nil {
				return fmt.Errorf("reference for unit %d: %w", i, err)
			}
		}
	}

	base := strings.TrimSuffix(cfg.url, "/")
	client := &http.Client{Timeout: 30 * time.Second}
	if err := waitReady(client, base, 10*time.Second); err != nil {
		return err
	}
	before, err := fetchSnapshot(client, base)
	if err != nil {
		return err
	}

	tally := &serveTally{}
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / cfg.rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.After(cfg.duration)
	n := 0
loop:
	for {
		select {
		case <-stop:
			break loop
		case <-ticker.C:
			u := &units[n%len(units)]
			tenant := fmt.Sprintf("t%d", n%cfg.tenants)
			n++
			tally.mu.Lock()
			tally.requests++
			tally.mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				serveRequest(client, base, u, tenant, tally)
			}()
		}
	}
	wg.Wait()
	after, err := fetchSnapshot(client, base)
	if err != nil {
		return err
	}

	rep := buildServeReport(cfg, tally, before, after)
	fmt.Printf("Serve load: %s, %.0f req/s offered for %v across %d tenants\n",
		base, cfg.rate, cfg.duration, cfg.tenants)
	fmt.Printf("  requests %d  ok %d (%.0f/s)  shed %d (%.1f%%)  errors %d\n",
		rep.Requests, rep.OK, rep.OKPerSec, rep.Shed, rep.ShedRate*100, rep.Errors)
	fmt.Printf("  latency p50 %.1fms p99 %.1fms  hit rate %.1f%%  disk hits %d  checked %d\n",
		rep.P50Millis, rep.P99Millis, rep.HitRate*100, rep.DiskHits, rep.Checked)

	if tally.mismatch != "" {
		return fmt.Errorf("identity gate: daemon schedule diverged from the reference: %s", tally.mismatch)
	}
	if cfg.check && rep.Checked == 0 {
		return fmt.Errorf("identity gate: no response was ever checked (all shed?)")
	}
	if rep.Errors > 0 {
		return fmt.Errorf("%d requests failed outside the shed taxonomy (first: %s)", rep.Errors, tally.firstErr)
	}
	if cfg.warmExpect > 0 {
		if rep.HitRate < cfg.warmExpect {
			return fmt.Errorf("warm gate: hit rate %.3f below the %.3f floor", rep.HitRate, cfg.warmExpect)
		}
		if rep.DiskHits == 0 {
			return fmt.Errorf("warm gate: no block was served from the persistent tier")
		}
	}
	if err := mergeServeReport(jsonPath, rep); err != nil {
		return err
	}
	fmt.Printf("  serve section merged into %s\n", jsonPath)
	return nil
}

// buildServeReport folds the tally and the daemon's before/after
// engine counters into the JSON section.
func buildServeReport(cfg serveConfig, tally *serveTally, before, after *server.Snapshot) *serveReport {
	tally.mu.Lock()
	defer tally.mu.Unlock()
	sort.Slice(tally.latencies, func(i, j int) bool { return tally.latencies[i] < tally.latencies[j] })
	rep := &serveReport{
		RatePerSec:  cfg.rate,
		DurationSec: cfg.duration.Seconds(),
		Tenants:     cfg.tenants,
		Requests:    tally.requests,
		OK:          tally.ok,
		Shed:        tally.shed,
		Errors:      tally.errors,
		Checked:     tally.checked,
		P50Millis:   percentileMillis(tally.latencies, 0.50),
		P99Millis:   percentileMillis(tally.latencies, 0.99),
	}
	if cfg.duration > 0 {
		rep.OKPerSec = float64(tally.ok) / cfg.duration.Seconds()
	}
	if tally.requests > 0 {
		rep.ShedRate = float64(tally.shed) / float64(tally.requests)
	}
	hits := (after.Engine.CacheHits - before.Engine.CacheHits) + (after.Engine.DiskHits - before.Engine.DiskHits)
	misses := after.Engine.CacheMisses - before.Engine.CacheMisses
	if hits+misses > 0 {
		rep.HitRate = float64(hits) / float64(hits+misses)
	}
	rep.DiskHits = after.Engine.DiskHits - before.Engine.DiskHits
	return rep
}

// mergeServeReport writes the serve section into the engine JSON,
// preserving every other section.
func mergeServeReport(jsonPath string, rep *serveReport) error {
	doc, err := readEngineFileForMerge(jsonPath)
	if err != nil {
		return err
	}
	doc.Serve = rep
	return writeEngineFile(jsonPath, doc)
}
