// The -cachefile warm-start benchmark: prove the persistent schedule
// cache turns a process restart into a warm start. One engine runs the
// pooled mixed corpus against the cache file (cold when the file is
// fresh, warm when a previous process populated it), the engine is
// closed — flushing the write-behind queue — and a second, completely
// fresh engine reopens the file and runs the same corpus. The second
// engine's schedules must be byte-identical to a cache-disabled
// reference run, and the report states the cold→warm p50/p99 and
// insts/s deltas. -warmexpect makes the first pass itself the gate:
// the run fails unless that pass was served from the file (disk hits
// observed and overall hit rate at or above the threshold), which is
// how CI proves cross-process persistence with two schedbench
// invocations over one file.
package main

import (
	"fmt"

	"daginsched/internal/block"
	"daginsched/internal/engine"
	"daginsched/internal/machine"
	"daginsched/internal/tables"
)

// warmstartReport is the -cachefile section of BENCH_engine.json.
type warmstartReport struct {
	Blocks int   `json:"blocks"`
	Insts  int64 `json:"insts"`
	// FirstPass is the first engine's run: cold on a fresh file, warm
	// when an earlier process populated it (the -warmexpect case).
	FirstPass engine.Stats `json:"first_pass"`
	// Warm is a fresh engine's run after reopening the populated file —
	// the warm-start measurement proper.
	Warm engine.Stats `json:"warm"`
	// WarmSpeedup is warm insts/s over first-pass insts/s: how much a
	// restart gains from the persistent tier when the first pass was
	// cold.
	WarmSpeedup float64 `json:"warm_speedup"`
	// DeltaP50Micros/DeltaP99Micros are first-pass minus warm per-block
	// latency percentiles (positive = warm is faster).
	DeltaP50Micros float64 `json:"delta_p50_micros"`
	DeltaP99Micros float64 `json:"delta_p99_micros"`
	WarmHitRate    float64 `json:"warm_hit_rate"`
}

// runWarmstart executes the warm-start benchmark over the pooled mixed
// corpus and merges the report into the engine JSON at jsonPath.
func runWarmstart(sets []tables.BenchmarkSet, m *machine.Model, modelName string, cfg parallelConfig, cachePath string, warmExpect float64, jsonPath string) error {
	var mixed []*block.Block
	for _, set := range sets {
		mixed = append(mixed, set.Blocks...)
	}
	var insts int64
	for _, b := range mixed {
		insts += int64(b.Len())
	}

	// Both cache-file engines run the same configuration (KeepOrders
	// included), so first-pass vs warm is a like-for-like comparison.
	mk := func(path string) (*engine.Engine, error) {
		return engine.New(engine.Config{
			Workers: cfg.workers, Model: m, Builder: cfg.builder, Verify: cfg.verify,
			DisableCSR: !cfg.csr, Cache: cfg.cache, CachePath: path,
			DisableAdaptive: !cfg.adaptive, Crossover: cfg.crossover, ChunkSize: cfg.chunk,
			KeepOrders: true,
		})
	}

	// The identity yardstick: the same pipeline with no cache at all.
	refEngine, err := engine.New(engine.Config{
		Workers: cfg.workers, Model: m, Builder: cfg.builder, Verify: cfg.verify,
		DisableCSR: !cfg.csr, Cache: false,
		DisableAdaptive: !cfg.adaptive, Crossover: cfg.crossover, ChunkSize: cfg.chunk,
		KeepOrders: true,
	})
	if err != nil {
		return err
	}
	ref, err := refEngine.Run(mixed)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}

	first, err := mk(cachePath)
	if err != nil {
		return err
	}
	fmt.Printf("Warm-start benchmark: %d workers, model %s, %d blocks (%d insts), cache file %s\n",
		first.Workers(), modelName, len(mixed), insts, cachePath)
	fres, err := first.Run(mixed)
	if err != nil {
		first.Close()
		return fmt.Errorf("first pass: %w", err)
	}
	// Close drains the write-behind flusher, so everything the pass
	// memoized is on disk before the fresh engine opens the file.
	if err := first.Close(); err != nil {
		return fmt.Errorf("closing cache file: %w", err)
	}

	if warmExpect > 0 {
		if fres.Stats.DiskHits == 0 {
			return fmt.Errorf("-warmexpect %.2f: first pass served no blocks from %s (was the file populated by an earlier run?)", warmExpect, cachePath)
		}
		if fres.Stats.CacheHitRate < warmExpect {
			return fmt.Errorf("-warmexpect %.2f: first-pass hit rate %.4f below the threshold", warmExpect, fres.Stats.CacheHitRate)
		}
	}

	warm, err := mk(cachePath)
	if err != nil {
		return err
	}
	defer warm.Close()
	wres, err := warm.Run(mixed)
	if err != nil {
		return fmt.Errorf("warm pass: %w", err)
	}

	// Byte-identity: every warm-served schedule must equal the
	// cache-disabled reference exactly.
	for i := range mixed {
		if wres.Cycles[i] != ref.Cycles[i] {
			return fmt.Errorf("warm start diverged: block %d cycles %d, reference %d", i, wres.Cycles[i], ref.Cycles[i])
		}
		if len(wres.Orders[i]) != len(ref.Orders[i]) {
			return fmt.Errorf("warm start diverged: block %d order length %d, reference %d", i, len(wres.Orders[i]), len(ref.Orders[i]))
		}
		for k := range ref.Orders[i] {
			if wres.Orders[i][k] != ref.Orders[i][k] {
				return fmt.Errorf("warm start diverged: block %d position %d node %d, reference %d", i, k, wres.Orders[i][k], ref.Orders[i][k])
			}
		}
	}

	rep := warmstartReport{
		Blocks:         len(mixed),
		Insts:          insts,
		FirstPass:      fres.Stats,
		Warm:           wres.Stats,
		DeltaP50Micros: fres.Stats.P50Micros - wres.Stats.P50Micros,
		DeltaP99Micros: fres.Stats.P99Micros - wres.Stats.P99Micros,
		WarmHitRate:    wres.Stats.CacheHitRate,
	}
	if fres.Stats.InstsPerSec > 0 {
		rep.WarmSpeedup = wres.Stats.InstsPerSec / fres.Stats.InstsPerSec
	}

	fmt.Printf("  first pass %12.0f insts/s, p50 %6.1fus p99 %8.1fus, hit %5.1f%% (%d disk hits)\n",
		fres.Stats.InstsPerSec, fres.Stats.P50Micros, fres.Stats.P99Micros,
		fres.Stats.CacheHitRate*100, fres.Stats.DiskHits)
	fmt.Printf("  warm start %12.0f insts/s, p50 %6.1fus p99 %8.1fus, hit %5.1f%% (%d disk hits)\n",
		wres.Stats.InstsPerSec, wres.Stats.P50Micros, wres.Stats.P99Micros,
		wres.Stats.CacheHitRate*100, wres.Stats.DiskHits)
	fmt.Printf("  warm/first %11.2fx insts/s, p50 delta %+.1fus, p99 delta %+.1fus, schedules byte-identical to the cache-disabled reference\n",
		rep.WarmSpeedup, rep.DeltaP50Micros, rep.DeltaP99Micros)

	return mergeWarmstartReport(jsonPath, &rep)
}

// mergeWarmstartReport writes rep into the Warmstart slot of the
// engine JSON document, preserving every other section.
func mergeWarmstartReport(jsonPath string, rep *warmstartReport) error {
	doc, err := readEngineFileForMerge(jsonPath)
	if err != nil {
		return err
	}
	doc.Warmstart = rep
	if err := writeEngineFile(jsonPath, doc); err != nil {
		return err
	}
	fmt.Printf("\nwarm-start statistics merged into %s\n", jsonPath)
	return nil
}
