// The -chaos mode: a runnable fault-injection gate over the hardened
// engine. A seeded fault.Plan fires panics inside the DAG builder,
// corrupts arc mirrors, flips bits in cache-served schedules and
// stalls pipeline attempts across the selected benchmark corpus; the
// gate then demands what CI demands:
//
//   - the batch completes, with every schedule passing the engine's
//     output gate and the independent scoreboard simulator (-verify is
//     forced on);
//   - a meaningful share of blocks was actually faulted (the faulted
//     set is recomputed here, outside the engine, as a pure function
//     of the plan and each block's content fingerprint);
//   - every block — faulted blocks included, since no deadline is
//     armed and every recovery rung is byte-identical to the primary
//     pipeline — matches a fault-free run of the same corpus exactly;
//   - the hardening tallies show the machinery actually ran
//     (faults injected, quarantines, gate failures, demotions).
package main

import (
	"fmt"
	"time"

	"daginsched/internal/block"
	"daginsched/internal/engine"
	"daginsched/internal/fault"
	"daginsched/internal/machine"
	"daginsched/internal/tables"
)

// chaosConfig carries the -chaos flag group.
type chaosConfig struct {
	seed    uint64
	rate    float64 // panic/corrupt rate; bitflip runs hotter, stalls cooler
	workers int
}

// chaosWorkers is the default pool size for the gate: wide enough that
// recovery races real concurrent neighbors.
const chaosWorkers = 8

// minFaultedPercent is the gate's floor on the share of corpus blocks
// the plan must actually fault for the run to prove anything.
const minFaultedPercent = 5

func runChaos(sets []tables.BenchmarkSet, m *machine.Model, cc chaosConfig) error {
	var blocks []*block.Block
	for _, s := range sets {
		blocks = append(blocks, s.Blocks...)
	}
	if len(blocks) == 0 {
		return fmt.Errorf("no blocks in the selected corpus")
	}
	workers := cc.workers
	if workers <= 0 {
		workers = chaosWorkers
	}
	bitflip := cc.rate * 4
	if bitflip > 1 {
		bitflip = 1
	}
	plan := &fault.Plan{
		Seed:         cc.seed,
		PanicBuilder: cc.rate,
		CorruptArc:   cc.rate,
		CacheBitflip: bitflip,
		SlowBlock:    cc.rate / 2,
		SlowDelay:    100 * time.Microsecond,
	}
	base := engine.Config{
		Workers:    workers,
		Model:      m,
		KeepOrders: true,
		Verify:     true,
		Cache:      true,
	}

	clean, err := engine.New(base)
	if err != nil {
		return err
	}
	want, err := clean.Run(blocks)
	if err != nil {
		return fmt.Errorf("fault-free run: %w", err)
	}

	cfg := base
	cfg.FaultPlan = plan
	chaotic, err := engine.New(cfg)
	if err != nil {
		return err
	}
	t0 := time.Now()
	got, err := chaotic.Run(blocks)
	if err != nil {
		return fmt.Errorf("chaos run: %w", err)
	}
	wall := time.Since(t0)

	// Recompute the faulted set outside the engine: a pure function of
	// the plan and each block's content fingerprint.
	inj, err := fault.NewInjector(plan)
	if err != nil {
		return err
	}
	faulted, mismatched := 0, 0
	for i, b := range blocks {
		if inj.Any(engine.BlockKey(b.Insts)) {
			faulted++
		}
		same := got.Cycles[i] == want.Cycles[i] && len(got.Orders[i]) == len(want.Orders[i])
		for k := 0; same && k < len(want.Orders[i]); k++ {
			same = got.Orders[i][k] == want.Orders[i][k]
		}
		if !same {
			mismatched++
		}
	}
	var rungs [4]int
	for _, rg := range got.Rungs {
		rungs[rg]++
	}
	st := got.Stats

	fmt.Printf("Chaos gate: seed %d, rate %.2f, %d workers, %d blocks (%d benchmarks), wall %.2fs\n",
		cc.seed, cc.rate, workers, len(blocks), len(sets), wall.Seconds())
	fmt.Printf("  faulted blocks     %6d (%.1f%%)\n", faulted, 100*float64(faulted)/float64(len(blocks)))
	fmt.Printf("  rungs              primary %d  table %d  n2 %d  identity %d\n",
		rungs[engine.RungPrimary], rungs[engine.RungTable], rungs[engine.RungN2], rungs[engine.RungIdentity])
	fmt.Printf("  faults injected    %6d\n", st.FaultsInjected)
	fmt.Printf("  quarantines        %6d\n", st.Quarantines)
	fmt.Printf("  gate failures      %6d\n", st.GateFailures)
	fmt.Printf("  demotions          %6d (degraded blocks %d)\n", st.Demotions, st.DegradedBlocks)
	fmt.Printf("  mismatched blocks  %6d\n", mismatched)

	if 100*faulted < minFaultedPercent*len(blocks) {
		return fmt.Errorf("plan faulted %d/%d blocks, below the %d%% floor", faulted, len(blocks), minFaultedPercent)
	}
	if mismatched > 0 {
		return fmt.Errorf("%d blocks differ from the fault-free run", mismatched)
	}
	if st.FaultsInjected == 0 || st.Quarantines == 0 || st.GateFailures == 0 || st.Demotions == 0 {
		return fmt.Errorf("hardening machinery idle: faults %d, quarantines %d, gate failures %d, demotions %d",
			st.FaultsInjected, st.Quarantines, st.GateFailures, st.Demotions)
	}
	fmt.Println("chaos gate: PASS")
	return nil
}
