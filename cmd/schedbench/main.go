// Schedbench regenerates the experimental tables of Smotherman et al.
// (MICRO-24, 1991): Table 3 (benchmark structure), Table 4 (the n²
// construction approach), Table 5 (the two table-building approaches)
// and the Figure 1 transitive-arc demonstration.
//
// Usage:
//
//	schedbench [-table3] [-table4] [-table5] [-fig1] [-all]
//	           [-model pipe1|fpu|asym|super2] [-runs 5] [-bench name]
//
// With no table flags, -all is assumed. As in the paper, Table 4 stops
// at fpppp-1000: the n² approach's "excessive time and space
// requirements" are the point being demonstrated, and the instruction
// window caps them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"daginsched/internal/machine"
	"daginsched/internal/tables"
)

func main() {
	var (
		t3      = flag.Bool("table3", false, "print Table 3 (structural data)")
		t4      = flag.Bool("table4", false, "print Table 4 (n**2 approach)")
		t5      = flag.Bool("table5", false, "print Table 5 (table-building approaches)")
		fig1    = flag.Bool("fig1", false, "print the Figure 1 demonstration")
		quality = flag.Bool("quality", false, "print the cross-algorithm quality comparison")
		optim   = flag.Bool("optimality", false, "print the branch-and-bound optimality study (future work 1)")
		winners = flag.Bool("winners", false, "print the best-algorithm-by-block-size study (future work 2)")
		scaling = flag.Bool("scaling", false, "print the DAG-construction scaling study (single growing block)")
		ablate  = flag.Bool("ablate", false, "print the per-rank heuristic ablation study")
		maxBB   = flag.Int("maxbb", 12, "block-size cap for the optimality study")
		all     = flag.Bool("all", false, "print everything")
		model   = flag.String("model", "pipe1", "machine model (pipe1, fpu, asym, super2)")
		runs    = flag.Int("runs", 5, "timing runs to average (the paper used five)")
		bench   = flag.String("bench", "", "restrict to one benchmark (prefix match)")
	)
	flag.Parse()
	if !*t3 && !*t4 && !*t5 && !*fig1 && !*quality && !*optim && !*winners && !*scaling && !*ablate {
		*all = true
	}
	m, ok := machine.ByName(*model)
	if !ok {
		fmt.Fprintf(os.Stderr, "schedbench: unknown machine model %q\n", *model)
		os.Exit(2)
	}

	sets := tables.Table3Sets()
	if *bench != "" {
		var filtered []tables.BenchmarkSet
		for _, s := range sets {
			if strings.HasPrefix(s.Name, *bench) {
				filtered = append(filtered, s)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "schedbench: no benchmark matches %q\n", *bench)
			os.Exit(2)
		}
		sets = filtered
	}

	if *all || *fig1 {
		fmt.Println(tables.Figure1(m))
	}
	if *all || *t3 {
		fmt.Println(tables.Table3(sets))
	}
	if *all || *t4 {
		// The paper did not run n² past a 1000-instruction window.
		var t4sets []tables.BenchmarkSet
		for _, s := range sets {
			if s.Name == "fpppp" || s.Name == "fpppp-2000" || s.Name == "fpppp-4000" {
				continue
			}
			t4sets = append(t4sets, s)
		}
		fmt.Println(tables.Table4(t4sets, m, *runs))
	}
	if *all || *t5 {
		fmt.Println(tables.Table5(sets, m, *runs))
	}
	if *quality {
		// The n²-based algorithms make full fpppp impractical; keep the
		// quality race to windowed sets, like Table 4.
		var qsets []tables.BenchmarkSet
		for _, s := range sets {
			if s.Name == "fpppp" || s.Name == "fpppp-2000" || s.Name == "fpppp-4000" {
				continue
			}
			qsets = append(qsets, s)
		}
		fmt.Println(tables.QualityTable(qsets, m))
	}
	if *optim {
		var osets []tables.BenchmarkSet
		for _, s := range sets {
			if !strings.HasPrefix(s.Name, "fpppp-") {
				osets = append(osets, s)
			}
		}
		fmt.Println(tables.OptimalityTable(osets, m, *maxBB))
	}
	if *scaling {
		fmt.Println(tables.ScalingTable(m, nil, *runs))
	}
	if *ablate {
		var asets []tables.BenchmarkSet
		for _, s := range sets {
			if !strings.HasPrefix(s.Name, "fpppp") {
				asets = append(asets, s)
			}
		}
		fmt.Println(tables.AblationTable(asets, m))
	}
	if *winners {
		var wsets []tables.BenchmarkSet
		for _, s := range sets {
			if s.Name == "fpppp" || s.Name == "fpppp-2000" || s.Name == "fpppp-4000" {
				continue
			}
			wsets = append(wsets, s)
		}
		fmt.Println(tables.WinnersBySize(wsets, m))
	}
}
