// Schedbench regenerates the experimental tables of Smotherman et al.
// (MICRO-24, 1991): Table 3 (benchmark structure), Table 4 (the n²
// construction approach), Table 5 (the two table-building approaches)
// and the Figure 1 transitive-arc demonstration.
//
// Usage:
//
//	schedbench [-table3] [-table4] [-table5] [-fig1] [-all]
//	           [-model pipe1|fpu|asym|super2] [-runs 5] [-bench name]
//	schedbench -parallel [-workers N] [-builder tableb|tablef]
//	           [-verify] [-csr=bool] [-cache=bool]
//	           [-adaptive=bool] [-packedsel=bool] [-crossover N]
//	           [-chunk N] [-json BENCH_engine.json]
//	schedbench -chaos [-seed N] [-faultrate r] [-workers N]
//	           [-bench name]
//	schedbench -stream [-insts 100e6] [-depth N] [-workers N]
//	           [-bench name] [-json BENCH_engine.json]
//	schedbench -cachefile sched.cache [-warmexpect 0.99] [-workers N]
//	           [-json BENCH_engine.json]
//	schedbench -serve http://127.0.0.1:7077 [-serverate 50]
//	           [-serveduration 3s] [-servetenants 3] [-servewarm 0.9]
//	           [-servecheck] [-json BENCH_engine.json]
//	schedbench -diff fresh.json [-json BENCH_engine.json]
//	           [-tolerance 0.5]
//	schedbench -diffselftest [-json BENCH_engine.json] [-tolerance 0.5]
//
// With no table flags, -all is assumed. As in the paper, Table 4 stops
// at fpppp-1000: the n² approach's "excessive time and space
// requirements" are the point being demonstrated, and the instruction
// window caps them.
//
// -parallel benchmarks the batch scheduling engine (internal/engine):
// each benchmark's blocks are scheduled once by a single-worker engine
// and once by an N-worker pool, both warmed so the measurement sees
// the steady (allocation-free) state, and the per-benchmark engine
// statistics are written as JSON.
//
// With -adaptive (the default) the N-worker engine uses adaptive
// builder dispatch and size-binned distribution, a third fixed-
// pipeline engine (DisableAdaptive) is raced against it to report the
// adaptive speedup, a pooled "mixed" corpus of every benchmark's
// blocks is appended, and each benchmark's per-size-bin breakdown is
// printed and recorded. -crossover and -chunk pass through to
// engine.Config (0 = calibrate / default).
//
// With -packedsel (the default) the mixed corpus is additionally raced
// with the schedule cache disabled against a DisablePackedSel engine,
// so the report isolates what the packed-priority selection engine —
// precomputed priority words, heap pick loop, 8-byte arcs — buys over
// the winnowing rescan; the result lands in the JSON's "packedsel"
// section.
//
// -chaos runs the fault-injection gate (see chaos.go): a seeded
// fault.Plan is fired at the engine over the selected benchmark
// corpus and the run must recover every faulted block through the
// degradation ladder while staying byte-identical to a fault-free run.
//
// -stream benchmarks the streaming pipeline (see stream.go): the
// constant-memory synthetic producer feeds Engine.RunStream until
// -insts instructions have flowed through, and steady-state
// throughput, queue occupancy and the RSS high-water mark are merged
// into the engine JSON alongside a batch-mode yardstick.
//
// -cachefile runs the warm-start benchmark (see warmstart.go): one
// engine populates (or is served from) the persistent schedule-cache
// file, a fresh engine reopens it, and the report states the
// cold→warm latency and throughput deltas after proving the warm
// schedules byte-identical to a cache-disabled reference. -warmexpect
// turns the first pass into CI's cross-process persistence gate.
//
// -serve runs the service load benchmark (see serve.go): open-loop
// arrival at a fixed rate against a running schedd daemon, a
// round-robin multi-tenant request mix, p50/p99 latency and the shed
// rate merged into the engine JSON. -servecheck proves every 200
// response byte-identical to a local cache-disabled reference;
// -servewarm gates the daemon's cache hit rate over the window (CI's
// kill-proof warm-restart gate).
//
// -diff and -diffselftest are the perf-regression gate (see diff.go):
// a fresh engine JSON is compared against the committed baseline with
// a tolerance band, exiting 3 on regression; the self-test proves the
// gate fires on injected regressions.
//
// Exit codes are distinct by failure class: 0 success, 1 runtime or
// chaos-gate failure, 2 usage error (bad flag or flag value), 3
// performance regression flagged by -diff, 4 internal error (a panic
// caught at the top-level guard).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"daginsched/internal/block"
	"daginsched/internal/engine"
	"daginsched/internal/machine"
	"daginsched/internal/tables"
)

// The tool's exit codes, one per failure class.
const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
	exitRegress = 3
	exitPanic   = 4
)

func main() { os.Exit(run()) }

// run is main behind the panic guard: a caught panic is reported as a
// one-line diagnostic and the distinct internal-error exit code, never
// a stack trace.
func run() (code int) {
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(os.Stderr, "schedbench: internal error: %v\n", p)
			code = exitPanic
		}
	}()
	var (
		t3       = flag.Bool("table3", false, "print Table 3 (structural data)")
		t4       = flag.Bool("table4", false, "print Table 4 (n**2 approach)")
		t5       = flag.Bool("table5", false, "print Table 5 (table-building approaches)")
		fig1     = flag.Bool("fig1", false, "print the Figure 1 demonstration")
		quality  = flag.Bool("quality", false, "print the cross-algorithm quality comparison")
		optim    = flag.Bool("optimality", false, "print the branch-and-bound optimality study (future work 1)")
		winners  = flag.Bool("winners", false, "print the best-algorithm-by-block-size study (future work 2)")
		scaling  = flag.Bool("scaling", false, "print the DAG-construction scaling study (single growing block)")
		ablate   = flag.Bool("ablate", false, "print the per-rank heuristic ablation study")
		maxBB    = flag.Int("maxbb", 12, "block-size cap for the optimality study")
		all      = flag.Bool("all", false, "print everything")
		model    = flag.String("model", "pipe1", "machine model (pipe1, fpu, asym, super2)")
		runs     = flag.Int("runs", 5, "timing runs to average (the paper used five)")
		bench    = flag.String("bench", "", "restrict to one benchmark (prefix match)")
		par      = flag.Bool("parallel", false, "benchmark the parallel batch engine")
		workers  = flag.Int("workers", 0, "engine worker-pool size for -parallel (0 = GOMAXPROCS)")
		builder  = flag.String("builder", "tableb", "engine construction pipeline for -parallel (tableb, tablef)")
		verify   = flag.Bool("verify", false, "cross-check every engine schedule on the scoreboard simulator")
		csr      = flag.Bool("csr", true, "use the frozen flat-adjacency (CSR) hot path for -parallel")
		cache    = flag.Bool("cache", true, "enable the block-fingerprint schedule cache for -parallel")
		adaptive = flag.Bool("adaptive", true, "use adaptive builder dispatch + binned distribution for -parallel, racing a fixed-pipeline engine")
		packed   = flag.Bool("packedsel", true, "race the packed-priority selection engine against the winnowing rescan (cache off, mixed corpus) for -parallel")
		cross    = flag.Int("crossover", 0, "adaptive n² size threshold for -parallel (0 = calibrate, <0 = never)")
		chunk    = flag.Int("chunk", 0, "small-block chunk size per atomic fetch for -parallel (0 = default)")
		jsonOut  = flag.String("json", "BENCH_engine.json", "file for -parallel engine statistics JSON")
		chaos    = flag.Bool("chaos", false, "run the fault-injection chaos gate against the engine")
		seed     = flag.Uint64("seed", 1, "fault-plan seed for -chaos")
		rate     = flag.Float64("faultrate", 0.08, "per-point injection rate for -chaos, in [0, 1]")
		stream   = flag.Bool("stream", false, "benchmark the streaming engine pipeline (RunStream) over the synthetic producer")
		cacheFn  = flag.String("cachefile", "", "persistent schedule-cache file: run the warm-start benchmark against it (populate, reopen in a fresh engine, compare)")
		warmExp  = flag.Float64("warmexpect", 0, "fail unless -cachefile's first pass is served from the file with at least this hit rate (0 disables; CI's cross-process gate)")
		insts    = flag.Float64("insts", 2e6, "instruction target for -stream (scientific notation welcome: -insts 100e6)")
		depth    = flag.Int("depth", 0, "bounded queue depth in blocks for -stream (0 = engine default)")
		serveURL = flag.String("serve", "", "schedd base URL: fire the open-loop service load benchmark at it (e.g. http://127.0.0.1:7077)")
		srvRate  = flag.Float64("serverate", 50, "offered arrival rate for -serve, requests/sec")
		srvDur   = flag.Duration("serveduration", 3*time.Second, "load window for -serve")
		srvTen   = flag.Int("servetenants", 3, "distinct X-Tenant identities for -serve")
		srvWarm  = flag.Float64("servewarm", 0, "fail unless the daemon's cache hit rate over the -serve window is at least this (0 disables; CI's warm-restart gate)")
		srvCheck = flag.Bool("servecheck", false, "verify every -serve 200 response byte-identical to a local cache-disabled reference engine")
		diffPath = flag.String("diff", "", "fresh engine JSON to gate against the -json baseline; exit 3 on perf regression")
		tol      = flag.Float64("tolerance", 0.5, "relative tolerance band for -diff and -diffselftest, in [0, 1)")
		selftest = flag.Bool("diffselftest", false, "verify the -diff gate catches injected regressions against the -json baseline")
	)
	flag.Parse()
	if !*t3 && !*t4 && !*t5 && !*fig1 && !*quality && !*optim && !*winners && !*scaling && !*ablate &&
		!*par && !*chaos && !*stream && *cacheFn == "" && *serveURL == "" && *diffPath == "" && !*selftest {
		*all = true
	}
	if *srvWarm < 0 || *srvWarm > 1 {
		return fail(exitUsage, "-servewarm %v outside [0, 1]", *srvWarm)
	}
	if *srvWarm > 0 && *serveURL == "" {
		return fail(exitUsage, "-servewarm needs -serve")
	}
	if *warmExp < 0 || *warmExp > 1 {
		return fail(exitUsage, "-warmexpect %v outside [0, 1]", *warmExp)
	}
	if *warmExp > 0 && *cacheFn == "" {
		return fail(exitUsage, "-warmexpect needs -cachefile")
	}
	m, ok := machine.ByName(*model)
	if !ok {
		return fail(exitUsage, "unknown machine model %q", *model)
	}
	if *rate < 0 || *rate > 1 {
		return fail(exitUsage, "-faultrate %v outside [0, 1]", *rate)
	}
	if *tol < 0 || *tol >= 1 {
		return fail(exitUsage, "-tolerance %v outside [0, 1)", *tol)
	}

	// The diff gate is a standalone mode: it reads JSON documents that
	// earlier runs produced and never touches the engine.
	if *diffPath != "" || *selftest {
		if *selftest {
			if err := runDiffSelfTest(*jsonOut, *tol); err != nil {
				return fail(exitRuntime, "diff self-test: %v", err)
			}
		}
		if *diffPath != "" {
			regressed, err := runDiff(diffConfig{freshPath: *diffPath, basePath: *jsonOut, tolerance: *tol})
			if err != nil {
				return fail(exitRuntime, "diff gate: %v", err)
			}
			if regressed {
				return fail(exitRegress, "performance regressed outside the %.0f%% tolerance band", *tol*100)
			}
		}
		return exitOK
	}

	sets := tables.Table3Sets()
	if *bench != "" {
		var filtered []tables.BenchmarkSet
		for _, s := range sets {
			if strings.HasPrefix(s.Name, *bench) {
				filtered = append(filtered, s)
			}
		}
		if len(filtered) == 0 {
			return fail(exitUsage, "no benchmark matches %q", *bench)
		}
		sets = filtered
	}

	if *all || *fig1 {
		fmt.Println(tables.Figure1(m))
	}
	if *all || *t3 {
		fmt.Println(tables.Table3(sets))
	}
	if *all || *t4 {
		// The paper did not run n² past a 1000-instruction window.
		var t4sets []tables.BenchmarkSet
		for _, s := range sets {
			if s.Name == "fpppp" || s.Name == "fpppp-2000" || s.Name == "fpppp-4000" {
				continue
			}
			t4sets = append(t4sets, s)
		}
		fmt.Println(tables.Table4(t4sets, m, *runs))
	}
	if *all || *t5 {
		fmt.Println(tables.Table5(sets, m, *runs))
	}
	if *quality {
		// The n²-based algorithms make full fpppp impractical; keep the
		// quality race to windowed sets, like Table 4.
		var qsets []tables.BenchmarkSet
		for _, s := range sets {
			if s.Name == "fpppp" || s.Name == "fpppp-2000" || s.Name == "fpppp-4000" {
				continue
			}
			qsets = append(qsets, s)
		}
		fmt.Println(tables.QualityTable(qsets, m))
	}
	if *optim {
		var osets []tables.BenchmarkSet
		for _, s := range sets {
			if !strings.HasPrefix(s.Name, "fpppp-") {
				osets = append(osets, s)
			}
		}
		fmt.Println(tables.OptimalityTable(osets, m, *maxBB))
	}
	if *scaling {
		fmt.Println(tables.ScalingTable(m, nil, *runs))
	}
	if *ablate {
		var asets []tables.BenchmarkSet
		for _, s := range sets {
			if !strings.HasPrefix(s.Name, "fpppp") {
				asets = append(asets, s)
			}
		}
		fmt.Println(tables.AblationTable(asets, m))
	}
	if *winners {
		var wsets []tables.BenchmarkSet
		for _, s := range sets {
			if s.Name == "fpppp" || s.Name == "fpppp-2000" || s.Name == "fpppp-4000" {
				continue
			}
			wsets = append(wsets, s)
		}
		fmt.Println(tables.WinnersBySize(wsets, m))
	}
	if *par {
		cfg := parallelConfig{
			workers: *workers, builder: *builder, verify: *verify, csr: *csr,
			cache: *cache, adaptive: *adaptive, packedsel: *packed,
			crossover: *cross, chunk: *chunk,
		}
		if err := runParallel(sets, m, *model, cfg, *jsonOut); err != nil {
			return fail(exitRuntime, "%v", err)
		}
	}
	if *stream {
		cfg := parallelConfig{
			workers: *workers, builder: *builder, verify: *verify, csr: *csr,
			cache: *cache, adaptive: *adaptive, crossover: *cross, chunk: *chunk,
		}
		if err := runStream(m, *model, cfg, *insts, *depth, *bench, *jsonOut); err != nil {
			return fail(exitRuntime, "stream: %v", err)
		}
	}
	if *cacheFn != "" {
		cfg := parallelConfig{
			workers: *workers, builder: *builder, verify: *verify, csr: *csr,
			cache: *cache, adaptive: *adaptive, crossover: *cross, chunk: *chunk,
		}
		if err := runWarmstart(sets, m, *model, cfg, *cacheFn, *warmExp, *jsonOut); err != nil {
			return fail(exitRuntime, "warm start: %v", err)
		}
	}
	if *serveURL != "" {
		cfg := serveConfig{
			url: *serveURL, rate: *srvRate, duration: *srvDur,
			tenants: *srvTen, warmExpect: *srvWarm, check: *srvCheck,
		}
		if err := runServe(sets, m, cfg, *jsonOut); err != nil {
			return fail(exitRuntime, "serve: %v", err)
		}
	}
	if *chaos {
		if err := runChaos(sets, m, chaosConfig{seed: *seed, rate: *rate, workers: *workers}); err != nil {
			return fail(exitRuntime, "chaos gate: %v", err)
		}
	}
	return exitOK
}

// fail prints the one-line diagnostic and returns the exit code.
func fail(code int, format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "schedbench: "+format+"\n", args...)
	return code
}

// engineReport is one benchmark's serial-vs-parallel engine comparison.
// Serial and Parallel are the steady-state (second-pass) runs, so with
// the cache enabled they see a warm cache; the Delta fields record how
// much the warm pass improved on the cold first pass of the parallel
// engine (positive = warm is faster), and HitRate is the warm parallel
// pass's cache hit rate.
type engineReport struct {
	Name           string       `json:"name"`
	Serial         engine.Stats `json:"serial"`
	Parallel       engine.Stats `json:"parallel"`
	Speedup        float64      `json:"speedup"`
	HitRate        float64      `json:"hit_rate"`
	DeltaP50Micros float64      `json:"delta_p50_micros"`
	DeltaP99Micros float64      `json:"delta_p99_micros"`
	// Fixed is the warm run of the fixed-pipeline engine raced against
	// the adaptive one (only under -adaptive), and AdaptiveSpeedup is
	// fixed wall over adaptive wall — above 1 means adaptive dispatch
	// plus binned distribution beat the fixed per-block-grab pipeline.
	// Its cold/warm p50/p99 sit alongside Parallel's for comparison.
	Fixed           *engine.Stats `json:"fixed,omitempty"`
	AdaptiveSpeedup float64       `json:"adaptive_speedup,omitempty"`
}

// engineFile is the BENCH_engine.json document.
type engineFile struct {
	Model      string         `json:"model"`
	Builder    string         `json:"builder"`
	Workers    int            `json:"workers"`
	CSR        bool           `json:"csr"`
	Cache      bool           `json:"cache"`
	Adaptive   bool           `json:"adaptive"`
	Crossover  int            `json:"crossover,omitempty"`
	ChunkSize  int            `json:"chunk_size,omitempty"`
	Benchmarks []engineReport `json:"benchmarks"`
	// Stream is the -stream run's section, written by mergeStreamReport
	// and preserved across -parallel rewrites of the document.
	Stream *streamReport `json:"stream,omitempty"`
	// Warmstart is the -cachefile run's section, written by
	// mergeWarmstartReport and likewise preserved.
	Warmstart *warmstartReport `json:"warmstart,omitempty"`
	// PackedSel is the -packedsel race's section, rewritten by -parallel
	// runs with -packedsel on and preserved by everything else.
	PackedSel *packedselReport `json:"packedsel,omitempty"`
	// Serve is the -serve load run's section, written by
	// mergeServeReport and likewise preserved.
	Serve *serveReport `json:"serve,omitempty"`
}

// packedselReport records the packed-priority selection race: the same
// mixed corpus scheduled with the cache disabled (so every block pays
// for selection) by the default engine and by a DisablePackedSel
// engine, both warm. Speedup is winnow wall over packed wall.
type packedselReport struct {
	Packed  engine.Stats `json:"packed"`
	Winnow  engine.Stats `json:"winnow"`
	Speedup float64      `json:"speedup"`
}

// parallelConfig carries the -parallel flag group.
type parallelConfig struct {
	workers   int
	builder   string
	verify    bool
	csr       bool
	cache     bool
	adaptive  bool
	packedsel bool
	crossover int
	chunk     int
}

// runParallel benchmarks the batch engine over every set: a warmed
// single-worker run against a warmed N-worker run (and, under
// -adaptive, a warmed fixed-pipeline N-worker run raced against the
// adaptive one), printed as a table and written as JSON. Speedup is
// hardware-dependent — it tracks the machine's physical core count,
// not the configured worker count.
func runParallel(sets []tables.BenchmarkSet, m *machine.Model, modelName string, cfg parallelConfig, jsonPath string) error {
	mk := func(w int, disableAdaptive bool) (*engine.Engine, error) {
		return engine.New(engine.Config{
			Workers: w, Model: m, Builder: cfg.builder, Verify: cfg.verify,
			DisableCSR: !cfg.csr, Cache: cfg.cache,
			DisableAdaptive: disableAdaptive, Crossover: cfg.crossover, ChunkSize: cfg.chunk,
		})
	}
	serial, err := mk(1, !cfg.adaptive)
	if err != nil {
		return err
	}
	parallel, err := mk(cfg.workers, !cfg.adaptive)
	if err != nil {
		return err
	}
	// The pooled mixed corpus: tiny spice-like blocks riding alongside
	// windowed fpppp giants. It is the adaptive dispatch's home turf and
	// the packed-selection race's measuring ground.
	var mixed []*block.Block
	for _, set := range sets {
		mixed = append(mixed, set.Blocks...)
	}
	var fixedPar *engine.Engine
	if cfg.adaptive {
		if fixedPar, err = mk(cfg.workers, true); err != nil {
			return err
		}
		sets = append(sets, tables.BenchmarkSet{Name: "mixed", Blocks: mixed})
	}

	fmt.Printf("Parallel batch engine: builder %s, %d workers, model %s, csr %v, cache %v, adaptive %v (crossover %d)\n\n",
		cfg.builder, parallel.Workers(), modelName, cfg.csr, cfg.cache, cfg.adaptive, parallel.Crossover())
	adaptCol := ""
	if cfg.adaptive {
		adaptCol = "   adapt"
	}
	fmt.Printf("%-12s %8s %8s %14s %14s %8s %9s %9s %7s%s\n",
		"benchmark", "#blocks", "#insts", "serial blk/s", "parallel blk/s",
		"speedup", "p50(us)", "p99(us)", "hit%", adaptCol)
	fmt.Println(strings.Repeat("-", 98+len(adaptCol)))

	doc := engineFile{
		Model: modelName, Builder: cfg.builder, Workers: parallel.Workers(),
		CSR: cfg.csr, Cache: cfg.cache, Adaptive: cfg.adaptive,
		Crossover: parallel.Crossover(), ChunkSize: parallel.ChunkSize(),
	}
	for _, set := range sets {
		// Two runs per engine: the first grows every worker arena (and,
		// with the cache on, fills it), the second measures the steady
		// state. The parallel engine's cold pass is kept so the report
		// can state the cold→warm p50/p99 deltas.
		var cold engine.Stats
		stats := make([]engine.Stats, 2)
		for i, e := range []*engine.Engine{serial, parallel} {
			res := new(engine.BatchResult)
			if _, err := e.RunInto(res, set.Blocks); err != nil {
				return fmt.Errorf("%s: %w", set.Name, err)
			}
			if i == 1 {
				cold = res.Stats
			}
			if _, err := e.RunInto(res, set.Blocks); err != nil {
				return fmt.Errorf("%s: %w", set.Name, err)
			}
			stats[i] = res.Stats
		}
		rep := engineReport{
			Name: set.Name, Serial: stats[0], Parallel: stats[1],
			HitRate:        stats[1].CacheHitRate,
			DeltaP50Micros: cold.P50Micros - stats[1].P50Micros,
			DeltaP99Micros: cold.P99Micros - stats[1].P99Micros,
		}
		if stats[1].WallSeconds > 0 {
			rep.Speedup = stats[0].WallSeconds / stats[1].WallSeconds
		}
		adaptCell := ""
		if cfg.adaptive {
			res := new(engine.BatchResult)
			if _, err := fixedPar.RunInto(res, set.Blocks); err != nil {
				return fmt.Errorf("%s (fixed): %w", set.Name, err)
			}
			if _, err := fixedPar.RunInto(res, set.Blocks); err != nil {
				return fmt.Errorf("%s (fixed): %w", set.Name, err)
			}
			fixed := res.Stats
			rep.Fixed = &fixed
			if stats[1].WallSeconds > 0 {
				rep.AdaptiveSpeedup = fixed.WallSeconds / stats[1].WallSeconds
			}
			adaptCell = fmt.Sprintf("  %5.2fx", rep.AdaptiveSpeedup)
		}
		doc.Benchmarks = append(doc.Benchmarks, rep)
		fmt.Printf("%-12s %8d %8d %14.0f %14.0f %7.2fx %9.1f %9.1f %6.1f%%%s\n",
			set.Name, rep.Parallel.Blocks, rep.Parallel.Insts,
			rep.Serial.BlocksPerSec, rep.Parallel.BlocksPerSec,
			rep.Speedup, rep.Parallel.P50Micros, rep.Parallel.P99Micros,
			rep.HitRate*100, adaptCell)
		if cfg.adaptive {
			printBins(set.Name, rep.Parallel.Bins)
		}
	}

	if cfg.packedsel {
		rep, err := runPackedSelRace(mixed, m, cfg)
		if err != nil {
			return err
		}
		doc.PackedSel = rep
		fmt.Printf("\npacked selection race (mixed, cache off): packed %.0f insts/s (%d/%d blocks packed), winnow %.0f insts/s, speedup %.2fx\n",
			rep.Packed.InstsPerSec, rep.Packed.PackedSelBlocks, rep.Packed.Blocks,
			rep.Winnow.InstsPerSec, rep.Speedup)
	}

	// -stream and -cachefile sections recorded by earlier runs ride
	// along (and the packedsel section too, when this run didn't race it).
	if old, err := readEngineFile(jsonPath); err == nil {
		doc.Stream = old.Stream
		doc.Warmstart = old.Warmstart
		doc.Serve = old.Serve
		if doc.PackedSel == nil {
			doc.PackedSel = old.PackedSel
		}
	}
	if err := writeEngineFile(jsonPath, &doc); err != nil {
		return err
	}
	fmt.Printf("\nengine statistics written to %s\n", jsonPath)
	return nil
}

// runPackedSelRace measures the packed-priority selection engine
// against the winnowing rescan on the mixed corpus. The schedule cache
// is off for both engines so every block pays for selection on every
// run — with it on, a warm pass would serve hits and measure memcpy,
// not the pick loop. Both engines are warmed with one full pass, then
// the timed passes alternate arms and each arm keeps its best (lowest
// wall) pass: interleaving cancels slow drift in machine load, and the
// per-arm minimum discards transient stalls the way benchstat's min
// column does, so the recorded speedup reflects the code, not the
// neighbors on the box.
func runPackedSelRace(mixed []*block.Block, m *machine.Model, cfg parallelConfig) (*packedselReport, error) {
	mk := func(disable bool) (*engine.Engine, error) {
		return engine.New(engine.Config{
			Workers: cfg.workers, Model: m, Builder: cfg.builder,
			DisableCSR: !cfg.csr, DisablePackedSel: disable,
			Crossover: cfg.crossover, ChunkSize: cfg.chunk,
		})
	}
	rep := new(packedselReport)
	arms := []struct {
		disable bool
		stats   *engine.Stats
	}{{false, &rep.Packed}, {true, &rep.Winnow}}
	engines := make([]*engine.Engine, len(arms))
	res := new(engine.BatchResult)
	for i, arm := range arms {
		e, err := mk(arm.disable)
		if err != nil {
			return nil, err
		}
		if _, err := e.RunInto(res, mixed); err != nil {
			return nil, fmt.Errorf("packedsel race: %w", err)
		}
		engines[i] = e
	}
	// Passes are cheap (the mixed corpus is small) and the best-of-N
	// estimate converges on the machine's true speed as N grows.
	const passes = 10
	for pass := 0; pass < passes; pass++ {
		for i, arm := range arms {
			if _, err := engines[i].RunInto(res, mixed); err != nil {
				return nil, fmt.Errorf("packedsel race: %w", err)
			}
			if pass == 0 || res.Stats.WallSeconds < arm.stats.WallSeconds {
				*arm.stats = res.Stats
			}
		}
	}
	if rep.Packed.WallSeconds > 0 {
		rep.Speedup = rep.Winnow.WallSeconds / rep.Packed.WallSeconds
	}
	return rep, nil
}

// printBins renders one warm adaptive run's per-size-bin breakdown:
// which pipeline (n²-direct, table, or cache hit) scheduled each bin's
// blocks and the bin's share of the summed per-block time.
func printBins(name string, bins []engine.BinStats) {
	for _, bin := range bins {
		if bin.Blocks == 0 {
			continue
		}
		fmt.Printf("  %-10s %6s %8d blocks %9d insts  n2 %-6d table %-6d cached %-8d wall %5.1f%%\n",
			name, bin.Label, bin.Blocks, bin.Insts,
			bin.N2Blocks, bin.TableBlocks, bin.CachedBlocks, bin.WallShare*100)
	}
}
