// The -diff perf-regression gate: compare a fresh engine benchmark
// JSON against the committed BENCH_engine.json baseline, benchmark by
// benchmark, and fail (exit 3) when the fresh run regressed outside
// the tolerance band. Three figures gate each benchmark's warm
// parallel run — throughput (insts/sec, must not fall below
// base·(1−tol)) and the p50/p99 per-block latencies (must not rise
// above base·(1+tol), with a small absolute floor so sub-microsecond
// baselines don't flap on scheduler jitter, and extra tail headroom
// on p99 — see p99TailHeadroom). A streaming section, when
// both documents carry one, is gated on its throughput the same way,
// and a serve section on its goodput and p99 request latency (with a
// milliseconds-scale absolute floor — loopback HTTP jitter dwarfs the
// microsecond one).
//
// The tolerance is deliberately wide by default (50%): wall-clock
// benchmarks on shared CI hardware are noisy, and the gate is meant to
// catch the pathological regression — an accidental O(n²) fallback, a
// lost cache, a serialized pipeline — not a two-percent drift.
//
// -diffselftest proves the gate can actually fire: it doctors a copy
// of the baseline in memory (throughput cut, latency inflated, both
// past any tolerance), runs the comparison, and fails unless the
// doctored copy is flagged and the undoctored copy passes.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// latencyFloorMicros is the absolute slack added to the latency bound:
// on shared hardware a sub-microsecond baseline p99 routinely spikes
// to a few microseconds under host load, which is scheduler noise,
// not a regression worth failing CI over. The floor is sized so the
// gate still catches what it exists for — a lost cache or serialized
// pipeline blows p99 by orders of magnitude, not single microseconds.
const latencyFloorMicros = 5.0

// p99TailHeadroom widens the p99 band beyond the p50 one: a single
// run's 99th percentile of per-block latency is a tail statistic, and
// on shared hardware it routinely spreads 3× between identical runs
// as host neighbors come and go. The tail gate therefore only fires
// on the order-of-magnitude blow-up a real regression produces; the
// stable p50 keeps the tight band.
const p99TailHeadroom = 2.5

// serveLatencyFloorMillis is the same idea for the -serve section:
// whole-request latencies through a loopback HTTP daemon carry
// milliseconds of scheduler and network-stack jitter, so a baseline
// p99 gets that much absolute slack on top of the relative band.
const serveLatencyFloorMillis = 25.0

// diffConfig carries the -diff flag group.
type diffConfig struct {
	freshPath string  // fresh JSON (-diff)
	basePath  string  // baseline JSON (-json)
	tolerance float64 // relative band, in [0, 1)
}

// readEngineFile loads and decodes an engine JSON document.
func readEngineFile(path string) (*engineFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := new(engineFile)
	if err := json.Unmarshal(data, doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// readEngineFileForMerge loads an engine JSON document a report
// section will be merged into. A missing or empty file — mktemp
// creates empty files, and CI hands those straight to -json — is a
// fresh document, not an error; anything else malformed still is.
func readEngineFileForMerge(path string) (*engineFile, error) {
	doc, err := readEngineFile(path)
	if err == nil {
		return doc, nil
	}
	if os.IsNotExist(err) {
		return &engineFile{}, nil
	}
	if info, statErr := os.Stat(path); statErr == nil && info.Size() == 0 {
		return &engineFile{}, nil
	}
	return nil, err
}

// writeEngineFile encodes and writes an engine JSON document.
func writeEngineFile(path string, doc *engineFile) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// runDiff executes the gate; regressed reports whether any benchmark
// fell outside the band (the caller turns that into exit code 3).
func runDiff(cfg diffConfig) (regressed bool, err error) {
	base, err := readEngineFile(cfg.basePath)
	if err != nil {
		return false, err
	}
	fresh, err := readEngineFile(cfg.freshPath)
	if err != nil {
		return false, err
	}
	fmt.Printf("Perf diff: %s (fresh) vs %s (baseline), tolerance %.0f%%\n\n",
		cfg.freshPath, cfg.basePath, cfg.tolerance*100)
	n := compareEngineFiles(base, fresh, cfg.tolerance, os.Stdout)
	if n > 0 {
		return true, nil
	}
	fmt.Println("\nno regression outside the tolerance band")
	return false, nil
}

// compareEngineFiles prints a delta line per benchmark common to both
// documents and returns the number of out-of-band regressions.
func compareEngineFiles(base, fresh *engineFile, tol float64, w io.Writer) (regressions int) {
	baseBy := make(map[string]*engineReport, len(base.Benchmarks))
	for i := range base.Benchmarks {
		baseBy[base.Benchmarks[i].Name] = &base.Benchmarks[i]
	}
	fmt.Fprintf(w, "%-12s %14s %14s %8s %10s %10s  %s\n",
		"benchmark", "base ips", "fresh ips", "delta", "p50(us)", "p99(us)", "verdict")
	compared := 0
	for i := range fresh.Benchmarks {
		fr := &fresh.Benchmarks[i]
		ba, ok := baseBy[fr.Name]
		if !ok {
			continue
		}
		compared++
		var bad []string
		if fr.Parallel.InstsPerSec < ba.Parallel.InstsPerSec*(1-tol) {
			bad = append(bad, "throughput")
		}
		if fr.Parallel.P50Micros > ba.Parallel.P50Micros*(1+tol)+latencyFloorMicros {
			bad = append(bad, "p50")
		}
		if fr.Parallel.P99Micros > ba.Parallel.P99Micros*(1+tol)*p99TailHeadroom+latencyFloorMicros {
			bad = append(bad, "p99")
		}
		verdict := "ok"
		if len(bad) > 0 {
			regressions++
			verdict = "REGRESSED"
			for _, b := range bad {
				verdict += " " + b
			}
		}
		delta := 0.0
		if ba.Parallel.InstsPerSec > 0 {
			delta = fr.Parallel.InstsPerSec/ba.Parallel.InstsPerSec - 1
		}
		fmt.Fprintf(w, "%-12s %14.0f %14.0f %+7.1f%% %10.1f %10.1f  %s\n",
			fr.Name, ba.Parallel.InstsPerSec, fr.Parallel.InstsPerSec, delta*100,
			fr.Parallel.P50Micros, fr.Parallel.P99Micros, verdict)
	}
	if base.PackedSel != nil && fresh.PackedSel != nil {
		compared++
		verdict := "ok"
		if fresh.PackedSel.Packed.InstsPerSec < base.PackedSel.Packed.InstsPerSec*(1-tol) {
			regressions++
			verdict = "REGRESSED throughput"
		}
		fmt.Fprintf(w, "%-12s %14.0f %14.0f %+7.1f%% %10s %10s  %s\n",
			"packedsel", base.PackedSel.Packed.InstsPerSec, fresh.PackedSel.Packed.InstsPerSec,
			(fresh.PackedSel.Packed.InstsPerSec/base.PackedSel.Packed.InstsPerSec-1)*100,
			"-", "-", verdict)
	}
	if base.Stream != nil && fresh.Stream != nil {
		compared++
		verdict := "ok"
		if fresh.Stream.Stats.InstsPerSec < base.Stream.Stats.InstsPerSec*(1-tol) {
			regressions++
			verdict = "REGRESSED throughput"
		}
		fmt.Fprintf(w, "%-12s %14.0f %14.0f %+7.1f%% %10s %10s  %s\n",
			"stream", base.Stream.Stats.InstsPerSec, fresh.Stream.Stats.InstsPerSec,
			(fresh.Stream.Stats.InstsPerSec/base.Stream.Stats.InstsPerSec-1)*100,
			"-", "-", verdict)
	}
	if base.Serve != nil && fresh.Serve != nil {
		compared++
		var bad []string
		if fresh.Serve.OKPerSec < base.Serve.OKPerSec*(1-tol) {
			bad = append(bad, "goodput")
		}
		if fresh.Serve.P99Millis > base.Serve.P99Millis*(1+tol)+serveLatencyFloorMillis {
			bad = append(bad, "p99")
		}
		verdict := "ok"
		if len(bad) > 0 {
			regressions++
			verdict = "REGRESSED"
			for _, b := range bad {
				verdict += " " + b
			}
		}
		delta := 0.0
		if base.Serve.OKPerSec > 0 {
			delta = fresh.Serve.OKPerSec/base.Serve.OKPerSec - 1
		}
		fmt.Fprintf(w, "%-12s %14.0f %14.0f %+7.1f%% %10s %10.1f  %s\n",
			"serve", base.Serve.OKPerSec, fresh.Serve.OKPerSec, delta*100,
			"-", fresh.Serve.P99Millis, verdict)
	}
	if compared == 0 {
		// No overlap means the gate silently checked nothing; surface
		// that as a regression so a renamed benchmark can't dodge it.
		fmt.Fprintf(w, "%-12s %14s %14s %8s %10s %10s  REGRESSED no common benchmarks\n",
			"(none)", "-", "-", "-", "-", "-")
		regressions++
	}
	return regressions
}

// runDiffSelfTest proves the gate fires: an undoctored copy of the
// baseline must pass, and copies with an injected throughput collapse
// or latency blow-up must each be flagged.
func runDiffSelfTest(basePath string, tol float64) error {
	base, err := readEngineFile(basePath)
	if err != nil {
		return err
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmarks to self-test against", basePath)
	}
	if n := compareEngineFiles(base, cloneEngineFile(base), tol, io.Discard); n != 0 {
		return fmt.Errorf("gate flagged %d regressions comparing the baseline with itself", n)
	}
	slow := cloneEngineFile(base)
	// Scale past any tolerance band so the self-test is meaningful at
	// whatever -tolerance the caller gates with.
	slow.Benchmarks[0].Parallel.InstsPerSec *= (1 - tol) / 2
	if n := compareEngineFiles(base, slow, tol, io.Discard); n == 0 {
		return fmt.Errorf("gate missed an injected throughput collapse on %q", slow.Benchmarks[0].Name)
	}
	lat := cloneEngineFile(base)
	lat.Benchmarks[0].Parallel.P99Micros = lat.Benchmarks[0].Parallel.P99Micros*(1+tol)*p99TailHeadroom*2 + 2*latencyFloorMicros
	if n := compareEngineFiles(base, lat, tol, io.Discard); n == 0 {
		return fmt.Errorf("gate missed an injected p99 blow-up on %q", lat.Benchmarks[0].Name)
	}
	fmt.Printf("diff gate self-test ok: baseline passes, injected throughput and latency regressions are caught (tolerance %.0f%%)\n", tol*100)
	return nil
}

// cloneEngineFile deep-copies the parts of the document the self-test
// doctors (the benchmark slice; Fixed/Bins stay shared — never written).
func cloneEngineFile(doc *engineFile) *engineFile {
	cp := *doc
	cp.Benchmarks = append([]engineReport(nil), doc.Benchmarks...)
	return &cp
}
