// Schedd is the scheduling daemon: a long-running HTTP service that
// accepts textual assembly — whole units on POST /v1/schedule,
// streamed NDJSON on POST /v1/stream — and answers each basic block's
// schedule from one shared engine. With -cachefile the engine's
// persistent tier makes restarts warm by construction: a killed
// daemon's successor serves byte-identical schedules straight from
// the file.
//
// Usage:
//
//	schedd [-addr :7077] [-model super2] [-workers n] [-cachefile path]
//	       [-blocktimeout d] [-verify] [-queue n] [-rate r] [-burst b]
//	       [-tenantrate r] [-tenantburst b] [-maxbody n] [-maxinflight n]
//	       [-deadline d] [-maxdeadline d]
//
// The daemon prints "schedd: listening on ADDR" once the socket is
// bound (the line supervisors and the CI gate wait for), serves until
// SIGTERM or SIGINT, then drains gracefully: admission stops (/readyz
// flips to 503), in-flight requests finish, the cache file is flushed
// via Engine.Close, and a one-line drain summary is logged.
//
// Exit codes are distinct by failure class: 0 clean shutdown, 1
// runtime failure (bind or serve error), 2 usage error (bad flag), 3
// bad configuration (a Config the engine or server rejected, or an
// unopenable cache file), 4 internal error (a panic caught at the
// top-level guard — always a bug).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"daginsched/internal/engine"
	"daginsched/internal/machine"
	"daginsched/internal/server"
)

// The daemon's exit codes, one per failure class.
const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
	exitConfig  = 3
	exitPanic   = 4
)

func main() { os.Exit(run()) }

// run is main behind the panic guard: no failure may crash the daemon
// with a bare stack trace — a caught panic is reported as a one-line
// diagnostic and the distinct internal-error exit code.
func run() (code int) {
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(os.Stderr, "schedd: internal error: %v\n", p)
			code = exitPanic
		}
	}()
	var (
		addr         = flag.String("addr", ":7077", "listen address")
		model        = flag.String("model", "super2", "machine model: pipe1, fpu, asym, super2")
		workers      = flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
		cachefile    = flag.String("cachefile", "", "persistent schedule-cache file (warm restarts)")
		cachecap     = flag.Int("cachecap", 0, "in-memory cache entry cap (0 = default)")
		blockTimeout = flag.Duration("blocktimeout", 50*time.Millisecond, "per-block soft deadline (0 = none)")
		verify       = flag.Bool("verify", false, "re-simulate every schedule on the scoreboard witness")
		queue        = flag.Int("queue", 0, "engine queue occupancy cap before 429 (0 = default)")
		rate         = flag.Float64("rate", 0, "global admission rate, requests/sec (0 = unlimited)")
		burst        = flag.Float64("burst", 0, "global admission burst (0 = rate)")
		tenantRate   = flag.Float64("tenantrate", 0, "per-tenant rate, requests/sec (0 = unlimited)")
		tenantBurst  = flag.Float64("tenantburst", 0, "per-tenant burst (0 = tenantrate)")
		maxBody      = flag.Int64("maxbody", 0, "per-request body cap in bytes (0 = default)")
		maxInflight  = flag.Int64("maxinflight", 0, "total in-flight request bytes cap (0 = default)")
		deadline     = flag.Duration("deadline", 0, "default per-request deadline (0 = 10s)")
		maxDeadline  = flag.Duration("maxdeadline", 0, "maximum per-request deadline (0 = 60s)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		return fail(exitUsage, "unexpected arguments: %v", flag.Args())
	}
	m, ok := machine.ByName(*model)
	if !ok {
		return fail(exitUsage, "unknown machine model %q", *model)
	}

	eng, err := engine.New(engine.Config{
		Workers:      *workers,
		Model:        m,
		KeepOrders:   true,
		Verify:       *verify,
		Cache:        true,
		CacheCap:     *cachecap,
		CachePath:    *cachefile,
		BlockTimeout: *blockTimeout,
	})
	if err != nil {
		// Both a rejected Config and an unopenable cache file are the
		// operator's configuration to fix, not runtime weather.
		return fail(exitConfig, "%v", err)
	}
	srv, err := server.New(server.Config{
		Engine:           eng,
		MaxQueue:         *queue,
		MaxBody:          *maxBody,
		MaxInflightBytes: *maxInflight,
		Rate:             *rate,
		Burst:            *burst,
		TenantRate:       *tenantRate,
		TenantBurst:      *tenantBurst,
		DefaultDeadline:  *deadline,
		MaxDeadline:      *maxDeadline,
	})
	if err != nil {
		return fail(exitConfig, "%v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(exitRuntime, "%v", err)
	}
	// The line supervisors (and scripts/ci.sh) wait for; the resolved
	// address matters when -addr asked for port 0.
	fmt.Printf("schedd: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "schedd: %v: draining\n", got)
	case err := <-serveErr:
		return fail(exitRuntime, "serve: %v", err)
	}

	// Drain protocol: stop admission and flush the cache file first
	// (bounded), then close the listener so in-flight responses finish
	// writing. The summary line is the operator's audit trail.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep := srv.Drain(ctx)
	_ = hs.Shutdown(ctx)
	fmt.Fprintf(os.Stderr, "schedd: %s\n", rep)
	if rep.CloseErr != nil {
		return exitRuntime
	}
	return exitOK
}

// fail prints the one-line diagnostic and returns the exit code.
func fail(code int, format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "schedd: "+format+"\n", args...)
	return code
}
