// Heursurvey prints the paper's two survey tables from the live code:
// Table 1 (the 26 heuristics, their six categories, calculation passes
// and transitive-arc sensitivity) and Table 2 (the six published
// scheduling algorithms). Because both are generated from the registry
// and the algorithm configurations the scheduler actually runs, the
// survey cannot drift from the implementation.
//
// Usage:
//
//	heursurvey [-table1] [-table2]
package main

import (
	"flag"
	"fmt"

	"daginsched/internal/tables"
)

func main() {
	t1 := flag.Bool("table1", false, "print only Table 1")
	t2 := flag.Bool("table2", false, "print only Table 2")
	flag.Parse()
	if !*t1 && !*t2 {
		*t1, *t2 = true, true
	}
	if *t1 {
		fmt.Println(tables.Table1())
	}
	if *t2 {
		fmt.Println(tables.Table2())
	}
}
