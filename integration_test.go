// Integration soak: the full cross-product correctness net. Every DAG
// builder × every scheduling algorithm × every machine model × every
// memory model, on larger randomized blocks than the per-package tests
// use, each schedule verified for completeness, legality, timing and
// architectural semantics. Run with -short to skip.
package daginsched_test

import (
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/dag"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/sched"
	"daginsched/internal/synth"
	"daginsched/internal/testgen"
	"daginsched/internal/verify"
)

func TestSoakCrossProduct(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	models := []*machine.Model{machine.Pipe1(), machine.FPU(), machine.Asym(), machine.Super2()}
	memModels := []resource.MemModel{
		resource.MemExprModel, resource.MemClassModel, resource.MemSingleModel,
	}
	algos := append(sched.Table2(), sched.SchlanskerVLIW())
	for seed := int64(0); seed < 6; seed++ {
		insts := testgen.Block(seed*31+7, 60)
		b := &block.Block{Name: "soak", Insts: insts}
		for i := range b.Insts {
			b.Insts[i].Index = i
		}
		for _, mm := range memModels {
			for _, m := range models {
				for _, bld := range dag.AllBuilders() {
					rt := resource.NewTable(mm)
					rt.PrepareBlock(b.Insts)
					d := bld.Build(b, m, rt)
					if err := d.Validate(); err != nil {
						t.Fatalf("seed %d %s/%s/%s: %v", seed, mm, m.Name, bld.Name(), err)
					}
					// A faithful (transitive-arc-retaining) DAG for honest
					// re-timing: schedules produced on the avoider DAGs
					// (landskov, tableb-bitmap) carry understated issue
					// cycles — the paper's Figure 1 phenomenon — so their
					// orders are re-clocked before timing verification.
					rtf := resource.NewTable(mm)
					rtf.PrepareBlock(b.Insts)
					full := dag.TableForward{}.Build(b, m, rtf)
					for _, al := range algos {
						honest := sched.Timed(full, m, al.Run(d, m).Order)
						if err := verify.Schedule(b, m, honest, mm, 1); err != nil {
							t.Fatalf("seed %d %s/%s/%s/%s: %v",
								seed, mm, m.Name, bld.Name(), al.Name, err)
						}
					}
				}
			}
		}
	}
}

// TestSoakBenchmarkBlocks verifies schedules over real synthetic-
// benchmark blocks (not just the adversarial generator), one mid-sized
// benchmark per mix.
func TestSoakBenchmarkBlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	m := machine.Pipe1()
	for _, name := range []string{"dfa", "lloops"} {
		p, ok := synth.ByName(name)
		if !ok {
			t.Fatalf("profile %s missing", name)
		}
		al := sched.Krishnamurthy()
		count := 0
		for _, b := range p.Generate() {
			if b.Len() < 2 || b.Len() > 80 {
				continue
			}
			rt := resource.NewTable(resource.MemExprModel)
			rt.PrepareBlock(b.Insts)
			d := al.Builder().Build(b, m, rt)
			r := al.Run(d, m)
			if err := verify.Schedule(b, m, r, resource.MemExprModel, 1); err != nil {
				t.Fatalf("%s block %s: %v", name, b.Name, err)
			}
			count++
			if count == 150 {
				break
			}
		}
		if count < 50 {
			t.Fatalf("%s: only %d blocks verified", name, count)
		}
	}
}
