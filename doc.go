// Package daginsched reproduces "Efficient DAG Construction and
// Heuristic Calculation for Instruction Scheduling" (Smotherman,
// Krishnamurthy, Aravind, Hunnicutt; MICRO-24, 1991).
//
// The library lives under internal/: see internal/core for the
// high-level pipeline, internal/dag for the construction algorithms,
// internal/heur for the 26-heuristic survey, and internal/sched for the
// six published scheduling algorithms. DESIGN.md maps every paper
// artifact to its module; EXPERIMENTS.md records reproduced results.
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation.
package daginsched
