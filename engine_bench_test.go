// Benchmarks for the batch scheduling engine (internal/engine): the
// steady-state zero-allocation property of the per-block pipeline, and
// serial-vs-parallel batch throughput.
//
// Run with: go test -bench Engine -benchmem
package daginsched_test

import (
	"fmt"
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/engine"
	"daginsched/internal/machine"
)

// BenchmarkEngineSteadyState is the tentpole allocation benchmark: a
// warmed single-worker engine re-running a full benchmark batch into a
// recycled BatchResult. -benchmem must report 0 allocs/op — an op here
// is an entire batch, so every per-block pipeline stage (prepare,
// build, heuristics, schedule, result collection) is allocation-free.
func BenchmarkEngineSteadyState(b *testing.B) {
	blocks := benchSets["nasa7"]
	e, err := engine.New(engine.Config{Workers: 1, Model: machine.Pipe1(), KeepOrders: true})
	if err != nil {
		b.Fatal(err)
	}
	res := new(engine.BatchResult)
	if _, err := e.RunInto(res, blocks); err != nil {
		b.Fatal(err) // warm-up: grow every arena
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunInto(res, blocks); err != nil {
			b.Fatal(err)
		}
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)*float64(len(blocks))/secs, "blocks/sec")
		b.ReportMetric(float64(res.Stats.Arcs)*float64(b.N)/secs, "arcs/sec")
	}
}

// BenchmarkEngineThroughput compares batch throughput as the worker
// pool widens. Speedup over the workers=1 row is hardware-dependent:
// it tracks the physical core count, so a single-core container shows
// none while an 8-core machine approaches 8 worker-pool scaling.
func BenchmarkEngineThroughput(b *testing.B) {
	blocks := benchSets["nasa7"]
	m := machine.Pipe1()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			e, err := engine.New(engine.Config{Workers: workers, Model: m})
			if err != nil {
				b.Fatal(err)
			}
			res := new(engine.BatchResult)
			if _, err := e.RunInto(res, blocks); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.RunInto(res, blocks); err != nil {
					b.Fatal(err)
				}
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)*float64(len(blocks))/secs, "blocks/sec")
				b.ReportMetric(float64(res.Stats.Arcs)*float64(b.N)/secs, "arcs/sec")
				b.ReportMetric(float64(res.Stats.Insts)*float64(b.N)/secs, "insts/sec")
			}
		})
	}
}

// BenchmarkEngineAdaptive races adaptive dispatch against the fixed
// pipeline on a mixed corpus (every non-windowed benchmark pooled, so
// tiny spice-like blocks sit alongside large scientific ones) with an
// 8-worker pool. The adaptive rows route mask-capable small blocks to
// the n²-direct pipeline and hand the small tail out in chunks; the
// fixed row is the per-block-grab table+CSR pipeline. Schedules are
// byte-identical across rows (TestAdaptiveMatchesFixed).
func BenchmarkEngineAdaptive(b *testing.B) {
	var blocks []*block.Block
	for _, name := range []string{"grep", "cccp", "dfa", "lloops", "nasa7", "tomcatv", "fpppp-1000"} {
		blocks = append(blocks, benchSets[name]...)
	}
	m := machine.Pipe1()
	for _, row := range []struct {
		name string
		cfg  engine.Config
	}{
		{"fixed", engine.Config{Workers: 8, Model: m, DisableAdaptive: true}},
		{"adaptive", engine.Config{Workers: 8, Model: m}},
		{"adaptive-max", engine.Config{Workers: 8, Model: m, Crossover: 64}},
	} {
		b.Run(row.name, func(b *testing.B) {
			e, err := engine.New(row.cfg)
			if err != nil {
				b.Fatal(err)
			}
			res := new(engine.BatchResult)
			if _, err := e.RunInto(res, blocks); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.RunInto(res, blocks); err != nil {
					b.Fatal(err)
				}
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)*float64(len(blocks))/secs, "blocks/sec")
				b.ReportMetric(float64(res.Stats.Insts)*float64(b.N)/secs, "insts/sec")
			}
			b.ReportMetric(float64(e.Crossover()), "crossover")
		})
	}
}

// BenchmarkEngineLargeBlocks exercises the engine on the fpppp-1000
// windowed set, where individual blocks are big enough for the
// per-block arena reuse (rather than the per-batch fan-out) to
// dominate.
func BenchmarkEngineLargeBlocks(b *testing.B) {
	blocks := benchSets["fpppp-1000"]
	e, err := engine.New(engine.Config{Workers: 1, Model: machine.Pipe1()})
	if err != nil {
		b.Fatal(err)
	}
	res := new(engine.BatchResult)
	if _, err := e.RunInto(res, blocks); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunInto(res, blocks); err != nil {
			b.Fatal(err)
		}
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(res.Stats.Insts)*float64(b.N)/secs, "insts/sec")
	}
}
