#!/bin/sh
# CI gate: vet, the schedlint static-analysis suite — all nine passes
# (zero-alloc, arena-lifetime, guarded-field, benchmark-hygiene,
# lock-order, atomic-field, condvar-loop, cancellation-poll and
# panic-safety invariants) in strict mode, which also fails on stale
# //sched:lint-ignore suppressions; see DESIGN.md §7 — build, the full test suite under the race detector
# (which exercises the batch engine's 8-worker determinism test for
# data races between worker arenas), the cache-enabled determinism
# test re-run under -race at count=3 (eight workers racing lookups,
# first-wins inserts and shard resets against a shared schedule
# cache), the adaptive-dispatch identity gate (byte-identical
# schedules from the adaptive and fixed pipelines at eight workers,
# under -race), the packed-selection identity gate (byte-identical
# schedules from the packed-priority heap engine and the winnowing
# rescan at 1/4/8 workers including a faulted run, under -race; see
# DESIGN.md §12), the chaos gate (a seeded fault plan firing builder
# panics, arc corruptions, cache bitflips and stalls at an 8-worker
# pool under -race, with every block required to come back
# byte-identical to a fault-free run; see DESIGN.md §9), the streaming
# gates (RunStream byte-identity to batch at several worker counts,
# cancellation, faulted streams and the bounded-memory test, all under
# -race, plus producer/scanner equivalence tests; see DESIGN.md §10),
# the persistent-cache gates (the diskcache crash-recovery/corruption
# suite and the engine's two-tier tests at eight workers under -race,
# a two-process warm-start proof — one schedbench populates a cache
# file, a second must serve ≥99% of the corpus from it with schedules
# byte-identical to a cache-disabled reference — and a corrupt-file
# smoke that overwrites the file with garbage and requires the next
# run to recover by rebuilding it; see DESIGN.md §11),
# the service gates (a schedd daemon under schedbench -serve load:
# every response proven byte-identical to a local cache-disabled
# reference, then kill -9 with requests in flight, a restart on the
# same cache file that must serve warm — hit rate ≥ 0.9 straight from
# the persistent tier — and still byte-identical, and a SIGTERM that
# must drain and exit 0; see DESIGN.md §13),
# the perf-regression gate (a fresh -parallel + -stream + -serve
# measurement diffed against the committed BENCH_engine.json inside a
# tolerance band, with a self-test first proving the gate catches
# injected regressions), a short native-fuzz smoke over the
# build→schedule→gate pipeline, and one-iteration benchmark smoke runs
# over the engine, DAG-builder and heuristic benchmarks that check the
# zero-allocation steady state.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== schedlint (strict, all nine passes)"
go run ./cmd/schedlint -strict -stats ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== engine cache determinism (workers=8, -race)"
go test -race -run '^TestEngineCacheDeterminism$' -count 3 ./internal/engine

echo "== adaptive dispatch identity (workers=8, -race)"
go test -race -run '^TestAdaptiveMatchesFixed$' ./internal/engine

echo "== packed-selection identity (workers=8, -race)"
go test -race -run '^TestPackedSelMatchesWinnow$' ./internal/engine

echo "== chaos gate (workers=8, -race)"
go test -race -run '^TestEngineChaosLadder$|^TestEngineChaosDeterminism$' ./internal/engine
go run ./cmd/schedbench -chaos -bench grep -workers 8

echo "== streaming gates (-race)"
go test -race -run '^TestRunStream|^TestStreamHistogram' ./internal/engine
go test -race -run '^TestStream|^TestGeneratePass|^TestCorpusDeterminismPin' ./internal/synth
go test -race -run '^TestScanner|^TestStreamBlocks' ./internal/asm

echo "== persistent cache gates (workers=8, -race)"
go test -race ./internal/diskcache
go test -race -run '^TestDisk' ./internal/engine
CACHE_FILE="$(mktemp -u).schedcache"
CACHE_JSON="$(mktemp)"
trap 'rm -f "${CACHE_FILE:-}" "${CACHE_JSON:-}" "${FRESH_JSON:-}" "${SCHEDD_BIN:-}" "${SBENCH_BIN:-}" "${SERVE_CACHE:-}" "${SCHEDD_LOG:-}"; [ -n "${SCHEDD_PID:-}" ] && kill -9 "$SCHEDD_PID" 2> /dev/null || true' EXIT
# Process 1 populates the file cold; process 2 must warm-start from it.
go run ./cmd/schedbench -cachefile "$CACHE_FILE" -workers 8 -json "$CACHE_JSON" > /dev/null
go run ./cmd/schedbench -cachefile "$CACHE_FILE" -workers 8 -warmexpect 0.99 -json "$CACHE_JSON" > /dev/null
# Corrupt-file smoke: garbage where the cache was must not break a run.
dd if=/dev/urandom of="$CACHE_FILE" bs=4096 count=4 conv=notrunc 2> /dev/null
go run ./cmd/schedbench -cachefile "$CACHE_FILE" -workers 8 -json "$CACHE_JSON" > /dev/null
rm -f "$CACHE_FILE" "$CACHE_JSON"

echo "== service gates (schedd: identity, kill -9 warm restart, drain)"
FRESH_JSON="$(mktemp)"
SCHEDD_BIN="$(mktemp -u)"
SBENCH_BIN="$(mktemp -u)"
SERVE_CACHE="$(mktemp -u).schedcache"
SCHEDD_LOG="$(mktemp)"
go build -o "$SCHEDD_BIN" ./cmd/schedd
go build -o "$SBENCH_BIN" ./cmd/schedbench
# schedd_url: wait for the daemon's listen line and echo its URL.
schedd_url() {
    for _ in $(seq 100); do
        addr="$(sed -n 's/^schedd: listening on //p' "$1" | head -n 1)"
        if [ -n "$addr" ]; then echo "http://$addr"; return 0; fi
        sleep 0.1
    done
    echo "schedd never printed its listen line" >&2
    return 1
}
# Phase 1: a cold daemon populates the cache file while every response
# is proven byte-identical to a local cache-disabled reference engine.
"$SCHEDD_BIN" -addr 127.0.0.1:0 -cachefile "$SERVE_CACHE" > "$SCHEDD_LOG" 2>&1 &
SCHEDD_PID=$!
SCHEDD_URL="$(schedd_url "$SCHEDD_LOG")"
"$SBENCH_BIN" -serve "$SCHEDD_URL" -model super2 -serverate 60 -serveduration 2s \
    -servecheck -json "$FRESH_JSON" > /dev/null
sleep 1 # let the disk tier's background flusher drain
# Phase 2: kill -9 with requests in flight. The interrupted generator
# is expected to fail; what matters is the daemon dies mid-load.
"$SBENCH_BIN" -serve "$SCHEDD_URL" -model super2 -serverate 60 -serveduration 5s \
    -json /dev/null > /dev/null 2>&1 &
LOAD_PID=$!
sleep 1
kill -9 "$SCHEDD_PID"
wait "$LOAD_PID" 2> /dev/null || true
# Phase 3: a restart on the same file must serve warm — hit rate ≥ 0.9
# with blocks straight from the persistent tier — and byte-identical.
: > "$SCHEDD_LOG"
"$SCHEDD_BIN" -addr 127.0.0.1:0 -cachefile "$SERVE_CACHE" > "$SCHEDD_LOG" 2>&1 &
SCHEDD_PID=$!
SCHEDD_URL="$(schedd_url "$SCHEDD_LOG")"
"$SBENCH_BIN" -serve "$SCHEDD_URL" -model super2 -serverate 60 -serveduration 2s \
    -servewarm 0.9 -servecheck -json "$FRESH_JSON" > /dev/null
# Phase 4: SIGTERM must drain gracefully and exit 0.
kill -TERM "$SCHEDD_PID"
wait "$SCHEDD_PID"
SCHEDD_PID=""
rm -f "$SCHEDD_BIN" "$SBENCH_BIN" "$SERVE_CACHE" "$SCHEDD_LOG"

echo "== perf-regression gate"
go run ./cmd/schedbench -diffselftest
go run ./cmd/schedbench -parallel -json "$FRESH_JSON" > /dev/null
go run ./cmd/schedbench -stream -insts 2e6 -json "$FRESH_JSON" > /dev/null
go run ./cmd/schedbench -diff "$FRESH_JSON"

echo "== fuzz smoke (30s)"
go test -fuzz '^FuzzBuildSchedule$' -fuzztime 30s -run '^$' ./internal/engine

echo "== engine bench smoke"
go test -run '^$' -bench Engine -benchmem -benchtime 1x .

echo "== dag/heur/sched bench smoke"
go test -run '^$' -bench . -benchmem -benchtime 1x ./internal/dag ./internal/heur ./internal/sched
