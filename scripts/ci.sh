#!/bin/sh
# CI gate: vet, the schedlint static-analysis suite — all nine passes
# (zero-alloc, arena-lifetime, guarded-field, benchmark-hygiene,
# lock-order, atomic-field, condvar-loop, cancellation-poll and
# panic-safety invariants) in strict mode, which also fails on stale
# //sched:lint-ignore suppressions; see DESIGN.md §7 — build, the full test suite under the race detector
# (which exercises the batch engine's 8-worker determinism test for
# data races between worker arenas), the cache-enabled determinism
# test re-run under -race at count=3 (eight workers racing lookups,
# first-wins inserts and shard resets against a shared schedule
# cache), the adaptive-dispatch identity gate (byte-identical
# schedules from the adaptive and fixed pipelines at eight workers,
# under -race), the packed-selection identity gate (byte-identical
# schedules from the packed-priority heap engine and the winnowing
# rescan at 1/4/8 workers including a faulted run, under -race; see
# DESIGN.md §12), the chaos gate (a seeded fault plan firing builder
# panics, arc corruptions, cache bitflips and stalls at an 8-worker
# pool under -race, with every block required to come back
# byte-identical to a fault-free run; see DESIGN.md §9), the streaming
# gates (RunStream byte-identity to batch at several worker counts,
# cancellation, faulted streams and the bounded-memory test, all under
# -race, plus producer/scanner equivalence tests; see DESIGN.md §10),
# the persistent-cache gates (the diskcache crash-recovery/corruption
# suite and the engine's two-tier tests at eight workers under -race,
# a two-process warm-start proof — one schedbench populates a cache
# file, a second must serve ≥99% of the corpus from it with schedules
# byte-identical to a cache-disabled reference — and a corrupt-file
# smoke that overwrites the file with garbage and requires the next
# run to recover by rebuilding it; see DESIGN.md §11),
# the perf-regression gate (a fresh -parallel + -stream measurement
# diffed against the committed BENCH_engine.json inside a tolerance
# band, with a self-test first proving the gate catches injected
# regressions), a short native-fuzz smoke over the
# build→schedule→gate pipeline, and one-iteration benchmark smoke runs
# over the engine, DAG-builder and heuristic benchmarks that check the
# zero-allocation steady state.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== schedlint (strict, all nine passes)"
go run ./cmd/schedlint -strict -stats ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== engine cache determinism (workers=8, -race)"
go test -race -run '^TestEngineCacheDeterminism$' -count 3 ./internal/engine

echo "== adaptive dispatch identity (workers=8, -race)"
go test -race -run '^TestAdaptiveMatchesFixed$' ./internal/engine

echo "== packed-selection identity (workers=8, -race)"
go test -race -run '^TestPackedSelMatchesWinnow$' ./internal/engine

echo "== chaos gate (workers=8, -race)"
go test -race -run '^TestEngineChaosLadder$|^TestEngineChaosDeterminism$' ./internal/engine
go run ./cmd/schedbench -chaos -bench grep -workers 8

echo "== streaming gates (-race)"
go test -race -run '^TestRunStream|^TestStreamHistogram' ./internal/engine
go test -race -run '^TestStream|^TestGeneratePass|^TestCorpusDeterminismPin' ./internal/synth
go test -race -run '^TestScanner|^TestStreamBlocks' ./internal/asm

echo "== persistent cache gates (workers=8, -race)"
go test -race ./internal/diskcache
go test -race -run '^TestDisk' ./internal/engine
CACHE_FILE="$(mktemp -u).schedcache"
CACHE_JSON="$(mktemp)"
trap 'rm -f "${CACHE_FILE:-}" "${CACHE_JSON:-}" "${FRESH_JSON:-}"' EXIT
# Process 1 populates the file cold; process 2 must warm-start from it.
go run ./cmd/schedbench -cachefile "$CACHE_FILE" -workers 8 -json "$CACHE_JSON" > /dev/null
go run ./cmd/schedbench -cachefile "$CACHE_FILE" -workers 8 -warmexpect 0.99 -json "$CACHE_JSON" > /dev/null
# Corrupt-file smoke: garbage where the cache was must not break a run.
dd if=/dev/urandom of="$CACHE_FILE" bs=4096 count=4 conv=notrunc 2> /dev/null
go run ./cmd/schedbench -cachefile "$CACHE_FILE" -workers 8 -json "$CACHE_JSON" > /dev/null
rm -f "$CACHE_FILE" "$CACHE_JSON"

echo "== perf-regression gate"
go run ./cmd/schedbench -diffselftest
FRESH_JSON="$(mktemp)"
go run ./cmd/schedbench -parallel -json "$FRESH_JSON" > /dev/null
go run ./cmd/schedbench -stream -insts 2e6 -json "$FRESH_JSON" > /dev/null
go run ./cmd/schedbench -diff "$FRESH_JSON"

echo "== fuzz smoke (30s)"
go test -fuzz '^FuzzBuildSchedule$' -fuzztime 30s -run '^$' ./internal/engine

echo "== engine bench smoke"
go test -run '^$' -bench Engine -benchmem -benchtime 1x .

echo "== dag/heur/sched bench smoke"
go test -run '^$' -bench . -benchmem -benchtime 1x ./internal/dag ./internal/heur ./internal/sched
