#!/bin/sh
# CI gate: vet, the schedlint static-analysis suite (zero-alloc,
# arena-lifetime, lock-discipline and benchmark-hygiene invariants;
# see DESIGN.md §7), build, the full test suite under the race detector
# (which exercises the batch engine's 8-worker determinism test for
# data races between worker arenas), the cache-enabled determinism
# test re-run under -race at count=3 (eight workers racing lookups,
# first-wins inserts and shard resets against a shared schedule
# cache), the adaptive-dispatch identity gate (byte-identical
# schedules from the adaptive and fixed pipelines at eight workers,
# under -race), the chaos gate (a seeded fault plan firing builder
# panics, arc corruptions, cache bitflips and stalls at an 8-worker
# pool under -race, with every block required to come back
# byte-identical to a fault-free run; see DESIGN.md §9), the streaming
# gates (RunStream byte-identity to batch at several worker counts,
# cancellation, faulted streams and the bounded-memory test, all under
# -race, plus producer/scanner equivalence tests; see DESIGN.md §10),
# the perf-regression gate (a fresh -parallel + -stream measurement
# diffed against the committed BENCH_engine.json inside a tolerance
# band, with a self-test first proving the gate catches injected
# regressions), a short native-fuzz smoke over the
# build→schedule→gate pipeline, and one-iteration benchmark smoke runs
# over the engine, DAG-builder and heuristic benchmarks that check the
# zero-allocation steady state.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== schedlint"
go run ./cmd/schedlint ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== engine cache determinism (workers=8, -race)"
go test -race -run '^TestEngineCacheDeterminism$' -count 3 ./internal/engine

echo "== adaptive dispatch identity (workers=8, -race)"
go test -race -run '^TestAdaptiveMatchesFixed$' ./internal/engine

echo "== chaos gate (workers=8, -race)"
go test -race -run '^TestEngineChaosLadder$|^TestEngineChaosDeterminism$' ./internal/engine
go run ./cmd/schedbench -chaos -bench grep -workers 8

echo "== streaming gates (-race)"
go test -race -run '^TestRunStream|^TestStreamHistogram' ./internal/engine
go test -race -run '^TestStream|^TestGeneratePass|^TestCorpusDeterminismPin' ./internal/synth
go test -race -run '^TestScanner|^TestStreamBlocks' ./internal/asm

echo "== perf-regression gate"
go run ./cmd/schedbench -diffselftest
FRESH_JSON="$(mktemp)"
trap 'rm -f "$FRESH_JSON"' EXIT
go run ./cmd/schedbench -parallel -json "$FRESH_JSON" > /dev/null
go run ./cmd/schedbench -stream -insts 2e6 -json "$FRESH_JSON" > /dev/null
go run ./cmd/schedbench -diff "$FRESH_JSON"

echo "== fuzz smoke (30s)"
go test -fuzz '^FuzzBuildSchedule$' -fuzztime 30s -run '^$' ./internal/engine

echo "== engine bench smoke"
go test -run '^$' -bench Engine -benchmem -benchtime 1x .

echo "== dag/heur bench smoke"
go test -run '^$' -bench . -benchmem -benchtime 1x ./internal/dag ./internal/heur
