// Smoke tests for the command-line tools: each binary is exercised
// through `go run` with its common flag combinations. Slow (compiles
// each tool), so skipped under -short.
package daginsched_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// runTool runs `go run ./cmd/<tool> args...` with optional stdin.
func runTool(t *testing.T, stdin string, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./cmd/" + tool}, args...)...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

// buildTool compiles one command to a temp binary so a test can
// observe its exact exit code (go run does not reliably propagate it).
func buildTool(t *testing.T, tool string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), tool)
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+tool).CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", tool, err, out)
	}
	return bin
}

// runToolErr runs a prebuilt tool expecting failure, returning its
// combined output and exit code.
func runToolErr(t *testing.T, stdin, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v: expected a failure, got success:\n%s", bin, args, out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("%s %v: %v (not an exit error)\n%s", bin, args, err, out)
	}
	return string(out), ee.ExitCode()
}

// requireDiagnostic asserts a failure produced a one-line prefixed
// diagnostic, not a panic stack trace.
func requireDiagnostic(t *testing.T, tool, out string) {
	t.Helper()
	if !strings.HasPrefix(out, tool+":") {
		t.Errorf("%s diagnostic missing prefix:\n%s", tool, out)
	}
	if strings.Contains(out, "goroutine ") || strings.Contains(out, "panic:") {
		t.Errorf("%s crashed with a stack trace:\n%s", tool, out)
	}
	if n := strings.Count(strings.TrimRight(out, "\n"), "\n"); n != 0 {
		t.Errorf("%s diagnostic is %d lines, want one:\n%s", tool, n+1, out)
	}
}

const smokeAsm = `
top:
	ld [%fp-4], %o0
	add %o0, 1, %o1
	mov 9, %l7
	cmp %o1, 0
	bne top
	nop
`

func TestSmokeSched(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests skipped in -short mode")
	}
	out := runTool(t, smokeAsm, "sched", "-report")
	if !strings.Contains(out, "total:") {
		t.Errorf("sched -report:\n%s", out)
	}
	out = runTool(t, smokeAsm, "sched", "-algo", "warren", "-model", "super2")
	if !strings.Contains(out, "top:") {
		t.Errorf("sched asm output:\n%s", out)
	}
	out = runTool(t, smokeAsm, "sched", "-timeline")
	if !strings.Contains(out, "cycle") {
		t.Errorf("sched -timeline:\n%s", out)
	}
	out = runTool(t, smokeAsm, "sched", "-explain")
	if !strings.Contains(out, "cycles") {
		t.Errorf("sched -explain:\n%s", out)
	}
	out = runTool(t, smokeAsm, "sched", "-fillslots", "-report")
	if !strings.Contains(out, "delay slots filled: 1") {
		t.Errorf("sched -fillslots:\n%s", out)
	}
	out = runTool(t, smokeAsm, "sched", "-rename", "-globalcarry", "-mem", "class")
	if !strings.Contains(out, "top:") {
		t.Errorf("sched flag combo:\n%s", out)
	}
}

func TestSmokeHeursurvey(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests skipped in -short mode")
	}
	out := runTool(t, "", "heursurvey")
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "Table 2") {
		t.Errorf("heursurvey:\n%s", out[:200])
	}
}

func TestSmokeDagstat(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests skipped in -short mode")
	}
	out := runTool(t, "", "dagstat", "-bench", "grep", "-builders", "tablef,landskov")
	if !strings.Contains(out, "tablef") || !strings.Contains(out, "landskov") {
		t.Errorf("dagstat:\n%s", out)
	}
	out = runTool(t, "", "dagstat", "-bench", "grep", "-dot")
	if !strings.Contains(out, "digraph") {
		t.Errorf("dagstat -dot:\n%s", out)
	}
}

func TestSmokeSchedlint(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests skipped in -short mode")
	}
	out := runTool(t, "", "schedlint", "-strict", "-json", "./...")
	var doc struct {
		Findings []struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Pass string `json:"pass"`
			Msg  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("schedlint -json malformed: %v\n%s", err, out)
	}
	if len(doc.Findings) != 0 {
		t.Errorf("schedlint found violations in the repo: %+v", doc.Findings)
	}

	// An unknown pass name must exit 2 with a diagnostic that teaches
	// the valid set, not silently run nothing.
	schedlint := buildTool(t, "schedlint")
	out2, code := runToolErr(t, "", schedlint, "-passes", "noalloc,bogus", "./internal/buf")
	if code != 2 {
		t.Errorf("unknown pass exit code %d, want 2\n%s", code, out2)
	}
	requireDiagnostic(t, "schedlint", out2)
	for _, want := range []string{`unknown pass "bogus"`, "valid passes:", "lockorder", "panicsafe"} {
		if !strings.Contains(out2, want) {
			t.Errorf("unknown-pass diagnostic missing %q:\n%s", want, out2)
		}
	}
}

// TestSmokeMalformedInput drives both end-user tools with malformed
// flags and input and requires the distinct exit codes and one-line
// diagnostics the hardened CLIs promise — never a panic.
func TestSmokeMalformedInput(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests skipped in -short mode")
	}
	sched := buildTool(t, "sched")
	schedbench := buildTool(t, "schedbench")
	cases := []struct {
		name  string
		bin   string
		tool  string
		stdin string
		args  []string
		code  int
	}{
		{"sched malformed asm", sched, "sched", "bogus %o0 ???\n", nil, 3},
		{"sched truncated operand", sched, "sched", "add %o0,\n", nil, 3},
		{"sched missing file", sched, "sched", "", []string{"/nonexistent/input.s"}, 3},
		{"sched unknown model", sched, "sched", "nop\n", []string{"-model", "marsrover"}, 2},
		{"sched unknown algo", sched, "sched", "nop\n", []string{"-algo", "magic"}, 2},
		{"sched unknown builder", sched, "sched", "nop\n", []string{"-builder", "lattice"}, 2},
		{"sched unknown mem model", sched, "sched", "nop\n", []string{"-mem", "psychic"}, 2},
		{"schedbench unknown model", schedbench, "schedbench", "", []string{"-model", "marsrover"}, 2},
		{"schedbench unknown bench", schedbench, "schedbench", "", []string{"-table3", "-bench", "nosuch"}, 2},
		{"schedbench bad fault rate", schedbench, "schedbench", "", []string{"-chaos", "-faultrate", "7"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, code := runToolErr(t, tc.stdin, tc.bin, tc.args...)
			if code != tc.code {
				t.Errorf("exit code %d, want %d\n%s", code, tc.code, out)
			}
			requireDiagnostic(t, tc.tool, out)
		})
	}
}

// TestSmokeSchedbenchChaos runs the -chaos fault-injection gate the
// way CI does and requires it to pass.
func TestSmokeSchedbenchChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests skipped in -short mode")
	}
	out := runTool(t, "", "schedbench", "-chaos", "-bench", "grep", "-workers", "8")
	if !strings.Contains(out, "chaos gate: PASS") {
		t.Errorf("schedbench -chaos:\n%s", out)
	}
	for _, want := range []string{"faulted blocks", "quarantines", "mismatched blocks"} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos report missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeSchedbench(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests skipped in -short mode")
	}
	out := runTool(t, "", "schedbench", "-table3", "-bench", "grep")
	if !strings.Contains(out, "grep") || !strings.Contains(out, "730") {
		t.Errorf("schedbench -table3:\n%s", out)
	}
	out = runTool(t, "", "schedbench", "-fig1")
	if !strings.Contains(out, "Figure 1") {
		t.Errorf("schedbench -fig1:\n%s", out)
	}
	out = runTool(t, "", "schedbench", "-table5", "-runs", "1", "-bench", "grep")
	if !strings.Contains(out, "fwd(s)") {
		t.Errorf("schedbench -table5:\n%s", out)
	}
	jsonPath := filepath.Join(t.TempDir(), "engine.json")
	out = runTool(t, "", "schedbench", "-parallel", "-workers", "2",
		"-bench", "grep", "-verify", "-json", jsonPath)
	if !strings.Contains(out, "Parallel batch engine") || !strings.Contains(out, "speedup") {
		t.Errorf("schedbench -parallel:\n%s", out)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("engine JSON not written: %v", err)
	}
	var doc struct {
		Workers    int  `json:"workers"`
		Adaptive   bool `json:"adaptive"`
		Benchmarks []struct {
			Name            string  `json:"name"`
			Speedup         float64 `json:"speedup"`
			AdaptiveSpeedup float64 `json:"adaptive_speedup"`
			Parallel        struct {
				Blocks       int     `json:"blocks"`
				BlocksPerSec float64 `json:"blocks_per_sec"`
				Bins         []struct {
					Blocks int64 `json:"blocks"`
				} `json:"bins"`
			} `json:"parallel"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("engine JSON malformed: %v\n%s", err, data)
	}
	// One selected set plus the pooled "mixed" corpus the adaptive
	// report appends.
	if doc.Workers != 2 || !doc.Adaptive || len(doc.Benchmarks) != 2 ||
		doc.Benchmarks[0].Name != "grep" ||
		doc.Benchmarks[1].Name != "mixed" ||
		doc.Benchmarks[0].Parallel.Blocks != 730 ||
		doc.Benchmarks[0].Parallel.BlocksPerSec <= 0 ||
		doc.Benchmarks[0].AdaptiveSpeedup <= 0 ||
		len(doc.Benchmarks[0].Parallel.Bins) == 0 {
		t.Errorf("engine JSON contents wrong: %+v", doc)
	}
}

// TestSmokeSchedbenchStreamAndDiff exercises the streaming benchmark
// and the perf-regression gate end to end: a short -stream run merges
// a stream section into the engine JSON, -diff passes a document
// against itself, -diffselftest proves the gate catches injected
// regressions, and a genuinely doctored document exits with the
// distinct regression code.
func TestSmokeSchedbenchStreamAndDiff(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests skipped in -short mode")
	}
	jsonPath := filepath.Join(t.TempDir(), "engine.json")
	out := runTool(t, "", "schedbench", "-parallel", "-workers", "2",
		"-bench", "grep", "-json", jsonPath)
	if !strings.Contains(out, "Parallel batch engine") {
		t.Fatalf("schedbench -parallel:\n%s", out)
	}
	out = runTool(t, "", "schedbench", "-stream", "-insts", "2e5",
		"-bench", "grep", "-workers", "2", "-json", jsonPath)
	for _, want := range []string{"Streaming engine", "throughput", "RSS high-water"} {
		if !strings.Contains(out, want) {
			t.Errorf("schedbench -stream missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Benchmarks []json.RawMessage `json:"benchmarks"`
		Stream     *struct {
			Insts int64 `json:"insts"`
			Stats struct {
				InstsPerSec float64 `json:"insts_per_sec"`
			} `json:"stats"`
		} `json:"stream"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("engine JSON malformed: %v\n%s", err, data)
	}
	if len(doc.Benchmarks) == 0 {
		t.Error("-stream dropped the existing parallel benchmarks")
	}
	if doc.Stream == nil || doc.Stream.Insts < 2e5 || doc.Stream.Stats.InstsPerSec <= 0 {
		t.Fatalf("stream section wrong: %+v", doc.Stream)
	}

	out = runTool(t, "", "schedbench", "-diff", jsonPath, "-json", jsonPath)
	if !strings.Contains(out, "no regression") {
		t.Errorf("self-diff should pass:\n%s", out)
	}
	out = runTool(t, "", "schedbench", "-diffselftest", "-json", jsonPath)
	if !strings.Contains(out, "self-test ok") {
		t.Errorf("schedbench -diffselftest:\n%s", out)
	}

	// A document whose throughput collapsed must exit with the
	// regression code (3) and name the offender.
	doctored := strings.Replace(string(data), `"insts_per_sec"`, `"x_insts_per_sec"`, -1)
	badPath := filepath.Join(t.TempDir(), "doctored.json")
	if err := os.WriteFile(badPath, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	schedbench := buildTool(t, "schedbench")
	out2, code := runToolErr(t, "", schedbench, "-diff", badPath, "-json", jsonPath)
	if code != 3 {
		t.Errorf("doctored diff exit code %d, want 3\n%s", code, out2)
	}

	out2, code = runToolErr(t, "", schedbench, "-diff", jsonPath, "-tolerance", "1.5")
	if code != 2 {
		t.Errorf("bad tolerance exit code %d, want 2\n%s", code, out2)
	}
	requireDiagnostic(t, "schedbench", out2)
}

// TestSmokeSchedd boots the scheduling daemon, drives its endpoints
// over real HTTP, and pins the exit-code discipline: 2 for flag
// misuse, 3 for configuration the engine rejects, 0 for SIGTERM drain.
func TestSmokeSchedd(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests skipped in -short mode")
	}
	schedd := buildTool(t, "schedd")

	out, code := runToolErr(t, "", schedd, "-model", "marsrover")
	if code != 2 {
		t.Errorf("unknown model exit code %d, want 2\n%s", code, out)
	}
	requireDiagnostic(t, "schedd", out)
	out, code = runToolErr(t, "", schedd, "stray-argument")
	if code != 2 {
		t.Errorf("stray argument exit code %d, want 2\n%s", code, out)
	}
	requireDiagnostic(t, "schedd", out)
	// flag's own parse failure also exits 2 (it prints usage itself).
	if out, code = runToolErr(t, "", schedd, "-nosuchflag"); code != 2 {
		t.Errorf("unknown flag exit code %d, want 2\n%s", code, out)
	}
	// A cache file in a directory that does not exist is the operator's
	// configuration to fix: distinct code 3.
	out, code = runToolErr(t, "", schedd,
		"-cachefile", filepath.Join(t.TempDir(), "no", "such", "dir", "sched.cache"))
	if code != 3 {
		t.Errorf("unopenable cachefile exit code %d, want 3\n%s", code, out)
	}
	requireDiagnostic(t, "schedd", out)

	// Live daemon on an ephemeral port; the listen line carries the
	// resolved address.
	cmd := exec.Command(schedd, "-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("schedd produced no listen line: %v", sc.Err())
	}
	addr := strings.TrimPrefix(sc.Text(), "schedd: listening on ")
	if addr == sc.Text() {
		t.Fatalf("unexpected first line: %q", sc.Text())
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/schedule", "text/plain", strings.NewReader(smokeAsm))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/schedule: HTTP %d\n%s", resp.StatusCode, body)
	}
	var sched struct {
		Blocks  int `json:"blocks"`
		Results []struct {
			Name  string  `json:"name"`
			Rung  string  `json:"rung"`
			Order []int32 `json:"order"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &sched); err != nil {
		t.Fatalf("schedule response malformed: %v\n%s", err, body)
	}
	if sched.Blocks == 0 || len(sched.Results) == 0 || len(sched.Results[0].Order) == 0 ||
		sched.Results[0].Name != "top" {
		t.Errorf("schedule response contents wrong: %+v", sched)
	}

	resp, err = http.Post(base+"/v1/schedule", "text/plain", strings.NewReader("bogus ??? line\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("malformed asm: HTTP %d, want 400", resp.StatusCode)
	}

	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200, "/stats": 200} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: HTTP %d, want %d", path, resp.StatusCode, want)
		}
	}

	// SIGTERM must drain and exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Errorf("SIGTERM drain: want exit 0, got %v", err)
	}
}

func TestSmokeSchedbenchCachefile(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests skipped in -short mode")
	}
	dir := t.TempDir()
	cachePath := filepath.Join(dir, "sched.cache")
	jsonPath := filepath.Join(dir, "engine.json")
	// An existing empty JSON file (what mktemp hands CI) must be
	// treated as a fresh document, not a parse error.
	if err := os.WriteFile(jsonPath, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	out := runTool(t, "", "schedbench", "-cachefile", cachePath,
		"-bench", "grep", "-json", jsonPath)
	for _, want := range []string{"Warm-start benchmark", "byte-identical", "warm-start statistics merged"} {
		if !strings.Contains(out, want) {
			t.Errorf("schedbench -cachefile missing %q:\n%s", want, out)
		}
	}

	// Second process over the same file: the gate demands the first
	// pass itself be served from disk.
	out = runTool(t, "", "schedbench", "-cachefile", cachePath,
		"-warmexpect", "0.99", "-bench", "grep", "-json", jsonPath)
	if !strings.Contains(out, "byte-identical") {
		t.Errorf("schedbench -cachefile -warmexpect:\n%s", out)
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Warmstart *struct {
			Blocks      int     `json:"blocks"`
			WarmHitRate float64 `json:"warm_hit_rate"`
		} `json:"warmstart"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("engine JSON malformed: %v\n%s", err, data)
	}
	if doc.Warmstart == nil || doc.Warmstart.Blocks == 0 || doc.Warmstart.WarmHitRate < 0.99 {
		t.Fatalf("warmstart section wrong: %+v", doc.Warmstart)
	}

	schedbench := buildTool(t, "schedbench")
	// -warmexpect against a file no process populated must fail with a
	// one-line diagnostic.
	freshCache := filepath.Join(dir, "fresh.cache")
	out2, code := runToolErr(t, "", schedbench, "-cachefile", freshCache,
		"-warmexpect", "0.99", "-bench", "grep", "-json", jsonPath)
	if code != 1 {
		t.Errorf("unpopulated -warmexpect exit code %d, want 1\n%s", code, out2)
	}
	out2, code = runToolErr(t, "", schedbench, "-warmexpect", "0.5")
	if code != 2 {
		t.Errorf("-warmexpect without -cachefile exit code %d, want 2\n%s", code, out2)
	}
	requireDiagnostic(t, "schedbench", out2)
}
