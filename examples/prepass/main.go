// Prepass demonstrates the register-usage heuristics (Table 1's sixth
// category) in before-register-allocation scheduling, and shows how to
// assemble a custom algorithm from the heuristic registry.
//
// Three schedulers run over a block of independent load/add/store
// chains:
//
//   - Shieh & Papachristou: pure critical-path ILP, no register
//     awareness — it front-loads every load, maximizing live values;
//   - Warren: ILP first, register liveness as the rank-4 tiebreak;
//   - a custom "pressure" algorithm built here from the registry:
//     liveness and #registers-killed outrank the critical path, the
//     configuration a compiler would use when spills are expensive.
//
// The output reports cycles and peak register pressure for each — the
// prepass trade-off Section 3 describes: "it is more advantageous to
// postpone scheduling of an instruction that increases the register
// pressure."
//
//	go run ./examples/prepass
package main

import (
	"fmt"
	"log"

	"daginsched/internal/asm"
	"daginsched/internal/core"
	"daginsched/internal/dag"
	"daginsched/internal/heur"
	"daginsched/internal/isa"
	"daginsched/internal/sched"
)

const src = `
hot:
	ld [%fp-4], %o0
	ld [%fp-8], %o1
	ld [%fp-12], %o2
	ld [%fp-16], %o3
	add %o0, 1, %l0
	st %l0, [%fp-20]
	add %o1, 2, %l1
	st %l1, [%fp-24]
	add %o2, 3, %l2
	st %l2, [%fp-28]
	add %o3, 4, %l3
	st %l3, [%fp-32]
`

// pressureFirst is a prepass scheduler assembled from Table 1 rows:
// shrink liveness first, prefer killers, then fall back to the critical
// path and program order.
func pressureFirst() *sched.Algorithm {
	return &sched.Algorithm{
		Name:         "pressure-first",
		Cite:         "custom (this example)",
		Construction: dag.TableForward{},
		SchedDir:     dag.Forward,
		Combine:      sched.WinnowKind,
		Ranked: []sched.RankedKey{
			{Key: heur.Liveness, Min: true},
			{Key: heur.RegsKilled},
			{Key: heur.MaxDelayToLeaf},
			{Key: heur.OriginalOrder, Min: true},
		},
	}
}

// maxPressure returns the peak number of simultaneously live register
// values across the schedule.
func maxPressure(insts []isa.Inst) int {
	lastUse := map[isa.Reg]int{}
	for i, in := range insts {
		for _, u := range in.Uses() {
			if u.Kind == isa.RReg || u.Kind == isa.RFReg {
				lastUse[u.Reg] = i
			}
		}
	}
	live := map[isa.Reg]int{}
	peak := 0
	for i, in := range insts {
		for _, d := range in.Defs() {
			if d.Kind != isa.RReg && d.Kind != isa.RFReg {
				continue
			}
			if end, ok := lastUse[d.Reg]; ok && end > i {
				live[d.Reg] = end
			}
		}
		if len(live) > peak {
			peak = len(live)
		}
		for r, end := range live {
			if end <= i {
				delete(live, r)
			}
		}
	}
	return peak
}

func main() {
	orig, err := asm.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %8s %10s\n", "scheduler", "cycles", "pressure")
	for _, algo := range []*sched.Algorithm{
		nil, sched.ShiehPapachristou(), sched.Warren(), pressureFirst(),
	} {
		p := core.Default()
		name := "program order"
		if algo != nil {
			p.Algorithm = algo
			name = algo.Name
		}
		res := p.ScheduleProgram(orig)
		cycles := res.Cycles
		insts := res.Insts()
		if algo == nil {
			cycles = res.Baseline
			insts = orig
		}
		fmt.Printf("%-22s %8d %10d\n", name, cycles, maxPressure(insts))
	}
	fmt.Println("\nThe pressure-first prepass keeps fewer values live (ready for a")
	fmt.Println("tight register allocator) at the cost of some stall cycles; the")
	fmt.Println("ILP-first algorithms make the opposite trade.")
}
