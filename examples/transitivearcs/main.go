// Transitivearcs reproduces Figure 1 of the paper: a WAR-then-RAW path
// whose small delays understate a 20-cycle divide unless the
// "transitive" RAW arc is retained.
//
//	1: fdivs %f1, %f2, %f3   (20 cycles)
//	2: fadds %f4, %f5, %f1   ( 4 cycles, overwrites a divide source)
//	3: fadds %f1, %f3, %f6   ( 4 cycles, consumes both results)
//
// The table-building constructors keep the 1→3 arc; Landskov's pruning
// and the reachability-bit-map insertion drop it, corrupting every
// timing heuristic on the path — the paper's conclusion 3 recommends
// against the avoiders for exactly this reason. The demo prints the
// arcs, the corrupted heuristics, and the resulting schedules.
//
//	go run ./examples/transitivearcs
package main

import (
	"fmt"

	"daginsched/internal/machine"
	"daginsched/internal/tables"
)

func main() {
	fmt.Print(tables.Figure1(machine.Pipe1()))
	fmt.Println(`Reading the output:
  - tablef keeps arc 1->3 with its 20-cycle delay, so "max delay to
    leaf" of the divide is 20 and EST of instruction 3 is 20: the
    scheduler knows the divide dominates the block.
  - landskov and tableb-bitmap drop the arc; the WAR(1)+RAW(4) path
    understates the same quantities as 5, so a scheduler would place
    instruction 3 fifteen cycles too early and eat the stall at issue.`)
}
