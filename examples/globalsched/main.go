// Globalsched demonstrates the paper's third future-work item:
// "determining the benefits of global scheduling information (e.g.,
// operation latencies inherited from previous basic blocks)."
//
// A two-block chain launches a 20-cycle divide at the end of block 1;
// block 2 consumes the result. A purely local scheduler ranks block 2
// by its local critical path and issues the dependent chain first —
// then the whole block idles in-order behind the in-flight divide. The
// carry-aware scheduler sees the inherited latency as an initial
// earliest-execution-time and runs the independent work during the
// wait. Both versions are timed by the scoreboard pipeline simulator
// over the concatenated program, so the numbers reflect real cross-
// block execution.
//
//	go run ./examples/globalsched
package main

import (
	"fmt"

	"daginsched/internal/block"
	"daginsched/internal/dag"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/pipe"
	"daginsched/internal/resource"
	"daginsched/internal/sched"
)

func bodies() [][]isa.Inst {
	return [][]isa.Inst{
		{
			isa.MovI(1, isa.O0),
			isa.Fp3(isa.FDIVD, isa.F(0), isa.F(2), isa.F(6)),
		},
		{
			isa.Fp3(isa.FADDD, isa.F(6), isa.F(8), isa.F(10)),
			isa.Store(isa.STDF, isa.F(10), isa.SP, 64),
			isa.MovI(2, isa.O1),
			isa.MovI(3, isa.O2),
			isa.MovI(4, isa.L0),
			isa.MovI(5, isa.L1),
			isa.MovI(6, isa.L2),
			isa.MovI(7, isa.L3),
			isa.RIR(isa.ADD, isa.O1, 1, isa.O3),
			isa.RIR(isa.ADD, isa.O2, 2, isa.O4),
			isa.Store(isa.ST, isa.O3, isa.FP, -4),
			isa.Store(isa.ST, isa.O4, isa.FP, -8),
		},
	}
}

func main() {
	m := machine.Pipe1()
	var dags []*dag.DAG
	var flat []isa.Inst
	for _, body := range bodies() {
		b := &block.Block{Name: "b", Insts: body, Start: len(flat)}
		for i := range b.Insts {
			b.Insts[i].Index = i
		}
		rt := resource.NewTable(resource.MemExprModel)
		rt.PrepareBlock(b.Insts)
		dags = append(dags, dag.TableForward{}.Build(b, m, rt))
		flat = append(flat, body...)
	}

	for _, global := range []bool{false, true} {
		results := sched.ScheduleChain(dags, m, global)
		var order []int32
		base := int32(0)
		for bi, r := range results {
			for _, node := range r.Order {
				order = append(order, base+node)
			}
			base += int32(dags[bi].Len())
		}
		rt := resource.NewTable(resource.MemExprModel)
		rt.PrepareBlock(flat)
		cycles := pipe.Simulate(flat, order, m, rt).Cycles
		mode := "local only"
		if global {
			mode = "with inherited latencies"
		}
		fmt.Printf("%-26s block-2 order %v  ->  %d cycles total\n",
			mode+":", results[1].Order, cycles)
	}
	fmt.Println("\nThe carry makes the divide's in-flight latency visible to block 2,")
	fmt.Println("so the independent moves run during the wait instead of behind it.")
}
