// Renaming demonstrates how much of a dependence DAG is "false": WAR
// (anti) and WAW (output) arcs exist only because register names are
// reused, so a register-renaming prepass deletes them and hands the
// scheduler real parallelism. The input funnels two independent
// computations through one register; renaming splits them apart.
//
//	go run ./examples/renaming
package main

import (
	"fmt"
	"log"

	"daginsched/internal/asm"
	"daginsched/internal/core"
	"daginsched/internal/dag"
	"daginsched/internal/rename"
)

const src = `
hot:
	ld [%fp-4], %o0
	add %o0, 1, %o0
	st %o0, [%fp-8]
	ld [%fp-12], %o0
	add %o0, 2, %o0
	st %o0, [%fp-16]
`

func main() {
	insts, err := asm.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	for _, useRename := range []bool{false, true} {
		p := core.Default()
		p.Rename = useRename
		res := p.ScheduleProgram(insts)
		br := res.Blocks[0]
		st := br.DAG.Statistics()
		mode := "as written"
		if useRename {
			mode = "after renaming"
		}
		fmt.Printf("%-16s arcs %2d (RAW %d, WAR %d, WAW %d)  cycles %d\n",
			mode+":", st.Arcs, st.ByKind[dag.RAW], st.ByKind[dag.WAR],
			st.ByKind[dag.WAW], br.Schedule.Cycles)
	}

	r := rename.Block(insts)
	fmt.Printf("\n%d definitions renamed; rewritten block:\n", r.Renamed)
	fmt.Print(asm.Print(r.Insts))
	fmt.Println("\nThe second chain no longer serializes behind the first: the")
	fmt.Println("scheduler can interleave the two loads and hide both delay slots.")
}
