// Quickstart: schedule a small basic block end to end.
//
// The block loads a value, increments it, and compares against a
// constant. In program order the increment stalls in the load's delay
// slot; the scheduler hoists the independent mov into the slot. With
// -optimal the branch-and-bound scheduler (the paper's future-work
// item) confirms the list schedule is already makespan-optimal here.
//
//	go run ./examples/quickstart [-optimal]
package main

import (
	"flag"
	"fmt"
	"log"

	"daginsched/internal/core"
	"daginsched/internal/sched"
)

const src = `
loop:
	ld [%fp-4], %o0
	add %o0, 1, %o1
	mov 5, %o2
	cmp %o1, %o2
	bne loop
	nop
`

func main() {
	optimal := flag.Bool("optimal", false, "also run the branch-and-bound optimal scheduler")
	flag.Parse()

	p := core.Default()
	out, res, err := p.ScheduleAsm(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("input:")
	fmt.Print(src[1:])
	fmt.Println("\nscheduled (krishnamurthy, pipe1):")
	fmt.Print(out)
	fmt.Println()
	fmt.Print(res.Report())

	if *optimal {
		br := res.Blocks[0]
		opt := sched.BranchAndBound(br.DAG, p.Machine)
		fmt.Printf("\nbranch-and-bound optimum for block %q: %d cycles (list schedule: %d)\n",
			br.Block.Name, opt.Cycles, br.Schedule.Cycles)
	}
}
