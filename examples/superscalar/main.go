// Superscalar demonstrates the "alternate type" heuristic on a 2-issue
// machine (one integer-side + one FP-side instruction per cycle). The
// input interleaves poorly — all integer work first, then all FP work —
// so program order dual-issues almost nothing. Warren's algorithm,
// whose rank-2 heuristic is alternate type, reorders the stream so
// pairs form nearly every cycle.
//
//	go run ./examples/superscalar
package main

import (
	"fmt"
	"log"

	"daginsched/internal/core"
	"daginsched/internal/machine"
	"daginsched/internal/sched"
)

const src = `
kernel:
	ld [%fp-4], %o0
	add %o0, 1, %o1
	sll %o1, 2, %o2
	sub %o2, 3, %o3
	xor %o3, %o1, %o4
	lddf [%sp+64], %f2
	faddd %f2, %f4, %f6
	fmuld %f6, %f8, %f10
	fsubd %f10, %f2, %f12
	stdf %f12, [%sp+72]
`

func main() {
	for _, cfg := range []struct {
		name string
		algo *sched.Algorithm
	}{
		{"program order (baseline)", nil},
		{"warren (alternate type at rank 2)", sched.Warren()},
	} {
		p := core.Default()
		p.Machine = machine.Super2()
		if cfg.algo != nil {
			p.Algorithm = cfg.algo
		}
		out, res, err := p.ScheduleAsm(src)
		if err != nil {
			log.Fatal(err)
		}
		br := res.Blocks[0]
		cycles := br.Schedule.Cycles
		if cfg.algo == nil {
			cycles = br.Baseline.Cycles
		} else {
			fmt.Println("scheduled stream:")
			fmt.Print(out)
		}
		fmt.Printf("%-36s %d cycles\n\n", cfg.name+":", cycles)
	}
	fmt.Println("Interleaving int/FP lets the 2-issue front end pair instructions;")
	fmt.Println("the alternate-type heuristic is what drives the interleaving.")
}
