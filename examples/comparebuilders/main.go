// Comparebuilders races the paper's DAG-construction algorithms on one
// large synthetic basic block (tomcatv's 326-instruction block by
// default) and prints construction time, arc counts and transitive-arc
// census for each — Section 6's comparison at single-block scale.
//
//	go run ./examples/comparebuilders [-bench name] [-n blockIndex]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"daginsched/internal/dag"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/synth"
)

func main() {
	bench := flag.String("bench", "tomcatv", "synthetic benchmark")
	idx := flag.Int("n", 0, "block index (0 = the largest block)")
	flag.Parse()

	p, ok := synth.ByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	blocks := p.Generate()
	if *idx < 0 || *idx >= len(blocks) {
		log.Fatalf("block index out of range (0..%d)", len(blocks)-1)
	}
	b := blocks[*idx]
	m := machine.Pipe1()
	fmt.Printf("benchmark %s, block %q: %d instructions\n\n", *bench, b.Name, b.Len())
	fmt.Printf("%-14s %10s %8s %10s %12s\n", "builder", "time", "arcs", "transitive", "max children")
	for _, bld := range dag.AllBuilders() {
		rt := resource.NewTable(resource.MemExprModel)
		rt.PrepareBlock(b.Insts)
		start := time.Now()
		d := bld.Build(b, m, rt)
		dt := time.Since(start)
		maxKids := 0
		for i := range d.Nodes {
			if c := d.Nodes[i].NumChildren(); c > maxKids {
				maxKids = c
			}
		}
		fmt.Printf("%-14s %10s %8d %10d %12d\n",
			bld.Name(), dt.Round(time.Microsecond), d.NumArcs, d.TransitiveArcs(), maxKids)
	}
	fmt.Println("\nThe n² builders retain every transitive arc (quadratic work);")
	fmt.Println("table building keeps only the most recent def/use arcs; the")
	fmt.Println("avoiders (landskov, tableb-bitmap) insert none at all.")
}
