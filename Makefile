GO ?= go

.PHONY: all build vet lint test race bench-smoke bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific static analysis: the nine-pass schedlint suite
# enforces the //sched:noalloc, arena-lifetime, //sched:guarded-by,
# b.ReportAllocs(), //sched:lock-rank, atomic-field, //sched:signals,
# //sched:cancellable and //sched:recover-boundary invariants (see
# DESIGN.md §7). -strict also fails on stale //sched:lint-ignore
# suppressions; -stats prints per-pass finding counts and wall time.
# Non-zero exit on any finding.
lint:
	$(GO) run ./cmd/schedlint -strict -stats ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One-iteration engine benchmark pass: proves the steady-state
# zero-allocation property (-benchmem must report 0 allocs/op for the
# single-worker rows) without paying for a full measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench Engine -benchmem -benchtime 1x .

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

ci:
	sh scripts/ci.sh
