GO ?= go

.PHONY: all build vet lint test race bench-smoke bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific static analysis: the schedlint suite enforces the
# //sched:noalloc, arena-lifetime, //sched:guarded-by and
# b.ReportAllocs() invariants (see DESIGN.md §7). Non-zero exit on any
# finding.
lint:
	$(GO) run ./cmd/schedlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One-iteration engine benchmark pass: proves the steady-state
# zero-allocation property (-benchmem must report 0 allocs/op for the
# single-worker rows) without paying for a full measurement run.
bench-smoke:
	$(GO) test -run '^$$' -bench Engine -benchmem -benchtime 1x .

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

ci:
	sh scripts/ci.sh
