module daginsched

go 1.22
