package dag

import (
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/testgen"
)

func csrTestBlock(seed int64, n int) *block.Block {
	b := &block.Block{Name: "csr", Insts: testgen.Block(seed, n)}
	for i := range b.Insts {
		b.Insts[i].Index = i
	}
	return b
}

// TestFreezeMatchesMirrors freezes DAGs from every builder and checks
// the CSR view against the Succs/Preds mirrors, both through Validate
// (which cross-checks spans arc-for-arc) and by walking the accessors.
func TestFreezeMatchesMirrors(t *testing.T) {
	m := machine.Pipe1()
	for _, bld := range AllBuilders() {
		rt := resource.NewTable(resource.MemExprModel)
		b := csrTestBlock(77, 60)
		rt.PrepareBlock(b.Insts)
		d := bld.Build(b, m, rt)
		if d.FrozenCSR() != nil {
			t.Fatalf("%s: DAG frozen before Freeze", bld.Name())
		}
		c := d.Freeze()
		if c2 := d.Freeze(); c2 != c {
			t.Fatalf("%s: second Freeze returned a different view", bld.Name())
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: Validate after Freeze: %v", bld.Name(), err)
		}
		if len(c.SuccArcs()) != d.NumArcs || len(c.PredArcs()) != d.NumArcs {
			t.Fatalf("%s: flat arrays hold %d/%d arcs, want %d",
				bld.Name(), len(c.SuccArcs()), len(c.PredArcs()), d.NumArcs)
		}
		for i := int32(0); int(i) < d.Len(); i++ {
			if int(c.NumSuccs(i)) != len(d.Nodes[i].Succs) ||
				int(c.NumPreds(i)) != len(d.Nodes[i].Preds) {
				t.Fatalf("%s: node %d span counts diverge", bld.Name(), i)
			}
			for k, arc := range c.Succs(i) {
				if arc != d.Nodes[i].Succs[k] {
					t.Fatalf("%s: node %d succ %d diverges", bld.Name(), i, k)
				}
			}
			for k, arc := range c.Preds(i) {
				if arc != d.Nodes[i].Preds[k] {
					t.Fatalf("%s: node %d pred %d diverges", bld.Name(), i, k)
				}
			}
			lo, hi := c.SuccSpan(i)
			if int(hi-lo) != len(d.Nodes[i].Succs) {
				t.Fatalf("%s: node %d SuccSpan [%d,%d) wrong width", bld.Name(), i, lo, hi)
			}
		}
	}
}

// TestCSRReuseAcrossResetFor drives one arena through blocks of
// shrinking and growing sizes, freezing each build, and demands the
// recycled CSR storage never leaks arcs from a previous block.
func TestCSRReuseAcrossResetFor(t *testing.T) {
	m := machine.Pipe1()
	rt := resource.NewTable(resource.MemExprModel)
	ar := new(BuildArena)
	bld := TableBackward{}
	for round, n := range []int{80, 11, 0, 120, 1, 47} {
		b := csrTestBlock(int64(1000+round), n)
		rt.PrepareBlock(b.Insts)
		d := bld.BuildInto(ar, b, m, rt)
		if d.FrozenCSR() != nil {
			t.Fatalf("round %d: ResetFor kept the previous block's frozen view", round)
		}
		d.Freeze()
		if err := d.Validate(); err != nil {
			t.Fatalf("round %d (n=%d): %v", round, n, err)
		}
		// The frozen view must agree with a cold rebuild of the block.
		rt2 := resource.NewTable(resource.MemExprModel)
		rt2.PrepareBlock(b.Insts)
		cold := bld.Build(b, m, rt2)
		if cold.NumArcs != d.NumArcs {
			t.Fatalf("round %d: recycled build has %d arcs, cold build %d",
				round, d.NumArcs, cold.NumArcs)
		}
	}
}

// TestValidateCatchesCSRDivergence corrupts a frozen view in several
// ways and checks Validate reports each one.
func TestValidateCatchesCSRDivergence(t *testing.T) {
	m := machine.Pipe1()
	build := func() *DAG {
		rt := resource.NewTable(resource.MemExprModel)
		b := csrTestBlock(9, 40)
		rt.PrepareBlock(b.Insts)
		d := TableBackward{}.Build(b, m, rt)
		d.Freeze()
		if err := d.Validate(); err != nil {
			t.Fatalf("clean DAG invalid: %v", err)
		}
		if d.NumArcs == 0 {
			t.Fatal("test block produced no arcs")
		}
		return d
	}

	d := build()
	d.csr.succArcs[0].Delay++
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted a diverged succ arc")
	}

	d = build()
	d.csr.predArcs[len(d.csr.predArcs)-1].Kind = WAW + 1
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted a diverged pred arc")
	}

	d = build()
	d.csr.succOff[1] = d.csr.succOff[1] + 1
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted non-matching offsets")
	}

	d = build()
	d.csr.succArcs = d.csr.succArcs[:len(d.csr.succArcs)-1]
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted a truncated flat arc array")
	}
}
