package dag

import (
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/testgen"
)

func buildOn(t *testing.T, bld Builder, insts []isa.Inst) *DAG {
	t.Helper()
	b := &block.Block{Name: "t", Insts: insts}
	for i := range b.Insts {
		b.Insts[i].Index = i
	}
	rt := resource.NewTable(resource.MemExprModel)
	rt.PrepareBlock(b.Insts)
	d := bld.Build(b, machine.Pipe1(), rt)
	if err := d.Validate(); err != nil {
		t.Fatalf("%s: invalid DAG: %v", bld.Name(), err)
	}
	return d
}

// figure1 is the paper's Figure 1 block:
//
//	1: DIVF R1,R2,R3  (R3 = R1/R2, 20 cycles)
//	2: ADDF R4,R5,R1  (R1 = R4+R5,  4 cycles)
//	3: ADDF R1,R3,R6  (R6 = R1+R3,  4 cycles)
func figure1() []isa.Inst {
	return []isa.Inst{
		isa.Fp3(isa.FDIVS, isa.F(1), isa.F(2), isa.F(3)),
		isa.Fp3(isa.FADDS, isa.F(4), isa.F(5), isa.F(1)),
		isa.Fp3(isa.FADDS, isa.F(1), isa.F(3), isa.F(6)),
	}
}

func findArc(d *DAG, from, to int32) (Arc, bool) {
	for _, a := range d.Nodes[from].Succs {
		if a.To == to {
			return a, true
		}
	}
	return Arc{}, false
}

func TestFigure1ArcsRetained(t *testing.T) {
	// The table-building methods and n² "will retain this kind of arc":
	// the transitive RAW 1→3 with the 20-cycle delay.
	for _, bld := range []Builder{N2Forward{}, TableForward{}, TableBackward{}} {
		d := buildOn(t, bld, figure1())
		war, ok := findArc(d, 0, 1)
		if !ok || war.Kind != WAR || war.Delay != 1 {
			t.Errorf("%s: arc 1->2 = %+v, want WAR delay 1", bld.Name(), war)
		}
		raw12, ok := findArc(d, 1, 2)
		if !ok || raw12.Kind != RAW || raw12.Delay != 4 {
			t.Errorf("%s: arc 2->3 = %+v, want RAW delay 4", bld.Name(), raw12)
		}
		raw02, ok := findArc(d, 0, 2)
		if !ok || raw02.Kind != RAW || raw02.Delay != 20 {
			t.Errorf("%s: transitive arc 1->3 = %+v ok=%v, want RAW delay 20",
				bld.Name(), raw02, ok)
		}
	}
}

func TestFigure1ArcsDroppedByAvoiders(t *testing.T) {
	// Landskov and the reachability-bit-map insertion drop the 1→3 arc —
	// losing the 20-cycle constraint, the paper's argument against them.
	for _, bld := range []Builder{Landskov{}, TableBackward{PreventTransitive: true}} {
		d := buildOn(t, bld, figure1())
		if _, ok := findArc(d, 0, 2); ok {
			t.Errorf("%s: transitive arc 1->3 should be absent", bld.Name())
		}
		if !d.HasPath(0, 2) {
			t.Errorf("%s: ordering path 1=>3 must still exist", bld.Name())
		}
		if d.TransitiveArcs() != 0 {
			t.Errorf("%s: expected zero transitive arcs", bld.Name())
		}
	}
}

func TestSimpleChain(t *testing.T) {
	insts := []isa.Inst{
		isa.MovI(1, isa.O0),
		isa.RIR(isa.ADD, isa.O0, 1, isa.O1),
		isa.RIR(isa.ADD, isa.O1, 1, isa.O2),
	}
	for _, bld := range AllBuilders() {
		d := buildOn(t, bld, insts)
		if d.NumArcs != 2 {
			t.Errorf("%s: chain arcs = %d, want 2", bld.Name(), d.NumArcs)
		}
		if got := d.Roots(); len(got) != 1 || got[0] != 0 {
			t.Errorf("%s: roots = %v", bld.Name(), got)
		}
		if got := d.Leaves(); len(got) != 1 || got[0] != 2 {
			t.Errorf("%s: leaves = %v", bld.Name(), got)
		}
	}
}

func TestIndependentInstructionsFormForest(t *testing.T) {
	insts := []isa.Inst{
		isa.MovI(1, isa.O0),
		isa.MovI(2, isa.O1),
		isa.MovI(3, isa.O2),
	}
	for _, bld := range AllBuilders() {
		d := buildOn(t, bld, insts)
		if d.NumArcs != 0 {
			t.Errorf("%s: independent block has %d arcs", bld.Name(), d.NumArcs)
		}
		if len(d.Roots()) != 3 || len(d.Leaves()) != 3 {
			t.Errorf("%s: expected 3-tree forest", bld.Name())
		}
	}
}

func TestWAWOnlyWhenNoInterveningUse(t *testing.T) {
	// def R, use R, def R: the second def takes a WAR from the use, not
	// a WAW from the first def (the paper's pseudocode guard).
	insts := []isa.Inst{
		isa.MovI(1, isa.O0),
		isa.Store(isa.ST, isa.O0, isa.FP, -4),
		isa.MovI(2, isa.O0),
	}
	for _, bld := range []Builder{TableForward{}, TableBackward{}} {
		d := buildOn(t, bld, insts)
		if _, ok := findArc(d, 0, 2); ok {
			t.Errorf("%s: WAW 0->2 should be covered by RAW+WAR chain", bld.Name())
		}
		if a, ok := findArc(d, 1, 2); !ok || a.Kind != WAR {
			t.Errorf("%s: expected WAR 1->2, got %+v ok=%v", bld.Name(), a, ok)
		}
	}
	// The n² method adds the transitive WAW 0->2 too.
	d := buildOn(t, N2Forward{}, insts)
	if a, ok := findArc(d, 0, 2); !ok || a.Kind != WAW {
		t.Errorf("n2f: expected WAW 0->2, got %+v ok=%v", a, ok)
	}
}

func TestWAWWhenNoUse(t *testing.T) {
	insts := []isa.Inst{
		isa.Fp2(isa.FMOVS, isa.F(2), isa.F0),
		isa.Fp2(isa.FMOVS, isa.F(4), isa.F0),
	}
	for _, bld := range AllBuilders() {
		d := buildOn(t, bld, insts)
		a, ok := findArc(d, 0, 1)
		if !ok || a.Kind != WAW {
			t.Errorf("%s: expected WAW 0->1, got %+v ok=%v", bld.Name(), a, ok)
		}
	}
}

func TestSelfDependenceNeverCreatesArc(t *testing.T) {
	insts := []isa.Inst{isa.RIR(isa.ADD, isa.O0, 1, isa.O0)}
	for _, bld := range AllBuilders() {
		d := buildOn(t, bld, insts)
		if d.NumArcs != 0 {
			t.Errorf("%s: self-dependence created arcs", bld.Name())
		}
	}
}

func TestPairSkewOnArcDelay(t *testing.T) {
	// lddf defines %f2 and %f3; a consumer of %f3 waits one extra cycle.
	insts := []isa.Inst{
		isa.Load(isa.LDDF, isa.FP, -16, isa.F(2)),
		isa.Fp2(isa.FMOVS, isa.F(2), isa.F(8)),
		isa.Fp2(isa.FMOVS, isa.F(3), isa.F(9)),
	}
	for _, bld := range []Builder{N2Forward{}, TableForward{}, TableBackward{}} {
		d := buildOn(t, bld, insts)
		even, ok1 := findArc(d, 0, 1)
		odd, ok2 := findArc(d, 0, 2)
		if !ok1 || !ok2 {
			t.Fatalf("%s: missing pair arcs", bld.Name())
		}
		if odd.Delay != even.Delay+1 {
			t.Errorf("%s: pair delays even=%d odd=%d, want odd=even+1",
				bld.Name(), even.Delay, odd.Delay)
		}
	}
}

func TestMemoryDisambiguation(t *testing.T) {
	// Same base, different offsets: no arc. Same expression: RAW.
	insts := []isa.Inst{
		isa.Store(isa.ST, isa.O0, isa.FP, -4),
		isa.Store(isa.ST, isa.O1, isa.FP, -8),
		isa.Load(isa.LD, isa.FP, -4, isa.O2),
	}
	for _, bld := range AllBuilders() {
		d := buildOn(t, bld, insts)
		if _, ok := findArc(d, 0, 1); ok {
			t.Errorf("%s: disjoint stores must not conflict", bld.Name())
		}
		if a, ok := findArc(d, 0, 2); !ok || a.Kind != RAW {
			t.Errorf("%s: store/load same slot must be RAW, got ok=%v", bld.Name(), ok)
		}
		if _, ok := findArc(d, 1, 2); ok {
			t.Errorf("%s: [-8] store vs [-4] load must not conflict", bld.Name())
		}
	}
}

func TestArcDedupeKeepsMaxDelay(t *testing.T) {
	// faddd %f0,%f2,%f4 defines both %f4 (delay 4) and %f5 (delay 5 with
	// pair skew); fmuld %f4,... consumes both halves. One arc must
	// remain, carrying the 5-cycle max.
	insts := []isa.Inst{
		isa.Fp3(isa.FADDD, isa.F0, isa.F(2), isa.F(4)),
		isa.Fp3(isa.FMULD, isa.F(4), isa.F(6), isa.F(8)),
	}
	for _, bld := range AllBuilders() {
		d := buildOn(t, bld, insts)
		if len(d.Nodes[0].Succs) != 1 {
			t.Fatalf("%s: got %d arcs, want 1 deduped arc", bld.Name(), len(d.Nodes[0].Succs))
		}
		a := d.Nodes[0].Succs[0]
		if a.Kind != RAW || a.Delay != 5 {
			t.Errorf("%s: deduped arc = %+v, want RAW delay 5", bld.Name(), a)
		}
	}
}

// conflictPairs brute-forces all dependent pairs (j < i) of a block.
func conflictPairs(insts []isa.Inst) [][2]int32 {
	rt := resource.NewTable(resource.MemExprModel)
	rt.PrepareBlock(insts)
	ids := func(rs []isa.ResRef) map[resource.ID]bool {
		m := map[resource.ID]bool{}
		for _, r := range rs {
			m[rt.RefID(r)] = true
		}
		return m
	}
	uses := make([]map[resource.ID]bool, len(insts))
	defs := make([]map[resource.ID]bool, len(insts))
	for i := range insts {
		uses[i] = ids(insts[i].Uses())
		defs[i] = ids(insts[i].Defs())
	}
	intersects := func(a, b map[resource.ID]bool) bool {
		for k := range a {
			if b[k] {
				return true
			}
		}
		return false
	}
	var out [][2]int32
	for i := 1; i < len(insts); i++ {
		for j := 0; j < i; j++ {
			if intersects(defs[j], uses[i]) || intersects(uses[j], defs[i]) ||
				intersects(defs[j], defs[i]) {
				out = append(out, [2]int32{int32(j), int32(i)})
			}
		}
	}
	return out
}

// TestAllBuildersPreserveDependences is the core soundness property:
// every dependent pair — including pairs the builders cover only
// transitively — must be ordered by a DAG path, under every builder.
func TestAllBuildersPreserveDependences(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		insts := testgen.Block(seed, 25)
		pairs := conflictPairs(insts)
		for _, bld := range AllBuilders() {
			d := buildOn(t, bld, insts)
			for _, p := range pairs {
				if !d.HasPath(p[0], p[1]) {
					t.Fatalf("%s seed %d: dependent pair %d->%d unordered\n%v %v",
						bld.Name(), seed, p[0], p[1],
						insts[p[0]].String(), insts[p[1]].String())
				}
			}
		}
	}
}

// longestDelayFrom computes max path delay from node s to every node.
func longestDelayFrom(d *DAG, s int32) []int32 {
	dist := make([]int32, len(d.Nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	for i := int(s); i < len(d.Nodes); i++ {
		if dist[i] < 0 {
			continue
		}
		for _, a := range d.Nodes[i].Succs {
			if nd := dist[i] + a.Delay; nd > dist[a.To] {
				dist[a.To] = nd
			}
		}
	}
	return dist
}

// TestFullBuildersPreserveTiming: for the three Section 6 algorithms,
// every adjacent RAW dependence must be enforced with its full machine
// delay along some DAG path (the property Figure 1 shows the
// transitive-arc avoiders violating).
func TestFullBuildersPreserveTiming(t *testing.T) {
	m := machine.Pipe1()
	for seed := int64(100); seed < 120; seed++ {
		insts := testgen.Block(seed, 20)
		rt := resource.NewTable(resource.MemExprModel)
		rt.PrepareBlock(insts)
		// Adjacent RAW pairs: (lastDef(R), i) for every use of R.
		type rawReq struct {
			j, i  int32
			delay int32
		}
		var reqs []rawReq
		lastDef := map[resource.ID]int32{}
		lastOdd := map[resource.ID]bool{}
		for i := range insts {
			for _, u := range insts[i].Uses() {
				id := rt.RefID(u)
				if j, ok := lastDef[id]; ok {
					dl := m.RAWDelay(&insts[j], lastOdd[id], &insts[i], u.Slot)
					reqs = append(reqs, rawReq{j, int32(i), int32(dl)})
				}
			}
			for _, def := range insts[i].Defs() {
				id := rt.RefID(def)
				lastDef[id] = int32(i)
				lastOdd[id] = insts[i].PairSecondDef(def)
			}
		}
		for _, bld := range []Builder{N2Forward{}, TableForward{}, TableBackward{}} {
			d := buildOn(t, bld, insts)
			for _, r := range reqs {
				if r.j == r.i {
					continue
				}
				dist := longestDelayFrom(d, r.j)
				if dist[r.i] < r.delay {
					t.Fatalf("%s seed %d: RAW %d->%d needs %d cycles, path gives %d",
						bld.Name(), seed, r.j, r.i, r.delay, dist[r.i])
				}
			}
		}
	}
}

// TestBuildersAgreeOnReachability: all builders must produce the same
// partial order (transitive closure), even though their arc sets differ.
func TestBuildersAgreeOnReachability(t *testing.T) {
	for seed := int64(200); seed < 220; seed++ {
		insts := testgen.Block(seed, 18)
		ref := buildOn(t, N2Forward{}, insts)
		refReach := ref.Reachability()
		for _, bld := range AllBuilders()[1:] {
			d := buildOn(t, bld, insts)
			reach := d.Reachability()
			for i := range reach {
				if !reach[i].Equal(refReach[i]) {
					t.Fatalf("%s seed %d: node %d reach %v, n2f %v",
						bld.Name(), seed, i, reach[i], refReach[i])
				}
			}
		}
	}
}

func TestN2HasMostArcs(t *testing.T) {
	insts := testgen.Block(7, 40)
	n2 := buildOn(t, N2Forward{}, insts)
	tf := buildOn(t, TableForward{}, insts)
	lk := buildOn(t, Landskov{}, insts)
	if n2.NumArcs < tf.NumArcs {
		t.Errorf("n2 (%d arcs) should have at least as many arcs as table (%d)",
			n2.NumArcs, tf.NumArcs)
	}
	if tf.NumArcs < lk.NumArcs {
		t.Errorf("table (%d arcs) should have at least as many arcs as landskov (%d)",
			tf.NumArcs, lk.NumArcs)
	}
	if lk.TransitiveArcs() != 0 {
		t.Error("landskov must have zero transitive arcs")
	}
}

func TestBitmapBuilderKeepsReach(t *testing.T) {
	insts := testgen.Block(9, 15)
	d := buildOn(t, TableBackward{PreventTransitive: true}, insts)
	if d.Reach == nil {
		t.Fatal("bitmap builder should retain reachability maps")
	}
	// Maps must agree with a from-scratch recomputation.
	kept := d.Reach
	d.Reach = nil
	fresh := d.Reachability()
	for i := range kept {
		if !kept[i].Equal(fresh[i]) {
			t.Fatalf("node %d: builder reach %v, recomputed %v", i, kept[i], fresh[i])
		}
	}
}

type recordingObserver struct {
	started bool
	order   []int32
}

func (r *recordingObserver) Start(d *DAG)             { r.started = true }
func (r *recordingObserver) NodeDone(d *DAG, i int32) { r.order = append(r.order, i) }

func TestBackwardObserverOrder(t *testing.T) {
	insts := testgen.Block(3, 10)
	obs := &recordingObserver{}
	buildOn(t, TableBackward{Observer: obs}, insts)
	if !obs.started {
		t.Fatal("observer never started")
	}
	if len(obs.order) != len(insts) {
		t.Fatalf("observer saw %d nodes, want %d", len(obs.order), len(insts))
	}
	for k, i := range obs.order {
		if i != int32(len(insts)-1-k) {
			t.Fatalf("observer order %v not reverse program order", obs.order)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"n2f", "tablef", "tableb", "landskov", "tableb-bitmap"} {
		b, ok := ByName(name)
		if !ok || b.Name() != name {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("quantum"); ok {
		t.Error("unknown builder resolved")
	}
}

func TestDirectionString(t *testing.T) {
	if Forward.String() != "f" || Backward.String() != "b" {
		t.Error("direction codes wrong")
	}
	if (TableBackward{}).Direction() != Backward || (TableForward{}).Direction() != Forward {
		t.Error("builder directions wrong")
	}
}

func TestDepKindString(t *testing.T) {
	if RAW.String() != "RAW" || WAR.String() != "WAR" || WAW.String() != "WAW" {
		t.Error("DepKind names wrong")
	}
}

func TestEmptyBlock(t *testing.T) {
	for _, bld := range AllBuilders() {
		d := buildOn(t, bld, nil)
		if d.Len() != 0 || d.NumArcs != 0 {
			t.Errorf("%s: empty block mishandled", bld.Name())
		}
	}
}
