package dag

import "daginsched/internal/buf"

// CSR is the frozen compressed-sparse-row view of a built DAG: every
// successor arc in one flat array grouped by source node, every
// predecessor arc in a second flat array grouped by target node, with
// n+1 offset arrays delimiting each node's span. The per-node spans
// preserve the mirror slices' insertion order exactly, so any consumer
// that walks Succs/Preds produces bit-identical results walking the
// CSR view — only the memory layout changes: the hot heuristic and
// ready-list loops touch two contiguous arrays instead of chasing n
// scattered slice headers.
//
// A CSR is built once per DAG by Freeze after construction completes
// and is immutable from then on (the same contract as the DAG itself).
// Its storage lives inside the DAG value, so arena-recycled DAGs
// recycle the CSR arrays too: ResetFor drops the frozen view and the
// next Freeze refills the same backing arrays.
type CSR struct {
	succArcs []Arc
	predArcs []Arc
	succOff  []int32 // len n+1; succArcs[succOff[i]:succOff[i+1]] = node i's Succs
	predOff  []int32 // len n+1; predArcs[predOff[i]:predOff[i+1]] = node i's Preds
	frozen   bool

	// Packed 8-byte twins of succArcs/predArcs (see packed.go), filled
	// by freeze unless the block exceeds the packed limits. spill holds
	// the rare delays too wide for the packed record's 16-bit field.
	succPacked []PackedArc
	predPacked []PackedArc
	spill      []int32
	packed     bool
}

// Succs returns node i's successor arcs, in the same order as
// Nodes[i].Succs.
func (c *CSR) Succs(i int32) []Arc {
	return c.succArcs[c.succOff[i]:c.succOff[i+1]]
}

// Preds returns node i's predecessor arcs, in the same order as
// Nodes[i].Preds.
func (c *CSR) Preds(i int32) []Arc {
	return c.predArcs[c.predOff[i]:c.predOff[i+1]]
}

// NumSuccs returns node i's successor count without touching the arc
// array.
func (c *CSR) NumSuccs(i int32) int32 { return c.succOff[i+1] - c.succOff[i] }

// NumPreds returns node i's predecessor count without touching the arc
// array.
func (c *CSR) NumPreds(i int32) int32 { return c.predOff[i+1] - c.predOff[i] }

// SuccSpan returns the half-open [lo, hi) range of node i's successors
// inside SuccArcs, for callers that walk the flat array directly.
func (c *CSR) SuccSpan(i int32) (lo, hi int32) { return c.succOff[i], c.succOff[i+1] }

// SuccArcs returns the whole flat successor-arc array (all arcs,
// grouped by From in ascending node order). A reverse topological
// heuristic pass is a single backward walk over this array.
func (c *CSR) SuccArcs() []Arc { return c.succArcs }

// PredArcs returns the whole flat predecessor-arc array (all arcs,
// grouped by To in ascending node order).
func (c *CSR) PredArcs() []Arc { return c.predArcs }

// growArcs returns an empty []Arc with capacity for at least n arcs,
// reusing s's backing array when possible.
func growArcs(s []Arc, n int) []Arc {
	if cap(s) < n {
		return make([]Arc, 0, n)
	}
	return s[:0]
}

// freeze fills c from d's mirror slices: one O(n + m) concatenation
// per direction. No sorting is needed — nodes are visited in index
// order and each node's arcs are appended in their insertion order,
// which is exactly the grouping CSR requires.
func (c *CSR) freeze(d *DAG) {
	n := len(d.Nodes)
	c.succOff = buf.Int32(c.succOff, n+1)
	c.predOff = buf.Int32(c.predOff, n+1)
	c.succArcs = growArcs(c.succArcs, d.NumArcs)
	c.predArcs = growArcs(c.predArcs, d.NumArcs)
	for i := 0; i < n; i++ {
		c.succOff[i] = int32(len(c.succArcs))
		//sched:lint-ignore noalloc growArcs reserved capacity for all NumArcs arcs above
		c.succArcs = append(c.succArcs, d.Nodes[i].Succs...)
		c.predOff[i] = int32(len(c.predArcs))
		//sched:lint-ignore noalloc growArcs reserved capacity for all NumArcs arcs above
		c.predArcs = append(c.predArcs, d.Nodes[i].Preds...)
	}
	c.succOff[n] = int32(len(c.succArcs))
	c.predOff[n] = int32(len(c.predArcs))
	c.packFreeze(n)
	c.frozen = true
}

// Freeze builds the DAG's CSR view (a no-op if already frozen) and
// returns it. Freeze may only be called after construction completes;
// the view is immutable and shares the DAG's lifetime — for
// arena-owned DAGs it is invalidated by the arena's next
// ResetFor/BuildInto, which also recycles the CSR's storage.
//
//sched:noalloc
func (d *DAG) Freeze() *CSR {
	if !d.csr.frozen {
		d.csr.freeze(d)
	}
	return &d.csr
}

// FrozenCSR returns the CSR view if Freeze has run, else nil. Hot-path
// consumers use it to pick the flat layout when available without
// forcing a freeze on callers that never asked for one.
func (d *DAG) FrozenCSR() *CSR {
	if d.csr.frozen {
		return &d.csr
	}
	return nil
}
