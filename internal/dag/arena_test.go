package dag

import (
	"fmt"
	"testing"

	"daginsched/internal/bitset"
	"daginsched/internal/block"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/testgen"
)

// arcKey flattens an arc for comparison.
func arcKey(a Arc) string {
	return fmt.Sprintf("%d->%d/%s/%d", a.From, a.To, a.Kind, a.Delay)
}

// requireSameDAG asserts two DAGs have identical structure: same arcs
// in the same insertion order on every node, same counters.
func requireSameDAG(t *testing.T, want, got *DAG) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("node count: want %d, got %d", want.Len(), got.Len())
	}
	if want.NumArcs != got.NumArcs {
		t.Fatalf("NumArcs: want %d, got %d", want.NumArcs, got.NumArcs)
	}
	for i := range want.Nodes {
		w, g := &want.Nodes[i], &got.Nodes[i]
		if len(w.Succs) != len(g.Succs) || len(w.Preds) != len(g.Preds) {
			t.Fatalf("node %d arc-list lengths differ", i)
		}
		for k := range w.Succs {
			if arcKey(w.Succs[k]) != arcKey(g.Succs[k]) {
				t.Fatalf("node %d succ %d: want %s, got %s",
					i, k, arcKey(w.Succs[k]), arcKey(g.Succs[k]))
			}
		}
		if !w.UseBM.Equal(g.UseBM) || !w.DefBM.Equal(g.DefBM) {
			t.Fatalf("node %d use/def bit maps differ", i)
		}
	}
	if (want.Reach == nil) != (got.Reach == nil) {
		t.Fatalf("Reach presence differs: want %v, got %v",
			want.Reach != nil, got.Reach != nil)
	}
	for i := range want.Reach {
		if !want.Reach[i].Equal(got.Reach[i]) {
			t.Fatalf("Reach[%d] differs", i)
		}
	}
}

// TestBuildIntoMatchesBuild drives one shared arena through a stream
// of blocks of varying size (bigger, smaller, bigger again — the
// shrink/regrow path is where stale state would leak) and requires
// byte-identical structure to a cold Build of the same block.
func TestBuildIntoMatchesBuild(t *testing.T) {
	m := machine.Pipe1()
	builders := []ReuseBuilder{
		TableForward{},
		TableBackward{},
		TableBackward{PreventTransitive: true},
	}
	sizes := []int{40, 7, 120, 1, 64, 0, 90, 13}
	for _, bld := range builders {
		t.Run(bld.Name(), func(t *testing.T) {
			var ar BuildArena
			for bi, n := range sizes {
				insts := testgen.Block(int64(1000+bi), n)
				b := &block.Block{Name: "t", Insts: insts}
				for i := range b.Insts {
					b.Insts[i].Index = i
				}
				rt := resource.NewTable(resource.MemExprModel)
				rt.PrepareBlock(b.Insts)
				cold := bld.Build(b, m, rt)

				rt2 := resource.NewTable(resource.MemExprModel)
				rt2.PrepareBlock(b.Insts)
				warm := bld.BuildInto(&ar, b, m, rt2)

				requireSameDAG(t, cold, warm)
				if err := warm.Validate(); err != nil {
					t.Fatalf("block %d: %v", bi, err)
				}
			}
		})
	}
}

// TestBuildIntoSteadyStateZeroAlloc checks the tentpole property at
// the dag layer: once the arena has warmed up on a block, rebuilding
// DAGs for it allocates nothing.
func TestBuildIntoSteadyStateZeroAlloc(t *testing.T) {
	m := machine.Pipe1()
	insts := testgen.Block(7, 200)
	b := &block.Block{Name: "t", Insts: insts}
	for i := range b.Insts {
		b.Insts[i].Index = i
	}
	for _, bld := range []ReuseBuilder{TableForward{}, TableBackward{}} {
		t.Run(bld.Name(), func(t *testing.T) {
			rt := resource.NewTable(resource.MemExprModel)
			var ar BuildArena
			// Warm-up: grow every buffer.
			rt.PrepareBlock(b.Insts)
			bld.BuildInto(&ar, b, m, rt)
			allocs := testing.AllocsPerRun(50, func() {
				rt.PrepareBlock(b.Insts)
				d := bld.BuildInto(&ar, b, m, rt)
				if d.NumArcs == 0 {
					t.Fatal("no arcs built")
				}
			})
			if allocs != 0 {
				t.Errorf("steady-state BuildInto allocates %.1f/op", allocs)
			}
		})
	}
}

// TestArcDeduperEpochReuse covers the epoch-stamping path across
// begin() calls: marks stamped in one epoch must not be honored in the
// next, and duplicate proposals within an epoch must keep the maximum
// delay (the satellite fix: mark[peer] holds the epoch itself).
func TestArcDeduperEpochReuse(t *testing.T) {
	ad := newArcDeduper(4)

	ad.begin()
	ad.propose(2, 0, 2, RAW, 3)
	ad.propose(2, 0, 2, WAW, 5) // dedupe: max delay wins
	ad.propose(3, 0, 3, WAR, 1)
	if len(ad.pend) != 2 {
		t.Fatalf("epoch 1 pending = %d arcs, want 2", len(ad.pend))
	}
	if ad.pend[0].Delay != 5 || ad.pend[0].Kind != WAW {
		t.Errorf("dedupe kept %v, want delay 5 kind WAW", ad.pend[0])
	}
	if ad.mark[2] != ad.epoch {
		t.Errorf("mark[2] = %d, want current epoch %d", ad.mark[2], ad.epoch)
	}

	// New epoch: peer 2's stale mark must not alias into the fresh
	// pending list, and re-proposing it must append anew.
	ad.begin()
	if len(ad.pend) != 0 {
		t.Fatalf("begin did not clear pending")
	}
	ad.propose(2, 1, 2, RAW, 7)
	if len(ad.pend) != 1 || ad.pend[0].Delay != 7 || ad.pend[0].From != 1 {
		t.Fatalf("epoch 2 proposal mishandled: %+v", ad.pend)
	}
	// Duplicate within the new epoch still dedupes.
	ad.propose(2, 1, 2, WAR, 2)
	if len(ad.pend) != 1 || ad.pend[0].Delay != 7 {
		t.Errorf("epoch 2 dedupe failed: %+v", ad.pend)
	}

	// reset() for a smaller block reuses arrays and keeps epochs
	// monotonic, so stale marks keep missing.
	ad.reset(3)
	ad.begin()
	ad.propose(2, 0, 2, RAW, 1)
	if len(ad.pend) != 1 || ad.pend[0].Delay != 1 {
		t.Errorf("post-reset propose mishandled: %+v", ad.pend)
	}

	// The epoch-wrap guard rewinds and clears.
	ad.epoch = 1<<30 + 1
	ad.mark[1] = ad.epoch
	ad.reset(3)
	if ad.epoch != 0 {
		t.Errorf("epoch not rewound: %d", ad.epoch)
	}
	for i, v := range ad.mark {
		if v != 0 {
			t.Errorf("mark[%d] = %d after rewind, want 0", i, v)
		}
	}
}

// TestValidateChecksReach covers the satellite invariant: a cached
// reachability slice must have one non-nil map per node.
func TestValidateChecksReach(t *testing.T) {
	insts := testgen.Block(11, 20)
	d := buildOn(t, TableBackward{PreventTransitive: true}, insts)
	if d.Reach == nil {
		t.Fatal("bitmap builder did not cache Reach")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("valid DAG rejected: %v", err)
	}

	// Truncated cache.
	saved := d.Reach
	d.Reach = saved[:len(saved)-1]
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted truncated Reach")
	}

	// Nil entry.
	d.Reach = append([]*bitset.Set(nil), saved...)
	d.Reach[3] = nil
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted nil Reach entry")
	}

	// Missing self bit.
	d.Reach = append([]*bitset.Set(nil), saved...)
	d.Reach[3] = bitset.New(len(saved))
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted Reach map without self bit")
	}

	// On-demand Reachability also satisfies the invariant.
	d.Reach = nil
	d.Reachability()
	if err := d.Validate(); err != nil {
		t.Errorf("on-demand Reach rejected: %v", err)
	}
}
