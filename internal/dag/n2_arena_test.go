package dag

import (
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/testgen"
)

func n2TestBlock(seed int64, n int) *block.Block {
	b := &block.Block{Name: "n2", Insts: testgen.Block(seed, n)}
	for i := range b.Insts {
		b.Insts[i].Index = i
	}
	return b
}

// arcSet flattens a DAG's arcs into a canonical map for set comparison
// (insertion order differs between builders; the set must not).
func arcSet(d *DAG) map[[2]int32]Arc {
	set := make(map[[2]int32]Arc, d.NumArcs)
	for i := range d.Nodes {
		for _, arc := range d.Nodes[i].Succs {
			set[[2]int32{arc.From, arc.To}] = arc
		}
	}
	return set
}

// TestN2BuildIntoMatchesBuild requires the reuse path to reproduce the
// plain Build path arc for arc, across blocks of uneven sizes streamed
// through one arena (exercising shrink/regrow of the flat ref arena).
func TestN2BuildIntoMatchesBuild(t *testing.T) {
	m := machine.Pipe1()
	rt := resource.NewTable(resource.MemExprModel)
	var ar BuildArena
	for i, n := range []int{40, 3, 0, 1, 97, 12, 64, 7} {
		b := n2TestBlock(int64(100+i), n)
		rt.PrepareBlock(b.Insts)
		want := N2Forward{}.Build(b, m, rt)
		rt.PrepareBlock(b.Insts)
		got := N2Forward{}.BuildInto(&ar, b, m, rt)
		if err := got.Validate(); err != nil {
			t.Fatalf("n=%d: invalid DAG: %v", n, err)
		}
		if got.NumArcs != want.NumArcs {
			t.Fatalf("n=%d: %d arcs, want %d", n, got.NumArcs, want.NumArcs)
		}
		ws, gs := arcSet(want), arcSet(got)
		for k, arc := range ws {
			if gs[k] != arc {
				t.Fatalf("n=%d: arc %v = %+v, want %+v", n, k, gs[k], arc)
			}
		}
	}
}

// TestN2BuildCleanInto checks the exactness guard both ways: the clean
// verdict must agree with TransitiveArcs() == 0 computed on the plain
// n² DAG, and on every clean block the n² arc set must equal the
// backward table builder's — the property the engine's adaptive
// dispatch relies on for byte-identical schedules.
func TestN2BuildCleanInto(t *testing.T) {
	m := machine.Pipe1()
	rt := resource.NewTable(resource.MemExprModel)
	var ar, art BuildArena
	cleanSeen, dirtySeen := 0, 0
	for seed := int64(0); seed < 60; seed++ {
		for _, n := range []int{2, 3, 5, 8, 13, 21, 34, 55} {
			b := n2TestBlock(seed, n)
			rt.PrepareBlock(b.Insts)
			plain := N2Forward{}.Build(b, m, rt)
			wantClean := plain.TransitiveArcs() == 0
			rt.PrepareBlock(b.Insts)
			d, clean := N2Forward{}.BuildCleanInto(&ar, b, m, rt)
			if clean != wantClean {
				t.Fatalf("seed=%d n=%d: clean=%v, TransitiveArcs=%d",
					seed, n, clean, plain.TransitiveArcs())
			}
			if !clean {
				dirtySeen++
				if d != nil {
					t.Fatalf("seed=%d n=%d: dirty build returned a DAG", seed, n)
				}
				continue
			}
			cleanSeen++
			tb := TableBackward{}.BuildInto(&art, b, m, rt)
			ws, gs := arcSet(tb), arcSet(d)
			if len(ws) != len(gs) {
				t.Fatalf("seed=%d n=%d: clean n² has %d arcs, tableb %d", seed, n, len(gs), len(ws))
			}
			for k, arc := range ws {
				g, ok := gs[k]
				if !ok || g.Delay != arc.Delay {
					t.Fatalf("seed=%d n=%d: arc %v = %+v, tableb %+v", seed, n, k, g, arc)
				}
			}
		}
	}
	if cleanSeen == 0 || dirtySeen == 0 {
		t.Fatalf("degenerate coverage: %d clean, %d dirty", cleanSeen, dirtySeen)
	}
}

// TestN2BuildCleanIntoMaskCap rejects blocks beyond the single-word
// ancestor-mask capacity.
func TestN2BuildCleanIntoMaskCap(t *testing.T) {
	m := machine.Pipe1()
	rt := resource.NewTable(resource.MemExprModel)
	var ar BuildArena
	b := n2TestBlock(1, N2MaskCap+1)
	rt.PrepareBlock(b.Insts)
	if d, clean := (N2Forward{}).BuildCleanInto(&ar, b, m, rt); clean || d != nil {
		t.Fatalf("block of %d insts accepted (clean=%v)", N2MaskCap+1, clean)
	}
}

// TestN2BuildIntoSteadyStateZeroAlloc is the satellite zero-alloc
// property at the dag layer: once the arena has warmed up, rebuilding
// n² DAGs (clean-tracking or not) allocates nothing.
func TestN2BuildIntoSteadyStateZeroAlloc(t *testing.T) {
	m := machine.Pipe1()
	rt := resource.NewTable(resource.MemExprModel)
	var ar BuildArena
	b := n2TestBlock(7, 60)
	rt.PrepareBlock(b.Insts)
	N2Forward{}.BuildInto(&ar, b, m, rt)
	allocs := testing.AllocsPerRun(50, func() {
		rt.PrepareBlock(b.Insts)
		if d := (N2Forward{}).BuildInto(&ar, b, m, rt); d.NumArcs == 0 {
			t.Fatal("no arcs built")
		}
		rt.PrepareBlock(b.Insts)
		N2Forward{}.BuildCleanInto(&ar, b, m, rt)
	})
	if allocs != 0 {
		t.Errorf("steady-state n² BuildInto allocates %.1f/op", allocs)
	}
}

// BenchmarkN2BuildInto times the n² reuse path on the tiny blocks the
// adaptive dispatch routes to it, against the backward table builder
// on the same stream. Both are 0 allocs/op in steady state.
func BenchmarkN2BuildInto(b *testing.B) {
	m := machine.Pipe1()
	for _, n := range []int{4, 8, 16, 64} {
		blk := n2TestBlock(int64(n), n)
		b.Run(benchSize(n)+"/n2", func(b *testing.B) {
			rt := resource.NewTable(resource.MemExprModel)
			var ar BuildArena
			rt.PrepareBlock(blk.Insts)
			N2Forward{}.BuildInto(&ar, blk, m, rt)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt.PrepareBlock(blk.Insts)
				N2Forward{}.BuildInto(&ar, blk, m, rt)
			}
		})
		b.Run(benchSize(n)+"/tableb", func(b *testing.B) {
			rt := resource.NewTable(resource.MemExprModel)
			var ar BuildArena
			rt.PrepareBlock(blk.Insts)
			TableBackward{}.BuildInto(&ar, blk, m, rt)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt.PrepareBlock(blk.Insts)
				TableBackward{}.BuildInto(&ar, blk, m, rt)
			}
		})
	}
}

func benchSize(n int) string {
	return "n" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}
