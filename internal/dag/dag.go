// Package dag implements the data-dependence DAG of basic-block
// instruction scheduling and the construction algorithms compared in
// Smotherman et al. (MICRO-24, 1991):
//
//   - N2Forward — the O(n²) "compare-against-all" forward pass
//     (Warren-like); it produces many transitive arcs;
//   - Landskov — the n² forward variant that examines leaves first and
//     prunes ancestors, preventing all transitive arcs;
//   - TableForward — forward-pass table building (Krishnamurthy-like):
//     a last-definition entry and a current-use list per resource;
//   - TableBackward — backward-pass table building (Hunnicutt);
//   - TableBackwardBitmap — backward table building with reachability
//     bit maps that refuse transitive arcs at insertion.
//
// Nodes are instructions; arcs are typed (RAW/WAR/WAW) and weighted by
// the machine model's dependence delays. All builders emit arcs from
// earlier to later instructions, so ascending instruction index is a
// topological order — the property Section 4 of the paper exploits to
// replace level-list heuristic passes with a reverse walk.
package dag

import (
	"fmt"

	"daginsched/internal/bitset"
	"daginsched/internal/block"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
)

// DepKind classifies a dependence arc.
type DepKind uint8

const (
	// RAW is a true (read-after-write) dependence.
	RAW DepKind = iota
	// WAR is an anti (write-after-read) dependence.
	WAR
	// WAW is an output (write-after-write) dependence.
	WAW
)

// String returns the dependence name.
func (k DepKind) String() string {
	switch k {
	case RAW:
		return "RAW"
	case WAR:
		return "WAR"
	case WAW:
		return "WAW"
	}
	return "DEP?"
}

// Arc is a dependence arc between two nodes of one block's DAG.
// From < To always holds: dependence arcs point forward in program order.
type Arc struct {
	From, To int32
	Kind     DepKind
	Delay    int32 // cycles the child must wait after the parent issues
}

// Node is one instruction in the DAG.
type Node struct {
	Inst *isa.Inst
	// Succs are the arcs to this node's children, in insertion order.
	Succs []Arc
	// Preds are the arcs from this node's parents, in insertion order.
	Preds []Arc
	// UseBM and DefBM are the instruction's use/definition resource bit
	// maps — the paper's "variable-length bit map ... to represent
	// resource use and definition". They are sized to the resource table
	// at the moment the node is processed, which is what makes the
	// construction pass's cost sensitive to when memory expressions are
	// first encountered (the Section 6 fpppp forward/backward anomaly).
	UseBM, DefBM *bitset.Set
}

// NumChildren is the paper's #children heuristic: outgoing arc count.
// It is inflated by transitive arcs under the n² builder, exactly as
// Table 1 warns.
func (n *Node) NumChildren() int { return len(n.Succs) }

// NumParents is the paper's #parents heuristic: incoming arc count.
func (n *Node) NumParents() int { return len(n.Preds) }

// DAG is the dependence DAG (in general a forest) of one basic block.
//
// Immutability contract: once a Builder's Build (or BuildInto) returns,
// the DAG's structure — Nodes, arc lists, NumArcs — is immutable.
// Consumers (heuristic passes, schedulers, statistics) only read it,
// and Reachability caches its result on Reach under that assumption;
// nothing invalidates the cache because nothing may change the arcs.
// Code that wants a different DAG builds a new one (or recycles this
// one's storage through a BuildArena, which abandons the old view).
type DAG struct {
	Block   *block.Block
	Nodes   []Node
	NumArcs int
	// Builder names the construction algorithm that produced the DAG.
	Builder string
	// Reach holds per-node reachability maps (descendants, self
	// included) when the builder maintained them; nil otherwise. Use
	// Reachability() to compute them on demand.
	Reach []*bitset.Set

	// csr is the frozen flat-adjacency view; built by Freeze, dropped
	// (storage retained) by BuildArena.ResetFor. See csr.go.
	csr CSR
}

// Len returns the number of nodes.
func (d *DAG) Len() int { return len(d.Nodes) }

// Roots returns the indices of nodes with no parents, in program order.
// Together with the forest's other roots they form the initial
// candidate list of a forward scheduling pass.
func (d *DAG) Roots() []int32 {
	var out []int32
	for i := range d.Nodes {
		if len(d.Nodes[i].Preds) == 0 {
			out = append(out, int32(i))
		}
	}
	return out
}

// Leaves returns the indices of nodes with no children, in program order.
func (d *DAG) Leaves() []int32 {
	var out []int32
	for i := range d.Nodes {
		if len(d.Nodes[i].Succs) == 0 {
			out = append(out, int32(i))
		}
	}
	return out
}

// addArc inserts an arc from parent a to child b. Builders must not
// call it with a == b; callers dedupe via arcDeduper.
func (d *DAG) addArc(a, b int32, kind DepKind, delay int32) {
	arc := Arc{From: a, To: b, Kind: kind, Delay: delay}
	//sched:lint-ignore noalloc amortized: arena-recycled nodes retain their arc-list capacity across blocks
	d.Nodes[a].Succs = append(d.Nodes[a].Succs, arc)
	//sched:lint-ignore noalloc amortized: arena-recycled nodes retain their arc-list capacity across blocks
	d.Nodes[b].Preds = append(d.Nodes[b].Preds, arc)
	d.NumArcs++
}

// Reachability returns per-node descendant bit maps (self included),
// computing them with one reverse topological walk if the builder did
// not maintain them. This is the add_arc-maintained map the paper
// recommends for the #descendants heuristic ("the #descendants is then
// merely the population count on the reachability bit map ... minus
// one").
//
// The result is cached on Reach and never invalidated — safe because a
// built DAG is immutable (see the DAG contract above). Whenever Reach
// is present it must hold exactly one map per node; Validate checks
// that invariant.
func (d *DAG) Reachability() []*bitset.Set {
	if d.Reach != nil {
		return d.Reach
	}
	n := len(d.Nodes)
	reach := make([]*bitset.Set, n)
	for i := n - 1; i >= 0; i-- {
		r := bitset.New(n)
		r.Set(i)
		for _, arc := range d.Nodes[i].Succs {
			r.Or(reach[arc.To])
		}
		reach[i] = r
	}
	d.Reach = reach
	return reach
}

// HasPath reports whether descendant is reachable from ancestor.
func (d *DAG) HasPath(ancestor, descendant int32) bool {
	return d.Reachability()[ancestor].Test(int(descendant))
}

// TransitiveArcs counts arcs (a, b) for which another a→…→b path of at
// least two arcs exists. The n² builder produces "a huge number" of
// these (Section 2); the table builders omit most but deliberately
// retain delay-carrying ones (Figure 1).
func (d *DAG) TransitiveArcs() int {
	reach := d.Reachability()
	count := 0
	for i := range d.Nodes {
		for _, arc := range d.Nodes[i].Succs {
			for _, other := range d.Nodes[i].Succs {
				if other.To != arc.To && reach[other.To].Test(int(arc.To)) {
					count++
					break
				}
			}
		}
	}
	return count
}

// Validate checks structural invariants: arcs point forward in program
// order, no self-arcs, positive delays, Succs/Preds mirror each other,
// any cached reachability (Reach) covers every node, and any frozen
// CSR view agrees arc-for-arc with the mirror slices. It returns the
// first violation found.
func (d *DAG) Validate() error {
	if d.Reach != nil {
		if len(d.Reach) != len(d.Nodes) {
			return fmt.Errorf("cached Reach covers %d nodes, DAG has %d",
				len(d.Reach), len(d.Nodes))
		}
		for i, r := range d.Reach {
			if r == nil {
				return fmt.Errorf("cached Reach[%d] is nil", i)
			}
			if !r.Test(i) {
				return fmt.Errorf("cached Reach[%d] missing self bit", i)
			}
		}
	}
	var succTotal, predTotal int
	for i := range d.Nodes {
		for _, arc := range d.Nodes[i].Succs {
			if arc.From != int32(i) {
				return fmt.Errorf("node %d lists succ arc with From=%d", i, arc.From)
			}
			if arc.To <= arc.From {
				return fmt.Errorf("arc %d->%d not forward", arc.From, arc.To)
			}
			if int(arc.To) >= len(d.Nodes) {
				return fmt.Errorf("arc %d->%d out of range", arc.From, arc.To)
			}
			if arc.Delay < 1 {
				return fmt.Errorf("arc %d->%d has delay %d", arc.From, arc.To, arc.Delay)
			}
			found := false
			for _, back := range d.Nodes[arc.To].Preds {
				if back == arc {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("arc %d->%d missing from child preds", arc.From, arc.To)
			}
		}
		succTotal += len(d.Nodes[i].Succs)
		predTotal += len(d.Nodes[i].Preds)
	}
	if succTotal != predTotal || succTotal != d.NumArcs {
		return fmt.Errorf("arc accounting: succ %d, pred %d, NumArcs %d",
			succTotal, predTotal, d.NumArcs)
	}
	if d.csr.frozen {
		if err := d.validateCSR(); err != nil {
			return err
		}
	}
	return nil
}

// validateCSR cross-checks the frozen CSR view against the Succs/Preds
// mirrors: offsets must be monotone and span the full arc arrays, the
// flat arc counts must equal NumArcs, and every node's span must match
// its mirror slice element-for-element (catching any divergence after
// ResetFor reuse of the CSR's recycled storage).
func (d *DAG) validateCSR() error {
	c := &d.csr
	n := len(d.Nodes)
	if len(c.succOff) != n+1 || len(c.predOff) != n+1 {
		return fmt.Errorf("csr: offset arrays cover %d/%d nodes, DAG has %d",
			len(c.succOff)-1, len(c.predOff)-1, n)
	}
	if c.succOff[0] != 0 || c.predOff[0] != 0 {
		return fmt.Errorf("csr: offsets start at %d/%d, want 0", c.succOff[0], c.predOff[0])
	}
	if len(c.succArcs) != d.NumArcs || len(c.predArcs) != d.NumArcs {
		return fmt.Errorf("csr: %d succ / %d pred arcs, NumArcs %d",
			len(c.succArcs), len(c.predArcs), d.NumArcs)
	}
	if int(c.succOff[n]) != d.NumArcs || int(c.predOff[n]) != d.NumArcs {
		return fmt.Errorf("csr: final offsets %d/%d, NumArcs %d",
			c.succOff[n], c.predOff[n], d.NumArcs)
	}
	for i := 0; i < n; i++ {
		if c.succOff[i] > c.succOff[i+1] || c.predOff[i] > c.predOff[i+1] {
			return fmt.Errorf("csr: offsets not monotone at node %d", i)
		}
		succs := c.succArcs[c.succOff[i]:c.succOff[i+1]]
		if len(succs) != len(d.Nodes[i].Succs) {
			return fmt.Errorf("csr: node %d has %d succs, mirror has %d",
				i, len(succs), len(d.Nodes[i].Succs))
		}
		for k, arc := range succs {
			if arc != d.Nodes[i].Succs[k] {
				return fmt.Errorf("csr: node %d succ %d diverges from mirror", i, k)
			}
		}
		preds := c.predArcs[c.predOff[i]:c.predOff[i+1]]
		if len(preds) != len(d.Nodes[i].Preds) {
			return fmt.Errorf("csr: node %d has %d preds, mirror has %d",
				i, len(preds), len(d.Nodes[i].Preds))
		}
		for k, arc := range preds {
			if arc != d.Nodes[i].Preds[k] {
				return fmt.Errorf("csr: node %d pred %d diverges from mirror", i, k)
			}
		}
	}
	if c.packed {
		if len(c.succPacked) != d.NumArcs || len(c.predPacked) != d.NumArcs {
			return fmt.Errorf("csr: %d packed succ / %d packed pred arcs, NumArcs %d",
				len(c.succPacked), len(c.predPacked), d.NumArcs)
		}
		for k, arc := range c.succArcs {
			p := c.succPacked[k]
			if p.Node() != arc.To || p.Kind() != arc.Kind || c.Delay(p) != arc.Delay {
				return fmt.Errorf("csr: packed succ record %d decodes to (%d,%v,%d), arc is (%d,%v,%d)",
					k, p.Node(), p.Kind(), c.Delay(p), arc.To, arc.Kind, arc.Delay)
			}
		}
		for k, arc := range c.predArcs {
			p := c.predPacked[k]
			if p.Node() != arc.From || p.Kind() != arc.Kind || c.Delay(p) != arc.Delay {
				return fmt.Errorf("csr: packed pred record %d decodes to (%d,%v,%d), arc is (%d,%v,%d)",
					k, p.Node(), p.Kind(), c.Delay(p), arc.From, arc.Kind, arc.Delay)
			}
		}
	}
	return nil
}

// Direction tells which way a builder walks the block.
type Direction uint8

const (
	// Forward walks first instruction to last.
	Forward Direction = iota
	// Backward walks last instruction to first.
	Backward
)

// String returns the paper's one-letter pass code ("f" or "b").
func (dir Direction) String() string {
	if dir == Backward {
		return "b"
	}
	return "f"
}

// BackwardObserver is notified as a backward-pass builder finalizes
// nodes. When node i is done every outgoing arc of i exists and all of
// i's children were finalized earlier, so backward static heuristics
// (max path/delay to a leaf, #descendants, …) can be computed inline —
// the fusion that lets the paper's third approach "eliminate child
// revisitation overhead" (Section 6).
type BackwardObserver interface {
	// Start announces the node count before any node is finalized.
	Start(d *DAG)
	// NodeDone is called for i = n-1 … 0 once node i's arcs are final.
	NodeDone(d *DAG, i int32)
}

// Builder constructs a DAG for one basic block.
type Builder interface {
	// Name identifies the algorithm ("n2f", "tablef", "tableb", …).
	Name() string
	// Direction is the construction pass direction.
	Direction() Direction
	// Build constructs the DAG. The resource table must already have
	// PrepareBlock(b.Insts) applied.
	Build(b *block.Block, m *machine.Model, rt *resource.Table) *DAG
}

// ref is one interned def or use.
type ref struct {
	id         resource.ID
	slot       uint8
	pairSecond bool
}

// instScratch holds the per-instruction extraction buffers shared by
// the builders.
type instScratch struct {
	uses, defs []isa.ResRef
	urefs      []ref
	drefs      []ref
}

// extract interns instruction in's resources and fills the node's
// use/def bit maps, sized to the table's current resource count. Nodes
// recycled through a BuildArena keep their bit-map storage: the sets
// are Reused in place instead of reallocated.
func (sc *instScratch) extract(in *isa.Inst, rt *resource.Table, node *Node) (uses, defs []ref) {
	sc.uses = in.AppendUses(sc.uses[:0])
	sc.defs = in.AppendDefs(sc.defs[:0])
	sc.urefs = sc.urefs[:0]
	sc.drefs = sc.drefs[:0]
	for _, u := range sc.uses {
		//sched:lint-ignore noalloc amortized: the ref scratch retains its capacity across blocks
		sc.urefs = append(sc.urefs, ref{id: rt.RefID(u), slot: u.Slot})
	}
	for _, dd := range sc.defs {
		//sched:lint-ignore noalloc amortized: the ref scratch retains its capacity across blocks
		sc.drefs = append(sc.drefs, ref{id: rt.RefID(dd), pairSecond: in.PairSecondDef(dd)})
	}
	n := rt.NumResources()
	if node.UseBM == nil {
		node.UseBM = bitset.New(n)
	} else {
		node.UseBM.Reuse(n)
	}
	if node.DefBM == nil {
		node.DefBM = bitset.New(n)
	} else {
		node.DefBM.Reuse(n)
	}
	for _, u := range sc.urefs {
		node.UseBM.Set(int(u.id))
	}
	for _, dd := range sc.drefs {
		node.DefBM.Set(int(dd.id))
	}
	return sc.urefs, sc.drefs
}

// arcDeduper merges multiple dependences between the same node pair
// into one arc carrying the maximum delay (ties keep the earlier-found,
// stronger kind: builders always discover RAW before WAR/WAW for a
// pair). It relies on the builders' property that all arcs touching the
// in-flight node are proposed while that node is current.
type arcDeduper struct {
	mark  []int32 // epoch-stamped: mark[peer] == epoch when present
	pos   []int32 // index into pending
	epoch int32
	pend  []Arc
}

func newArcDeduper(n int) *arcDeduper {
	return &arcDeduper{mark: make([]int32, n), pos: make([]int32, n)}
}

// reset readies the deduper for a block of n instructions, recycling
// its arrays. The epoch counter keeps running across blocks — stale
// marks hold strictly older epochs and never match — but is rewound
// (with a full clear) long before it could wrap int32.
func (ad *arcDeduper) reset(n int) {
	if cap(ad.mark) < n {
		ad.mark = make([]int32, n)
		ad.pos = make([]int32, n)
		ad.epoch = 0
		return
	}
	ad.mark = ad.mark[:n]
	ad.pos = ad.pos[:n]
	if ad.epoch > 1<<30 {
		for i := range ad.mark {
			ad.mark[i] = 0
		}
		ad.epoch = 0
	}
}

// begin starts collecting arcs for a new in-flight node.
func (ad *arcDeduper) begin() {
	ad.epoch++
	ad.pend = ad.pend[:0]
}

// propose records a prospective arc a→b; peer is the node that is not
// the in-flight one. Duplicate (a,b) proposals keep the maximum delay.
func (ad *arcDeduper) propose(peer, a, b int32, kind DepKind, delay int32) {
	if a == b {
		return
	}
	if ad.mark[peer] == ad.epoch {
		p := &ad.pend[ad.pos[peer]]
		if delay > p.Delay {
			p.Delay = delay
			p.Kind = kind
		}
		return
	}
	ad.mark[peer] = ad.epoch
	ad.pos[peer] = int32(len(ad.pend))
	ad.pend = append(ad.pend, Arc{From: a, To: b, Kind: kind, Delay: delay})
}

// flush commits the collected arcs to the DAG in proposal order.
func (ad *arcDeduper) flush(d *DAG) {
	for _, a := range ad.pend {
		d.addArc(a.From, a.To, a.Kind, a.Delay)
	}
}

// newDAG allocates the node array for a block.
func newDAG(b *block.Block, builder string) *DAG {
	d := &DAG{Block: b, Builder: builder, Nodes: make([]Node, len(b.Insts))}
	for i := range b.Insts {
		d.Nodes[i].Inst = &b.Insts[i]
	}
	return d
}
