package dag

import (
	"daginsched/internal/bitset"
	"daginsched/internal/block"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
)

// n2Compare computes the strongest dependence from node j to node i
// (j earlier), returning the maximum delay over every conflicting
// resource pair and the kind that produced it. found is false when the
// instructions are independent.
func n2Compare(d *DAG, m *machine.Model, j, i int32,
	jUses, jDefs, iUses, iDefs []ref) (kind DepKind, delay int32, found bool) {
	nj, ni := &d.Nodes[j], &d.Nodes[i]
	consider := func(k DepKind, dl int) {
		if !found || int32(dl) > delay {
			kind, delay = k, int32(dl)
		}
		found = true
	}
	// RAW: j defines a resource i uses.
	if nj.DefBM.Intersects(ni.UseBM) {
		for _, def := range jDefs {
			if !ni.UseBM.Test(int(def.id)) {
				continue
			}
			for _, use := range iUses {
				if use.id == def.id {
					consider(RAW, m.RAWDelay(nj.Inst, def.pairSecond, ni.Inst, use.slot))
				}
			}
		}
	}
	// WAR: j uses a resource i defines.
	if nj.UseBM.Intersects(ni.DefBM) {
		consider(WAR, m.WARDelayFor(nj.Inst, ni.Inst))
	}
	// WAW: j and i define the same resource.
	if nj.DefBM.Intersects(ni.DefBM) {
		consider(WAW, m.WAWDelay(nj.Inst, ni.Inst))
	}
	return kind, delay, found
}

// N2Forward is the compare-against-all forward construction algorithm
// (Warren-like): each new instruction is compared against every
// previous instruction, an O(n²) pass that "has a huge number of
// transitive arcs" (Section 2). Use block.SplitWindow to keep it
// practical on large blocks (Section 6 recommends a window of no more
// than 300–400 instructions).
type N2Forward struct{}

// Name implements Builder.
func (N2Forward) Name() string { return "n2f" }

// Direction implements Builder.
func (N2Forward) Direction() Direction { return Forward }

// Build implements Builder.
func (N2Forward) Build(b *block.Block, m *machine.Model, rt *resource.Table) *DAG {
	d := newDAG(b, "n2f")
	var sc instScratch
	uses := make([][]ref, len(b.Insts))
	defs := make([][]ref, len(b.Insts))
	for i := range d.Nodes {
		u, df := sc.extract(d.Nodes[i].Inst, rt, &d.Nodes[i])
		uses[i] = append([]ref(nil), u...)
		defs[i] = append([]ref(nil), df...)
		for j := int32(0); j < int32(i); j++ {
			kind, delay, found := n2Compare(d, m, j, int32(i),
				uses[j], defs[j], uses[i], defs[i])
			if found {
				d.addArc(j, int32(i), kind, delay)
			}
		}
	}
	return d
}

// N2Backward is the compare-against-all algorithm run as a backward
// pass, the construction Table 2 attributes to Gibbons & Muchnick (who
// "used backward-pass DAG construction to handle condition code
// dependencies in a special way"). Each instruction, taken last to
// first, is compared against every later instruction; the arc set is
// identical to N2Forward's.
type N2Backward struct{}

// Name implements Builder.
func (N2Backward) Name() string { return "n2b" }

// Direction implements Builder.
func (N2Backward) Direction() Direction { return Backward }

// Build implements Builder.
func (N2Backward) Build(b *block.Block, m *machine.Model, rt *resource.Table) *DAG {
	d := newDAG(b, "n2b")
	n := int32(len(b.Insts))
	var sc instScratch
	uses := make([][]ref, n)
	defs := make([][]ref, n)
	for i := n - 1; i >= 0; i-- {
		u, df := sc.extract(d.Nodes[i].Inst, rt, &d.Nodes[i])
		uses[i] = append([]ref(nil), u...)
		defs[i] = append([]ref(nil), df...)
	}
	// Arc discovery still runs pairwise; the backward pass changes the
	// order resources are interned (and therefore the bit-map growth
	// profile), not the resulting arc set.
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			kind, delay, found := n2Compare(d, m, i, j, uses[i], defs[i], uses[j], defs[j])
			if found {
				d.addArc(i, j, kind, delay)
			}
		}
	}
	return d
}

// Landskov is the transitive-arc-avoidance modification of the n²
// forward algorithm (Landskov et al. 1980): for each new instruction it
// "examines leaves first and prunes away any ancestors whenever a
// dependency is observed", so no transitive arc is ever inserted.
// Section 2 and conclusion 3 of the paper recommend *against* this
// approach: the pruned arcs can carry timing information that the
// remaining WAR-then-RAW paths understate (Figure 1).
type Landskov struct{}

// Name implements Builder.
func (Landskov) Name() string { return "landskov" }

// Direction implements Builder.
func (Landskov) Direction() Direction { return Forward }

// Build implements Builder.
func (Landskov) Build(b *block.Block, m *machine.Model, rt *resource.Table) *DAG {
	d := newDAG(b, "landskov")
	var sc instScratch
	uses := make([][]ref, len(b.Insts))
	defs := make([][]ref, len(b.Insts))
	pruned := bitset.New(len(b.Insts))
	for i := range d.Nodes {
		u, df := sc.extract(d.Nodes[i].Inst, rt, &d.Nodes[i])
		uses[i] = append([]ref(nil), u...)
		defs[i] = append([]ref(nil), df...)
		pruned.Reset()
		// Scan from most recent to earliest: the most recent conflicting
		// instructions are the "leaves" of the partial DAG relative to
		// node i. Once j is connected, every ancestor of j is pruned —
		// any dependence on them is transitively covered.
		for j := int32(i) - 1; j >= 0; j-- {
			if pruned.Test(int(j)) {
				continue
			}
			kind, delay, found := n2Compare(d, m, j, int32(i),
				uses[j], defs[j], uses[i], defs[i])
			if !found {
				continue
			}
			d.addArc(j, int32(i), kind, delay)
			markAncestors(d, j, pruned)
		}
	}
	return d
}

// markAncestors sets the bits of every ancestor of node j (and j
// itself) in the scratch set.
func markAncestors(d *DAG, j int32, pruned *bitset.Set) {
	if pruned.Test(int(j)) {
		return
	}
	pruned.Set(int(j))
	for _, arc := range d.Nodes[j].Preds {
		markAncestors(d, arc.From, pruned)
	}
}
