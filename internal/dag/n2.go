package dag

import (
	"daginsched/internal/bitset"
	"daginsched/internal/block"
	"daginsched/internal/buf"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
)

// n2Compare computes the strongest dependence from node j to node i
// (j earlier), returning the maximum delay over every conflicting
// resource pair and the kind that produced it. found is false when the
// instructions are independent.
func n2Compare(d *DAG, m *machine.Model, j, i int32,
	jUses, jDefs, iUses, iDefs []ref) (kind DepKind, delay int32, found bool) {
	nj, ni := &d.Nodes[j], &d.Nodes[i]
	consider := func(k DepKind, dl int) {
		if !found || int32(dl) > delay {
			kind, delay = k, int32(dl)
		}
		found = true
	}
	// RAW: j defines a resource i uses.
	if nj.DefBM.Intersects(ni.UseBM) {
		for _, def := range jDefs {
			if !ni.UseBM.Test(int(def.id)) {
				continue
			}
			for _, use := range iUses {
				if use.id == def.id {
					consider(RAW, m.RAWDelay(nj.Inst, def.pairSecond, ni.Inst, use.slot))
				}
			}
		}
	}
	// WAR: j uses a resource i defines.
	if nj.UseBM.Intersects(ni.DefBM) {
		consider(WAR, m.WARDelayFor(nj.Inst, ni.Inst))
	}
	// WAW: j and i define the same resource.
	if nj.DefBM.Intersects(ni.DefBM) {
		consider(WAW, m.WAWDelay(nj.Inst, ni.Inst))
	}
	return kind, delay, found
}

// N2Forward is the compare-against-all forward construction algorithm
// (Warren-like): each new instruction is compared against every
// previous instruction, an O(n²) pass that "has a huge number of
// transitive arcs" (Section 2). Use block.SplitWindow to keep it
// practical on large blocks (Section 6 recommends a window of no more
// than 300–400 instructions).
type N2Forward struct{}

// Name implements Builder.
func (N2Forward) Name() string { return "n2f" }

// Direction implements Builder.
func (N2Forward) Direction() Direction { return Forward }

// Build implements Builder.
func (N2Forward) Build(b *block.Block, m *machine.Model, rt *resource.Table) *DAG {
	d := newDAG(b, "n2f")
	var sc instScratch
	uses := make([][]ref, len(b.Insts))
	defs := make([][]ref, len(b.Insts))
	for i := range d.Nodes {
		u, df := sc.extract(d.Nodes[i].Inst, rt, &d.Nodes[i])
		uses[i] = append([]ref(nil), u...)
		defs[i] = append([]ref(nil), df...)
		for j := int32(0); j < int32(i); j++ {
			kind, delay, found := n2Compare(d, m, j, int32(i),
				uses[j], defs[j], uses[i], defs[i])
			if found {
				d.addArc(j, int32(i), kind, delay)
			}
		}
	}
	return d
}

// BuildInto implements ReuseBuilder: identical construction to Build,
// but the per-node interned refs live in one flat arena segment and
// every other piece of storage — nodes, arc lists, bit maps — is
// recycled, so the n² forward builder is a first-class zero-alloc peer
// of the table builders. The engine's adaptive dispatch uses it for
// tiny blocks, where the paper's Tables 4–5 show compare-against-all
// has the lowest constant factors (no per-resource table to reset).
// The returned DAG is arena-owned.
//
//sched:noalloc
func (t N2Forward) BuildInto(ar *BuildArena, b *block.Block, m *machine.Model, rt *resource.Table) *DAG {
	d, _ := n2ForwardInto(ar, b, m, rt, false)
	return d
}

// N2MaskCap is the largest block BuildCleanInto can track: its
// per-node ancestor sets are single machine words, which keeps the
// transitive-arc detection one OR and one AND per arc.
const N2MaskCap = 64

// BuildCleanInto is BuildInto with exactness tracking: it reports
// whether the constructed DAG is free of transitive arcs. When clean
// is true the n² arc set *is* the transitive reduction of the block's
// dependence relation, and therefore identical — same pairs, same
// deduped delays — to the arc set either table builder produces (a
// table builder only ever omits an arc that some retained path
// covers, and an uncoverable arc is by definition non-transitive).
// That equality is what lets the engine's adaptive dispatch substitute
// the n² builder for table building on tiny blocks while guaranteeing
// byte-identical schedules.
//
// Construction aborts as soon as a transitive arc is discovered
// (returning a nil DAG and clean=false; the arena stays reusable), and
// blocks larger than N2MaskCap are rejected outright — callers fall
// back to table building either way.
//
//sched:noalloc
func (t N2Forward) BuildCleanInto(ar *BuildArena, b *block.Block, m *machine.Model, rt *resource.Table) (*DAG, bool) {
	if len(b.Insts) > N2MaskCap {
		return nil, false
	}
	return n2ForwardInto(ar, b, m, rt, true)
}

// n2ForwardInto is the shared reuse-path core of BuildInto and
// BuildCleanInto. With track set, anc[i] accumulates the strict-
// ancestor mask of node i; an arc j→i is transitive exactly when j is
// an ancestor of another parent of i, i.e. when the parent mask and
// the union of the parents' ancestor masks intersect.
//
//sched:noalloc
func n2ForwardInto(ar *BuildArena, b *block.Block, m *machine.Model, rt *resource.Table, track bool) (*DAG, bool) {
	d := ar.ResetFor(b, "n2f")
	sc := &ar.sc
	n2 := &ar.n2
	n := len(b.Insts)
	n2.off = buf.Int32(n2.off, 2*n+1)
	n2.refs = n2.refs[:0]
	if track {
		n2.anc = buf.Uint64(n2.anc, n)
	}
	for i := 0; i < n; i++ {
		node := &d.Nodes[i]
		u, df := sc.extract(node.Inst, rt, node)
		// Copy the extraction scratch (overwritten next node) into the
		// flat ref arena: node i's uses at off[2i], defs at off[2i+1].
		//sched:lint-ignore noalloc amortized: the flat ref arena retains its capacity across blocks
		n2.refs = append(n2.refs, u...)
		n2.off[2*i+1] = int32(len(n2.refs))
		//sched:lint-ignore noalloc amortized: the flat ref arena retains its capacity across blocks
		n2.refs = append(n2.refs, df...)
		n2.off[2*i+2] = int32(len(n2.refs))
		iUses := n2.refs[n2.off[2*i]:n2.off[2*i+1]]
		iDefs := n2.refs[n2.off[2*i+1]:n2.off[2*i+2]]
		var parents, covered uint64
		for j := 0; j < i; j++ {
			jUses := n2.refs[n2.off[2*j]:n2.off[2*j+1]]
			jDefs := n2.refs[n2.off[2*j+1]:n2.off[2*j+2]]
			kind, delay, found := n2Compare(d, m, int32(j), int32(i), jUses, jDefs, iUses, iDefs)
			if !found {
				continue
			}
			d.addArc(int32(j), int32(i), kind, delay)
			if track {
				parents |= 1 << uint(j)
				covered |= n2.anc[j]
			}
		}
		if track {
			if parents&covered != 0 {
				// Some parent j of i is a strict ancestor of another
				// parent: the arc j→i is transitive. Abort — the caller
				// rebuilds with a table builder.
				return nil, false
			}
			n2.anc[i] = parents | covered
		}
	}
	return d, true
}

// N2Backward is the compare-against-all algorithm run as a backward
// pass, the construction Table 2 attributes to Gibbons & Muchnick (who
// "used backward-pass DAG construction to handle condition code
// dependencies in a special way"). Each instruction, taken last to
// first, is compared against every later instruction; the arc set is
// identical to N2Forward's.
type N2Backward struct{}

// Name implements Builder.
func (N2Backward) Name() string { return "n2b" }

// Direction implements Builder.
func (N2Backward) Direction() Direction { return Backward }

// Build implements Builder.
func (N2Backward) Build(b *block.Block, m *machine.Model, rt *resource.Table) *DAG {
	d := newDAG(b, "n2b")
	n := int32(len(b.Insts))
	var sc instScratch
	uses := make([][]ref, n)
	defs := make([][]ref, n)
	for i := n - 1; i >= 0; i-- {
		u, df := sc.extract(d.Nodes[i].Inst, rt, &d.Nodes[i])
		uses[i] = append([]ref(nil), u...)
		defs[i] = append([]ref(nil), df...)
	}
	// Arc discovery still runs pairwise; the backward pass changes the
	// order resources are interned (and therefore the bit-map growth
	// profile), not the resulting arc set.
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			kind, delay, found := n2Compare(d, m, i, j, uses[i], defs[i], uses[j], defs[j])
			if found {
				d.addArc(i, j, kind, delay)
			}
		}
	}
	return d
}

// Landskov is the transitive-arc-avoidance modification of the n²
// forward algorithm (Landskov et al. 1980): for each new instruction it
// "examines leaves first and prunes away any ancestors whenever a
// dependency is observed", so no transitive arc is ever inserted.
// Section 2 and conclusion 3 of the paper recommend *against* this
// approach: the pruned arcs can carry timing information that the
// remaining WAR-then-RAW paths understate (Figure 1).
type Landskov struct{}

// Name implements Builder.
func (Landskov) Name() string { return "landskov" }

// Direction implements Builder.
func (Landskov) Direction() Direction { return Forward }

// Build implements Builder.
func (Landskov) Build(b *block.Block, m *machine.Model, rt *resource.Table) *DAG {
	d := newDAG(b, "landskov")
	var sc instScratch
	uses := make([][]ref, len(b.Insts))
	defs := make([][]ref, len(b.Insts))
	pruned := bitset.New(len(b.Insts))
	for i := range d.Nodes {
		u, df := sc.extract(d.Nodes[i].Inst, rt, &d.Nodes[i])
		uses[i] = append([]ref(nil), u...)
		defs[i] = append([]ref(nil), df...)
		pruned.Reset()
		// Scan from most recent to earliest: the most recent conflicting
		// instructions are the "leaves" of the partial DAG relative to
		// node i. Once j is connected, every ancestor of j is pruned —
		// any dependence on them is transitively covered.
		for j := int32(i) - 1; j >= 0; j-- {
			if pruned.Test(int(j)) {
				continue
			}
			kind, delay, found := n2Compare(d, m, j, int32(i),
				uses[j], defs[j], uses[i], defs[i])
			if !found {
				continue
			}
			d.addArc(j, int32(i), kind, delay)
			markAncestors(d, j, pruned)
		}
	}
	return d
}

// markAncestors sets the bits of every ancestor of node j (and j
// itself) in the scratch set.
func markAncestors(d *DAG, j int32, pruned *bitset.Set) {
	if pruned.Test(int(j)) {
		return
	}
	pruned.Set(int(j))
	for _, arc := range d.Nodes[j].Preds {
		markAncestors(d, arc.From, pruned)
	}
}
