package dag

// Packed CSR arc records. The frozen CSR's two flat arc arrays are the
// hottest memory in the repo — the scheduler's place() successor walk
// and the fused reverse heuristic sweep stream them once per block —
// and a dag.Arc is 16 bytes (From, To, Delay int32 plus a padded
// DepKind). Inside a CSR span one of the endpoints is implicit: the
// successor array is grouped by From and the predecessor array by To,
// so each record only needs the *other* endpoint. Packing that
// endpoint, the delay and the kind into a single uint64 halves the
// bytes the hot loops pull through the cache hierarchy.
//
// Record layout (low bit first):
//
//	bits  0..20  peer node index (To in the succ array, From in pred)
//	bits 21..36  arc delay, or the spill-table index when bit 39 is set
//	bits 37..38  DepKind (RAW/WAR/WAW)
//	bit  39      spill flag: delay did not fit 16 bits, read the table
//	bits 40..63  zero
//
// Delays on real machine models are single-digit cycles, so the spill
// table is almost always empty; it exists so the packed view never has
// to lie about a pathological arc. Packing is skipped entirely — the
// accessors report it absent and consumers fall back to the 16-byte
// records — when the block has more than PackedMaxNodes instructions
// or more oversize delays than the 16-bit spill index can address.
type PackedArc uint64

const (
	packedNodeBits  = 21
	packedDelayBits = 16
	packedKindShift = packedNodeBits + packedDelayBits // 37
	packedSpillBit  = PackedArc(1) << 39

	packedNodeMask  = 1<<packedNodeBits - 1
	packedDelayMask = 1<<packedDelayBits - 1

	// PackedMaxNodes is the largest node count the packed record's peer
	// field can address; bigger blocks keep the 16-byte arc layout.
	PackedMaxNodes = 1 << packedNodeBits

	// packedMaxSpills bounds the spill table: the delay field doubles as
	// the spill index, so it has the same width as a delay.
	packedMaxSpills = 1 << packedDelayBits
)

// packArc encodes one arc endpoint. spilled reports that the delay was
// routed to the side table (the caller must have appended it at index
// spillIdx).
//
//sched:noalloc
func packArc(peer int32, kind DepKind, delay int32, spillIdx int) (p PackedArc, spilled bool) {
	p = PackedArc(uint64(peer) | uint64(kind)<<packedKindShift)
	if uint32(delay) <= packedDelayMask {
		return p | PackedArc(uint64(delay)<<packedNodeBits), false
	}
	return p | packedSpillBit | PackedArc(uint64(spillIdx)<<packedNodeBits), true
}

// Node returns the record's explicit endpoint: the child (To) for a
// successor record, the parent (From) for a predecessor record.
//
//sched:noalloc
func (p PackedArc) Node() int32 { return int32(p & packedNodeMask) }

// Kind returns the dependence kind.
//
//sched:noalloc
func (p PackedArc) Kind() DepKind { return DepKind(p >> packedKindShift & 0b11) }

// HasPacked reports whether the frozen CSR carries the packed 8-byte
// arc arrays (it does unless the block exceeded the packed limits).
//
//sched:noalloc
func (c *CSR) HasPacked() bool { return c.packed }

// PackedSuccArcs returns the packed successor-arc array, grouped by
// From exactly like SuccArcs; index with SuccSpan. Empty when
// HasPacked is false.
//
//sched:noalloc
func (c *CSR) PackedSuccArcs() []PackedArc { return c.succPacked }

// PackedPredArcs returns the packed predecessor-arc array, grouped by
// To exactly like PredArcs. Empty when HasPacked is false.
//
//sched:noalloc
func (c *CSR) PackedPredArcs() []PackedArc { return c.predPacked }

// Delay decodes a packed record's arc delay, following the spill table
// on the (rare) oversize record.
//
//sched:noalloc
func (c *CSR) Delay(p PackedArc) int32 {
	v := int32(p >> packedNodeBits & packedDelayMask)
	if p&packedSpillBit == 0 {
		return v
	}
	return c.spill[v]
}

// growPacked returns an empty []PackedArc with capacity for at least n
// records, reusing s's backing array when possible.
func growPacked(s []PackedArc, n int) []PackedArc {
	if cap(s) < n {
		return make([]PackedArc, 0, n)
	}
	return s[:0]
}

// packFreeze fills the packed twins of the flat arc arrays. It runs at
// the end of freeze, so the 16-byte arrays are final; a block past the
// packed limits leaves the packed view absent rather than partial.
//
//sched:noalloc
func (c *CSR) packFreeze(n int) {
	c.packed = false
	c.succPacked = c.succPacked[:0]
	c.predPacked = c.predPacked[:0]
	c.spill = c.spill[:0]
	if n > PackedMaxNodes {
		return
	}
	m := len(c.succArcs)
	c.succPacked = growPacked(c.succPacked, m)
	c.predPacked = growPacked(c.predPacked, m)
	for _, arc := range c.succArcs {
		p, spilled := packArc(arc.To, arc.Kind, arc.Delay, len(c.spill))
		if spilled {
			if len(c.spill) == packedMaxSpills {
				return // spill index exhausted: keep the 16-byte layout
			}
			//sched:lint-ignore noalloc oversize-delay spills are a pathological fault path, never the steady state
			c.spill = append(c.spill, arc.Delay)
		}
		//sched:lint-ignore noalloc growPacked reserved capacity for all arcs above
		c.succPacked = append(c.succPacked, p)
	}
	for _, arc := range c.predArcs {
		p, spilled := packArc(arc.From, arc.Kind, arc.Delay, len(c.spill))
		if spilled {
			if len(c.spill) == packedMaxSpills {
				return
			}
			//sched:lint-ignore noalloc oversize-delay spills are a pathological fault path, never the steady state
			c.spill = append(c.spill, arc.Delay)
		}
		//sched:lint-ignore noalloc growPacked reserved capacity for all arcs above
		c.predPacked = append(c.predPacked, p)
	}
	c.packed = true
}
