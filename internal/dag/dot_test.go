package dag

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	d := buildOn(t, TableForward{}, figure1())
	var b strings.Builder
	if err := d.WriteDOT(&b, "fig1"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`digraph "fig1"`,
		`n0 [label="0: fdivs %f1, %f2, %f3"]`,
		`n0 -> n2 [label="RAW/20", style=dashed]`, // the transitive arc
		`n0 -> n1 [label="WAR/1"]`,
		`n1 -> n2 [label="RAW/4"]`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n--
	if w.n < 0 {
		return 0, errWrite
	}
	return len(p), nil
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "write failed" }

func TestWriteDOTPropagatesErrors(t *testing.T) {
	d := buildOn(t, TableForward{}, figure1())
	for n := 0; n < 6; n++ {
		if err := d.WriteDOT(&failWriter{n: n}, "x"); err == nil {
			t.Fatalf("error swallowed at write %d", n)
		}
	}
}
