package dag

import (
	"testing"

	"daginsched/internal/isa"
	"daginsched/internal/testgen"
)

func TestStatisticsChain(t *testing.T) {
	insts := []isa.Inst{
		isa.Load(isa.LD, isa.FP, -4, isa.O0),
		isa.RIR(isa.ADD, isa.O0, 1, isa.O1),
		isa.RIR(isa.ADD, isa.O1, 1, isa.O2),
	}
	s := buildOn(t, TableForward{}, insts).Statistics()
	if s.Nodes != 3 || s.Arcs != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Roots != 1 || s.Leaves != 1 {
		t.Fatalf("roots/leaves = %d/%d", s.Roots, s.Leaves)
	}
	if s.ChildrenMax != 1 || s.ParentsMax != 1 {
		t.Fatalf("fan = %+v", s)
	}
	if s.ByKind[RAW] != 2 || s.ByKind[WAR] != 0 || s.ByKind[WAW] != 0 {
		t.Fatalf("kinds = %v", s.ByKind)
	}
	if s.DelaySum != 3 || s.DelayAvg() != 1.5 { // load delay 2 + add delay 1
		t.Fatalf("delays: sum %d avg %v", s.DelaySum, s.DelayAvg())
	}
	if s.ChildrenAvg() != 2.0/3.0 {
		t.Fatalf("children avg %v", s.ChildrenAvg())
	}
}

func TestStatisticsMatchManualCount(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		d := buildOn(t, N2Forward{}, testgen.Block(seed, 25))
		s := d.Statistics()
		arcs, roots, leaves := 0, 0, 0
		for i := range d.Nodes {
			arcs += len(d.Nodes[i].Succs)
			if len(d.Nodes[i].Preds) == 0 {
				roots++
			}
			if len(d.Nodes[i].Succs) == 0 {
				leaves++
			}
		}
		if s.Arcs != arcs || s.Roots != roots || s.Leaves != leaves {
			t.Fatalf("seed %d: stats %+v vs manual %d/%d/%d", seed, s, arcs, roots, leaves)
		}
		if s.ByKind[RAW]+s.ByKind[WAR]+s.ByKind[WAW] != arcs {
			t.Fatalf("seed %d: kind sum mismatch", seed)
		}
	}
}

func TestStatisticsEmpty(t *testing.T) {
	s := buildOn(t, TableForward{}, nil).Statistics()
	if s.ChildrenAvg() != 0 || s.DelayAvg() != 0 {
		t.Fatal("empty averages should be zero")
	}
}
