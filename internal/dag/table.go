package dag

import (
	"daginsched/internal/bitset"
	"daginsched/internal/block"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
)

// use is one entry of a resource's current-use list.
type use struct {
	node int32
	slot uint8
}

// tableState is the per-resource record of the table-building methods:
// "a record of the last definition of a resource and the set of current
// uses" (Section 2). The arrays grow as memory expressions are interned
// mid-pass, mirroring the paper's variable-length resource bit map.
type tableState struct {
	lastDef    []int32 // node index + 1; 0 means empty
	defPairOdd []bool  // last definition was the odd half of a pair
	useList    [][]use
}

func (ts *tableState) grow(n int) {
	for len(ts.lastDef) < n {
		ts.lastDef = append(ts.lastDef, 0)
		ts.defPairOdd = append(ts.defPairOdd, false)
		ts.useList = append(ts.useList, nil)
	}
}

// reset empties the table for a new block while keeping every
// allocated array — including each resource's use-list capacity — so
// recycled state performs no steady-state allocations.
func (ts *tableState) reset() {
	for i := range ts.lastDef {
		ts.lastDef[i] = 0
		ts.defPairOdd[i] = false
		ts.useList[i] = ts.useList[i][:0]
	}
}

// TableForward is forward-pass table building (Krishnamurthy-like).
// Resource uses of the new node are processed before its definitions;
// a definition draws WAR arcs from the pending use list (clearing it)
// or, when no uses intervened, a WAW arc from the previous definition.
// Most transitive arcs are omitted "because they erase all but the most
// recent definition/uses", yet delay-carrying arcs like Figure 1's are
// retained.
type TableForward struct{}

// Name implements Builder.
func (TableForward) Name() string { return "tablef" }

// Direction implements Builder.
func (TableForward) Direction() Direction { return Forward }

// Build implements Builder.
func (t TableForward) Build(b *block.Block, m *machine.Model, rt *resource.Table) *DAG {
	return t.BuildInto(new(BuildArena), b, m, rt)
}

// BuildInto implements ReuseBuilder: identical construction, but every
// piece of storage — nodes, arc lists, bit maps, table state — is
// recycled from the arena. The returned DAG is arena-owned.
func (t TableForward) BuildInto(ar *BuildArena, b *block.Block, m *machine.Model, rt *resource.Table) *DAG {
	d := ar.ResetFor(b, t.Name())
	sc := &ar.sc
	ts := &ar.ts
	ts.reset()
	ts.grow(rt.NumResources())
	ad := &ar.ad
	ad.reset(len(b.Insts))
	for i := int32(0); i < int32(len(d.Nodes)); i++ {
		node := &d.Nodes[i]
		uses, defs := sc.extract(node.Inst, rt, node)
		ts.grow(rt.NumResources())
		ad.begin()
		// Process resources used.
		for _, u := range uses {
			if ld := ts.lastDef[u.id]; ld != 0 {
				parent := ld - 1
				delay := m.RAWDelay(d.Nodes[parent].Inst, ts.defPairOdd[u.id], node.Inst, u.slot)
				ad.propose(parent, parent, i, RAW, int32(delay))
			}
			ts.useList[u.id] = append(ts.useList[u.id], use{node: i, slot: u.slot})
		}
		// Process resources defined.
		for _, def := range defs {
			if ul := ts.useList[def.id]; len(ul) > 0 {
				for _, e := range ul {
					if e.node != i {
						delay := m.WARDelayFor(d.Nodes[e.node].Inst, node.Inst)
						ad.propose(e.node, e.node, i, WAR, int32(delay))
					}
				}
				ts.useList[def.id] = ul[:0]
			} else if ld := ts.lastDef[def.id]; ld != 0 && ld-1 != i {
				parent := ld - 1
				delay := m.WAWDelay(d.Nodes[parent].Inst, node.Inst)
				ad.propose(parent, parent, i, WAW, int32(delay))
			}
			ts.lastDef[def.id] = i + 1
			ts.defPairOdd[def.id] = def.pairSecond
		}
		ad.flush(d)
	}
	return d
}

// TableBackward is backward-pass table building (Hunnicutt's algorithm,
// quoted verbatim in Section 2 of the paper). Walking from the last
// instruction to the first, the per-resource record holds the *next*
// definition and the set of uses awaiting one. Definitions of the new
// node are processed before its uses.
//
// An optional BackwardObserver receives nodes as they are finalized;
// because every outgoing arc of node i exists when NodeDone(i) fires,
// backward static heuristics can be computed inline with construction —
// the paper's third approach, which "eliminates child revisitation
// overhead" (Section 6).
type TableBackward struct {
	// Observer, when non-nil, is notified as nodes finalize.
	Observer BackwardObserver
	// PreventTransitive enables the reachability-bit-map check of
	// Section 2 that refuses transitive arcs at insertion time. The
	// resulting maps are retained on DAG.Reach (they also serve the
	// #descendants heuristic for free).
	PreventTransitive bool
}

// Name implements Builder.
func (t TableBackward) Name() string {
	if t.PreventTransitive {
		return "tableb-bitmap"
	}
	return "tableb"
}

// Direction implements Builder.
func (TableBackward) Direction() Direction { return Backward }

// Build implements Builder.
func (t TableBackward) Build(b *block.Block, m *machine.Model, rt *resource.Table) *DAG {
	return t.BuildInto(new(BuildArena), b, m, rt)
}

// BuildInto implements ReuseBuilder: identical construction, but every
// piece of storage — nodes, arc lists, bit maps, table state,
// reachability maps — is recycled from the arena. The returned DAG is
// arena-owned.
func (t TableBackward) BuildInto(ar *BuildArena, b *block.Block, m *machine.Model, rt *resource.Table) *DAG {
	d := ar.ResetFor(b, t.Name())
	n := int32(len(d.Nodes))
	sc := &ar.sc
	ts := &ar.ts
	ts.reset()
	ts.grow(rt.NumResources())
	ad := &ar.ad
	ad.reset(len(b.Insts))
	var reach []*bitset.Set
	if t.PreventTransitive {
		reach = ar.reachSets(int(n))
	}
	if t.Observer != nil {
		t.Observer.Start(d)
	}
	for i := n - 1; i >= 0; i-- {
		node := &d.Nodes[i]
		uses, defs := sc.extract(node.Inst, rt, node)
		ts.grow(rt.NumResources())
		ad.begin()
		// Process resources defined: later uses of our value take RAW
		// arcs; with no intervening uses, the next definition takes WAW.
		for _, def := range defs {
			if ld := ts.lastDef[def.id]; ld != 0 && len(ts.useList[def.id]) == 0 && ld-1 != i {
				child := ld - 1
				delay := m.WAWDelay(node.Inst, d.Nodes[child].Inst)
				ad.propose(child, i, child, WAW, int32(delay))
			}
			for _, e := range ts.useList[def.id] {
				if e.node != i {
					delay := m.RAWDelay(node.Inst, def.pairSecond, d.Nodes[e.node].Inst, e.slot)
					ad.propose(e.node, i, e.node, RAW, int32(delay))
				}
			}
			ts.useList[def.id] = ts.useList[def.id][:0]
			ts.lastDef[def.id] = i + 1
		}
		// Process resources used: the next definition must wait (WAR).
		for _, u := range uses {
			if ld := ts.lastDef[u.id]; ld != 0 && ld-1 != i {
				child := ld - 1
				delay := m.WARDelayFor(node.Inst, d.Nodes[child].Inst)
				ad.propose(child, i, child, WAR, int32(delay))
			}
			ts.useList[u.id] = append(ts.useList[u.id], use{node: i, slot: u.slot})
		}
		if t.PreventTransitive {
			// The maps are carved from the arena's flat slab (node j's
			// map at word stride j of one contiguous array), so the OR
			// below is a word-parallel sweep over adjacent memory —
			// peer maps of nearby nodes share cache lines instead of
			// living in scattered heap allocations.
			r := reach[i] // slab-carved, empty, capacity n
			r.Set(int(i))
			// "if (bit to_b in bitmap_for_a is set) return;
			//  bitmap_for_a = bitmap_for_a OR bitmap_for_b; add_arc".
			// Arcs must be tried nearest child first: since every path
			// between two nodes runs through intermediate program
			// positions, merging the nearer child's map first guarantees
			// any transitively covered farther arc tests as reachable.
			sortArcsByTo(ad.pend)
			for _, a := range ad.pend {
				if r.Test(int(a.To)) {
					continue
				}
				r.Or(reach[a.To])
				d.addArc(a.From, a.To, a.Kind, a.Delay)
			}
		} else {
			ad.flush(d)
		}
		if t.Observer != nil {
			t.Observer.NodeDone(d, i)
		}
	}
	if t.PreventTransitive {
		d.Reach = reach
	}
	return d
}

// sortArcsByTo insertion-sorts a small pending-arc slice by target.
func sortArcsByTo(arcs []Arc) {
	for i := 1; i < len(arcs); i++ {
		for j := i; j > 0 && arcs[j].To < arcs[j-1].To; j-- {
			arcs[j], arcs[j-1] = arcs[j-1], arcs[j]
		}
	}
}

// Builders returns the construction algorithms compared in Section 6,
// in the paper's order: n² forward (Warren-like), table-building
// forward (Krishnamurthy-like), table-building backward.
func Builders() []Builder {
	return []Builder{N2Forward{}, TableForward{}, TableBackward{}}
}

// AllBuilders additionally includes the two transitive-arc-avoidance
// variants discussed in Section 2.
func AllBuilders() []Builder {
	return []Builder{
		N2Forward{}, N2Backward{}, TableForward{}, TableBackward{},
		Landskov{}, TableBackward{PreventTransitive: true},
	}
}

// ByName returns a builder by its Name, for CLI flags.
func ByName(name string) (Builder, bool) {
	for _, b := range AllBuilders() {
		if b.Name() == name {
			return b, true
		}
	}
	return nil, false
}
