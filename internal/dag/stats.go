package dag

// Stats are the per-DAG structural statistics of Tables 4 and 5.
type Stats struct {
	Nodes       int
	Arcs        int
	ChildrenMax int // most children on any node
	ParentsMax  int // most parents on any node
	Roots       int
	Leaves      int
	ByKind      [3]int // arc counts indexed by DepKind
	DelaySum    int64  // total arc delay (for average weights)
}

// Statistics computes structural statistics in one pass.
func (d *DAG) Statistics() Stats {
	s := Stats{Nodes: d.Len(), Arcs: d.NumArcs}
	for i := range d.Nodes {
		n := &d.Nodes[i]
		if c := len(n.Succs); c > s.ChildrenMax {
			s.ChildrenMax = c
		}
		if p := len(n.Preds); p > s.ParentsMax {
			s.ParentsMax = p
		}
		if len(n.Preds) == 0 {
			s.Roots++
		}
		if len(n.Succs) == 0 {
			s.Leaves++
		}
		for _, arc := range n.Succs {
			s.ByKind[arc.Kind]++
			s.DelaySum += int64(arc.Delay)
		}
	}
	return s
}

// ChildrenAvg returns arcs per node.
func (s Stats) ChildrenAvg() float64 {
	if s.Nodes == 0 {
		return 0
	}
	return float64(s.Arcs) / float64(s.Nodes)
}

// DelayAvg returns the mean arc delay.
func (s Stats) DelayAvg() float64 {
	if s.Arcs == 0 {
		return 0
	}
	return float64(s.DelaySum) / float64(s.Arcs)
}
