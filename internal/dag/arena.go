package dag

import (
	"daginsched/internal/bitset"
	"daginsched/internal/block"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
)

// BuildArena is the per-worker scratch store of the reuse-aware
// construction path. It owns one DAG shell whose node array, arc
// lists, per-node use/def bit maps, table-building state, arc-dedupe
// arrays and reachability maps are all recycled from block to block,
// so that a worker building DAGs for a stream of same-scale blocks
// performs no steady-state allocations (everything has grown to the
// stream's largest block after warm-up).
//
// The DAG returned by BuildInto (or ResetFor) is owned by the arena
// and remains valid only until the arena's next ResetFor/BuildInto
// call; callers that need the DAG to outlive the next block must use
// the plain Build path instead. A BuildArena is not safe for
// concurrent use — the batch engine gives each worker its own.
//
// The zero value is ready to use.
type BuildArena struct {
	d  DAG
	sc instScratch
	ts tableState
	ad arcDeduper

	// n2 is the scratch of the n² forward reuse path: one flat arena
	// holding every node's interned refs (the per-node use/def slices
	// the pairwise comparison loop replays), its 2n+1 offset array, and
	// the single-word ancestor masks of BuildCleanInto's transitive-arc
	// tracking.
	n2 n2Scratch

	// reach is the flat slab backing the per-node reachability maps
	// handed to DAGs built with TableBackward{PreventTransitive: true}.
	// All of a block's maps live in one contiguous word arena (node i's
	// map at stride i), so the builder's insertion-time word-parallel
	// OR loops stream through adjacent memory instead of chasing
	// per-set heap pointers. The arena is recycled across blocks.
	reach bitset.Slab
}

// ResetFor recycles the arena's DAG storage for block b: the node
// array is resized (retaining each node's arc-list and bit-map
// capacity), arc lists are emptied, and counters cleared. Builders
// call it at the top of BuildInto; it is exported so future builders
// outside this package can join the reuse protocol.
func (ar *BuildArena) ResetFor(b *block.Block, builder string) *DAG {
	d := &ar.d
	d.Block = b
	d.Builder = builder
	d.NumArcs = 0
	d.Reach = nil
	// Drop the previous block's frozen CSR view; its arrays are kept
	// and refilled by the next Freeze.
	d.csr.frozen = false
	n := len(b.Insts)
	if cap(d.Nodes) >= n {
		d.Nodes = d.Nodes[:n]
	} else {
		nodes := make([]Node, n)
		// Keep the recycled nodes' allocated Succs/Preds/bit-map
		// storage; only the tail is genuinely new.
		copy(nodes, d.Nodes[:cap(d.Nodes)])
		d.Nodes = nodes
	}
	for i := 0; i < n; i++ {
		nd := &d.Nodes[i]
		nd.Inst = &b.Insts[i]
		nd.Succs = nd.Succs[:0]
		nd.Preds = nd.Preds[:0]
		// UseBM/DefBM are recycled lazily by instScratch.extract.
	}
	return d
}

// reachSets returns n emptied reachability sets carved from the
// arena's flat slab: index i's set has bit capacity for n nodes and
// sits at word stride i of one contiguous array, which is what makes
// the builder's reachability ORs word-parallel over flat memory.
func (ar *BuildArena) reachSets(n int) []*bitset.Set {
	if n == 0 {
		return nil // match a cold build: no maps for an empty block
	}
	return ar.reach.Carve(n, n)
}

// n2Scratch is the BuildArena storage of the n² forward reuse path
// (see n2ForwardInto). refs holds every node's interned uses then defs
// back to back; off delimits the segments (node i's uses at
// [off[2i], off[2i+1]), defs at [off[2i+1], off[2i+2])); anc holds the
// strict-ancestor masks of BuildCleanInto's transitive-arc tracking.
type n2Scratch struct {
	refs []ref
	off  []int32
	anc  []uint64
}

// ReuseBuilder is implemented by construction algorithms that support
// the arena protocol: BuildInto behaves exactly like Build but draws
// every piece of storage from the arena. The two table-building
// algorithms implement it, and so does the n² forward builder — the
// engine's adaptive dispatch runs it on tiny blocks, where the paper
// shows compare-against-all has the lowest constant factors.
type ReuseBuilder interface {
	Builder
	// BuildInto constructs the DAG inside ar. The returned DAG is
	// owned by ar and is invalidated by ar's next BuildInto/ResetFor.
	BuildInto(ar *BuildArena, b *block.Block, m *machine.Model, rt *resource.Table) *DAG
}
