package dag

import (
	"fmt"
	"io"
)

// WriteDOT renders the DAG in Graphviz dot format: nodes labeled with
// their instruction text, arcs labeled kind/delay, transitive arcs
// drawn dashed. Handy for papers, debugging and teaching — `dagstat
// -dot` emits it from the command line.
func (d *DAG) WriteDOT(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontname=monospace];\n", name); err != nil {
		return err
	}
	for i := range d.Nodes {
		if _, err := fmt.Fprintf(w, "  n%d [label=\"%d: %s\"];\n",
			i, i, d.Nodes[i].Inst.String()); err != nil {
			return err
		}
	}
	reach := d.Reachability()
	for i := range d.Nodes {
		for _, arc := range d.Nodes[i].Succs {
			style := ""
			for _, other := range d.Nodes[i].Succs {
				if other.To != arc.To && reach[other.To].Test(int(arc.To)) {
					style = ", style=dashed"
					break
				}
			}
			if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=\"%s/%d\"%s];\n",
				arc.From, arc.To, arc.Kind, arc.Delay, style); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
