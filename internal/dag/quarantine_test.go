package dag

import (
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/testgen"
)

// TestArenaRecycledAfterAbandonedBuild is the quarantine regression:
// the engine's fault path abandons a built-but-unscheduled (and
// possibly corrupted) DAG mid-pipeline, and the arena must serve the
// next block as if nothing happened — identical structure to a
// fresh-arena build, and still allocation-free once warm. Stale arc
// state leaking across ResetFor is exactly the failure this pins.
func TestArenaRecycledAfterAbandonedBuild(t *testing.T) {
	m := machine.Super2()
	rt := resource.NewTable(resource.MemExprModel)
	mk := func(seed int64, n int) *block.Block {
		b := &block.Block{Name: "q", Insts: testgen.Block(seed, n)}
		for i := range b.Insts {
			b.Insts[i].Index = i
		}
		return b
	}
	poisoned := mk(500, 120)
	next := mk(501, 48)

	var ar BuildArena
	rt.PrepareBlock(poisoned.Insts)
	d := TableBackward{}.BuildInto(&ar, poisoned, m, rt)
	// Scribble over the abandoned DAG the way a faulted pipeline might
	// leave it: corrupted delays in both mirrors, a frozen CSR view.
	d.Freeze()
	for i := range d.Nodes {
		for k := range d.Nodes[i].Succs {
			d.Nodes[i].Succs[k].Delay += 1 << 20
		}
		for k := range d.Nodes[i].Preds {
			d.Nodes[i].Preds[k].Delay = -7
		}
	}

	rt.PrepareBlock(next.Insts)
	got := TableBackward{}.BuildInto(&ar, next, m, rt)

	freshRT := resource.NewTable(resource.MemExprModel)
	freshRT.PrepareBlock(next.Insts)
	var freshAr BuildArena
	want := TableBackward{}.BuildInto(&freshAr, next, m, rt)
	_ = freshRT
	requireSameDAG(t, want, got)

	// And the recycled arena is still on the zero-allocation contract.
	rt.PrepareBlock(poisoned.Insts)
	TableBackward{}.BuildInto(&ar, poisoned, m, rt) // regrow to max size
	allocs := testing.AllocsPerRun(20, func() {
		rt.PrepareBlock(next.Insts)
		TableBackward{}.BuildInto(&ar, next, m, rt)
	})
	if allocs != 0 {
		t.Errorf("post-abandonment BuildInto allocates %.1f/block, want 0", allocs)
	}
}
