package dag

import (
	"testing"

	"daginsched/internal/machine"
	"daginsched/internal/resource"
)

// TestPackedRoundTrip freezes DAGs from every builder and checks the
// packed 8-byte records decode to exactly the 16-byte arcs, both via
// Validate's cross-check and by walking the spans by hand.
func TestPackedRoundTrip(t *testing.T) {
	m := machine.Pipe1()
	for _, bld := range AllBuilders() {
		rt := resource.NewTable(resource.MemExprModel)
		b := csrTestBlock(91, 80)
		rt.PrepareBlock(b.Insts)
		d := bld.Build(b, m, rt)
		c := d.Freeze()
		if !c.HasPacked() {
			t.Fatalf("%s: packed view absent for an ordinary block", bld.Name())
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: Validate: %v", bld.Name(), err)
		}
		sp := c.PackedSuccArcs()
		pp := c.PackedPredArcs()
		for i := int32(0); int(i) < d.Len(); i++ {
			lo, hi := c.SuccSpan(i)
			for k, arc := range c.Succs(i) {
				p := sp[lo+int32(k)]
				if p.Node() != arc.To || p.Kind() != arc.Kind || c.Delay(p) != arc.Delay {
					t.Fatalf("%s: node %d packed succ %d = (%d,%v,%d), want (%d,%v,%d)",
						bld.Name(), i, k, p.Node(), p.Kind(), c.Delay(p), arc.To, arc.Kind, arc.Delay)
				}
			}
			_ = hi
			for k, arc := range c.Preds(i) {
				p := pp[c.predOff[i]+int32(k)]
				if p.Node() != arc.From || p.Kind() != arc.Kind || c.Delay(p) != arc.Delay {
					t.Fatalf("%s: node %d packed pred %d diverges", bld.Name(), i, k)
				}
			}
		}
	}
}

// packedTestDAG hand-builds a small DAG with the given arc delays so
// the spill machinery can be driven directly.
func packedTestDAG(t *testing.T, delays []int32) *DAG {
	t.Helper()
	b := csrTestBlock(7, len(delays)+1)
	d := newDAG(b, "packed-test")
	for i, delay := range delays {
		d.addArc(int32(i), int32(i+1), RAW, delay)
	}
	return d
}

// TestPackedOverflowSpill drives delays past the 16-bit field and
// checks they round-trip through the spill table, on both mirrors.
func TestPackedOverflowSpill(t *testing.T) {
	delays := []int32{1, 70000, 3, 1 << 20, 65535, 65536}
	d := packedTestDAG(t, delays)
	c := d.Freeze()
	if !c.HasPacked() {
		t.Fatal("packed view absent")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Three delays are oversize; each spills once per mirror.
	if len(c.spill) != 6 {
		t.Fatalf("spill table holds %d entries, want 6", len(c.spill))
	}
	spilled := 0
	for k, arc := range c.SuccArcs() {
		p := c.PackedSuccArcs()[k]
		if c.Delay(p) != arc.Delay {
			t.Fatalf("succ %d: packed delay %d, want %d", k, c.Delay(p), arc.Delay)
		}
		if p&packedSpillBit != 0 {
			spilled++
		}
	}
	if spilled != 3 {
		t.Fatalf("%d succ records spilled, want 3", spilled)
	}
	for k, arc := range c.PredArcs() {
		p := c.PackedPredArcs()[k]
		if c.Delay(p) != arc.Delay || p.Node() != arc.From {
			t.Fatalf("pred %d: packed (%d,%d), want (%d,%d)",
				k, p.Node(), c.Delay(p), arc.From, arc.Delay)
		}
	}
}

// TestPackedRefreezeRecyclesStorage pins that arena-style refreezing
// (drop the frozen view, freeze again) reuses the packed arrays
// without allocating, and that a refrozen view is still exact.
func TestPackedRefreezeRecyclesStorage(t *testing.T) {
	d := packedTestDAG(t, []int32{1, 2, 100000, 4})
	d.Freeze()
	allocs := testing.AllocsPerRun(50, func() {
		d.csr.frozen = false
		d.Freeze()
	})
	if allocs != 0 {
		t.Errorf("refreeze allocates %.1f/op, want 0", allocs)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate after refreeze: %v", err)
	}
}

// BenchmarkPackedDecode measures the packed successor walk (the
// scheduler's hottest loop shape) against the 16-byte layout.
func BenchmarkPackedDecode(b *testing.B) {
	m := machine.Pipe1()
	rt := resource.NewTable(resource.MemExprModel)
	blk := csrTestBlock(5, 400)
	rt.PrepareBlock(blk.Insts)
	d := TableBackward{}.Build(blk, m, rt)
	c := d.Freeze()
	b.Run("packed", func(b *testing.B) {
		b.ReportAllocs()
		var sink int64
		for i := 0; i < b.N; i++ {
			for _, p := range c.PackedSuccArcs() {
				sink += int64(p.Node()) + int64(c.Delay(p))
			}
		}
		_ = sink
	})
	b.Run("arc16", func(b *testing.B) {
		b.ReportAllocs()
		var sink int64
		for i := 0; i < b.N; i++ {
			for _, a := range c.SuccArcs() {
				sink += int64(a.To) + int64(a.Delay)
			}
		}
		_ = sink
	})
}
