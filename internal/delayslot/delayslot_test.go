package delayslot

import (
	"testing"

	"daginsched/internal/interp"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
)

func fill(t *testing.T, insts []isa.Inst) *Result {
	t.Helper()
	return Fill(insts, machine.Pipe1(), resource.MemExprModel)
}

func TestFillsSimpleSlot(t *testing.T) {
	prog := []isa.Inst{
		isa.MovI(1, isa.O0),
		isa.MovI(2, isa.O1), // leaf: nothing later reads %o1
		isa.CmpI(isa.O0, 5),
		isa.Branch(isa.BNE, "L"),
		isa.Nop(),
		isa.MovI(3, isa.O2),
	}
	r := fill(t, prog)
	if r.Filled != 1 || r.Candidates != 1 {
		t.Fatalf("filled %d of %d", r.Filled, r.Candidates)
	}
	if len(r.Insts) != 5 {
		t.Fatalf("program length %d, want 5 (nop replaced, mover removed)", len(r.Insts))
	}
	// Order: mov1, cmp, bne, mov2-in-slot, mov3.
	if r.Insts[2].Op != isa.BNE || r.Insts[3].Op != isa.MOV || r.Insts[3].Imm != 2 {
		t.Fatalf("slot not filled with the leaf mov: %v", r.Insts)
	}
}

func TestLeavesAnnulledBranchesAlone(t *testing.T) {
	prog := []isa.Inst{
		isa.MovI(2, isa.O1),
		isa.CmpI(isa.O0, 5),
		isa.BranchA(isa.BNE, "L"),
		isa.Nop(),
	}
	r := fill(t, prog)
	if r.Filled != 0 {
		t.Fatal("annulled branch slot must not be filled from the same block")
	}
	if len(r.Insts) != 4 {
		t.Fatal("program should be unchanged")
	}
}

func TestRespectsBranchDependence(t *testing.T) {
	// The only would-be candidate feeds the compare: not a leaf.
	prog := []isa.Inst{
		isa.MovI(1, isa.O0),
		isa.CmpI(isa.O0, 5),
		isa.Branch(isa.BNE, "L"),
		isa.Nop(),
	}
	r := fill(t, prog)
	if r.Filled != 0 {
		t.Fatalf("dependent instruction hoisted into the slot: %v", r.Insts)
	}
}

func TestSkipsLabeledSlot(t *testing.T) {
	prog := []isa.Inst{
		isa.MovI(2, isa.O1),
		isa.Branch(isa.BA, "L"),
		func() isa.Inst { n := isa.Nop(); n.Label = "L"; return n }(),
	}
	r := fill(t, prog)
	if r.Filled != 0 {
		t.Fatal("a labeled (branch-target) nop must never be replaced")
	}
}

func TestPreservesLabelsOfHoistedFirstInstruction(t *testing.T) {
	first := isa.MovI(2, isa.O1)
	first.Label = "top"
	prog := []isa.Inst{
		first, // leaf AND labeled first instruction of its block
		isa.CmpI(isa.O0, 5),
		isa.Branch(isa.BNE, "L"),
		isa.Nop(),
	}
	r := fill(t, prog)
	if r.Filled != 1 {
		t.Fatalf("slot unfilled: %v", r.Insts)
	}
	if r.Insts[0].Label != "top" {
		t.Fatalf("block label lost: %v", r.Insts)
	}
}

func annulLabel(in isa.Inst, l string) isa.Inst {
	in.Label = l
	return in
}

func TestAnnulledFillFromSinglePredTarget(t *testing.T) {
	// bne,a .Lonly: the target is reached only through this branch, so
	// a root of the target block may move into the squashing slot.
	prog := []isa.Inst{
		isa.CmpI(isa.O0, 0),
		isa.BranchA(isa.BNE, ".Lonly"),
		isa.Nop(),
		isa.Branch(isa.BA, ".Lout"), // fall-through path skips .Lonly
		isa.Nop(),
		annulLabel(isa.MovI(7, isa.L0), ".Lonly"),
		isa.MovI(8, isa.L1), // a root of the target block: hoistable
		isa.RIR(isa.ADD, isa.L0, 1, isa.L2),
		annulLabel(isa.MovI(0, isa.O0), ".Lout"),
	}
	r := fill(t, prog)
	if r.Filled != 1 {
		t.Fatalf("filled %d, want 1 (annulled slot)\n%v", r.Filled, r.Insts)
	}
	// The slot (position 2) now holds the hoisted mov 8.
	if r.Insts[2].Op != isa.MOV || r.Insts[2].Imm != 8 {
		t.Fatalf("slot = %v, want mov 8", r.Insts[2])
	}
	// The target block keeps its label on its (unmoved) first inst.
	found := false
	for _, in := range r.Insts {
		if in.Label == ".Lonly" {
			found = true
			if in.Op != isa.MOV || in.Imm != 7 {
				t.Fatalf(".Lonly label moved to %v", in)
			}
		}
	}
	if !found {
		t.Fatal("target label lost")
	}
}

func TestAnnulledFillRefusedWhenTargetShared(t *testing.T) {
	// The target has two predecessors: hoisting would change the other
	// path. The pass must refuse.
	prog := []isa.Inst{
		isa.CmpI(isa.O0, 0),
		isa.BranchA(isa.BNE, ".Lshared"),
		isa.Nop(),
		isa.MovI(1, isa.O1), // falls through into .Lshared too
		annulLabel(isa.MovI(7, isa.L0), ".Lshared"),
		isa.MovI(8, isa.L1),
	}
	r := fill(t, prog)
	if r.Filled != 0 {
		t.Fatalf("shared target hoisted: %v", r.Insts)
	}
}

func TestSemanticsPreservedModuloBranch(t *testing.T) {
	// Execute both programs with CTIs skipped (straight-line view):
	// architectural state must match, since the hoisted instruction is
	// independent of everything after its original position.
	prog := []isa.Inst{
		isa.MovI(10, isa.O0),
		isa.RIR(isa.ADD, isa.O0, 1, isa.O1),
		isa.Store(isa.ST, isa.O1, isa.FP, -4), // leaf
		isa.CmpI(isa.O0, 3),
		isa.Branch(isa.BG, "L"),
		isa.Nop(),
		isa.MovI(9, isa.O3),
	}
	r := fill(t, prog)
	if r.Filled != 1 {
		t.Fatalf("expected a fill, got %d", r.Filled)
	}
	run := func(p []isa.Inst) *interp.State {
		s := interp.NewState(7)
		for i := range p {
			if p[i].Op.IsCTI() {
				continue
			}
			if err := s.Exec(&p[i]); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	if a, b := run(prog), run(r.Insts); !a.Equal(b) {
		t.Fatalf("state diverged: %s", a.Diff(b))
	}
}

func TestMultipleSlots(t *testing.T) {
	prog := []isa.Inst{
		isa.MovI(1, isa.O0),
		isa.MovI(2, isa.O1),
		isa.Branch(isa.BA, "A"),
		isa.Nop(),
		isa.MovI(3, isa.O2),
		isa.MovI(4, isa.O3),
		isa.Branch(isa.BA, "B"),
		isa.Nop(),
	}
	r := fill(t, prog)
	if r.Filled != 2 || r.Candidates != 2 {
		t.Fatalf("filled %d of %d", r.Filled, r.Candidates)
	}
	if len(r.Insts) != 6 {
		t.Fatalf("length %d, want 6", len(r.Insts))
	}
}

func TestNoSlotNoChange(t *testing.T) {
	prog := []isa.Inst{
		isa.MovI(1, isa.O0),
		isa.Branch(isa.BA, "L"),
		isa.MovI(2, isa.O1), // slot already useful
	}
	r := fill(t, prog)
	if r.Filled != 0 || r.Candidates != 0 {
		t.Fatal("useful slot should not be touched")
	}
	if len(r.Insts) != 3 {
		t.Fatal("program changed")
	}
}

func TestEmptyProgram(t *testing.T) {
	r := fill(t, nil)
	if len(r.Insts) != 0 || r.Filled != 0 {
		t.Fatal("empty program mishandled")
	}
}
