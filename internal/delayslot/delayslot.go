// Package delayslot implements the special control-hazard pass the
// paper's introduction mentions: "Control hazards can also be handled
// in a special manner, possibly by a delay slot scheduler."
//
// On the SPARC-like target, every control-transfer instruction has one
// delay slot that executes regardless of the branch outcome (unless the
// branch is annulled, ",a", in which case the slot is squashed on
// fall-through). Compilers emit a nop there when they find nothing
// better; this pass replaces such nops with a useful instruction hoisted
// from above the branch.
//
// A candidate must satisfy three conditions:
//
//  1. it lives in the branch's own basic block (hoisting from the
//     target or fall-through block would need control-flow analysis);
//  2. it is a dependence-DAG leaf of that block — no later instruction,
//     including the branch and its condition, consumes or overwrites
//     anything it produces — so sliding it past them changes nothing;
//  3. it is not itself a CTI.
//
// Moving such an instruction into the slot only delays its effects past
// the branch *issue*, never past its own consumers, so architectural
// state at every visible point is unchanged.
//
// For *annulled* branches (",a"), whose slot is squashed on
// fall-through, same-block hoisting is illegal; instead the pass uses
// the control-flow graph: when the branch target is a block whose only
// predecessor is this branch, a dependence-DAG *root* of the target can
// move up into the slot — it executes exactly when the target would
// have executed it, on the only path that reaches it.
package delayslot

import (
	"daginsched/internal/block"
	"daginsched/internal/cfg"
	"daginsched/internal/dag"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
)

// Result reports what the pass did.
type Result struct {
	// Insts is the rewritten program.
	Insts []isa.Inst
	// Filled counts delay slots that received a useful instruction.
	Filled int
	// Candidates counts nop delay slots examined (filled or not).
	Candidates int
}

// Fill scans a program for CTIs trailed by a nop delay slot and hoists
// a suitable instruction into the slot: from the CTI's own block for
// ordinary branches, from a single-predecessor target block for
// annulled ones.
func Fill(insts []isa.Inst, m *machine.Model, memModel resource.MemModel) *Result {
	res := &Result{}
	g := cfg.Build(insts)
	blocks := make([]*block.Block, len(g.Blocks))
	for i, n := range g.Blocks {
		blocks[i] = n.Block
	}
	rt := resource.NewTable(memModel)

	drop := make(map[int]bool) // stream positions to remove
	fillWith := make(map[int]isa.Inst)

	for bi, b := range blocks {
		n := b.Len()
		if n < 1 || !b.EndsInCTI() {
			continue
		}
		cti := b.Insts[n-1]
		// The delay slot is the first instruction of the next block.
		if bi+1 >= len(blocks) || blocks[bi+1].Len() == 0 {
			continue
		}
		slot := blocks[bi+1].Insts[0]
		if slot.Op != isa.NOP || slot.Label != "" {
			continue
		}
		res.Candidates++
		if cti.Annul {
			// Squashing slot: hoist a root of the branch target, legal
			// only when this branch is the target's sole way in.
			ti, cand := annulCandidate(g, bi, m, rt)
			if cand < 0 {
				continue
			}
			res.Filled++
			target := blocks[ti]
			drop[target.Start+int(cand)] = true
			moved := target.Insts[cand]
			moved.Label = ""
			fillWith[blocks[bi+1].Start] = moved
			continue
		}
		if n < 2 {
			continue
		}
		rt.PrepareBlock(b.Insts)
		d := dag.TableForward{}.Build(b, m, rt)
		cand := pickLeaf(d)
		if cand < 0 {
			continue
		}
		// Hoist: remove the candidate from its position, replace the nop.
		res.Filled++
		drop[b.Start+int(cand)] = true
		moved := b.Insts[cand]
		moved.Label = "" // the candidate cannot carry a label mid-block
		fillWith[blocks[bi+1].Start] = moved
	}

	for i := range insts {
		if drop[i] {
			// Preserve a label by pushing it to the next surviving inst.
			if insts[i].Label != "" {
				for j := i + 1; j < len(insts); j++ {
					if !drop[j] {
						insts[j].Label = insts[i].Label
						break
					}
				}
			}
			continue
		}
		in := insts[i]
		if rep, ok := fillWith[i]; ok {
			rep.Label = in.Label // keep the slot's (block's) label if any
			in = rep
		}
		res.Insts = append(res.Insts, in)
	}
	for i := range res.Insts {
		res.Insts[i].Index = i
	}
	return res
}

// annulCandidate finds an instruction to fill an annulled branch's
// slot: a non-CTI dependence-DAG root of the branch's target block,
// provided the target is reached only through this branch (single
// predecessor, no external entries) and its first instruction carries
// the label (so removing a root deeper in the block is safe — the
// label stays put). Returns the target block index and the candidate's
// index within it, or (-1, -1).
func annulCandidate(g *cfg.Graph, bi int, m *machine.Model, rt *resource.Table) (int, int32) {
	branch := g.Blocks[bi].Block
	target := branch.Insts[branch.Len()-1].Target
	var ti = -1
	for _, s := range g.Blocks[bi].Succs {
		tb := g.Blocks[s].Block
		if tb.Len() > 0 && tb.Insts[0].Label == target {
			ti = s
			break
		}
	}
	if ti < 0 {
		return -1, -1
	}
	tn := g.Blocks[ti]
	if tn.HasUnknownPred || len(tn.Preds) != 1 || tn.Preds[0] != bi {
		return -1, -1
	}
	rt.PrepareBlock(tn.Block.Insts)
	d := dag.TableForward{}.Build(tn.Block, m, rt)
	// Prefer the earliest root past position 0: hoisting the labeled
	// first instruction would orphan the label.
	for i := int32(1); i < int32(d.Len()); i++ {
		op := d.Nodes[i].Inst.Op
		if op.IsCTI() || op == isa.NOP || len(d.Nodes[i].Preds) != 0 {
			continue
		}
		return ti, i
	}
	return -1, -1
}

// pickLeaf returns the latest non-CTI DAG leaf of the block, or -1.
// Latest is best: it is the instruction the surrounding schedule most
// recently decided could run last anyway.
func pickLeaf(d *dag.DAG) int32 {
	for i := int32(d.Len()) - 2; i >= 0; i-- { // skip the CTI itself
		op := d.Nodes[i].Inst.Op
		if op.IsCTI() || op == isa.NOP {
			continue // moving a nop into a nop slot achieves nothing
		}
		if len(d.Nodes[i].Succs) == 0 {
			return i
		}
	}
	return -1
}
