// Package cfg builds the control-flow graph over basic blocks and
// propagates cross-block scheduling information along it.
//
// The paper's third future-work item wants "operation latencies
// inherited from immediately preceding blocks". Package sched
// implements the carry for a linear chain; this package generalizes it
// to real control flow: a block's inherited latencies are the join —
// the per-register maximum — of every CFG predecessor's carry-out, the
// conservative answer when the runtime path is unknown.
package cfg

import (
	"fmt"
	"strings"

	"daginsched/internal/block"
	"daginsched/internal/isa"
)

// Node is one basic block plus its flow edges (indices into Graph.Blocks).
type Node struct {
	Block *block.Block
	// Succs are control-flow successors: the fall-through block (unless
	// the block ends in an unconditional transfer) and the branch
	// target, when it is a known label.
	Succs []int
	// Preds are the reverse edges.
	Preds []int
	// HasUnknownPred marks blocks reachable from outside the analyzed
	// stream (entry block, call returns, indirect jumps): their carry-in
	// must be assumed empty-pessimistic, i.e. no inherited information.
	HasUnknownPred bool
}

// Graph is the control-flow graph of one instruction stream.
type Graph struct {
	Blocks []*Node
	// byLabel maps a leading label to its block index.
	byLabel map[string]int
}

// Build partitions the stream and connects the blocks.
func Build(insts []isa.Inst) *Graph {
	blocks := block.Partition(insts)
	g := &Graph{byLabel: make(map[string]int)}
	for i, b := range blocks {
		g.Blocks = append(g.Blocks, &Node{Block: b})
		if b.Len() > 0 && b.Insts[0].Label != "" {
			g.byLabel[b.Insts[0].Label] = i
		}
	}
	// A block that follows an unconditional transfer holds that
	// transfer's delay slot: control leaves it after its first
	// instruction, to the transfer's target — it never falls through.
	jumpVia := map[int]string{}
	noFall := map[int]bool{}
	for i, n := range g.Blocks {
		if last := lastInst(n.Block); last != nil {
			switch last.Op {
			case isa.BA:
				jumpVia[i+1] = last.Target
			case isa.JMPL, isa.RET, isa.RETL:
				noFall[i+1] = true // indirect target: unanalyzable
			}
		}
	}
	for i, n := range g.Blocks {
		if tgt, ok := jumpVia[i]; ok {
			g.edgeTo(i, tgt)
			continue
		}
		if noFall[i] {
			continue
		}
		last := lastInst(n.Block)
		if last == nil {
			g.fallthrough_(i)
			continue
		}
		switch {
		case last.Op == isa.BA:
			g.fallthrough_(i) // into the delay-slot block, then away
		case last.Op.IsBranch():
			g.edgeTo(i, last.Target)
			g.fallthrough_(i)
		case last.Op == isa.CALL:
			// The delay slot executes, then the callee runs and returns
			// with clobbered caller-saved state: keep the reachability
			// edge but poison the successor's carry.
			g.fallthrough_(i)
			g.markUnknown(i + 1)
		case last.Op == isa.JMPL, last.Op == isa.RET, last.Op == isa.RETL:
			g.fallthrough_(i) // the delay slot still executes
		case last.Op.EndsBlock():
			// SAVE/RESTORE: control continues, registers renamed —
			// window shifts invalidate register carries.
			g.markUnknown(i + 1)
		default:
			g.fallthrough_(i)
		}
	}
	if len(g.Blocks) > 0 {
		g.Blocks[0].HasUnknownPred = true // program entry
	}
	for _, n := range g.Blocks {
		if n.Block.Len() > 0 && n.Block.Insts[0].Label != "" &&
			strings.HasPrefix(n.Block.Insts[0].Label, "_") {
			n.HasUnknownPred = true // externally-visible entry point
		}
	}
	return g
}

func lastInst(b *block.Block) *isa.Inst {
	if b.Len() == 0 {
		return nil
	}
	in := &b.Insts[b.Len()-1]
	if !in.Op.EndsBlock() {
		return nil
	}
	return in
}

// fallthrough_ adds the edge i -> i+1 when a next block exists.
func (g *Graph) fallthrough_(i int) {
	if i+1 < len(g.Blocks) {
		g.addEdge(i, i+1)
	}
}

// edgeTo adds an edge to a labeled block; unknown labels (external or
// forward-declared elsewhere) mark nothing — the target is outside the
// stream.
func (g *Graph) edgeTo(i int, label string) {
	if j, ok := g.byLabel[label]; ok {
		g.addEdge(i, j)
	}
}

func (g *Graph) markUnknown(i int) {
	if i < len(g.Blocks) {
		g.Blocks[i].HasUnknownPred = true
	}
}

func (g *Graph) addEdge(from, to int) {
	g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
	g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
}

// String renders the graph for debugging: one line per block.
func (g *Graph) String() string {
	var b strings.Builder
	for i, n := range g.Blocks {
		fmt.Fprintf(&b, "%3d %-12s ->", i, n.Block.Name)
		for _, s := range n.Succs {
			fmt.Fprintf(&b, " %d", s)
		}
		if n.HasUnknownPred {
			b.WriteString("   (unknown pred)")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
