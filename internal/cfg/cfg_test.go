package cfg

import (
	"strings"
	"testing"

	"daginsched/internal/asm"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	insts, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return Build(insts)
}

func TestDiamond(t *testing.T) {
	g := build(t, `
	cmp %o0, 0
	bne .Lelse
	nop
	mov 1, %o1
	ba .Ljoin
	nop
.Lelse:
	mov 2, %o1
.Ljoin:
	st %o1, [%fp-4]
`)
	// Blocks: 0 {cmp,bne} 1 {nop,mov,ba} 2 {nop} 3 {.Lelse mov} 4 {.Ljoin st}
	if len(g.Blocks) != 5 {
		t.Fatalf("got %d blocks:\n%s", len(g.Blocks), g)
	}
	succ := func(i int) []int { return g.Blocks[i].Succs }
	if got := succ(0); len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Errorf("branch block succs = %v, want [3 1]", got)
	}
	// The ba block flows into its delay-slot block (2), which then
	// transfers to the join.
	if got := succ(1); len(got) != 1 || got[0] != 2 {
		t.Errorf("ba block succs = %v, want [2]", got)
	}
	if got := succ(2); len(got) != 1 || got[0] != 4 {
		t.Errorf("slot block succs = %v, want [4]", got)
	}
	if got := succ(3); len(got) != 1 || got[0] != 4 {
		t.Errorf("else block succs = %v, want [4]", got)
	}
	// The join block has two predecessors.
	if got := g.Blocks[4].Preds; len(got) != 2 {
		t.Errorf("join preds = %v", got)
	}
	if !g.Blocks[0].HasUnknownPred {
		t.Error("entry block must have unknown predecessors")
	}
	if g.Blocks[4].HasUnknownPred {
		t.Error("join block is fully analyzed")
	}
}

func TestCallBreaksCarry(t *testing.T) {
	g := build(t, `
	mov 1, %o0
	call _printf
	nop
	add %o0, 1, %o1
`)
	// The block after the call's delay slot... the call ends block 0;
	// block 1 begins with the nop. Block 1 must be marked unknown.
	if len(g.Blocks) < 2 {
		t.Fatalf("blocks:\n%s", g)
	}
	if !g.Blocks[1].HasUnknownPred {
		t.Error("call fall-through must have unknown predecessor state")
	}
	// The reachability edge exists (the delay slot executes), but the
	// unknown-pred flag suppresses any carry across the call.
	if len(g.Blocks[1].Preds) != 1 {
		t.Errorf("call slot block preds = %v, want [0]", g.Blocks[1].Preds)
	}
}

func TestSaveRestoreBreakCarry(t *testing.T) {
	g := build(t, `
	save %sp, -96, %sp
	mov 1, %l0
	restore
	mov 2, %o0
`)
	if !g.Blocks[1].HasUnknownPred || !g.Blocks[2].HasUnknownPred {
		t.Errorf("register-window shifts must invalidate carries:\n%s", g)
	}
}

func TestIndirectJumpFlow(t *testing.T) {
	g := build(t, `
	mov 1, %o0
	ret
	restore
`)
	// The ret's delay slot (the restore block) executes, so it is a
	// successor; after it, control goes through the indirect target —
	// unanalyzable, so the slot block has no successors of its own.
	if got := g.Blocks[0].Succs; len(got) != 1 || got[0] != 1 {
		t.Errorf("ret block succs = %v, want [1] (delay slot)", got)
	}
	if len(g.Blocks[1].Succs) != 0 {
		t.Errorf("slot block succs = %v, want none", g.Blocks[1].Succs)
	}
}

func TestExternalLabelUnknown(t *testing.T) {
	insts, err := asm.Parse(`
_entry:
	mov 1, %o0
	mov 2, %o1
`)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(insts)
	if !g.Blocks[0].HasUnknownPred {
		t.Error("underscore-labeled block must count as external entry")
	}
}

func TestUnknownTargetIgnored(t *testing.T) {
	g := build(t, `
	ba _elsewhere
	nop
	mov 1, %o0
`)
	// The ba's delay-slot block executes (edge 0->1); from there control
	// leaves for the unknown label, never falling through to the mov.
	if got := g.Blocks[0].Succs; len(got) != 1 || got[0] != 1 {
		t.Errorf("ba block succs = %v, want [1]", got)
	}
	if len(g.Blocks[1].Succs) != 0 {
		t.Errorf("slot block leaked an edge: %v", g.Blocks[1].Succs)
	}
}

func TestLoopBackEdge(t *testing.T) {
	g := build(t, `
.Ltop:
	add %o0, 1, %o0
	cmp %o0, 10
	bne .Ltop
	nop
	mov 0, %o1
`)
	// Block 0 (.Ltop ... bne) branches back to itself and falls through.
	n := g.Blocks[0]
	back := false
	for _, s := range n.Succs {
		if s == 0 {
			back = true
		}
	}
	if !back {
		t.Errorf("back edge missing: succs %v", n.Succs)
	}
	if len(n.Preds) == 0 {
		t.Error("loop header should have itself as predecessor")
	}
}

func TestStringRenders(t *testing.T) {
	g := build(t, "\tmov 1, %o0\n\tba .L\n\tnop\n.L:\tret\n\trestore\n")
	out := g.String()
	if !strings.Contains(out, "->") || !strings.Contains(out, "(unknown pred)") {
		t.Errorf("graph render:\n%s", out)
	}
}

func TestEmpty(t *testing.T) {
	if g := Build(nil); len(g.Blocks) != 0 {
		t.Fatal("empty stream produced blocks")
	}
}
