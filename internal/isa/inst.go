package isa

import (
	"fmt"
	"strings"
)

// MemExpr is a symbolic memory address expression as it appears in a
// load or store: [base + offset] or [base + index]. The paper counts
// "unique memory expressions" per basic block (Table 3) and makes them
// the unit of memory disambiguation: two references with the same base
// register but different offsets cannot alias, while references with
// different base registers must be serialized unless their storage
// classes are known not to overlap (Warren's observation).
type MemExpr struct {
	Base   Reg   // base register (RegNone for absolute/symbol addressing)
	Index  Reg   // optional index register (RegNone if absent)
	Offset int32 // constant displacement
	Sym    string
	// Sym is an optional symbolic label ("_errno", ".L42"); when
	// non-empty the expression addresses static storage.
}

// HasIndex reports whether the expression uses a register index.
func (m MemExpr) HasIndex() bool { return m.Index != RegNone }

// String renders the expression in assembly syntax.
func (m MemExpr) String() string {
	var b strings.Builder
	b.WriteByte('[')
	wrote := false
	if m.Sym != "" {
		b.WriteString(m.Sym)
		wrote = true
	}
	if m.Base != RegNone && m.Base != G0 {
		if wrote {
			b.WriteByte('+')
		}
		b.WriteString(m.Base.String())
		wrote = true
	}
	if m.Index != RegNone {
		if wrote {
			b.WriteByte('+')
		}
		b.WriteString(m.Index.String())
		wrote = true
	}
	if m.Offset != 0 || !wrote {
		if m.Offset >= 0 && wrote {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%d", m.Offset)
	}
	b.WriteByte(']')
	return b.String()
}

// Key returns a canonical string identifying the symbolic expression.
// Two loads/stores have the same "unique memory expression" (Table 3's
// last column) exactly when their Keys are equal.
func (m MemExpr) Key() string {
	return fmt.Sprintf("%s|%d|%d|%d", m.Sym, m.Base, m.Index, m.Offset)
}

// wordAfter returns the expression one memory word (4 bytes) later —
// the second word of a double-word access.
func (m MemExpr) wordAfter() MemExpr {
	m.Offset += 4
	return m
}

// NoMem is the zero-ish MemExpr used for non-memory instructions.
var NoMem = MemExpr{Base: RegNone, Index: RegNone}

// Inst is one machine instruction. The representation is format-tagged
// (see Opcode.Format): register fields that a format does not use hold
// RegNone.
type Inst struct {
	Op     Opcode
	RS1    Reg     // first source register
	RS2    Reg     // second source register (when HasImm is false)
	RD     Reg     // destination register
	Imm    int32   // immediate second operand (when HasImm is true)
	HasImm bool    // instruction uses Imm instead of RS2
	Mem    MemExpr // memory expression for loads and stores
	Target string  // branch/call target label
	Annul  bool    // ",a" annulled branch
	Label  string  // label defined on this instruction, if any
	Index  int     // position in the original instruction stream
}

// Class returns the instruction's class.
func (in *Inst) Class() Class { return in.Op.Class() }

// String renders the instruction in assembly syntax (without its label).
func (in *Inst) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	if in.Op.IsBranch() && in.Annul {
		b.WriteString(",a")
	}
	switch in.Op.Format() {
	case FmtNone:
		// nothing
	case Fmt3:
		switch in.Op {
		case MOV: // synthetic: or %g0, src2, rd
			fmt.Fprintf(&b, " %s, %s", in.src2(), in.RD)
		case CMP: // synthetic: subcc rs1, src2, %g0
			fmt.Fprintf(&b, " %s, %s", in.RS1, in.src2())
		default:
			fmt.Fprintf(&b, " %s, %s, %s", in.RS1, in.src2(), in.RD)
		}
	case FmtLoad:
		fmt.Fprintf(&b, " %s, %s", in.Mem, in.RD)
	case FmtStore:
		fmt.Fprintf(&b, " %s, %s", in.RD, in.Mem)
	case FmtBranch:
		fmt.Fprintf(&b, " %s", in.Target)
	case FmtCall:
		fmt.Fprintf(&b, " %s", in.Target)
	case FmtSethi:
		fmt.Fprintf(&b, " %%hi(%d), %s", in.Imm, in.RD)
	case FmtFp2:
		fmt.Fprintf(&b, " %s, %s", in.RS2, in.RD)
	case FmtFp3:
		fmt.Fprintf(&b, " %s, %s, %s", in.RS1, in.RS2, in.RD)
	case FmtFcmp:
		fmt.Fprintf(&b, " %s, %s", in.RS1, in.RS2)
	case FmtJmpl:
		fmt.Fprintf(&b, " %s+%d, %s", in.RS1, in.Imm, in.RD)
	case FmtRdY:
		fmt.Fprintf(&b, " %%y, %s", in.RD)
	}
	return b.String()
}

func (in *Inst) src2() string {
	if in.HasImm {
		return fmt.Sprintf("%d", in.Imm)
	}
	return in.RS2.String()
}

// ResKind classifies a resource reference.
type ResKind uint8

const (
	// RReg is an integer register.
	RReg ResKind = iota
	// RFReg is a floating-point register.
	RFReg
	// RCC is a condition-code register (%icc or %fcc).
	RCC
	// RY is the %y register.
	RY
	// RMem is a memory location named by a symbolic expression.
	RMem
)

// ResRef is one resource use or definition extracted from an
// instruction. Slot records the source-operand position (0-based within
// the instruction's use list); the machine model can key RAW delays on
// it to model asymmetric bypass paths (the paper's RS/6000 example).
type ResRef struct {
	Kind ResKind
	Reg  Reg     // for RReg / RFReg / RCC / RY
	Mem  MemExpr // for RMem
	Slot uint8
}

// String renders the reference for debugging.
func (r ResRef) String() string {
	if r.Kind == RMem {
		return "mem" + r.Mem.String()
	}
	return r.Reg.String()
}

func regRef(r Reg, slot uint8) ResRef {
	k := RReg
	switch {
	case r.IsFP():
		k = RFReg
	case r.IsCC():
		k = RCC
	case r == Y:
		k = RY
	}
	return ResRef{Kind: k, Reg: r, Slot: slot}
}

// appendReg appends a register reference unless it is %g0 (hardwired
// zero: reads and writes of %g0 create no dependence) or RegNone.
func appendReg(dst []ResRef, r Reg, slot uint8) []ResRef {
	if r == G0 || r == RegNone {
		return dst
	}
	//sched:lint-ignore noalloc amortized: callers pass recycled dst whose capacity is retained across blocks
	return append(dst, regRef(r, slot))
}

// appendPair appends r and, for pair instructions, its odd partner.
// Both halves get the same operand slot: they arrive on the same port.
func appendPair(dst []ResRef, r Reg, pair bool, slot uint8) []ResRef {
	dst = appendReg(dst, r, slot)
	if pair && r != G0 && r != RegNone {
		dst = appendReg(dst, r+1, slot)
	}
	return dst
}

// AppendUses appends the resources read by in to dst and returns the
// extended slice. Slots number the uses in order of appearance.
func (in *Inst) AppendUses(dst []ResRef) []ResRef {
	slot := uint8(0)
	add := func(r Reg, pair bool) {
		n := len(dst)
		dst = appendPair(dst, r, pair, slot)
		if len(dst) > n {
			slot++
		}
	}
	info := &opTable[in.Op]
	switch info.fmt {
	case Fmt3:
		add(in.RS1, false)
		if !in.HasImm {
			add(in.RS2, false)
		}
	case FmtLoad:
		add(in.Mem.Base, false)
		add(in.Mem.Index, false)
		//sched:lint-ignore noalloc amortized: callers pass recycled dst whose capacity is retained across blocks
		dst = append(dst, ResRef{Kind: RMem, Mem: in.Mem, Slot: slot})
		if info.pair {
			// A double-word access touches two memory words; emitting
			// both keeps "same base, different offset" disambiguation
			// sound when single- and double-word accesses overlap.
			//sched:lint-ignore noalloc amortized: callers pass recycled dst whose capacity is retained across blocks
			dst = append(dst, ResRef{Kind: RMem, Mem: in.Mem.wordAfter(), Slot: slot})
		}
		slot++
	case FmtStore:
		add(in.RD, info.pair) // store data
		add(in.Mem.Base, false)
		add(in.Mem.Index, false)
	case FmtFp2:
		add(in.RS2, info.pair)
	case FmtFp3:
		add(in.RS1, info.pair)
		add(in.RS2, info.pair)
	case FmtFcmp:
		add(in.RS1, info.pair)
		add(in.RS2, info.pair)
	case FmtJmpl:
		add(in.RS1, false)
	case FmtRdY:
		add(Y, false)
	case FmtBranch, FmtCall, FmtSethi, FmtNone:
		// handled below / no register uses
	}
	switch info.cc {
	case ccUseI:
		//sched:lint-ignore noalloc amortized: callers pass recycled dst whose capacity is retained across blocks
		dst = append(dst, ResRef{Kind: RCC, Reg: ICC, Slot: slot})
	case ccUseF:
		//sched:lint-ignore noalloc amortized: callers pass recycled dst whose capacity is retained across blocks
		dst = append(dst, ResRef{Kind: RCC, Reg: FCC, Slot: slot})
	}
	if in.Op == RET {
		dst = appendReg(dst, I7, slot)
	}
	if in.Op == RETL {
		dst = appendReg(dst, O7, slot)
	}
	return dst
}

// AppendDefs appends the resources written by in to dst and returns the
// extended slice. For pair instructions both halves of the destination
// pair are distinct definitions; the machine model gives the odd half a
// skewed RAW delay (Section 2: "the RAW delays for these registers can
// be one or two cycles different").
func (in *Inst) AppendDefs(dst []ResRef) []ResRef {
	info := &opTable[in.Op]
	switch info.fmt {
	case Fmt3, FmtSethi, FmtJmpl, FmtRdY:
		dst = appendReg(dst, in.RD, 0)
	case FmtLoad:
		dst = appendPair(dst, in.RD, info.pair, 0)
	case FmtStore:
		//sched:lint-ignore noalloc amortized: callers pass recycled dst whose capacity is retained across blocks
		dst = append(dst, ResRef{Kind: RMem, Mem: in.Mem})
		if info.pair {
			//sched:lint-ignore noalloc amortized: callers pass recycled dst whose capacity is retained across blocks
			dst = append(dst, ResRef{Kind: RMem, Mem: in.Mem.wordAfter()})
		}
	case FmtFp2, FmtFp3:
		dst = appendPair(dst, in.RD, info.pair, 0)
	case FmtCall:
		dst = appendReg(dst, O7, 0)
	case FmtBranch, FmtFcmp, FmtNone:
		// no register destinations
	}
	switch info.cc {
	case ccDefI:
		//sched:lint-ignore noalloc amortized: callers pass recycled dst whose capacity is retained across blocks
		dst = append(dst, ResRef{Kind: RCC, Reg: ICC})
	case ccDefF:
		//sched:lint-ignore noalloc amortized: callers pass recycled dst whose capacity is retained across blocks
		dst = append(dst, ResRef{Kind: RCC, Reg: FCC})
	}
	switch in.Op {
	case SMUL, UMUL, SDIV, UDIV:
		//sched:lint-ignore noalloc amortized: callers pass recycled dst whose capacity is retained across blocks
		dst = append(dst, ResRef{Kind: RY, Reg: Y})
	}
	return dst
}

// Uses returns a fresh slice of the resources read by in.
func (in *Inst) Uses() []ResRef { return in.AppendUses(nil) }

// Defs returns a fresh slice of the resources written by in.
func (in *Inst) Defs() []ResRef { return in.AppendDefs(nil) }

// PairSecondDef reports whether the i'th definition returned by
// AppendDefs is the odd (second) half of a destination register pair.
func (in *Inst) PairSecondDef(def ResRef) bool {
	if !opTable[in.Op].pair {
		return false
	}
	if def.Kind != RReg && def.Kind != RFReg {
		return false
	}
	return def.Reg == in.RD+1
}
