package isa

import "fmt"

// Opcode identifies an instruction operation.
type Opcode uint8

// Format describes an instruction's operand encoding; it drives
// parsing, printing and def/use extraction.
type Format uint8

const (
	// Fmt3 is the three-operand ALU format: op rs1, rs2|imm, rd.
	Fmt3 Format = iota
	// FmtLoad is op [mem], rd.
	FmtLoad
	// FmtStore is op rd, [mem].
	FmtStore
	// FmtBranch is op[,a] label; conditional branches use a condition code.
	FmtBranch
	// FmtCall is call label.
	FmtCall
	// FmtSethi is sethi imm, rd.
	FmtSethi
	// FmtFp2 is the two-operand FP format: op fs2, fd.
	FmtFp2
	// FmtFp3 is the three-operand FP format: op fs1, fs2, fd.
	FmtFp3
	// FmtFcmp is fcmp fs1, fs2 (defines %fcc).
	FmtFcmp
	// FmtJmpl is jmpl rs1+simm, rd.
	FmtJmpl
	// FmtNone has no operands (nop, ret, retl).
	FmtNone
	// FmtRdY is rd %y, rd (reads the %y register).
	FmtRdY
)

// Condition-code effect markers used in the opcode table.
type ccEffect uint8

const (
	ccNone ccEffect = iota
	ccDefI          // defines %icc
	ccUseI          // uses %icc
	ccDefF          // defines %fcc
	ccUseF          // uses %fcc
)

// opInfo is the static description of one opcode.
type opInfo struct {
	name  string
	class Class
	fmt   Format
	cc    ccEffect
	pair  bool // operates on an even/odd register pair (double-word)
}

// The opcode space. Roughly the subset of SPARC v7 (plus synthetic
// mnemonics cmp/mov/ret) that SunOS `cc -O4 -S` output uses, which is
// what the paper's benchmarks consisted of.
const (
	NOP Opcode = iota

	// Integer ALU.
	ADD
	ADDCC
	SUB
	SUBCC
	AND
	ANDCC
	OR
	ORCC
	XOR
	XORCC
	ANDN
	ORN
	XNOR
	SLL
	SRL
	SRA
	SETHI
	MOV // synthetic: or %g0, rs2|imm, rd
	CMP // synthetic: subcc rs1, rs2|imm, %g0

	// Integer multiply/divide (SPARC v8-style, multi-cycle).
	SMUL
	UMUL
	SDIV
	UDIV
	RDY // rd %y, rd

	// Loads.
	LD   // load word
	LDUB // load unsigned byte
	LDSB // load signed byte
	LDUH // load unsigned half
	LDSH // load signed half
	LDD  // load double word into integer register pair
	LDF  // load word into FP register
	LDDF // load double word into FP register pair

	// Stores.
	ST
	STB
	STH
	STD  // store integer register pair
	STF  // store FP register
	STDF // store FP register pair

	// Floating point.
	FADDS
	FADDD
	FSUBS
	FSUBD
	FMULS
	FMULD
	FDIVS
	FDIVD
	FSQRTS
	FSQRTD
	FMOVS
	FNEGS
	FABSS
	FITOS
	FITOD
	FSTOI
	FDTOI
	FSTOD
	FDTOS
	FCMPS
	FCMPD

	// Integer branches (use %icc), plus the unconditional ba/bn.
	BA
	BN
	BE
	BNE
	BG
	BLE
	BGE
	BL
	BGU
	BLEU
	BCC
	BCS
	BPOS
	BNEG

	// FP branches (use %fcc).
	FBE
	FBNE
	FBG
	FBL
	FBGE
	FBLE
	FBU
	FBO

	// Calls and indirect jumps.
	CALL
	JMPL
	RET  // synthetic: jmpl %i7+8, %g0
	RETL // synthetic: jmpl %o7+8, %g0

	// Register-window management.
	SAVE
	RESTORE

	// NumOpcodes is the count of opcodes.
	NumOpcodes = int(RESTORE) + 1
)

var opTable = [NumOpcodes]opInfo{
	NOP: {"nop", ClassMisc, FmtNone, ccNone, false},

	ADD:   {"add", ClassIU, Fmt3, ccNone, false},
	ADDCC: {"addcc", ClassIU, Fmt3, ccDefI, false},
	SUB:   {"sub", ClassIU, Fmt3, ccNone, false},
	SUBCC: {"subcc", ClassIU, Fmt3, ccDefI, false},
	AND:   {"and", ClassIU, Fmt3, ccNone, false},
	ANDCC: {"andcc", ClassIU, Fmt3, ccDefI, false},
	OR:    {"or", ClassIU, Fmt3, ccNone, false},
	ORCC:  {"orcc", ClassIU, Fmt3, ccDefI, false},
	XOR:   {"xor", ClassIU, Fmt3, ccNone, false},
	XORCC: {"xorcc", ClassIU, Fmt3, ccDefI, false},
	ANDN:  {"andn", ClassIU, Fmt3, ccNone, false},
	ORN:   {"orn", ClassIU, Fmt3, ccNone, false},
	XNOR:  {"xnor", ClassIU, Fmt3, ccNone, false},
	SLL:   {"sll", ClassIU, Fmt3, ccNone, false},
	SRL:   {"srl", ClassIU, Fmt3, ccNone, false},
	SRA:   {"sra", ClassIU, Fmt3, ccNone, false},
	SETHI: {"sethi", ClassIU, FmtSethi, ccNone, false},
	MOV:   {"mov", ClassIU, Fmt3, ccNone, false},
	CMP:   {"cmp", ClassIU, Fmt3, ccDefI, false},

	SMUL: {"smul", ClassMul, Fmt3, ccNone, false},
	UMUL: {"umul", ClassMul, Fmt3, ccNone, false},
	SDIV: {"sdiv", ClassMul, Fmt3, ccNone, false},
	UDIV: {"udiv", ClassMul, Fmt3, ccNone, false},
	RDY:  {"rd", ClassIU, FmtRdY, ccNone, false},

	LD:   {"ld", ClassLoad, FmtLoad, ccNone, false},
	LDUB: {"ldub", ClassLoad, FmtLoad, ccNone, false},
	LDSB: {"ldsb", ClassLoad, FmtLoad, ccNone, false},
	LDUH: {"lduh", ClassLoad, FmtLoad, ccNone, false},
	LDSH: {"ldsh", ClassLoad, FmtLoad, ccNone, false},
	LDD:  {"ldd", ClassLoad, FmtLoad, ccNone, true},
	LDF:  {"ldf", ClassLoad, FmtLoad, ccNone, false},
	LDDF: {"lddf", ClassLoad, FmtLoad, ccNone, true},

	ST:   {"st", ClassStore, FmtStore, ccNone, false},
	STB:  {"stb", ClassStore, FmtStore, ccNone, false},
	STH:  {"sth", ClassStore, FmtStore, ccNone, false},
	STD:  {"std", ClassStore, FmtStore, ccNone, true},
	STF:  {"stf", ClassStore, FmtStore, ccNone, false},
	STDF: {"stdf", ClassStore, FmtStore, ccNone, true},

	FADDS:  {"fadds", ClassFPA, FmtFp3, ccNone, false},
	FADDD:  {"faddd", ClassFPA, FmtFp3, ccNone, true},
	FSUBS:  {"fsubs", ClassFPA, FmtFp3, ccNone, false},
	FSUBD:  {"fsubd", ClassFPA, FmtFp3, ccNone, true},
	FMULS:  {"fmuls", ClassFPM, FmtFp3, ccNone, false},
	FMULD:  {"fmuld", ClassFPM, FmtFp3, ccNone, true},
	FDIVS:  {"fdivs", ClassFPD, FmtFp3, ccNone, false},
	FDIVD:  {"fdivd", ClassFPD, FmtFp3, ccNone, true},
	FSQRTS: {"fsqrts", ClassFPD, FmtFp2, ccNone, false},
	FSQRTD: {"fsqrtd", ClassFPD, FmtFp2, ccNone, true},
	FMOVS:  {"fmovs", ClassFPA, FmtFp2, ccNone, false},
	FNEGS:  {"fnegs", ClassFPA, FmtFp2, ccNone, false},
	FABSS:  {"fabss", ClassFPA, FmtFp2, ccNone, false},
	FITOS:  {"fitos", ClassFPA, FmtFp2, ccNone, false},
	FITOD:  {"fitod", ClassFPA, FmtFp2, ccNone, true},
	FSTOI:  {"fstoi", ClassFPA, FmtFp2, ccNone, false},
	FDTOI:  {"fdtoi", ClassFPA, FmtFp2, ccNone, false},
	FSTOD:  {"fstod", ClassFPA, FmtFp2, ccNone, true},
	FDTOS:  {"fdtos", ClassFPA, FmtFp2, ccNone, false},
	FCMPS:  {"fcmps", ClassFPA, FmtFcmp, ccDefF, false},
	FCMPD:  {"fcmpd", ClassFPA, FmtFcmp, ccDefF, true},

	BA:   {"ba", ClassBranch, FmtBranch, ccNone, false},
	BN:   {"bn", ClassBranch, FmtBranch, ccNone, false},
	BE:   {"be", ClassBranch, FmtBranch, ccUseI, false},
	BNE:  {"bne", ClassBranch, FmtBranch, ccUseI, false},
	BG:   {"bg", ClassBranch, FmtBranch, ccUseI, false},
	BLE:  {"ble", ClassBranch, FmtBranch, ccUseI, false},
	BGE:  {"bge", ClassBranch, FmtBranch, ccUseI, false},
	BL:   {"bl", ClassBranch, FmtBranch, ccUseI, false},
	BGU:  {"bgu", ClassBranch, FmtBranch, ccUseI, false},
	BLEU: {"bleu", ClassBranch, FmtBranch, ccUseI, false},
	BCC:  {"bcc", ClassBranch, FmtBranch, ccUseI, false},
	BCS:  {"bcs", ClassBranch, FmtBranch, ccUseI, false},
	BPOS: {"bpos", ClassBranch, FmtBranch, ccUseI, false},
	BNEG: {"bneg", ClassBranch, FmtBranch, ccUseI, false},

	FBE:  {"fbe", ClassBranch, FmtBranch, ccUseF, false},
	FBNE: {"fbne", ClassBranch, FmtBranch, ccUseF, false},
	FBG:  {"fbg", ClassBranch, FmtBranch, ccUseF, false},
	FBL:  {"fbl", ClassBranch, FmtBranch, ccUseF, false},
	FBGE: {"fbge", ClassBranch, FmtBranch, ccUseF, false},
	FBLE: {"fble", ClassBranch, FmtBranch, ccUseF, false},
	FBU:  {"fbu", ClassBranch, FmtBranch, ccUseF, false},
	FBO:  {"fbo", ClassBranch, FmtBranch, ccUseF, false},

	CALL: {"call", ClassCall, FmtCall, ccNone, false},
	JMPL: {"jmpl", ClassCall, FmtJmpl, ccNone, false},
	RET:  {"ret", ClassCall, FmtNone, ccNone, false},
	RETL: {"retl", ClassCall, FmtNone, ccNone, false},

	SAVE:    {"save", ClassWindow, Fmt3, ccNone, false},
	RESTORE: {"restore", ClassWindow, Fmt3, ccNone, false},
}

// String returns the assembly mnemonic.
func (op Opcode) String() string {
	if int(op) < NumOpcodes {
		return opTable[op].name
	}
	return fmt.Sprintf("op?%d", uint8(op))
}

// Class returns the instruction class of op.
func (op Opcode) Class() Class { return opTable[op].class }

// Format returns the operand format of op.
func (op Opcode) Format() Format { return opTable[op].fmt }

// Pair reports whether op reads/writes an even/odd register pair
// (double-word memory ops and double-precision FP arithmetic).
func (op Opcode) Pair() bool { return opTable[op].pair }

// DefsICC reports whether op writes the integer condition codes.
func (op Opcode) DefsICC() bool { return opTable[op].cc == ccDefI }

// UsesICC reports whether op reads the integer condition codes.
func (op Opcode) UsesICC() bool { return opTable[op].cc == ccUseI }

// DefsFCC reports whether op writes the FP condition codes.
func (op Opcode) DefsFCC() bool { return opTable[op].cc == ccDefF }

// UsesFCC reports whether op reads the FP condition codes.
func (op Opcode) UsesFCC() bool { return opTable[op].cc == ccUseF }

// IsLoad reports whether op is a memory load.
func (op Opcode) IsLoad() bool { return op.Class() == ClassLoad }

// IsStore reports whether op is a memory store.
func (op Opcode) IsStore() bool { return op.Class() == ClassStore }

// IsBranch reports whether op is a (conditional or unconditional) branch.
func (op Opcode) IsBranch() bool { return op.Class() == ClassBranch }

// IsCTI reports whether op is a control-transfer instruction (it has a
// delay slot and ends a basic block).
func (op Opcode) IsCTI() bool { return op.Class().IsCTI() }

// EndsBlock reports whether op terminates a basic block: CTIs (branch,
// call, jmpl, ret) and the register-window instructions SAVE/RESTORE,
// which rename the integer register file (Section 2 of the paper).
func (op Opcode) EndsBlock() bool { return op.IsCTI() || op.Class() == ClassWindow }

// opByName maps mnemonics back to opcodes (for the assembler).
var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for op := 0; op < NumOpcodes; op++ {
		m[opTable[op].name] = Opcode(op)
	}
	return m
}()

// OpcodeByName returns the opcode for an assembly mnemonic.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opByName[name]
	return op, ok
}
