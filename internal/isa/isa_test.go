package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func refs(rs []ResRef) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.String()
	}
	return out
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRegNames(t *testing.T) {
	cases := []struct {
		r    Reg
		name string
	}{
		{G0, "%g0"}, {O7, "%o7"}, {SP, "%sp"}, {FP, "%fp"},
		{L3, "%l3"}, {I5, "%i5"}, {F(0), "%f0"}, {F(31), "%f31"},
		{ICC, "%icc"}, {FCC, "%fcc"}, {Y, "%y"},
	}
	for _, c := range cases {
		if c.r.String() != c.name {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, c.r.String(), c.name)
		}
		got, err := ParseReg(c.name)
		if err != nil || got != c.r {
			t.Errorf("ParseReg(%q) = %v, %v; want %v", c.name, got, err, c.r)
		}
	}
}

func TestParseRegAliases(t *testing.T) {
	if r, err := ParseReg("%o6"); err != nil || r != SP {
		t.Error("o6 should parse as sp")
	}
	if r, err := ParseReg("%i6"); err != nil || r != FP {
		t.Error("i6 should parse as fp")
	}
	if r, err := ParseReg("%r17"); err != nil || r != L1 {
		t.Errorf("%%r17 should parse as %%l1, got %v %v", r, err)
	}
	if _, err := ParseReg("%f32"); err == nil {
		t.Error("f32 should not parse")
	}
	if _, err := ParseReg("bogus"); err == nil {
		t.Error("bogus register should not parse")
	}
}

func TestParseRegRoundTripQuick(t *testing.T) {
	f := func(n uint8) bool {
		r := Reg(n)
		if r == RegNone || (r > Y && r != RegNone) {
			return true // not a nameable register
		}
		if r >= 64 && r != ICC && r != FCC && r != Y {
			return true
		}
		got, err := ParseReg(r.String())
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegPredicates(t *testing.T) {
	if !G5.IsInt() || G5.IsFP() || G5.IsCC() {
		t.Error("G5 predicates wrong")
	}
	if F(4).IsInt() || !F(4).IsFP() {
		t.Error("F4 predicates wrong")
	}
	if !ICC.IsCC() || !FCC.IsCC() || G1.IsCC() {
		t.Error("CC predicates wrong")
	}
	if F(7).FPNum() != 7 {
		t.Error("FPNum wrong")
	}
}

func TestOpcodeTableComplete(t *testing.T) {
	for op := 0; op < NumOpcodes; op++ {
		if opTable[op].name == "" {
			t.Errorf("opcode %d has no table entry", op)
		}
	}
	seen := map[string]Opcode{}
	for op := 0; op < NumOpcodes; op++ {
		n := opTable[op].name
		if prev, dup := seen[n]; dup {
			t.Errorf("mnemonic %q used by both %d and %d", n, prev, op)
		}
		seen[n] = Opcode(op)
	}
}

func TestOpcodeByName(t *testing.T) {
	for op := 0; op < NumOpcodes; op++ {
		got, ok := OpcodeByName(Opcode(op).String())
		if !ok || got != Opcode(op) {
			t.Errorf("OpcodeByName(%q) = %v, %v", Opcode(op).String(), got, ok)
		}
	}
	if _, ok := OpcodeByName("frobnicate"); ok {
		t.Error("unknown mnemonic resolved")
	}
}

func TestClassAssignments(t *testing.T) {
	cases := []struct {
		op Opcode
		c  Class
	}{
		{ADD, ClassIU}, {SMUL, ClassMul}, {LD, ClassLoad}, {ST, ClassStore},
		{FADDD, ClassFPA}, {FMULD, ClassFPM}, {FDIVD, ClassFPD}, {FSQRTD, ClassFPD},
		{BNE, ClassBranch}, {CALL, ClassCall}, {SAVE, ClassWindow}, {NOP, ClassMisc},
	}
	for _, c := range cases {
		if c.op.Class() != c.c {
			t.Errorf("%v.Class() = %v, want %v", c.op, c.op.Class(), c.c)
		}
	}
	if !ClassFPD.IsFP() || ClassIU.IsFP() {
		t.Error("Class.IsFP wrong")
	}
	if !ClassBranch.IsCTI() || !ClassCall.IsCTI() || ClassLoad.IsCTI() {
		t.Error("Class.IsCTI wrong")
	}
}

func TestEndsBlock(t *testing.T) {
	for _, op := range []Opcode{BA, BNE, FBE, CALL, JMPL, RET, RETL, SAVE, RESTORE} {
		if !op.EndsBlock() {
			t.Errorf("%v should end a block", op)
		}
	}
	for _, op := range []Opcode{ADD, LD, ST, FDIVD, NOP, CMP} {
		if op.EndsBlock() {
			t.Errorf("%v should not end a block", op)
		}
	}
}

func TestDefUseALU(t *testing.T) {
	in := RRR(ADD, G1, G2, G3)
	if !eqStrings(refs(in.Uses()), []string{"%g1", "%g2"}) {
		t.Errorf("add uses = %v", refs(in.Uses()))
	}
	if !eqStrings(refs(in.Defs()), []string{"%g3"}) {
		t.Errorf("add defs = %v", refs(in.Defs()))
	}
}

func TestDefUseImmediate(t *testing.T) {
	in := RIR(ADD, G1, 4, G3)
	if !eqStrings(refs(in.Uses()), []string{"%g1"}) {
		t.Errorf("add-imm uses = %v", refs(in.Uses()))
	}
}

func TestG0NeverAResource(t *testing.T) {
	in := RRR(ADD, G0, G0, G0)
	if len(in.Uses()) != 0 || len(in.Defs()) != 0 {
		t.Errorf("adds through %%g0 should have no resources: uses=%v defs=%v",
			refs(in.Uses()), refs(in.Defs()))
	}
	cmp := Cmp(G1, G2) // rd is %g0 but cc is defined
	if !eqStrings(refs(cmp.Defs()), []string{"%icc"}) {
		t.Errorf("cmp defs = %v", refs(cmp.Defs()))
	}
}

func TestDefUseLoad(t *testing.T) {
	in := Load(LD, FP, -8, O0)
	uses := refs(in.Uses())
	if !eqStrings(uses, []string{"%fp", "mem[%fp-8]"}) {
		t.Errorf("ld uses = %v", uses)
	}
	if !eqStrings(refs(in.Defs()), []string{"%o0"}) {
		t.Errorf("ld defs = %v", refs(in.Defs()))
	}
}

func TestDefUseStore(t *testing.T) {
	in := Store(ST, O0, FP, -8)
	if !eqStrings(refs(in.Uses()), []string{"%o0", "%fp"}) {
		t.Errorf("st uses = %v", refs(in.Uses()))
	}
	if !eqStrings(refs(in.Defs()), []string{"mem[%fp-8]"}) {
		t.Errorf("st defs = %v", refs(in.Defs()))
	}
}

func TestDefUsePairLoad(t *testing.T) {
	in := Load(LDDF, SP, 16, F(2))
	defs := refs(in.Defs())
	if !eqStrings(defs, []string{"%f2", "%f3"}) {
		t.Errorf("lddf defs = %v; pair must define both halves", defs)
	}
	if !in.PairSecondDef(in.Defs()[1]) {
		t.Error("PairSecondDef should identify f3")
	}
	if in.PairSecondDef(in.Defs()[0]) {
		t.Error("PairSecondDef misidentifies f2")
	}
}

func TestDefUsePairArith(t *testing.T) {
	in := Fp3(FADDD, F(0), F(2), F(4))
	uses := refs(in.Uses())
	if !eqStrings(uses, []string{"%f0", "%f1", "%f2", "%f3"}) {
		t.Errorf("faddd uses = %v", uses)
	}
	if !eqStrings(refs(in.Defs()), []string{"%f4", "%f5"}) {
		t.Errorf("faddd defs = %v", refs(in.Defs()))
	}
	// Pair halves share an operand slot; distinct operands get distinct slots.
	u := in.Uses()
	if u[0].Slot != u[1].Slot || u[2].Slot != u[3].Slot || u[0].Slot == u[2].Slot {
		t.Errorf("faddd slots = %v %v %v %v", u[0].Slot, u[1].Slot, u[2].Slot, u[3].Slot)
	}
}

func TestDefUseCondCodes(t *testing.T) {
	sub := RRR(SUBCC, O0, O1, O2)
	if !eqStrings(refs(sub.Defs()), []string{"%o2", "%icc"}) {
		t.Errorf("subcc defs = %v", refs(sub.Defs()))
	}
	br := Branch(BNE, "L1")
	if !eqStrings(refs(br.Uses()), []string{"%icc"}) {
		t.Errorf("bne uses = %v", refs(br.Uses()))
	}
	fc := Fcmp(FCMPD, F(0), F(2))
	if !eqStrings(refs(fc.Defs()), []string{"%fcc"}) {
		t.Errorf("fcmpd defs = %v", refs(fc.Defs()))
	}
	fb := Branch(FBL, "L2")
	if !eqStrings(refs(fb.Uses()), []string{"%fcc"}) {
		t.Errorf("fbl uses = %v", refs(fb.Uses()))
	}
}

func TestDefUseCall(t *testing.T) {
	c := Call("_printf")
	if !eqStrings(refs(c.Defs()), []string{"%o7"}) {
		t.Errorf("call defs = %v", refs(c.Defs()))
	}
	r := Ret()
	if !eqStrings(refs(r.Uses()), []string{"%i7"}) {
		t.Errorf("ret uses = %v", refs(r.Uses()))
	}
}

func TestDefUseMulY(t *testing.T) {
	m := RRR(SMUL, O0, O1, O2)
	if !eqStrings(refs(m.Defs()), []string{"%o2", "%y"}) {
		t.Errorf("smul defs = %v", refs(m.Defs()))
	}
	rd := Inst{Op: RDY, RS1: RegNone, RS2: RegNone, RD: O3, Mem: NoMem}
	if !eqStrings(refs(rd.Uses()), []string{"%y"}) {
		t.Errorf("rd %%y uses = %v", refs(rd.Uses()))
	}
	if !eqStrings(refs(rd.Defs()), []string{"%o3"}) {
		t.Errorf("rd %%y defs = %v", refs(rd.Defs()))
	}
}

func TestMemExprKeyUniqueness(t *testing.T) {
	a := MemExpr{Base: FP, Index: RegNone, Offset: -8}
	b := MemExpr{Base: FP, Index: RegNone, Offset: -12}
	c := MemExpr{Base: SP, Index: RegNone, Offset: -8}
	d := MemExpr{Base: FP, Index: RegNone, Offset: -8, Sym: "_x"}
	keys := map[string]bool{a.Key(): true, b.Key(): true, c.Key(): true, d.Key(): true}
	if len(keys) != 4 {
		t.Errorf("expected 4 distinct keys, got %d", len(keys))
	}
	a2 := MemExpr{Base: FP, Index: RegNone, Offset: -8}
	if a.Key() != a2.Key() {
		t.Error("identical expressions must share a key")
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{RRR(ADD, G1, G2, G3), "add %g1, %g2, %g3"},
		{RIR(SUB, O0, 1, O0), "sub %o0, 1, %o0"},
		{Load(LD, FP, -4, L0), "ld [%fp-4], %l0"},
		{LoadSym(LD, "_x", G0, 0, L1), "ld [_x], %l1"},
		{Store(STDF, F(4), SP, 96), "stdf %f4, [%sp+96]"},
		{Branch(BNE, "L7"), "bne L7"},
		{BranchA(BE, "L8"), "be,a L8"},
		{Call("_foo"), "call _foo"},
		{Fp3(FDIVD, F(0), F(2), F(4)), "fdivd %f0, %f2, %f4"},
		{Fcmp(FCMPS, F(1), F(2)), "fcmps %f1, %f2"},
		{Nop(), "nop"},
		{Sethi(1024, G1), "sethi %hi(1024), %g1"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestLoadSymStringHasSym(t *testing.T) {
	in := LoadSym(LD, "_errno", G0, 0, O0)
	// %g0 base is suppressed as a resource but printed storage must
	// still identify the symbol.
	if got := in.Mem.String(); got != "[_errno]" {
		t.Errorf("Mem.String() = %q", got)
	}
	if len(in.Uses()) != 1 || in.Uses()[0].Kind != RMem {
		t.Errorf("symbol load uses = %v", refs(in.Uses()))
	}
}

func TestConstructorHelpers(t *testing.T) {
	if in := MovI(5, O0); in.Op != MOV || in.Imm != 5 || in.RD != O0 || !in.HasImm {
		t.Errorf("MovI: %+v", in)
	}
	if in := MovR(G2, O0); in.RS2 != G2 || in.HasImm {
		t.Errorf("MovR: %+v", in)
	}
	if in := StoreSym(ST, O0, "_x", G0, 4); in.Mem.Sym != "_x" || in.Mem.Offset != 4 {
		t.Errorf("StoreSym: %+v", in)
	}
	if in := Fp2(FMOVS, F(1), F(2)); in.RS2 != F(1) || in.RD != F(2) {
		t.Errorf("Fp2: %+v", in)
	}
	if in := CmpI(O0, 9); in.Op != CMP || in.Imm != 9 || in.RD != G0 {
		t.Errorf("CmpI: %+v", in)
	}
	if in := SaveI(-96); in.Op != SAVE || in.Imm != -96 || in.RS1 != SP {
		t.Errorf("SaveI: %+v", in)
	}
	if in := Restore(); in.Op != RESTORE {
		t.Errorf("Restore: %+v", in)
	}
	mi := MovI(1, O0)
	if mi.Class() != ClassIU {
		t.Error("Inst.Class wrong")
	}
}

func TestMemExprHelpers(t *testing.T) {
	m := MemExpr{Base: FP, Index: RegNone, Offset: -8}
	if m.HasIndex() {
		t.Error("HasIndex on no-index expr")
	}
	m.Index = O1
	if !m.HasIndex() {
		t.Error("HasIndex missed index")
	}
	w := MemExpr{Base: SP, Index: RegNone, Offset: 64}.wordAfter()
	if w.Offset != 68 || w.Base != SP {
		t.Errorf("wordAfter: %+v", w)
	}
}

func TestClassStringAll(t *testing.T) {
	for c := 0; c < NumClasses; c++ {
		if s := Class(c).String(); s == "" || strings.HasPrefix(s, "class?") {
			t.Errorf("class %d renders %q", c, s)
		}
	}
	if Class(200).String() == "" {
		t.Error("out-of-range class should still render")
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("F(32)", func() { F(32) })
	mustPanic("F(-1)", func() { F(-1) })
	mustPanic("R(32)", func() { R(32) })
	mustPanic("FPNum on int reg", func() { G1.FPNum() })
}

func TestRegNoneString(t *testing.T) {
	if RegNone.String() != "%none" {
		t.Errorf("RegNone renders %q", RegNone.String())
	}
	if Reg(200).String() == "" {
		t.Error("garbage register should still render")
	}
	if Opcode(250).String() == "" {
		t.Error("garbage opcode should still render")
	}
}

func TestPairPredicate(t *testing.T) {
	if !LDD.Pair() || !FADDD.Pair() || ADD.Pair() || LDF.Pair() {
		t.Error("Pair() table wrong")
	}
	// PairSecondDef on non-register defs is false.
	st := Store(STDF, F(4), SP, 64)
	for _, d := range st.Defs() {
		if st.PairSecondDef(d) {
			t.Error("memory def misidentified as pair half")
		}
	}
}

func TestUsesNoAllocReuse(t *testing.T) {
	in := RRR(ADD, G1, G2, G3)
	buf := make([]ResRef, 0, 8)
	out := in.AppendUses(buf)
	if len(out) != 2 || cap(out) != 8 {
		t.Errorf("AppendUses should reuse the provided buffer")
	}
}
