package isa

// Constructors for building instructions programmatically. These are
// used by the synthetic benchmark generator, the examples and the test
// suites; the assembler in package asm produces the same Inst values
// from text.

// RRR builds a three-register ALU/FP instruction: op rs1, rs2, rd.
func RRR(op Opcode, rs1, rs2, rd Reg) Inst {
	return Inst{Op: op, RS1: rs1, RS2: rs2, RD: rd, Mem: NoMem}
}

// RIR builds a register/immediate ALU instruction: op rs1, imm, rd.
func RIR(op Opcode, rs1 Reg, imm int32, rd Reg) Inst {
	return Inst{Op: op, RS1: rs1, RS2: RegNone, Imm: imm, HasImm: true, RD: rd, Mem: NoMem}
}

// MovI builds mov imm, rd.
func MovI(imm int32, rd Reg) Inst {
	return Inst{Op: MOV, RS1: G0, RS2: RegNone, Imm: imm, HasImm: true, RD: rd, Mem: NoMem}
}

// MovR builds mov rs, rd.
func MovR(rs, rd Reg) Inst {
	return Inst{Op: MOV, RS1: G0, RS2: rs, RD: rd, Mem: NoMem}
}

// Sethi builds sethi %hi(imm), rd.
func Sethi(imm int32, rd Reg) Inst {
	return Inst{Op: SETHI, RS1: RegNone, RS2: RegNone, Imm: imm, HasImm: true, RD: rd, Mem: NoMem}
}

// Load builds a load: op [base+offset], rd.
func Load(op Opcode, base Reg, offset int32, rd Reg) Inst {
	return Inst{Op: op, RS1: RegNone, RS2: RegNone, RD: rd,
		Mem: MemExpr{Base: base, Index: RegNone, Offset: offset}}
}

// LoadSym builds a load from static storage: op [sym+base+offset], rd.
func LoadSym(op Opcode, sym string, base Reg, offset int32, rd Reg) Inst {
	in := Load(op, base, offset, rd)
	in.Mem.Sym = sym
	return in
}

// Store builds a store: op rd, [base+offset].
func Store(op Opcode, rd, base Reg, offset int32) Inst {
	return Inst{Op: op, RS1: RegNone, RS2: RegNone, RD: rd,
		Mem: MemExpr{Base: base, Index: RegNone, Offset: offset}}
}

// StoreSym builds a store to static storage: op rd, [sym+base+offset].
func StoreSym(op Opcode, rd Reg, sym string, base Reg, offset int32) Inst {
	in := Store(op, rd, base, offset)
	in.Mem.Sym = sym
	return in
}

// Branch builds a conditional or unconditional branch to target.
func Branch(op Opcode, target string) Inst {
	return Inst{Op: op, RS1: RegNone, RS2: RegNone, RD: RegNone, Target: target, Mem: NoMem}
}

// BranchA builds an annulled branch (",a") to target.
func BranchA(op Opcode, target string) Inst {
	in := Branch(op, target)
	in.Annul = true
	return in
}

// Call builds call target.
func Call(target string) Inst {
	return Inst{Op: CALL, RS1: RegNone, RS2: RegNone, RD: RegNone, Target: target, Mem: NoMem}
}

// Fp2 builds a two-operand FP instruction: op fs2, fd.
func Fp2(op Opcode, fs2, fd Reg) Inst {
	return Inst{Op: op, RS1: RegNone, RS2: fs2, RD: fd, Mem: NoMem}
}

// Fp3 builds a three-operand FP instruction: op fs1, fs2, fd.
func Fp3(op Opcode, fs1, fs2, fd Reg) Inst {
	return Inst{Op: op, RS1: fs1, RS2: fs2, RD: fd, Mem: NoMem}
}

// Fcmp builds fcmps/fcmpd fs1, fs2.
func Fcmp(op Opcode, fs1, fs2 Reg) Inst {
	return Inst{Op: op, RS1: fs1, RS2: fs2, RD: RegNone, Mem: NoMem}
}

// Cmp builds cmp rs1, rs2.
func Cmp(rs1, rs2 Reg) Inst {
	return Inst{Op: CMP, RS1: rs1, RS2: rs2, RD: G0, Mem: NoMem}
}

// CmpI builds cmp rs1, imm.
func CmpI(rs1 Reg, imm int32) Inst {
	return Inst{Op: CMP, RS1: rs1, RS2: RegNone, Imm: imm, HasImm: true, RD: G0, Mem: NoMem}
}

// Nop builds a nop.
func Nop() Inst {
	return Inst{Op: NOP, RS1: RegNone, RS2: RegNone, RD: RegNone, Mem: NoMem}
}

// SaveI builds save %sp, imm, %sp (standard prologue form).
func SaveI(imm int32) Inst {
	return Inst{Op: SAVE, RS1: SP, RS2: RegNone, Imm: imm, HasImm: true, RD: SP, Mem: NoMem}
}

// Restore builds restore %g0, %g0, %g0.
func Restore() Inst {
	return Inst{Op: RESTORE, RS1: G0, RS2: G0, RD: G0, Mem: NoMem}
}

// Ret builds the synthetic ret.
func Ret() Inst {
	return Inst{Op: RET, RS1: RegNone, RS2: RegNone, RD: RegNone, Mem: NoMem}
}
