// Package isa defines a SPARC-like instruction set sufficient to
// reproduce the instruction-scheduling study of Smotherman et al.
// (MICRO-24, 1991). The paper's benchmarks were SPARC assembly emitted
// by SunOS compilers; this package models every ISA feature the paper's
// dependence analysis relies on:
//
//   - integer and floating-point register files, with register *pairs*
//     for double-word loads/stores and double-precision arithmetic
//     (the source of per-child RAW-delay skew in Section 2),
//   - condition codes (%icc, %fcc) as schedulable resources,
//   - symbolic memory expressions (base register + offset) on loads and
//     stores, the unit of the paper's memory disambiguation,
//   - control-transfer instructions with annullable delay slots, and
//     SAVE/RESTORE register-window instructions that end basic blocks.
//
// The package is purely representational: instruction latencies and
// per-arc dependence delays live in package machine, and resource
// interning lives in package resource.
package isa

import "fmt"

// Reg names an architectural register. Integer registers occupy 0..31
// (%g0..%g7, %o0..%o7, %l0..%l7, %i0..%i7), floating-point registers
// 32..63 (%f0..%f31), and the special resources %icc, %fcc and %y
// follow. RegNone marks an unused register field.
type Reg uint8

const (
	// Integer registers.
	G0 Reg = iota
	G1
	G2
	G3
	G4
	G5
	G6
	G7
	O0
	O1
	O2
	O3
	O4
	O5
	SP // %o6, the stack pointer
	O7
	L0
	L1
	L2
	L3
	L4
	L5
	L6
	L7
	I0
	I1
	I2
	I3
	I4
	I5
	FP // %i6, the frame pointer
	I7
)

// F0 is the first floating-point register; %f0..%f31 occupy 32..63.
const F0 Reg = 32

const (
	// NumIntRegs is the count of integer registers.
	NumIntRegs = 32
	// NumFPRegs is the count of floating-point registers.
	NumFPRegs = 32

	// ICC is the integer condition-code register.
	ICC Reg = 64
	// FCC is the floating-point condition-code register.
	FCC Reg = 65
	// Y is the multiply/divide Y register.
	Y Reg = 66

	// RegNone marks an absent register operand.
	RegNone Reg = 255
)

// F returns the floating-point register %f<n>.
func F(n int) Reg {
	if n < 0 || n >= NumFPRegs {
		panic(fmt.Sprintf("isa: bad fp register number %d", n))
	}
	return Reg(32 + n)
}

// R returns the integer register %r<n> in the flat 0..31 numbering.
func R(n int) Reg {
	if n < 0 || n >= NumIntRegs {
		panic(fmt.Sprintf("isa: bad int register number %d", n))
	}
	return Reg(n)
}

// IsInt reports whether r is an integer register.
func (r Reg) IsInt() bool { return r < 32 }

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r >= 32 && r < 64 }

// IsCC reports whether r is a condition-code register.
func (r Reg) IsCC() bool { return r == ICC || r == FCC }

// FPNum returns n for %f<n>. It panics if r is not a floating-point register.
func (r Reg) FPNum() int {
	if !r.IsFP() {
		panic("isa: FPNum on non-FP register")
	}
	return int(r - 32)
}

var intRegNames = [32]string{
	"%g0", "%g1", "%g2", "%g3", "%g4", "%g5", "%g6", "%g7",
	"%o0", "%o1", "%o2", "%o3", "%o4", "%o5", "%sp", "%o7",
	"%l0", "%l1", "%l2", "%l3", "%l4", "%l5", "%l6", "%l7",
	"%i0", "%i1", "%i2", "%i3", "%i4", "%i5", "%fp", "%i7",
}

// String returns the assembly name of the register.
func (r Reg) String() string {
	switch {
	case r < 32:
		return intRegNames[r]
	case r.IsFP():
		return fmt.Sprintf("%%f%d", r-32)
	case r == ICC:
		return "%icc"
	case r == FCC:
		return "%fcc"
	case r == Y:
		return "%y"
	case r == RegNone:
		return "%none"
	}
	return fmt.Sprintf("%%r?%d", uint8(r))
}

// ParseReg parses an assembly register name ("%o3", "%f12", "%sp"...).
func ParseReg(s string) (Reg, error) {
	for i, n := range intRegNames {
		if s == n {
			return Reg(i), nil
		}
	}
	switch s {
	case "%o6":
		return SP, nil
	case "%i6":
		return FP, nil
	case "%icc":
		return ICC, nil
	case "%fcc":
		return FCC, nil
	case "%y":
		return Y, nil
	}
	var n int
	if _, err := fmt.Sscanf(s, "%%f%d", &n); err == nil && n >= 0 && n < 32 && fmt.Sprintf("%%f%d", n) == s {
		return F(n), nil
	}
	if _, err := fmt.Sscanf(s, "%%r%d", &n); err == nil && n >= 0 && n < 32 && fmt.Sprintf("%%r%d", n) == s {
		return R(n), nil
	}
	return RegNone, fmt.Errorf("isa: unknown register %q", s)
}

// Class is a coarse instruction class. It drives function-unit
// assignment (structural hazards, the paper's "busy times for floating
// point function units" heuristic) and the superscalar "alternate type"
// heuristic.
type Class uint8

const (
	ClassIU     Class = iota // integer ALU
	ClassMul                 // integer multiply/divide (multi-cycle)
	ClassLoad                // memory load
	ClassStore               // memory store
	ClassFPA                 // FP add/sub/compare/convert/move
	ClassFPM                 // FP multiply
	ClassFPD                 // FP divide / sqrt (long, non-pipelined on FPU model)
	ClassBranch              // conditional and unconditional branches
	ClassCall                // call / jmpl / ret
	ClassWindow              // SAVE / RESTORE
	ClassMisc                // nop and friends

	// NumClasses is the count of instruction classes.
	NumClasses = int(ClassMisc) + 1
)

var classNames = [NumClasses]string{
	"IU", "MUL", "LD", "ST", "FPA", "FPM", "FPD", "BR", "CALL", "WIN", "MISC",
}

// String returns a short class mnemonic.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class?%d", uint8(c))
}

// IsFP reports whether the class executes on a floating-point unit.
func (c Class) IsFP() bool { return c == ClassFPA || c == ClassFPM || c == ClassFPD }

// IsCTI reports whether the class is a control-transfer instruction.
func (c Class) IsCTI() bool { return c == ClassBranch || c == ClassCall }
