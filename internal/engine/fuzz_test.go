package engine

import (
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/synth"
	"daginsched/internal/testgen"
)

// The fuzz target drives arbitrary-but-well-formed instruction
// sequences through both construction pipelines and holds them to the
// engine's invariants: every schedule must pass the output gate, the
// scoreboard simulator must co-sign its timing, and the n²-direct
// pipeline must agree byte-for-byte with table building (the adaptive
// identity the engine's dispatch rests on).
//
// Fuzz bytes decode 6 bytes per instruction — opcode, two sources, a
// destination, a flag byte and an offset byte — with every register
// clamped into its format's legal range and control transfers allowed
// only in the final slot, so the fuzzer explores the scheduling
// pipeline's state space instead of tripping input-contract asserts.

// fuzzInstBytes is the per-instruction stride of the fuzz encoding.
const fuzzInstBytes = 6

// fuzzMaxInsts bounds one fuzz input so a single exec stays fast.
const fuzzMaxInsts = 256

// decodeInsts turns fuzz bytes into a well-formed instruction
// sequence.
func decodeInsts(data []byte, max int) []isa.Inst {
	n := len(data) / fuzzInstBytes
	if n > max {
		n = max
	}
	insts := make([]isa.Inst, 0, n)
	for i := 0; i < n; i++ {
		q := data[i*fuzzInstBytes : (i+1)*fuzzInstBytes]
		op := isa.Opcode(int(q[0]) % isa.NumOpcodes)
		if op.EndsBlock() && i != n-1 {
			// Control transfers and window ops end a block; mid-block
			// they would violate the partitioner's output contract.
			op = isa.ADD
		}
		intR := func(b byte) isa.Reg { return isa.R(int(b) % isa.NumIntRegs) }
		intPair := func(b byte) isa.Reg { return isa.R(int(b) % (isa.NumIntRegs / 2) * 2) }
		fpR := func(b byte) isa.Reg {
			if op.Pair() {
				return isa.F(int(b) % (isa.NumFPRegs / 2) * 2)
			}
			return isa.F(int(b) % isa.NumFPRegs)
		}
		in := isa.Inst{Op: op, Index: i}
		switch op.Format() {
		case isa.Fmt3:
			in.RS1, in.RD = intR(q[1]), intR(q[3])
			if q[4]&1 != 0 {
				in.HasImm, in.Imm = true, int32(int8(q[2]))
			} else {
				in.RS2 = intR(q[2])
			}
		case isa.FmtSethi:
			in.HasImm, in.Imm = true, int32(q[2])<<10
			in.RD = intR(q[3])
		case isa.FmtLoad, isa.FmtStore:
			switch op {
			case isa.LDF, isa.STF, isa.LDDF, isa.STDF:
				in.RD = fpR(q[3])
			case isa.LDD, isa.STD:
				in.RD = intPair(q[3])
			default:
				in.RD = intR(q[3])
			}
			in.Mem = isa.MemExpr{Base: intR(q[1]), Index: isa.RegNone}
			if q[4]&2 != 0 {
				in.Mem.Index = intR(q[2])
			} else {
				in.Mem.Offset = int32(int8(q[5])) * 4
			}
		case isa.FmtBranch:
			in.Target = "L"
			in.Annul = q[4]&4 != 0
		case isa.FmtCall:
			in.Target = "f"
		case isa.FmtJmpl:
			in.RS1, in.RD = intR(q[1]), intR(q[3])
			in.HasImm, in.Imm = true, int32(int8(q[2]))
		case isa.FmtFp2:
			in.RS2, in.RD = fpR(q[2]), fpR(q[3])
		case isa.FmtFp3:
			in.RS1, in.RS2, in.RD = fpR(q[1]), fpR(q[2]), fpR(q[3])
		case isa.FmtFcmp:
			in.RS1, in.RS2 = fpR(q[1]), fpR(q[2])
		case isa.FmtRdY:
			in.RD = intR(q[3])
		default: // FmtNone
		}
		insts = append(insts, in)
	}
	return insts
}

// encodeInsts is the seeding inverse of decodeInsts: it renders a real
// instruction sequence into the fuzz byte layout so the corpus starts
// from the synthetic benchmark distributions rather than noise.
func encodeInsts(insts []isa.Inst) []byte {
	out := make([]byte, 0, len(insts)*fuzzInstBytes)
	for i := range insts {
		in := &insts[i]
		var flags, off byte
		a, b, c := byte(in.RS1), byte(in.RS2), byte(in.RD)
		if in.HasImm {
			flags |= 1
			b = byte(in.Imm)
		}
		if in.Annul {
			flags |= 4
		}
		switch in.Op.Format() {
		case isa.FmtLoad, isa.FmtStore:
			a = byte(in.Mem.Base)
			if in.Mem.Index != isa.RegNone {
				flags |= 2
				b = byte(in.Mem.Index)
			} else {
				off = byte(in.Mem.Offset / 4)
			}
		case isa.FmtFp2, isa.FmtFp3, isa.FmtFcmp:
			// FP registers encode as their number within the bank.
			a, b, c = byte(in.RS1)-32, byte(in.RS2)-32, byte(in.RD)-32
		}
		out = append(out, byte(in.Op), a, b, c, flags, off)
	}
	return out
}

func FuzzBuildSchedule(f *testing.F) {
	for _, p := range synth.Profiles() {
		blocks := p.Generate()
		for i := 0; i < len(blocks) && i < 3; i++ {
			f.Add(encodeInsts(blocks[i].Insts))
		}
	}
	f.Add(encodeInsts(testgen.Block(1, 64)))
	f.Add(encodeInsts(testgen.Block(2, 3)))
	f.Add([]byte{})

	m := machine.Super2()
	cfg := Config{Workers: 1, Model: m}
	if err := (&cfg).validate(); err != nil {
		f.Fatal(err)
	}
	wTable := newWorker(&cfg)
	wN2 := newWorker(&cfg)

	f.Fuzz(func(t *testing.T, data []byte) {
		b := &block.Block{Name: "fuzz", Insts: decodeInsts(data, fuzzMaxInsts)}
		n := b.Len()

		r1, d1 := wTable.schedule(b, m)
		if !wTable.gate(d1, r1, n) {
			t.Fatal("table schedule failed the output gate")
		}
		if err := verify(b, r1, m, wTable.rt); err != nil {
			t.Fatalf("simulator disagrees with table schedule: %v", err)
		}

		r2, d2, _ := wN2.scheduleN2(b, m)
		if !wN2.gate(d2, r2, n) {
			t.Fatal("n² schedule failed the output gate")
		}
		if r2.Cycles != r1.Cycles {
			t.Fatalf("n² pipeline: %d cycles, table pipeline: %d", r2.Cycles, r1.Cycles)
		}
		for k := range r1.Order {
			if r2.Order[k] != r1.Order[k] {
				t.Fatalf("position %d: n² schedules node %d, table schedules node %d",
					k, r2.Order[k], r1.Order[k])
			}
		}
		if err := verify(b, r2, m, wN2.rt); err != nil {
			t.Fatalf("simulator disagrees with n² schedule: %v", err)
		}
	})
}
