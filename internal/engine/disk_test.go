package engine

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/diskcache"
	"daginsched/internal/fault"
	"daginsched/internal/machine"
)

// diskPath returns a per-test cache-file path under t's temp dir.
func diskPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "sched.cache")
}

// closeEngine closes e, failing the test on error.
func closeEngine(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// distinctBlocks counts content-distinct blocks: duplicates (the
// zero-length blocks testBlocks emits are all identical) are served
// from L1 after the first occurrence's promote-on-hit, so warm-run
// disk hits equal the distinct count, not the corpus length.
func distinctBlocks(blocks []*block.Block) int {
	seen := make(map[uint64]bool, len(blocks))
	for _, b := range blocks {
		seen[BlockKey(b.Insts)] = true
	}
	return len(seen)
}

// TestDiskWarmStart is the tentpole's correctness gate: one engine
// populates the cache file, a second engine — a fresh process as far
// as the tiers are concerned, with an empty L1 — reopens it and must
// serve every block from disk with schedules byte-identical to a
// cache-disabled run of the same corpus.
func TestDiskWarmStart(t *testing.T) {
	m := machine.Super2()
	blocks := testBlocks(t, 40)
	path := diskPath(t)

	ref, err := New(Config{Workers: 4, Model: m, KeepOrders: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(blocks)
	if err != nil {
		t.Fatal(err)
	}

	cold, err := New(Config{Workers: 4, Model: m, KeepOrders: true, Verify: true, CachePath: path})
	if err != nil {
		t.Fatal(err)
	}
	cres, err := cold.Run(blocks)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if cres.Stats.DiskHits != 0 {
		t.Errorf("cold run reports %d disk hits from an empty file", cres.Stats.DiskHits)
	}
	if cres.Stats.CacheMisses == 0 {
		t.Fatal("cold run reports no cache misses; the corpus cannot all be duplicates")
	}
	closeEngine(t, cold) // drains the write-behind queue

	warm, err := New(Config{Workers: 4, Model: m, KeepOrders: true, Verify: true, CachePath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer closeEngine(t, warm)
	wres, err := warm.Run(blocks)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	distinct := int64(distinctBlocks(blocks))
	if wres.Stats.DiskHits != distinct {
		t.Errorf("warm run: %d disk hits, want %d (misses %d, l1 hits %d)",
			wres.Stats.DiskHits, distinct, wres.Stats.CacheMisses, wres.Stats.CacheHits)
	}
	if wres.Stats.CacheMisses != 0 {
		t.Errorf("warm run: %d cache misses, want 0", wres.Stats.CacheMisses)
	}
	if wres.Stats.CacheHitRate != 1.0 {
		t.Errorf("warm run: hit rate %v, want 1.0", wres.Stats.CacheHitRate)
	}
	requireSameOrders(t, want, wres)

	// Promote-on-hit: a second warm pass finds everything in L1.
	wres2, err := warm.Run(blocks)
	if err != nil {
		t.Fatalf("second warm run: %v", err)
	}
	if wres2.Stats.CacheHits != int64(len(blocks)) {
		t.Errorf("second warm run: %d L1 hits, want %d (disk hits %d)",
			wres2.Stats.CacheHits, len(blocks), wres2.Stats.DiskHits)
	}
	if wres2.Stats.DiskHits != 0 {
		t.Errorf("second warm run: %d disk hits, want 0 after promotion", wres2.Stats.DiskHits)
	}
	requireSameOrders(t, want, wres2)
}

// requireSameOrders compares cycles, arcs and full scheduled orders.
func requireSameOrders(t *testing.T, want, got *BatchResult) {
	t.Helper()
	for i := range want.Cycles {
		if got.Cycles[i] != want.Cycles[i] {
			t.Fatalf("block %d: cycles %d, want %d", i, got.Cycles[i], want.Cycles[i])
		}
		if got.Arcs[i] != want.Arcs[i] {
			t.Fatalf("block %d: arcs %d, want %d", i, got.Arcs[i], want.Arcs[i])
		}
		if len(got.Orders[i]) != len(want.Orders[i]) {
			t.Fatalf("block %d: order length %d, want %d", i, len(got.Orders[i]), len(want.Orders[i]))
		}
		for k := range want.Orders[i] {
			if got.Orders[i][k] != want.Orders[i][k] {
				t.Fatalf("block %d position %d: node %d, want %d", i, k, got.Orders[i][k], want.Orders[i][k])
			}
		}
	}
}

// TestDiskWarmStartStream runs the warm pass through RunStream: the
// streaming pipeline must serve the same disk hits and emit schedules
// identical to the batch reference.
func TestDiskWarmStartStream(t *testing.T) {
	m := machine.Pipe1()
	blocks := testBlocks(t, 50)
	path := diskPath(t)

	ref, err := New(Config{Workers: 4, Model: m, KeepOrders: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(blocks)
	if err != nil {
		t.Fatal(err)
	}

	cold, err := New(Config{Workers: 4, Model: m, CachePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Run(blocks); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	closeEngine(t, cold)

	warm, err := New(Config{Workers: 4, Model: m, KeepOrders: true, Verify: true, CachePath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer closeEngine(t, warm)
	src := make(chan *block.Block)
	go func() {
		for _, b := range blocks {
			src <- b
		}
		close(src)
	}()
	got := make([][]int32, len(blocks))
	cycles := make([]int32, len(blocks))
	st, err := warm.RunStream(nil, src, func(o BlockOutcome) {
		cycles[o.Seq] = o.Cycles
		got[o.Seq] = append([]int32(nil), o.Order...)
	})
	if err != nil {
		t.Fatalf("warm stream: %v", err)
	}
	if distinct := int64(distinctBlocks(blocks)); st.DiskHits != distinct {
		t.Errorf("warm stream: %d disk hits, want %d (misses %d, l1 hits %d)",
			st.DiskHits, distinct, st.CacheMisses, st.CacheHits)
	}
	for i := range blocks {
		if cycles[i] != want.Cycles[i] {
			t.Fatalf("block %d: cycles %d, want %d", i, cycles[i], want.Cycles[i])
		}
		for k := range want.Orders[i] {
			if got[i][k] != want.Orders[i][k] {
				t.Fatalf("block %d position %d: node %d, want %d", i, k, got[i][k], want.Orders[i][k])
			}
		}
	}
}

// TestDiskReadOnly opens a populated file read-only: every block is
// served from disk, and the file is not written — its tail is
// byte-stable across the run.
func TestDiskReadOnly(t *testing.T) {
	m := machine.Pipe1()
	blocks := testBlocks(t, 30)
	path := diskPath(t)

	cold, err := New(Config{Workers: 2, Model: m, CachePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Run(blocks); err != nil {
		t.Fatal(err)
	}
	closeEngine(t, cold)

	probe, err := diskcache.Open(path, diskcache.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	tailBefore := probe.Tail()
	probe.Close()

	ro, err := New(Config{Workers: 2, Model: m, Verify: true, CachePath: path, CacheReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ro.Run(blocks)
	if err != nil {
		t.Fatalf("read-only run: %v", err)
	}
	if distinct := int64(distinctBlocks(blocks)); res.Stats.DiskHits != distinct {
		t.Errorf("read-only run: %d disk hits, want %d", res.Stats.DiskHits, distinct)
	}
	closeEngine(t, ro)

	probe, err = diskcache.Open(path, diskcache.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	if got := probe.Tail(); got != tailBefore {
		t.Errorf("read-only run moved the tail: %d, want %d", got, tailBefore)
	}
}

// TestDiskBitflipFault points the cache-bitflip injection at the
// persistent tier: every warm hit is served through a poisoned scratch
// copy, the output gate must reject it, the entry must be purged from
// both tiers, and the recomputed schedule must match the fault-free
// reference exactly.
func TestDiskBitflipFault(t *testing.T) {
	m := machine.Super2()
	blocks := testBlocks(t, 40)
	path := diskPath(t)

	ref, err := New(Config{Workers: 4, Model: m, KeepOrders: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(blocks)
	if err != nil {
		t.Fatal(err)
	}

	cold, err := New(Config{Workers: 4, Model: m, CachePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Run(blocks); err != nil {
		t.Fatal(err)
	}
	closeEngine(t, cold)

	chaotic, err := New(Config{
		Workers: 4, Model: m, KeepOrders: true, Verify: true, CachePath: path,
		FaultPlan: &fault.Plan{Seed: 7, CacheBitflip: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeEngine(t, chaotic)
	res, err := chaotic.Run(blocks)
	if err != nil {
		t.Fatalf("chaotic warm run: %v", err)
	}
	// FlipBit is a no-op on empty orders, so zero-length blocks are
	// served unflipped; every other distinct block's disk hit must fail
	// the gate (duplicates land in L1 after the recompute's insert).
	empties, nonEmpties := 0, 0
	seen := make(map[uint64]bool)
	for _, b := range blocks {
		h := BlockKey(b.Insts)
		if seen[h] {
			continue
		}
		seen[h] = true
		if b.Len() == 0 {
			empties++
		} else {
			nonEmpties++
		}
	}
	if res.Stats.GateFailures != int64(nonEmpties) {
		t.Errorf("gate failures %d, want %d", res.Stats.GateFailures, nonEmpties)
	}
	if res.Stats.DiskHits != int64(empties) {
		t.Errorf("disk hits %d, want %d (only empty-order blocks survive a flip)", res.Stats.DiskHits, empties)
	}
	requireSameOrders(t, want, res)
}

// TestDiskPoisonPurgedFromFile verifies the cross-process half of
// poisoned-entry removal: after a gate failure purges an entry, a later
// engine over the same file must miss it (and recompute), not be
// served the poison.
func TestDiskPoisonPurgedFromFile(t *testing.T) {
	m := machine.Pipe1()
	blocks := testBlocks(t, 20)
	path := diskPath(t)

	cold, err := New(Config{Workers: 2, Model: m, CachePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Run(blocks); err != nil {
		t.Fatal(err)
	}
	closeEngine(t, cold)

	// Serve every entry through the bitflip so the gate purges the
	// non-empty ones from the file.
	chaotic, err := New(Config{
		Workers: 2, Model: m, CachePath: path,
		FaultPlan: &fault.Plan{Seed: 3, CacheBitflip: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chaotic.Run(blocks); err != nil {
		t.Fatal(err)
	}
	closeEngine(t, chaotic)

	// The chaotic engine recomputed every purged block at RungPrimary
	// and wrote the healthy schedules back behind; a later fault-free
	// engine must be served only schedules that pass verification.
	later, err := New(Config{Workers: 2, Model: m, Verify: true, CachePath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer closeEngine(t, later)
	res, err := later.Run(blocks)
	if err != nil {
		t.Fatalf("post-purge run: %v", err)
	}
	if res.Stats.GateFailures != 0 {
		t.Errorf("post-purge run hit %d gate failures; purged entries were re-served", res.Stats.GateFailures)
	}
}

// TestDiskConfigRules pins the validation surface: CacheReadOnly needs
// CachePath, CachePath rejects CollectDAGStats, and CachePath implies
// Cache.
func TestDiskConfigRules(t *testing.T) {
	m := machine.Pipe1()
	if _, err := New(Config{Model: m, CacheReadOnly: true}); !errors.Is(err, ErrConfig) {
		t.Errorf("CacheReadOnly without CachePath: err = %v, want ErrConfig", err)
	}
	if _, err := New(Config{Model: m, CachePath: diskPath(t), CollectDAGStats: true}); !errors.Is(err, ErrConfig) {
		t.Errorf("CachePath with CollectDAGStats: err = %v, want ErrConfig", err)
	}
	e, err := New(Config{Model: m, CachePath: diskPath(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer closeEngine(t, e)
	if e.cache == nil {
		t.Error("CachePath did not imply Cache: no L1 was built")
	}
	if e.disk == nil {
		t.Error("CachePath did not open a disk tier")
	}
}

// TestDiskCloseIdempotent pins Close's contract: a second Close (and a
// Close on an engine without a disk tier) is a nil no-op, and a closed
// engine keeps scheduling — it just lost the persistent tier.
func TestDiskCloseIdempotent(t *testing.T) {
	m := machine.Pipe1()
	blocks := testBlocks(t, 10)

	plain, err := New(Config{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Close(); err != nil {
		t.Errorf("Close without a disk tier: %v", err)
	}

	e, err := New(Config{Workers: 2, Model: m, CachePath: diskPath(t)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(blocks); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	res, err := e.Run(blocks)
	if err != nil {
		t.Fatalf("run after Close: %v", err)
	}
	if res.Stats.DiskHits != 0 {
		t.Errorf("closed engine reports %d disk hits", res.Stats.DiskHits)
	}
}

// TestDiskCorruptFileRecreated points an engine at a file full of
// garbage: the writable open must recover (here: recreate) rather than
// fail, and the run must come out correct.
func TestDiskCorruptFileRecreated(t *testing.T) {
	m := machine.Pipe1()
	blocks := testBlocks(t, 10)
	path := diskPath(t)
	if err := writeGarbageFile(path); err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Workers: 2, Model: m, Verify: true, CachePath: path})
	if err != nil {
		t.Fatalf("open over garbage: %v", err)
	}
	defer closeEngine(t, e)
	res, err := e.Run(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DiskHits != 0 {
		t.Errorf("garbage file produced %d disk hits", res.Stats.DiskHits)
	}
}

func writeGarbageFile(path string) error {
	garbage := make([]byte, 8192)
	for i := range garbage {
		garbage[i] = byte(i*37 + 11)
	}
	return os.WriteFile(path, garbage, 0o644)
}
