package engine

import (
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/dag"
	"daginsched/internal/heur"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/sched"
	"daginsched/internal/testgen"
)

// testBlocks builds a stream of blocks of deliberately uneven sizes —
// growing, shrinking, including the degenerate 0- and 1-instruction
// cases — so worker arenas exercise their shrink/regrow paths.
func testBlocks(t testing.TB, count int) []*block.Block {
	sizes := []int{40, 7, 150, 1, 64, 0, 90, 13, 33, 120}
	blocks := make([]*block.Block, count)
	for i := range blocks {
		n := sizes[i%len(sizes)]
		insts := testgen.Block(int64(9000+i), n)
		b := &block.Block{Name: "b", Insts: insts}
		for k := range b.Insts {
			b.Insts[k].Index = k
		}
		blocks[i] = b
	}
	return blocks
}

// serialReference runs the engine's default pipeline (fused backward
// table building + the Section 6 winnowing pass) with the plain,
// allocation-per-block APIs — the pre-engine reference the batch path
// must reproduce exactly.
func serialReference(blocks []*block.Block, m *machine.Model) (orders [][]int32, cycles []int32, stats []dag.Stats) {
	orders = make([][]int32, len(blocks))
	cycles = make([]int32, len(blocks))
	stats = make([]dag.Stats, len(blocks))
	rt := resource.NewTable(resource.MemExprModel)
	for i, b := range blocks {
		rt.PrepareBlock(b.Insts)
		a := heur.New(nil, m)
		obs := &heur.FusedBackward{A: a, ComputeLocals: true}
		d := dag.TableBackward{Observer: obs}.Build(b, m, rt)
		res := sched.Forward(d, m, a, sched.Winnow(sched.Section6Ranked()))
		orders[i] = res.Order
		cycles[i] = res.Cycles
		stats[i] = d.Statistics()
	}
	return orders, cycles, stats
}

func requireSameBatch(t *testing.T, wantOrders [][]int32, wantCycles []int32, wantStats []dag.Stats, got *BatchResult) {
	t.Helper()
	if len(got.Orders) != len(wantOrders) {
		t.Fatalf("got %d orders, want %d", len(got.Orders), len(wantOrders))
	}
	for i := range wantOrders {
		if got.Cycles[i] != wantCycles[i] {
			t.Fatalf("block %d: cycles %d, want %d", i, got.Cycles[i], wantCycles[i])
		}
		if len(got.Orders[i]) != len(wantOrders[i]) {
			t.Fatalf("block %d: order length %d, want %d", i, len(got.Orders[i]), len(wantOrders[i]))
		}
		for k := range wantOrders[i] {
			if got.Orders[i][k] != wantOrders[i][k] {
				t.Fatalf("block %d position %d: node %d, want %d",
					i, k, got.Orders[i][k], wantOrders[i][k])
			}
		}
		if got.DAGStats[i] != wantStats[i] {
			t.Fatalf("block %d: dag stats %+v, want %+v", i, got.DAGStats[i], wantStats[i])
		}
	}
}

// TestEngineMatchesSerialReference requires the batch engine to be
// byte-identical to the plain serial pipeline, with the scoreboard
// simulator co-signing every schedule.
func TestEngineMatchesSerialReference(t *testing.T) {
	for _, m := range []*machine.Model{machine.Pipe1(), machine.Super2()} {
		blocks := testBlocks(t, 40)
		wantOrders, wantCycles, wantStats := serialReference(blocks, m)
		for _, workers := range []int{1, 4} {
			e, err := New(Config{
				Workers: workers, Model: m,
				KeepOrders: true, CollectDAGStats: true, Verify: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run(blocks)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			requireSameBatch(t, wantOrders, wantCycles, wantStats, res)
			if res.Stats.Blocks != len(blocks) || res.Stats.Workers != workers {
				t.Errorf("stats header wrong: %+v", res.Stats)
			}
		}
	}
}

// TestEngineDeterminism is the satellite determinism check: one worker
// and eight workers must produce identical schedules, cycle counts and
// DAG statistics. The CI script additionally runs this under -race,
// which would flag any sharing between worker scratch arenas.
func TestEngineDeterminism(t *testing.T) {
	m := machine.Pipe1()
	blocks := testBlocks(t, 60)
	cfg := Config{Model: m, KeepOrders: true, CollectDAGStats: true}

	cfg.Workers = 1
	e1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := e1.Run(blocks)
	if err != nil {
		t.Fatal(err)
	}
	// Copy out: a second engine's Run may not alias the first's result,
	// but keep the comparison independent of that.
	wantOrders := make([][]int32, len(serial.Orders))
	for i, o := range serial.Orders {
		wantOrders[i] = append([]int32(nil), o...)
	}
	wantCycles := append([]int32(nil), serial.Cycles...)
	wantStats := append([]dag.Stats(nil), serial.DAGStats...)

	cfg.Workers = 8
	e8, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		par, err := e8.Run(blocks)
		if err != nil {
			t.Fatal(err)
		}
		requireSameBatch(t, wantOrders, wantCycles, wantStats, par)
	}
}

// TestEngineTablefPipeline covers the alternate builder: it must agree
// with its own serial equivalent and satisfy the simulator.
func TestEngineTablefPipeline(t *testing.T) {
	m := machine.Pipe1()
	blocks := testBlocks(t, 30)

	want := make([][]int32, len(blocks))
	rt := resource.NewTable(resource.MemExprModel)
	for i, b := range blocks {
		rt.PrepareBlock(b.Insts)
		d := dag.TableForward{}.Build(b, m, rt)
		a := heur.New(d, m)
		a.ComputeBackward()
		a.ComputeLocal()
		want[i] = sched.Forward(d, m, a, sched.Winnow(sched.Section6Ranked())).Order
	}

	e, err := New(Config{Workers: 4, Model: m, Builder: "tablef", KeepOrders: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(blocks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for k := range want[i] {
			if res.Orders[i][k] != want[i][k] {
				t.Fatalf("block %d position %d: node %d, want %d",
					i, k, res.Orders[i][k], want[i][k])
			}
		}
	}
}

// TestEngineSteadyStateZeroAlloc is the tentpole property end to end:
// once a single-worker engine has warmed up on a block stream,
// re-running the whole batch — prepare, build, heuristics, schedule,
// result collection — allocates nothing.
func TestEngineSteadyStateZeroAlloc(t *testing.T) {
	m := machine.Pipe1()
	blocks := testBlocks(t, 20)
	e, err := New(Config{Workers: 1, Model: m, KeepOrders: true})
	if err != nil {
		t.Fatal(err)
	}
	res := new(BatchResult)
	if _, err := e.RunInto(res, blocks); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.RunInto(res, blocks); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state batch run allocates %.1f/batch, want 0", allocs)
	}
}

// TestEngineConfigErrors covers constructor validation.
func TestEngineConfigErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted a nil machine model")
	}
	if _, err := New(Config{Model: machine.Pipe1(), Builder: "n2f"}); err == nil {
		t.Error("New accepted an unknown builder")
	}
	e, err := New(Config{Model: machine.Pipe1(), Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers() < 1 {
		t.Errorf("defaulted workers = %d, want >= 1", e.Workers())
	}
}

// TestEngineEmptyBatch must not divide by zero or misreport.
func TestEngineEmptyBatch(t *testing.T) {
	e, err := New(Config{Workers: 2, Model: machine.Pipe1(), KeepOrders: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Blocks != 0 || res.Stats.Insts != 0 || res.Stats.BlocksPerSec != 0 {
		t.Errorf("empty batch stats: %+v", res.Stats)
	}
}
