package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"daginsched/internal/block"
	"daginsched/internal/fault"
	"daginsched/internal/machine"
	"daginsched/internal/testgen"
)

// chaosCorpus builds a corpus with deliberate content repeats (so the
// schedule cache gets hits for the bitflip point to poison) and sizes
// straddling the adaptive crossover, including the degenerate 0- and
// 1-instruction blocks.
func chaosCorpus(distinct, repeats int) []*block.Block {
	sizes := []int{40, 7, 150, 1, 64, 0, 90, 13, 33, 120, 3, 72}
	uniq := make([]*block.Block, distinct)
	for i := range uniq {
		n := sizes[i%len(sizes)]
		insts := testgen.Block(int64(31000+i), n)
		b := &block.Block{Name: "chaos", Insts: insts}
		for k := range b.Insts {
			b.Insts[k].Index = k
		}
		uniq[i] = b
	}
	blocks := make([]*block.Block, 0, distinct*repeats)
	for r := 0; r < repeats; r++ {
		blocks = append(blocks, uniq...)
	}
	return blocks
}

// TestEngineChaosLadder is the chaos gate: a seeded fault plan fires
// panics, arc corruptions, cache bitflips and stalls across a corpus
// on an 8-worker pool, and the run must (a) complete every block with
// a schedule the independent simulator co-signs, (b) degrade only
// faulted blocks, and (c) — because every non-identity rung is
// byte-identical to the primary pipeline and no deadline is armed —
// produce exactly the fault-free run's output for every block.
func TestEngineChaosLadder(t *testing.T) {
	m := machine.Super2()
	blocks := chaosCorpus(48, 5)
	plan := &fault.Plan{
		Seed:         42,
		PanicBuilder: 0.08,
		CorruptArc:   0.08,
		CacheBitflip: 0.30,
		SlowBlock:    0.05,
		SlowDelay:    50 * time.Microsecond,
	}
	base := Config{
		Workers:    8,
		Model:      m,
		KeepOrders: true,
		Verify:     true,
		Cache:      true,
		Crossover:  16,
	}

	clean, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Run(blocks)
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.FaultPlan = plan
	chaotic, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := chaotic.Run(blocks)
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}

	// Recompute the faulted set the way schedbench -chaos does: pure
	// function of (plan, block content), independent of the engine.
	inj, err := fault.NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	faulted := 0
	for i, b := range blocks {
		key := BlockKey(b.Insts)
		if inj.Any(key) {
			faulted++
		} else if got.Rungs[i] != RungPrimary {
			t.Errorf("block %d: degraded to %v without any injected fault", i, got.Rungs[i])
		}
	}
	if min := len(blocks) / 20; faulted < min {
		t.Fatalf("plan faults %d/%d blocks, want at least 5%% (%d)", faulted, len(blocks), min)
	}

	// No deadline is armed, so every ladder rung in play (table after a
	// panic or gate failure) is byte-identical to the primary pipeline:
	// the whole batch, faulted blocks included, must match the
	// fault-free run exactly.
	for i := range blocks {
		if got.Cycles[i] != want.Cycles[i] {
			t.Fatalf("block %d: cycles %d, want %d (rung %v)", i, got.Cycles[i], want.Cycles[i], got.Rungs[i])
		}
		if got.Arcs[i] != want.Arcs[i] {
			t.Fatalf("block %d: arcs %d, want %d (rung %v)", i, got.Arcs[i], want.Arcs[i], got.Rungs[i])
		}
		if len(got.Orders[i]) != len(want.Orders[i]) {
			t.Fatalf("block %d: order length %d, want %d", i, len(got.Orders[i]), len(want.Orders[i]))
		}
		for k := range want.Orders[i] {
			if got.Orders[i][k] != want.Orders[i][k] {
				t.Fatalf("block %d position %d: node %d, want %d (rung %v)",
					i, k, got.Orders[i][k], want.Orders[i][k], got.Rungs[i])
			}
		}
	}

	st := got.Stats
	if st.FaultsInjected == 0 {
		t.Error("chaos run reports zero injected faults")
	}
	if st.Quarantines == 0 {
		t.Error("chaos run reports zero quarantines; panics and gate failures must quarantine")
	}
	if st.GateFailures == 0 {
		t.Error("chaos run reports zero gate failures; corrupt arcs and bitflips must be caught")
	}
	if st.Demotions == 0 || st.DegradedBlocks == 0 {
		t.Errorf("chaos run reports %d demotions / %d degraded blocks, want > 0",
			st.Demotions, st.DegradedBlocks)
	}
	degraded := int64(0)
	for _, rg := range got.Rungs {
		if rg != RungPrimary {
			degraded++
		}
	}
	if degraded != st.DegradedBlocks {
		t.Errorf("Stats.DegradedBlocks = %d, Rungs say %d", st.DegradedBlocks, degraded)
	}
	ws := want.Stats
	if ws.Quarantines != 0 || ws.Demotions != 0 || ws.GateFailures != 0 || ws.FaultsInjected != 0 || ws.DegradedBlocks != 0 {
		t.Errorf("fault-free run has nonzero hardening tallies: %+v", ws)
	}
}

// TestEngineChaosDeterminism pins the chaos gate's foundation: the
// same plan over the same corpus degrades exactly the same blocks to
// exactly the same rungs, regardless of worker count.
func TestEngineChaosDeterminism(t *testing.T) {
	m := machine.Pipe1()
	blocks := chaosCorpus(30, 3)
	plan := &fault.Plan{Seed: 7, PanicBuilder: 0.15, CorruptArc: 0.15}
	var runs [2]*BatchResult
	for i, workers := range []int{1, 8} {
		e, err := New(Config{Workers: workers, Model: m, FaultPlan: plan, Crossover: 16})
		if err != nil {
			t.Fatal(err)
		}
		if runs[i], err = e.Run(blocks); err != nil {
			t.Fatal(err)
		}
	}
	for i := range blocks {
		if runs[0].Rungs[i] != runs[1].Rungs[i] {
			t.Fatalf("block %d: rung %v at 1 worker, %v at 8", i, runs[0].Rungs[i], runs[1].Rungs[i])
		}
	}
	if runs[0].Stats.FaultsInjected != runs[1].Stats.FaultsInjected {
		t.Errorf("faults injected differ across worker counts: %d vs %d",
			runs[0].Stats.FaultsInjected, runs[1].Stats.FaultsInjected)
	}
}

// TestEngineCorruptArcCaught proves the mirror cross-check end to end:
// with every block's predecessor mirror corrupted, the gate must
// reject every schedule whose DAG has arcs, demote those blocks to the
// table rung, and still emit byte-identical output.
func TestEngineCorruptArcCaught(t *testing.T) {
	m := machine.Pipe1()
	blocks := testBlocks(t, 20)
	clean, err := New(Config{Workers: 1, Model: m, KeepOrders: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := clean.Run(blocks)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Workers:    1,
		Model:      m,
		KeepOrders: true,
		Verify:     true,
		FaultPlan:  &fault.Plan{Seed: 3, CorruptArc: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Run(blocks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range blocks {
		if want.Arcs[i] > 0 {
			if got.Rungs[i] != RungTable {
				t.Errorf("block %d (%d arcs): rung %v, want table after corruption", i, want.Arcs[i], got.Rungs[i])
			}
		} else if got.Rungs[i] != RungPrimary {
			t.Errorf("arcless block %d: rung %v, want primary (nothing to corrupt)", i, got.Rungs[i])
		}
		if got.Cycles[i] != want.Cycles[i] {
			t.Errorf("block %d: cycles %d, want %d", i, got.Cycles[i], want.Cycles[i])
		}
		for k := range want.Orders[i] {
			if got.Orders[i][k] != want.Orders[i][k] {
				t.Fatalf("block %d position %d: order differs after recovery", i, k)
			}
		}
	}
	if got.Stats.GateFailures == 0 || got.Stats.Quarantines == 0 {
		t.Errorf("corruption run: %d gate failures, %d quarantines, want > 0",
			got.Stats.GateFailures, got.Stats.Quarantines)
	}
}

// TestEngineDeadlineDemotesToIdentity: an unmeetable soft deadline
// demotes every block to the identity floor — original program order,
// zero arcs, simulator-timed — and a generous one demotes nothing.
func TestEngineDeadlineDemotesToIdentity(t *testing.T) {
	m := machine.Pipe1()
	blocks := testBlocks(t, 12)
	e, err := New(Config{Workers: 2, Model: m, KeepOrders: true, Verify: true, BlockTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(blocks)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range blocks {
		if res.Rungs[i] != RungIdentity {
			t.Fatalf("block %d: rung %v, want identity under a 1ns deadline", i, res.Rungs[i])
		}
		if res.Arcs[i] != 0 {
			t.Errorf("block %d: %d arcs on the identity rung, want 0", i, res.Arcs[i])
		}
		for k := range res.Orders[i] {
			if res.Orders[i][k] != int32(k) {
				t.Fatalf("block %d: identity rung reordered position %d to %d", i, k, res.Orders[i][k])
			}
		}
		_ = b
	}
	if res.Stats.Demotions == 0 || res.Stats.DegradedBlocks != int64(len(blocks)) {
		t.Errorf("deadline run: %d demotions, %d degraded, want all %d blocks degraded",
			res.Stats.Demotions, res.Stats.DegradedBlocks, len(blocks))
	}

	e2, err := New(Config{Workers: 2, Model: m, BlockTimeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e2.Run(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Demotions != 0 || res2.Stats.DegradedBlocks != 0 {
		t.Errorf("generous deadline demoted %d blocks", res2.Stats.DegradedBlocks)
	}
}

// TestEngineRunCtxCancel: a cancelled context stops the run at the
// next block claim and surfaces ctx's error.
func TestEngineRunCtxCancel(t *testing.T) {
	e, err := New(Config{Workers: 2, Model: machine.Pipe1()})
	if err != nil {
		t.Fatal(err)
	}
	blocks := testBlocks(t, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunCtx(ctx, blocks); err == nil {
		t.Fatal("cancelled run returned nil error")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run error = %v, want context.Canceled", err)
	} else if !strings.Contains(err.Error(), "run cancelled") {
		t.Fatalf("cancelled run error = %q, want a 'run cancelled' message", err)
	}
	// The engine must be reusable after a cancelled run.
	if _, err := e.RunCtx(context.Background(), blocks); err != nil {
		t.Fatalf("run after cancellation: %v", err)
	}
	if _, err := e.RunCtx(nil, blocks); err != nil { //nolint:staticcheck // nil ctx is documented as Background
		t.Fatalf("nil ctx run: %v", err)
	}
}

// TestEngineConfigValidation is the table-driven satellite: every
// rejected Config comes back as a *ConfigError naming the field and
// matching errors.Is(err, ErrConfig).
func TestEngineConfigValidation(t *testing.T) {
	m := machine.Pipe1()
	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"nil model", Config{}, "Model"},
		{"unknown builder", Config{Model: m, Builder: "lattice"}, "Builder"},
		{"negative workers", Config{Model: m, Workers: -1}, "Workers"},
		{"negative chunk", Config{Model: m, ChunkSize: -8}, "ChunkSize"},
		{"negative cache cap", Config{Model: m, CacheCap: -1}, "CacheCap"},
		{"negative timeout", Config{Model: m, BlockTimeout: -time.Second}, "BlockTimeout"},
		{"bad fault rate", Config{Model: m, FaultPlan: &fault.Plan{PanicBuilder: 2}}, "FaultPlan"},
		{"negative slow delay", Config{Model: m, FaultPlan: &fault.Plan{SlowBlock: 0.1, SlowDelay: -1}}, "FaultPlan"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if err == nil {
				t.Fatal("New accepted the config")
			}
			if !errors.Is(err, ErrConfig) {
				t.Fatalf("error %v does not match ErrConfig", err)
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error %v is not a *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("ConfigError.Field = %q, want %q (%v)", ce.Field, tc.field, err)
			}
			if ce.Error() == "" || !strings.Contains(ce.Error(), tc.field) {
				t.Fatalf("ConfigError message %q does not name the field", ce.Error())
			}
		})
	}

	// Normalization, not rejection: zero workers means GOMAXPROCS, an
	// oversized crossover clamps, a nil plan is fine.
	e, err := New(Config{Model: m, Crossover: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers() < 1 {
		t.Errorf("defaulted workers = %d", e.Workers())
	}
	if e.Crossover() > 64 {
		t.Errorf("crossover %d not clamped to the n² cap", e.Crossover())
	}
}

// TestEngineQuarantineThenZeroAlloc is the arena-recycling regression:
// after a quarantine swaps in fresh scratch, the next batches must
// regrow once and then return to the steady-state zero-allocation
// contract with no state leaking from the discarded scratch.
func TestEngineQuarantineThenZeroAlloc(t *testing.T) {
	m := machine.Pipe1()
	blocks := testBlocks(t, 20)
	e, err := New(Config{Workers: 1, Model: m, KeepOrders: true})
	if err != nil {
		t.Fatal(err)
	}
	res := new(BatchResult)
	if _, err := e.RunInto(res, blocks); err != nil {
		t.Fatal(err)
	}
	want := append([][]int32(nil), res.Orders...)
	for i := range want {
		want[i] = append([]int32(nil), want[i]...)
	}

	e.workers[0].quarantine(&e.cfg)
	if e.workers[0].quars != 1 {
		t.Fatalf("quarantine tally = %d, want 1", e.workers[0].quars)
	}
	if _, err := e.RunInto(res, blocks); err != nil { // regrow the fresh scratch
		t.Fatal(err)
	}
	for i := range want {
		for k := range want[i] {
			if res.Orders[i][k] != want[i][k] {
				t.Fatalf("block %d: schedule differs after quarantine", i)
			}
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.RunInto(res, blocks); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("post-quarantine steady state allocates %.1f/batch, want 0", allocs)
	}
}

// TestGateZeroAlloc pins the always-on cost of the output gate: both
// halves run without allocating once the seen-scratch has grown.
func TestGateZeroAlloc(t *testing.T) {
	m := machine.Pipe1()
	e, err := New(Config{Workers: 1, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	w := e.workers[0]
	b := &block.Block{Name: "gate", Insts: testgen.Block(77, 120)}
	for i := range b.Insts {
		b.Insts[i].Index = i
	}
	r, d := w.schedule(b, m)
	allocs := testing.AllocsPerRun(100, func() {
		if !w.gate(d, r, b.Len()) {
			t.Fatal("gate rejected a healthy schedule")
		}
	})
	if allocs != 0 {
		t.Errorf("output gate allocates %.1f/run, want 0", allocs)
	}
}

// TestStructuralGateRejects covers the permutation half's rejection
// cases one by one.
func TestStructuralGateRejects(t *testing.T) {
	e, err := New(Config{Workers: 1, Model: machine.Pipe1()})
	if err != nil {
		t.Fatal(err)
	}
	w := e.workers[0]
	ok := func(order, issue []int32, n int) bool { return w.structuralGate(order, issue, n) }
	if !ok([]int32{2, 0, 1}, []int32{0, 1, 2}, 3) {
		t.Error("rejected a valid permutation")
	}
	if !ok(nil, nil, 0) {
		t.Error("rejected the empty schedule")
	}
	if ok([]int32{0, 0, 2}, []int32{0, 1, 2}, 3) {
		t.Error("accepted a duplicate node")
	}
	if ok([]int32{0, 1, 3}, []int32{0, 1, 2}, 3) {
		t.Error("accepted an out-of-range node")
	}
	if ok([]int32{0, -1, 2}, []int32{0, 1, 2}, 3) {
		t.Error("accepted a negative node")
	}
	if ok([]int32{0, 1}, []int32{0, 1, 2}, 3) {
		t.Error("accepted a short order")
	}
	if ok([]int32{0, 1, 2}, []int32{0, -5, 2}, 3) {
		t.Error("accepted a negative issue cycle")
	}
}

func TestRungString(t *testing.T) {
	want := map[Rung]string{RungPrimary: "primary", RungTable: "table", RungN2: "n2", RungIdentity: "identity", Rung(9): "unknown"}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("Rung(%d).String() = %q, want %q", r, r.String(), s)
		}
	}
	if RungPrimary.next() != RungTable || RungIdentity.next() != RungIdentity {
		t.Error("ladder descent order broken")
	}
}
