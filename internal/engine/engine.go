// Package engine is the batch scheduling engine: it fans the basic
// blocks of a compilation unit across a pool of workers, each owning
// the full set of reusable scratch structures — a resource.Table, a
// dag.BuildArena, a heur.Annot, a sched.Scratch and a pooled winnowing
// selector — so the steady-state per-block pipeline (prepare → build →
// heuristics → schedule) performs no allocations once every buffer has
// grown to the stream's largest block.
//
// Work distribution is an atomic index counter; each result is written
// to its block's slot, so the output is byte-identical to a serial run
// of the same pipeline regardless of worker count or interleaving.
package engine

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"daginsched/internal/block"
	"daginsched/internal/buf"
	"daginsched/internal/dag"
	"daginsched/internal/diskcache"
	"daginsched/internal/fault"
	"daginsched/internal/heur"
	"daginsched/internal/machine"
	"daginsched/internal/pipe"
	"daginsched/internal/resource"
	"daginsched/internal/sched"
)

// Config configures an Engine.
type Config struct {
	// Workers is the worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Model is the target machine. Required.
	Model *machine.Model
	// Mem selects the memory-disambiguation model for the per-worker
	// resource tables. The zero value is resource.MemExprModel.
	Mem resource.MemModel
	// Builder selects the construction pipeline: "tableb" (default) is
	// backward table building with the static heuristics fused into
	// construction — the paper's third approach; "tablef" is forward
	// table building with a separate backward heuristic pass.
	Builder string
	// KeepOrders retains each block's scheduled order in the result
	// (copied out of worker scratch into one flat per-batch arena).
	KeepOrders bool
	// CollectDAGStats retains per-block dag.Stats.
	CollectDAGStats bool
	// Verify re-times every schedule on the pipe scoreboard simulator —
	// an independent witness that never consults the DAG — and fails
	// the run on any cycle disagreement. Cache hits are re-simulated
	// too: a memoized schedule gets the same independent witness as a
	// freshly computed one.
	Verify bool
	// DisableCSR turns off the frozen flat-adjacency (CSR) hot path and
	// falls back to the PR 1 pipeline that chases per-node arc slices.
	// The schedules are identical either way; the switch exists for
	// benchmarking the layouts against each other.
	DisableCSR bool
	// DisablePackedSel turns off the packed-priority selection engine
	// entirely — neither the indexed ready-heap pick loop nor the packed
	// static-prefix filter is engaged, and blocks are scheduled through
	// the plain winnowing rescan even when the fused heuristic sweep
	// produced an exact packed priority for them. Schedules are
	// byte-identical either way (the packed word encodes the same ranked
	// comparison the winnower performs); the switch is the identity
	// gate's reference arm and the packedsel benchmark's baseline.
	DisablePackedSel bool
	// Cache enables the block-fingerprint schedule cache: repeated
	// blocks skip DAG construction, heuristics and scheduling, copying
	// the memoized schedule into the result slot. Output is
	// byte-identical with the cache on or off.
	Cache bool
	// CacheCap bounds the cache's total entry count (<= 0 means a
	// 65536-entry default). Eviction is CLOCK (second-chance) per
	// shard, so a hot working set survives cap pressure.
	CacheCap int
	// CachePath backs the schedule cache with a persistent second tier:
	// a memory-mapped, crash-safe, content-keyed file at this path
	// (created if missing), shared across processes and engine restarts.
	// An L1 miss probes the file before scheduling; a healthy primary
	// result is written behind by a flusher goroutine, so workers never
	// block on disk. Setting it implies Cache. Call Engine.Close to
	// flush and release the file. Incompatible with CollectDAGStats
	// (the disk tier does not store DAG statistics).
	CachePath string
	// CacheReadOnly opens CachePath read-only: the engine serves warm
	// hits from the file but never writes to it, so any number of
	// processes can share one populated cache. Requires CachePath.
	CacheReadOnly bool
	// Crossover is the adaptive-dispatch size threshold: a block of at
	// most this many instructions is attempted on the n²-direct
	// pipeline (compare-against-all construction, no table reset, no
	// CSR freeze), falling back to table building for that block alone
	// when the n² DAG is not transitive-free. Zero means measure the
	// crossover with a one-time calibration probe inside New; a
	// negative value keeps adaptive distribution and bin statistics but
	// never routes a block to the n² builder. Values beyond
	// dag.N2MaskCap are clamped to it.
	Crossover int
	// ChunkSize is how many small blocks (at most dag.N2MaskCap insts)
	// a worker claims per atomic fetch under adaptive distribution;
	// <= 0 means 32. Large blocks are always claimed one at a time.
	ChunkSize int
	// DisableAdaptive restores the fixed pipeline (every block table-
	// built) and the per-block atomic work grab. Adaptive dispatch is
	// also implicitly disabled for Builder "tablef" (the n² identity
	// argument is proven against backward table building) and under
	// CollectDAGStats (arc *kinds* may legitimately differ between the
	// builders on equal-delay ties, so ByKind tallies could too).
	DisableAdaptive bool
	// BlockTimeout is the per-block soft deadline: a block whose
	// pipeline attempt outlives it is demoted to the ladder's
	// bounded-work identity rung instead of hanging a worker. The check
	// is cooperative (post-construction checkpoint, injected stalls),
	// not preemptive. Zero disables deadlines; negative is rejected.
	BlockTimeout time.Duration
	// FaultPlan enables deterministic fault injection (chaos testing):
	// seed-driven panic-in-builder, corrupt-arc, cache-bitflip and
	// slow-block faults keyed on block content, so the faulted set is
	// identical across worker counts and interleavings. Nil (or an
	// all-zero plan) compiles every injection point to a nil check.
	FaultPlan *fault.Plan
	// StreamDepth bounds RunStream's ingest queues (in blocks): a full
	// pipeline backpressures the producer instead of buffering, which is
	// what makes streamed memory independent of stream length. 0 means a
	// 256-block default; negative is rejected. Batch entry points ignore
	// it.
	StreamDepth int
}

// Stats summarizes one batch run; the JSON form is what cmd/schedbench
// -parallel writes to BENCH_engine.json.
type Stats struct {
	Workers      int     `json:"workers"`
	Blocks       int     `json:"blocks"`
	Insts        int64   `json:"insts"`
	Arcs         int64   `json:"arcs"`
	TotalCycles  int64   `json:"total_cycles"`
	WallSeconds  float64 `json:"wall_seconds"`
	BlocksPerSec float64 `json:"blocks_per_sec"`
	InstsPerSec  float64 `json:"insts_per_sec"`
	ArcsPerSec   float64 `json:"arcs_per_sec"`
	P50Micros    float64 `json:"p50_block_micros"`
	P99Micros    float64 `json:"p99_block_micros"`
	// CacheHits/CacheMisses count schedule-cache outcomes for the run
	// (both zero when the cache is disabled); DiskHits counts blocks
	// served from the persistent tier (a subset of neither — an L1 hit
	// counts as CacheHits, a disk hit as DiskHits, and CacheMisses only
	// counts blocks that missed both tiers and ran the pipeline);
	// CacheHitRate is (CacheHits+DiskHits)/(CacheHits+DiskHits+CacheMisses).
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	DiskHits     int64   `json:"disk_hits,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Crossover and ChunkSize echo the adaptive-dispatch configuration
	// in effect for the run, and Bins breaks the run down by block-size
	// bin. All are zero/empty when adaptive dispatch is off.
	Crossover int        `json:"crossover,omitempty"`
	ChunkSize int        `json:"chunk_size,omitempty"`
	Bins      []BinStats `json:"bins,omitempty"`
	// PackedSelBlocks counts blocks whose schedule was selected through
	// the packed-priority heap (zero under DisablePackedSel, and for
	// blocks served from cache, degraded rungs, or whose priority
	// packing overflowed the exact field widths).
	PackedSelBlocks int64 `json:"packed_sel_blocks,omitempty"`
	// Hardening tallies, all zero on a healthy fault-free run:
	// Quarantines counts worker-scratch discards (panic or gate
	// failure), Demotions counts rung descents, GateFailures counts
	// schedules the output gate rejected, FaultsInjected counts
	// injection events fired by Config.FaultPlan, and DegradedBlocks
	// counts blocks served below RungPrimary.
	Quarantines    int64 `json:"quarantines,omitempty"`
	Demotions      int64 `json:"demotions,omitempty"`
	GateFailures   int64 `json:"gate_failures,omitempty"`
	FaultsInjected int64 `json:"faults_injected,omitempty"`
	DegradedBlocks int64 `json:"degraded_blocks,omitempty"`
	// Streaming fields, set by RunStream only: StreamDepth echoes the
	// queue bound in effect; BigQueuePeak and SmallQueuePeak are the two
	// ingest queues' occupancy high-water marks (blocks and chunks
	// respectively); PendingPeak is the reorder ring's high-water mark —
	// the most outcomes that were ever scheduled-but-unemitted at once.
	StreamDepth    int `json:"stream_depth,omitempty"`
	BigQueuePeak   int `json:"big_queue_peak,omitempty"`
	SmallQueuePeak int `json:"small_queue_peak,omitempty"`
	PendingPeak    int `json:"pending_peak,omitempty"`
}

// BatchResult is the outcome of one Run, indexed by block position.
// Its slices are owned by the result and recycled by RunInto.
type BatchResult struct {
	// Cycles is each block's schedule completion time.
	Cycles []int32
	// Arcs is each block's DAG arc count.
	Arcs []int32
	// Orders holds each block's scheduled order (empty unless
	// Config.KeepOrders); the subslices share one flat arena.
	Orders [][]int32
	// DAGStats holds per-block structural statistics (empty unless
	// Config.CollectDAGStats).
	DAGStats []dag.Stats
	// Rungs records which degradation-ladder rung served each block;
	// all RungPrimary on a healthy run. A block at RungIdentity kept
	// its original program order (and reports zero Arcs — that rung
	// never builds a DAG).
	Rungs []Rung
	// Stats is the run summary.
	Stats Stats

	orderArena []int32
	durs       []int64 // per-block wall nanos
	sorted     []int64 // percentile scratch
	errs       []error // per-block verify outcome (Verify only)
	perm       []int32 // adaptive distribution order (size desc)
}

// worker is one pool member's private scratch: every structure here is
// recycled block to block and never shared.
type worker struct {
	rt    *resource.Table
	ar    dag.BuildArena
	a     *heur.Annot
	obs   heur.FusedBackward
	bld   dag.ReuseBuilder
	fused bool
	csr   bool
	sc    sched.Scratch
	sel   *sched.PooledWinnow

	// Schedule-cache scratch: the recycled key-encoding buffer, the
	// per-run hit/miss tallies (summed lock-free into Stats after the
	// pool drains) and a Result shell for re-verifying cached hits.
	enc          []byte
	hits, misses int64
	hitRes       sched.Result
	// Disk-tier scratch: the recycled decode target of the L2 probe
	// (its slices grow once to the corpus's largest block, then every
	// warm hit is allocation-free) and the per-run disk-hit tally.
	l2       diskcache.Entry
	diskHits int64

	// bins are the per-run size-bin tallies under adaptive dispatch,
	// summed lock-free into Stats.Bins after the pool drains.
	bins [nBins]binAcc

	// packedBlocks counts blocks this worker scheduled through the
	// packed-priority heap, summed into Stats.PackedSelBlocks.
	packedBlocks int64

	// Hardening state. inj is the engine's fault injector (nil without
	// a FaultPlan); deadline is the current block's soft deadline (zero
	// when Config.BlockTimeout is unset); hookPanic/hookCorrupt are the
	// one-shot injection hooks armed per block at ladder entry and
	// consumed by the first buildCheckpoint; hookKey is the block's
	// content fingerprint the hooks key on.
	inj         *fault.Injector
	deadline    time.Time
	hookPanic   bool
	hookCorrupt bool
	hookKey     uint64
	// gateSeen is the output gate's recycled exactly-once scratch;
	// flip is the scratch copy a cache-bitflip fault poisons (the
	// shared cache entry is never touched); idOrder/idRes back the
	// identity rung's result.
	gateSeen []int32
	flip     []int32
	idOrder  []int32
	idRes    sched.Result
	// Per-run hardening tallies, summed lock-free into Stats after the
	// pool drains (and preserved across a quarantine's scratch swap).
	quars, demoted, gateFails, faults int64
}

func newWorker(cfg *Config) *worker {
	w := &worker{
		rt:  resource.NewTable(cfg.Mem),
		a:   heur.New(nil, cfg.Model),
		csr: !cfg.DisableCSR,
		sel: sched.NewPooledWinnow(sched.Section6Ranked()),
	}
	// The unique-expression count is a Table 3 reporting statistic the
	// engine never reads; its dedup map would hash every memory
	// reference on every block.
	w.rt.SetUniqueCounting(false)
	w.sc.DisablePacked = cfg.DisablePackedSel
	switch {
	case cfg.Builder == "tablef":
		w.bld = dag.TableForward{}
	case w.csr:
		// CSR pipeline: plain backward table building, then one fused
		// reverse walk over the frozen flat arc array computes every
		// heuristic the selector reads — the construction observer is
		// not needed.
		w.bld = dag.TableBackward{}
	default:
		w.fused = true
		w.obs = heur.FusedBackward{A: w.a, ComputeLocals: true}
		w.bld = dag.TableBackward{Observer: &w.obs}
	}
	return w
}

// schedule runs the full per-block pipeline in worker scratch. The
// returned Result and DAG are worker-owned and valid only until the
// worker's next block.
func (w *worker) schedule(b *block.Block, m *machine.Model) (*sched.Result, *dag.DAG) {
	w.rt.PrepareBlock(b.Insts)
	d := w.bld.BuildInto(&w.ar, b, m, w.rt)
	w.buildCheckpoint(d)
	return w.finish(d, m)
}

// finish runs the post-construction half of the fixed pipeline —
// heuristics then list scheduling — on a table-built DAG.
func (w *worker) finish(d *dag.DAG, m *machine.Model) (*sched.Result, *dag.DAG) {
	if w.csr {
		// Freeze the DAG into its flat CSR view; the heuristic pass and
		// the scheduler below both run over the two flat arc arrays (and
		// the fused sweep packs the selector's priority words as it goes).
		d.Freeze()
		w.a.D = d
		w.a.ComputeFusedCSR()
	} else {
		if !w.fused {
			w.a.D = d
			w.a.ComputeBackward()
			w.a.ComputeLocal()
		}
		// The non-CSR pipelines compute the same three ranked keys, so
		// the heap pick loop is available to them too.
		w.a.PackSection6Prio()
	}
	r := w.sc.Forward(d, m, w.a, w.sel)
	if w.sc.UsedPacked() {
		w.packedBlocks++
	}
	return r, d
}

// scheduleN2 is the n²-direct pipeline of adaptive dispatch: build the
// block with compare-against-all construction (no per-resource table
// state to reset) and, when the DAG comes out transitive-free, skip
// the CSR freeze and schedule straight off the per-node arc lists. A
// transitive-free n² arc set is identical — same pairs, same deduped
// delays — to the table builder's, so the schedule is byte-identical
// to the fixed pipeline's (see dag.N2Forward.BuildCleanInto). Dirty
// blocks fall back to the fixed pipeline; the resource table is
// already prepared and interned IDs are stable, so only construction
// restarts. usedN2 reports which pipeline produced the result.
func (w *worker) scheduleN2(b *block.Block, m *machine.Model) (r *sched.Result, d *dag.DAG, usedN2 bool) {
	w.rt.PrepareBlock(b.Insts)
	nd, clean := dag.N2Forward{}.BuildCleanInto(&w.ar, b, m, w.rt)
	if !clean {
		td := w.bld.BuildInto(&w.ar, b, m, w.rt)
		w.buildCheckpoint(td)
		r, d = w.finish(td, m)
		return r, d, false
	}
	w.buildCheckpoint(nd)
	w.a.D = nd
	w.a.ComputeBackward()
	w.a.ComputeLocal()
	// Same ranked keys as the fused sweep, so the n²-direct pipeline
	// packs them too and selects through the heap.
	w.a.PackSection6Prio()
	r = w.sc.Forward(nd, m, w.a, w.sel)
	if w.sc.UsedPacked() {
		w.packedBlocks++
	}
	return r, nd, true
}

// Engine is a reusable batch scheduler. Create one with New, then call
// Run (or RunInto) any number of times; workers and their scratch
// arenas persist across runs, which is what makes repeated batches
// allocation-free in steady state.
type Engine struct {
	cfg     Config
	workers []*worker
	// cache is the block-fingerprint schedule cache (nil unless
	// Config.Cache). It persists across Run calls, so a corpus that
	// repeats — or a second run over the same corpus — hits.
	cache *schedCache
	// disk is the persistent second tier behind cache (nil unless
	// Config.CachePath); see disk.go. Cleared by Engine.Close.
	disk *diskTier
	// adaptive dispatch state, resolved once in New: whether per-block
	// builder selection and size-binned distribution are active, the
	// effective n² size threshold, and the small-block chunk size.
	adaptive  bool
	crossover int
	chunk     int
	// inj is the compiled fault injector; nil unless Config.FaultPlan
	// injects something.
	inj *fault.Injector

	// Lifecycle accounting: every Run/RunStream entry point increments
	// active under lcMu and decrements it on return, and Close refuses
	// (with a BusyError) while it is nonzero — so the persistent tier
	// can never be unmapped under a worker mid-probe.
	lcMu   sync.Mutex //sched:lock-rank 5
	active int        //sched:guarded-by lcMu
}

// beginRun records one entering Run/RunStream invocation.
func (e *Engine) beginRun() {
	e.lcMu.Lock()
	e.active++
	e.lcMu.Unlock()
}

// endRun retires one Run/RunStream invocation.
func (e *Engine) endRun() {
	e.lcMu.Lock()
	e.active--
	e.lcMu.Unlock()
}

// New validates cfg and builds the worker pool. Every rejected Config
// comes back as a *ConfigError wrapping ErrConfig.
func New(cfg Config) (*Engine, error) {
	if err := (&cfg).validate(); err != nil {
		return nil, err
	}
	inj, err := fault.NewInjector(cfg.FaultPlan)
	if err != nil {
		// validate already vetted the plan; this is belt and braces.
		return nil, &ConfigError{Field: "FaultPlan", Value: cfg.FaultPlan, Reason: err.Error()}
	}
	e := &Engine{cfg: cfg, workers: make([]*worker, cfg.Workers), inj: inj}
	for i := range e.workers {
		e.workers[i] = newWorker(&e.cfg)
		e.workers[i].inj = inj
	}
	if cfg.Cache {
		e.cache = newSchedCache(cfg.CacheCap)
	}
	if cfg.CachePath != "" {
		// A damaged or unopenable file is a runtime failure, not a
		// ConfigError: the Config itself is fine.
		disk, err := newDiskTier(cfg.CachePath, cfg.CacheReadOnly)
		if err != nil {
			return nil, fmt.Errorf("engine: opening cache file %s: %w", cfg.CachePath, err)
		}
		e.disk = disk
	}
	e.adaptive = !cfg.DisableAdaptive && cfg.Builder == "tableb" && !cfg.CollectDAGStats
	if e.adaptive {
		e.chunk = cfg.ChunkSize
		if e.chunk <= 0 {
			e.chunk = defaultChunk
		}
		switch {
		case cfg.Crossover < 0:
			e.crossover = 0
		case cfg.Crossover > 0:
			e.crossover = cfg.Crossover // validate clamped it to dag.N2MaskCap
		default:
			e.crossover = calibrateCrossover(e.workers[0], cfg.Model)
		}
	}
	return e, nil
}

// Crossover returns the effective adaptive-dispatch threshold — the
// configured one after clamping, or the calibrated one when
// Config.Crossover was zero. It is zero when adaptive dispatch is off.
func (e *Engine) Crossover() int { return e.crossover }

// ChunkSize returns the effective small-block claim granularity of the
// adaptive distributor (Config.ChunkSize or the default). It is zero
// when adaptive dispatch is off.
func (e *Engine) ChunkSize() int {
	if !e.adaptive {
		return 0
	}
	return e.chunk
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return len(e.workers) }

// Run schedules every block and returns a fresh BatchResult.
func (e *Engine) Run(blocks []*block.Block) (*BatchResult, error) {
	return e.RunIntoCtx(context.Background(), new(BatchResult), blocks)
}

// RunCtx is Run with cooperative cancellation: workers check ctx at
// every block claim and stop claiming once it is done (a block already
// mid-pipeline finishes — the engine never abandons a claimed block
// half-written). A cancelled run returns ctx's error; the result's
// contents are then partial and its Stats are not computed.
//
//sched:cancellable
func (e *Engine) RunCtx(ctx context.Context, blocks []*block.Block) (*BatchResult, error) {
	return e.RunIntoCtx(ctx, new(BatchResult), blocks)
}

// RunInto is Run recycling a previous BatchResult's storage.
func (e *Engine) RunInto(res *BatchResult, blocks []*block.Block) (*BatchResult, error) {
	return e.RunIntoCtx(context.Background(), res, blocks)
}

// RunIntoCtx is RunCtx recycling a previous BatchResult's storage.
//
//sched:cancellable
func (e *Engine) RunIntoCtx(ctx context.Context, res *BatchResult, blocks []*block.Block) (*BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.beginRun()
	defer e.endRun()
	nb := len(blocks)
	res.Cycles = buf.Int32(res.Cycles, nb)
	res.Arcs = buf.Int32(res.Arcs, nb)
	res.durs = buf.Int64(res.durs, nb)
	if e.cfg.KeepOrders {
		total := 0
		for _, b := range blocks {
			total += b.Len()
		}
		res.orderArena = buf.Int32(res.orderArena, total)
		if cap(res.Orders) < nb {
			res.Orders = make([][]int32, nb)
		}
		res.Orders = res.Orders[:nb]
		off := 0
		for i, b := range blocks {
			res.Orders[i] = res.orderArena[off : off+b.Len()]
			off += b.Len()
		}
	} else {
		res.Orders = res.Orders[:0]
	}
	if e.cfg.CollectDAGStats {
		if cap(res.DAGStats) < nb {
			res.DAGStats = make([]dag.Stats, nb)
		}
		res.DAGStats = res.DAGStats[:nb]
		for i := range res.DAGStats {
			res.DAGStats[i] = dag.Stats{}
		}
	} else {
		res.DAGStats = res.DAGStats[:0]
	}
	res.errs = res.errs[:0]
	if e.cfg.Verify {
		if cap(res.errs) < nb {
			res.errs = make([]error, nb)
		}
		res.errs = res.errs[:nb]
		for i := range res.errs {
			res.errs[i] = nil
		}
	}
	if cap(res.Rungs) < nb {
		res.Rungs = make([]Rung, nb)
	}
	res.Rungs = res.Rungs[:nb]
	for i := range res.Rungs {
		res.Rungs[i] = RungPrimary
	}

	for _, w := range e.workers {
		w.hits, w.misses, w.diskHits = 0, 0, 0
		w.bins = [nBins]binAcc{}
		w.packedBlocks = 0
		w.quars, w.demoted, w.gateFails, w.faults = 0, 0, 0, 0
	}

	// done is nil for Background-style contexts, so the fault-free Run
	// path's per-claim cancellation check is a single nil test.
	done := ctx.Done()

	start := time.Now()
	switch {
	case nb == 0:
		// Nothing to schedule: leave the stats zeroed and spawn no
		// workers.
	case len(e.workers) == 1:
		w := e.workers[0]
		for i := range blocks {
			if cancelled(done) {
				break
			}
			e.process(w, res, blocks, i)
		}
	case e.adaptive:
		e.runBinned(res, blocks, done)
	default:
		var next atomic.Int64
		var wg sync.WaitGroup
		for _, w := range e.workers {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				for {
					if cancelled(done) {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= len(blocks) {
						return
					}
					e.process(w, res, blocks, i)
				}
			}(w)
		}
		wg.Wait()
	}
	wall := time.Since(start)
	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("engine: run cancelled: %w", err)
	}

	st := &res.Stats
	bins := st.Bins[:0] // retain the bin slice's capacity across runs
	*st = Stats{Workers: len(e.workers), Blocks: nb, WallSeconds: wall.Seconds()}
	if e.adaptive {
		st.Crossover = e.crossover
		st.ChunkSize = e.chunk
		if nb > 0 {
			st.Bins = e.collectBins(bins)
		}
	}
	for _, b := range blocks {
		st.Insts += int64(b.Len())
	}
	for i := 0; i < nb; i++ {
		st.Arcs += int64(res.Arcs[i])
		st.TotalCycles += int64(res.Cycles[i])
	}
	if s := wall.Seconds(); s > 0 {
		st.BlocksPerSec = float64(nb) / s
		st.InstsPerSec = float64(st.Insts) / s
		st.ArcsPerSec = float64(st.Arcs) / s
	}
	for _, w := range e.workers {
		st.CacheHits += w.hits
		st.CacheMisses += w.misses
		st.DiskHits += w.diskHits
		st.PackedSelBlocks += w.packedBlocks
		st.Quarantines += w.quars
		st.Demotions += w.demoted
		st.GateFailures += w.gateFails
		st.FaultsInjected += w.faults
	}
	if total := st.CacheHits + st.DiskHits + st.CacheMisses; total > 0 {
		st.CacheHitRate = float64(st.CacheHits+st.DiskHits) / float64(total)
	}
	for _, rg := range res.Rungs {
		if rg != RungPrimary {
			st.DegradedBlocks++
		}
	}
	if nb > 0 {
		res.sorted = buf.Int64(res.sorted, nb)
		copy(res.sorted, res.durs)
		slices.Sort(res.sorted)
		st.P50Micros = float64(res.sorted[(nb-1)*50/100]) / 1e3
		st.P99Micros = float64(res.sorted[(nb-1)*99/100]) / 1e3
	}

	for i, err := range res.errs {
		if err != nil {
			return res, fmt.Errorf("engine: block %d (%s): %w", i, blocks[i].Name, err)
		}
	}
	return res, nil
}

// cancelled is the per-claim cooperative cancellation check; done is
// nil when the run has no cancellable context.
func cancelled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// process runs block i in worker w's scratch and writes its slot of
// the batch result. Slots are disjoint per block, so no locking. With
// the cache enabled, a fingerprint hit that passes the output gate
// copies the memoized schedule into the slot and skips the entire
// pipeline; everything else descends the degradation ladder, which
// always produces a gated schedule.
//
//sched:recover-boundary
func (e *Engine) process(w *worker, res *BatchResult, blocks []*block.Block, i int) {
	b := blocks[i]
	t0 := time.Now()
	if e.cfg.BlockTimeout > 0 {
		w.deadline = t0.Add(e.cfg.BlockTimeout)
	} else {
		w.deadline = time.Time{}
	}
	var h uint64
	if e.cache != nil || w.inj != nil {
		w.enc = appendBlockKey(w.enc[:0], b.Insts)
		h = fnv1a64(w.enc)
	}
	if e.cache != nil {
		if ent := e.cache.lookup(h, w.enc); ent != nil && e.serveHit(w, res, blocks, i, ent, h, t0) {
			return
		}
		// An L1 miss (or a poisoned hit the gate rejected and dropped)
		// probes the persistent tier before paying for the pipeline.
		if e.disk != nil && e.probeDisk(w, h) && e.serveDiskHit(w, res, blocks, i, h, t0) {
			return
		}
		// Missed both tiers — or a served entry failed the gate, which
		// already dropped it from both; either way the pipeline runs.
		w.misses++
	}
	rung, path, r, d := e.ladder(w, b, h)
	res.Rungs[i] = rung
	res.Cycles[i] = r.Cycles
	if d != nil {
		res.Arcs[i] = int32(d.NumArcs)
	} else {
		res.Arcs[i] = 0 // the identity rung builds no DAG
	}
	if res.Orders != nil {
		copy(res.Orders[i], r.Order)
	}
	if res.DAGStats != nil {
		if d != nil {
			res.DAGStats[i] = d.Statistics()
		} else {
			res.DAGStats[i] = dag.Stats{}
		}
	}
	if e.cache != nil && rung == RungPrimary {
		// Only healthy primary results are memoized: a degraded rung's
		// schedule (identity in particular) must never masquerade as
		// the canonical one for later occurrences of the same block.
		ent := &cacheEntry{
			key:    append([]byte(nil), w.enc...),
			order:  append([]int32(nil), r.Order...),
			issue:  append([]int32(nil), r.Issue...),
			cycles: r.Cycles,
			arcs:   int32(d.NumArcs),
		}
		if res.DAGStats != nil {
			ent.stats = res.DAGStats[i]
		}
		e.cache.insert(h, ent)
		if e.disk != nil {
			e.disk.enqueue(h, ent)
		}
	}
	if e.cfg.Verify {
		res.errs[i] = verify(b, r, e.cfg.Model, w.rt)
	}
	res.durs[i] = int64(time.Since(t0))
	if e.adaptive {
		w.binAdd(b.Len(), res.durs[i], path)
	}
}

// serveHit serves block i from cache entry ent, running the
// structural half of the output gate (and the cache-bitflip injection
// point) on the way out. It reports false — leaving the result slot
// untouched and the poisoned entry removed from the cache — when the
// served schedule fails the gate; the caller then recomputes the
// block on the ladder.
func (e *Engine) serveHit(w *worker, res *BatchResult, blocks []*block.Block, i int, ent *cacheEntry, h uint64, t0 time.Time) bool {
	b := blocks[i]
	order := ent.order
	if w.inj.Should(fault.CacheBitflip, h) {
		// Poison a scratch copy: the shared entry is immutable and may
		// be mid-read by another worker.
		w.flip = buf.Int32(w.flip, len(ent.order))
		copy(w.flip, ent.order)
		w.inj.FlipBit(w.flip, h)
		w.faults++
		order = w.flip
	}
	if !w.structuralGate(order, ent.issue, b.Len()) {
		w.gateFails++
		e.cache.remove(h, ent.key)
		if e.disk != nil {
			// Both tiers: the poisoned schedule must not be served to
			// any later process either.
			e.disk.remove(h, ent.key)
		}
		return false
	}
	w.hits++
	res.Cycles[i] = ent.cycles
	res.Arcs[i] = ent.arcs
	res.Rungs[i] = RungPrimary
	if res.Orders != nil {
		copy(res.Orders[i], order)
	}
	if res.DAGStats != nil {
		res.DAGStats[i] = ent.stats
	}
	if e.cfg.Verify {
		// Same independent witness as a computed schedule; the
		// simulator needs the worker's table prepared for b.
		w.rt.PrepareBlock(b.Insts)
		w.hitRes = sched.Result{Order: ent.order, Issue: ent.issue, Cycles: ent.cycles}
		res.errs[i] = verify(b, &w.hitRes, e.cfg.Model, w.rt)
	}
	res.durs[i] = int64(time.Since(t0))
	if e.adaptive {
		w.binAdd(b.Len(), res.durs[i], pathCached)
	}
	return true
}

// verify re-times the schedule on the scoreboard simulator, which
// derives timing from raw def/use information rather than DAG arcs,
// and demands cycle-exact agreement. The worker's resource table is
// still prepared for b when this runs.
func verify(b *block.Block, r *sched.Result, m *machine.Model, rt *resource.Table) error {
	sim := pipe.Simulate(b.Insts, r.Order, m, rt)
	if sim.Cycles != r.Cycles {
		return fmt.Errorf("simulator completes in %d cycles, schedule claims %d", sim.Cycles, r.Cycles)
	}
	for pos, node := range r.Order {
		if sim.Issue[pos] != r.Issue[node] {
			return fmt.Errorf("position %d (node %d): simulator issues at %d, schedule at %d",
				pos, node, sim.Issue[pos], r.Issue[node])
		}
	}
	return nil
}
