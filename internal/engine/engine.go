// Package engine is the batch scheduling engine: it fans the basic
// blocks of a compilation unit across a pool of workers, each owning
// the full set of reusable scratch structures — a resource.Table, a
// dag.BuildArena, a heur.Annot, a sched.Scratch and a pooled winnowing
// selector — so the steady-state per-block pipeline (prepare → build →
// heuristics → schedule) performs no allocations once every buffer has
// grown to the stream's largest block.
//
// Work distribution is an atomic index counter; each result is written
// to its block's slot, so the output is byte-identical to a serial run
// of the same pipeline regardless of worker count or interleaving.
package engine

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"daginsched/internal/block"
	"daginsched/internal/buf"
	"daginsched/internal/dag"
	"daginsched/internal/heur"
	"daginsched/internal/machine"
	"daginsched/internal/pipe"
	"daginsched/internal/resource"
	"daginsched/internal/sched"
)

// Config configures an Engine.
type Config struct {
	// Workers is the worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Model is the target machine. Required.
	Model *machine.Model
	// Mem selects the memory-disambiguation model for the per-worker
	// resource tables. The zero value is resource.MemExprModel.
	Mem resource.MemModel
	// Builder selects the construction pipeline: "tableb" (default) is
	// backward table building with the static heuristics fused into
	// construction — the paper's third approach; "tablef" is forward
	// table building with a separate backward heuristic pass.
	Builder string
	// KeepOrders retains each block's scheduled order in the result
	// (copied out of worker scratch into one flat per-batch arena).
	KeepOrders bool
	// CollectDAGStats retains per-block dag.Stats.
	CollectDAGStats bool
	// Verify re-times every schedule on the pipe scoreboard simulator —
	// an independent witness that never consults the DAG — and fails
	// the run on any cycle disagreement. Cache hits are re-simulated
	// too: a memoized schedule gets the same independent witness as a
	// freshly computed one.
	Verify bool
	// DisableCSR turns off the frozen flat-adjacency (CSR) hot path and
	// falls back to the PR 1 pipeline that chases per-node arc slices.
	// The schedules are identical either way; the switch exists for
	// benchmarking the layouts against each other.
	DisableCSR bool
	// Cache enables the block-fingerprint schedule cache: repeated
	// blocks skip DAG construction, heuristics and scheduling, copying
	// the memoized schedule into the result slot. Output is
	// byte-identical with the cache on or off.
	Cache bool
	// CacheCap bounds the cache's total entry count (<= 0 means a
	// 65536-entry default). A full shard is reset, not evicted LRU —
	// the bound is a safety valve, not a tuning surface.
	CacheCap int
	// Crossover is the adaptive-dispatch size threshold: a block of at
	// most this many instructions is attempted on the n²-direct
	// pipeline (compare-against-all construction, no table reset, no
	// CSR freeze), falling back to table building for that block alone
	// when the n² DAG is not transitive-free. Zero means measure the
	// crossover with a one-time calibration probe inside New; a
	// negative value keeps adaptive distribution and bin statistics but
	// never routes a block to the n² builder. Values beyond
	// dag.N2MaskCap are clamped to it.
	Crossover int
	// ChunkSize is how many small blocks (at most dag.N2MaskCap insts)
	// a worker claims per atomic fetch under adaptive distribution;
	// <= 0 means 32. Large blocks are always claimed one at a time.
	ChunkSize int
	// DisableAdaptive restores the fixed pipeline (every block table-
	// built) and the per-block atomic work grab. Adaptive dispatch is
	// also implicitly disabled for Builder "tablef" (the n² identity
	// argument is proven against backward table building) and under
	// CollectDAGStats (arc *kinds* may legitimately differ between the
	// builders on equal-delay ties, so ByKind tallies could too).
	DisableAdaptive bool
}

// Stats summarizes one batch run; the JSON form is what cmd/schedbench
// -parallel writes to BENCH_engine.json.
type Stats struct {
	Workers      int     `json:"workers"`
	Blocks       int     `json:"blocks"`
	Insts        int64   `json:"insts"`
	Arcs         int64   `json:"arcs"`
	TotalCycles  int64   `json:"total_cycles"`
	WallSeconds  float64 `json:"wall_seconds"`
	BlocksPerSec float64 `json:"blocks_per_sec"`
	InstsPerSec  float64 `json:"insts_per_sec"`
	ArcsPerSec   float64 `json:"arcs_per_sec"`
	P50Micros    float64 `json:"p50_block_micros"`
	P99Micros    float64 `json:"p99_block_micros"`
	// CacheHits/CacheMisses count schedule-cache outcomes for the run
	// (both zero when the cache is disabled); CacheHitRate is
	// hits/(hits+misses).
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Crossover and ChunkSize echo the adaptive-dispatch configuration
	// in effect for the run, and Bins breaks the run down by block-size
	// bin. All are zero/empty when adaptive dispatch is off.
	Crossover int        `json:"crossover,omitempty"`
	ChunkSize int        `json:"chunk_size,omitempty"`
	Bins      []BinStats `json:"bins,omitempty"`
}

// BatchResult is the outcome of one Run, indexed by block position.
// Its slices are owned by the result and recycled by RunInto.
type BatchResult struct {
	// Cycles is each block's schedule completion time.
	Cycles []int32
	// Arcs is each block's DAG arc count.
	Arcs []int32
	// Orders holds each block's scheduled order (empty unless
	// Config.KeepOrders); the subslices share one flat arena.
	Orders [][]int32
	// DAGStats holds per-block structural statistics (empty unless
	// Config.CollectDAGStats).
	DAGStats []dag.Stats
	// Stats is the run summary.
	Stats Stats

	orderArena []int32
	durs       []int64 // per-block wall nanos
	sorted     []int64 // percentile scratch
	errs       []error // per-block verify outcome (Verify only)
	perm       []int32 // adaptive distribution order (size desc)
}

// worker is one pool member's private scratch: every structure here is
// recycled block to block and never shared.
type worker struct {
	rt    *resource.Table
	ar    dag.BuildArena
	a     *heur.Annot
	obs   heur.FusedBackward
	bld   dag.ReuseBuilder
	fused bool
	csr   bool
	sc    sched.Scratch
	sel   *sched.PooledWinnow

	// Schedule-cache scratch: the recycled key-encoding buffer, the
	// per-run hit/miss tallies (summed lock-free into Stats after the
	// pool drains) and a Result shell for re-verifying cached hits.
	enc          []byte
	hits, misses int64
	hitRes       sched.Result

	// bins are the per-run size-bin tallies under adaptive dispatch,
	// summed lock-free into Stats.Bins after the pool drains.
	bins [nBins]binAcc
}

func newWorker(cfg *Config) *worker {
	w := &worker{
		rt:  resource.NewTable(cfg.Mem),
		a:   heur.New(nil, cfg.Model),
		csr: !cfg.DisableCSR,
		sel: sched.NewPooledWinnow(sched.Section6Ranked()),
	}
	switch {
	case cfg.Builder == "tablef":
		w.bld = dag.TableForward{}
	case w.csr:
		// CSR pipeline: plain backward table building, then one fused
		// reverse walk over the frozen flat arc array computes every
		// heuristic the selector reads — the construction observer is
		// not needed.
		w.bld = dag.TableBackward{}
	default:
		w.fused = true
		w.obs = heur.FusedBackward{A: w.a, ComputeLocals: true}
		w.bld = dag.TableBackward{Observer: &w.obs}
	}
	return w
}

// schedule runs the full per-block pipeline in worker scratch. The
// returned Result and DAG are worker-owned and valid only until the
// worker's next block.
func (w *worker) schedule(b *block.Block, m *machine.Model) (*sched.Result, *dag.DAG) {
	w.rt.PrepareBlock(b.Insts)
	return w.finish(w.bld.BuildInto(&w.ar, b, m, w.rt), m)
}

// finish runs the post-construction half of the fixed pipeline —
// heuristics then list scheduling — on a table-built DAG.
func (w *worker) finish(d *dag.DAG, m *machine.Model) (*sched.Result, *dag.DAG) {
	if w.csr {
		// Freeze the DAG into its flat CSR view; the heuristic pass and
		// the scheduler below both run over the two flat arc arrays.
		d.Freeze()
		w.a.D = d
		w.a.ComputeFusedCSR()
	} else if !w.fused {
		w.a.D = d
		w.a.ComputeBackward()
		w.a.ComputeLocal()
	}
	return w.sc.Forward(d, m, w.a, w.sel), d
}

// scheduleN2 is the n²-direct pipeline of adaptive dispatch: build the
// block with compare-against-all construction (no per-resource table
// state to reset) and, when the DAG comes out transitive-free, skip
// the CSR freeze and schedule straight off the per-node arc lists. A
// transitive-free n² arc set is identical — same pairs, same deduped
// delays — to the table builder's, so the schedule is byte-identical
// to the fixed pipeline's (see dag.N2Forward.BuildCleanInto). Dirty
// blocks fall back to the fixed pipeline; the resource table is
// already prepared and interned IDs are stable, so only construction
// restarts. usedN2 reports which pipeline produced the result.
func (w *worker) scheduleN2(b *block.Block, m *machine.Model) (r *sched.Result, d *dag.DAG, usedN2 bool) {
	w.rt.PrepareBlock(b.Insts)
	nd, clean := dag.N2Forward{}.BuildCleanInto(&w.ar, b, m, w.rt)
	if !clean {
		r, d = w.finish(w.bld.BuildInto(&w.ar, b, m, w.rt), m)
		return r, d, false
	}
	w.a.D = nd
	w.a.ComputeBackward()
	w.a.ComputeLocal()
	return w.sc.Forward(nd, m, w.a, w.sel), nd, true
}

// Engine is a reusable batch scheduler. Create one with New, then call
// Run (or RunInto) any number of times; workers and their scratch
// arenas persist across runs, which is what makes repeated batches
// allocation-free in steady state.
type Engine struct {
	cfg     Config
	workers []*worker
	// cache is the block-fingerprint schedule cache (nil unless
	// Config.Cache). It persists across Run calls, so a corpus that
	// repeats — or a second run over the same corpus — hits.
	cache *schedCache
	// adaptive dispatch state, resolved once in New: whether per-block
	// builder selection and size-binned distribution are active, the
	// effective n² size threshold, and the small-block chunk size.
	adaptive  bool
	crossover int
	chunk     int
}

// New validates cfg and builds the worker pool.
func New(cfg Config) (*Engine, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("engine: Config.Model is required")
	}
	switch cfg.Builder {
	case "":
		cfg.Builder = "tableb"
	case "tableb", "tablef":
	default:
		return nil, fmt.Errorf("engine: unknown builder %q (want tableb or tablef)", cfg.Builder)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{cfg: cfg, workers: make([]*worker, cfg.Workers)}
	for i := range e.workers {
		e.workers[i] = newWorker(&e.cfg)
	}
	if cfg.Cache {
		e.cache = newSchedCache(cfg.CacheCap)
	}
	e.adaptive = !cfg.DisableAdaptive && cfg.Builder == "tableb" && !cfg.CollectDAGStats
	if e.adaptive {
		e.chunk = cfg.ChunkSize
		if e.chunk <= 0 {
			e.chunk = defaultChunk
		}
		switch {
		case cfg.Crossover < 0:
			e.crossover = 0
		case cfg.Crossover > 0:
			e.crossover = min(cfg.Crossover, dag.N2MaskCap)
		default:
			e.crossover = calibrateCrossover(e.workers[0], cfg.Model)
		}
	}
	return e, nil
}

// Crossover returns the effective adaptive-dispatch threshold — the
// configured one after clamping, or the calibrated one when
// Config.Crossover was zero. It is zero when adaptive dispatch is off.
func (e *Engine) Crossover() int { return e.crossover }

// ChunkSize returns the effective small-block claim granularity of the
// adaptive distributor (Config.ChunkSize or the default). It is zero
// when adaptive dispatch is off.
func (e *Engine) ChunkSize() int {
	if !e.adaptive {
		return 0
	}
	return e.chunk
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return len(e.workers) }

// Run schedules every block and returns a fresh BatchResult.
func (e *Engine) Run(blocks []*block.Block) (*BatchResult, error) {
	return e.RunInto(new(BatchResult), blocks)
}

// RunInto is Run recycling a previous BatchResult's storage.
func (e *Engine) RunInto(res *BatchResult, blocks []*block.Block) (*BatchResult, error) {
	nb := len(blocks)
	res.Cycles = buf.Int32(res.Cycles, nb)
	res.Arcs = buf.Int32(res.Arcs, nb)
	res.durs = buf.Int64(res.durs, nb)
	if e.cfg.KeepOrders {
		total := 0
		for _, b := range blocks {
			total += b.Len()
		}
		res.orderArena = buf.Int32(res.orderArena, total)
		if cap(res.Orders) < nb {
			res.Orders = make([][]int32, nb)
		}
		res.Orders = res.Orders[:nb]
		off := 0
		for i, b := range blocks {
			res.Orders[i] = res.orderArena[off : off+b.Len()]
			off += b.Len()
		}
	} else {
		res.Orders = res.Orders[:0]
	}
	if e.cfg.CollectDAGStats {
		if cap(res.DAGStats) < nb {
			res.DAGStats = make([]dag.Stats, nb)
		}
		res.DAGStats = res.DAGStats[:nb]
		for i := range res.DAGStats {
			res.DAGStats[i] = dag.Stats{}
		}
	} else {
		res.DAGStats = res.DAGStats[:0]
	}
	res.errs = res.errs[:0]
	if e.cfg.Verify {
		if cap(res.errs) < nb {
			res.errs = make([]error, nb)
		}
		res.errs = res.errs[:nb]
		for i := range res.errs {
			res.errs[i] = nil
		}
	}

	for _, w := range e.workers {
		w.hits, w.misses = 0, 0
		w.bins = [nBins]binAcc{}
	}

	start := time.Now()
	switch {
	case nb == 0:
		// Nothing to schedule: leave the stats zeroed and spawn no
		// workers.
	case len(e.workers) == 1:
		w := e.workers[0]
		for i := range blocks {
			e.process(w, res, blocks, i)
		}
	case e.adaptive:
		e.runBinned(res, blocks)
	default:
		var next atomic.Int64
		var wg sync.WaitGroup
		for _, w := range e.workers {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(blocks) {
						return
					}
					e.process(w, res, blocks, i)
				}
			}(w)
		}
		wg.Wait()
	}
	wall := time.Since(start)

	st := &res.Stats
	bins := st.Bins[:0] // retain the bin slice's capacity across runs
	*st = Stats{Workers: len(e.workers), Blocks: nb, WallSeconds: wall.Seconds()}
	if e.adaptive {
		st.Crossover = e.crossover
		st.ChunkSize = e.chunk
		if nb > 0 {
			st.Bins = e.collectBins(bins)
		}
	}
	for _, b := range blocks {
		st.Insts += int64(b.Len())
	}
	for i := 0; i < nb; i++ {
		st.Arcs += int64(res.Arcs[i])
		st.TotalCycles += int64(res.Cycles[i])
	}
	if s := wall.Seconds(); s > 0 {
		st.BlocksPerSec = float64(nb) / s
		st.InstsPerSec = float64(st.Insts) / s
		st.ArcsPerSec = float64(st.Arcs) / s
	}
	for _, w := range e.workers {
		st.CacheHits += w.hits
		st.CacheMisses += w.misses
	}
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		st.CacheHitRate = float64(st.CacheHits) / float64(total)
	}
	if nb > 0 {
		res.sorted = buf.Int64(res.sorted, nb)
		copy(res.sorted, res.durs)
		slices.Sort(res.sorted)
		st.P50Micros = float64(res.sorted[(nb-1)*50/100]) / 1e3
		st.P99Micros = float64(res.sorted[(nb-1)*99/100]) / 1e3
	}

	for i, err := range res.errs {
		if err != nil {
			return res, fmt.Errorf("engine: block %d (%s): %w", i, blocks[i].Name, err)
		}
	}
	return res, nil
}

// process runs block i in worker w's scratch and writes its slot of
// the batch result. Slots are disjoint per block, so no locking. With
// the cache enabled, a fingerprint hit copies the memoized schedule
// into the slot and skips the entire pipeline.
func (e *Engine) process(w *worker, res *BatchResult, blocks []*block.Block, i int) {
	b := blocks[i]
	t0 := time.Now()
	var h uint64
	if e.cache != nil {
		w.enc = appendBlockKey(w.enc[:0], b.Insts)
		h = fnv1a64(w.enc)
		if ent := e.cache.lookup(h, w.enc); ent != nil {
			w.hits++
			res.Cycles[i] = ent.cycles
			res.Arcs[i] = ent.arcs
			if res.Orders != nil {
				copy(res.Orders[i], ent.order)
			}
			if res.DAGStats != nil {
				res.DAGStats[i] = ent.stats
			}
			if e.cfg.Verify {
				// Same independent witness as a computed schedule; the
				// simulator needs the worker's table prepared for b.
				w.rt.PrepareBlock(b.Insts)
				w.hitRes = sched.Result{Order: ent.order, Issue: ent.issue, Cycles: ent.cycles}
				res.errs[i] = verify(b, &w.hitRes, e.cfg.Model, w.rt)
			}
			res.durs[i] = int64(time.Since(t0))
			if e.adaptive {
				w.binAdd(b.Len(), res.durs[i], pathCached)
			}
			return
		}
		w.misses++
	}
	var r *sched.Result
	var d *dag.DAG
	path := pathTable
	if n := b.Len(); e.adaptive && n > 0 && n <= e.crossover {
		var usedN2 bool
		if r, d, usedN2 = w.scheduleN2(b, e.cfg.Model); usedN2 {
			path = pathN2
		}
	} else {
		r, d = w.schedule(b, e.cfg.Model)
	}
	res.Cycles[i] = r.Cycles
	res.Arcs[i] = int32(d.NumArcs)
	if res.Orders != nil {
		copy(res.Orders[i], r.Order)
	}
	if res.DAGStats != nil {
		res.DAGStats[i] = d.Statistics()
	}
	if e.cache != nil {
		ent := &cacheEntry{
			key:    append([]byte(nil), w.enc...),
			order:  append([]int32(nil), r.Order...),
			issue:  append([]int32(nil), r.Issue...),
			cycles: r.Cycles,
			arcs:   int32(d.NumArcs),
		}
		if res.DAGStats != nil {
			ent.stats = res.DAGStats[i]
		}
		e.cache.insert(h, ent)
	}
	if e.cfg.Verify {
		res.errs[i] = verify(b, r, e.cfg.Model, w.rt)
	}
	res.durs[i] = int64(time.Since(t0))
	if e.adaptive {
		w.binAdd(b.Len(), res.durs[i], path)
	}
}

// verify re-times the schedule on the scoreboard simulator, which
// derives timing from raw def/use information rather than DAG arcs,
// and demands cycle-exact agreement. The worker's resource table is
// still prepared for b when this runs.
func verify(b *block.Block, r *sched.Result, m *machine.Model, rt *resource.Table) error {
	sim := pipe.Simulate(b.Insts, r.Order, m, rt)
	if sim.Cycles != r.Cycles {
		return fmt.Errorf("simulator completes in %d cycles, schedule claims %d", sim.Cycles, r.Cycles)
	}
	for pos, node := range r.Order {
		if sim.Issue[pos] != r.Issue[node] {
			return fmt.Errorf("position %d (node %d): simulator issues at %d, schedule at %d",
				pos, node, sim.Issue[pos], r.Issue[node])
		}
	}
	return nil
}
