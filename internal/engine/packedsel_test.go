package engine

import (
	"testing"

	"daginsched/internal/fault"
	"daginsched/internal/machine"
)

// TestPackedSelMatchesWinnow is the packed-selection identity gate:
// with the packed-priority heap engaged (the default), every block's
// cycle count, arc count and scheduled order must be byte-identical to
// the winnowing reference (DisablePackedSel), at every worker count —
// including a faulted run, where quarantined workers, degraded rungs
// and poisoned cache entries must not perturb the selection either.
func TestPackedSelMatchesWinnow(t *testing.T) {
	m := machine.Pipe1()
	blocks := adaptiveCorpus(t)
	ref, err := New(Config{Workers: 4, Model: m, KeepOrders: true, DisablePackedSel: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if want.Stats.PackedSelBlocks != 0 {
		t.Fatalf("DisablePackedSel run reports %d packed blocks", want.Stats.PackedSelBlocks)
	}
	configs := []struct {
		name string
		cfg  Config
	}{
		{"w1", Config{Workers: 1, Model: m, KeepOrders: true}},
		{"w4", Config{Workers: 4, Model: m, KeepOrders: true}},
		{"w8", Config{Workers: 8, Model: m, KeepOrders: true}},
		{"w8-faulted", Config{Workers: 8, Model: m, KeepOrders: true, Cache: true,
			FaultPlan: &fault.Plan{Seed: 11, PanicBuilder: 0.05, CacheBitflip: 0.2}}},
	}
	for _, tc := range configs {
		e, err := New(tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Run(blocks)
		if err != nil {
			t.Fatal(err)
		}
		if tc.cfg.FaultPlan == nil && got.Stats.PackedSelBlocks != int64(len(blocks)) {
			t.Errorf("%s: %d of %d blocks took the packed path", tc.name, got.Stats.PackedSelBlocks, len(blocks))
		}
		for i := range blocks {
			if tc.cfg.FaultPlan != nil && got.Rungs[i] == RungIdentity {
				// An identity-rung block keeps program order by design;
				// it is outside the selection identity claim.
				continue
			}
			if got.Cycles[i] != want.Cycles[i] {
				t.Fatalf("%s block %d (%d insts): %d cycles, winnow %d",
					tc.name, i, blocks[i].Len(), got.Cycles[i], want.Cycles[i])
			}
			for p := range want.Orders[i] {
				if got.Orders[i][p] != want.Orders[i][p] {
					t.Fatalf("%s block %d position %d: node %d, winnow %d",
						tc.name, i, p, got.Orders[i][p], want.Orders[i][p])
				}
			}
		}
	}
}

// TestPackedSelStats pins the PackedSelBlocks accounting: all blocks on
// a healthy default run, zero under DisablePackedSel, and cache hits
// don't double-count.
func TestPackedSelStats(t *testing.T) {
	m := machine.Pipe1()
	blocks := testBlocks(t, 10)
	e, err := New(Config{Workers: 2, Model: m, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PackedSelBlocks != int64(len(blocks)) {
		t.Errorf("first run: PackedSelBlocks = %d, want %d", res.Stats.PackedSelBlocks, len(blocks))
	}
	// Second run: every block is a cache hit and schedules nothing.
	res, err = e.Run(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHits != int64(len(blocks)) || res.Stats.PackedSelBlocks != 0 {
		t.Errorf("cached run: hits=%d packed=%d, want %d and 0",
			res.Stats.CacheHits, res.Stats.PackedSelBlocks, len(blocks))
	}
}

// TestEnginePackedSteadyStateZeroAlloc pins the zero-allocation
// property of the packed selection path across whole batch runs.
func TestEnginePackedSteadyStateZeroAlloc(t *testing.T) {
	m := machine.Pipe1()
	blocks := testBlocks(t, 20)
	e, err := New(Config{Workers: 1, Model: m, KeepOrders: true})
	if err != nil {
		t.Fatal(err)
	}
	res := new(BatchResult)
	if _, err := e.RunInto(res, blocks); err != nil {
		t.Fatal(err)
	}
	if res.Stats.PackedSelBlocks != int64(len(blocks)) {
		t.Fatalf("only %d of %d blocks took the packed path; the test would prove nothing",
			res.Stats.PackedSelBlocks, len(blocks))
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.RunInto(res, blocks); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state packed batch run allocates %.1f/batch, want 0", allocs)
	}
}
