// The streaming constant-memory pipeline. Run materializes a whole
// corpus before scheduling, so peak memory grows linearly with corpus
// size and ingestion is fully serialized with scheduling. RunStream
// overlaps the three phases — ingestion, scheduling, emission — so a
// 100M-instruction run needs memory proportional to the configured
// queue depth, never to the corpus:
//
//		src ─► dispatcher ─► bigQ (1 block/slot)  ─► workers ─► reorder ring ─► emitter ─► sink
//		                └──► smallQ (chunk/slot)  ─┘
//
//	  - The dispatcher assigns each block a dense sequence number and
//	    routes it online by size: blocks above smallCutoff go to bigQ one
//	    per slot, the small tail is batched into chunks of the engine's
//	    chunk size. This preserves the PR 4 LPT spirit — a worker always
//	    prefers the big-block queue, and tiny blocks are claimed in
//	    chunks to amortize contention — without needing the full batch
//	    for a counting sort. Both queues are bounded, so a slow consumer
//	    backpressures the producer through src.
//	  - Workers run the exact per-block pipeline of Run: the same cache
//	    lookup, the same adaptive n²/table dispatch, the same degradation
//	    ladder and output gate. A block's schedule is a pure function of
//	    its instruction bytes once the engine is configured, so streamed
//	    schedules are byte-identical to batch schedules regardless of
//	    arrival order or interleaving.
//	  - Finished blocks are deposited into a reorder ring sized to the
//	    maximum number of in-flight sequence numbers; a dedicated emitter
//	    drains it in sequence order and invokes the sink serially. The
//	    sizing makes deposits wait-free in the healthy case: every
//	    assigned-but-unemitted block occupies a queue slot, a worker, or
//	    a ring slot, and the ring has room for all of them.
//
// Per-block latency percentiles come from a fixed log-scale histogram
// (4 sub-buckets per octave, ~12% resolution) rather than a recorded
// duration per block — the one place streaming stats are approximate
// where batch stats are exact, because an exact per-block record would
// grow with the corpus.
package engine

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"daginsched/internal/block"
	"daginsched/internal/buf"
	"daginsched/internal/fault"
	"daginsched/internal/sched"
)

// defaultStreamDepth is the bounded-queue depth (in blocks) when
// Config.StreamDepth is unset.
const defaultStreamDepth = 256

// BlockOutcome is one streamed block's result, delivered to the
// RunStream sink in sequence order. Seq numbers blocks in arrival
// order starting at 0. Order (present only under Config.KeepOrders)
// aliases a recycled ring buffer and is valid only for the duration of
// the sink call — a sink that retains it must copy. Block is the
// producer's pointer, handed back so a freelist-driven producer can
// recycle its storage once the sink call returns.
type BlockOutcome struct {
	Seq    int64
	Block  *block.Block
	Cycles int32
	Arcs   int32
	Rung   Rung
	Order  []int32
	// Err is this block's simulator cross-check failure (Config.Verify
	// only); the stream keeps running and RunStream returns the first
	// such error after the drain.
	Err error
}

// streamItem is one dispatched block: its dense sequence number and
// the producer's block pointer.
type streamItem struct {
	seq int64
	b   *block.Block
}

// Reorder-ring slot states: free (writable by the next depositor of
// the slot's sequence residue), ready (deposited, awaiting emission),
// sinking (the emitter is inside the sink call; the slot's storage may
// not be reused yet).
const (
	slotFree uint8 = iota
	slotReady
	slotSinking
)

// streamSlot is one reorder-ring entry. The order slice is the
// recycled backing for BlockOutcome.Order, grown once per slot to the
// stream's largest block and reused thereafter.
type streamSlot struct {
	state uint8
	out   BlockOutcome
	order []int32
}

// Latency histogram: 16 exact buckets for durations under 16ns, then 4
// sub-buckets per power of two — ~12% worst-case relative error on the
// reported percentiles, constant memory at any stream length.
const streamHistBuckets = 16 + 4*60

// streamAcc is one worker's streaming tallies, written without
// synchronization (each worker owns its slot exclusively) and summed
// after the pool drains.
type streamAcc struct {
	blocks   int64
	insts    int64
	arcs     int64
	cycles   int64
	degraded int64
	hist     [streamHistBuckets]int64
}

// histAdd records one finished block and its wall nanos.
//
//sched:noalloc
func (a *streamAcc) histAdd(nanos int64) {
	a.hist[histIndex(nanos)]++
	a.blocks++
}

// histIndex maps a duration to its histogram bucket.
//
//sched:noalloc
func histIndex(nanos int64) int {
	if nanos < 0 {
		return 0
	}
	if nanos < 16 {
		return int(nanos)
	}
	u := uint64(nanos)
	o := bits.Len64(u)             // >= 5
	sub := int((u >> (o - 3)) & 3) // the two bits below the leading one
	idx := 16 + (o-5)*4 + sub
	if idx >= streamHistBuckets {
		return streamHistBuckets - 1
	}
	return idx
}

// histRepNanos is bucket i's representative duration (its midpoint).
func histRepNanos(i int) float64 {
	if i < 16 {
		return float64(i)
	}
	o := (i-16)/4 + 5
	sub := (i - 16) % 4
	lo := float64(uint64(4+sub) << (o - 3))
	return lo + float64(uint64(1)<<(o-3))/2
}

// histPercentile returns the pct-th percentile duration in nanos of
// the merged histogram, using the same rank convention as the batch
// path (sorted[(n-1)*pct/100]).
func histPercentile(h *[streamHistBuckets]int64, total, pct int64) float64 {
	if total == 0 {
		return 0
	}
	rank := (total - 1) * pct / 100
	cum := int64(0)
	for i := range h {
		cum += h[i]
		if cum > rank {
			return histRepNanos(i)
		}
	}
	return histRepNanos(streamHistBuckets - 1)
}

// streamRun is one RunStream invocation's shared state.
type streamRun struct {
	sink       func(BlockOutcome)
	keepOrders bool
	window     int64
	slots      []streamSlot

	mu   sync.Mutex //sched:lock-rank 10
	cond *sync.Cond
	// base is the next sequence number the emitter will deliver; every
	// seq below it has been sinked (or abandoned to cancellation). Slot
	// states, the fields below and the ring all share this lock.
	//
	//sched:signals cond
	base int64 //sched:guarded-by mu
	// finished is the stream-wide stop predicate: waiters re-check it on
	// every wakeup.
	//
	//sched:signals cond
	finished    bool  //sched:guarded-by mu
	pendingPeak int64 //sched:guarded-by mu
	firstErr    error //sched:guarded-by mu
	errSeq      int64 //sched:guarded-by mu
	// ringWaiters counts goroutines blocked on ring state other than a
	// ready base slot: the dispatcher waiting in reserve for the
	// in-flight span to shrink, or a depositor waiting out a slot the
	// emitter is still sinking. The emitter only broadcasts after
	// freeing slots when one is actually waiting.
	//
	//sched:signals cond
	ringWaiters int //sched:guarded-by mu

	bigQ      chan streamItem
	smallQ    chan []streamItem
	chunkPool chan []streamItem

	// Queue occupancy high-water marks, written by the dispatcher only.
	bigPeak, smallPeak int

	accs []streamAcc
}

// reserve admits one sequence number into the reorder window: the
// dispatcher calls it before routing seq, blocking while seq's slot
// could still collide with an unemitted predecessor (seq-window not
// yet delivered). This is the invariant the whole ring rests on —
// every assigned-but-unemitted sequence number has its own slot, so a
// depositor can at worst wait out a slot the emitter is actively
// sinking, never circularly on another worker. Without it, workers
// preferring the big-block queue can run sequence numbers arbitrarily
// far past a small chunk still parked in smallQ, and once deposits
// span the window every worker blocks with the parked chunk
// unclaimable. It returns the refreshed base so the dispatcher can
// skip the lock while far from the bound; a finished (cancelled)
// stream unblocks immediately.
func (s *streamRun) reserve(seq int64) int64 {
	s.mu.Lock()
	for seq-s.base >= s.window && !s.finished {
		s.ringWaiters++
		s.cond.Wait()
		s.ringWaiters--
	}
	base := s.base
	s.mu.Unlock()
	return base
}

// deposit publishes block seq's outcome into its reorder-ring slot.
// reserve guarantees the slot's previous occupant was already emitted,
// so the wait loop only ever rides out the emitter's sink call on that
// occupant (slotSinking); it cannot block on another worker. The slot
// fill happens outside the lock — the depositor owns the slot
// exclusively between the free check and the ready flip, and the
// lock's release/acquire pair orders the fill against the emitter's
// read.
//
//sched:noalloc
func (s *streamRun) deposit(seq int64, b *block.Block, cycles, arcs int32, rung Rung, order []int32, err error) {
	slot := &s.slots[seq%s.window]
	s.mu.Lock()
	for slot.state != slotFree {
		s.ringWaiters++
		s.cond.Wait()
		s.ringWaiters--
	}
	s.mu.Unlock()
	if s.keepOrders && order != nil {
		slot.order = buf.Int32(slot.order, len(order))
		copy(slot.order, order)
		slot.out.Order = slot.order
	} else {
		slot.out.Order = nil
	}
	slot.out.Seq = seq
	slot.out.Block = b
	slot.out.Cycles = cycles
	slot.out.Arcs = arcs
	slot.out.Rung = rung
	slot.out.Err = err
	s.mu.Lock()
	slot.state = slotReady
	if err != nil && s.firstErr == nil {
		s.firstErr = err
		s.errSeq = seq
	}
	if p := seq + 1 - s.base; p > s.pendingPeak {
		s.pendingPeak = p
	}
	// The emitter only ever waits on the slot at base; an out-of-order
	// deposit cannot be what it is waiting for, so skip the wakeup.
	if seq == s.base || s.ringWaiters > 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// emitLoop drains the reorder ring in sequence order, invoking the
// sink serially outside the lock. Each wakeup claims the whole
// contiguous run of ready slots at base in one critical section, sinks
// them all, then frees them in a second — two lock acquisitions per
// burst instead of two per block, which is what keeps the emitter off
// the profile on small-block streams. It exits once finished is set
// and the slot at base is not ready — on a clean run that means every
// deposited outcome was emitted; on a cancelled run the first gap (a
// claimed-but-abandoned sequence number) ends emission, so the sink
// always sees a dense prefix of the stream.
//
//sched:noalloc
func (s *streamRun) emitLoop(done chan struct{}) {
	defer close(done)
	for {
		s.mu.Lock()
		slot := &s.slots[s.base%s.window]
		for slot.state != slotReady && !s.finished {
			s.cond.Wait()
			slot = &s.slots[s.base%s.window]
		}
		if slot.state != slotReady {
			s.mu.Unlock()
			return
		}
		// Claim the whole ready run. Advancing base past slotSinking
		// slots is safe: depositors wait on slotFree, not on base.
		start := s.base
		n := int64(0)
		//sched:lint-ignore cancelpoll bounded by the ring: each iteration flips one ready slot to sinking, at most window slots
		for {
			sl := &s.slots[(start+n)%s.window]
			if sl.state != slotReady {
				break
			}
			sl.state = slotSinking
			n++
		}
		s.base = start + n
		s.mu.Unlock()
		for i := int64(0); i < n; i++ {
			s.sink(s.slots[(start+i)%s.window].out)
		}
		s.mu.Lock()
		for i := int64(0); i < n; i++ {
			s.slots[(start+i)%s.window].state = slotFree
		}
		// One broadcast serves both waiter kinds: depositors see their
		// slot freed, and the dispatcher's reserve sees base advanced
		// (base moved in the claim phase, but the free phase of the same
		// burst always follows, so deferring the wakeup here loses no
		// progress).
		if s.ringWaiters > 0 {
			s.cond.Broadcast()
		}
		s.mu.Unlock()
	}
}

// dispatch routes src into the size-binned queues, assigning dense
// sequence numbers: big blocks one per bigQ slot, small blocks batched
// into recycled chunks. Both queues are bounded, so a full pipeline
// backpressures here — and through src to the producer. On
// cancellation the deferred closes run immediately; sequence numbers
// already assigned but never deposited become the gap the emitter
// stops at.
func (s *streamRun) dispatch(src <-chan *block.Block, done <-chan struct{}, chunkSize int) {
	defer close(s.bigQ)
	defer close(s.smallQ)
	cur := <-s.chunkPool
	seq := int64(0)
	// baseFloor is a stale (never ahead) copy of the emitter's base:
	// while seq-baseFloor is inside the window the true span is too, so
	// the steady state routes without touching the ring lock; only near
	// the bound does reserve refresh it (and block until emissions make
	// room).
	baseFloor := int64(0)
	for {
		var b *block.Block
		var ok bool
		select {
		case <-done:
			return
		case b, ok = <-src:
		}
		if !ok {
			if len(cur) > 0 {
				select {
				case s.smallQ <- cur:
				case <-done:
				}
			}
			return
		}
		if b == nil {
			continue
		}
		if seq-baseFloor >= s.window {
			baseFloor = s.reserve(seq)
		}
		it := streamItem{seq: seq, b: b}
		seq++
		if b.Len() > smallCutoff {
			select {
			case s.bigQ <- it:
				if n := len(s.bigQ); n > s.bigPeak {
					s.bigPeak = n
				}
			case <-done:
				return
			}
			continue
		}
		cur = append(cur, it)
		if len(cur) == chunkSize {
			select {
			case s.smallQ <- cur:
				if n := len(s.smallQ); n > s.smallPeak {
					s.smallPeak = n
				}
			case <-done:
				return
			}
			select {
			case cur = <-s.chunkPool:
			case <-done:
				return
			}
		}
	}
}

// streamWorker claims and schedules blocks until both queues are
// closed or the context is cancelled. The big-block queue is always
// preferred (the LPT spirit: a giant block starts as soon as any
// worker frees up), falling back to a fair select over both. A claimed
// block is always finished — cancellation is observed at claim
// boundaries (and between a chunk's blocks), mirroring the batch
// engine's never-abandon-a-claimed-block rule.
func (e *Engine) streamWorker(w *worker, s *streamRun, wi int, done <-chan struct{}) {
	bigQ, smallQ := s.bigQ, s.smallQ
	for bigQ != nil || smallQ != nil {
		if cancelled(done) {
			return
		}
		if bigQ != nil {
			select {
			case it, ok := <-bigQ:
				if !ok {
					bigQ = nil
					continue
				}
				e.streamBlock(w, s, wi, it)
				continue
			default:
			}
		}
		select {
		case it, ok := <-bigQ:
			if !ok {
				bigQ = nil
				continue
			}
			e.streamBlock(w, s, wi, it)
		case chunk, ok := <-smallQ:
			if !ok {
				smallQ = nil
				continue
			}
			for i := range chunk {
				if i > 0 && cancelled(done) {
					return
				}
				e.streamBlock(w, s, wi, chunk[i])
			}
			s.chunkPool <- chunk[:0]
		}
	}
}

// streamBlock runs one claimed block through the exact per-block
// pipeline of Run — cache lookup, degradation ladder, output gate,
// optional simulator verify — and deposits the outcome. It is the
// streaming twin of process: same ladder, same injection hooks, so
// schedules (and rungs, which are content-keyed) are byte-identical to
// a batch run over the same corpus.
//
//sched:recover-boundary
func (e *Engine) streamBlock(w *worker, s *streamRun, wi int, it streamItem) {
	b := it.b
	t0 := time.Now()
	if e.cfg.BlockTimeout > 0 {
		w.deadline = t0.Add(e.cfg.BlockTimeout)
	} else {
		w.deadline = time.Time{}
	}
	var h uint64
	if e.cache != nil || w.inj != nil {
		w.enc = appendBlockKey(w.enc[:0], b.Insts)
		h = fnv1a64(w.enc)
	}
	if e.cache != nil {
		if ent := e.cache.lookup(h, w.enc); ent != nil {
			if ok, cycles, arcs, order, err := e.streamServeHit(w, b, ent, h); ok {
				e.streamFinish(w, s, wi, it, t0, cycles, arcs, RungPrimary, pathCached, order, err)
				return
			}
		}
		// An L1 miss (or a poisoned hit the gate rejected and dropped)
		// probes the persistent tier, exactly as the batch path does.
		if e.disk != nil && e.probeDisk(w, h) {
			if ok, cycles, arcs, order, err := e.streamServeDiskHit(w, b, h); ok {
				e.streamFinish(w, s, wi, it, t0, cycles, arcs, RungPrimary, pathCached, order, err)
				return
			}
		}
		// Missed both tiers — or a served entry failed the gate, which
		// already dropped it from both.
		w.misses++
	}
	rung, path, r, d := e.ladder(w, b, h)
	var arcs int32
	if d != nil {
		arcs = int32(d.NumArcs)
	}
	if e.cache != nil && rung == RungPrimary {
		// Only healthy primary results are memoized, exactly as in the
		// batch path.
		ent := &cacheEntry{
			key:    append([]byte(nil), w.enc...),
			order:  append([]int32(nil), r.Order...),
			issue:  append([]int32(nil), r.Issue...),
			cycles: r.Cycles,
			arcs:   arcs,
		}
		e.cache.insert(h, ent)
		if e.disk != nil {
			e.disk.enqueue(h, ent)
		}
	}
	var err error
	if e.cfg.Verify {
		err = verify(b, r, e.cfg.Model, w.rt)
	}
	e.streamFinish(w, s, wi, it, t0, r.Cycles, arcs, rung, path, r.Order, err)
}

// streamFinish records the worker's tallies and deposits the outcome.
func (e *Engine) streamFinish(w *worker, s *streamRun, wi int, it streamItem, t0 time.Time, cycles, arcs int32, rung Rung, path blockPath, order []int32, err error) {
	dur := int64(time.Since(t0))
	acc := &s.accs[wi]
	acc.insts += int64(it.b.Len())
	acc.arcs += int64(arcs)
	acc.cycles += int64(cycles)
	if rung != RungPrimary {
		acc.degraded++
	}
	acc.histAdd(dur)
	if e.adaptive {
		w.binAdd(it.b.Len(), dur, path)
	}
	s.deposit(it.seq, it.b, cycles, arcs, rung, order, err)
}

// streamServeHit serves a cache hit on the streaming path: the
// structural half of the output gate (plus the cache-bitflip injection
// point) exactly as serveHit runs it for batch. A gate failure removes
// the poisoned entry and reports !ok, sending the block down the
// ladder.
func (e *Engine) streamServeHit(w *worker, b *block.Block, ent *cacheEntry, h uint64) (ok bool, cycles, arcs int32, order []int32, err error) {
	order = ent.order
	if w.inj.Should(fault.CacheBitflip, h) {
		// Poison a scratch copy: the shared entry is immutable and may
		// be mid-read by another worker.
		w.flip = buf.Int32(w.flip, len(ent.order))
		copy(w.flip, ent.order)
		w.inj.FlipBit(w.flip, h)
		w.faults++
		order = w.flip
	}
	if !w.structuralGate(order, ent.issue, b.Len()) {
		w.gateFails++
		e.cache.remove(h, ent.key)
		if e.disk != nil {
			// Both tiers: the poisoned schedule must not be served to
			// any later process either.
			e.disk.remove(h, ent.key)
		}
		return false, 0, 0, nil, nil
	}
	w.hits++
	if e.cfg.Verify {
		w.rt.PrepareBlock(b.Insts)
		w.hitRes = sched.Result{Order: ent.order, Issue: ent.issue, Cycles: ent.cycles}
		err = verify(b, &w.hitRes, e.cfg.Model, w.rt)
	}
	return true, ent.cycles, ent.arcs, order, err
}

// RunStream schedules blocks as they arrive on src, invoking sink once
// per block in sequence (arrival) order, and returns the run's Stats
// once src closes and the pipeline drains. Ingestion, scheduling and
// emission overlap through bounded queues, so memory is proportional
// to Config.StreamDepth — never to the stream's length — and schedules
// are byte-identical to Run over the same corpus (including under a
// FaultPlan: the faulted set is content-keyed, not position-keyed).
//
// The sink runs on a dedicated goroutine, serially and in order; the
// outcome's Order slice (and nothing else) is valid only during the
// call. A nil sink discards outcomes. Config.CollectDAGStats has no
// streaming form and is ignored here. Cancellation mirrors RunCtx:
// workers stop claiming at the next block boundary, the sink sees a
// dense prefix of the stream, and ctx's error is returned with the
// partial Stats.
//
//sched:cancellable
func (e *Engine) RunStream(ctx context.Context, src <-chan *block.Block, sink func(BlockOutcome)) (Stats, error) {
	if src == nil {
		return Stats{}, &ConfigError{Field: "src", Value: nil, Reason: "RunStream needs a source channel"}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if sink == nil {
		sink = func(BlockOutcome) {}
	}
	e.beginRun()
	defer e.endRun()
	depth := e.cfg.StreamDepth
	chunk := e.chunk
	if chunk <= 0 {
		chunk = defaultChunk
	}
	nw := len(e.workers)

	// Ring sizing: the dispatcher's reserve call caps the in-flight
	// sequence span at the window, so correctness needs only window >=
	// 1. This formula instead sizes the ring so reserve is not the
	// binding constraint on a healthy pipeline: it has a slot for every
	// sequence number the bounded queues and workers could hold at once
	// — bigQ (<= depth), smallQ (<= smallCap chunks), the dispatcher's
	// partial chunk (< chunk), one chunk or big block per worker —
	// plus one, so the queues fill before the window does and
	// backpressure lands on src, not on the ring lock.
	smallCap := depth / chunk
	if smallCap < 1 {
		smallCap = 1
	}
	window := int64(depth + smallCap*chunk + chunk + nw*chunk + nw + 1)

	s := &streamRun{
		sink:       sink,
		keepOrders: e.cfg.KeepOrders,
		window:     window,
		slots:      make([]streamSlot, window),
		bigQ:       make(chan streamItem, depth),
		smallQ:     make(chan []streamItem, smallCap),
		chunkPool:  make(chan []streamItem, smallCap+nw+2),
		accs:       make([]streamAcc, nw),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < cap(s.chunkPool); i++ {
		s.chunkPool <- make([]streamItem, 0, chunk)
	}

	for _, w := range e.workers {
		w.hits, w.misses, w.diskHits = 0, 0, 0
		w.bins = [nBins]binAcc{}
		w.packedBlocks = 0
		w.quars, w.demoted, w.gateFails, w.faults = 0, 0, 0, 0
	}

	done := ctx.Done()
	start := time.Now()
	// The dispatcher is joined explicitly: on a cancelled stream it can
	// outlive the workers (wg.Wait only covers them), and it writes the
	// queue peaks this function reads after the pipeline drains.
	dispDone := make(chan struct{})
	go func() {
		defer close(dispDone)
		s.dispatch(src, done, chunk)
	}()
	var wg sync.WaitGroup
	for wi, w := range e.workers {
		wg.Add(1)
		go func(w *worker, wi int) {
			defer wg.Done()
			e.streamWorker(w, s, wi, done)
		}(w, wi)
	}
	emitDone := make(chan struct{})
	go s.emitLoop(emitDone)
	wg.Wait()
	s.mu.Lock()
	s.finished = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-emitDone
	<-dispDone
	wall := time.Since(start)

	st := Stats{Workers: nw, WallSeconds: wall.Seconds(), StreamDepth: depth}
	var hist [streamHistBuckets]int64
	for i := range s.accs {
		a := &s.accs[i]
		st.Blocks += int(a.blocks)
		st.Insts += a.insts
		st.Arcs += a.arcs
		st.TotalCycles += a.cycles
		st.DegradedBlocks += a.degraded
		for k := range a.hist {
			hist[k] += a.hist[k]
		}
	}
	if secs := wall.Seconds(); secs > 0 {
		st.BlocksPerSec = float64(st.Blocks) / secs
		st.InstsPerSec = float64(st.Insts) / secs
		st.ArcsPerSec = float64(st.Arcs) / secs
	}
	st.P50Micros = histPercentile(&hist, int64(st.Blocks), 50) / 1e3
	st.P99Micros = histPercentile(&hist, int64(st.Blocks), 99) / 1e3
	for _, w := range e.workers {
		st.CacheHits += w.hits
		st.CacheMisses += w.misses
		st.DiskHits += w.diskHits
		st.PackedSelBlocks += w.packedBlocks
		st.Quarantines += w.quars
		st.Demotions += w.demoted
		st.GateFailures += w.gateFails
		st.FaultsInjected += w.faults
	}
	if total := st.CacheHits + st.DiskHits + st.CacheMisses; total > 0 {
		st.CacheHitRate = float64(st.CacheHits+st.DiskHits) / float64(total)
	}
	if e.adaptive {
		st.Crossover = e.crossover
		st.ChunkSize = e.chunk
		if st.Blocks > 0 {
			st.Bins = e.collectBins(nil)
		}
	}
	st.BigQueuePeak = s.bigPeak
	st.SmallQueuePeak = s.smallPeak
	s.mu.Lock()
	st.PendingPeak = int(s.pendingPeak)
	firstErr, errSeq := s.firstErr, s.errSeq
	s.mu.Unlock()

	if err := ctx.Err(); err != nil {
		return st, fmt.Errorf("engine: stream cancelled: %w", err)
	}
	if firstErr != nil {
		return st, fmt.Errorf("engine: stream block %d: %w", errSeq, firstErr)
	}
	return st, nil
}
