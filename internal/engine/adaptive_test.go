package engine

import (
	"strings"
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/machine"
	"daginsched/internal/tables"
	"daginsched/internal/testgen"
)

// adaptiveCorpus is the mixed corpus the identity and bin tests run
// over: every Table 3 synthetic benchmark except the impractically
// large full-fpppp variants, salted with extra tiny blocks so the n²
// regime is well represented.
func adaptiveCorpus(t testing.TB) []*block.Block {
	t.Helper()
	var blocks []*block.Block
	for _, set := range tables.Table3Sets() {
		if strings.HasPrefix(set.Name, "fpppp") && set.Name != "fpppp-1000" {
			continue
		}
		blocks = append(blocks, set.Blocks...)
	}
	for i, n := range []int{0, 1, 2, 3, 4, 5, 6, 8, 12, 16, 24, 33, 48, 64, 65} {
		b := &block.Block{Name: "tiny", Insts: testgen.Block(int64(7000+i), n)}
		for k := range b.Insts {
			b.Insts[k].Index = k
		}
		blocks = append(blocks, b)
	}
	return blocks
}

// TestAdaptiveMatchesFixed is the identity gate of adaptive dispatch:
// with the n² pipeline enabled — at the calibrated crossover and at
// the forced maximum — every block's cycle count, arc count and
// scheduled order must be byte-identical to the fixed pipeline's.
func TestAdaptiveMatchesFixed(t *testing.T) {
	m := machine.Pipe1()
	blocks := adaptiveCorpus(t)
	fixed, err := New(Config{Workers: 8, Model: m, KeepOrders: true, DisableAdaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fixed.Run(blocks)
	if err != nil {
		t.Fatal(err)
	}
	for _, cross := range []int{0, 64} { // 0 = use the calibrated crossover
		ad, err := New(Config{Workers: 8, Model: m, KeepOrders: true, Crossover: cross})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ad.Run(blocks)
		if err != nil {
			t.Fatal(err)
		}
		for i := range blocks {
			if got.Cycles[i] != want.Cycles[i] {
				t.Fatalf("crossover=%d block %d (%d insts): %d cycles, fixed %d",
					cross, i, blocks[i].Len(), got.Cycles[i], want.Cycles[i])
			}
			if got.Arcs[i] != want.Arcs[i] {
				t.Fatalf("crossover=%d block %d: %d arcs, fixed %d",
					cross, i, got.Arcs[i], want.Arcs[i])
			}
			for p := range want.Orders[i] {
				if got.Orders[i][p] != want.Orders[i][p] {
					t.Fatalf("crossover=%d block %d position %d: node %d, fixed %d",
						cross, i, p, got.Orders[i][p], want.Orders[i][p])
				}
			}
		}
		if cross == 64 {
			var n2 int64
			for _, bin := range got.Stats.Bins {
				n2 += bin.N2Blocks
			}
			if n2 == 0 {
				t.Error("forced crossover 64 routed no block to the n² pipeline")
			}
		}
		if got.Stats.Crossover != ad.Crossover() {
			t.Errorf("Stats.Crossover = %d, engine reports %d", got.Stats.Crossover, ad.Crossover())
		}
	}
}

// TestAdaptiveConfig pins the crossover resolution rules: clamping,
// the never-n² negative sentinel, calibration bounds, and the
// configurations that disable adaptive dispatch outright.
func TestAdaptiveConfig(t *testing.T) {
	m := machine.Pipe1()
	mk := func(cfg Config) *Engine {
		t.Helper()
		cfg.Model = m
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if c := mk(Config{Crossover: 1000}).Crossover(); c != 64 {
		t.Errorf("Crossover 1000 resolved to %d, want clamp to 64", c)
	}
	if c := mk(Config{Crossover: -1}).Crossover(); c != 0 {
		t.Errorf("Crossover -1 resolved to %d, want 0", c)
	}
	if c := mk(Config{Crossover: 7}).Crossover(); c != 7 {
		t.Errorf("Crossover 7 resolved to %d", c)
	}
	if c := mk(Config{}).Crossover(); c < 0 || c > 64 {
		t.Errorf("calibrated crossover %d outside [0, 64]", c)
	}
	for _, cfg := range []Config{
		{DisableAdaptive: true, Crossover: 16},
		{Builder: "tablef", Crossover: 16},
		{CollectDAGStats: true, Crossover: 16},
	} {
		if e := mk(cfg); e.adaptive || e.Crossover() != 0 {
			t.Errorf("config %+v left adaptive on (crossover %d)", cfg, e.Crossover())
		}
	}
	// ChunkSize reaches the run stats.
	e := mk(Config{Workers: 2, ChunkSize: 5, Crossover: 8})
	res, err := e.Run(testBlocks(t, 12))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ChunkSize != 5 {
		t.Errorf("Stats.ChunkSize = %d, want 5", res.Stats.ChunkSize)
	}
}

// TestAdaptiveBinStats checks the per-bin accounting: every block
// lands in exactly one bin, pipeline tags partition the bin, and the
// wall shares are a distribution.
func TestAdaptiveBinStats(t *testing.T) {
	m := machine.Pipe1()
	sizes := []int{1, 2, 3, 4, 5, 8, 9, 16, 40, 64, 65, 128, 129, 600}
	blocks := make([]*block.Block, len(sizes))
	for i, n := range sizes {
		b := &block.Block{Name: "bin", Insts: testgen.Block(int64(i), n)}
		for k := range b.Insts {
			b.Insts[k].Index = k
		}
		blocks[i] = b
	}
	wantPerBin := map[string]int64{
		"<=4": 4, "<=8": 2, "<=16": 2, "<=32": 0, "<=64": 2, "<=128": 2, "<=512": 1, ">512": 1,
	}
	for _, cross := range []int{-1, 64} {
		e, err := New(Config{Workers: 3, Model: m, ChunkSize: 2, Crossover: cross})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(blocks)
		if err != nil {
			t.Fatal(err)
		}
		var tot, insts int64
		var share float64
		for _, bin := range res.Stats.Bins {
			if bin.Blocks != wantPerBin[bin.Label] {
				t.Errorf("crossover=%d bin %s: %d blocks, want %d", cross, bin.Label, bin.Blocks, wantPerBin[bin.Label])
			}
			if got := bin.N2Blocks + bin.TableBlocks + bin.CachedBlocks; got != bin.Blocks {
				t.Errorf("crossover=%d bin %s: pipeline tags sum to %d of %d blocks", cross, bin.Label, got, bin.Blocks)
			}
			if cross < 0 && bin.N2Blocks != 0 {
				t.Errorf("negative crossover ran %d n² blocks in bin %s", bin.N2Blocks, bin.Label)
			}
			tot += bin.Blocks
			insts += bin.Insts
			share += bin.WallShare
		}
		if tot != int64(len(blocks)) || insts != int64(res.Stats.Insts) {
			t.Errorf("crossover=%d bins cover %d blocks/%d insts, run had %d/%d",
				cross, tot, insts, len(blocks), res.Stats.Insts)
		}
		if share < 0.999 || share > 1.001 {
			t.Errorf("crossover=%d wall shares sum to %f", cross, share)
		}
	}
}

// TestEngineEmptyBatchRecycled runs a real batch and then recycles the
// result for an empty one: the guard must zero the stats and per-block
// slices without spawning workers (a regression test for the empty-
// slice guard in RunInto).
func TestEngineEmptyBatchRecycled(t *testing.T) {
	e, err := New(Config{Workers: 4, Model: machine.Pipe1(), KeepOrders: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(testBlocks(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Blocks == 0 {
		t.Fatal("warm-up batch scheduled nothing")
	}
	if _, err := e.RunInto(res, []*block.Block{}); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Blocks != 0 || res.Stats.Insts != 0 || res.Stats.TotalCycles != 0 ||
		res.Stats.BlocksPerSec != 0 || len(res.Stats.Bins) != 0 {
		t.Errorf("recycled empty batch stats: %+v", res.Stats)
	}
	if len(res.Cycles) != 0 || len(res.Arcs) != 0 || len(res.Orders) != 0 {
		t.Errorf("recycled empty batch kept %d cycles, %d arcs, %d orders",
			len(res.Cycles), len(res.Arcs), len(res.Orders))
	}
	if res.Stats.Workers != 4 {
		t.Errorf("empty batch reports %d workers", res.Stats.Workers)
	}
}

// TestEngineAdaptiveSteadyStateZeroAlloc pins the zero-allocation
// property with the n² pipeline forced on for every mask-capable
// block — the adaptive counterpart of TestEngineSteadyStateZeroAlloc.
func TestEngineAdaptiveSteadyStateZeroAlloc(t *testing.T) {
	m := machine.Pipe1()
	blocks := testBlocks(t, 20)
	e, err := New(Config{Workers: 1, Model: m, KeepOrders: true, Crossover: 64})
	if err != nil {
		t.Fatal(err)
	}
	res := new(BatchResult)
	if _, err := e.RunInto(res, blocks); err != nil {
		t.Fatal(err)
	}
	var n2 int64
	for _, bin := range res.Stats.Bins {
		n2 += bin.N2Blocks
	}
	if n2 == 0 {
		t.Fatal("no block took the n² pipeline; the test would prove nothing")
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.RunInto(res, blocks); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state adaptive batch run allocates %.1f/batch, want 0", allocs)
	}
}
