package engine

import (
	"context"
	"errors"
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/machine"
)

// TestCloseDuringRunStreamBusy pins the lifecycle guard: a Close
// attempted while RunStream is still draining a source must be
// refused with a *BusyError (errors.Is ErrBusy) instead of unmapping
// the persistent tier under the stream's active readers. Once the
// stream returns, Close succeeds, and a second Close stays a no-op.
func TestCloseDuringRunStreamBusy(t *testing.T) {
	m := machine.Super2()
	blocks := testBlocks(t, 8)
	e, err := New(Config{Workers: 2, Model: m, CachePath: diskPath(t)})
	if err != nil {
		t.Fatal(err)
	}

	src := make(chan *block.Block)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := e.RunStream(context.Background(), src, nil)
		done <- err
	}()
	go func() {
		src <- blocks[0] // RunStream has definitely entered once this lands
		close(started)
		<-release
		for _, b := range blocks[1:] {
			src <- b
		}
		close(src)
	}()

	<-started
	err = e.Close()
	if err == nil {
		t.Fatal("Close during an active RunStream succeeded; want ErrBusy")
	}
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("Close during RunStream: %v, want errors.Is ErrBusy", err)
	}
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("Close during RunStream returned %T, want *BusyError", err)
	}
	if busy.Active < 1 {
		t.Fatalf("BusyError.Active = %d, want >= 1", busy.Active)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("RunStream: %v", err)
	}

	// The refused Close must not have touched the disk tier: the same
	// engine still serves runs against it.
	if _, err := e.Run(blocks); err != nil {
		t.Fatalf("Run after refused Close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close after drain: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCloseDuringRunBusy covers the batch entry point with the same
// guard: a Close racing Run must be refused, not crash a worker that
// is mid-probe in the mmap'd tier.
func TestCloseDuringRunBusy(t *testing.T) {
	m := machine.Super2()
	blocks := testBlocks(t, 64)
	e, err := New(Config{Workers: 2, Model: m, CachePath: diskPath(t)})
	if err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(entered)
		_, err := e.Run(blocks)
		done <- err
	}()
	<-entered

	// The goroutine may not have reached beginRun yet, and the run may
	// finish at any moment — so a refusal proves the guard, and a nil
	// Close is only legal once the run has retired. Either outcome of
	// the race is fine; only a wrong error fails.
	for i := 0; i < 1_000_000; i++ {
		err := e.Close()
		if err == nil {
			break
		}
		if !errors.Is(err, ErrBusy) {
			t.Fatalf("Close during Run: %v, want errors.Is ErrBusy", err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("final Close: %v", err)
	}
}
