package engine

import (
	"bytes"
	"encoding/binary"
	"sync"

	"daginsched/internal/dag"
	"daginsched/internal/isa"
)

// The block-fingerprint schedule cache. Benchmark corpora and real
// programs repeat small basic blocks constantly (compare-and-branch
// idioms, spill/reload pairs, epilogues), and the whole per-block
// pipeline — resource preparation, DAG construction, heuristics, list
// scheduling — is a pure function of the instruction sequence once the
// engine's machine model, builder and memory model are fixed. Hashing
// a canonical encoding of the instructions therefore lets a repeated
// block skip the pipeline entirely: the memoized schedule is copied
// into the block's result slot and the common case becomes a hash
// lookup.
//
// The cache is striped into shards, each behind its own mutex, so
// concurrent workers do not serialize on one lock; it is bounded by a
// per-shard CLOCK (second-chance) eviction policy, so a hot working
// set survives cap pressure instead of being wiped wholesale; and it
// is exact — a lookup compares the full canonical encoding, so two
// distinct blocks can never alias, even on a 64-bit hash collision or
// when one block's encoding is a prefix of another's (the encoding is
// length-delimited throughout).

// cacheShardBits is the stripe count's log2; the shard selector's
// shift is derived from it, so changing the stripe count cannot
// silently desynchronize shard selection (see schedCache.shard and
// TestCacheShardSelection).
const cacheShardBits = 4

// cacheShards is the stripe count. 16 shards keep cross-worker
// contention negligible at the pool sizes the engine runs (mutex
// acquisitions are ~ns against ~µs block pipelines).
const cacheShards = 1 << cacheShardBits

// defaultCacheCap is the default total entry bound across all shards.
const defaultCacheCap = 1 << 16

// cacheEntry is one memoized block schedule. All fields are immutable
// after insert; readers may use them after dropping the shard lock.
type cacheEntry struct {
	key    []byte  // canonical block encoding, owned by the entry
	order  []int32 // scheduled order, owned by the entry
	issue  []int32 // issue cycle per node, owned by the entry
	cycles int32
	arcs   int32
	stats  dag.Stats // filled only when the engine collects DAG stats
	// ref is the CLOCK reference bit: set by every lookup hit (under
	// the shard lock), cleared by a passing eviction hand. An entry
	// with its bit set gets a second chance; one without is evicted.
	// Guarded by the owning cacheShard's mu — the one mutable field of
	// an otherwise-immutable entry, and only shard-locked code touches
	// it.
	ref bool
}

type cacheShard struct {
	mu sync.Mutex            //sched:lock-rank 20
	m  map[uint64]*cacheEntry //sched:guarded-by mu
	// ring is the CLOCK of resident hashes (capacity perShard, carved
	// once at construction) and hand the eviction cursor. A hash whose
	// entry was removed leaves a stale ring slot behind; the hand
	// treats such slots as free and reuses them.
	ring []uint64 //sched:guarded-by mu
	hand int      //sched:guarded-by mu
}

// schedCache is the sharded, bounded schedule cache.
type schedCache struct {
	perShard int
	shards   [cacheShards]cacheShard
}

func newSchedCache(capacity int) *schedCache {
	if capacity <= 0 {
		capacity = defaultCacheCap
	}
	per := capacity / cacheShards
	if per < 1 {
		per = 1
	}
	c := &schedCache{perShard: per}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]*cacheEntry)
		c.shards[i].ring = make([]uint64, 0, per)
	}
	return c
}

func (c *schedCache) shard(h uint64) *cacheShard {
	// Use high bits for the stripe so it stays independent of the map's
	// own low-bit bucketing. The shift is derived from cacheShardBits,
	// never hard-coded, so the stripe count and the selector cannot
	// drift apart.
	return &c.shards[h>>(64-cacheShardBits)]
}

// lookup returns the entry for (h, key), or nil. The full encoding is
// compared, so a hash collision reads as a miss, never as a wrong hit.
//
//sched:noalloc
func (c *schedCache) lookup(h uint64, key []byte) *cacheEntry {
	s := c.shard(h)
	s.mu.Lock()
	e := s.m[h]
	if e != nil {
		// The CLOCK reference bit: this entry was wanted, so the next
		// eviction hand pass spares it once. Set under the shard lock
		// before the (lock-free) key compare; a hash-colliding miss
		// refreshing the colliding entry's bit is harmless.
		e.ref = true
	}
	s.mu.Unlock()
	if e != nil && bytes.Equal(e.key, key) {
		return e
	}
	return nil
}

// insert memoizes e under (h, key). If another block already occupies
// hash h (a 64-bit collision, or a concurrent worker winning the race
// on the same block), the existing entry is kept: first wins, and
// correctness never depends on an insert landing because hits
// re-verify the full key.
//
// The bound is CLOCK (second-chance) per shard: when the ring is full,
// the hand sweeps resident entries, clearing reference bits and
// evicting the first entry found without one. An entry that keeps
// getting hit keeps getting its bit re-set between hand passes, so a
// hot working set survives a stream of cold inserts — the failure mode
// of the old clear-on-cap reset, which wiped hot and cold alike.
//
//sched:noalloc
func (c *schedCache) insert(h uint64, e *cacheEntry) {
	s := c.shard(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.m[h]; exists {
		return
	}
	if len(s.ring) < cap(s.ring) {
		// Below cap: take a fresh ring slot, no eviction. (No noalloc
		// suppression needed: the cap-reading condition marks this as a
		// capacity-guarded arm.)
		s.ring = append(s.ring, h)
		s.m[h] = e
		return
	}
	// CLOCK sweep: a stale slot (its hash was removed) is free; a live
	// entry with its reference bit set is spared once; the first live
	// entry without one is evicted. The sweep terminates: each step
	// either stops or clears a bit, and bits are not re-set under this
	// shard's lock while we hold it.
	//sched:lint-ignore cancelpoll the sweep terminates on its own: every iteration clears a reference bit or stops, bounded by perShard
	for {
		if s.hand >= len(s.ring) {
			s.hand = 0
		}
		old := s.m[s.ring[s.hand]]
		if old == nil {
			break // stale slot: reuse without evicting anything
		}
		if !old.ref {
			delete(s.m, s.ring[s.hand])
			break
		}
		old.ref = false
		s.hand++
	}
	s.ring[s.hand] = h
	s.hand++
	//sched:lint-ignore noalloc map insert is the cache's one sanctioned allocation, bounded by perShard and amortized across hits
	s.m[h] = e
}

// remove drops the entry memoized under (h, key): the hardened
// runtime's response to a cache-served schedule failing the output
// gate, so a poisoned entry cannot be served twice. The full encoding
// is compared under the shard lock — a colliding entry for a
// different block is left alone.
func (c *schedCache) remove(h uint64, key []byte) {
	s := c.shard(h)
	s.mu.Lock()
	// Deferred, not paired: remove runs inside the recover boundary
	// (gate failures on the hardened path land here), and a panic out
	// of the key compare must not leak a locked shard to quarantine.
	defer s.mu.Unlock()
	if e := s.m[h]; e != nil && bytes.Equal(e.key, key) {
		delete(s.m, h)
	}
}

// entries returns the current total entry count (tests only).
func (c *schedCache) entries() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// appendBlockKey appends the canonical encoding of a block's
// instruction sequence to dst. The encoding covers every instruction
// field the scheduling pipeline can observe — opcode, register
// operands, immediate, memory expression (base, index, offset, symbol)
// and the annul bit — and is length-delimited (leading instruction
// count, length-prefixed symbols) so no block's encoding is a prefix
// of another's. Labels and branch target names are deliberately
// excluded: dependence analysis, machine delays and the schedulers
// never read them. The engine-constant context (machine model,
// builder, memory model) needs no encoding because every cache is
// private to one Engine, whose configuration is immutable.
func appendBlockKey(dst []byte, insts []isa.Inst) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(insts)))
	for i := range insts {
		in := &insts[i]
		var flags byte
		if in.HasImm {
			flags |= 1
		}
		if in.Annul {
			flags |= 2
		}
		dst = append(dst, byte(in.Op), byte(in.RS1), byte(in.RS2), byte(in.RD), flags)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(in.Imm))
		dst = append(dst, byte(in.Mem.Base), byte(in.Mem.Index))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(in.Mem.Offset))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(in.Mem.Sym)))
		dst = append(dst, in.Mem.Sym...)
	}
	return dst
}

// BlockKey returns the engine's content fingerprint for an
// instruction sequence — the same 64-bit key the schedule cache and
// the fault injector derive internally. It is exported so chaos tests
// and schedbench -chaos can recompute which blocks a fault.Plan
// selects (fault.Injector.Should / Any over this key) without running
// an engine.
func BlockKey(insts []isa.Inst) uint64 {
	return fnv1a64(appendBlockKey(nil, insts))
}

// fnv1a64 is the 64-bit FNV-1a hash of b.
func fnv1a64(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
