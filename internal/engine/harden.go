// The hardened runtime: worker fault isolation, the degradation
// ladder, soft deadlines and the always-on output gate.
//
// Three scheduling pipelines (n²-direct, table+CSR, cache-served) race
// over shared per-worker arenas, which is exactly the layered fast-path
// design where one corrupt block or latent bug could take down a whole
// batch. The paper's "no instruction window" result (Tables 3–5) is
// what lets blocks of unbounded size reach the hot path, so the
// production engine carries the failure side of that story:
//
//   - Every per-block pipeline attempt runs under a recover boundary
//     (attempt). A panicking block quarantines its worker — the arena
//     and every structure that may alias it are discarded and fresh
//     ones attached — and the block retries down the degradation
//     ladder.
//   - The ladder's rungs are RungPrimary (the normal adaptive or fixed
//     dispatch), RungTable (forced table+CSR), RungN2 (n²-direct over
//     the per-node arc mirrors, no freeze — a structurally independent
//     second construction algorithm), and RungIdentity (the original
//     program order timed on the scoreboard simulator, which consults
//     no DAG at all and is therefore always legal). A batch always
//     completes; BatchResult.Rungs records which rung served each
//     block.
//   - An always-on output gate checks every schedule before it is
//     returned or cached: structuralGate proves the order is a
//     permutation (each instruction issued exactly once), arcGate
//     proves every dependence arc's latency is respected — over both
//     the successor and predecessor arc arrays, so a desynchronized
//     mirror is caught even though only one side drives scheduling. A
//     gate failure quarantines the worker and demotes the block.
//   - Config.BlockTimeout arms a per-block soft deadline, checked
//     cooperatively at the post-construction checkpoint; an expired
//     block demotes straight to the bounded-work identity rung instead
//     of hanging a worker.
//
// Fault injection (internal/fault) hooks into exactly three places —
// buildCheckpoint (panic, corrupt-arc), serveHit (cache-bitflip) and
// ladder entry (slow-block) — and every hook is a nil-check no-op
// without a Config.FaultPlan.
package engine

import (
	"errors"
	"fmt"
	"time"

	"daginsched/internal/block"
	"daginsched/internal/buf"
	"daginsched/internal/dag"
	"daginsched/internal/fault"
	"daginsched/internal/machine"
	"daginsched/internal/pipe"
	"daginsched/internal/sched"
)

// Rung identifies which step of the degradation ladder produced a
// block's schedule. The zero value is the healthy case.
type Rung uint8

const (
	// RungPrimary is the normal pipeline: adaptive n²/table dispatch
	// (or the fixed pipeline when adaptive is off), including schedules
	// served from the fingerprint cache.
	RungPrimary Rung = iota
	// RungTable is the first fallback: the fixed table+CSR pipeline,
	// forced regardless of adaptive dispatch. Its schedules are
	// byte-identical to a healthy primary run's (the n² fast path is
	// exact or falls back to this very pipeline).
	RungTable
	// RungN2 is the second fallback: n²-direct construction scheduled
	// off the per-node arc mirrors only — no table state, no CSR
	// freeze — so it shares no construction machinery with RungTable.
	RungN2
	// RungIdentity is the floor: the block's original program order,
	// timed on the scoreboard simulator. It consults no DAG and is
	// always legal.
	RungIdentity

	numRungs = int(RungIdentity) + 1
)

// String names the rung for diagnostics and reports.
func (r Rung) String() string {
	switch r {
	case RungPrimary:
		return "primary"
	case RungTable:
		return "table"
	case RungN2:
		return "n2"
	case RungIdentity:
		return "identity"
	}
	return "unknown"
}

// next advances one rung down the ladder, saturating at the identity
// floor.
//
//sched:noalloc
func (r Rung) next() Rung {
	if r < RungIdentity {
		return r + 1
	}
	return RungIdentity
}

// errDeadline is the panic value of the cooperative deadline check: a
// block whose soft deadline expires mid-pipeline unwinds with it and
// is demoted straight to the identity rung.
var errDeadline = errors.New("engine: block soft deadline expired")

// buildCheckpoint runs at the end of DAG construction, once per
// pipeline attempt: it fires the one-shot injection hooks armed for
// this block (panic-in-builder leaves the arena holding a built but
// unscheduled DAG; corrupt-arc desynchronizes the predecessor mirror
// the gate cross-checks) and performs the cooperative soft-deadline
// check. The construction is complete when it runs, so a deadline
// unwind leaves the arena in its ordinary post-build state. In the
// fault-free, deadline-free configuration this is three predictable
// untaken branches.
func (w *worker) buildCheckpoint(d *dag.DAG) {
	if w.hookPanic {
		w.hookPanic = false
		w.faults++
		panic(fault.InjectedPanic{Point: fault.PanicBuilder, Key: w.hookKey})
	}
	if w.hookCorrupt {
		w.hookCorrupt = false
		if w.inj.CorruptPredArc(d, w.hookKey) {
			w.faults++
		}
	}
	if !w.deadline.IsZero() && time.Now().After(w.deadline) {
		panic(errDeadline)
	}
}

// structuralGate is the permutation half of the output gate: order
// must name each of the n nodes exactly once, and issue must carry a
// non-negative cycle for every node. It is the only half that can run
// on a cache-served schedule (no DAG exists there), and it is what
// makes a cache bitflip always detectable — flipping a bit in any
// order element either leaves the range (caught) or collides with
// another element (caught as a duplicate). Zero-alloc: the seen
// scratch is a recycled worker buffer.
//
//sched:noalloc
func (w *worker) structuralGate(order, issue []int32, n int) bool {
	if len(order) != n || len(issue) != n {
		return false
	}
	w.gateSeen = buf.Int32(w.gateSeen, n) // zero-filled: 0 marks unseen
	for _, node := range order {
		if node < 0 || int(node) >= n || w.gateSeen[node] != 0 {
			return false
		}
		w.gateSeen[node] = 1
		if issue[node] < 0 {
			return false
		}
	}
	return true
}

// arcGate is the latency half of the output gate: every arc must
// satisfy issue[To] >= issue[From] + Delay (the invariant the
// scheduler's EET propagation maintains). Both the successor and the
// predecessor arc arrays are walked — the scheduler derives timing
// from successor arcs alone, so a predecessor mirror that disagrees
// with its successor twin can never hide from this check. On a frozen
// DAG the walk streams the two flat CSR arrays; otherwise it chases
// the per-node mirrors.
//
//sched:noalloc
func arcGate(d *dag.DAG, issue []int32) bool {
	if csr := d.FrozenCSR(); csr != nil {
		for _, a := range csr.SuccArcs() {
			if issue[a.To] < issue[a.From]+a.Delay {
				return false
			}
		}
		for _, a := range csr.PredArcs() {
			if issue[a.To] < issue[a.From]+a.Delay {
				return false
			}
		}
		return true
	}
	for i := range d.Nodes {
		for _, a := range d.Nodes[i].Succs {
			if issue[a.To] < issue[a.From]+a.Delay {
				return false
			}
		}
		for _, a := range d.Nodes[i].Preds {
			if issue[a.To] < issue[a.From]+a.Delay {
				return false
			}
		}
	}
	return true
}

// gate is the full output gate for a computed schedule; an identity
// rung result has no DAG and gets the structural half only (the
// simulator that timed it is itself the legality witness).
func (w *worker) gate(d *dag.DAG, r *sched.Result, n int) bool {
	if !w.structuralGate(r.Order, r.Issue, n) {
		return false
	}
	return d == nil || arcGate(d, r.Issue)
}

// quarantine discards the worker's entire scratch set — the build
// arena, the annotation store, the scheduler state, the selector pool,
// everything a panicking or gate-failing pipeline may have left
// inconsistent or aliased — and attaches fresh ones. Only plain
// per-run bookkeeping survives: the tallies, the current block's key
// encoding (needed for the cache insert after the retry) and the
// armed deadline. The discarded arena's storage must regrow on the
// fresh one, so a quarantine costs real allocations; it is strictly a
// fault-path event.
func (w *worker) quarantine(cfg *Config) {
	fresh := newWorker(cfg)
	fresh.inj = w.inj
	fresh.deadline = w.deadline
	fresh.hookKey = w.hookKey
	fresh.enc = w.enc // plain bytes: cannot alias the discarded arena
	fresh.hits, fresh.misses = w.hits, w.misses
	fresh.bins = w.bins
	fresh.packedBlocks = w.packedBlocks
	fresh.quars = w.quars + 1
	fresh.demoted = w.demoted
	fresh.gateFails = w.gateFails
	fresh.faults = w.faults
	*w = *fresh
}

// attempt runs one rung of the ladder under the worker-isolation
// recover boundary. A clean attempt returns the rung's schedule (and
// DAG, when the rung builds one); a panicking attempt returns the
// recovered failure as err — errDeadline for a cooperative deadline
// unwind, the injected or genuine panic otherwise.
func (e *Engine) attempt(w *worker, b *block.Block, rung Rung) (r *sched.Result, d *dag.DAG, path blockPath, err error) {
	defer func() {
		if p := recover(); p != nil {
			r, d = nil, nil
			if p == error(errDeadline) {
				err = errDeadline
				return
			}
			if ip, ok := p.(fault.InjectedPanic); ok {
				err = ip
				return
			}
			err = fmt.Errorf("engine: panic on rung %v: %v", rung, p)
		}
	}()
	switch rung {
	case RungPrimary:
		if n := b.Len(); e.adaptive && n > 0 && n <= e.crossover {
			var usedN2 bool
			if r, d, usedN2 = w.scheduleN2(b, e.cfg.Model); usedN2 {
				path = pathN2
			}
			return r, d, path, nil
		}
		r, d = w.schedule(b, e.cfg.Model)
	case RungTable:
		r, d = w.schedule(b, e.cfg.Model)
	case RungN2:
		r, d = w.scheduleN2Direct(b, e.cfg.Model)
	default: // RungIdentity
		r = w.scheduleIdentity(b, e.cfg.Model)
	}
	return r, d, path, nil
}

// scheduleN2Direct is the RungN2 pipeline: n²-direct construction for
// a block of any size (transitive arcs included), heuristics and
// scheduling over the per-node arc mirrors only — no resource-table
// reuse assumptions, no CSR freeze. O(n²) construction makes it
// slower than the table pipeline on big blocks, which is fine: it is
// a fault-path rung, chosen for sharing no construction machinery
// with the rung above it.
func (w *worker) scheduleN2Direct(b *block.Block, m *machine.Model) (*sched.Result, *dag.DAG) {
	w.rt.PrepareBlock(b.Insts)
	d := dag.N2Forward{}.BuildInto(&w.ar, b, m, w.rt)
	w.buildCheckpoint(d)
	w.a.D = d
	w.a.ComputeBackward()
	w.a.ComputeLocal()
	return w.sc.Forward(d, m, w.a, w.sel), d
}

// scheduleIdentity is the ladder's floor: the block's original program
// order, timed on the scoreboard simulator. The simulator derives
// timing from raw def/use information and the machine model — no DAG,
// no heuristics, no selector — so this rung cannot be poisoned by any
// state the upper rungs corrupt, and the original order is legal by
// construction. It allocates (the simulator builds maps); that is
// acceptable for a rung that only ever serves faulted blocks.
func (w *worker) scheduleIdentity(b *block.Block, m *machine.Model) *sched.Result {
	n := b.Len()
	w.idOrder = buf.Int32(w.idOrder, n)
	for i := range w.idOrder {
		w.idOrder[i] = int32(i)
	}
	w.rt.PrepareBlock(b.Insts)
	sim := pipe.Simulate(b.Insts, w.idOrder, m, w.rt)
	// For the identity order, position equals node index, so the
	// simulator's by-position issue array is already the by-node one.
	w.idRes = sched.Result{Order: w.idOrder, Issue: sim.Issue, Cycles: sim.Cycles}
	return &w.idRes
}

// ladder computes block b's schedule, descending the degradation
// ladder until a rung's result passes the output gate. RungPrimary is
// where injection hooks are armed (they are one-shot: a retry rung
// reruns the pipeline clean); a panic or gate failure quarantines the
// worker and demotes the block one rung; a deadline expiry demotes it
// straight to the identity floor, which always succeeds.
func (e *Engine) ladder(w *worker, b *block.Block, h uint64) (Rung, blockPath, *sched.Result, *dag.DAG) {
	rung := RungPrimary
	if w.inj != nil {
		w.hookKey = h
		w.hookPanic = w.inj.Should(fault.PanicBuilder, h)
		w.hookCorrupt = w.inj.Should(fault.CorruptArc, h)
		if w.inj.Should(fault.SlowBlock, h) {
			w.faults++
			if w.inj.Stall(w.deadline) {
				// The stall consumed the soft deadline before the
				// pipeline even ran: go straight to bounded work.
				w.demoted++
				rung = RungIdentity
			}
		}
	}
	//sched:lint-ignore cancelpoll every iteration demotes the rung or returns, so the loop is bounded by the rung count
	for {
		r, d, path, err := e.attempt(w, b, rung)
		switch {
		case err == nil && w.gate(d, r, b.Len()):
			return rung, path, r, d
		case err == errDeadline:
			w.demoted++
			rung = RungIdentity
			continue
		case err == nil:
			// Computed but illegal: a silent miscompile the gate caught.
			w.gateFails++
			w.quarantine(&e.cfg)
		default:
			// Panic: injected or genuine.
			w.quarantine(&e.cfg)
		}
		if rung == RungIdentity {
			// The identity rung has no panic sites and trivially passes
			// the gate; reaching this line means the gate itself is
			// broken, which must not be papered over.
			panic("engine: identity rung failed the output gate")
		}
		w.demoted++
		rung = rung.next()
	}
}
