package engine

import (
	"errors"
	"fmt"
	"runtime"

	"daginsched/internal/dag"
)

// ErrConfig is the sentinel every constructor-time validation failure
// wraps: errors.Is(err, ErrConfig) distinguishes "the Config was
// nonsense" from runtime failures.
var ErrConfig = errors.New("invalid engine config")

// ErrBusy is the sentinel a lifecycle misuse wraps: errors.Is(err,
// ErrBusy) identifies an Engine.Close attempted while Run/RunStream
// was still executing. The documented contract has always been "do not
// call Close concurrently with a run"; ErrBusy turns a violation into
// a structured refusal instead of unmapping the persistent cache file
// under an active reader.
var ErrBusy = errors.New("engine busy")

// BusyError is the structured form of a rejected Close: how many runs
// were in flight when it was attempted. It unwraps to ErrBusy.
type BusyError struct {
	// Active is the number of Run/RunStream invocations that had
	// entered the engine and not yet returned.
	Active int
}

// Error implements error.
func (e *BusyError) Error() string {
	return fmt.Sprintf("engine: Close with %d active run(s); wait for Run/RunStream to return", e.Active)
}

// Unwrap makes every BusyError match errors.Is(err, ErrBusy).
func (e *BusyError) Unwrap() error { return ErrBusy }

// ConfigError is the structured form of a rejected Config: which field
// was bad, the offending value, and why. It unwraps to ErrConfig.
type ConfigError struct {
	Field  string // Config field name
	Value  any    // the rejected value
	Reason string // what was wrong with it
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("engine: Config.%s = %v: %s", e.Field, e.Value, e.Reason)
}

// Unwrap makes every ConfigError match errors.Is(err, ErrConfig).
func (e *ConfigError) Unwrap() error { return ErrConfig }

// validate normalizes cfg in place — filling defaults and clamping
// where a sane reading exists — and rejects the rest with a
// *ConfigError. The rules per field:
//
//   - Model: required.
//   - Builder: "" defaults to "tableb"; anything but tableb/tablef is
//     rejected.
//   - Workers: 0 means GOMAXPROCS (filled in here); negative is
//     rejected rather than silently treated as a default.
//   - ChunkSize/CacheCap/Crossover: 0 means "default/calibrate";
//     negative ChunkSize and CacheCap are rejected (a negative
//     Crossover is a documented "never route to n²" setting and stays
//     legal); Crossover above dag.N2MaskCap is clamped to it.
//   - CachePath: implies Cache; rejected combined with
//     CollectDAGStats (the disk tier stores no DAG statistics, so a
//     disk-served block could not fill its DAGStats slot).
//   - CacheReadOnly: requires CachePath.
//   - BlockTimeout: negative is rejected; 0 disables deadlines.
//   - StreamDepth: negative is rejected; 0 means the 256-block default.
//   - FaultPlan: rates must lie in [0, 1] and SlowDelay must be
//     non-negative (see fault.Plan.Validate).
func (cfg *Config) validate() error {
	if cfg.Model == nil {
		return &ConfigError{Field: "Model", Value: nil, Reason: "a machine model is required"}
	}
	switch cfg.Builder {
	case "":
		cfg.Builder = "tableb"
	case "tableb", "tablef":
	default:
		return &ConfigError{Field: "Builder", Value: cfg.Builder, Reason: "unknown builder (want tableb or tablef)"}
	}
	if cfg.Workers < 0 {
		return &ConfigError{Field: "Workers", Value: cfg.Workers, Reason: "negative worker count (0 means GOMAXPROCS)"}
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.ChunkSize < 0 {
		return &ConfigError{Field: "ChunkSize", Value: cfg.ChunkSize, Reason: "negative chunk size (0 means the default)"}
	}
	if cfg.CacheCap < 0 {
		return &ConfigError{Field: "CacheCap", Value: cfg.CacheCap, Reason: "negative cache capacity (0 means the default)"}
	}
	if cfg.Crossover > dag.N2MaskCap {
		cfg.Crossover = dag.N2MaskCap
	}
	if cfg.CacheReadOnly && cfg.CachePath == "" {
		return &ConfigError{Field: "CacheReadOnly", Value: true, Reason: "requires CachePath (there is no file to open read-only)"}
	}
	if cfg.CachePath != "" {
		if cfg.CollectDAGStats {
			return &ConfigError{Field: "CachePath", Value: cfg.CachePath, Reason: "incompatible with CollectDAGStats (the persistent tier stores no DAG statistics)"}
		}
		cfg.Cache = true
	}
	if cfg.BlockTimeout < 0 {
		return &ConfigError{Field: "BlockTimeout", Value: cfg.BlockTimeout, Reason: "negative soft deadline (0 disables deadlines)"}
	}
	if cfg.StreamDepth < 0 {
		return &ConfigError{Field: "StreamDepth", Value: cfg.StreamDepth, Reason: "negative stream queue depth (0 means the default)"}
	}
	if cfg.StreamDepth == 0 {
		cfg.StreamDepth = defaultStreamDepth
	}
	if err := cfg.FaultPlan.Validate(); err != nil {
		return &ConfigError{Field: "FaultPlan", Value: cfg.FaultPlan, Reason: err.Error()}
	}
	return nil
}
