// Adaptive builder dispatch and size-binned work distribution.
//
// The paper's Tables 4–5 regime result is that no single construction
// approach wins at every block size: compare-against-all (n²) has the
// lowest constant factors on tiny blocks — no per-resource table state
// to reset, no CSR freeze — while table building's O(n) arc discovery
// wins as blocks grow. The engine exploits that per block: sizes at or
// below a crossover threshold take the n²-direct pipeline (falling
// back to table building when the n² DAG is not transitive-free, which
// is what guarantees byte-identical schedules), everything else takes
// the fixed table+CSR pipeline.
//
// The crossover is machine-dependent, so by default it is measured
// once at engine construction by racing the two pipelines over a
// ladder of synthetic probe blocks (Config.Crossover overrides).
//
// Work distribution changes with dispatch: instead of one atomic
// per-block grab, blocks are sorted by size descending (longest
// processing time first, so a worker never strands a huge block at the
// tail of the run) and the small tail is handed out in chunks of
// Config.ChunkSize per atomic fetch, cutting contention on corpora
// dominated by tiny blocks.
package engine

import (
	"time"

	"slices"
	"sync"
	"sync/atomic"

	"daginsched/internal/block"
	"daginsched/internal/buf"
	"daginsched/internal/dag"
	"daginsched/internal/machine"
	"daginsched/internal/testgen"
)

// defaultChunk is how many small blocks a worker claims per atomic
// fetch when Config.ChunkSize is unset.
const defaultChunk = 32

// smallCutoff splits the distribution's two segments: blocks above it
// are claimed one at a time (they are individually long enough that a
// per-block atomic is noise), blocks at or below it are claimed in
// chunks. It coincides with dag.N2MaskCap, so every block the n²
// pipeline could possibly take lives in the chunked segment.
const smallCutoff = dag.N2MaskCap

// binBounds are the inclusive upper block sizes of the size bins
// Stats.Bins reports; the last bin is unbounded.
var binBounds = [...]int{4, 8, 16, 32, 64, 128, 512}

const nBins = len(binBounds) + 1

// binLabels name the bins in reports ("<=4" ... ">512").
var binLabels = func() [nBins]string {
	var l [nBins]string
	for i, b := range binBounds {
		l[i] = "<=" + itoa(b)
	}
	l[nBins-1] = ">" + itoa(binBounds[len(binBounds)-1])
	return l
}()

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// binIndex maps a block size to its bin.
func binIndex(n int) int {
	for i, b := range binBounds {
		if n <= b {
			return i
		}
	}
	return nBins - 1
}

// blockPath tags which pipeline produced a block's schedule.
type blockPath uint8

const (
	pathTable  blockPath = iota // fixed table pipeline (incl. n² fallback)
	pathN2                      // n²-direct pipeline
	pathCached                  // schedule-cache hit, no pipeline run
)

// binAcc is one worker's running tally for one size bin.
type binAcc struct {
	blocks, insts     int64
	n2, table, cached int64
	nanos             int64
}

// binAdd records one finished block.
func (w *worker) binAdd(n int, nanos int64, path blockPath) {
	a := &w.bins[binIndex(n)]
	a.blocks++
	a.insts += int64(n)
	a.nanos += nanos
	switch path {
	case pathN2:
		a.n2++
	case pathCached:
		a.cached++
	default:
		a.table++
	}
}

// BinStats is one size bin's slice of a run: how many blocks landed in
// the bin, which pipeline scheduled them, and the bin's share of the
// summed per-block wall time.
type BinStats struct {
	Label        string  `json:"label"`
	Blocks       int64   `json:"blocks"`
	Insts        int64   `json:"insts"`
	N2Blocks     int64   `json:"n2_blocks"`
	TableBlocks  int64   `json:"table_blocks"`
	CachedBlocks int64   `json:"cached_blocks"`
	WallShare    float64 `json:"wall_share"`
	InstsPerSec  float64 `json:"insts_per_sec"`
}

// collectBins sums the workers' per-bin tallies into dst (recycled
// across runs once it has grown to nBins).
func (e *Engine) collectBins(dst []BinStats) []BinStats {
	if cap(dst) < nBins {
		dst = make([]BinStats, nBins)
	}
	dst = dst[:nBins]
	var total int64
	for i := range dst {
		var acc binAcc
		for _, w := range e.workers {
			a := &w.bins[i]
			acc.blocks += a.blocks
			acc.insts += a.insts
			acc.n2 += a.n2
			acc.table += a.table
			acc.cached += a.cached
			acc.nanos += a.nanos
		}
		total += acc.nanos
		dst[i] = BinStats{
			Label:        binLabels[i],
			Blocks:       acc.blocks,
			Insts:        acc.insts,
			N2Blocks:     acc.n2,
			TableBlocks:  acc.table,
			CachedBlocks: acc.cached,
		}
		if acc.nanos > 0 {
			dst[i].InstsPerSec = float64(acc.insts) / (float64(acc.nanos) / 1e9)
		}
		dst[i].WallShare = float64(acc.nanos) // share computed below
	}
	for i := range dst {
		if total > 0 {
			dst[i].WallShare /= float64(total)
		} else {
			dst[i].WallShare = 0
		}
	}
	return dst
}

// runBinned is the adaptive work distributor: blocks are processed
// largest-first (LPT — a worker can never strand one huge block
// behind a drained queue), large blocks claimed one per atomic fetch
// and the small tail claimed in chunks of e.chunk.
//
// The order is built by an O(n) counting sort over the size bins
// (descending bin, original index within a bin — deterministic and
// stable), so a fully cache-hit run is not taxed with an n·log n
// comparison sort; only the large prefix, usually a handful of
// blocks, is then exact-sorted by size so an 11k-instruction giant
// starts before a 600-instruction one.
func (e *Engine) runBinned(res *BatchResult, blocks []*block.Block, done <-chan struct{}) {
	nb := len(blocks)
	res.perm = buf.Int32(res.perm, nb)
	var counts, off [nBins]int32
	for _, b := range blocks {
		counts[binIndex(b.Len())]++
	}
	pos := int32(0)
	for bi := nBins - 1; bi >= 0; bi-- {
		off[bi] = pos
		pos += counts[bi]
	}
	for i, b := range blocks {
		bi := binIndex(b.Len())
		res.perm[off[bi]] = int32(i)
		off[bi]++
	}
	smallStart := 0
	for bi := binIndex(smallCutoff) + 1; bi < nBins; bi++ {
		smallStart += int(counts[bi])
	}
	slices.SortFunc(res.perm[:smallStart], func(a, b int32) int {
		if la, lb := blocks[a].Len(), blocks[b].Len(); la != lb {
			return lb - la // size descending
		}
		return int(a - b) // index ascending: deterministic order
	})
	var big, small atomic.Int64
	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for {
				if cancelled(done) {
					return
				}
				i := int(big.Add(1)) - 1
				if i >= smallStart {
					break
				}
				e.process(w, res, blocks, int(res.perm[i]))
			}
			for {
				if cancelled(done) {
					return
				}
				lo := smallStart + (int(small.Add(1))-1)*e.chunk
				if lo >= nb {
					return
				}
				for _, p := range res.perm[lo:min(lo+e.chunk, nb)] {
					e.process(w, res, blocks, int(p))
				}
			}
		}(w)
	}
	wg.Wait()
}

// probeSizes is the calibration ladder: the sizes at which the two
// pipelines are raced to find the crossover.
var probeSizes = [...]int{2, 4, 6, 8, 12, 16, 24, 32, 48, 64}

// calibrateWarmSize is the block size calibration feeds through the
// fixed pipeline before racing it: the table builder's per-block reset
// sweeps its *largest-ever* resource count, so on a mixed corpus a
// worker that has seen one big block pays a grown reset on every tiny
// block thereafter — exactly the cost the n²-direct pipeline avoids.
// Racing against a fresh (small) table would hide that cost and push
// the crossover far below its steady-state value.
const calibrateWarmSize = 512

// calibrateCrossover measures, on this machine and model, the largest
// probe size at which the n²-direct pipeline still beats the fixed
// table+CSR pipeline, scanning the ladder upward and stopping at the
// first loss. Dirty probe blocks charge the n² side its real fallback
// cost, so the measurement reflects dispatch behavior, not just clean
// construction. The probe runs in worker scratch (warming it as a side
// effect) and costs a few milliseconds, once, inside New.
func calibrateCrossover(w *worker, m *machine.Model) int {
	crossover := 0
	b := &block.Block{Name: "calibrate"}
	b.Insts = testgen.Block(11, calibrateWarmSize)
	for i := range b.Insts {
		b.Insts[i].Index = i
	}
	w.schedule(b, m) // grow the table state to mixed-corpus scale
	for _, n := range probeSizes {
		reps := 512 / n
		if reps < 4 {
			reps = 4
		}
		// Best-of-trials rejects scheduler and frequency noise: each
		// trial times one burst per pipeline (order alternating to
		// cancel drift) and only the fastest burst of each side counts.
		n2Best, tableBest := time.Duration(1<<62), time.Duration(1<<62)
		for trial := 0; trial < 4; trial++ {
			b.Insts = testgen.Block(int64(trial%2)*1000+int64(n), n)
			for i := range b.Insts {
				b.Insts[i].Index = i
			}
			w.scheduleN2(b, m) // warm both pipelines on this block
			w.schedule(b, m)
			for half := 0; half < 2; half++ {
				n2First := (trial+half)%2 == 0
				t0 := time.Now()
				for r := 0; r < reps; r++ {
					if n2First {
						w.scheduleN2(b, m)
					} else {
						w.schedule(b, m)
					}
				}
				d := time.Since(t0)
				if n2First {
					n2Best = min(n2Best, d)
				} else {
					tableBest = min(tableBest, d)
				}
			}
		}
		if n2Best > tableBest {
			break
		}
		crossover = n
	}
	return crossover
}
