package engine

import (
	"bytes"
	"strings"
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/dag"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/testgen"
)

// cloneBlock deep-copies a block so the corpus holds genuinely distinct
// *block.Block values with identical instruction sequences — the
// situation the fingerprint cache exists for.
func cloneBlock(b *block.Block) *block.Block {
	insts := append([]isa.Inst(nil), b.Insts...)
	return &block.Block{Name: b.Name + "'", Insts: insts}
}

// TestCacheCollisionNoAlias drives the sharded cache directly: an entry
// stored under hash h must not be returned for a different key that
// lands on the same hash, and a later insert under an occupied hash
// must not displace the first entry (first wins).
func TestCacheCollisionNoAlias(t *testing.T) {
	c := newSchedCache(0)
	keyA := []byte("block-a-canonical-encoding")
	keyB := []byte("block-b-canonical-encoding")
	h := fnv1a64(keyA) // pretend keyB collides onto the same hash

	entA := &cacheEntry{key: keyA, cycles: 7}
	c.insert(h, entA)
	if got := c.lookup(h, keyA); got != entA {
		t.Fatal("lookup with the stored key missed")
	}
	if got := c.lookup(h, keyB); got != nil {
		t.Fatalf("hash collision aliased: got entry with cycles=%d", got.cycles)
	}

	// First wins: a colliding insert leaves the original entry in place.
	c.insert(h, &cacheEntry{key: keyB, cycles: 99})
	if got := c.lookup(h, keyA); got != entA {
		t.Fatal("colliding insert displaced the first entry")
	}
	if got := c.lookup(h, keyB); got != nil {
		t.Fatal("colliding insert aliased the occupied hash")
	}
}

// TestCacheKeyPrefixNoAlias checks the canonical encoding is
// length-delimited: a block that is an exact prefix of another must
// produce a different key (and so a different fingerprint), not a
// prefix-aliased one.
func TestCacheKeyPrefixNoAlias(t *testing.T) {
	insts := testgen.Block(321, 24)
	full := &block.Block{Name: "full", Insts: insts}
	prefix := &block.Block{Name: "prefix", Insts: insts[:12]}

	keyFull := appendBlockKey(nil, full.Insts)
	keyPrefix := appendBlockKey(nil, prefix.Insts)
	if bytes.Equal(keyFull, keyPrefix) {
		t.Fatal("prefix block encodes identically to the full block")
	}
	if bytes.HasPrefix(keyFull, keyPrefix) {
		t.Fatal("prefix block's encoding is a byte prefix of the full block's")
	}
	if fnv1a64(keyFull) == fnv1a64(keyPrefix) {
		t.Fatal("prefix and full block share a fingerprint")
	}

	// End to end: scheduling both must record two misses and no hits.
	for i := range full.Insts {
		full.Insts[i].Index = i
	}
	for i := range prefix.Insts {
		prefix.Insts[i].Index = i
	}
	e, err := New(Config{Workers: 1, Model: machine.Pipe1(), Cache: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run([]*block.Block{full, prefix})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHits != 0 || res.Stats.CacheMisses != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2", res.Stats.CacheHits, res.Stats.CacheMisses)
	}
}

// TestCacheCapBound checks the bound: however many distinct blocks
// flow through, the entry count never exceeds the configured cap (the
// CLOCK hand evicts one resident entry per over-cap insert).
func TestCacheCapBound(t *testing.T) {
	const cap = 64 // 4 entries per shard
	c := newSchedCache(cap)
	for i := 0; i < 10*cap; i++ {
		key := appendBlockKey(nil, testgen.Block(int64(i), 3))
		key = append(key, byte(i), byte(i>>8)) // force distinct keys
		c.insert(fnv1a64(key), &cacheEntry{key: key})
		if n := c.entries(); n > cap {
			t.Fatalf("after %d inserts cache holds %d entries, cap %d", i+1, n, cap)
		}
	}
	if c.entries() == 0 {
		t.Fatal("cache empty after inserts — eviction is clearing eagerly")
	}
}

// TestCacheClockRetainsHotKeys is the churn test for CLOCK eviction: a
// small hot working set that is looked up between waves of cold
// inserts must survive cap pressure — the guarantee the old
// clear-on-cap reset could not give.
func TestCacheClockRetainsHotKeys(t *testing.T) {
	const cap = 64
	c := newSchedCache(cap)
	mkKey := func(i int) ([]byte, uint64) {
		key := appendBlockKey(nil, testgen.Block(int64(i), 3))
		key = append(key, byte(i), byte(i>>8), byte(i>>16))
		return key, fnv1a64(key)
	}
	// A hot set well under one shard's share of the cap.
	type hot struct {
		key []byte
		h   uint64
	}
	var hots []hot
	for i := 0; i < 8; i++ {
		key, h := mkKey(1 << 20 * (i + 1))
		c.insert(h, &cacheEntry{key: key})
		hots = append(hots, hot{key, h})
	}
	// Churn: many times the total cap in cold inserts, with the hot
	// set looked up between inserts — the repetitive-corpus pattern.
	// Every lookup re-arms the reference bits, so the CLOCK hand
	// spares the hot entries; the old clear-on-cap reset wiped them
	// the moment any of their shards filled.
	for i := 0; i < 10*cap; i++ {
		for _, hk := range hots {
			if c.lookup(hk.h, hk.key) == nil {
				t.Fatalf("cold insert %d: hot key evicted under churn", i)
			}
		}
		key, h := mkKey(10000 + i)
		c.insert(h, &cacheEntry{key: key})
	}
	for _, hk := range hots {
		if c.lookup(hk.h, hk.key) == nil {
			t.Fatal("hot key evicted after churn")
		}
	}
	if n := c.entries(); n > cap {
		t.Fatalf("cache holds %d entries, cap %d", n, cap)
	}
}

// TestCacheClockEvictionAfterRemove checks the ring tolerates stale
// slots: removing entries then inserting past the cap must neither
// exceed the bound nor lose the ability to evict.
func TestCacheClockEvictionAfterRemove(t *testing.T) {
	const cap = 32
	c := newSchedCache(cap)
	mkKey := func(i int) ([]byte, uint64) {
		key := appendBlockKey(nil, testgen.Block(int64(i), 3))
		key = append(key, byte(i), byte(i>>8), byte(i>>16))
		return key, fnv1a64(key)
	}
	var keys [][]byte
	var hs []uint64
	for i := 0; i < cap; i++ {
		key, h := mkKey(i)
		c.insert(h, &cacheEntry{key: key})
		keys, hs = append(keys, key), append(hs, h)
	}
	for i := 0; i < cap/2; i++ { // poison-removal pattern
		c.remove(hs[i], keys[i])
	}
	for i := 0; i < 4*cap; i++ {
		key, h := mkKey(1000 + i)
		c.insert(h, &cacheEntry{key: key})
		if n := c.entries(); n > cap {
			t.Fatalf("after removals+%d inserts cache holds %d entries, cap %d", i+1, n, cap)
		}
	}
}

// TestCacheShardSelection is the satellite guard for the shard
// selector: the shift must be derived from cacheShardBits (so the
// stripe count and selector cannot drift), every shard must be
// reachable, and out-of-range indices impossible.
func TestCacheShardSelection(t *testing.T) {
	if 1<<cacheShardBits != cacheShards {
		t.Fatalf("cacheShards = %d is not 1<<cacheShardBits (%d)", cacheShards, 1<<cacheShardBits)
	}
	c := newSchedCache(0)
	seen := make(map[int]bool)
	for i := 0; i < 1<<12; i++ {
		h := uint64(i) * 0x9e3779b97f4a7c15 // spread bits across the word
		s := c.shard(h)
		idx := -1
		for j := range c.shards {
			if s == &c.shards[j] {
				idx = j
			}
		}
		if idx < 0 {
			t.Fatal("shard() returned a pointer outside the shard array")
		}
		if want := int(h >> (64 - cacheShardBits)); idx != want {
			t.Fatalf("hash %#x routed to shard %d, want high-bit stripe %d", h, idx, want)
		}
		seen[idx] = true
	}
	if len(seen) != cacheShards {
		t.Fatalf("only %d of %d shards reachable over 4096 hashes", len(seen), cacheShards)
	}
}

// TestEngineCacheHitRateAndIdenticalOutput is the satellite end-to-end
// check: driving the same corpus through a cache-enabled engine twice
// must hit on the second pass, and every run — cache cold, cache warm,
// cache disabled — must produce byte-identical schedules, with the
// scoreboard simulator co-signing cached hits via Verify.
func TestEngineCacheHitRateAndIdenticalOutput(t *testing.T) {
	m := machine.Pipe1()
	base := testBlocks(t, 20)
	// Duplicate every block (as a distinct allocation) so hits occur
	// within a single pass too, not only across passes.
	corpus := make([]*block.Block, 0, 2*len(base))
	for _, b := range base {
		corpus = append(corpus, b, cloneBlock(b))
	}

	off, err := New(Config{Workers: 1, Model: m, KeepOrders: true, CollectDAGStats: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := off.Run(corpus)
	if err != nil {
		t.Fatal(err)
	}
	wantOrders := make([][]int32, len(want.Orders))
	for i, o := range want.Orders {
		wantOrders[i] = append([]int32(nil), o...)
	}
	wantCycles := append([]int32(nil), want.Cycles...)
	wantStats := append([]dag.Stats(nil), want.DAGStats...)

	on, err := New(Config{Workers: 1, Model: m, KeepOrders: true, CollectDAGStats: true, Verify: true, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	first, err := on.Run(corpus)
	if err != nil {
		t.Fatal(err)
	}
	requireSameBatch(t, wantOrders, wantCycles, wantStats, first)
	// Each duplicated block should hit its twin even on the cold pass.
	if first.Stats.CacheHits < int64(len(base)) {
		t.Fatalf("cold pass hits=%d, want >= %d (duplicated corpus)",
			first.Stats.CacheHits, len(base))
	}

	second, err := on.Run(corpus)
	if err != nil {
		t.Fatal(err)
	}
	requireSameBatch(t, wantOrders, wantCycles, wantStats, second)
	if second.Stats.CacheHitRate != 1.0 {
		t.Fatalf("warm pass hit rate %.3f (hits=%d misses=%d), want 1.0",
			second.Stats.CacheHitRate, second.Stats.CacheHits, second.Stats.CacheMisses)
	}
}

// TestEngineCacheDeterminism is the race-suite target: eight workers
// racing on a cache-enabled engine must produce schedules byte-identical
// to a one-worker cache-disabled reference, across repeated runs (cold
// cache, then warm). scripts/ci.sh runs this under -race.
func TestEngineCacheDeterminism(t *testing.T) {
	m := machine.Pipe1()
	blocks := testBlocks(t, 60)

	ref, err := New(Config{Workers: 1, Model: m, KeepOrders: true, CollectDAGStats: true})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := ref.Run(blocks)
	if err != nil {
		t.Fatal(err)
	}
	wantOrders := make([][]int32, len(serial.Orders))
	for i, o := range serial.Orders {
		wantOrders[i] = append([]int32(nil), o...)
	}
	wantCycles := append([]int32(nil), serial.Cycles...)
	wantStats := append([]dag.Stats(nil), serial.DAGStats...)

	e8, err := New(Config{Workers: 8, Model: m, KeepOrders: true, CollectDAGStats: true, Verify: true, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		par, err := e8.Run(blocks)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		requireSameBatch(t, wantOrders, wantCycles, wantStats, par)
	}
}

// TestVerifyCatchesCorruptCacheHit corrupts a memoized entry in place
// and checks Config.Verify refuses the poisoned hit: cached schedules
// get the same independent scoreboard witness as computed ones.
func TestVerifyCatchesCorruptCacheHit(t *testing.T) {
	m := machine.Pipe1()
	blocks := testBlocks(t, 4)
	e, err := New(Config{Workers: 1, Model: m, KeepOrders: true, Verify: true, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(blocks); err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for i := range e.cache.shards {
		s := &e.cache.shards[i]
		for _, ent := range s.m {
			if len(ent.order) > 0 {
				ent.cycles++ // poison the memoized completion time
				corrupted++
			}
		}
	}
	if corrupted == 0 {
		t.Fatal("no non-empty cache entries to corrupt")
	}
	_, err = e.Run(blocks)
	if err == nil {
		t.Fatal("Verify accepted a corrupted cache hit")
	}
	if !strings.Contains(err.Error(), "cycles") {
		t.Fatalf("unexpected verify error: %v", err)
	}
}
