// The persistent (L2) tier of the two-tier schedule cache. The
// in-process striped cache (cache.go) evaporates on every restart;
// Config.CachePath backs it with internal/diskcache's memory-mapped,
// crash-safe, content-keyed file, shared across processes and
// restarts. The tiering protocol:
//
//   - L1 miss → L2 probe. A hit decodes straight from the mapping into
//     the worker's recycled scratch (zero allocations in steady state),
//     passes the structural half of the output gate, is promoted into
//     L1 (so the next occurrence is an L1 hit), and serves the block.
//   - L2 miss → the block runs the normal pipeline; a healthy primary
//     result is inserted into L1 and handed to the write-behind
//     flusher, a single goroutine that drains the pending list in
//     batches, each under one flock acquisition — workers never block
//     on disk (enqueueing is a slice append under a briefly-held
//     mutex), and nothing is dropped: whatever the flusher has not
//     caught up with, Close flushes before releasing the file.
//   - A served schedule that fails the gate is removed from BOTH tiers
//     before the block recomputes, so a poisoned entry cannot be
//     served twice by either cache — in this process or any other.
//
// Content-keyed fingerprints make persistence safe by construction:
// the disk tier stores the same canonical block encodings the L1 keys
// on, every lookup re-validates key and checksum, and the always-on
// legality gate re-checks every served order. Read-only mode
// (Config.CacheReadOnly) lets any number of processes share one
// populated file with no write traffic at all.

package engine

import (
	"sync"
	"time"

	"daginsched/internal/block"
	"daginsched/internal/buf"
	"daginsched/internal/diskcache"
	"daginsched/internal/fault"
	"daginsched/internal/sched"
)

// diskTier owns the engine's handle on the persistent cache plus the
// write-behind machinery: a double-buffered pending list the workers
// append to under a briefly-held mutex, and one flusher goroutine that
// swaps the buffers and writes each swap's batch under a single flock
// acquisition. The list is unbounded on purpose — its entries alias
// the L1 cacheEntry copies, so the marginal memory is slice headers,
// and losing none of them is what lets a single cold run populate the
// file completely (the warm-start gate demands every schedule be
// served from disk, not "most, minus whatever a full queue dropped").
type diskTier struct {
	c  *diskcache.Cache
	ro bool
	wg sync.WaitGroup

	mu      sync.Mutex         //sched:lock-rank 30
	pending []diskcache.Record //sched:guarded-by mu
	closed  bool               //sched:guarded-by mu
	kick    chan struct{}      // wakes the flusher; buffered, never blocks
}

// newDiskTier opens the cache file and, for writable handles, starts
// the flusher.
func newDiskTier(path string, ro bool) (*diskTier, error) {
	c, err := diskcache.Open(path, diskcache.Options{ReadOnly: ro})
	if err != nil {
		return nil, err
	}
	t := &diskTier{c: c, ro: ro}
	if !ro {
		t.kick = make(chan struct{}, 1)
		t.wg.Add(1)
		go t.flusher()
	}
	return t, nil
}

// flusher is the write-behind goroutine: each wakeup swaps the pending
// list for its recycled spare and appends the whole batch under one
// flock acquisition. It exits when close is flagged and the list is
// drained, so nothing enqueued before Close is ever lost.
func (t *diskTier) flusher() {
	defer t.wg.Done()
	var spare []diskcache.Record
	for {
		t.mu.Lock()
		batch := t.pending
		t.pending = spare[:0]
		closed := t.closed
		t.mu.Unlock()
		if len(batch) > 0 {
			t.c.AppendBatch(batch) // an ErrFull here only costs future recomputes
		}
		spare = batch
		if len(batch) > 0 {
			// More may have accumulated while we held the flock; drain
			// before sleeping.
			continue
		}
		if closed {
			return
		}
		<-t.kick
	}
}

// enqueue hands a freshly memoized entry to the flusher. The worker
// never touches the disk or the flock: it appends to the pending list
// under the mutex and pokes the (buffered) wake channel.
func (t *diskTier) enqueue(h uint64, ent *cacheEntry) {
	if t.kick == nil {
		return
	}
	// The entry's slices are immutable after the L1 insert, so the
	// record may alias them; the flusher only reads.
	rec := diskcache.Record{Fp: h, Key: ent.key, Order: ent.order, Issue: ent.issue, Cycles: ent.cycles, Arcs: ent.arcs}
	t.mu.Lock()
	if !t.closed {
		t.pending = append(t.pending, rec)
	}
	t.mu.Unlock()
	select {
	case t.kick <- struct{}{}:
	default:
	}
}

// remove propagates a poisoned-entry removal to the disk tier
// (read-only handles cannot, and need not within this process: the
// L1 removal already prevents re-serving here).
func (t *diskTier) remove(h uint64, key []byte) {
	if !t.ro {
		t.c.Remove(h, key)
	}
}

// close flushes every pending write and releases the file.
func (t *diskTier) close() error {
	if t.kick != nil {
		t.mu.Lock()
		t.closed = true
		t.mu.Unlock()
		select {
		case t.kick <- struct{}{}:
		default:
		}
		t.wg.Wait()
	}
	return t.c.Close()
}

// Close releases the engine's persistent cache tier: the write-behind
// flusher drains its queue, the mapping is unmapped and the file
// handle closed (marking a clean shutdown for crash recovery). A
// Close attempted while Run/RunStream is still executing is refused
// with a *BusyError (errors.Is(err, ErrBusy)) rather than unmapping
// the file under an active reader. An engine without Config.CachePath
// has nothing to release and Close is a no-op. The engine itself
// remains usable — later runs just lose the disk tier.
func (e *Engine) Close() error {
	e.lcMu.Lock()
	defer e.lcMu.Unlock()
	if e.active > 0 {
		return &BusyError{Active: e.active}
	}
	if e.disk == nil {
		return nil
	}
	t := e.disk
	e.disk = nil
	return t.close()
}

// probeDisk is the L2 lookup: it runs only after an L1 miss and
// decodes into the worker's recycled scratch. Zero allocations once
// the scratch has grown to the corpus's largest block.
//
//sched:noalloc
func (e *Engine) probeDisk(w *worker, h uint64) bool {
	return e.disk.c.Lookup(h, w.enc, &w.l2)
}

// admitDiskHit runs the served-schedule checks shared by the batch and
// streaming paths: the cache-bitflip injection point (modeling decayed
// persistent entries), then the structural half of the output gate. A
// failure removes the entry from both tiers and reports !ok, sending
// the block down the ladder. On success the schedule is promoted into
// L1 — copied out of the scratch, which the next block will recycle —
// so later occurrences in this process hit the fast tier.
func (e *Engine) admitDiskHit(w *worker, b *block.Block, h uint64) (order []int32, ok bool) {
	order = w.l2.Order
	if w.inj.Should(fault.CacheBitflip, h) {
		// Poison a scratch copy, as the L1 path does; w.l2.Order is
		// reused across blocks but the flip must not look like a real
		// disk corruption to a later re-probe.
		w.flip = buf.Int32(w.flip, len(w.l2.Order))
		copy(w.flip, w.l2.Order)
		w.inj.FlipBit(w.flip, h)
		w.faults++
		order = w.flip
	}
	if !w.structuralGate(order, w.l2.Issue, b.Len()) {
		w.gateFails++
		e.cache.remove(h, w.enc)
		e.disk.remove(h, w.enc)
		return nil, false
	}
	w.diskHits++
	ent := &cacheEntry{
		key:    append([]byte(nil), w.enc...),
		order:  append([]int32(nil), w.l2.Order...),
		issue:  append([]int32(nil), w.l2.Issue...),
		cycles: w.l2.Cycles,
		arcs:   w.l2.Arcs,
	}
	e.cache.insert(h, ent)
	return order, true
}

// serveDiskHit serves block i of a batch from the decoded L2 entry in
// w.l2. It mirrors serveHit; false means the gate rejected the entry
// (already removed from both tiers) and the caller must recompute.
func (e *Engine) serveDiskHit(w *worker, res *BatchResult, blocks []*block.Block, i int, h uint64, t0 time.Time) bool {
	b := blocks[i]
	order, ok := e.admitDiskHit(w, b, h)
	if !ok {
		return false
	}
	res.Cycles[i] = w.l2.Cycles
	res.Arcs[i] = w.l2.Arcs
	res.Rungs[i] = RungPrimary
	if res.Orders != nil {
		copy(res.Orders[i], order)
	}
	if e.cfg.Verify {
		// The same independent witness a computed or L1-served
		// schedule gets.
		w.rt.PrepareBlock(b.Insts)
		w.hitRes = sched.Result{Order: w.l2.Order, Issue: w.l2.Issue, Cycles: w.l2.Cycles}
		res.errs[i] = verify(b, &w.hitRes, e.cfg.Model, w.rt)
	}
	res.durs[i] = int64(time.Since(t0))
	if e.adaptive {
		w.binAdd(b.Len(), res.durs[i], pathCached)
	}
	return true
}

// streamServeDiskHit is serveDiskHit's streaming twin; the caller
// deposits the outcome.
func (e *Engine) streamServeDiskHit(w *worker, b *block.Block, h uint64) (ok bool, cycles, arcs int32, order []int32, err error) {
	order, ok = e.admitDiskHit(w, b, h)
	if !ok {
		return false, 0, 0, nil, nil
	}
	if e.cfg.Verify {
		w.rt.PrepareBlock(b.Insts)
		w.hitRes = sched.Result{Order: w.l2.Order, Issue: w.l2.Issue, Cycles: w.l2.Cycles}
		err = verify(b, &w.hitRes, e.cfg.Model, w.rt)
	}
	return true, w.l2.Cycles, w.l2.Arcs, order, err
}
