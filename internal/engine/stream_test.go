package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"daginsched/internal/block"
	"daginsched/internal/fault"
	"daginsched/internal/machine"
	"daginsched/internal/synth"
)

// streamOutcome is one sink delivery with its Order copied out of the
// recycled ring storage.
type streamOutcome struct {
	seq    int64
	cycles int32
	arcs   int32
	rung   Rung
	order  []int32
}

// collectStream drives RunStream over blocks (fed on an unbuffered
// channel, so ingestion genuinely interleaves with scheduling) and
// returns every outcome in delivery order.
func collectStream(t *testing.T, e *Engine, blocks []*block.Block) ([]streamOutcome, Stats, error) {
	t.Helper()
	src := make(chan *block.Block)
	go func() {
		defer close(src)
		for _, b := range blocks {
			src <- b
		}
	}()
	var got []streamOutcome
	sink := func(o BlockOutcome) {
		oc := streamOutcome{seq: o.Seq, cycles: o.Cycles, arcs: o.Arcs, rung: o.Rung}
		if o.Order != nil {
			oc.order = append([]int32(nil), o.Order...)
		}
		got = append(got, oc)
	}
	st, err := e.RunStream(context.Background(), src, sink)
	return got, st, err
}

// requireStreamMatchesBatch checks outcome i against batch block i:
// same schedule bytes, same cycles, same arc count, same rung, and
// dense in-order sequence numbers.
func requireStreamMatchesBatch(t *testing.T, got []streamOutcome, want *BatchResult) {
	t.Helper()
	if len(got) != len(want.Orders) {
		t.Fatalf("stream delivered %d outcomes, want %d", len(got), len(want.Orders))
	}
	for i, oc := range got {
		if oc.seq != int64(i) {
			t.Fatalf("outcome %d: seq %d — sink deliveries must be dense and in order", i, oc.seq)
		}
		if oc.cycles != want.Cycles[i] {
			t.Fatalf("block %d: cycles %d, want %d", i, oc.cycles, want.Cycles[i])
		}
		if oc.arcs != want.Arcs[i] {
			t.Fatalf("block %d: arcs %d, want %d", i, oc.arcs, want.Arcs[i])
		}
		if oc.rung != want.Rungs[i] {
			t.Fatalf("block %d: rung %v, want %v", i, oc.rung, want.Rungs[i])
		}
		if len(oc.order) != len(want.Orders[i]) {
			t.Fatalf("block %d: order length %d, want %d", i, len(oc.order), len(want.Orders[i]))
		}
		for k := range oc.order {
			if oc.order[k] != want.Orders[i][k] {
				t.Fatalf("block %d position %d: node %d, want %d", i, k, oc.order[k], want.Orders[i][k])
			}
		}
	}
}

// TestRunStreamMatchesRun requires streamed schedules to be
// byte-identical to batch Run over the same corpus at every worker
// count, through a deliberately tiny queue depth so backpressure and
// the reorder ring actually engage.
func TestRunStreamMatchesRun(t *testing.T) {
	m := machine.Super2()
	blocks := testBlocks(t, 200)
	base := Config{Model: m, KeepOrders: true, Cache: true, Crossover: 16}

	ref, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(blocks)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4, 8} {
		cfg := base
		cfg.Workers = workers
		cfg.StreamDepth = 16
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Two passes through the same engine: the second runs with warm
		// arenas and a populated cache, like a long stream's steady
		// state.
		for pass := 0; pass < 2; pass++ {
			got, st, err := collectStream(t, e, blocks)
			if err != nil {
				t.Fatalf("workers=%d pass=%d: %v", workers, pass, err)
			}
			requireStreamMatchesBatch(t, got, want)
			if st.Blocks != len(blocks) {
				t.Fatalf("workers=%d: stats counted %d blocks, want %d", workers, st.Blocks, len(blocks))
			}
			if st.Insts != want.Stats.Insts {
				t.Fatalf("workers=%d: stats counted %d insts, want %d", workers, st.Insts, want.Stats.Insts)
			}
			if pass == 1 && st.CacheHits == 0 {
				t.Fatalf("workers=%d: second pass over one corpus saw no cache hits", workers)
			}
		}
	}
}

// TestRunStreamFaultedMatchesRun streams under an aggressive fault
// plan and requires the outcomes — including which ladder rung served
// each block — to match a batch run under the same plan. Faults are
// content-keyed, so arrival order and worker interleaving must not
// change which blocks get hit or how they recover.
func TestRunStreamFaultedMatchesRun(t *testing.T) {
	m := machine.Super2()
	blocks := testBlocks(t, 120)
	cfg := Config{
		Model: m, KeepOrders: true, Cache: true, Verify: true, Crossover: 16,
		FaultPlan: &fault.Plan{Seed: 42, PanicBuilder: 0.1, CorruptArc: 0.1, CacheBitflip: 0.3},
	}

	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(blocks)
	if err != nil {
		t.Fatal(err)
	}
	degraded := 0
	for _, r := range want.Rungs {
		if r != RungPrimary {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("fault plan injected nothing; the test is vacuous")
	}

	scfg := cfg
	scfg.Workers = 4
	scfg.StreamDepth = 16
	e, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := collectStream(t, e, blocks)
	if err != nil {
		t.Fatal(err)
	}
	requireStreamMatchesBatch(t, got, want)
	if st.DegradedBlocks != int64(degraded) {
		t.Fatalf("stream degraded %d blocks, batch degraded %d", st.DegradedBlocks, degraded)
	}
}

// TestRunStreamCancellation cancels mid-stream and requires: RunStream
// returns promptly with the context error, the sink saw a dense
// in-order prefix, and an unbounded producer does not wedge the
// pipeline.
func TestRunStreamCancellation(t *testing.T) {
	m := machine.Super2()
	blocks := testBlocks(t, 10)
	e, err := New(Config{Workers: 4, Model: m, StreamDepth: 8})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := make(chan *block.Block)
	go func() {
		defer close(src)
		for i := 0; ; i++ {
			select {
			case src <- blocks[i%len(blocks)]:
			case <-ctx.Done():
				return
			}
		}
	}()

	var seqs []int64
	sink := func(o BlockOutcome) {
		seqs = append(seqs, o.Seq)
		if len(seqs) == 100 {
			cancel()
		}
	}
	done := make(chan struct{})
	var st Stats
	var runErr error
	go func() {
		defer close(done)
		st, runErr = e.RunStream(ctx, src, sink)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("RunStream did not return after cancellation")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", runErr)
	}
	if len(seqs) < 100 {
		t.Fatalf("sink saw %d outcomes before cancellation propagated, want >= 100", len(seqs))
	}
	for i, s := range seqs {
		if s != int64(i) {
			t.Fatalf("outcome %d has seq %d: cancelled stream must still emit a dense prefix", i, s)
		}
	}
	if st.Blocks < len(seqs) {
		t.Fatalf("stats counted %d blocks, sink saw %d", st.Blocks, len(seqs))
	}
}

// TestRunStreamBoundedMemory streams >1M instructions of fresh content
// through a tiny queue and requires the live heap to stay flat: the
// measurement compares the post-GC heap after a short priming stream
// against the post-GC heap after a stream four times longer on the
// same engine. Growth proportional to stream length would fail; queue-
// and arena-proportional state does not.
func TestRunStreamBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("streams 1.5M instructions")
	}
	m := machine.Super2()
	e, err := New(Config{Workers: 2, Model: m, Cache: false, StreamDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	profiles := synth.Profiles()
	runStream := func(minInsts int64) {
		src := make(chan *block.Block, 8)
		free := make(chan *block.Block, 64)
		go synth.StreamCorpus(context.Background(), profiles, minInsts, src, free)
		sink := func(o BlockOutcome) {
			select {
			case free <- o.Block:
			default:
			}
		}
		if _, err := e.RunStream(context.Background(), src, sink); err != nil {
			t.Fatal(err)
		}
	}
	liveHeap := func() int64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.HeapAlloc)
	}

	runStream(300_000)
	before := liveHeap()
	runStream(1_200_000)
	after := liveHeap()

	const limit = 16 << 20
	if grew := after - before; grew > limit {
		t.Fatalf("live heap grew %d bytes across a 4x longer stream (limit %d): streaming state is not bounded", grew, limit)
	}
}

// TestRunStreamEdgeCases covers the empty stream, nil source rejection
// and nil-block tolerance.
func TestRunStreamEdgeCases(t *testing.T) {
	m := machine.Super2()
	e, err := New(Config{Workers: 2, Model: m, StreamDepth: 4})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := e.RunStream(context.Background(), nil, nil); err == nil {
		t.Fatal("nil source accepted")
	}

	src := make(chan *block.Block)
	close(src)
	st, err := e.RunStream(context.Background(), src, nil)
	if err != nil {
		t.Fatalf("empty stream: %v", err)
	}
	if st.Blocks != 0 || st.Insts != 0 {
		t.Fatalf("empty stream counted %d blocks / %d insts", st.Blocks, st.Insts)
	}

	blocks := testBlocks(t, 3)
	src = make(chan *block.Block, 4)
	src <- nil
	src <- blocks[0]
	src <- nil
	close(src)
	n := 0
	st, err = e.RunStream(context.Background(), src, func(BlockOutcome) { n++ })
	if err != nil {
		t.Fatalf("nil-block stream: %v", err)
	}
	if n != 1 || st.Blocks != 1 {
		t.Fatalf("nil blocks not skipped: %d outcomes, %d counted", n, st.Blocks)
	}
}

// TestStreamHistogram pins the latency histogram's bucketing: exact
// below 16ns, ~12% relative resolution above, monotone representative
// values, and the batch percentile rank convention.
func TestStreamHistogram(t *testing.T) {
	for n := int64(0); n < 16; n++ {
		if got := histIndex(n); got != int(n) {
			t.Fatalf("histIndex(%d) = %d, want exact bucket", n, got)
		}
	}
	if histIndex(-5) != 0 {
		t.Fatal("negative duration must land in bucket 0")
	}
	prev := -1.0
	for i := 0; i < streamHistBuckets; i++ {
		rep := histRepNanos(i)
		if rep <= prev {
			t.Fatalf("bucket %d representative %v not monotone after %v", i, rep, prev)
		}
		prev = rep
		// The top few buckets represent durations beyond int64 range and
		// can never be produced by histIndex; round-trip the rest.
		if rep < float64(1<<62) {
			if idx := histIndex(int64(rep)); idx != i {
				t.Fatalf("bucket %d representative %v maps back to bucket %d", i, rep, idx)
			}
		}
	}
	// Relative error: for durations across the range, the representative
	// of the bucket a duration lands in stays within ~13% of it.
	for _, d := range []int64{17, 100, 999, 12345, 1e6, 5e7, 1e9} {
		rep := histRepNanos(histIndex(d))
		if rel := (rep - float64(d)) / float64(d); rel > 0.13 || rel < -0.13 {
			t.Fatalf("duration %d: representative %v off by %.1f%%", d, rep, rel*100)
		}
	}
	var h [streamHistBuckets]int64
	h[histIndex(10)] = 90
	h[histIndex(1000)] = 10
	if p := histPercentile(&h, 100, 50); p != 10 {
		t.Fatalf("p50 = %v, want 10", p)
	}
	if p := histPercentile(&h, 100, 99); p < 500 {
		t.Fatalf("p99 = %v, want the ~1000ns bucket's representative", p)
	}
	if p := histPercentile(&h, 0, 99); p != 0 {
		t.Fatalf("empty histogram percentile = %v, want 0", p)
	}
}
