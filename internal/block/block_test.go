package block

import (
	"testing"
	"testing/quick"

	"daginsched/internal/isa"
)

func labeled(in isa.Inst, label string) isa.Inst {
	in.Label = label
	return in
}

func TestPartitionSimple(t *testing.T) {
	prog := []isa.Inst{
		isa.MovI(1, isa.O0),
		isa.RRR(isa.ADD, isa.O0, isa.O1, isa.O2),
		isa.Branch(isa.BA, "L1"),
		isa.Nop(), // delay slot: belongs to the FOLLOWING block
		labeled(isa.MovI(2, isa.O3), "L1"),
		isa.Ret(),
		isa.Restore(), // ret's delay slot
	}
	bs := Partition(prog)
	if len(bs) != 4 {
		t.Fatalf("got %d blocks, want 4", len(bs))
	}
	if bs[0].Len() != 3 || !bs[0].EndsInCTI() {
		t.Errorf("block 0: len %d, endsInCTI %v", bs[0].Len(), bs[0].EndsInCTI())
	}
	// The nop delay slot starts block 1, which ends at the label L1.
	if bs[1].Len() != 1 || bs[1].Insts[0].Op != isa.NOP {
		t.Errorf("block 1 should be the delay-slot nop, got %v", bs[1].Insts)
	}
	if bs[2].Name != "L1" || bs[2].Len() != 2 || bs[2].Insts[1].Op != isa.RET {
		t.Errorf("block 2: name %q len %d", bs[2].Name, bs[2].Len())
	}
	// ret's delay-slot restore trails as its own block.
	if bs[3].Len() != 1 || bs[3].Insts[0].Op != isa.RESTORE {
		t.Errorf("block 3 should be the restore, got %v", bs[3].Insts)
	}
}

func TestPartitionDelaySlotCounting(t *testing.T) {
	// Table 3's rule: the delay-slot instruction counts with the block
	// following the branch, including for annulling branches.
	prog := []isa.Inst{
		isa.CmpI(isa.O0, 0),
		isa.BranchA(isa.BNE, "loop"),
		isa.RIR(isa.ADD, isa.O1, 1, isa.O1), // annulled delay slot
		isa.MovI(0, isa.O2),
		isa.Ret(),
	}
	bs := Partition(prog)
	if len(bs) != 2 {
		t.Fatalf("got %d blocks, want 2", len(bs))
	}
	if bs[0].Len() != 2 {
		t.Errorf("branch block len = %d, want 2", bs[0].Len())
	}
	if bs[1].Len() != 3 || bs[1].Insts[0].Op != isa.ADD {
		t.Errorf("following block must start with the delay-slot add: %v", bs[1].Insts)
	}
}

func TestPartitionSaveRestoreEndBlocks(t *testing.T) {
	prog := []isa.Inst{
		isa.SaveI(-96),
		isa.MovI(1, isa.L0),
		isa.Restore(),
		isa.MovI(2, isa.O0),
	}
	bs := Partition(prog)
	if len(bs) != 3 {
		t.Fatalf("got %d blocks, want 3 (save | mov restore | mov)", len(bs))
	}
	if bs[0].Len() != 1 || bs[0].Insts[0].Op != isa.SAVE {
		t.Error("save must terminate its own block")
	}
	if bs[1].Len() != 2 || bs[1].Insts[1].Op != isa.RESTORE {
		t.Error("restore must terminate the middle block")
	}
}

func TestPartitionLabelsStartBlocks(t *testing.T) {
	prog := []isa.Inst{
		isa.MovI(1, isa.O0),
		labeled(isa.MovI(2, isa.O1), "L5"),
		isa.MovI(3, isa.O2),
	}
	bs := Partition(prog)
	if len(bs) != 2 || bs[1].Name != "L5" || bs[1].Len() != 2 {
		t.Fatalf("label did not split: %d blocks", len(bs))
	}
	if bs[0].Name != ".bb0" {
		t.Errorf("synthesized name = %q", bs[0].Name)
	}
}

func TestPartitionIndicesAndStart(t *testing.T) {
	prog := []isa.Inst{
		isa.MovI(1, isa.O0),
		isa.Branch(isa.BA, "x"),
		isa.Nop(),
		isa.MovI(2, isa.O1),
	}
	bs := Partition(prog)
	if bs[1].Start != 2 {
		t.Errorf("block 1 Start = %d, want 2", bs[1].Start)
	}
	for _, b := range bs {
		for i, in := range b.Insts {
			if in.Index != i {
				t.Errorf("block %q inst %d has Index %d", b.Name, i, in.Index)
			}
		}
	}
}

func TestPartitionEmpty(t *testing.T) {
	if bs := Partition(nil); len(bs) != 0 {
		t.Fatal("empty program should have no blocks")
	}
}

func TestSplitWindow(t *testing.T) {
	big := &Block{Name: "huge"}
	for i := 0; i < 2500; i++ {
		big.Insts = append(big.Insts, isa.MovI(int32(i), isa.O0))
	}
	small := &Block{Name: "small", Insts: []isa.Inst{isa.Nop()}}
	out := SplitWindow([]*Block{big, small}, 1000)
	if len(out) != 4 {
		t.Fatalf("got %d blocks, want 4 (1000+1000+500 + small)", len(out))
	}
	if out[0].Len() != 1000 || out[1].Len() != 1000 || out[2].Len() != 500 {
		t.Errorf("piece lengths: %d %d %d", out[0].Len(), out[1].Len(), out[2].Len())
	}
	if out[0].WindowPiece != 0 || out[1].WindowPiece != 1 || out[2].WindowPiece != 2 {
		t.Error("window pieces misnumbered")
	}
	if out[1].Start != big.Start+1000 {
		t.Errorf("piece Start = %d", out[1].Start)
	}
	if out[3] != small {
		t.Error("small block should pass through unchanged")
	}
	if got := SplitWindow([]*Block{big}, 0); len(got) != 1 {
		t.Error("window 0 must be a no-op")
	}
}

func TestSplitWindowPreservesInstructionsQuick(t *testing.T) {
	f := func(n uint8, maxRaw uint8) bool {
		max := int(maxRaw)%20 + 1
		b := &Block{Name: "b"}
		for i := 0; i < int(n); i++ {
			b.Insts = append(b.Insts, isa.MovI(int32(i), isa.O0))
		}
		out := SplitWindow([]*Block{b}, max)
		total := 0
		next := int32(0)
		for _, ob := range out {
			if ob.Len() > max {
				return false
			}
			for _, in := range ob.Insts {
				if in.Imm != next {
					return false // order or content changed
				}
				next++
			}
			total += ob.Len()
		}
		return total == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeasure(t *testing.T) {
	b1 := &Block{Insts: make([]isa.Inst, 4)}
	b2 := &Block{Insts: make([]isa.Inst, 10)}
	mem := map[*Block]int{b1: 2, b2: 6}
	s := Measure([]*Block{b1, b2}, func(b *Block) int { return mem[b] })
	if s.Blocks != 2 || s.Insts != 14 || s.MaxBlockLen != 10 {
		t.Errorf("stats = %+v", s)
	}
	if s.AvgBlockLen != 7 || s.MaxUniqueMem != 6 || s.AvgUniqueMem != 4 {
		t.Errorf("stats = %+v", s)
	}
}

// TestPartitionRoundTripQuick: concatenating the partitioned blocks
// reproduces the original stream exactly (same instructions, same
// order, labels intact) — partitioning only draws boundaries.
func TestPartitionRoundTripQuick(t *testing.T) {
	f := func(ops []uint8, labelAt uint8) bool {
		var prog []isa.Inst
		for i, o := range ops {
			var in isa.Inst
			switch o % 6 {
			case 0:
				in = isa.MovI(int32(i), isa.O0)
			case 1:
				in = isa.Branch(isa.BNE, "L")
			case 2:
				in = isa.Nop()
			case 3:
				in = isa.Call("_f")
			case 4:
				in = isa.Ret()
			default:
				in = isa.RRR(isa.ADD, isa.O0, isa.O1, isa.O2)
			}
			if i == int(labelAt)%(len(ops)+1) {
				in.Label = "L"
			}
			prog = append(prog, in)
		}
		var flat []isa.Inst
		for _, b := range Partition(prog) {
			flat = append(flat, b.Insts...)
		}
		if len(flat) != len(prog) {
			return false
		}
		for i := range prog {
			a, b := prog[i], flat[i]
			b.Index = a.Index // block-local indices differ by design
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSynthNames(t *testing.T) {
	prog := []isa.Inst{isa.Ret(), isa.Ret(), isa.Ret()}
	bs := Partition(prog)
	if bs[0].Name != ".bb0" || bs[1].Name != ".bb1" || bs[2].Name != ".bb2" {
		t.Errorf("names = %q %q %q", bs[0].Name, bs[1].Name, bs[2].Name)
	}
}
