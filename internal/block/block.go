// Package block partitions an instruction stream into basic blocks
// using the rules of Section 2 of the paper:
//
//   - control-transfer instructions (branches, calls, jmpl/ret) end a
//     block, as do the register-window instructions SAVE and RESTORE,
//     "since register identifiers name different physical resources on
//     different sides of these instructions";
//   - a label (branch target) starts a new block;
//   - "a delay slot instruction, including that for an annulling branch,
//     is included in the counts for the basic block following the
//     branch" (Table 3's counting rule), so the block boundary falls
//     immediately after the CTI and the delay-slot instruction leads the
//     next block.
//
// The package also implements the instruction windows of Section 6: the
// n**2 construction algorithm only stays practical when blocks are
// capped at a maximum size (fpppp-1000/2000/4000), while the
// table-building methods need no window.
package block

import "daginsched/internal/isa"

// Block is one basic block.
type Block struct {
	// Name is the leading label, or a synthesized ".bb<n>" name.
	Name string
	// Insts are the block's instructions, in original program order.
	// Inst.Index numbers them within the block (0-based).
	Insts []isa.Inst
	// Start is the index of the block's first instruction in the
	// original stream.
	Start int
	// WindowPiece is > 0 when the block is a non-first piece produced by
	// instruction-window splitting.
	WindowPiece int
}

// Len returns the number of instructions in the block.
func (b *Block) Len() int { return len(b.Insts) }

// EndsInCTI reports whether the block's last instruction is a
// control-transfer instruction.
func (b *Block) EndsInCTI() bool {
	return len(b.Insts) > 0 && b.Insts[len(b.Insts)-1].Op.IsCTI()
}

// Partition splits an instruction stream into basic blocks.
func Partition(prog []isa.Inst) []*Block {
	var blocks []*Block
	var cur *Block
	flush := func() {
		if cur != nil && len(cur.Insts) > 0 {
			blocks = append(blocks, cur)
		}
		cur = nil
	}
	for i := range prog {
		in := prog[i]
		if in.Label != "" {
			flush()
		}
		if cur == nil {
			name := in.Label
			if name == "" {
				name = SynthName(len(blocks))
			}
			cur = &Block{Name: name, Start: i}
		}
		in.Index = len(cur.Insts)
		cur.Insts = append(cur.Insts, in)
		if in.Op.EndsBlock() {
			flush()
		}
	}
	flush()
	return blocks
}

// SynthName is the synthesized ".bb<n>" name of the n-th emitted block
// (0-based) when no label leads it. It is exported so streaming
// partitioners (asm.BlockScanner) name blocks identically to Partition.
func SynthName(n int) string {
	// Small hand-rolled itoa keeps this allocation-light on huge streams.
	buf := [24]byte{'.', 'b', 'b'}
	i := len(buf)
	if n == 0 {
		i--
		buf[i] = '0'
	}
	for v := n; v > 0; v /= 10 {
		i--
		buf[i] = byte('0' + v%10)
	}
	copy(buf[3:], buf[i:])
	return string(buf[:3+len(buf)-i])
}

// SplitWindow applies an instruction window: every block longer than
// max is split into consecutive pieces of at most max instructions.
// max <= 0 means no window. The paper's fpppp-1000/-2000/-4000 data
// sets are windowed views of the same program.
func SplitWindow(blocks []*Block, max int) []*Block {
	if max <= 0 {
		return blocks
	}
	var out []*Block
	for _, b := range blocks {
		if len(b.Insts) <= max {
			out = append(out, b)
			continue
		}
		for piece, off := 0, 0; off < len(b.Insts); piece, off = piece+1, off+max {
			end := off + max
			if end > len(b.Insts) {
				end = len(b.Insts)
			}
			nb := &Block{
				Name:        b.Name,
				Start:       b.Start + off,
				WindowPiece: piece,
			}
			nb.Insts = append(nb.Insts, b.Insts[off:end]...)
			for j := range nb.Insts {
				nb.Insts[j].Index = j
			}
			out = append(out, nb)
		}
	}
	return out
}

// Stats are the per-program structural statistics of Table 3.
type Stats struct {
	Blocks       int     // number of basic blocks
	Insts        int     // total instructions
	MaxBlockLen  int     // largest block
	AvgBlockLen  float64 // instructions per block
	MaxUniqueMem int     // most unique memory expressions in one block
	AvgUniqueMem float64 // unique memory expressions per block
}

// Measure computes Table 3's structural statistics. uniqueMem gives the
// number of unique symbolic memory expressions in one block (usually
// resource.Table.UniqueMemExprs after PrepareBlock).
func Measure(blocks []*Block, uniqueMem func(*Block) int) Stats {
	var s Stats
	s.Blocks = len(blocks)
	totalMem := 0
	for _, b := range blocks {
		n := b.Len()
		s.Insts += n
		if n > s.MaxBlockLen {
			s.MaxBlockLen = n
		}
		u := uniqueMem(b)
		totalMem += u
		if u > s.MaxUniqueMem {
			s.MaxUniqueMem = u
		}
	}
	if s.Blocks > 0 {
		s.AvgBlockLen = float64(s.Insts) / float64(s.Blocks)
		s.AvgUniqueMem = float64(totalMem) / float64(s.Blocks)
	}
	return s
}
