// The atomicfield pass. A struct field that is ever accessed through
// sync/atomic (atomic.LoadUint64(&x.f), atomic.AddInt64(&x.f, 1), …)
// has opted into atomic publication: every other access must be
// atomic too, or the happens-before edges the atomic ops establish
// mean nothing. A plain read can observe a torn or stale value; a
// plain write can desync a publication protocol — exactly the bug
// class the disk cache's index slots depend on avoiding.
//
// The one legitimate exception is construction: before the object
// escapes, plain initialization is both safe and idiomatic. A
// function annotated //sched:atomic-init declares itself such a
// constructor and is exempt wholesale.
//
// Scope notes: the pass keys on address-taken field arguments
// (&x.f) to sync/atomic calls, collected across every package the
// loader saw, and then reports plain selector accesses to those
// fields in the requested packages. Fields of the atomic.Int64-style
// wrapper types are a different mechanism — the type system already
// prevents plain access to their contents — and atomics on
// pointer-derived words (the disk cache's mmap slots) have no field
// object to key on; both are out of scope by construction.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

func runAtomicField(ctx *Context) []Diag {
	// Phase 1: fields passed by address to sync/atomic, module-wide.
	atomicFields := make(map[*types.Var]bool)
	for _, pkg := range ctx.Loader.pkgs {
		if pkg == nil {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := staticCallee(pkg.Info, call)
				if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					if v := addressedField(pkg.Info, arg); v != nil {
						atomicFields[v] = true
					}
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Phase 2: plain accesses in the requested packages.
	var diags []Diag
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || hasFuncDirective(fd, dirAtomicInit) {
					continue
				}
				ctx.checkAtomicAccesses(pkg, fd, atomicFields, &diags)
			}
		}
	}
	return diags
}

// addressedField resolves an argument of the form &x.f to the struct
// field object f, or nil.
func addressedField(info *types.Info, arg ast.Expr) *types.Var {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// checkAtomicAccesses reports every selector access to an
// atomically-published field in fd that is not itself an argument of
// a sync/atomic call.
func (ctx *Context) checkAtomicAccesses(pkg *Package, fd *ast.FuncDecl, atomicFields map[*types.Var]bool, diags *[]Diag) {
	info := pkg.Info
	// Selectors appearing inside &x.f arguments of atomic calls are the
	// sanctioned accesses; everything else is plain.
	sanctioned := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := staticCallee(info, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
				if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
					sanctioned[sel] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sanctioned[sel] {
			return true
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		v, ok := s.Obj().(*types.Var)
		if !ok || !atomicFields[v] {
			return true
		}
		*diags = append(*diags, ctx.diag(sel.Sel.Pos(), "atomicfield",
			"plain access to %s.%s, which is accessed via sync/atomic elsewhere: use atomic ops, or mark a constructor //sched:atomic-init",
			exprString(sel.X), sel.Sel.Name))
		return true
	})
}
