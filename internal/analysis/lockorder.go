// The lockorder pass. Mutex fields annotated
//
//	mu sync.Mutex //sched:lock-rank 20
//
// form the module's static lock order: while any ranked mutex is
// held, only mutexes of strictly greater rank may be acquired. The
// pass builds the static lock-acquisition graph — direct Lock calls
// plus, transitively, every ranked mutex a static callee can acquire —
// and reports (a) any acquisition edge that violates rank order
// (equal ranks may never nest: that is the striped-shard rule) and
// (b) any edge that closes a cycle in the graph, which is a deadlock
// regardless of what the ranks claim.
//
// The walk is structural, like guardedby: Lock marks its rendered
// receiver path held for the rest of the statement list, Unlock
// clears it, branch bodies inherit but contribute nothing back, and
// function literals are analyzed with an empty held set (they run at
// an unknown time). Locks taken inside function literals of a callee
// are likewise not attributed to its callers — a goroutine's
// acquisitions are not synchronous with the call that launches it.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// rankedMutex is one //sched:lock-rank annotation.
type rankedMutex struct {
	rank int
	name string // pkg.Type.field, for diagnostics
	pos  token.Pos
}

// heldLock is one mutex the structural walk currently believes held.
type heldLock struct {
	v        *types.Var // mutex field object; nil for non-field paths
	path     string     // rendered acquisition path (exprString)
	pos      token.Pos  // acquisition site
	reader   bool       // RLock, not Lock
	deferred bool       // a deferred unlock is pending (panicsafe cares)
}

// lockEdge is one acquisition-order edge: to was (or could be, via a
// call) acquired while from was held.
type lockEdge struct {
	from, to *types.Var
	pos      token.Pos // site of the inner acquisition or the call
	via      string    // callee display name for indirect edges, "" for direct
}

func runLockOrder(ctx *Context) []Diag {
	var diags []Diag
	ranked := make(map[*types.Var]*rankedMutex)
	for _, pkg := range ctx.Loader.pkgs {
		if pkg == nil {
			continue
		}
		requested := false
		for _, p := range ctx.Pkgs {
			if p == pkg {
				requested = true
			}
		}
		ctx.collectRanked(pkg, requested, ranked, &diags)
	}
	if len(ranked) == 0 {
		return diags
	}

	acquires := ctx.mayAcquire(ranked)

	var edges []lockEdge
	seenEdge := make(map[[2]*types.Var]bool)
	addEdge := func(from *heldLock, to *types.Var, pos token.Pos, via string) {
		f, t := ranked[from.v], ranked[to]
		if t.rank <= f.rank {
			if via != "" {
				diags = append(diags, ctx.diag(pos, "lockorder",
					"call to %s acquires %s (rank %d) while %s (rank %d) is held: lock ranks must strictly increase",
					via, t.name, t.rank, f.name, f.rank))
			} else {
				diags = append(diags, ctx.diag(pos, "lockorder",
					"acquires %s (rank %d) while %s is held (rank %d, locked as %s): lock ranks must strictly increase",
					t.name, t.rank, f.name, f.rank, from.path))
			}
		}
		if !seenEdge[[2]*types.Var{from.v, to}] {
			seenEdge[[2]*types.Var{from.v, to}] = true
			edges = append(edges, lockEdge{from: from.v, to: to, pos: pos, via: via})
		}
	}

	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				lockWalk(pkg.Info, fd.Body, lockWalkHooks{
					acquire: func(lk *heldLock, held []*heldLock) {
						if lk.v == nil || ranked[lk.v] == nil {
							return
						}
						for _, h := range held {
							if h.v != nil && ranked[h.v] != nil {
								addEdge(h, lk.v, lk.pos, "")
							}
						}
					},
					expr: func(n ast.Node, held []*heldLock) {
						anyRanked := false
						for _, h := range held {
							if h.v != nil && ranked[h.v] != nil {
								anyRanked = true
							}
						}
						if !anyRanked {
							return
						}
						scanCalls(pkg.Info, n, func(call *ast.CallExpr, callee *types.Func) {
							for _, v := range acquires[callee] {
								for _, h := range held {
									if h.v != nil && ranked[h.v] != nil {
										addEdge(h, v, call.Pos(), funcDisplayName(callee))
									}
								}
							}
						})
					},
				})
			}
		}
	}

	// Cycle check over the whole acquisition graph: an edge whose head
	// reaches back to its tail closes a cycle — a deadlock even when
	// every individual edge ascends in rank (which it cannot, but the
	// graph check does not lean on that).
	adj := make(map[*types.Var][]*types.Var)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for _, e := range edges {
		if reachesLock(adj, e.to, e.from, make(map[*types.Var]bool)) {
			diags = append(diags, ctx.diag(e.pos, "lockorder",
				"acquiring %s while %s is held closes a lock-order cycle",
				ranked[e.to].name, ranked[e.from].name))
		}
	}
	return diags
}

// collectRanked gathers //sched:lock-rank annotations from pkg. Bad
// annotations are reported only for requested packages, so a narrow
// -passes run does not report into dependencies it merely loaded.
func (ctx *Context) collectRanked(pkg *Package, requested bool, ranked map[*types.Var]*rankedMutex, diags *[]Diag) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				for _, field := range st.Fields.List {
					rank, ok, bad := lockRank(field)
					if !ok {
						continue
					}
					if bad {
						if requested {
							*diags = append(*diags, ctx.diag(field.Pos(), "lockorder",
								"//sched:lock-rank needs an integer rank"))
						}
						continue
					}
					if !isMutexType(pkg.Info.Types[field.Type].Type) {
						if requested {
							*diags = append(*diags, ctx.diag(field.Pos(), "lockorder",
								"//sched:lock-rank on a field that is not a sync.Mutex or sync.RWMutex"))
						}
						continue
					}
					for _, name := range field.Names {
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
							ranked[v] = &rankedMutex{
								rank: rank,
								name: pkg.Types.Name() + "." + ts.Name.Name + "." + name.Name,
								pos:  name.Pos(),
							}
						}
					}
				}
			}
		}
	}
}

// mayAcquire computes, for every module function, the set of ranked
// mutexes it can acquire — directly or through static callees — as a
// fixpoint over the call graph. Function literals are excluded on
// both ends (their execution is not synchronous with the caller).
func (ctx *Context) mayAcquire(ranked map[*types.Var]*rankedMutex) map[*types.Func][]*types.Var {
	direct := make(map[*types.Func]map[*types.Var]bool)
	callees := make(map[*types.Func][]*types.Func)
	for fn, info := range ctx.Funcs {
		if info.Decl.Body == nil {
			continue
		}
		set := make(map[*types.Var]bool)
		ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if recv, op, ok := lockOpRecv(call); ok && (op == "Lock" || op == "RLock") {
				if v := lockFieldVar(info.Pkg.Info, recv); v != nil && ranked[v] != nil {
					set[v] = true
				}
			}
			if callee := staticCallee(info.Pkg.Info, call); callee != nil && ctx.Funcs[callee] != nil {
				callees[fn] = append(callees[fn], callee)
			}
			return true
		})
		direct[fn] = set
	}
	// Propagate until no set grows. Module call graphs are shallow;
	// this terminates quickly.
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			for _, c := range cs {
				for v := range direct[c] {
					if !direct[fn][v] {
						direct[fn][v] = true
						changed = true
					}
				}
			}
		}
	}
	out := make(map[*types.Func][]*types.Var, len(direct))
	for fn, set := range direct {
		if len(set) == 0 {
			continue
		}
		vs := make([]*types.Var, 0, len(set))
		for v := range set {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(i, j int) bool { return ranked[vs[i]].pos < ranked[vs[j]].pos })
		out[fn] = vs
	}
	return out
}

// reachesLock reports whether to is reachable from from in the
// acquisition graph.
func reachesLock(adj map[*types.Var][]*types.Var, from, to *types.Var, seen map[*types.Var]bool) bool {
	if from == to {
		return true
	}
	if seen[from] {
		return false
	}
	seen[from] = true
	for _, next := range adj[from] {
		if reachesLock(adj, next, to, seen) {
			return true
		}
	}
	return false
}

// lockOpRecv recognizes <path>.Lock/Unlock/RLock/RUnlock() and returns
// the receiver expression (the mutex path) and the operation.
func lockOpRecv(e ast.Expr) (recv ast.Expr, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return nil, "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return sel.X, sel.Sel.Name, true
	}
	return nil, "", false
}

// lockFieldVar resolves a mutex path expression (the x.mu in
// x.mu.Lock()) to the struct field object it denotes, or nil for
// locals and non-field paths. Only mutex-typed objects resolve, so a
// coincidental Lock method on some other type cannot alias a rank.
func lockFieldVar(info *types.Info, x ast.Expr) *types.Var {
	sel, ok := ast.Unparen(x).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !isMutexType(v.Type()) {
		return nil
	}
	return v
}

// lockWalkHooks are the callbacks of lockWalk. acquire fires when a
// Lock/RLock statement executes, with the locks already held at that
// point; expr fires for every scanned expression or leaf statement,
// with the current held set. Either may be nil.
type lockWalkHooks struct {
	acquire func(lk *heldLock, held []*heldLock)
	expr    func(n ast.Node, held []*heldLock)
}

// lockWalk performs the shared structural held-lock walk over a
// function body: the same conservative rules as guardedby (branch
// bodies inherit state but contribute nothing back; deferred unlocks
// keep the lock held but mark it panic-safe; function literals are
// walked with an empty held set).
func lockWalk(info *types.Info, body *ast.BlockStmt, hooks lockWalkHooks) {
	var funcLits []*ast.FuncLit

	heldList := func(held map[string]*heldLock) []*heldLock {
		out := make([]*heldLock, 0, len(held))
		for _, h := range held {
			out = append(out, h)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
		return out
	}

	emit := func(n ast.Node, held map[string]*heldLock) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if lit, ok := m.(*ast.FuncLit); ok {
				funcLits = append(funcLits, lit)
				return false
			}
			return true
		})
		if hooks.expr != nil {
			hooks.expr(n, heldList(held))
		}
	}

	copyHeld := func(held map[string]*heldLock) map[string]*heldLock {
		c := make(map[string]*heldLock, len(held))
		for k, v := range held {
			cp := *v
			c[k] = &cp
		}
		return c
	}

	var walkStmts func(stmts []ast.Stmt, held map[string]*heldLock)
	var walkStmt func(s ast.Stmt, held map[string]*heldLock)
	walkStmt = func(s ast.Stmt, held map[string]*heldLock) {
		switch s := s.(type) {
		case nil:
		case *ast.BlockStmt:
			walkStmts(s.List, held)
		case *ast.ExprStmt:
			if recv, op, ok := lockOpRecv(s.X); ok {
				key := exprString(recv)
				switch op {
				case "Lock", "RLock":
					lk := &heldLock{
						v:      lockFieldVar(info, recv),
						path:   key,
						pos:    s.X.Pos(),
						reader: op == "RLock",
					}
					if hooks.acquire != nil {
						hooks.acquire(lk, heldList(held))
					}
					held[key] = lk
				default:
					delete(held, key)
				}
				return
			}
			emit(s.X, held)
		case *ast.DeferStmt:
			if recv, op, ok := lockOpRecv(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
				if lk := held[exprString(recv)]; lk != nil {
					lk.deferred = true
				}
				return
			}
			emit(s.Call, held)
		case *ast.IfStmt:
			walkStmt(s.Init, held)
			emit(s.Cond, held)
			walkStmt(s.Body, copyHeld(held))
			walkStmt(s.Else, copyHeld(held))
		case *ast.ForStmt:
			walkStmt(s.Init, held)
			emit(s.Cond, held)
			inner := copyHeld(held)
			walkStmt(s.Body, inner)
			if s.Post != nil {
				walkStmt(s.Post, inner)
			}
		case *ast.RangeStmt:
			emit(s.X, held)
			walkStmt(s.Body, copyHeld(held))
		case *ast.SwitchStmt:
			walkStmt(s.Init, held)
			emit(s.Tag, held)
			for _, cc := range s.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					inner := copyHeld(held)
					for _, e := range c.List {
						emit(e, inner)
					}
					walkStmts(c.Body, inner)
				}
			}
		case *ast.TypeSwitchStmt:
			walkStmt(s.Init, held)
			walkStmt(s.Assign, held)
			for _, cc := range s.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					walkStmts(c.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				if c, ok := cc.(*ast.CommClause); ok {
					inner := copyHeld(held)
					walkStmt(c.Comm, inner)
					walkStmts(c.Body, inner)
				}
			}
		case *ast.LabeledStmt:
			walkStmt(s.Stmt, held)
		default:
			emit(s, held)
		}
	}
	walkStmts = func(stmts []ast.Stmt, held map[string]*heldLock) {
		for _, s := range stmts {
			walkStmt(s, held)
		}
	}

	walkStmts(body.List, make(map[string]*heldLock))
	for i := 0; i < len(funcLits); i++ {
		walkStmts(funcLits[i].Body.List, make(map[string]*heldLock))
	}
}

// scanCalls invokes cb for every call in n with a static module
// callee, skipping nested function literals.
func scanCalls(info *types.Info, n ast.Node, cb func(*ast.CallExpr, *types.Func)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if callee := staticCallee(info, call); callee != nil {
				cb(call, callee)
			}
		}
		return true
	})
}
