// The noalloc pass. A function annotated //sched:noalloc promises the
// engine's central performance property: in steady state (every
// recycled buffer grown to the stream's largest block) the function
// performs zero heap allocations. The pass walks the function and
// everything it statically calls within the module and rejects every
// construct that can allocate:
//
//   - make, new, append (capacity statically unknown), map writes
//   - composite literals that escape (&T{...}) and slice/map literals
//   - string concatenation and string<->[]byte/[]rune conversions
//   - function literals whose closure escapes (passed as an argument,
//     returned, stored in a field, or started as a goroutine)
//   - interface boxing of non-pointer values at call sites and
//     assignments
//   - any call into fmt or errors
//   - go statements
//
// One idiom is exempt: an allocation lexically inside an if statement
// whose condition reads cap(...) is the growth arm of a reuse helper
// (buf.Int32, bitset.Reuse, growArcs) — the steady-state path takes
// the other branch, which is exactly the discipline the annotation
// documents. Everything else needs a //sched:lint-ignore noalloc with
// a reason.
//
// Limitations (by design, documented in DESIGN.md §7): calls through
// interfaces or function values are not followed (the engine's
// Selector.Pick is the known case), and escape analysis is purely
// syntactic.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

func runNoalloc(ctx *Context) []Diag {
	// Roots: annotated functions in the requested packages.
	var roots []*types.Func
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasNoallocDirective(fd) {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					roots = append(roots, obj)
				}
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		return ctx.Funcs[roots[i]].Decl.Pos() < ctx.Funcs[roots[j]].Decl.Pos()
	})

	var diags []Diag
	reported := make(map[token.Pos]bool)
	for _, root := range roots {
		for _, fn := range ctx.noallocClosure(root) {
			info := ctx.Funcs[fn]
			if info == nil || info.Decl.Body == nil {
				continue
			}
			ctx.checkNoalloc(fn, root, info, reported, &diags)
		}
	}
	return diags
}

// noallocClosure returns root plus every module function reachable
// from it through statically resolvable calls, in deterministic
// (breadth-first, then position) order.
func (ctx *Context) noallocClosure(root *types.Func) []*types.Func {
	seen := map[*types.Func]bool{root: true}
	order := []*types.Func{root}
	for i := 0; i < len(order); i++ {
		info := ctx.Funcs[order[i]]
		if info == nil || info.Decl.Body == nil {
			continue
		}
		var callees []*types.Func
		ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := staticCallee(info.Pkg.Info, call); callee != nil && !seen[callee] {
				if fi := ctx.Funcs[callee]; fi != nil {
					seen[callee] = true
					callees = append(callees, callee)
				}
			}
			return true
		})
		sort.Slice(callees, func(a, b int) bool {
			return ctx.Funcs[callees[a]].Decl.Pos() < ctx.Funcs[callees[b]].Decl.Pos()
		})
		order = append(order, callees...)
	}
	return order
}

// staticCallee resolves call to a concrete function or method within
// the type-checked world, or nil for builtins, conversions, interface
// methods and function-valued calls.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
				return nil // dynamic dispatch: not followed
			}
			return f
		}
		// Package-qualified call (pkg.Func).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// checkNoalloc scans one closure member for allocating constructs.
func (ctx *Context) checkNoalloc(fn, root *types.Func, info *FuncInfo, reported map[token.Pos]bool, diags *[]Diag) {
	ti := info.Pkg.Info
	exempt := capGuardRanges(info.Decl.Body, ti)
	parents := parentMap(info.Decl.Body)

	where := "in " + funcDisplayName(fn)
	if fn != root {
		where += " (reached from " + funcDisplayName(root) + ")"
	}
	report := func(pos token.Pos, format string, args ...any) {
		if reported[pos] {
			return
		}
		for _, r := range exempt {
			if pos >= r[0] && pos < r[1] {
				return // capacity-guarded growth arm
			}
		}
		reported[pos] = true
		d := ctx.diag(pos, "noalloc", format, args...)
		d.Msg += " " + where
		*diags = append(*diags, d)
	}

	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			ctx.checkCall(ti, n, report)
		case *ast.CompositeLit:
			switch ti.Types[n].Type.Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(lit.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(ti.Types[n].Type) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			checkAssignAllocs(ti, n, report)
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && isMapIndex(ti, idx) {
				report(n.Pos(), "map update may allocate")
			}
		case *ast.FuncLit:
			checkFuncLitEscape(n, parents, report)
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine")
		}
		return true
	})
}

// checkCall flags allocating calls: builtins, string conversions,
// fmt/errors, and interface boxing of concrete non-pointer arguments.
func (ctx *Context) checkCall(ti *types.Info, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := ti.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				report(call.Pos(), "append may grow its backing array (capacity statically unknown)")
			}
			return
		}
	}
	if tv, ok := ti.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: string <-> []byte/[]rune copies.
		dst := tv.Type.Underlying()
		if len(call.Args) == 1 {
			src := ti.Types[call.Args[0]].Type
			if src != nil {
				srcU := src.Underlying()
				if isStringType(dst) && isByteOrRuneSlice(srcU) ||
					isByteOrRuneSlice(dst) && isStringType(srcU) {
					report(call.Pos(), "string conversion allocates")
				}
			}
		}
		return
	}
	if callee := staticCallee(ti, call); callee != nil && callee.Pkg() != nil {
		switch callee.Pkg().Path() {
		case "fmt", "errors":
			report(call.Pos(), "call to %s allocates", funcDisplayName(callee))
			return
		}
	}
	// Interface boxing at the call boundary.
	sig, ok := ti.Types[call.Fun].Type.(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil && boxesInterface(pt, ti.Types[arg].Type) {
			report(arg.Pos(), "passing non-pointer value as interface boxes it on the heap")
		}
	}
}

// checkAssignAllocs flags map writes, string +=, and interface-boxing
// assignments.
func checkAssignAllocs(ti *types.Info, n *ast.AssignStmt, report func(token.Pos, string, ...any)) {
	for _, lhs := range n.Lhs {
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapIndex(ti, idx) {
			report(lhs.Pos(), "map assignment may allocate")
		}
	}
	if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(ti.Types[n.Lhs[0]].Type) {
		report(n.Pos(), "string concatenation allocates")
	}
	if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			lt := ti.Types[lhs].Type
			rt := ti.Types[n.Rhs[i]].Type
			if lt != nil && boxesInterface(lt, rt) {
				report(n.Rhs[i].Pos(), "assigning non-pointer value to interface boxes it on the heap")
			}
		}
	}
}

// checkFuncLitEscape flags function literals whose closure escapes the
// enclosing function. A literal invoked in place or assigned to a
// local variable stays on the stack; one passed as an argument,
// returned, stored through a selector/index, placed in a composite
// literal, sent on a channel, or started as a goroutine does not.
func checkFuncLitEscape(lit *ast.FuncLit, parents map[ast.Node]ast.Node, report func(token.Pos, string, ...any)) {
	parent := parents[lit]
	// Walk through any parens.
	for {
		p, ok := parent.(*ast.ParenExpr)
		if !ok {
			break
		}
		parent = parents[p]
	}
	switch p := parent.(type) {
	case *ast.CallExpr:
		if ast.Unparen(p.Fun) == lit {
			// Direct invocation; only a goroutine launch escapes.
			if _, isGo := parents[p].(*ast.GoStmt); isGo {
				report(lit.Pos(), "goroutine closure allocates")
			}
			return
		}
		report(lit.Pos(), "function literal passed as argument allocates its closure")
	case *ast.ReturnStmt:
		report(lit.Pos(), "returned function literal allocates its closure")
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if ast.Unparen(rhs) != lit {
				continue
			}
			if i < len(p.Lhs) {
				if _, ok := ast.Unparen(p.Lhs[i]).(*ast.Ident); ok {
					return // local variable: closure can stay on the stack
				}
			}
			report(lit.Pos(), "function literal stored outside a local variable allocates its closure")
		}
	case *ast.ValueSpec:
		return // var f = func(){...} inside a function body: local
	case *ast.KeyValueExpr, *ast.CompositeLit, *ast.SendStmt:
		report(lit.Pos(), "function literal stored outside a local variable allocates its closure")
	}
}

// capGuardRanges returns the position ranges of if-bodies (and else
// branches) whose condition reads cap(...): the growth arms of the
// reuse helpers, exempt from noalloc.
func capGuardRanges(body *ast.BlockStmt, ti *types.Info) [][2]token.Pos {
	var ranges [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !mentionsCap(ifs.Cond, ti) {
			return true
		}
		ranges = append(ranges, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
		if ifs.Else != nil {
			ranges = append(ranges, [2]token.Pos{ifs.Else.Pos(), ifs.Else.End()})
		}
		return true
	})
	return ranges
}

func mentionsCap(cond ast.Expr, ti *types.Info) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := ti.Uses[id].(*types.Builtin); ok && b.Name() == "cap" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// parentMap records each node's syntactic parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isMapIndex(ti *types.Info, idx *ast.IndexExpr) bool {
	t := ti.Types[idx.X].Type
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// boxesInterface reports whether assigning a value of type src to a
// destination of type dst converts a concrete non-pointer value into
// an interface, which heap-allocates the boxed copy.
func boxesInterface(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	if _, ok := src.Underlying().(*types.Interface); ok {
		return false // interface-to-interface: no new box
	}
	if b, ok := src.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Chan, *types.Map:
		return false // pointer-shaped: fits in the interface word
	}
	return true
}
