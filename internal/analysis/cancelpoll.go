// The cancelpoll pass. A function annotated //sched:cancellable
// promises its callers that cancellation is observed promptly: every
// loop in its call tree that lacks a statically bounded trip count
// must poll for cancellation on each iteration. Polling is any of
//
//   - a ctx.Err() or ctx.Done() call on a context.Context,
//   - a receive from a chan struct{} (the done-channel idiom,
//     including a select case),
//   - a call to a module function that itself polls (transitively):
//     the engine's cancelled(done) helper is the motivating case.
//
// Bounded means structurally bounded: a range statement, or a
// three-clause for with a post statement (induction loops). Bare
// `for {}` and `for cond {}` loops are assumed unbounded — they run
// until a predicate flips, and if nothing in their body observes
// cancellation they can outlive the caller that asked them to stop.
// A loop whose body waits on a sync.Cond is exempt: cancellation
// reaches it as a Broadcast flipping the predicate, which is the
// condvar protocol condloop enforces.
//
// Loops are only checked in closure members of the root's own
// package; callees in other module packages contribute polling
// evidence but are not themselves held to the annotation (their own
// loops are their own contract). Loops with a convergence argument
// instead of a poll take a //sched:lint-ignore cancelpoll with the
// argument written down.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

func runCancelPoll(ctx *Context) []Diag {
	var roots []*types.Func
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasFuncDirective(fd, dirCancellable) {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					roots = append(roots, obj)
				}
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}
	sort.Slice(roots, func(i, j int) bool {
		return ctx.Funcs[roots[i]].Decl.Pos() < ctx.Funcs[roots[j]].Decl.Pos()
	})

	pollers := ctx.pollingFuncs()

	var diags []Diag
	reported := make(map[token.Pos]bool)
	for _, root := range roots {
		rootPkg := ctx.Funcs[root].Pkg.Types
		for _, fn := range ctx.noallocClosure(root) {
			info := ctx.Funcs[fn]
			if info == nil || info.Decl.Body == nil || info.Pkg.Types != rootPkg {
				continue
			}
			ctx.checkCancelPoll(fn, root, info, pollers, reported, &diags)
		}
	}
	return diags
}

// pollingFuncs computes, as a fixpoint over the module call graph,
// which functions observe cancellation when called: directly (a
// context poll or done-channel receive in their own body, outside
// function literals — a poll inside a goroutine the callee launches
// is not synchronous with the call) or through a static callee.
func (ctx *Context) pollingFuncs() map[*types.Func]bool {
	polls := make(map[*types.Func]bool)
	callees := make(map[*types.Func][]*types.Func)
	for fn, info := range ctx.Funcs {
		if info.Decl.Body == nil {
			continue
		}
		ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if pollsDirectly(info.Pkg.Info, n) {
				polls[fn] = true
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := staticCallee(info.Pkg.Info, call); callee != nil && ctx.Funcs[callee] != nil {
					callees[fn] = append(callees[fn], callee)
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			if polls[fn] {
				continue
			}
			for _, c := range cs {
				if polls[c] {
					polls[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return polls
}

// pollsDirectly reports whether n is itself a cancellation
// observation: ctx.Err()/ctx.Done() on a context.Context, or a
// receive from a chan struct{}.
func pollsDirectly(info *types.Info, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
			return false
		}
		return isContextType(info.Types[sel.X].Type)
	case *ast.UnaryExpr:
		if n.Op != token.ARROW {
			return false
		}
		return isDoneChanType(info.Types[n.X].Type)
	}
	return false
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isDoneChanType matches chan struct{} in any direction: the module's
// done-channel convention.
func isDoneChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// checkCancelPoll flags every structurally unbounded loop in fn whose
// body neither polls nor waits on a condition variable. Loops inside
// function literals are included: the worker closures RunIntoCtx and
// RunStream spawn are exactly the loops the annotation is about.
func (ctx *Context) checkCancelPoll(fn, root *types.Func, info *FuncInfo, pollers map[*types.Func]bool, reported map[token.Pos]bool, diags *[]Diag) {
	ti := info.Pkg.Info
	where := "in " + funcDisplayName(fn)
	if fn != root {
		where += " (reached from " + funcDisplayName(root) + ")"
	}
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Post != nil || reported[loop.Pos()] {
			return true
		}
		if loopObservesCancel(ti, loop, pollers) {
			return true
		}
		reported[loop.Pos()] = true
		*diags = append(*diags, ctx.diag(loop.Pos(), "cancelpoll",
			"loop has no statically bounded trip count and never polls for cancellation %s", where))
		return true
	})
}

// loopObservesCancel reports whether the loop body (excluding nested
// function literals, which run on their own goroutine or schedule)
// polls for cancellation, calls a transitively polling function, or
// blocks in sync.Cond.Wait.
func loopObservesCancel(ti *types.Info, loop *ast.ForStmt, pollers map[*types.Func]bool) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if pollsDirectly(ti, n) {
			found = true
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && isCondType(ti.Types[sel.X].Type) {
			found = true
			return false
		}
		if callee := staticCallee(ti, call); callee != nil && pollers[callee] {
			found = true
			return false
		}
		return true
	})
	return found
}
