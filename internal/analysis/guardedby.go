// The guardedby pass. A struct field annotated
//
//	m map[uint64]*entry //sched:guarded-by mu
//
// may only be read or written while the sibling mutex field mu is
// locked on the same access path: an access s.m requires an earlier
// s.mu.Lock() (or RLock) on every path that reaches it. The schedule
// cache's sharded stripes are the motivating case — each shard's map
// is private to its stripe mutex, and nothing but convention enforced
// that before this pass.
//
// The check is a conservative structural walk, not a full CFG
// analysis: a Lock() marks its base path locked for the remainder of
// the enclosing statement list; branch bodies inherit the state but
// contribute nothing back (a lock taken inside an if does not count
// after it); function literals are checked with an empty lock set
// (they may run later, on another goroutine); deferred Unlocks do not
// clear the state. Accesses through a variable freshly constructed in
// the same function (c := &cache{...}; c.shard.m = ...) are exempt —
// an object is publication-free until it escapes, which is exactly how
// constructors initialize guarded fields.
package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// emptyFset renders expressions without real position information,
// which is all exprString needs.
var emptyFset = token.NewFileSet()

// guardedField is one //sched:guarded-by annotation.
type guardedField struct {
	mu string // sibling mutex field name
}

func runGuardedBy(ctx *Context) []Diag {
	var diags []Diag
	guarded := make(map[*types.Var]guardedField)
	for _, pkg := range ctx.Pkgs {
		ctx.collectGuarded(pkg, guarded, &diags)
	}
	if len(guarded) == 0 {
		return diags
	}
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					ctx.checkGuarded(pkg, fd, guarded, &diags)
				}
			}
		}
	}
	return diags
}

// collectGuarded gathers annotated fields and validates that the named
// mutex is a sync.Mutex/RWMutex sibling in the same struct.
func (ctx *Context) collectGuarded(pkg *Package, guarded map[*types.Var]guardedField, diags *[]Diag) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			siblings := make(map[string]types.Type)
			for _, field := range st.Fields.List {
				t := pkg.Info.Types[field.Type].Type
				for _, name := range field.Names {
					siblings[name.Name] = t
				}
			}
			for _, field := range st.Fields.List {
				mu := guardedByMutex(field)
				if mu == "" {
					continue
				}
				mt, ok := siblings[mu]
				if !ok {
					*diags = append(*diags, ctx.diag(field.Pos(), "guardedby",
						"//sched:guarded-by names %s, which is not a sibling field", mu))
					continue
				}
				if !isMutexType(mt) {
					*diags = append(*diags, ctx.diag(field.Pos(), "guardedby",
						"//sched:guarded-by names %s, which is not a sync.Mutex or sync.RWMutex", mu))
					continue
				}
				for _, name := range field.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						guarded[v] = guardedField{mu: mu}
					}
				}
			}
			return true
		})
	}
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// checkGuarded walks fd, tracking which mutex paths are held, and
// flags guarded-field accesses outside their lock.
func (ctx *Context) checkGuarded(pkg *Package, fd *ast.FuncDecl, guarded map[*types.Var]guardedField, diags *[]Diag) {
	info := pkg.Info
	fresh := freshLocals(info, fd)

	var funcLits []*ast.FuncLit

	// checkExpr inspects an expression (or whole non-block statement)
	// for guarded accesses, skipping nested function literals.
	var checkExpr func(n ast.Node, locked map[string]bool)
	checkExpr = func(n ast.Node, locked map[string]bool) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if lit, ok := m.(*ast.FuncLit); ok {
				funcLits = append(funcLits, lit)
				return false
			}
			sel, ok := m.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			v, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			gf, ok := guarded[v]
			if !ok {
				return true
			}
			if root := rootIdent(sel.X); root != nil {
				obj := info.Uses[root]
				if obj == nil {
					obj = info.Defs[root]
				}
				if v, ok := obj.(*types.Var); ok && fresh[v] {
					return true // pre-publication initialization
				}
			}
			base := exprString(sel.X)
			if !locked[base+"."+gf.mu] {
				*diags = append(*diags, ctx.diag(sel.Sel.Pos(), "guardedby",
					"%s.%s accessed without holding %s.%s", base, sel.Sel.Name, base, gf.mu))
			}
			return true
		})
	}

	var walkStmts func(stmts []ast.Stmt, locked map[string]bool)
	var walkStmt func(s ast.Stmt, locked map[string]bool)
	copyLocked := func(locked map[string]bool) map[string]bool {
		c := make(map[string]bool, len(locked))
		for k, v := range locked {
			c[k] = v
		}
		return c
	}
	walkStmt = func(s ast.Stmt, locked map[string]bool) {
		switch s := s.(type) {
		case nil:
		case *ast.BlockStmt:
			walkStmts(s.List, locked)
		case *ast.ExprStmt:
			if key, op, ok := lockOp(s.X); ok {
				checkExpr(s.X, locked) // the mutex path itself may contain guarded accesses (indexes)
				if op == "Lock" || op == "RLock" {
					locked[key] = true
				} else {
					delete(locked, key)
				}
				return
			}
			checkExpr(s.X, locked)
		case *ast.DeferStmt:
			if _, op, ok := lockOp(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
				return // releases at function exit; state unchanged until then
			}
			checkExpr(s.Call, locked)
		case *ast.IfStmt:
			walkStmt(s.Init, locked)
			checkExpr(s.Cond, locked)
			walkStmt(s.Body, copyLocked(locked))
			walkStmt(s.Else, copyLocked(locked))
		case *ast.ForStmt:
			walkStmt(s.Init, locked)
			checkExpr(s.Cond, locked)
			inner := copyLocked(locked)
			walkStmt(s.Body, inner)
			if s.Post != nil {
				walkStmt(s.Post, inner)
			}
		case *ast.RangeStmt:
			checkExpr(s.X, locked)
			walkStmt(s.Body, copyLocked(locked))
		case *ast.SwitchStmt:
			walkStmt(s.Init, locked)
			checkExpr(s.Tag, locked)
			for _, cc := range s.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					inner := copyLocked(locked)
					for _, e := range c.List {
						checkExpr(e, inner)
					}
					walkStmts(c.Body, inner)
				}
			}
		case *ast.TypeSwitchStmt:
			walkStmt(s.Init, locked)
			walkStmt(s.Assign, locked)
			for _, cc := range s.Body.List {
				if c, ok := cc.(*ast.CaseClause); ok {
					walkStmts(c.Body, copyLocked(locked))
				}
			}
		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				if c, ok := cc.(*ast.CommClause); ok {
					inner := copyLocked(locked)
					walkStmt(c.Comm, inner)
					walkStmts(c.Body, inner)
				}
			}
		case *ast.LabeledStmt:
			walkStmt(s.Stmt, locked)
		default:
			checkExpr(s, locked)
		}
	}
	walkStmts = func(stmts []ast.Stmt, locked map[string]bool) {
		for _, s := range stmts {
			walkStmt(s, locked)
		}
	}

	walkStmts(fd.Body.List, make(map[string]bool))
	// Function literals run at an unknown time, possibly on another
	// goroutine: check them against an empty lock set.
	for i := 0; i < len(funcLits); i++ {
		walkStmts(funcLits[i].Body.List, make(map[string]bool))
	}
}

// lockOp recognizes <path>.Lock/Unlock/RLock/RUnlock() calls and
// returns the rendered mutex path and the operation.
func lockOp(e ast.Expr) (key, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return exprString(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}

// freshLocals returns the local variables initialized from a composite
// literal, &composite literal, or new(...) in fd — objects that cannot
// yet be shared with another goroutine.
func freshLocals(info *types.Info, fd *ast.FuncDecl) map[*types.Var]bool {
	fresh := make(map[*types.Var]bool)
	isFreshExpr := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return e.Op == token.AND && ok
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					return b.Name() == "new"
				}
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || !isFreshExpr(n.Rhs[i]) {
					continue
				}
				if v, ok := info.Defs[id].(*types.Var); ok {
					fresh[v] = true
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) != len(n.Names) {
				return true
			}
			for i, name := range n.Names {
				if !isFreshExpr(n.Values[i]) {
					continue
				}
				if v, ok := info.Defs[name].(*types.Var); ok {
					fresh[v] = true
				}
			}
		}
		return true
	})
	return fresh
}

// exprString renders simple base-path expressions (s, c.shards[i],
// (*p).f) textually so two syntactically identical paths compare
// equal.
func exprString(e ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, emptyFset, e); err != nil {
		return "?"
	}
	return strings.Join(strings.Fields(b.String()), "")
}
