// Package analysis is schedlint: a repo-specific static-analysis
// suite, built only on the standard library's go/ast, go/parser,
// go/types and go/token, that enforces the invariants the scheduling
// engine's performance work bought its speed with but that the
// compiler cannot check:
//
//   - noalloc: functions annotated //sched:noalloc (and everything
//     they statically call within the module) must contain no
//     allocating constructs. The engine's steady-state per-block path
//     is advertised as allocation-free; this pass is what keeps that
//     claim true as the code evolves.
//   - arenalife: values derived from the arena constructors
//     (dag.BuildArena, package buf, bitset.Slab.Carve, the frozen CSR
//     views) are invalidated by the arena's next ResetFor. They must
//     not be stored in package-level variables nor returned across an
//     exported boundary outside the arena-owning packages.
//   - guardedby: struct fields annotated //sched:guarded-by <mu> may
//     only be touched while <mu> is held on the same receiver path —
//     the schedule cache's sharded stripes are the motivating case.
//   - benchallocs: every Benchmark in the hot packages must call
//     b.ReportAllocs(), so a regression from 0 allocs/op is visible in
//     every benchmark run, not only the ones someone thought to check.
//   - lockorder: mutex fields annotated //sched:lock-rank <n> form a
//     static lock order; an acquisition while holding an equal or
//     higher rank, or any acquisition cycle, is reported.
//   - atomicfield: a field touched via sync/atomic anywhere may never
//     be read or written plainly outside a //sched:atomic-init
//     constructor.
//   - condloop: Cond.Wait must sit inside a for loop, and writes to
//     //sched:signals fields must be followed by a Signal/Broadcast on
//     the named condition variable.
//   - cancelpoll: //sched:cancellable functions must poll ctx.Err(),
//     ctx.Done() or a done channel on every loop without a statically
//     bounded trip count.
//   - panicsafe: inside //sched:recover-boundary call trees, no mutex
//     may be held across a call that can panic unless the unlock is
//     deferred.
//
// Diagnostics are file:line:col: [pass] message lines (or JSON with
// -json) and any finding can be suppressed per line with
// //sched:lint-ignore <pass> <reason> — the reason is mandatory; an
// undocumented suppression is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Diag is one finding. File is module-relative so output is stable
// across checkouts.
type Diag struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Pass string `json:"pass"`
	Msg  string `json:"message"`
}

func (d Diag) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Pass, d.Msg)
}

// FuncInfo pairs a function declaration with the package it lives in.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Context is one schedlint run: the loaded packages under analysis,
// plus indexes shared by the passes.
type Context struct {
	Loader *Loader
	// Pkgs are the packages named on the command line; passes report
	// findings rooted in these (noalloc may follow calls into, and
	// report inside, other module packages the loader pulled in).
	Pkgs []*Package
	// Funcs indexes every function declaration of every module package
	// the loader has seen, keyed by its type-checker object — the
	// cross-package call-graph map the noalloc pass walks.
	Funcs map[*types.Func]*FuncInfo
	// Audit enables the unused-suppression audit: a //sched:lint-ignore
	// whose pass ran but never fired on a covered line becomes a
	// lint-ignore finding of its own. CI runs with this on (strict
	// mode) so stale suppressions cannot rot silently.
	Audit bool
	// Stats is filled by Run: one entry per executed pass, in registry
	// order, with its post-suppression finding count and wall time.
	Stats []PassStat
}

// PassStat is one pass's cost and yield in a Run invocation.
type PassStat struct {
	Name     string
	Findings int
	Duration time.Duration
}

// Load loads the packages matching patterns (relative to the module
// containing dir) and builds the shared indexes.
func Load(dir string, patterns []string) (*Context, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	ctx := &Context{Loader: l, Funcs: make(map[*types.Func]*FuncInfo)}
	for _, d := range dirs {
		pkg, err := l.LoadDir(d)
		if err != nil {
			return nil, err
		}
		ctx.Pkgs = append(ctx.Pkgs, pkg)
	}
	// Index declarations over everything the loader saw, not only the
	// requested packages, so call graphs cross package boundaries even
	// under narrow patterns.
	for _, pkg := range l.pkgs {
		if pkg == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					ctx.Funcs[obj] = &FuncInfo{Decl: fd, Pkg: pkg}
				}
			}
		}
	}
	return ctx, nil
}

// Passes is the registry, in reporting order.
var Passes = []struct {
	Name string
	Run  func(*Context) []Diag
	Doc  string
}{
	{"noalloc", runNoalloc, "//sched:noalloc functions and their static callees must not allocate"},
	{"arenalife", runArenaLife, "arena-backed values must not outlive ResetFor (no globals, no exported returns)"},
	{"guardedby", runGuardedBy, "//sched:guarded-by fields only touched under their mutex"},
	{"benchallocs", runBenchAllocs, "hot-package benchmarks must call b.ReportAllocs()"},
	{"lockorder", runLockOrder, "//sched:lock-rank mutexes must be acquired in strictly increasing rank, acyclically"},
	{"atomicfield", runAtomicField, "fields touched via sync/atomic must never be accessed plainly outside //sched:atomic-init"},
	{"condloop", runCondLoop, "Cond.Wait needs a for loop; //sched:signals writes need a Signal/Broadcast after them"},
	{"cancelpoll", runCancelPoll, "//sched:cancellable loops without bounded trip counts must poll for cancellation"},
	{"panicsafe", runPanicSafe, "//sched:recover-boundary call trees must not hold a mutex across a panicking call undeferred"},
}

// PassNames returns the registry's pass names in order.
func PassNames() []string {
	names := make([]string, len(Passes))
	for i, p := range Passes {
		names[i] = p.Name
	}
	return names
}

// Run executes the named passes (nil or empty = all) and returns the
// surviving findings: suppressed diagnostics are dropped, malformed
// suppressions are added as findings of their own, and the result is
// deduplicated and sorted by position. With ctx.Audit set, a
// suppression that an executed pass never used is itself a finding.
func (ctx *Context) Run(passes []string) ([]Diag, error) {
	want := make(map[string]bool)
	for _, p := range passes {
		want[p] = true
	}
	if len(passes) > 0 {
		for _, p := range passes {
			known := false
			for _, reg := range Passes {
				if reg.Name == p {
					known = true
				}
			}
			if !known {
				return nil, fmt.Errorf("analysis: unknown pass %q (valid passes: %s)", p, strings.Join(PassNames(), ", "))
			}
		}
	}
	ctx.Stats = ctx.Stats[:0]
	ran := make(map[string]bool)
	var diags []Diag
	for _, reg := range Passes {
		if len(want) > 0 && !want[reg.Name] {
			continue
		}
		t0 := time.Now()
		diags = append(diags, reg.Run(ctx)...)
		ctx.Stats = append(ctx.Stats, PassStat{Name: reg.Name, Duration: time.Since(t0)})
		ran[reg.Name] = true
	}
	sup := ctx.suppressions()
	diags = append(diags, sup.malformed...)
	var kept []Diag
	seen := make(map[Diag]bool)
	for _, d := range diags {
		if sup.covers(d) || seen[d] {
			continue
		}
		seen[d] = true
		kept = append(kept, d)
	}
	if ctx.Audit {
		// After filtering: only now is every suppression's used bit
		// final. Audit findings are deliberately unsuppressible — a
		// lint-ignore shielding another lint-ignore is turtles.
		for _, d := range sup.unused(ctx, ran) {
			if !seen[d] {
				seen[d] = true
				kept = append(kept, d)
			}
		}
	}
	counts := make(map[string]int)
	for _, d := range kept {
		counts[d.Pass]++
	}
	for i := range ctx.Stats {
		ctx.Stats[i].Findings = counts[ctx.Stats[i].Name]
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Pass < b.Pass
	})
	return kept, nil
}

// diag builds a Diag at pos with a module-relative file path.
func (ctx *Context) diag(pos token.Pos, pass, format string, args ...any) Diag {
	p := ctx.Loader.Fset.Position(pos)
	file := p.Filename
	if rel, err := filepath.Rel(ctx.Loader.ModuleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return Diag{File: file, Line: p.Line, Col: p.Column, Pass: pass, Msg: fmt.Sprintf(format, args...)}
}

// funcDisplayName renders a *types.Func as pkg.Func or pkg.(*Recv).Method
// with the package's base name only, for readable diagnostics.
func funcDisplayName(f *types.Func) string {
	full := f.FullName()
	if pkg := f.Pkg(); pkg != nil {
		full = strings.ReplaceAll(full, pkg.Path(), pkg.Name())
	}
	return full
}
