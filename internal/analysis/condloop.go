// The condloop pass: condition-variable discipline.
//
// Rule 1 — every sync.Cond.Wait call must sit inside a for loop.
// Wait releases the lock, sleeps, and reacquires; by the time it
// returns, the predicate may already be false again (spurious wakeups
// and broadcast storms are both permitted by the memory model), so a
// Wait whose predicate is checked with an if instead of a for is a
// latent lost-wakeup bug.
//
// Rule 2 — a struct field annotated
//
//	//sched:signals cond
//	ringWaiters int
//
// is part of a condition variable's predicate: goroutines block in
// cond.Wait until the field changes. Every write of such a field must
// therefore be followed, on the same path, by a Signal, Broadcast or
// Wait on the named sibling *sync.Cond — a silent mutation strands
// every waiter whose predicate just became true. "Followed" is
// syntactic: a qualifying call later in the same function body, or
// anywhere inside a for loop that also contains the write (the
// waiter's own ++/Wait/-- pattern).
//
// The check is structural, not a CFG analysis: early returns between
// a write and its signal are not modeled, and function literals share
// the enclosing function's scope.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// signalsField is one //sched:signals annotation: the annotated field
// and the name of its sibling condition-variable field.
type signalsField struct {
	cond string
}

func runCondLoop(ctx *Context) []Diag {
	var diags []Diag
	annotated := make(map[*types.Var]signalsField)
	for _, pkg := range ctx.Pkgs {
		ctx.collectSignals(pkg, annotated, &diags)
	}
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					ctx.checkCondLoop(pkg, fd, annotated, &diags)
				}
			}
		}
	}
	return diags
}

// collectSignals gathers //sched:signals annotations and validates
// that the named sibling is a *sync.Cond.
func (ctx *Context) collectSignals(pkg *Package, annotated map[*types.Var]signalsField, diags *[]Diag) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			siblings := make(map[string]types.Type)
			for _, field := range st.Fields.List {
				t := pkg.Info.Types[field.Type].Type
				for _, name := range field.Names {
					siblings[name.Name] = t
				}
			}
			for _, field := range st.Fields.List {
				cond := signalsCond(field)
				if cond == "" {
					continue
				}
				ct, ok := siblings[cond]
				if !ok {
					*diags = append(*diags, ctx.diag(field.Pos(), "condloop",
						"//sched:signals names %s, which is not a sibling field", cond))
					continue
				}
				if !isCondType(ct) {
					*diags = append(*diags, ctx.diag(field.Pos(), "condloop",
						"//sched:signals names %s, which is not a sync.Cond", cond))
					continue
				}
				for _, name := range field.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						annotated[v] = signalsField{cond: cond}
					}
				}
			}
			return true
		})
	}
}

func isCondType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Cond"
}

// condCall is one Wait/Signal/Broadcast call on a sync.Cond, with the
// rendered path of the condition variable it targets.
type condCall struct {
	path string
	name string // Wait, Signal or Broadcast
	pos  token.Pos
	end  token.Pos
}

// checkCondLoop enforces both rules within one function.
func (ctx *Context) checkCondLoop(pkg *Package, fd *ast.FuncDecl, annotated map[*types.Var]signalsField, diags *[]Diag) {
	info := pkg.Info
	parents := parentMap(fd)

	var calls []condCall
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Wait", "Signal", "Broadcast":
			if isCondType(info.Types[sel.X].Type) {
				calls = append(calls, condCall{path: exprString(sel.X), name: sel.Sel.Name, pos: call.Pos(), end: call.End()})
			}
		}
		return true
	})

	// Rule 1: Wait inside a for loop of its own function (literal
	// boundaries reset the search — an enclosing loop of the outer
	// function does not re-check a closure's predicate).
	for _, c := range calls {
		if c.name != "Wait" {
			continue
		}
		node := nodeAt(fd, c.pos)
		inLoop := false
		for n := node; n != nil && n != ast.Node(fd); n = parents[n] {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				inLoop = true
			case *ast.FuncLit:
				n = nil
			}
			if inLoop || n == nil {
				break
			}
		}
		if !inLoop {
			*diags = append(*diags, ctx.diag(c.pos, "condloop",
				"%s.Wait outside a for loop: the predicate is not re-checked after wakeup", c.path))
		}
	}

	if len(annotated) == 0 {
		return
	}

	// Rule 2: writes to signals-annotated fields.
	checkWrite := func(sel *ast.SelectorExpr, writePos token.Pos) {
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			return
		}
		sf, ok := annotated[v]
		if !ok {
			return
		}
		condPath := exprString(sel.X) + "." + sf.cond
		for _, c := range calls {
			if c.path != condPath {
				continue
			}
			if c.pos > writePos {
				return // signaled later on this path
			}
		}
		// No later call: accept a call anywhere inside a for loop that
		// also contains the write (the waiter's ++/Wait/-- shape).
		for n := nodeAt(fd, writePos); n != nil && n != ast.Node(fd); n = parents[n] {
			if _, ok := n.(*ast.FuncLit); ok {
				break
			}
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				continue
			}
			for _, c := range calls {
				if c.path == condPath && c.pos >= loop.Pos() && c.end <= loop.End() {
					return
				}
			}
		}
		*diags = append(*diags, ctx.diag(writePos, "condloop",
			"%s.%s written with no %s.Signal/Broadcast after it on this path: waiters on the predicate are stranded",
			exprString(sel.X), sel.Sel.Name, condPath))
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					checkWrite(sel, lhs.Pos())
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
				checkWrite(sel, n.X.Pos())
			}
		}
		return true
	})
}

// nodeAt finds the innermost node in root whose range starts at pos —
// the anchor for parent-chain climbs.
func nodeAt(root ast.Node, pos token.Pos) ast.Node {
	var found ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() <= pos && pos < n.End() {
			found = n
			return true
		}
		return false
	})
	return found
}
