// The arenalife pass. The reuse-aware construction path hands out
// storage that is recycled on the arena's next ResetFor/BuildInto:
// dag.BuildArena's DAGs, the frozen CSR views and their flat arc
// arrays, package buf's zeroing-resize slices, and bitset.Slab's
// carved sets. Such values are only safe while the current block is
// being processed. This pass flags the two ways they can outlive that
// window:
//
//   - a store into a package-level variable (directly, or through a
//     selector/index path rooted at one);
//   - a return from an exported function or method of a package
//     outside the arena-owning trio (dag, bitset, buf) — the "engine
//     boundary": exported API must copy, never leak worker scratch.
//     diskcache's mmap-backed views are held to the same rule without
//     owner status: its exported API must copy out of the mapping.
//
// Taint is intra-procedural: a value is arena-derived if it is
// assigned from an expression containing an arena-source call or a
// previously tainted variable. Cross-function flows are the job of the
// conventions the engine documents (worker scratch is private); the
// lint layer catches the accidental global or leaked return, which is
// how such bugs have actually been written.
package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// arenaSourceMethods lists, per arena-owning package (keyed by its
// path suffix under the module), the functions/methods whose results
// (or all functions, for "*") are arena-backed.
var arenaSourceMethods = map[string]map[string]bool{
	"internal/buf": {"*": true},
	"internal/dag": {
		"ResetFor": true, "BuildInto": true, "Freeze": true, "FrozenCSR": true,
		"Succs": true, "Preds": true, "SuccArcs": true, "PredArcs": true,
	},
	"internal/bitset": {"Carve": true},
	// diskcache's i32s is an unsafe.Slice view straight into the mmap
	// region: valid only until Close unmaps it, and mutable by other
	// processes. It must never be stored globally or returned across
	// diskcache's exported boundary (Lookup copies into the caller's
	// Entry scratch instead) — and diskcache is deliberately NOT an
	// arena-owner package, so that boundary rule is enforced.
	"internal/diskcache": {"i32s": true},
}

// arenaOwnerPkgs are the packages whose exported API legitimately
// returns arena-backed values (the ownership contract is theirs to
// document); the exported-return sink applies everywhere else.
var arenaOwnerPkgs = map[string]bool{
	"internal/buf": true, "internal/dag": true, "internal/bitset": true,
}

func runArenaLife(ctx *Context) []Diag {
	var diags []Diag
	for _, pkg := range ctx.Pkgs {
		suffix := strings.TrimPrefix(strings.TrimPrefix(pkg.Path, ctx.Loader.ModulePath), "/")
		ownerPkg := arenaOwnerPkgs[suffix]
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ctx.checkArenaLife(pkg, fd, ownerPkg, &diags)
			}
		}
	}
	return diags
}

// isArenaSource reports whether call's callee is one of the arena
// constructors/accessors.
func (ctx *Context) isArenaSource(info *types.Info, call *ast.CallExpr) bool {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ = sel.Obj().(*types.Func) // includes interface methods (ReuseBuilder.BuildInto)
		} else {
			fn, _ = info.Uses[fun.Sel].(*types.Func)
		}
	}
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	mod := ctx.Loader.ModulePath
	if path != mod && !strings.HasPrefix(path, mod+"/") {
		return false
	}
	suffix := strings.TrimPrefix(strings.TrimPrefix(path, mod), "/")
	methods := arenaSourceMethods[suffix]
	if methods == nil {
		return false
	}
	return methods["*"] || methods[fn.Name()]
}

func (ctx *Context) checkArenaLife(pkg *Package, fd *ast.FuncDecl, ownerPkg bool, diags *[]Diag) {
	info := pkg.Info

	// tainted holds the local variables known to carry arena-backed
	// storage, grown to a fixpoint over the function's assignments.
	tainted := make(map[*types.Var]bool)
	exprTainted := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if ctx.isArenaSource(info, n) {
					found = true
				}
				// len(s)/cap(s) of a tainted slice yield plain ints:
				// don't descend, the result carries no arena storage.
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if b, ok := info.Uses[id].(*types.Builtin); ok && (b.Name() == "len" || b.Name() == "cap") {
						return false
					}
				}
			case *ast.Ident:
				if v, ok := info.Uses[n].(*types.Var); ok && tainted[v] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	taintLHS := func(e ast.Expr) bool {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := info.Defs[id].(*types.Var); ok && !tainted[v] {
				tainted[v] = true
				return true
			}
			if v, ok := info.Uses[id].(*types.Var); ok && v.Parent() != pkg.Types.Scope() && !tainted[v] {
				tainted[v] = true
				return true
			}
		}
		return false
	}
	for changed, rounds := true, 0; changed && rounds < 16; rounds++ {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						if exprTainted(rhs) && taintLHS(n.Lhs[i]) {
							changed = true
						}
					}
				} else if len(n.Rhs) == 1 && exprTainted(n.Rhs[0]) {
					for _, lhs := range n.Lhs {
						if taintLHS(lhs) {
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Values) > 0 {
					anyTainted := false
					for _, v := range n.Values {
						if exprTainted(v) {
							anyTainted = true
						}
					}
					if anyTainted {
						for _, name := range n.Names {
							if v, ok := info.Defs[name].(*types.Var); ok && !tainted[v] {
								tainted[v] = true
								changed = true
							}
						}
					}
				}
			}
			return true
		})
	}

	// Sink 1: stores whose destination is rooted at a package-level
	// variable.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			var rhs ast.Expr
			if len(as.Lhs) == len(as.Rhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0]
			}
			if rhs == nil || !exprTainted(rhs) {
				continue
			}
			root := rootIdent(lhs)
			if root == nil {
				continue
			}
			obj := info.Uses[root]
			if obj == nil {
				obj = info.Defs[root]
			}
			if v, ok := obj.(*types.Var); ok && v.Parent() == pkg.Types.Scope() {
				*diags = append(*diags, ctx.diag(lhs.Pos(), "arenalife",
					"arena-backed value stored in package-level %s outlives the arena's next ResetFor", root.Name))
			}
		}
		return true
	})

	// Sink 2: arena-backed values returned from an exported boundary
	// of a non-arena, non-main package.
	if ownerPkg || pkg.Types.Name() == "main" || !exportedBoundary(info, fd) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // returns inside closures return from the closure
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if exprTainted(res) {
				*diags = append(*diags, ctx.diag(res.Pos(), "arenalife",
					"arena-backed value returned across the exported boundary of %s; callers outlive the arena's next ResetFor", funcDisplayName(info.Defs[fd.Name].(*types.Func))))
			}
		}
		return true
	})
}

// exportedBoundary reports whether fd is callable from outside its
// package: an exported function, or an exported method on an exported
// type.
func exportedBoundary(info *types.Info, fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return true
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return true
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Exported()
	}
	return true
}

// rootIdent walks selector/index/star/paren chains down to the base
// identifier, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
