package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package plus the syntax-only
// parse of its _test.go files (test files are excluded from type
// checking so external test packages and testing-only imports cannot
// perturb the module's type graph; the only pass that reads them,
// benchallocs, is purely syntactic).
type Package struct {
	Path      string      // import path within the module
	Dir       string      // absolute directory
	Files     []*ast.File // non-test files, type-checked
	TestFiles []*ast.File // _test.go files, syntax only
	Types     *types.Package
	Info      *types.Info
}

// Loader loads and type-checks the packages of one Go module using
// only the standard library: module-internal imports are resolved by
// directory layout (import path = module path + relative dir), and
// everything else (the standard library) is delegated to go/importer's
// source importer. All packages share one token.FileSet so positions
// are comparable across the whole run.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	std  types.Importer
	pkgs map[string]*Package // keyed by import path
}

// NewLoader returns a loader rooted at the module containing dir
// (found by walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  root,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
	}, nil
}

// Import implements types.Importer: module-internal paths load through
// the loader, everything else through the standard-library source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// loadPath loads the module package with the given import path.
func (l *Loader) loadPath(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return l.LoadDir(filepath.Join(l.ModuleDir, filepath.FromSlash(rel)))
}

// LoadDir loads and type-checks the package in dir (memoized). dir may
// be anywhere under the module, including testdata trees the go tool
// itself ignores.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleDir)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	if pkg, ok := l.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		return pkg, nil
	}
	l.pkgs[path] = nil // cycle guard

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var names, testNames []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			testNames = append(testNames, name)
		} else {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	sort.Strings(testNames)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", abs)
	}

	pkg := &Package{Path: path, Dir: abs}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	for _, name := range testNames {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.TestFiles = append(pkg.TestFiles, f)
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

// Expand resolves command-line package patterns relative to the module
// root into package directories. Supported forms: "./...", "dir/...",
// and plain directories. testdata trees and hidden directories are
// skipped by the recursive forms, matching the go tool.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(l.ModuleDir, base)
		}
		if !rec {
			if hasGoFiles(base) {
				add(base)
			} else {
				return nil, fmt.Errorf("analysis: no Go files in %s", pat)
			}
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}
