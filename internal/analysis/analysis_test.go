package analysis

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// want is one expected diagnostic, parsed from a testdata comment.
type want struct {
	file string // module-relative, slash-separated
	line int
	pass string
	text string // must be a substring of the diagnostic message
}

// parseWants scans every .go file under dir for expectation comments:
//
//	code // want [pass] substring
//	code // want [p1] text1 // want [p2] text2
//	code // want:17 [pass] substring
//
// The explicit-line form anchors diagnostics that land on directive
// comments, where an inline want would become part of the directive.
func parseWants(t *testing.T, modRoot, dir string) []want {
	t.Helper()
	var wants []want
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(modRoot, path)
		if err != nil {
			return err
		}
		file := filepath.ToSlash(rel)
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want")
			if idx < 0 {
				continue
			}
			for _, piece := range strings.Split(line[idx:], "// want")[1:] {
				wants = append(wants, parseWant(t, file, i+1, piece))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) == 0 {
		t.Fatalf("no want comments under %s", dir)
	}
	return wants
}

func parseWant(t *testing.T, file string, line int, piece string) want {
	t.Helper()
	malformed := func() {
		t.Fatalf("%s:%d: malformed want comment %q", file, line, piece)
	}
	if rest, ok := strings.CutPrefix(piece, ":"); ok {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			malformed()
		}
		n, err := strconv.Atoi(rest[:sp])
		if err != nil {
			malformed()
		}
		line, piece = n, rest[sp:]
	}
	body := strings.TrimSpace(piece)
	end := strings.Index(body, "]")
	if !strings.HasPrefix(body, "[") || end < 0 {
		malformed()
	}
	return want{file: file, line: line, pass: body[1:end], text: strings.TrimSpace(body[end+1:])}
}

// runGolden loads one testdata package, runs every pass, and requires
// an exact match between diagnostics and want comments: every
// diagnostic matched by a want, every want matched by a diagnostic.
func runGolden(t *testing.T, name string) {
	t.Helper()
	defer func(old []string) { HotBenchPackages = old }(HotBenchPackages)
	HotBenchPackages = append([]string{"internal/analysis/testdata/src/benchallocs"}, DefaultHotBenchPackages...)

	pat := "internal/analysis/testdata/src/" + name
	ctx, err := Load(".", []string{pat})
	if err != nil {
		t.Fatal(err)
	}
	ctx.Audit = true // goldens run strict: stale suppressions are findings too
	diags, err := ctx.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	wants := parseWants(t, ctx.Loader.ModuleDir, filepath.Join(ctx.Loader.ModuleDir, filepath.FromSlash(pat)))

	used := make([]bool, len(wants))
	for _, d := range diags {
		matched := false
		for i, w := range wants {
			if !used[i] && w.file == d.File && w.line == d.Line && w.pass == d.Pass && strings.Contains(d.Msg, w.text) {
				used[i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !used[i] {
			t.Errorf("missing diagnostic: %s:%d: [%s] ...%s...", w.file, w.line, w.pass, w.text)
		}
	}
}

func TestNoallocGolden(t *testing.T)      { runGolden(t, "noalloc") }
func TestArenaLifeGolden(t *testing.T)    { runGolden(t, "arenalife") }
func TestGuardedByGolden(t *testing.T)    { runGolden(t, "guardedby") }
func TestBenchAllocsGolden(t *testing.T)  { runGolden(t, "benchallocs") }
func TestLockOrderGolden(t *testing.T)    { runGolden(t, "lockorder") }
func TestAtomicFieldGolden(t *testing.T)  { runGolden(t, "atomicfield") }
func TestCondLoopGolden(t *testing.T)     { runGolden(t, "condloop") }
func TestCancelPollGolden(t *testing.T)   { runGolden(t, "cancelpoll") }
func TestPanicSafeGolden(t *testing.T)    { runGolden(t, "panicsafe") }
func TestUnusedIgnoreGolden(t *testing.T) { runGolden(t, "unusedignore") }

// TestSelfHostClean is the lint suite linting its own repository: the
// annotated hot paths must produce zero findings under the full
// nine-pass suite, stale suppressions included. A regression here is
// exactly the class of bug schedlint exists to catch.
func TestSelfHostClean(t *testing.T) {
	ctx, err := Load(".", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	ctx.Audit = true
	diags, err := ctx.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("self-host finding: %s", d)
	}
}
