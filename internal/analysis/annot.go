// Annotation grammar. All schedlint annotations are comment
// directives (no space after //, like //go:noinline):
//
//	//sched:noalloc
//	    on a func declaration: the function and everything it
//	    statically calls within the module must not allocate.
//	//sched:guarded-by <field>
//	    on a struct field (doc or trailing comment): the field may only
//	    be read or written while the sibling mutex field <field> is
//	    held on the same access path.
//	//sched:lint-ignore <pass> <reason>
//	    suppresses <pass> findings on the comment's line and on the
//	    line immediately below it. The reason is mandatory: an
//	    invariant exception nobody can explain is a bug report, not a
//	    suppression.
package analysis

import (
	"go/ast"
	"path/filepath"
	"strings"
)

const (
	dirNoalloc   = "//sched:noalloc"
	dirGuardedBy = "//sched:guarded-by"
	dirIgnore    = "//sched:lint-ignore"
)

// hasNoallocDirective reports whether fn's doc comment carries
// //sched:noalloc.
func hasNoallocDirective(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == dirNoalloc || strings.HasPrefix(c.Text, dirNoalloc+" ") {
			return true
		}
	}
	return false
}

// guardedByMutex returns the mutex field name from a
// //sched:guarded-by directive on field, or "".
func guardedByMutex(field *ast.Field) string {
	for _, g := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if rest, ok := strings.CutPrefix(c.Text, dirGuardedBy+" "); ok {
				if fields := strings.Fields(rest); len(fields) > 0 {
					return fields[0]
				}
			}
		}
	}
	return ""
}

// suppressionIndex holds every //sched:lint-ignore comment of the run.
type suppressionIndex struct {
	// byLine maps (module-relative file, line) to the passes suppressed
	// on that line.
	byLine    map[supKey][]string
	malformed []Diag
}

type supKey struct {
	file string
	line int
}

// suppressions scans every file the loader parsed (including test
// files and dependency packages, where noalloc can report) for
// lint-ignore comments.
func (ctx *Context) suppressions() *suppressionIndex {
	idx := &suppressionIndex{byLine: make(map[supKey][]string)}
	for _, pkg := range ctx.Loader.pkgs {
		if pkg == nil {
			continue
		}
		for _, files := range [][]*ast.File{pkg.Files, pkg.TestFiles} {
			for _, f := range files {
				for _, g := range f.Comments {
					for _, c := range g.List {
						idx.add(ctx, c)
					}
				}
			}
		}
	}
	return idx
}

func (idx *suppressionIndex) add(ctx *Context, c *ast.Comment) {
	if c.Text != dirIgnore && !strings.HasPrefix(c.Text, dirIgnore+" ") {
		return
	}
	fields := strings.Fields(strings.TrimPrefix(c.Text, dirIgnore))
	bad := func(msg string) {
		idx.malformed = append(idx.malformed, ctx.diag(c.Pos(), "lint-ignore", "%s (want %s <pass> <reason>)", msg, dirIgnore))
	}
	if len(fields) == 0 {
		bad("suppression names no pass")
		return
	}
	pass := fields[0]
	known := false
	for _, reg := range Passes {
		if reg.Name == pass {
			known = true
		}
	}
	if !known {
		bad("suppression names unknown pass " + pass)
		return
	}
	if len(fields) < 2 {
		bad("suppression for " + pass + " gives no reason")
		return
	}
	pos := ctx.Loader.Fset.Position(c.Pos())
	file := pos.Filename
	if rel, err := filepath.Rel(ctx.Loader.ModuleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	idx.byLine[supKey{file, pos.Line}] = append(idx.byLine[supKey{file, pos.Line}], pass)
}

// covers reports whether d is suppressed: a matching lint-ignore on
// d's own line or on the line directly above it.
func (idx *suppressionIndex) covers(d Diag) bool {
	for _, line := range []int{d.Line, d.Line - 1} {
		for _, pass := range idx.byLine[supKey{d.File, line}] {
			if pass == d.Pass {
				return true
			}
		}
	}
	return false
}
