// Annotation grammar. All schedlint annotations are comment
// directives (no space after //, like //go:noinline):
//
//	//sched:noalloc
//	    on a func declaration: the function and everything it
//	    statically calls within the module must not allocate.
//	//sched:guarded-by <field>
//	    on a struct field (doc or trailing comment): the field may only
//	    be read or written while the sibling mutex field <field> is
//	    held on the same access path.
//	//sched:lock-rank <n>
//	    on a mutex field: the field participates in the module's static
//	    lock order. While any ranked mutex is held, only mutexes of
//	    strictly greater rank may be acquired.
//	//sched:atomic-init
//	    on a func declaration: the function is a constructor that may
//	    touch atomically-accessed fields plainly, before the object is
//	    published.
//	//sched:signals <field>
//	    on a struct field: every write of the field must be followed by
//	    a Signal/Broadcast/Wait on the sibling *sync.Cond field <field>
//	    on the same path — the field is part of a condition-variable
//	    predicate and a silent mutation strands waiters.
//	//sched:cancellable
//	    on a func declaration: every loop in the function (and in its
//	    static callees within the same package) that lacks a statically
//	    bounded trip count must poll for cancellation.
//	//sched:recover-boundary
//	    on a func declaration: the function's call tree runs under (or
//	    contains) a recover boundary; no mutex may be held across a
//	    call that can panic unless its unlock is deferred.
//	//sched:lint-ignore <pass> <reason>
//	    suppresses <pass> findings on the comment's line and on the
//	    line immediately below it. The reason is mandatory: an
//	    invariant exception nobody can explain is a bug report, not a
//	    suppression.
package analysis

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strconv"
	"strings"
)

const (
	dirNoalloc         = "//sched:noalloc"
	dirGuardedBy       = "//sched:guarded-by"
	dirLockRank        = "//sched:lock-rank"
	dirAtomicInit      = "//sched:atomic-init"
	dirSignals         = "//sched:signals"
	dirCancellable     = "//sched:cancellable"
	dirRecoverBoundary = "//sched:recover-boundary"
	dirIgnore          = "//sched:lint-ignore"
)

// hasFuncDirective reports whether fn's doc comment carries the given
// marker directive (one with no arguments).
func hasFuncDirective(fn *ast.FuncDecl, dir string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == dir || strings.HasPrefix(c.Text, dir+" ") {
			return true
		}
	}
	return false
}

// hasNoallocDirective reports whether fn's doc comment carries
// //sched:noalloc.
func hasNoallocDirective(fn *ast.FuncDecl) bool {
	return hasFuncDirective(fn, dirNoalloc)
}

// fieldDirectiveArg returns the first argument of the given directive
// on field (doc or trailing comment), or "".
func fieldDirectiveArg(field *ast.Field, dir string) string {
	for _, g := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if rest, ok := strings.CutPrefix(c.Text, dir+" "); ok {
				if fields := strings.Fields(rest); len(fields) > 0 {
					return fields[0]
				}
			}
		}
	}
	return ""
}

// guardedByMutex returns the mutex field name from a
// //sched:guarded-by directive on field, or "".
func guardedByMutex(field *ast.Field) string {
	return fieldDirectiveArg(field, dirGuardedBy)
}

// signalsCond returns the condition-variable field name from a
// //sched:signals directive on field, or "".
func signalsCond(field *ast.Field) string {
	return fieldDirectiveArg(field, dirSignals)
}

// lockRank returns the rank from a //sched:lock-rank directive on
// field. ok distinguishes "no directive" from rank 0; a directive
// whose argument is not an integer reports ok with bad set, so the
// lockorder pass can flag it.
func lockRank(field *ast.Field) (rank int, ok, bad bool) {
	arg := fieldDirectiveArg(field, dirLockRank)
	if arg == "" {
		return 0, false, false
	}
	n, err := strconv.Atoi(arg)
	if err != nil {
		return 0, true, true
	}
	return n, true, false
}

// suppressionIndex holds every //sched:lint-ignore comment of the run.
type suppressionIndex struct {
	// byLine maps (module-relative file, line) to the suppressions
	// declared on that line.
	byLine    map[supKey][]*supEntry
	malformed []Diag
}

type supKey struct {
	file string
	line int
}

// supEntry is one well-formed suppression. used is set by covers when
// a diagnostic of the suppressed pass actually lands on a covered
// line; the unused-suppression audit reports entries that stay cold.
type supEntry struct {
	pass string
	pos  token.Pos
	used bool
}

// suppressions scans every file the loader parsed (including test
// files and dependency packages, where noalloc can report) for
// lint-ignore comments.
func (ctx *Context) suppressions() *suppressionIndex {
	idx := &suppressionIndex{byLine: make(map[supKey][]*supEntry)}
	for _, pkg := range ctx.Loader.pkgs {
		if pkg == nil {
			continue
		}
		for _, files := range [][]*ast.File{pkg.Files, pkg.TestFiles} {
			for _, f := range files {
				for _, g := range f.Comments {
					for _, c := range g.List {
						idx.add(ctx, c)
					}
				}
			}
		}
	}
	return idx
}

func (idx *suppressionIndex) add(ctx *Context, c *ast.Comment) {
	if c.Text != dirIgnore && !strings.HasPrefix(c.Text, dirIgnore+" ") {
		return
	}
	fields := strings.Fields(strings.TrimPrefix(c.Text, dirIgnore))
	bad := func(msg string) {
		idx.malformed = append(idx.malformed, ctx.diag(c.Pos(), "lint-ignore", "%s (want %s <pass> <reason>)", msg, dirIgnore))
	}
	if len(fields) == 0 {
		bad("suppression names no pass")
		return
	}
	pass := fields[0]
	known := false
	for _, reg := range Passes {
		if reg.Name == pass {
			known = true
		}
	}
	if !known {
		bad("suppression names unknown pass " + pass)
		return
	}
	if len(fields) < 2 {
		bad("suppression for " + pass + " gives no reason")
		return
	}
	pos := ctx.Loader.Fset.Position(c.Pos())
	file := pos.Filename
	if rel, err := filepath.Rel(ctx.Loader.ModuleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	key := supKey{file, pos.Line}
	idx.byLine[key] = append(idx.byLine[key], &supEntry{pass: pass, pos: c.Pos()})
}

// covers reports whether d is suppressed: a matching lint-ignore on
// d's own line or on the line directly above it. A match marks the
// suppression used for the audit.
func (idx *suppressionIndex) covers(d Diag) bool {
	hit := false
	for _, line := range []int{d.Line, d.Line - 1} {
		for _, e := range idx.byLine[supKey{d.File, line}] {
			if e.pass == d.Pass {
				e.used = true
				hit = true
			}
		}
	}
	return hit
}

// unused returns one finding per suppression whose pass ran in this
// invocation but never fired on a covered line — a stale suppression
// that would otherwise rot silently. Suppressions for passes that did
// not run are left alone: a -passes subset must not condemn the
// other passes' suppressions.
func (idx *suppressionIndex) unused(ctx *Context, ran map[string]bool) []Diag {
	var diags []Diag
	for _, entries := range idx.byLine {
		for _, e := range entries {
			if e.used || !ran[e.pass] {
				continue
			}
			diags = append(diags, ctx.diag(e.pos, "lint-ignore",
				"unused suppression: no %s finding fires here (delete it, or explain what changed)", e.pass))
		}
	}
	return diags
}
