// Seeded violations for the guardedby pass: a striped-cache-shaped
// struct whose map field is annotated with its stripe mutex.
package guardedby

import "sync"

type shard struct {
	mu sync.Mutex
	m  map[int]int //sched:guarded-by mu
}

type cache struct {
	shards [4]shard
}

// Good locks before every access and unlocks after.
func (s *shard) Good(k int) int {
	s.mu.Lock()
	v := s.m[k]
	s.mu.Unlock()
	return v
}

// DeferGood releases at return; the field stays locked in between.
func (s *shard) DeferGood(k int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

// Bad reads the guarded field with no lock at all.
func (s *shard) Bad(k int) int {
	return s.m[k] // want [guardedby] s.m accessed without holding s.mu
}

// AfterUnlock touches the field once the lock is gone.
func (s *shard) AfterUnlock(k int) int {
	s.mu.Lock()
	v := s.m[k]
	s.mu.Unlock()
	return v + s.m[k] // want [guardedby] s.m accessed without holding s.mu
}

// BranchLock only locks on one path; the access after the branch is
// not covered on the other.
func (s *shard) BranchLock(k, cond int) {
	if cond > 0 {
		s.mu.Lock()
		s.m[k] = cond
		s.mu.Unlock()
	}
	s.m[k] = cond // want [guardedby] s.m accessed without holding s.mu
}

// WrongStripe locks one shard and touches another: path strings keep
// the stripes apart.
func (c *cache) WrongStripe(k int) int {
	c.shards[0].mu.Lock()
	defer c.shards[0].mu.Unlock()
	return c.shards[1].m[k] // want [guardedby] c.shards[1].m accessed without holding c.shards[1].mu
}

// SameStripe is the striped idiom done right.
func (c *cache) SameStripe(k int) int {
	s := &c.shards[k%4]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

// NewCache initializes guarded fields before the value can be shared:
// the freshly-constructed-local exception applies.
func NewCache() *cache {
	c := &cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[int]int)
	}
	return c
}

// ClosureEscapes checks function literals against an empty lock set:
// they may run later, when the lock is long gone.
func (s *shard) ClosureEscapes(k int) func() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() int {
		return s.m[k] // want [guardedby] s.m accessed without holding s.mu
	}
}

// Suppressed documents a single-goroutine phase.
func (s *shard) Suppressed(k int) int {
	//sched:lint-ignore guardedby construction-time access before the cache is published
	return s.m[k]
}

// DeferredThenRelock pins the walk's path-sensitivity around a
// deferred unlock: the defer keeps the path locked (it releases only
// at return), an explicit Unlock afterwards clears it immediately —
// even though the deferred Unlock is still pending, making this
// function a double-unlock at runtime — and a re-Lock restores it.
// lockorder builds on exactly this state machine, so the behavior is
// locked here before anything depends on it.
func (s *shard) DeferredThenRelock(k int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.m[k] // locked: the defer has not run yet
	s.mu.Unlock()
	v += s.m[k] // want [guardedby] s.m accessed without holding s.mu
	s.mu.Lock()
	return v + s.m[k] // locked again by the explicit re-Lock
}

// DeferredInBranch: a defer inside a branch still does not clear the
// walk's lock state for the statements after the branch.
func (s *shard) DeferredInBranch(k, cond int) int {
	s.mu.Lock()
	if cond > 0 {
		defer s.mu.Unlock()
	}
	return s.m[k] // locked on every path the walk models
}

type badAnnot struct {
	n int //sched:guarded-by missing // want [guardedby] names missing, which is not a sibling field
}

type badMutex struct {
	lock int
	n    int //sched:guarded-by lock // want [guardedby] names lock, which is not a sync.Mutex
}
