// Golden cases for the unused-suppression audit (strict mode): a
// lint-ignore whose pass runs but never fires on its lines is itself
// a finding, so suppressions cannot outlive the code they excused.
package unusedignore

// Hot's allocation really fires and really is suppressed: the
// suppression is used and stays silent.
//
//sched:noalloc
func Hot(n int) []int {
	//sched:lint-ignore noalloc the caller amortizes this one allocation across the whole run
	return make([]int, n)
}

// Stale carries a suppression for a finding that no longer fires —
// the loop below stopped allocating long ago.
//
//sched:noalloc
func Stale(xs []int) int {
	t := 0
	//sched:lint-ignore noalloc summing used to build a scratch slice here // want [lint-ignore] unused suppression: no noalloc finding fires here
	for _, x := range xs {
		t += x
	}
	return t
}

// WrongPass suppresses a pass that never fires on this line even
// though another pass does: the noalloc finding survives AND the
// arenalife suppression is reported stale.
//
//sched:noalloc
func WrongPass(n int) []int {
	//sched:lint-ignore arenalife mistaken pass name, kept as a regression case // want [lint-ignore] unused suppression: no arenalife finding fires here
	return make([]int, n) // want [noalloc] make allocates
}
