// Package benchallocs seeds the benchallocs pass: Benchmark functions
// in hot packages must call b.ReportAllocs() so allocation regressions
// show up in benchmark output. The test harness adds this directory to
// HotBenchPackages before running the pass.
package benchallocs
