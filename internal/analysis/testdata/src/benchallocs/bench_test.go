package benchallocs

import "testing"

func BenchmarkMissing(b *testing.B) { // want [benchallocs] BenchmarkMissing does not call b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = i * i
	}
}

func BenchmarkHas(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = i * i
	}
}

// BenchmarkSubs calls ReportAllocs inside b.Run closures; the pass
// accepts any call in the body.
func BenchmarkSubs(b *testing.B) {
	b.Run("case", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = i + i
		}
	})
}

// BenchmarkSuppressed documents why it skips the call.
//
//sched:lint-ignore benchallocs measures wall time of an external process, allocs are noise
func BenchmarkSuppressed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = i
	}
}

// TestNotABenchmark must be ignored by the pass entirely.
func TestNotABenchmark(t *testing.T) {}
