// Golden cases for the cancelpoll pass.
package cancelpoll

import (
	"context"
	"sync"
)

// Pump is cancellable and its loop selects on ctx.Done: clean.
//
//sched:cancellable
func Pump(ctx context.Context, work chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case n := <-work:
			total += n
		}
	}
}

// Spin is cancellable but its loop only ever blocks on work: once the
// caller gives up, the goroutine runs forever.
//
//sched:cancellable
func Spin(ctx context.Context, work chan int) int {
	total := 0
	for { // want [cancelpoll] loop has no statically bounded trip count and never polls for cancellation in cancelpoll.Spin
		n, ok := <-work
		if !ok {
			return total
		}
		total += n
	}
}

// stopped is the helper idiom: polling evidence propagates through
// static callees.
func stopped(ctx context.Context) bool { return ctx.Err() != nil }

//sched:cancellable
func HelperPoll(ctx context.Context, work chan int) int {
	total := 0
	for total >= 0 {
		if stopped(ctx) {
			break
		}
		n, ok := <-work
		if !ok {
			break
		}
		total += n
	}
	return total
}

// Bounded loops — range statements and three-clause induction — need
// no poll.
//
//sched:cancellable
func Bounded(ctx context.Context, xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	for i := 0; i < 10; i++ {
		t++
	}
	return t
}

// drain is unannotated, but Run reaches it: the loop is checked as
// part of Run's call tree.
func drain(work chan int) int {
	t := 0
	for { // want [cancelpoll] never polls for cancellation in cancelpoll.drain (reached from cancelpoll.Run)
		n, ok := <-work
		if !ok {
			return t
		}
		t += n
	}
}

//sched:cancellable
func Run(ctx context.Context, work chan int) int {
	if ctx.Err() != nil {
		return 0
	}
	return drain(work)
}

// Workers launched inside a cancellable function are held to the same
// rule: their claim loops are where cancellation is lost in practice.
//
//sched:cancellable
func Fanout(ctx context.Context, work chan int, done chan struct{}) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for { // want [cancelpoll] never polls for cancellation in cancelpoll.Fanout
			_, ok := <-work
			if !ok {
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			case _, ok := <-work:
				if !ok {
					return
				}
			}
		}
	}()
	wg.Wait()
}

// gate shows the condvar exemption: cancellation arrives as a
// Broadcast flipping the predicate, so the wait loop needs no poll.
type gate struct {
	mu   sync.Mutex
	cond *sync.Cond
	open bool
}

//sched:cancellable
func WaitOpen(g *gate) {
	g.mu.Lock()
	for !g.open {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// Converge documents its termination argument instead of polling.
//
//sched:cancellable
func Converge(ctx context.Context, x int) int {
	//sched:lint-ignore cancelpoll halves every iteration: terminates in log2(x) steps
	for x > 1 {
		x /= 2
	}
	return x
}
