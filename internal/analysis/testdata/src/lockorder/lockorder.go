// Golden cases for the lockorder pass.
package lockorder

import "sync"

// ascending holds the well-ordered pair: rank 10 before rank 20
// before rank 30 is always legal.
type ascending struct {
	lo  sync.Mutex   //sched:lock-rank 10
	mid sync.Mutex   //sched:lock-rank 20
	hi  sync.RWMutex //sched:lock-rank 30
}

// Good acquires in strictly increasing rank, including a read lock.
func (a *ascending) Good() {
	a.lo.Lock()
	a.mid.Lock()
	a.hi.RLock()
	a.hi.RUnlock()
	a.mid.Unlock()
	a.lo.Unlock()
}

// Sequential never nests, so order does not matter.
func (a *ascending) Sequential() {
	a.hi.Lock()
	a.hi.Unlock()
	a.lo.Lock()
	a.lo.Unlock()
}

// inverted holds its own pair so its violation cannot complete a
// cycle with the well-ordered functions above.
type inverted struct {
	first  sync.Mutex //sched:lock-rank 10
	second sync.Mutex //sched:lock-rank 20
}

// Bad acquires rank 10 while rank 20 is held.
func (v *inverted) Bad() {
	v.second.Lock()
	v.first.Lock() // want [lockorder] acquires lockorder.inverted.first (rank 10) while lockorder.inverted.second is held (rank 20, locked as v.second)
	v.first.Unlock()
	v.second.Unlock()
}

// Branches inherit the held set.
func (v *inverted) BadInBranch(cond bool) {
	v.second.Lock()
	if cond {
		v.first.Lock() // want [lockorder] rank 10
		v.first.Unlock()
	}
	v.second.Unlock()
}

// UnlockedFirst releases before acquiring: no nesting, no finding.
func (v *inverted) UnlockedFirst() {
	v.second.Lock()
	v.second.Unlock()
	v.first.Lock()
	v.first.Unlock()
}

// indirect exercises the transitive edge: the callee's acquisition is
// attributed to the call site.
type indirect struct {
	inner sync.Mutex //sched:lock-rank 10
	outer sync.Mutex //sched:lock-rank 20
}

func (x *indirect) touchInner() {
	x.inner.Lock()
	x.inner.Unlock()
}

func (x *indirect) Bad() {
	x.outer.Lock()
	x.touchInner() // want [lockorder] call to (*lockorder.indirect).touchInner acquires lockorder.indirect.inner (rank 10) while lockorder.indirect.outer (rank 20) is held
	x.outer.Unlock()
}

// GoroutineNotSynchronous: acquisitions inside a launched literal are
// not attributed to the launching function.
func (x *indirect) GoroutineNotSynchronous() {
	x.outer.Lock()
	go func() {
		x.touchInner()
	}()
	x.outer.Unlock()
}

// tangled holds the equal-rank pair locked in both orders: two rank
// violations, and the edges close a cycle reported at each edge.
type tangled struct {
	left  sync.Mutex //sched:lock-rank 20
	right sync.Mutex //sched:lock-rank 20
}

func (t *tangled) LeftRight() {
	t.left.Lock()
	t.right.Lock() // want [lockorder] acquires lockorder.tangled.right (rank 20) while lockorder.tangled.left is held (rank 20 // want [lockorder] acquiring lockorder.tangled.right while lockorder.tangled.left is held closes a lock-order cycle
	t.right.Unlock()
	t.left.Unlock()
}

func (t *tangled) RightLeft() {
	t.right.Lock()
	t.left.Lock() // want [lockorder] acquires lockorder.tangled.left (rank 20) while lockorder.tangled.right is held (rank 20 // want [lockorder] acquiring lockorder.tangled.left while lockorder.tangled.right is held closes a lock-order cycle
	t.left.Unlock()
	t.right.Unlock()
}

// Suppressed: the violation is acknowledged in place.
func (v *inverted) Suppressed() {
	v.second.Lock()
	//sched:lint-ignore lockorder boot-time only: no other goroutine exists yet
	v.first.Lock()
	v.first.Unlock()
	v.second.Unlock()
}

// badAnnot exercises the annotation validation.
type badAnnot struct {
	m sync.Mutex //sched:lock-rank ten // want [lockorder] //sched:lock-rank needs an integer rank
	n int        //sched:lock-rank 5 // want [lockorder] //sched:lock-rank on a field that is not a sync.Mutex or sync.RWMutex
}
