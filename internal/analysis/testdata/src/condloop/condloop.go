// Golden cases for the condloop pass.
package condloop

import "sync"

type queue struct {
	mu   sync.Mutex
	cond *sync.Cond
	// items is the wait predicate: every write must wake the waiters.
	//
	//sched:signals cond
	items int
	// plain has no annotation: mutations are nobody's business.
	plain int

	bad1 int //sched:signals missing // want [condloop] //sched:signals names missing, which is not a sibling field
	bad2 int //sched:signals mu // want [condloop] //sched:signals names mu, which is not a sync.Cond
}

// Await waits correctly: the predicate is re-checked in a for loop.
func (q *queue) Await() int {
	q.mu.Lock()
	for q.items == 0 {
		q.cond.Wait()
	}
	n := q.items
	q.mu.Unlock()
	return n
}

// BadWait checks once with an if: a spurious wakeup slips through.
func (q *queue) BadWait() {
	q.mu.Lock()
	if q.plain == 0 {
		q.cond.Wait() // want [condloop] q.cond.Wait outside a for loop: the predicate is not re-checked after wakeup
	}
	q.mu.Unlock()
}

// LitWait sits inside a loop of the outer function, but the literal
// is its own function: the loop does not re-check its predicate.
func (q *queue) LitWait() {
	f := func() {
		q.cond.Wait() // want [condloop] q.cond.Wait outside a for loop
	}
	for i := 0; i < 2; i++ {
		f()
	}
}

// Put publishes and signals on the same path.
func (q *queue) Put() {
	q.mu.Lock()
	q.items++
	q.cond.Broadcast()
	q.mu.Unlock()
}

// WaiterTally mutates the predicate inside the wait loop itself — the
// ringWaiters ++/Wait/-- shape — which needs no trailing signal.
func (q *queue) WaiterTally() {
	q.mu.Lock()
	for q.items < 8 {
		q.items++
		q.cond.Wait()
		q.items--
	}
	q.mu.Unlock()
}

// Steal mutates the predicate and tells nobody: waiters whose
// predicate just became true sleep forever.
func (q *queue) Steal() {
	q.mu.Lock()
	q.items-- // want [condloop] q.items written with no q.cond.Signal/Broadcast after it on this path
	q.mu.Unlock()
}

// Reset is Steal with an assignment instead of a decrement.
func (q *queue) Reset() {
	q.mu.Lock()
	q.items = 0 // want [condloop] q.items written with no q.cond.Signal/Broadcast after it on this path
	q.mu.Unlock()
}

// Plain writes to unannotated fields are never checked.
func (q *queue) Bump() {
	q.mu.Lock()
	q.plain++
	q.mu.Unlock()
}

// Suppressed: the mutation is acknowledged in place.
func (q *queue) Drain() {
	q.mu.Lock()
	//sched:lint-ignore condloop teardown path: every waiter has already been joined
	q.items = 0
	q.mu.Unlock()
}
