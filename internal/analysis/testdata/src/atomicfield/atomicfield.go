// Golden cases for the atomicfield pass.
package atomicfield

import "sync/atomic"

// counter mixes an atomically-published field (n) with a plain one
// (hits) to show the pass keys on actual sync/atomic usage, not on
// names or types.
type counter struct {
	n    int64
	hits int64
}

// NewCounter is the sanctioned constructor: the object has not been
// published yet, so plain initialization is safe.
//
//sched:atomic-init
func NewCounter(start int64) *counter {
	c := &counter{}
	c.n = start
	return c
}

// Inc and Read are the atomic protocol.
func (c *counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) Read() int64 {
	return atomic.LoadInt64(&c.n)
}

// RacyRead tears: a plain load of an atomically-written word.
func (c *counter) RacyRead() int64 {
	return c.n // want [atomicfield] plain access to c.n, which is accessed via sync/atomic elsewhere
}

// RacyWrite desyncs the publication protocol.
func (c *counter) RacyWrite() {
	c.n = 0 // want [atomicfield] plain access to c.n
}

// RacyBump is a plain read-modify-write: two races in one token.
func (c *counter) RacyBump() {
	c.n++ // want [atomicfield] plain access to c.n
}

// Bump touches only the never-atomic field: no finding.
func (c *counter) Bump() {
	c.hits++
}

// Drain documents a single-goroutine phase instead of converting.
func (c *counter) Drain() int64 {
	//sched:lint-ignore atomicfield the run is over and every worker has been joined
	return c.n
}
