// Golden cases for the panicsafe pass.
package panicsafe

import "sync"

type store struct {
	mu   sync.Mutex
	vals map[string]int
}

// touch stands in for any call: the pass assumes every call can panic.
func touch(s *store) {}

// Handle anchors the recover boundary; everything it reaches is
// checked.
//
//sched:recover-boundary
func Handle(s *store) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = nil
		}
	}()
	bare(s)
	branchBare(s, true)
	deferred(s)
	critical(s)
	builtins(s)
	explode(s)
	audited(s)
	return nil
}

// bare holds the lock across a call with the unlock unpaired: a panic
// in touch leaks a locked store to whatever recovers.
func bare(s *store) {
	s.mu.Lock()
	touch(s) // want [panicsafe] s.mu is held without a deferred unlock across a call to panicsafe.touch, which can panic in panicsafe.bare (reached from panicsafe.Handle)
	s.mu.Unlock()
}

// branchBare: branch bodies inherit the held set.
func branchBare(s *store, cond bool) {
	s.mu.Lock()
	if cond {
		touch(s) // want [panicsafe] s.mu is held without a deferred unlock across a call to panicsafe.touch
	}
	s.mu.Unlock()
}

// deferred is the fix: the unlock runs on the panic path too.
func deferred(s *store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	touch(s)
}

// critical keeps calls out of the critical section entirely.
func critical(s *store) {
	s.mu.Lock()
	n := s.vals["a"]
	s.vals["a"] = n + 1
	s.mu.Unlock()
	touch(s)
}

// builtins under a bare lock are exempt: they do not unwind through
// this frame.
func builtins(s *store) {
	s.mu.Lock()
	s.vals = make(map[string]int)
	delete(s.vals, "a")
	s.mu.Unlock()
}

// explode panics on purpose — which is precisely a call that can
// panic while the lock is bare.
func explode(s *store) {
	s.mu.Lock()
	if len(s.vals) > 1024 {
		panic("store overflow") // want [panicsafe] s.mu is held without a deferred unlock across a call to panic
	}
	s.mu.Unlock()
}

// audited documents why the call is safe instead of deferring.
func audited(s *store) {
	s.mu.Lock()
	//sched:lint-ignore panicsafe touch is a no-op leaf: it reads nothing and cannot panic
	touch(s)
	s.mu.Unlock()
}

// NotInTree has the same shape as bare but no recover boundary
// reaches it: a panic here crashes the process, and a crashed process
// leaks no locks.
func NotInTree(s *store) {
	s.mu.Lock()
	touch(s)
	s.mu.Unlock()
}
