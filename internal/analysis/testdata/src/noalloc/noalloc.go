// Seeded violations for the noalloc pass. Every line carrying a
// "want" comment must produce exactly that diagnostic; lines without
// one must stay silent.
package noalloc

import "fmt"

//sched:noalloc
func allocsDirectly(n int, s string) {
	a := make([]int, n) // want [noalloc] make allocates
	p := new(int)       // want [noalloc] new allocates
	a = append(a, 1)    // want [noalloc] append may grow its backing array
	t := s + "x"        // want [noalloc] string concatenation allocates
	b := []byte(s)      // want [noalloc] string conversion allocates
	l := []int{1, 2}    // want [noalloc] slice literal allocates
	m := map[int]int{}  // want [noalloc] map literal allocates
	m[n] = 1            // want [noalloc] map assignment may allocate
	q := &point{1, 2}   // want [noalloc] &composite literal escapes to the heap
	fmt.Println(t)      // want [noalloc] call to fmt.Println allocates
	sink(a, p, b, l, q)
}

type point struct{ x, y int }

func sink(a []int, p *int, b []byte, l []int, q *point) {}

//sched:noalloc
func allocsTransitively(n int) {
	helper(n)
}

// helper is not annotated itself: it is rejected because the
// annotated allocsTransitively statically calls it.
func helper(n int) []int {
	return make([]int, n) // want [noalloc] make allocates
}

//sched:noalloc
func boxes(n int) {
	var i interface{}
	i = n              // want [noalloc] assigning non-pointer value to interface boxes it
	takes(point{1, 2}) // want [noalloc] passing non-pointer value as interface boxes it
	_ = i
}

func takes(v interface{}) { _ = v }

//sched:noalloc
func closures() {
	f := func() int { return 1 } // local: may stay on the stack
	_ = f()
	runs(func() {}) // want [noalloc] function literal passed as argument allocates its closure
	go func() {}()  // want [noalloc] goroutine closure allocates // want [noalloc] go statement allocates a goroutine
}

func runs(f func()) { f() }

// capGuarded is the exempt idiom: the allocation is the growth arm of
// a capacity check, which the steady-state path never takes.
//
//sched:noalloc
func capGuarded(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// clean performs no allocating constructs at all.
//
//sched:noalloc
func clean(s []int32) int32 {
	var sum int32
	for _, v := range s {
		sum += v
	}
	return sum
}

// suppressed documents its one allocation; the lint-ignore keeps the
// pass quiet and the reason keeps the reviewer informed.
//
//sched:noalloc
func suppressed(s []int32, v int32) []int32 {
	//sched:lint-ignore noalloc amortized growth, capacity retained by the caller
	return append(s, v)
}

// notAnnotated may allocate freely: no annotation, no closure
// membership (nothing annotated calls it).
func notAnnotated(n int) []int {
	return make([]int, n)
}
