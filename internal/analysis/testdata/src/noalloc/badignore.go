// Malformed suppressions are findings of their own: an invariant
// exception must name its pass and carry a reason.
package noalloc

//sched:noalloc
func badlySuppressed(s []int32, v int32) []int32 {
	//sched:lint-ignore noalloc
	return append(s, v) // want [noalloc] append may grow its backing array // want:7 [lint-ignore] suppression for noalloc gives no reason
}

//sched:noalloc
func unknownPassSuppressed(s []int32, v int32) []int32 {
	//sched:lint-ignore nosuchpass because reasons
	return append(s, v) // want [noalloc] append may grow its backing array // want:13 [lint-ignore] suppression names unknown pass nosuchpass
}
