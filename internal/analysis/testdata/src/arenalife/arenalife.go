// Seeded violations for the arenalife pass: arena-backed storage
// (package buf here — the same taint rules cover dag.BuildArena and
// bitset.Slab.Carve) escaping into package-level variables or across
// an exported boundary.
package arenalife

import "daginsched/internal/buf"

var global []int32

var registry struct{ keep []int32 }

// Leak stores an arena-backed slice where it outlives the arena.
func Leak(n int) {
	s := buf.Int32(nil, n)
	global = s // want [arenalife] arena-backed value stored in package-level global
}

// LeakField stores through a selector rooted at a package-level var.
func LeakField(n int) {
	v := buf.Int32(nil, n)
	registry.keep = v // want [arenalife] arena-backed value stored in package-level registry
}

// LeakDerived taints through derivation: a reslice of arena storage
// is still arena storage.
func LeakDerived(n int) {
	s := buf.Int32(nil, n)
	tail := s[1:]
	global = tail // want [arenalife] arena-backed value stored in package-level global
}

// Expose returns arena storage from an exported function of a
// non-arena package: callers outlive the next ResetFor.
func Expose(n int) []int32 {
	s := buf.Int32(nil, n)
	return s // want [arenalife] arena-backed value returned across the exported boundary
}

// ExposeDirect returns the source call itself.
func ExposeDirect(n int) []int32 {
	return buf.Int32(nil, n) // want [arenalife] arena-backed value returned across the exported boundary
}

// internal is unexported: handing arena storage to a same-package
// caller is the documented reuse protocol, not a leak.
func internal(n int) []int32 {
	return buf.Int32(nil, n)
}

// CopyOut is the sanctioned pattern: the exported boundary returns a
// copy, never the arena's backing array.
func CopyOut(n int) []int32 {
	s := buf.Int32(nil, n)
	out := make([]int32, len(s))
	copy(out, s)
	return out
}

// localOnly keeps arena storage strictly block-local.
func localOnly(n int) int32 {
	s := buf.Int32(nil, n)
	var sum int32
	for _, v := range s {
		sum += v
	}
	return sum
}

// Suppressed documents a sanctioned exception.
func Suppressed(n int) []int32 {
	s := buf.Int32(nil, n)
	//sched:lint-ignore arenalife caller is documented to copy before the next block
	return s
}

type scratch struct{ buf []int32 }

// fillLocal stores into a local struct, which dies with the frame.
func fillLocal(n int) int32 {
	var t scratch
	t.buf = buf.Int32(nil, n)
	return int32(len(t.buf))
}

var _ = internal
var _ = localOnly
var _ = fillLocal
