// The benchallocs pass. The hot packages' benchmarks are the proof
// the zero-allocation claims rest on — but -benchmem only prints
// allocs/op when asked, and a benchmark that forgets b.ReportAllocs()
// silently stops witnessing regressions in default runs. Every
// func Benchmark* in a hot package must therefore call ReportAllocs
// somewhere in its body (sub-benchmark closures included).
//
// The pass is purely syntactic and runs over the _test.go files the
// loader parses but does not type-check.
package analysis

import (
	"go/ast"
	"strings"
)

// DefaultHotBenchPackages are the module-relative package paths whose
// benchmarks guard the engine's zero-alloc hot paths.
var DefaultHotBenchPackages = []string{
	"internal/dag",
	"internal/heur",
	"internal/sched",
	"internal/engine",
	"internal/bitset",
	"internal/diskcache",
}

// HotBenchPackages is the active list; tests override it to point at
// testdata.
var HotBenchPackages = DefaultHotBenchPackages

func runBenchAllocs(ctx *Context) []Diag {
	var diags []Diag
	for _, pkg := range ctx.Pkgs {
		suffix := strings.TrimPrefix(strings.TrimPrefix(pkg.Path, ctx.Loader.ModulePath), "/")
		hot := false
		for _, h := range HotBenchPackages {
			if suffix == h {
				hot = true
			}
		}
		if !hot {
			continue
		}
		for _, f := range pkg.TestFiles {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !isBenchmarkDecl(fd) {
					continue
				}
				if !callsReportAllocs(fd.Body) {
					diags = append(diags, ctx.diag(fd.Name.Pos(), "benchallocs",
						"%s does not call b.ReportAllocs(); hot-package benchmarks must report allocations", fd.Name.Name))
				}
			}
		}
	}
	return diags
}

// isBenchmarkDecl matches func BenchmarkX(b *testing.B) syntactically.
func isBenchmarkDecl(fd *ast.FuncDecl) bool {
	if fd.Recv != nil || fd.Body == nil || !strings.HasPrefix(fd.Name.Name, "Benchmark") {
		return false
	}
	params := fd.Type.Params
	if params == nil || len(params.List) != 1 {
		return false
	}
	star, ok := params.List[0].Type.(*ast.StarExpr)
	if !ok {
		return false
	}
	sel, ok := star.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "B" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "testing"
}

// callsReportAllocs reports whether any call to a method named
// ReportAllocs appears in body, including inside sub-benchmark
// closures.
func callsReportAllocs(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "ReportAllocs" {
			found = true
		}
		return !found
	})
	return found
}
