// The panicsafe pass. A function annotated //sched:recover-boundary
// anchors one of the engine's fault-isolation domains: somewhere in
// its call tree a recover() turns a panic into an error and the
// runtime keeps going (quarantine, the degradation ladder). That only
// works if a panic cannot strand a locked mutex — a recovered panic
// that leaks a held lock deadlocks the next request instead of
// degrading it, which is strictly worse than crashing.
//
// The rule: inside a recover boundary's static call tree, while any
// mutex is held whose unlock has not been deferred, no call may occur
// that can panic. "Can panic" is conservative: every call counts
// except allocation/builtin calls other than panic itself, type
// conversions, the mutex operations, and sync.Cond methods (whose
// panics — unlocked Wait — are programming errors the condloop and
// guardedby passes own). The fix is almost always mechanical: defer
// the unlock, or move the call out of the critical section.
//
// The held-lock state comes from the same structural walk lockorder
// uses (lockWalk): defer mu.Unlock() marks the lock panic-safe while
// keeping it held, branch bodies inherit state, and function literals
// are walked with an empty held set.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

func runPanicSafe(ctx *Context) []Diag {
	var roots []*types.Func
	for _, pkg := range ctx.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasFuncDirective(fd, dirRecoverBoundary) {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					roots = append(roots, obj)
				}
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}
	sort.Slice(roots, func(i, j int) bool {
		return ctx.Funcs[roots[i]].Decl.Pos() < ctx.Funcs[roots[j]].Decl.Pos()
	})

	var diags []Diag
	reported := make(map[token.Pos]bool)
	for _, root := range roots {
		for _, fn := range ctx.noallocClosure(root) {
			info := ctx.Funcs[fn]
			if info == nil || info.Decl.Body == nil {
				continue
			}
			ctx.checkPanicSafe(fn, root, info, reported, &diags)
		}
	}
	return diags
}

func (ctx *Context) checkPanicSafe(fn, root *types.Func, info *FuncInfo, reported map[token.Pos]bool, diags *[]Diag) {
	ti := info.Pkg.Info
	where := "in " + funcDisplayName(fn)
	if fn != root {
		where += " (reached from " + funcDisplayName(root) + ")"
	}
	lockWalk(ti, info.Decl.Body, lockWalkHooks{
		expr: func(n ast.Node, held []*heldLock) {
			var bare *heldLock
			for _, h := range held {
				if !h.deferred {
					bare = h
					break
				}
			}
			if bare == nil {
				return
			}
			ast.Inspect(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, panicky := panickyCall(ti, call)
				if !panicky || reported[call.Pos()] {
					return true
				}
				reported[call.Pos()] = true
				*diags = append(*diags, ctx.diag(call.Pos(), "panicsafe",
					"%s is held without a deferred unlock across a call to %s, which can panic %s",
					bare.path, name, where))
				return true
			})
		},
	})
}

// panickyCall classifies one call under a bare (non-deferred) lock.
// It returns a display name for the callee and whether the call can
// panic under the pass's conservative model.
func panickyCall(ti *types.Info, call *ast.CallExpr) (string, bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := ti.Uses[id].(*types.Builtin); ok {
			// Builtins do not unwind through the caller's frame — except
			// panic, which is the whole point of the pass.
			return b.Name(), b.Name() == "panic"
		}
	}
	if tv, ok := ti.Types[call.Fun]; ok && tv.IsType() {
		return "", false // conversion, not a call
	}
	if _, op, ok := lockOpRecv(call); ok {
		return op, false // the mutex ops themselves
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Wait", "Signal", "Broadcast":
			if isCondType(ti.Types[sel.X].Type) {
				return sel.Sel.Name, false
			}
		}
	}
	if callee := staticCallee(ti, call); callee != nil {
		return funcDisplayName(callee), true
	}
	return exprString(call.Fun), true
}
