// Package bitset implements the variable-length reachability bit maps
// used by the backward-pass DAG construction algorithm described in
// Section 2 of Smotherman et al. (MICRO-24, 1991).
//
// Each DAG node owns one Set with one bit position per node; bit i set
// in node a's map means node i is a descendant of a (every map has its
// own bit set, so "descendant" here includes the node itself, matching
// the paper: "Each node's map is initialized to indicate that a node
// can reach itself"). The #descendants heuristic is then the population
// count of the map minus one.
package bitset

import (
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a growable bit set. The zero value is an empty set ready to use.
type Set struct {
	words []uint64
}

// New returns a set with capacity for at least n bits. All bits are clear.
func New(n int) *Set {
	//sched:lint-ignore noalloc one-time: noalloc paths call New only behind a nil guard on a recycled slot
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// grow ensures the set can address bit i.
func (s *Set) grow(i int) {
	need := i/wordBits + 1
	if need <= len(s.words) {
		return
	}
	if need <= cap(s.words) {
		s.words = s.words[:need]
	} else {
		w := make([]uint64, need, need*2)
		copy(w, s.words)
		s.words = w
	}
}

// Set sets bit i, growing the set if necessary.
//
//sched:noalloc
func (s *Set) Set(i int) {
	if i < 0 {
		panic("bitset: negative index")
	}
	s.grow(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i. Clearing a bit beyond the current capacity is a no-op.
func (s *Set) Clear(i int) {
	if i < 0 {
		panic("bitset: negative index")
	}
	if w := i / wordBits; w < len(s.words) {
		s.words[w] &^= 1 << uint(i%wordBits)
	}
}

// Test reports whether bit i is set. Bits beyond capacity read as clear.
func (s *Set) Test(i int) bool {
	if i < 0 {
		return false
	}
	w := i / wordBits
	return w < len(s.words) && s.words[w]&(1<<uint(i%wordBits)) != 0
}

// Or merges t into s (s |= t). This is the paper's
// "bitmap_for_a = bitmap_for_a OR bitmap_for_b" step.
func (s *Set) Or(t *Set) {
	if t == nil {
		return
	}
	if len(t.words) > len(s.words) {
		s.grow(len(t.words)*wordBits - 1)
	}
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// AndNot removes every bit of t from s (s &^= t).
func (s *Set) AndNot(t *Set) {
	if t == nil {
		return
	}
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= t.words[i]
	}
}

// Count returns the number of set bits (population count).
func (s *Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no bit is set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Reset clears every bit but keeps the allocated capacity.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Reuse makes s an empty set with capacity for at least n bits,
// recycling the backing array when it is large enough. It is the
// allocation-free equivalent of New(n) for pooled sets: per-worker
// arenas call it once per block on each recycled node bit map, so the
// steady-state DAG construction path never allocates a set.
//
//sched:noalloc
func (s *Set) Reuse(n int) {
	need := (n + wordBits - 1) / wordBits
	if cap(s.words) < need {
		s.words = make([]uint64, need)
		return
	}
	s.words = s.words[:need]
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Equal reports whether s and t contain exactly the same bits.
func (s *Set) Equal(t *Set) bool {
	a, b := s.words, t.words
	if len(a) < len(b) {
		a, b = b, a
	}
	for i := range b {
		if a[i] != b[i] {
			return false
		}
	}
	for _, w := range a[len(b):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share any set bit.
func (s *Set) Intersects(t *Set) bool {
	if t == nil {
		return false
	}
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Subset reports whether every bit of s is also set in t.
func (s *Set) Subset(t *Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// ForEach calls fn for each set bit in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &^= 1 << uint(b)
		}
	}
}

// Next returns the index of the first set bit >= i, or -1 if none.
func (s *Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	wi := i / wordBits
	if wi >= len(s.words) {
		return -1
	}
	w := s.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// String renders the set as a {1, 5, 9}-style list, for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		writeInt(&b, i)
	})
	b.WriteByte('}')
	return b.String()
}

func writeInt(b *strings.Builder, i int) {
	if i >= 10 {
		writeInt(b, i/10)
	}
	b.WriteByte(byte('0' + i%10))
}

// Slab carves many fixed-capacity sets out of one contiguous word
// arena. Per-node reachability maps carved from a slab occupy adjacent
// cache lines in node order, so the word-parallel OR loops of the
// transitive-arc-refusing DAG builder stream through one flat array
// instead of chasing per-set heap allocations. The slab recycles its
// arena across Carve calls; a carved set is valid until the next Carve.
//
// Carved sets must not outgrow their carved bit capacity: Set/Or past
// it would reallocate the set's words out of the slab (correct, but
// silently losing the flat layout). The DAG builder never does — every
// reachability map is sized to the block's node count up front.
//
// The zero value is ready to use.
type Slab struct {
	words []uint64
	sets  []Set
	ptrs  []*Set
}

// Carve returns n empty sets, each with capacity for bits bits, all
// backed by one contiguous zeroed arena. The returned slice and the
// sets it points to are owned by the slab and invalidated by the next
// Carve.
//
//sched:noalloc
func (sl *Slab) Carve(n, bits int) []*Set {
	if n == 0 {
		return nil
	}
	stride := (bits + wordBits - 1) / wordBits
	total := n * stride
	if cap(sl.words) < total {
		sl.words = make([]uint64, total)
	} else {
		sl.words = sl.words[:total]
		for i := range sl.words {
			sl.words[i] = 0
		}
	}
	if cap(sl.sets) < n {
		sl.sets = make([]Set, n)
		sl.ptrs = make([]*Set, n)
	}
	sl.sets = sl.sets[:n]
	sl.ptrs = sl.ptrs[:n]
	for i := 0; i < n; i++ {
		// The three-index slice caps each set at its stride so a
		// mistaken overgrow reallocates instead of clobbering its
		// neighbor.
		sl.sets[i].words = sl.words[i*stride : (i+1)*stride : (i+1)*stride]
		sl.ptrs[i] = &sl.sets[i]
	}
	return sl.ptrs
}
