package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var s Set
	if !s.Empty() {
		t.Fatal("zero value should be empty")
	}
	if s.Test(5) {
		t.Fatal("unset bit reads set")
	}
	s.Set(5)
	if !s.Test(5) {
		t.Fatal("bit 5 not set")
	}
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1", s.Count())
	}
}

func TestSetClearTest(t *testing.T) {
	s := New(10)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		s.Set(i)
		if !s.Test(i) {
			t.Errorf("Test(%d) = false after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Error("bit 64 still set after Clear")
	}
	s.Clear(100000) // beyond capacity: no-op
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestClearBeyondCapacityDoesNotGrow(t *testing.T) {
	var s Set
	s.Clear(512)
	if len(s.words) != 0 {
		t.Fatalf("Clear grew the set to %d words", len(s.words))
	}
}

func TestOrGrowsReceiver(t *testing.T) {
	a, b := New(1), New(1)
	b.Set(300)
	a.Or(b)
	if !a.Test(300) {
		t.Fatal("Or did not transfer bit 300")
	}
	a.Or(nil) // nil-safe
}

func TestAndNot(t *testing.T) {
	a, b := New(8), New(8)
	a.Set(1)
	a.Set(2)
	a.Set(200)
	b.Set(2)
	b.Set(200)
	a.AndNot(b)
	if !a.Test(1) || a.Test(2) || a.Test(200) {
		t.Fatalf("AndNot wrong: %v", a)
	}
	a.AndNot(nil)
	if !a.Test(1) {
		t.Fatal("AndNot(nil) altered set")
	}
}

func TestEqualDifferentCapacities(t *testing.T) {
	a, b := New(1), New(1000)
	a.Set(3)
	b.Set(3)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("sets with same bits but different capacity compare unequal")
	}
	b.Set(999)
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("different sets compare equal")
	}
}

func TestSubset(t *testing.T) {
	a, b := New(4), New(4)
	a.Set(1)
	b.Set(1)
	b.Set(70)
	if !a.Subset(b) {
		t.Fatal("a should be subset of b")
	}
	if b.Subset(a) {
		t.Fatal("b should not be subset of a")
	}
	var empty Set
	if !empty.Subset(a) {
		t.Fatal("empty set is a subset of everything")
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(0)
	want := []int{0, 7, 63, 64, 130}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: got %v want %v", got, want)
		}
	}
}

func TestNext(t *testing.T) {
	s := New(0)
	s.Set(5)
	s.Set(64)
	s.Set(200)
	cases := []struct{ from, want int }{
		{-3, 5}, {0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 200}, {200, 200}, {201, -1}, {10000, -1},
	}
	for _, c := range cases {
		if got := s.Next(c.from); got != c.want {
			t.Errorf("Next(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	s := New(0)
	s.Set(1)
	s.Set(5)
	s.Set(19)
	if got := s.String(); got != "{1, 5, 19}" {
		t.Fatalf("String = %q", got)
	}
	var empty Set
	if got := empty.String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(0)
	a.Set(9)
	c := a.Clone()
	c.Set(10)
	if a.Test(10) {
		t.Fatal("Clone aliases original storage")
	}
	if !c.Test(9) {
		t.Fatal("Clone lost bit")
	}
}

func TestResetKeepsCapacity(t *testing.T) {
	a := New(0)
	a.Set(500)
	w := cap(a.words)
	a.Reset()
	if !a.Empty() {
		t.Fatal("Reset left bits set")
	}
	if cap(a.words) != w {
		t.Fatal("Reset changed capacity")
	}
}

func TestNegativeTest(t *testing.T) {
	var s Set
	if s.Test(-1) {
		t.Fatal("Test(-1) should be false")
	}
}

func TestNegativeSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(-1) did not panic")
		}
	}()
	var s Set
	s.Set(-1)
}

func TestIntersects(t *testing.T) {
	a, b := New(8), New(8)
	a.Set(3)
	b.Set(200)
	if a.Intersects(b) || b.Intersects(a) {
		t.Fatal("disjoint sets intersect")
	}
	b.Set(3)
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("overlapping sets do not intersect")
	}
	if a.Intersects(nil) {
		t.Fatal("nil intersects")
	}
	var empty Set
	if a.Intersects(&empty) {
		t.Fatal("empty set intersects")
	}
}

func TestClearNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Clear(-1) did not panic")
		}
	}()
	var s Set
	s.Clear(-1)
}

func TestEmptyWithDirtyWords(t *testing.T) {
	s := New(128)
	s.Set(100)
	s.Clear(100)
	if !s.Empty() {
		t.Fatal("cleared set not empty")
	}
	s.Set(5)
	if s.Empty() {
		t.Fatal("set with bit 5 reads empty")
	}
}

// --- property tests ---

// fromBits builds a Set from a list of indices clipped to a sane range.
func fromBits(ix []uint16) (*Set, map[int]bool) {
	s := New(0)
	m := map[int]bool{}
	for _, i := range ix {
		s.Set(int(i))
		m[int(i)] = true
	}
	return s, m
}

func TestQuickOrIsUnion(t *testing.T) {
	f := func(ax, bx []uint16) bool {
		a, am := fromBits(ax)
		b, bm := fromBits(bx)
		a.Or(b)
		for i := range bm {
			am[i] = true
		}
		if a.Count() != len(am) {
			return false
		}
		for i := range am {
			if !a.Test(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOrIdempotentAndMonotone(t *testing.T) {
	f := func(ax, bx []uint16) bool {
		a, _ := fromBits(ax)
		b, _ := fromBits(bx)
		a1 := a.Clone()
		a1.Or(b)
		a2 := a1.Clone()
		a2.Or(b) // idempotent
		return a1.Equal(a2) && a.Subset(a1) && b.Subset(a1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountMatchesForEach(t *testing.T) {
	f := func(ax []uint16) bool {
		a, m := fromBits(ax)
		n := 0
		a.ForEach(func(i int) {
			if !m[i] {
				n = -1 << 30
			}
			n++
		})
		return n == a.Count() && n == len(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAndNotDisjoint(t *testing.T) {
	f := func(ax, bx []uint16) bool {
		a, _ := fromBits(ax)
		b, _ := fromBits(bx)
		a.AndNot(b)
		ok := true
		a.ForEach(func(i int) {
			if b.Test(i) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNextEnumeratesForEach(t *testing.T) {
	f := func(ax []uint16) bool {
		a, _ := fromBits(ax)
		var viaNext []int
		for i := a.Next(0); i >= 0; i = a.Next(i + 1) {
			viaNext = append(viaNext, i)
		}
		var viaEach []int
		a.ForEach(func(i int) { viaEach = append(viaEach, i) })
		if len(viaNext) != len(viaEach) {
			return false
		}
		for i := range viaNext {
			if viaNext[i] != viaEach[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOr(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := New(4096)
	c := New(4096)
	for i := 0; i < 512; i++ {
		a.Set(rng.Intn(4096))
		c.Set(rng.Intn(4096))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Or(c)
	}
}

func BenchmarkCount(b *testing.B) {
	a := New(16384)
	for i := 0; i < 16384; i += 3 {
		a.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Count()
	}
}

func TestReuse(t *testing.T) {
	s := New(256)
	s.Set(5)
	s.Set(200)

	// Shrinking reuse keeps the backing array and clears everything.
	s.Reuse(64)
	if !s.Empty() {
		t.Errorf("after Reuse(64) set not empty: %v", s)
	}
	if s.Test(5) || s.Test(200) {
		t.Error("stale bits survived Reuse")
	}
	s.Set(63)
	if !s.Test(63) {
		t.Error("Set after Reuse lost bit 63")
	}

	// Bits beyond the reused length read clear and can be set again
	// (growing within the retained capacity).
	if s.Test(200) {
		t.Error("bit beyond reused length reads set")
	}
	s.Set(200)
	if !s.Test(200) {
		t.Error("re-grow within capacity failed")
	}

	// Growing reuse past capacity allocates a clean set.
	s.Reuse(100000)
	if !s.Empty() {
		t.Error("grown Reuse not empty")
	}
	s.Set(99999)
	if !s.Test(99999) {
		t.Error("bit 99999 lost after growing Reuse")
	}

	// Reuse on the zero value behaves like New.
	var z Set
	z.Reuse(70)
	if !z.Empty() {
		t.Error("zero-value Reuse not empty")
	}
	z.Set(69)
	if !z.Test(69) {
		t.Error("zero-value Reuse cannot address bit 69")
	}
}

func TestReuseZeroAlloc(t *testing.T) {
	s := New(512)
	allocs := testing.AllocsPerRun(100, func() {
		s.Reuse(512)
		s.Set(100)
	})
	if allocs != 0 {
		t.Errorf("Reuse at capacity allocates %.1f/op", allocs)
	}
}
