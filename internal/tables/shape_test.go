package tables

import (
	"testing"

	"daginsched/internal/machine"
	"daginsched/internal/synth"
)

// TestHeadlineShapes pins the paper's three headline findings as
// self-checking assertions with generous margins (timing on shared
// machines is noisy; the real effects are order-of-magnitude):
//
//  1. the n² approach is far slower than table building on the largest
//     windowed benchmark (paper: 66×; we require ≥ 2×);
//  2. table building needs no instruction window — full fpppp costs at
//     most a small factor over fpppp-1000 (paper: 1.14×; we allow 3×);
//  3. forward and backward table building are comparable (paper: ~1×;
//     we allow 3×).
func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("timing shapes skipped in -short mode")
	}
	m := machine.Pipe1()
	p, _ := synth.ByName("fpppp")
	w1000 := p.GenerateWindowed(1000)
	full := p.Generate()
	aps := Approaches()

	n2 := Run("fpppp-1000", w1000, aps[0], m, 3)
	fwd1000 := Run("fpppp-1000", w1000, aps[1], m, 3)
	bwd1000 := Run("fpppp-1000", w1000, aps[2], m, 3)
	fwdFull := Run("fpppp", full, aps[1], m, 3)

	if n2.Seconds < 2*fwd1000.Seconds {
		t.Errorf("finding 1 lost: n² %.4fs vs table %.4fs (want >= 2x)",
			n2.Seconds, fwd1000.Seconds)
	}
	if fwdFull.Seconds > 3*fwd1000.Seconds {
		t.Errorf("finding 2 lost: full fpppp %.4fs vs windowed %.4fs (want <= 3x)",
			fwdFull.Seconds, fwd1000.Seconds)
	}
	ratio := fwd1000.Seconds / bwd1000.Seconds
	if ratio < 1.0/3 || ratio > 3 {
		t.Errorf("finding 3 lost: fwd %.4fs vs bwd %.4fs", fwd1000.Seconds, bwd1000.Seconds)
	}

	// The structural side of finding 1 is deterministic and tight: the
	// paper reports 55.61 children/inst and 2104.56 arcs/block for n² on
	// fpppp-1000; our calibrated generator lands within 10%.
	if n2.ChildrenAvg < 50 || n2.ChildrenAvg > 61 {
		t.Errorf("n² children/inst = %.2f, want ~55.6 ± 10%%", n2.ChildrenAvg)
	}
	if n2.ArcsAvg < 1894 || n2.ArcsAvg > 2315 {
		t.Errorf("n² arcs/block = %.2f, want ~2104 ± 10%%", n2.ArcsAvg)
	}
	// Table building retains far fewer arcs (paper: 88 vs 2104).
	if fwd1000.ArcsAvg > n2.ArcsAvg/5 {
		t.Errorf("table arcs/block %.2f not well below n² %.2f",
			fwd1000.ArcsAvg, n2.ArcsAvg)
	}
}
