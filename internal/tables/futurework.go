package tables

import (
	"fmt"
	"strings"

	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/sched"
)

// OptimalityTable answers the paper's first future-work question —
// "determining if an optimal branch-and-bound scheduler would benefit
// performance for small basic blocks" — empirically: over every block
// of at most maxBB instructions, it reports how often each Table 2
// algorithm already achieves the branch-and-bound optimum and the
// average excess when it does not.
func OptimalityTable(sets []BenchmarkSet, m *machine.Model, maxBB int) string {
	if maxBB <= 0 || maxBB > sched.MaxBranchAndBound {
		maxBB = 16
	}
	algos := sched.Table2()
	var b strings.Builder
	fmt.Fprintf(&b, "Branch-and-bound study (blocks <= %d insts, machine %s)\n\n", maxBB, m.Name)
	fmt.Fprintf(&b, "%-12s %8s", "benchmark", "blocks")
	for _, al := range algos {
		fmt.Fprintf(&b, " %12s", shortName(al.Name))
	}
	fmt.Fprintln(&b, "   (column: % of blocks scheduled optimally)")
	fmt.Fprintln(&b, strings.Repeat("-", 24+13*len(algos)))
	for _, set := range sets {
		rt := resource.NewTable(resource.MemExprModel)
		optimal := make([]int, len(algos))
		var excess int64
		n := 0
		for _, blk := range set.Blocks {
			if blk.Len() > maxBB || blk.Len() < 2 {
				continue
			}
			n++
			rt.PrepareBlock(blk.Insts)
			for ai, al := range algos {
				d := al.Builder().Build(blk, m, rt)
				r := al.Run(d, m)
				opt := sched.BranchAndBound(d, m)
				got := sched.Timed(d, m, r.Order).Cycles
				if got == opt.Cycles {
					optimal[ai]++
				} else {
					excess += int64(got - opt.Cycles)
				}
			}
		}
		if n == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-12s %8d", set.Name, n)
		for ai := range algos {
			fmt.Fprintf(&b, " %11.1f%%", 100*float64(optimal[ai])/float64(n))
		}
		fmt.Fprintf(&b, "   avg excess when suboptimal: %.2f cycles\n",
			float64(excess)/float64(max(1, n*len(algos)-sum(optimal))))
	}
	return b.String()
}

// WinnersBySize answers the second future-work question —
// "characterizing the attributes of larger basic blocks that enable
// certain heuristics to outperform others" — along the most basic
// attribute, block size: blocks are bucketed by instruction count and
// each bucket reports which algorithm produced the (possibly shared)
// best cycle count most often.
func WinnersBySize(sets []BenchmarkSet, m *machine.Model) string {
	algos := sched.Table2()
	buckets := []struct {
		name     string
		min, max int
	}{
		{"2-4", 2, 4}, {"5-8", 5, 8}, {"9-16", 9, 16},
		{"17-32", 17, 32}, {"33-128", 33, 128}, {"129+", 129, 1 << 30},
	}
	wins := make([][]int, len(buckets))
	counts := make([]int, len(buckets))
	for i := range wins {
		wins[i] = make([]int, len(algos))
	}
	for _, set := range sets {
		rt := resource.NewTable(resource.MemExprModel)
		for _, blk := range set.Blocks {
			bi := -1
			for k, bk := range buckets {
				if blk.Len() >= bk.min && blk.Len() <= bk.max {
					bi = k
					break
				}
			}
			if bi < 0 {
				continue
			}
			counts[bi]++
			best := int32(1 << 30)
			cycles := make([]int32, len(algos))
			rt.PrepareBlock(blk.Insts)
			for ai, al := range algos {
				d := al.Builder().Build(blk, m, rt)
				cycles[ai] = sched.Timed(d, m, al.Run(d, m).Order).Cycles
				if cycles[ai] < best {
					best = cycles[ai]
				}
			}
			for ai := range algos {
				if cycles[ai] == best {
					wins[bi][ai]++
				}
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Best-schedule share by block size (machine %s; ties shared)\n\n", m.Name)
	fmt.Fprintf(&b, "%-8s %8s", "size", "blocks")
	for _, al := range algos {
		fmt.Fprintf(&b, " %12s", shortName(al.Name))
	}
	fmt.Fprintln(&b)
	fmt.Fprintln(&b, strings.Repeat("-", 20+13*len(algos)))
	for bi, bk := range buckets {
		if counts[bi] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-8s %8d", bk.name, counts[bi])
		for ai := range algos {
			fmt.Fprintf(&b, " %11.1f%%", 100*float64(wins[bi][ai])/float64(counts[bi]))
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
