// Package tables regenerates the tables and the figure of Smotherman
// et al. (MICRO-24, 1991): the heuristic survey (Table 1), the
// algorithm analysis (Table 2), benchmark structure (Table 3), and the
// DAG-construction comparison (Tables 4 and 5), plus the Figure 1
// transitive-arc demonstration. cmd/schedbench, cmd/heursurvey and the
// repository's benchmarks are thin wrappers over this package.
package tables

import (
	"fmt"
	"strings"
	"time"

	"daginsched/internal/block"
	"daginsched/internal/dag"
	"daginsched/internal/heur"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/sched"
	"daginsched/internal/synth"
)

// Approach is one of the three Section 6 pipelines: a construction
// algorithm paired with a simple forward scheduling pass over "max path
// to leaf, max delay to leaf, and max delay to child".
type Approach struct {
	Name    string
	Builder dag.Builder
	// Fused marks the third approach: backward static heuristics are
	// computed during backward construction, eliminating the separate
	// child-revisiting pass.
	Fused bool
}

// Approaches returns the paper's three Section 6 approaches in order:
// n² forward (Warren-like), table-building forward (Krishnamurthy-
// like), table-building backward.
func Approaches() []Approach {
	return []Approach{
		{Name: "n**2 forward", Builder: dag.N2Forward{}},
		{Name: "table forward", Builder: dag.TableForward{}},
		{Name: "table backward", Builder: dag.TableBackward{}, Fused: true},
	}
}

// section6Selector is the Section 6 scheduling pass's heuristic order.
func section6Selector() sched.Selector {
	return sched.Winnow(sched.Section6Ranked())
}

// RunStats is one Table 4 / Table 5 row.
type RunStats struct {
	Benchmark   string
	Approach    string
	Seconds     float64 // averaged scheduling time, paper's "run time"
	ChildrenMax int     // max #children of any instruction
	ChildrenAvg float64 // arcs per instruction
	ArcsMax     int     // most arcs in one basic block
	ArcsAvg     float64 // arcs per basic block
	Cycles      int64   // total scheduled cycles across all blocks
}

// Run executes one approach over a block set: for every block it
// prepares the resource table, constructs the DAG, computes the static
// heuristics (inline for the fused approach, as a separate backward
// pass otherwise) and runs the forward scheduling pass. The reported
// time is the average of `runs` full executions, mirroring the paper's
// five-run averages of user+sys time.
func Run(name string, blocks []*block.Block, ap Approach, m *machine.Model, runs int) RunStats {
	st := RunStats{Benchmark: name, Approach: ap.Name}
	if runs < 1 {
		runs = 1
	}
	var elapsed time.Duration
	for r := 0; r < runs; r++ {
		rt := resource.NewTable(resource.MemExprModel)
		start := time.Now()
		collect := r == 0
		for _, b := range blocks {
			rt.PrepareBlock(b.Insts)
			var d *dag.DAG
			a := heur.New(nil, m)
			if ap.Fused {
				obs := &heur.FusedBackward{A: a, ComputeLocals: true}
				d = dag.TableBackward{Observer: obs}.Build(b, m, rt)
				a.D = d
			} else {
				d = ap.Builder.Build(b, m, rt)
				a.D = d
				a.ComputeBackward()
				a.ComputeLocal()
			}
			res := sched.Forward(d, m, a, section6Selector())
			if collect {
				st.Cycles += int64(res.Cycles)
				if d.NumArcs > st.ArcsMax {
					st.ArcsMax = d.NumArcs
				}
				st.ArcsAvg += float64(d.NumArcs)
				for i := range d.Nodes {
					if c := d.Nodes[i].NumChildren(); c > st.ChildrenMax {
						st.ChildrenMax = c
					}
				}
				st.ChildrenAvg += float64(d.NumArcs)
			}
		}
		elapsed += time.Since(start)
	}
	st.Seconds = elapsed.Seconds() / float64(runs)
	var insts int
	for _, b := range blocks {
		insts += b.Len()
	}
	if len(blocks) > 0 {
		st.ArcsAvg /= float64(len(blocks))
	}
	if insts > 0 {
		st.ChildrenAvg /= float64(insts)
	}
	return st
}

// Table1 renders the heuristic survey from the live registry.
func Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1. Various heuristics\n\n")
	fmt.Fprintf(&b, "%-16s %-42s %-7s %-5s %s\n", "category", "heuristic", "kind", "pass", "transitive-sensitive")
	fmt.Fprintln(&b, strings.Repeat("-", 92))
	for c := 0; c < heur.NumCategories; c++ {
		for _, d := range heur.ByCategory(heur.Category(c)) {
			kind := "rel"
			if d.Timing {
				kind = "timing"
			}
			mark := ""
			if d.TransitiveSensitive {
				mark = "**"
			}
			fmt.Fprintf(&b, "%-16s %-42s %-7s %-5s %s\n",
				heur.Category(c), d.Name, kind, d.Pass, mark)
		}
	}
	return b.String()
}

// Table2 renders the six-algorithm analysis from the live configurations.
func Table2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2. Various scheduling algorithms\n\n")
	for _, al := range sched.Table2() {
		fmt.Fprintf(&b, "%s\n", al.Cite)
		cons := "n.g."
		if al.Construction != nil {
			cons = fmt.Sprintf("%s (%s pass)", al.Construction.Name(), al.Construction.Direction())
		}
		fmt.Fprintf(&b, "  dag construction: %s\n", cons)
		schedPass := al.SchedDir.String()
		if al.Postpass {
			schedPass += "+postpass"
		}
		fmt.Fprintf(&b, "  scheduling pass:  %s (%s)\n", schedPass, al.Combine)
		for rank, rk := range al.Ranked {
			dir := ""
			if rk.Min {
				dir = " (inverse)"
			}
			fmt.Fprintf(&b, "    %d. %s%s\n", rank+1, rk.Key, dir)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// BenchmarkSet is one Table 3 row's worth of blocks: a named benchmark,
// possibly windowed.
type BenchmarkSet struct {
	Name   string
	Blocks []*block.Block
}

// Table3Sets generates every Table 3 benchmark, including the windowed
// fpppp rows.
func Table3Sets() []BenchmarkSet {
	var out []BenchmarkSet
	for _, p := range synth.Profiles() {
		if p.Name == "fpppp" {
			for _, w := range []int{1000, 2000, 4000} {
				out = append(out, BenchmarkSet{
					Name:   fmt.Sprintf("fpppp-%d", w),
					Blocks: p.GenerateWindowed(w),
				})
			}
		}
		out = append(out, BenchmarkSet{Name: p.Name, Blocks: p.Generate()})
	}
	return out
}

// Table3 renders the structural data table.
func Table3(sets []BenchmarkSet) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3. Structural data for benchmarks independent of approach\n\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %12s %12s %10s %10s\n",
		"benchmark", "#blocks", "#insts", "insts/b max", "insts/b avg", "mem max", "mem avg")
	fmt.Fprintln(&b, strings.Repeat("-", 78))
	rt := resource.NewTable(resource.MemExprModel)
	for _, set := range sets {
		s := block.Measure(set.Blocks, func(bb *block.Block) int {
			rt.PrepareBlock(bb.Insts)
			return rt.UniqueMemExprs()
		})
		fmt.Fprintf(&b, "%-12s %8d %8d %12d %12.2f %10d %10.2f\n",
			set.Name, s.Blocks, s.Insts, s.MaxBlockLen, s.AvgBlockLen,
			s.MaxUniqueMem, s.AvgUniqueMem)
	}
	return b.String()
}

// Table4 runs the n² approach over the given sets and renders the
// timing/structure table. The paper restricted n² to fpppp-1000 at most
// ("excessive time and space requirements"); callers choose the sets.
func Table4(sets []BenchmarkSet, m *machine.Model, runs int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4. Scheduling run times and structural data for n**2 approach\n\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s %10s\n",
		"benchmark", "time(s)", "child max", "child avg", "arcs max", "arcs avg")
	fmt.Fprintln(&b, strings.Repeat("-", 68))
	ap := Approaches()[0]
	for _, set := range sets {
		st := Run(set.Name, set.Blocks, ap, m, runs)
		fmt.Fprintf(&b, "%-12s %10.3f %10d %10.2f %10d %10.2f\n",
			set.Name, st.Seconds, st.ChildrenMax, st.ChildrenAvg, st.ArcsMax, st.ArcsAvg)
	}
	return b.String()
}

// Table5 runs both table-building approaches over the sets.
func Table5(sets []BenchmarkSet, m *machine.Model, runs int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5. Scheduling run times and structural data for table-building approaches\n\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %10s %10s %10s\n",
		"benchmark", "fwd(s)", "bwd(s)", "child max", "child avg", "arcs max", "arcs avg")
	fmt.Fprintln(&b, strings.Repeat("-", 80))
	aps := Approaches()
	for _, set := range sets {
		fwd := Run(set.Name, set.Blocks, aps[1], m, runs)
		bwd := Run(set.Name, set.Blocks, aps[2], m, runs)
		fmt.Fprintf(&b, "%-12s %10.3f %10.3f %10d %10.2f %10d %10.2f\n",
			set.Name, fwd.Seconds, bwd.Seconds,
			fwd.ChildrenMax, fwd.ChildrenAvg, fwd.ArcsMax, fwd.ArcsAvg)
	}
	return b.String()
}

// ScalingTable times DAG construction alone on single blocks of
// growing size — the asymptotics behind Tables 4 and 5, isolated from
// scheduling: n² is quadratic in block length, table building linear.
// Synthetic blocks are drawn in the fpppp style (FP mix) so dependence
// density is realistic.
func ScalingTable(m *machine.Model, sizes []int, runs int) string {
	if len(sizes) == 0 {
		sizes = []int{50, 100, 200, 400, 800, 1600, 3200}
	}
	if runs < 1 {
		runs = 1
	}
	p, _ := synth.ByName("fpppp")
	var b strings.Builder
	fmt.Fprintf(&b, "DAG construction scaling (single block, %d-run averages)\n\n", runs)
	fmt.Fprintf(&b, "%8s %12s %12s %12s %10s\n", "insts", "n2f", "tablef", "tableb", "n2/table")
	fmt.Fprintln(&b, strings.Repeat("-", 60))
	for _, n := range sizes {
		blk := synthBlock(p, n)
		times := make([]float64, 3)
		for bi, bld := range []dag.Builder{dag.N2Forward{}, dag.TableForward{}, dag.TableBackward{}} {
			rt := resource.NewTable(resource.MemExprModel)
			start := time.Now()
			for r := 0; r < runs; r++ {
				rt.PrepareBlock(blk.Insts)
				bld.Build(blk, m, rt)
			}
			times[bi] = time.Since(start).Seconds() / float64(runs)
		}
		ratio := times[0] / ((times[1] + times[2]) / 2)
		fmt.Fprintf(&b, "%8d %12.6f %12.6f %12.6f %9.1fx\n",
			n, times[0], times[1], times[2], ratio)
	}
	return b.String()
}

// synthBlock carves one n-instruction block from a profile-styled
// generation (windowing the big fpppp block down to the wanted size).
func synthBlock(p synth.Profile, n int) *block.Block {
	for _, blk := range p.GenerateWindowed(n) {
		if blk.Len() == n {
			return blk
		}
	}
	// Fall back to the largest available block.
	blocks := p.Generate()
	return blocks[0]
}

// QualityTable compares the six Table 2 algorithms by schedule quality
// — total cycles and percentage saved versus program order — across
// the given benchmarks on one machine model. The paper characterizes
// the algorithms but does not race them; this extension experiment
// answers the natural follow-up question.
func QualityTable(sets []BenchmarkSet, m *machine.Model) string {
	algos := append(sched.Table2(), sched.SchlanskerVLIW())
	var b strings.Builder
	fmt.Fprintf(&b, "Scheduling quality: %% cycles saved vs program order (machine %s)\n\n", m.Name)
	fmt.Fprintf(&b, "%-12s %9s", "benchmark", "baseline")
	for _, al := range algos {
		fmt.Fprintf(&b, " %12s", shortName(al.Name))
	}
	fmt.Fprintln(&b)
	fmt.Fprintln(&b, strings.Repeat("-", 22+13*len(algos)))
	for _, set := range sets {
		rt := resource.NewTable(resource.MemExprModel)
		var base int64
		saved := make([]int64, len(algos))
		for _, blk := range set.Blocks {
			rt.PrepareBlock(blk.Insts)
			for ai, al := range algos {
				d := al.Builder().Build(blk, m, rt)
				r := al.Run(d, m)
				if ai == 0 {
					base += int64(sched.InOrder(d, m).Cycles)
				}
				// Re-time every emitted order under the machine's
				// in-order issue model so sequence-emitting and
				// time-indexed (reservation) algorithms are compared
				// on equal footing. For the sequential algorithms this
				// reproduces their own clock exactly.
				saved[ai] += int64(sched.Timed(d, m, r.Order).Cycles)
			}
		}
		fmt.Fprintf(&b, "%-12s %9d", set.Name, base)
		for ai := range algos {
			pct := 100 * float64(base-saved[ai]) / float64(base)
			fmt.Fprintf(&b, " %11.1f%%", pct)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

func shortName(name string) string {
	switch name {
	case "gibbons-muchnick":
		return "gibbons"
	case "krishnamurthy":
		return "krishnamur."
	case "shieh-papachristou":
		return "shieh"
	}
	return name
}

// Figure1 renders the transitive-arc demonstration: the three-
// instruction block, its arcs under a retaining builder and under the
// two transitive-arc avoiders, and the resulting max-delay-to-leaf and
// EST values.
func Figure1(m *machine.Model) string {
	insts := Figure1Block()
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1. Importance of transitive arcs\n\n")
	for i := range insts {
		fmt.Fprintf(&b, "  %d: %s   (%d cycles)\n", i+1, insts[i].String(), m.Latency(insts[i].Op))
	}
	fmt.Fprintln(&b)
	for _, bld := range []dag.Builder{dag.TableForward{}, dag.Landskov{},
		dag.TableBackward{PreventTransitive: true}} {
		blk := &block.Block{Name: "fig1"}
		blk.Insts = append(blk.Insts, insts...)
		rt := resource.NewTable(resource.MemExprModel)
		rt.PrepareBlock(blk.Insts)
		d := bld.Build(blk, m, rt)
		a := heur.New(d, m)
		a.ComputeBackward()
		a.ComputeForward()
		fmt.Fprintf(&b, "%s:\n", bld.Name())
		for i := range d.Nodes {
			for _, arc := range d.Nodes[i].Succs {
				fmt.Fprintf(&b, "  arc %d->%d %s delay %d\n", arc.From+1, arc.To+1, arc.Kind, arc.Delay)
			}
		}
		fmt.Fprintf(&b, "  max delay to leaf(1) = %d, EST(3) = %d\n\n",
			a.MaxDelayToLeaf[0], a.EST[2])
	}
	return b.String()
}

// Figure1Block returns the paper's Figure 1 instruction sequence
// (DIVF R1,R2,R3; ADDF R4,R5,R1; ADDF R1,R3,R6) in this ISA: a
// 20-cycle divide, a 4-cycle add overwriting one divide source, and a
// 4-cycle add consuming both results.
func Figure1Block() []isa.Inst {
	return []isa.Inst{
		isa.Fp3(isa.FDIVS, isa.F(1), isa.F(2), isa.F(3)),
		isa.Fp3(isa.FADDS, isa.F(4), isa.F(5), isa.F(1)),
		isa.Fp3(isa.FADDS, isa.F(1), isa.F(3), isa.F(6)),
	}
}
