package tables

import (
	"strings"
	"testing"

	"daginsched/internal/machine"
	"daginsched/internal/synth"
)

func grepSet(t *testing.T) []BenchmarkSet {
	t.Helper()
	p, ok := synth.ByName("grep")
	if !ok {
		t.Fatal("grep profile missing")
	}
	return []BenchmarkSet{{Name: "grep", Blocks: p.Generate()}}
}

func TestOptimalityTable(t *testing.T) {
	out := OptimalityTable(grepSet(t), machine.Pipe1(), 8)
	if !strings.Contains(out, "grep") || !strings.Contains(out, "%") {
		t.Fatalf("malformed:\n%s", out)
	}
	// Every Table 2 algorithm column must appear.
	for _, name := range []string{"gibbons", "krishnamur.", "schlansker", "shieh", "tiemann", "warren"} {
		if !strings.Contains(out, name) {
			t.Errorf("missing column %q", name)
		}
	}
	if !strings.Contains(out, "avg excess") {
		t.Error("missing excess summary")
	}
}

func TestOptimalityCapsBlockSize(t *testing.T) {
	// maxBB beyond the branch-and-bound limit must be clamped, not panic.
	out := OptimalityTable(grepSet(t), machine.Pipe1(), 1000)
	if !strings.Contains(out, "blocks <= 16") {
		t.Fatalf("cap not applied:\n%s", strings.SplitN(out, "\n", 2)[0])
	}
}

func TestWinnersBySize(t *testing.T) {
	out := WinnersBySize(grepSet(t), machine.Pipe1())
	if !strings.Contains(out, "2-4") || !strings.Contains(out, "5-8") {
		t.Fatalf("buckets missing:\n%s", out)
	}
	if !strings.Contains(out, "ties shared") {
		t.Error("header missing")
	}
}

func TestAblationTable(t *testing.T) {
	out := AblationTable(grepSet(t), machine.Pipe1())
	for _, want := range []string{
		"gibbons-muchnick", "warren", "rank 1", "full:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// Every algorithm section lists one line per ranked heuristic.
	if strings.Count(out, "- rank") != 4+5+2+5+3+6 {
		t.Errorf("rank-line count wrong:\n%s", out)
	}
}

func TestScalingTable(t *testing.T) {
	out := ScalingTable(machine.Pipe1(), []int{30, 120}, 1)
	if !strings.Contains(out, "n2/table") || !strings.Contains(out, "120") {
		t.Fatalf("malformed:\n%s", out)
	}
	if strings.Count(out, "\n") < 5 {
		t.Fatal("missing rows")
	}
}

func TestQualityTable(t *testing.T) {
	out := QualityTable(grepSet(t), machine.Pipe1())
	if !strings.Contains(out, "schlansker-resv") {
		t.Error("reservation variant column missing")
	}
	if !strings.Contains(out, "baseline") || !strings.Contains(out, "grep") {
		t.Fatalf("malformed:\n%s", out)
	}
}
