package tables

import (
	"strings"
	"testing"

	"daginsched/internal/machine"
	"daginsched/internal/synth"
)

func smallSets(t *testing.T) []BenchmarkSet {
	t.Helper()
	var out []BenchmarkSet
	for _, name := range []string{"grep", "tomcatv"} {
		p, ok := synth.ByName(name)
		if !ok {
			t.Fatalf("profile %s missing", name)
		}
		out = append(out, BenchmarkSet{Name: name, Blocks: p.Generate()})
	}
	return out
}

func TestTable1RendersAllRows(t *testing.T) {
	out := Table1()
	for _, want := range []string{
		"interlock with previous inst.", "earliest execution time",
		"max path length to a leaf", "#uncovered children",
		"birthing instruction", "slack (= LST-EST)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	if strings.Count(out, "\n") < 28 {
		t.Error("Table 1 too short")
	}
}

func TestTable2RendersAllAlgorithms(t *testing.T) {
	out := Table2()
	for _, want := range []string{
		"Gibbons & Muchnick [3]", "Krishnamurthy [8]", "Schlansker [12]",
		"Shieh & Papachristou [13]", "Tiemann (GCC) [15]", "Warren [16]",
		"n.g.", "f+postpass", "priority fn", "winnow",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestTable3Renders(t *testing.T) {
	out := Table3(smallSets(t))
	if !strings.Contains(out, "grep") || !strings.Contains(out, "tomcatv") {
		t.Error("Table 3 missing benchmarks")
	}
	if !strings.Contains(out, "730") || !strings.Contains(out, "1739") {
		t.Errorf("Table 3 grep row wrong:\n%s", out)
	}
}

func TestRunCollectsStats(t *testing.T) {
	sets := smallSets(t)
	m := machine.Pipe1()
	for _, ap := range Approaches() {
		st := Run(sets[0].Name, sets[0].Blocks, ap, m, 1)
		if st.Seconds <= 0 {
			t.Errorf("%s: no time measured", ap.Name)
		}
		if st.ArcsMax <= 0 || st.ChildrenMax <= 0 || st.Cycles <= 0 {
			t.Errorf("%s: empty stats %+v", ap.Name, st)
		}
	}
}

func TestN2HasMoreArcsThanTable(t *testing.T) {
	sets := smallSets(t)
	m := machine.Pipe1()
	aps := Approaches()
	n2 := Run("tomcatv", sets[1].Blocks, aps[0], m, 1)
	tf := Run("tomcatv", sets[1].Blocks, aps[1], m, 1)
	bw := Run("tomcatv", sets[1].Blocks, aps[2], m, 1)
	if n2.ArcsAvg <= tf.ArcsAvg {
		t.Errorf("n2 arcs/block %.2f should exceed table %.2f (transitive arcs)",
			n2.ArcsAvg, tf.ArcsAvg)
	}
	if n2.ChildrenMax < tf.ChildrenMax {
		t.Errorf("n2 child max %d < table %d", n2.ChildrenMax, tf.ChildrenMax)
	}
	// Forward and backward table building yield the same arc counts.
	if tf.ArcsMax != bw.ArcsMax || tf.ChildrenMax != bw.ChildrenMax {
		t.Errorf("table fwd/bwd structural stats differ: %+v vs %+v", tf, bw)
	}
	// All three approaches schedule to comparable quality on the same
	// heuristics (identical reachability, near-identical delays).
	if n2.Cycles <= 0 || tf.Cycles <= 0 {
		t.Error("missing cycle totals")
	}
}

// TestTomcatvChildrenDensity pins the structural cause behind the
// paper's Table 4 remark: "tomcatv is noteworthy because it had fewer
// total instructions than either linpack or lloops but required longer
// to schedule; this can be traced to the large number of children per
// instruction and correspondingly large number of arcs per basic
// block." Our absolute times are modern-CPU noise, but the cause — n²
// children/instruction far above the other FP kernels — reproduces.
func TestTomcatvChildrenDensity(t *testing.T) {
	m := machine.Pipe1()
	ap := Approaches()[0] // n²
	density := map[string]float64{}
	insts := map[string]int{}
	for _, name := range []string{"tomcatv", "linpack", "lloops"} {
		p, ok := synth.ByName(name)
		if !ok {
			t.Fatal(name)
		}
		blocks := p.Generate()
		st := Run(name, blocks, ap, m, 1)
		density[name] = st.ChildrenAvg
		for _, b := range blocks {
			insts[name] += b.Len()
		}
	}
	if insts["tomcatv"] >= insts["linpack"] || insts["tomcatv"] >= insts["lloops"] {
		t.Fatal("tomcatv should have the fewest instructions")
	}
	if density["tomcatv"] <= 2*density["linpack"] || density["tomcatv"] <= 2*density["lloops"] {
		t.Fatalf("tomcatv n² children/inst %.2f should dwarf linpack %.2f and lloops %.2f",
			density["tomcatv"], density["linpack"], density["lloops"])
	}
}

func TestTables4And5Render(t *testing.T) {
	sets := smallSets(t)
	m := machine.Pipe1()
	t4 := Table4(sets, m, 1)
	if !strings.Contains(t4, "n**2") || !strings.Contains(t4, "tomcatv") {
		t.Errorf("Table 4 malformed:\n%s", t4)
	}
	t5 := Table5(sets, m, 1)
	if !strings.Contains(t5, "fwd(s)") || !strings.Contains(t5, "grep") {
		t.Errorf("Table 5 malformed:\n%s", t5)
	}
}

func TestFigure1Renders(t *testing.T) {
	out := Figure1(machine.Pipe1())
	for _, want := range []string{
		"fdivs", "20 cycles",
		"arc 1->2 WAR delay 1",
		"arc 2->3 RAW delay 4",
		"arc 1->3 RAW delay 20",
		"max delay to leaf(1) = 20, EST(3) = 20",
		"max delay to leaf(1) = 5, EST(3) = 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 1 output missing %q:\n%s", want, out)
		}
	}
}
