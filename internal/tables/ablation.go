package tables

import (
	"fmt"
	"strings"

	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/sched"
)

// AblationTable generalizes the paper's Section 5 observation that
// Shieh & Papachristou's last-ranked heuristic "could possibly be
// omitted or replaced with little effect": for every Table 2 algorithm
// it drops each ranked heuristic in turn and reports the change in
// total scheduled cycles over the given benchmarks. A near-zero column
// means the rank is dead weight on this workload; a large positive
// column means the rank carries the algorithm.
func AblationTable(sets []BenchmarkSet, m *machine.Model) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Heuristic ablation: %% cycle increase when one rank is dropped (machine %s)\n\n", m.Name)
	for _, base := range sched.Table2() {
		full := totalAlgoCycles(sets, base, m)
		fmt.Fprintf(&b, "%-20s (full: %d cycles)\n", base.Name, full)
		for rank := range base.Ranked {
			trimmed := cloneWithout(base, rank)
			cycles := totalAlgoCycles(sets, trimmed, m)
			delta := 100 * float64(cycles-full) / float64(full)
			fmt.Fprintf(&b, "    - rank %d (%s): %+0.2f%%\n",
				rank+1, base.Ranked[rank].Key, delta)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// cloneWithout copies an algorithm minus one ranked heuristic.
func cloneWithout(al *sched.Algorithm, rank int) *sched.Algorithm {
	c := *al
	c.Ranked = make([]sched.RankedKey, 0, len(al.Ranked)-1)
	c.Ranked = append(c.Ranked, al.Ranked[:rank]...)
	c.Ranked = append(c.Ranked, al.Ranked[rank+1:]...)
	return &c
}

// totalAlgoCycles sums re-timed schedule lengths over the benchmarks.
func totalAlgoCycles(sets []BenchmarkSet, al *sched.Algorithm, m *machine.Model) int64 {
	var total int64
	for _, set := range sets {
		rt := resource.NewTable(resource.MemExprModel)
		for _, blk := range set.Blocks {
			rt.PrepareBlock(blk.Insts)
			d := al.Builder().Build(blk, m, rt)
			total += int64(sched.Timed(d, m, al.Run(d, m).Order).Cycles)
		}
	}
	return total
}
