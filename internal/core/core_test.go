package core

import (
	"strings"
	"testing"

	"daginsched/internal/dag"
	"daginsched/internal/interp"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/sched"
	"daginsched/internal/testgen"
)

const demoAsm = `
entry:
	ld [%fp-4], %o0
	add %o0, 1, %o1
	mov 5, %o2
	cmp %o1, %o2
	bne entry
	nop
`

func TestScheduleAsmEndToEnd(t *testing.T) {
	p := Default()
	out, res, err := p.ScheduleAsm(demoAsm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles > res.Baseline {
		t.Errorf("scheduling worsened: %d vs %d", res.Cycles, res.Baseline)
	}
	if !strings.Contains(out, "entry:") {
		t.Errorf("label lost:\n%s", out)
	}
	// The load delay slot must be filled: mov hoists between ld and add.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.Contains(lines[1], "ld") || !strings.Contains(lines[2], "mov") {
		t.Errorf("expected mov in the load delay slot:\n%s", out)
	}
}

func TestScheduleAsmParseError(t *testing.T) {
	if _, _, err := Default().ScheduleAsm("bogus %o0"); err == nil {
		t.Fatal("bad assembly accepted")
	}
}

func TestScheduleProgramSemantics(t *testing.T) {
	// End-to-end: partition, schedule, reassemble, and check that the
	// straight-line body of each block preserves architectural state.
	for seed := int64(0); seed < 8; seed++ {
		body := testgen.Block(seed, 20)
		p := Default()
		res := p.ScheduleProgram(body)
		if len(res.Blocks) != 1 {
			t.Fatalf("CTI-free stream should form one block, got %d", len(res.Blocks))
		}
		ref := interp.NewState(uint64(seed))
		if err := ref.Run(body); err != nil {
			t.Fatal(err)
		}
		got := interp.NewState(uint64(seed))
		if err := got.Run(res.Insts()); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(ref) {
			t.Fatalf("seed %d: reassembled program diverged: %s", seed, got.Diff(ref))
		}
	}
}

func TestPipelineConfigurations(t *testing.T) {
	insts := testgen.Block(3, 25)
	for _, al := range sched.Table2() {
		for _, m := range []*machine.Model{machine.Pipe1(), machine.Super2()} {
			p := Default()
			p.Machine = m
			p.Algorithm = al
			res := p.ScheduleProgram(insts)
			if res.Cycles <= 0 {
				t.Errorf("%s on %s: no cycles", al.Name, m.Name)
			}
		}
	}
}

func TestExplicitBuilderOverride(t *testing.T) {
	p := Default()
	p.Builder = dag.Landskov{}
	res := p.ScheduleProgram(testgen.Block(1, 15))
	if res.Blocks[0].DAG.Builder != "landskov" {
		t.Errorf("builder override ignored: %s", res.Blocks[0].DAG.Builder)
	}
}

func TestWindowing(t *testing.T) {
	p := Default()
	p.Window = 8
	res := p.ScheduleProgram(testgen.Block(2, 30))
	if len(res.Blocks) != 4 {
		t.Errorf("window 8 over 30 insts: %d blocks, want 4", len(res.Blocks))
	}
	for _, br := range res.Blocks {
		if br.Block.Len() > 8 {
			t.Errorf("block exceeds window: %d", br.Block.Len())
		}
	}
}

func TestFillSlotsEndToEnd(t *testing.T) {
	src := `
top:
	ld [%fp-4], %o0
	add %o0, 1, %o1
	mov 9, %l7
	cmp %o1, 0
	bne top
	nop
`
	p := Default()
	p.FillSlots = true
	out, res, err := p.ScheduleAsm(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.SlotsFilled != 1 {
		t.Fatalf("slots filled = %d, want 1\n%s", res.SlotsFilled, out)
	}
	if strings.Contains(out, "nop") {
		t.Errorf("nop survived delay-slot filling:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	lastLine := lines[len(lines)-1]
	if strings.Contains(lastLine, "bne") {
		t.Errorf("branch must not be the final instruction (slot follows):\n%s", out)
	}
	// Without the pass, the nop stays.
	p2 := Default()
	out2, res2, err := p2.ScheduleAsm(src)
	if err != nil {
		t.Fatal(err)
	}
	if res2.SlotsFilled != 0 || !strings.Contains(out2, "nop") {
		t.Error("FillSlots=false should leave the nop alone")
	}
}

func TestGlobalCarryAcrossCFG(t *testing.T) {
	// The first block launches a divide and branches; both successor
	// blocks consume the result immediately but carry independent
	// cover work. With GlobalCarry both inherit the in-flight latency
	// through the CFG (the taken edge reaches .Lalt, the fall-through
	// edge reaches the delay-slot block).
	src := `
	fdivd %f0, %f2, %f6
	cmp %o0, 0
	bne .Lalt
	nop
	faddd %f6, %f8, %f10
	stdf %f10, [%sp+64]
	mov 1, %o1
	mov 2, %o2
	mov 3, %o3
	mov 4, %o4
	mov 5, %o5
	ba .Lend
	nop
.Lalt:
	faddd %f6, %f8, %f12
	stdf %f12, [%sp+72]
	mov 6, %l0
	mov 7, %l1
	mov 8, %l2
	mov 9, %l3
.Lend:
	ret
	restore
`
	local := Default()
	local.Algorithm = sched.Warren()
	_, lres, err := local.ScheduleAsm(src)
	if err != nil {
		t.Fatal(err)
	}
	global := Default()
	global.Algorithm = sched.Warren()
	global.GlobalCarry = true
	_, gres, err := global.ScheduleAsm(src)
	if err != nil {
		t.Fatal(err)
	}
	// The carry must change the successor blocks' orders: the dependent
	// faddd is deferred behind the independent movs.
	changed := false
	for i := range lres.Blocks {
		lo, gl := lres.Blocks[i].Schedule.Order, gres.Blocks[i].Schedule.Order
		for k := range lo {
			if lo[k] != gl[k] {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("global carry had no effect on any block")
	}
	for i, br := range gres.Blocks {
		if !sched.Legal(br.DAG, br.Schedule) {
			t.Fatalf("block %d: illegal schedule under carry", i)
		}
	}
}

func TestRenamePipelineOption(t *testing.T) {
	src := `
hot:
	ld [%fp-4], %o0
	add %o0, 1, %o0
	st %o0, [%fp-8]
	ld [%fp-12], %o0
	add %o0, 2, %o0
	st %o0, [%fp-16]
`
	plain := Default()
	_, pres, err := plain.ScheduleAsm(src)
	if err != nil {
		t.Fatal(err)
	}
	ren := Default()
	ren.Rename = true
	_, rres, err := ren.ScheduleAsm(src)
	if err != nil {
		t.Fatal(err)
	}
	if rres.Cycles >= pres.Cycles {
		t.Fatalf("renaming did not help: %d vs %d cycles", rres.Cycles, pres.Cycles)
	}
	// Semantics: architecturally-visible memory must match.
	a := interp.NewState(3)
	if err := runBody(a, pres.Insts()); err != nil {
		t.Fatal(err)
	}
	b := interp.NewState(3)
	if err := runBody(b, rres.Insts()); err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Mem {
		if b.Mem[k] != v {
			t.Fatalf("mem[%#x] = %#x, want %#x", k, b.Mem[k], v)
		}
	}
}

func runBody(s *interp.State, insts []isa.Inst) error {
	for i := range insts {
		if insts[i].Op.IsCTI() {
			continue
		}
		if err := s.Exec(&insts[i]); err != nil {
			return err
		}
	}
	return nil
}

func TestReportRenders(t *testing.T) {
	res := Default().ScheduleProgram(testgen.Block(4, 12))
	rep := res.Report()
	if !strings.Contains(rep, "total:") || !strings.Contains(rep, "baseline") {
		t.Errorf("report malformed:\n%s", rep)
	}
}

func TestBlockResultInstsKeepLabel(t *testing.T) {
	insts := []isa.Inst{
		isa.Load(isa.LD, isa.FP, -4, isa.O0),
		isa.RIR(isa.ADD, isa.O0, 1, isa.O1),
		isa.MovI(5, isa.O2),
	}
	insts[0].Label = "top"
	res := Default().ScheduleProgram(insts)
	out := res.Insts()
	if out[0].Label != "top" {
		t.Errorf("label not on first scheduled instruction: %+v", out[0])
	}
	for _, in := range out[1:] {
		if in.Label != "" {
			t.Errorf("stray label on %v", in)
		}
	}
}
