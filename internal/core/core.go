// Package core is the high-level entry point of the library: it wires
// the substrates (ISA, assembler, basic blocks, resource interning,
// machine models) to the paper's contributions (DAG construction
// algorithms, heuristic annotation, list scheduling) behind one
// Pipeline type. The examples and command-line tools are thin layers
// over this package; the individual packages remain importable for
// finer control.
package core

import (
	"fmt"
	"strings"

	"daginsched/internal/asm"
	"daginsched/internal/block"
	"daginsched/internal/cfg"
	"daginsched/internal/dag"
	"daginsched/internal/delayslot"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/rename"
	"daginsched/internal/resource"
	"daginsched/internal/sched"
)

// Pipeline is a complete scheduling configuration.
type Pipeline struct {
	// Machine is the target model (default machine.Pipe1).
	Machine *machine.Model
	// Builder constructs the dependence DAG. When nil, the scheduling
	// algorithm's published construction (Table 2) is used, falling back
	// to table-building forward.
	Builder dag.Builder
	// MemModel selects memory disambiguation (default MemExprModel).
	MemModel resource.MemModel
	// Algorithm is the scheduling algorithm (default Krishnamurthy).
	Algorithm *sched.Algorithm
	// Window caps basic-block size (0 = no instruction window).
	Window int
	// FillSlots runs the delay-slot scheduler after block scheduling,
	// replacing nop delay slots with hoisted leaf instructions.
	FillSlots bool
	// Rename runs within-block register renaming before DAG
	// construction, deleting WAR/WAW arcs whose only cause is register
	//-name reuse (see package rename).
	Rename bool
	// GlobalCarry propagates operation latencies across basic blocks
	// along the control-flow graph (the paper's third future-work item):
	// each block inherits the join of its predecessors' in-flight
	// latencies as initial earliest-execution-times. Only forward
	// sequential algorithms exploit it. Ignored when Window is set.
	GlobalCarry bool
}

// Default returns the configuration used throughout the paper's
// Section 6 discussion: table-building construction on a single-issue
// pipelined RISC, scheduled by Krishnamurthy's algorithm.
func Default() *Pipeline {
	return &Pipeline{
		Machine:   machine.Pipe1(),
		MemModel:  resource.MemExprModel,
		Algorithm: sched.Krishnamurthy(),
	}
}

func (p *Pipeline) builder() dag.Builder {
	if p.Builder != nil {
		return p.Builder
	}
	return p.Algorithm.Builder()
}

// BlockResult is the outcome of scheduling one basic block.
type BlockResult struct {
	Block    *block.Block
	DAG      *dag.DAG
	Schedule *sched.Result
	Baseline *sched.Result // original program order on the same machine
}

// Improved reports the cycles saved relative to program order.
func (r *BlockResult) Improved() int32 {
	return r.Baseline.Cycles - r.Schedule.Cycles
}

// Insts returns the block's instructions in scheduled order, with the
// block's label kept on the (possibly new) first instruction.
func (r *BlockResult) Insts() []isa.Inst {
	out := make([]isa.Inst, 0, r.Block.Len())
	var label string
	if r.Block.Len() > 0 {
		label = r.Block.Insts[0].Label
	}
	for k, node := range r.Schedule.Order {
		in := r.Block.Insts[node]
		if k == 0 {
			in.Label = label
		} else {
			in.Label = ""
		}
		out = append(out, in)
	}
	return out
}

// ScheduleBlock builds the DAG for one block and schedules it.
func (p *Pipeline) ScheduleBlock(b *block.Block) *BlockResult {
	return p.scheduleBlock(b, nil)
}

func (p *Pipeline) scheduleBlock(b *block.Block, carry *sched.Carry) *BlockResult {
	if p.Rename {
		renamed := rename.Block(b.Insts)
		if renamed.Renamed > 0 {
			nb := *b
			nb.Insts = renamed.Insts
			b = &nb
		}
	}
	rt := resource.NewTable(p.MemModel)
	rt.PrepareBlock(b.Insts)
	d := p.builder().Build(b, p.Machine, rt)
	var r *sched.Result
	if carry != nil {
		r = p.Algorithm.RunWithCarry(d, p.Machine, carry)
	} else {
		r = p.Algorithm.Run(d, p.Machine)
	}
	return &BlockResult{
		Block:    b,
		DAG:      d,
		Schedule: r,
		Baseline: sched.InOrder(d, p.Machine),
	}
}

// ProgramResult is the outcome of scheduling a whole program.
type ProgramResult struct {
	Blocks   []*BlockResult
	Cycles   int64 // total scheduled cycles across blocks
	Baseline int64 // total program-order cycles
	// SlotsFilled counts nop delay slots replaced by the delay-slot
	// scheduler (when the pipeline enables it).
	SlotsFilled int

	final []isa.Inst // post-delay-slot program, when FillSlots ran
}

// ScheduleProgram partitions an instruction stream into basic blocks
// (applying the pipeline's instruction window, if any), schedules each
// block, and optionally runs the delay-slot filler over the result.
func (p *Pipeline) ScheduleProgram(insts []isa.Inst) *ProgramResult {
	out := &ProgramResult{}
	if p.GlobalCarry && p.Window == 0 {
		p.scheduleWithCFG(insts, out)
	} else {
		for _, b := range block.SplitWindow(block.Partition(insts), p.Window) {
			out.add(p.scheduleBlock(b, nil))
		}
	}
	if p.FillSlots {
		ds := delayslot.Fill(out.Insts(), p.Machine, p.MemModel)
		out.final = ds.Insts
		out.SlotsFilled = ds.Filled
	}
	return out
}

// scheduleWithCFG walks the blocks in stream order, joining each
// block's carry-in over its already-scheduled control-flow
// predecessors. Back edges (loops) and unknown predecessors contribute
// no information — the conservative single-pass approximation.
func (p *Pipeline) scheduleWithCFG(insts []isa.Inst, out *ProgramResult) {
	g := cfg.Build(insts)
	carryOut := make([]*sched.Carry, len(g.Blocks))
	for i, node := range g.Blocks {
		var carry *sched.Carry
		if !node.HasUnknownPred {
			ins := make([]*sched.Carry, 0, len(node.Preds))
			for _, pi := range node.Preds {
				if pi < i {
					ins = append(ins, carryOut[pi])
				}
			}
			if len(ins) > 0 {
				carry = sched.Join(ins...)
			}
		}
		br := p.scheduleBlock(node.Block, carry)
		carryOut[i] = sched.CarryOut(br.DAG, p.Machine, br.Schedule)
		out.add(br)
	}
}

func (out *ProgramResult) add(r *BlockResult) {
	out.Blocks = append(out.Blocks, r)
	out.Cycles += int64(r.Schedule.Cycles)
	out.Baseline += int64(r.Baseline.Cycles)
}

// Insts returns the whole scheduled program (after delay-slot filling,
// when the pipeline enabled it).
func (r *ProgramResult) Insts() []isa.Inst {
	if r.final != nil {
		return r.final
	}
	var out []isa.Inst
	for _, br := range r.Blocks {
		out = append(out, br.Insts()...)
	}
	for i := range out {
		out[i].Index = i
	}
	return out
}

// ScheduleAsm parses assembly text, schedules it, and returns the
// rescheduled assembly together with the program result.
func (p *Pipeline) ScheduleAsm(src string) (string, *ProgramResult, error) {
	insts, err := asm.Parse(src)
	if err != nil {
		return "", nil, err
	}
	res := p.ScheduleProgram(insts)
	return asm.Print(res.Insts()), res, nil
}

// Report renders a per-block summary of a program result.
func (r *ProgramResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s %10s %10s %8s\n",
		"block", "insts", "arcs", "baseline", "scheduled", "saved")
	fmt.Fprintln(&b, strings.Repeat("-", 62))
	for _, br := range r.Blocks {
		fmt.Fprintf(&b, "%-12s %8d %8d %10d %10d %8d\n",
			br.Block.Name, br.Block.Len(), br.DAG.NumArcs,
			br.Baseline.Cycles, br.Schedule.Cycles, br.Improved())
	}
	fmt.Fprintf(&b, "total: %d cycles scheduled vs %d in program order (%.1f%% saved)\n",
		r.Cycles, r.Baseline, 100*float64(r.Baseline-r.Cycles)/float64(max64(r.Baseline, 1)))
	return b.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
