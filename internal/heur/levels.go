package heur

import "daginsched/internal/dag"

// LevelLists is the Section 4 "level algorithm" data structure: "For
// forward DAG construction, root nodes are assigned a level of 0; other
// nodes are assigned the value one plus the maximum level of any
// parent. A linked list is maintained for each level."
//
// The paper's conclusion 4 finds this "no better for calculation of
// remaining static heuristics than a reverse walk of a linked list of
// the instructions"; BenchmarkIntermediatePass quantifies that claim by
// running Annot.ComputeBackward (reverse walk) against
// Annot.ComputeBackwardLevelLists.
type LevelLists struct {
	Level []int32   // level of each node
	Lists [][]int32 // node indices per level
	Max   int32     // maximum level
}

// BuildLevels computes levels with one forward pass and buckets nodes
// into per-level lists.
func BuildLevels(d *dag.DAG) *LevelLists {
	n := d.Len()
	ll := &LevelLists{Level: make([]int32, n)}
	for i := 0; i < n; i++ {
		var lvl int32
		for _, arc := range d.Nodes[i].Preds {
			if l := ll.Level[arc.From] + 1; l > lvl {
				lvl = l
			}
		}
		ll.Level[i] = lvl
		for int32(len(ll.Lists)) <= lvl {
			ll.Lists = append(ll.Lists, nil)
		}
		ll.Lists[lvl] = append(ll.Lists[lvl], int32(i))
		if lvl > ll.Max {
			ll.Max = lvl
		}
	}
	return ll
}

// ComputeBackwardLevelLists fills the to-leaf heuristics with the level
// algorithm: an outer loop from the maximum level to the minimum, an
// inner loop over each node on that level, and an innermost loop over
// each child. "Thus a parent can examine all its children and know that
// all descendants have been processed." Results are identical to
// ComputeBackward.
func (a *Annot) ComputeBackwardLevelLists() {
	n := a.D.Len()
	a.MaxPathToLeaf = make([]int32, n)
	a.MaxDelayToLeaf = make([]int32, n)
	ll := BuildLevels(a.D)
	for lvl := ll.Max; lvl >= 0; lvl-- {
		for _, i := range ll.Lists[lvl] {
			a.backwardNode(i)
		}
	}
}
