package heur

import (
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/dag"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/testgen"
)

func packTestAnnot(t *testing.T, seed int64, n int) *Annot {
	t.Helper()
	m := machine.Pipe1()
	b := &block.Block{Name: "pack", Insts: testgen.Block(seed, n)}
	for i := range b.Insts {
		b.Insts[i].Index = i
	}
	rt := resource.NewTable(resource.MemExprModel)
	rt.PrepareBlock(b.Insts)
	d := dag.TableBackward{}.Build(b, m, rt)
	d.Freeze()
	a := New(d, m)
	a.ComputeFusedCSR()
	return a
}

// TestPackSection6Order pins the tentpole invariant: comparing two
// packed words as integers is exactly the ranked lexicographic
// comparison (MaxPathToLeaf, MaxDelayToLeaf, SumDelayChild) with the
// min-node-index tiebreak, for every node pair.
func TestPackSection6Order(t *testing.T) {
	a := packTestAnnot(t, 11, 120)
	if !a.PrioExact {
		t.Fatal("packing inexact on an ordinary block")
	}
	n := a.D.Len()
	if len(a.PackedPrio) != n {
		t.Fatalf("PackedPrio covers %d nodes, want %d", len(a.PackedPrio), n)
	}
	// ranked compares i against j the way the winnow path would:
	// +1 when i wins, -1 when j wins.
	ranked := func(i, j int) int {
		keys := [][]int32{a.MaxPathToLeaf, a.MaxDelayToLeaf, a.SumDelayChild}
		for _, k := range keys {
			if k[i] != k[j] {
				if k[i] > k[j] {
					return 1
				}
				return -1
			}
		}
		if i < j {
			return 1
		}
		return -1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			want := ranked(i, j)
			got := -1
			if a.PackedPrio[i] > a.PackedPrio[j] {
				got = 1
			} else if a.PackedPrio[i] == a.PackedPrio[j] {
				t.Fatalf("nodes %d and %d pack to equal words", i, j)
			}
			if got != want {
				t.Fatalf("packed order of (%d, %d) = %d, ranked comparison says %d", i, j, got, want)
			}
		}
	}
}

// TestPackSection6Overflow drives a field past its 14-bit budget and
// checks the packing declares itself inexact instead of clamping.
func TestPackSection6Overflow(t *testing.T) {
	a := packTestAnnot(t, 3, 30)
	a.MaxDelayToLeaf[4] = 1 << 14 // one overflowing field poisons the block
	if a.PackSection6Prio() {
		t.Fatal("overflowing field packed as exact")
	}
	if a.PrioExact {
		t.Fatal("PrioExact true after overflow")
	}
	a.MaxDelayToLeaf[4] = -1 // negative values must also refuse
	if a.PackSection6Prio() {
		t.Fatal("negative field packed as exact")
	}
}

// TestPackInvalidatedByRecompute pins the staleness rule: any pass
// that rewrites a packed input clears PrioExact until the next pack.
func TestPackInvalidatedByRecompute(t *testing.T) {
	a := packTestAnnot(t, 7, 40)
	if !a.PrioExact {
		t.Fatal("packing inexact")
	}
	a.ComputeBackward()
	if a.PrioExact {
		t.Fatal("ComputeBackward left PrioExact set")
	}
	a.ComputeFusedCSR()
	if !a.PrioExact {
		t.Fatal("ComputeFusedCSR did not re-pack")
	}
	a.ComputeLocal()
	if a.PrioExact {
		t.Fatal("ComputeLocal left PrioExact set")
	}
}

// TestFusedCSRPackedArcsMatch runs the fused sweep over the packed and
// the 16-byte arc layouts and checks every output annotation matches.
func TestFusedCSRPackedArcsMatch(t *testing.T) {
	a := packTestAnnot(t, 19, 150) // packed layout (block well under limits)
	b := packTestAnnot(t, 19, 150)
	// Rerun b's sweep with the packed view suppressed by rebuilding the
	// reference annotations through the unfused passes.
	b.ComputeBackward()
	b.ComputeLocal()
	for i := 0; i < a.D.Len(); i++ {
		if a.MaxPathToLeaf[i] != b.MaxPathToLeaf[i] ||
			a.MaxDelayToLeaf[i] != b.MaxDelayToLeaf[i] ||
			a.SumDelayChild[i] != b.SumDelayChild[i] ||
			a.MaxDelayChild[i] != b.MaxDelayChild[i] ||
			a.InterlockChild[i] != b.InterlockChild[i] {
			t.Fatalf("node %d: packed-arc sweep diverges from unfused passes", i)
		}
	}
}
