package heur

import (
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/dag"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/testgen"
)

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestComputeFusedCSRMatchesObserver checks the CSR single-walk fused
// pass against the construction-fused observer: every annotation both
// fill must be identical, and the frozen flat paths of ComputeLocal /
// ComputeForward / ComputeBackward must match their slice-walking
// equivalents value-for-value.
func TestComputeFusedCSRMatchesObserver(t *testing.T) {
	m := machine.Pipe1()
	for _, n := range []int{0, 1, 13, 90, 250} {
		b := &block.Block{Name: "t", Insts: testgen.Block(int64(40+n), n)}
		for i := range b.Insts {
			b.Insts[i].Index = i
		}

		// Reference: backward table building with the fused observer.
		rt := resource.NewTable(resource.MemExprModel)
		rt.PrepareBlock(b.Insts)
		ref := New(nil, m)
		obs := &FusedBackward{A: ref, ComputeLocals: true}
		dag.TableBackward{Observer: obs}.Build(b, m, rt)

		// CSR: plain build, freeze, one flat reverse walk.
		rt2 := resource.NewTable(resource.MemExprModel)
		rt2.PrepareBlock(b.Insts)
		d := dag.TableBackward{}.Build(b, m, rt2)
		a := New(d, m)
		a.ComputeFusedCSR()
		if d.FrozenCSR() == nil {
			t.Fatalf("n=%d: ComputeFusedCSR did not freeze the DAG", n)
		}

		if !int32sEqual(a.MaxPathToLeaf, ref.MaxPathToLeaf) ||
			!int32sEqual(a.MaxDelayToLeaf, ref.MaxDelayToLeaf) ||
			!int32sEqual(a.ExecTime, ref.ExecTime) ||
			!int32sEqual(a.SumDelayChild, ref.SumDelayChild) ||
			!int32sEqual(a.MaxDelayChild, ref.MaxDelayChild) {
			t.Fatalf("n=%d: fused CSR annotations diverge from observer", n)
		}
		for i := range a.InterlockChild {
			if a.InterlockChild[i] != ref.InterlockChild[i] {
				t.Fatalf("n=%d: InterlockChild[%d] diverges", n, i)
			}
		}

		// Full passes, frozen vs unfrozen layout.
		rt3 := resource.NewTable(resource.MemExprModel)
		rt3.PrepareBlock(b.Insts)
		plain := New(dag.TableBackward{}.Build(b, m, rt3), m)
		plain.ComputeAll()
		frozen := New(d, m)
		frozen.ComputeAll()
		for _, pair := range [][2][]int32{
			{plain.SumDelayChild, frozen.SumDelayChild},
			{plain.MaxDelayChild, frozen.MaxDelayChild},
			{plain.SumDelayParent, frozen.SumDelayParent},
			{plain.MaxDelayParent, frozen.MaxDelayParent},
			{plain.EST, frozen.EST},
			{plain.MaxPathFromRoot, frozen.MaxPathFromRoot},
			{plain.MaxDelayFromRoot, frozen.MaxDelayFromRoot},
			{plain.MaxPathToLeaf, frozen.MaxPathToLeaf},
			{plain.MaxDelayToLeaf, frozen.MaxDelayToLeaf},
			{plain.LST, frozen.LST},
			{plain.Slack, frozen.Slack},
		} {
			if !int32sEqual(pair[0], pair[1]) {
				t.Fatalf("n=%d: ComputeAll diverges between layouts", n)
			}
		}
	}
}
