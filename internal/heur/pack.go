package heur

import "daginsched/internal/buf"

// Static priority packing. The engine's default ranking — Section 6's
// max path to a leaf, then max total delay to a leaf, then summed
// delays to children — reads only static annotations, all three of
// which the fused reverse CSR sweep computes. Packing each node's
// ranked values into one uint64 *while those values are hot* turns the
// scheduler's entire selection problem into unsigned integer
// comparisons: the scheduler keeps its ready list as a max-heap over
// the packed words and never evaluates a heuristic again.
//
// Word layout (most significant first):
//
//	bits 50..63  max path length to a leaf   (rank 1, 14 bits)
//	bits 36..49  max total delay to a leaf   (rank 2, 14 bits)
//	bits 22..35  summed delays to children   (rank 3, 14 bits)
//	bits  0..21  ^node index                 (tiebreak, 22 bits)
//
// Comparing two words as integers is exactly the ranked lexicographic
// comparison, and the complemented node index in the low bits folds
// the winnower's final min-index tiebreak into the same compare — two
// distinct nodes never pack to equal words, so any max-finding
// structure picks the same node the winnow path would.
//
// The packing is only used when it is *exact*: every field value in
// [0, 2^14) and the node count within the 22-bit tiebreak. A block
// that overflows either bound (PrioExact false) simply keeps the
// winnow path; schedules are byte-identical either way, which is what
// the engine's packed-selection identity gate enforces.

const (
	// PrioFieldBits is the width of each ranked-key field.
	PrioFieldBits = 14
	// PrioTieBits is the width of the low-order node-index tiebreak.
	PrioTieBits = 22

	prioFieldMax = 1<<PrioFieldBits - 1
	prioTieMax   = 1<<PrioTieBits - 1
)

// PackedRankingKeys returns the ranked static keys a packed priority
// word encodes, most significant first. Selectors whose ranking equals
// this list (all Max-direction) can be served by packed comparisons.
func PackedRankingKeys() [3]Key {
	return [3]Key{MaxPathToLeaf, MaxDelayToLeaf, DelaysToChildren}
}

// PackSection6Prio fills PackedPrio from MaxPathToLeaf, MaxDelayToLeaf
// and SumDelayChild (which must already be computed) and reports
// whether the packing is exact. ComputeFusedCSR calls it as the tail
// of the fused sweep; pipelines that compute the same annotations
// separately (the n²-direct path) call it directly.
//
//sched:noalloc
func (a *Annot) PackSection6Prio() bool {
	n := a.D.Len()
	a.PrioExact = false
	if n > prioTieMax+1 {
		return false
	}
	a.PackedPrio = buf.Uint64(a.PackedPrio, n)
	for i := 0; i < n; i++ {
		f1, f2, f3 := a.MaxPathToLeaf[i], a.MaxDelayToLeaf[i], a.SumDelayChild[i]
		if uint32(f1)|uint32(f2)|uint32(f3) > prioFieldMax {
			// A negative value wraps to a huge uint32 and lands here too.
			return false
		}
		a.PackedPrio[i] = uint64(f1)<<(2*PrioFieldBits+PrioTieBits) |
			uint64(f2)<<(PrioFieldBits+PrioTieBits) |
			uint64(f3)<<PrioTieBits |
			uint64(prioTieMax-i)
	}
	a.PrioExact = true
	return true
}
