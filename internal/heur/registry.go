// Package heur implements the 26 instruction-scheduling heuristics
// surveyed in Table 1 of Smotherman et al. (MICRO-24, 1991), the static
// annotation passes that compute them, and both intermediate-pass
// mechanisms of Section 4 (level lists vs. a reverse walk of the
// instruction list).
//
// The registry below is the paper's Table 1, kept live: the survey
// tables printed by cmd/heursurvey are generated from these
// descriptors, so the documentation cannot drift from the code. Static
// values live in Annot; dynamic heuristics ("v" pass) are evaluated
// inside package sched, which owns the scheduling state they depend on.
package heur

// Category is one of the six broad classifications of Section 1.
type Category uint8

const (
	// StallBehavior heuristics attempt to avoid stall cycles.
	StallBehavior Category = iota
	// InstClass heuristics balance superscalar instruction classes.
	InstClass
	// CriticalPath heuristics identify instructions to schedule early.
	CriticalPath
	// Uncovering heuristics try to enlarge the candidate list.
	Uncovering
	// Structural heuristics balance progress through the DAG.
	Structural
	// RegisterUsage heuristics reduce register pressure before allocation.
	RegisterUsage

	// NumCategories is the count of heuristic categories.
	NumCategories = int(RegisterUsage) + 1
)

// String returns the category name as Table 1 prints it.
func (c Category) String() string {
	switch c {
	case StallBehavior:
		return "stall behavior"
	case InstClass:
		return "inst. class"
	case CriticalPath:
		return "critical path"
	case Uncovering:
		return "uncovering"
	case Structural:
		return "structural"
	case RegisterUsage:
		return "register usage"
	}
	return "category?"
}

// Pass is Table 1's calculation-method code.
type Pass uint8

const (
	// PassA : determined when a node or arc is added to the DAG.
	PassA Pass = iota
	// PassF : requires a forward pass over the basic block.
	PassF
	// PassB : requires a backward pass over the basic block.
	PassB
	// PassFB : requires both (slack).
	PassFB
	// PassV : requires node visitation during the scheduling pass.
	PassV
)

// String returns the paper's single-letter code.
func (p Pass) String() string {
	switch p {
	case PassA:
		return "a"
	case PassF:
		return "f"
	case PassB:
		return "b"
	case PassFB:
		return "f+b"
	case PassV:
		return "v"
	}
	return "?"
}

// Key names a heuristic. Keys are stable identifiers used by scheduler
// configurations (Table 2) and CLI flags.
type Key string

// The 26 heuristics of Table 1.
const (
	// Stall behavior.
	InterlockWithPrev Key = "interlock-prev"  // interlock with previous instruction
	EarliestExecTime  Key = "earliest-time"   // earliest execution time
	InterlockChild    Key = "interlock-child" // interlock with child
	ExecTime          Key = "exec-time"       // execution time

	// Instruction class.
	AlternateType Key = "alternate-type" // alternate type
	FPUBusy       Key = "fpu-busy"       // busy times for flt. pt. function units

	// Critical path.
	MaxPathToLeaf    Key = "max-path-leaf"  // max path length to a leaf
	MaxDelayToLeaf   Key = "max-delay-leaf" // max total delay to a leaf
	MaxPathFromRoot  Key = "max-path-root"  // max path length from root
	MaxDelayFromRoot Key = "max-delay-root" // max total delay from root
	EarliestStart    Key = "est"            // earliest start time
	LatestStart      Key = "lst"            // latest start time
	Slack            Key = "slack"          // slack (= LST-EST)

	// Uncovering.
	NumChildren      Key = "num-children"      // #children
	DelaysToChildren Key = "delays-children"   // φ delays to children
	NumSingleParent  Key = "num-single-parent" // #single-parent children
	DelaysSingleP    Key = "delays-single-par" // sum of delays to single-parent children
	NumUncovered     Key = "num-uncovered"     // #uncovered children

	// Structural.
	NumParents        Key = "num-parents"     // #parents
	DelaysFromParents Key = "delays-parents"  // φ delays from parents
	NumDescendants    Key = "num-descendants" // #descendants
	SumExecDesc       Key = "sum-exec-desc"   // sum of execution times of descendants

	// Register usage.
	RegsBorn   Key = "regs-born"   // #registers born
	RegsKilled Key = "regs-killed" // #registers killed
	Liveness   Key = "liveness"    // liveness
	Birthing   Key = "birthing"    // birthing instruction

	// OriginalOrder is not one of the 26 Table 1 heuristics but appears
	// as the final tiebreak in Table 2's Tiemann and Warren rows.
	OriginalOrder Key = "original-order"
)

// Descriptor is one Table 1 row.
type Descriptor struct {
	Key      Key
	Name     string   // Table 1 wording
	Category Category // six broad classifications
	Timing   bool     // timing-based (right column) vs relationship-based
	Pass     Pass     // calculation method
	// TransitiveSensitive marks the "**" entries: "calculation is
	// affected by the presence of transitive arcs".
	TransitiveSensitive bool
}

// Registry is Table 1, in the paper's row order.
var Registry = []Descriptor{
	{InterlockWithPrev, "interlock with previous inst.", StallBehavior, false, PassV, false},
	{EarliestExecTime, "earliest execution time", StallBehavior, true, PassV, true},
	{InterlockChild, "interlock with child", StallBehavior, false, PassA, true},
	{ExecTime, "execution time", StallBehavior, true, PassA, false},

	{AlternateType, "alternate type", InstClass, false, PassV, false},
	{FPUBusy, "busy times for flt. pt. function units", InstClass, true, PassV, false},

	{MaxPathToLeaf, "max path length to a leaf", CriticalPath, false, PassB, false},
	{MaxDelayToLeaf, "max total delay to a leaf", CriticalPath, true, PassB, false},
	{MaxPathFromRoot, "max path length from root", CriticalPath, false, PassF, false},
	{MaxDelayFromRoot, "max total delay from root", CriticalPath, true, PassF, false},
	{EarliestStart, "earliest start time (EST)", CriticalPath, true, PassF, true},
	{LatestStart, "latest start time (LST)", CriticalPath, true, PassB, true},
	{Slack, "slack (= LST-EST)", CriticalPath, true, PassFB, true},

	{NumChildren, "#children", Uncovering, false, PassA, true},
	{DelaysToChildren, "φ delays to children", Uncovering, true, PassA, true},
	{NumSingleParent, "#single-parent children", Uncovering, false, PassV, false},
	{DelaysSingleP, "sum of delays to single-parent children", Uncovering, true, PassV, false},
	{NumUncovered, "#uncovered children", Uncovering, false, PassV, false},

	{NumParents, "#parents", Structural, false, PassA, true},
	{DelaysFromParents, "φ delays from parents", Structural, true, PassA, true},
	{NumDescendants, "#descendants", Structural, false, PassB, false},
	{SumExecDesc, "sum of execution times of descendants", Structural, true, PassB, false},

	{RegsBorn, "#registers born", RegisterUsage, false, PassA, false},
	{RegsKilled, "#registers killed", RegisterUsage, false, PassA, false},
	{Liveness, "liveness", RegisterUsage, false, PassA, false},
	{Birthing, "birthing instruction", RegisterUsage, false, PassA, false},
}

// ByKey returns the descriptor for a key.
func ByKey(k Key) (Descriptor, bool) {
	for _, d := range Registry {
		if d.Key == k {
			return d, true
		}
	}
	return Descriptor{}, false
}

// ByCategory returns Table 1's rows for one category, in order.
func ByCategory(c Category) []Descriptor {
	var out []Descriptor
	for _, d := range Registry {
		if d.Category == c {
			out = append(out, d)
		}
	}
	return out
}
