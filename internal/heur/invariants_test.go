package heur

import (
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/dag"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/testgen"
)

// TestESTEqualsMaxDelayFromRoot documents a structural identity of this
// implementation: with arc-delay-based EST (which coincides with
// Schlansker's latency form on RAW arcs and stays exact on WAR arcs),
// EST and max-total-delay-from-root are the same recurrence. Table 1
// lists both because their *roles* differ — EST feeds LST and slack.
func TestESTEqualsMaxDelayFromRoot(t *testing.T) {
	m := machine.Pipe1()
	for seed := int64(0); seed < 20; seed++ {
		d := build(t, dag.TableForward{}, testgen.Block(seed, 25))
		a := New(d, m)
		a.ComputeForward()
		for i := 0; i < d.Len(); i++ {
			if a.EST[i] != a.MaxDelayFromRoot[i] {
				t.Fatalf("seed %d node %d: EST %d != MaxDelayFromRoot %d",
					seed, i, a.EST[i], a.MaxDelayFromRoot[i])
			}
		}
	}
}

// TestPrunedDAGUnderstatesTimingHeuristics generalizes Figure 1: on the
// transitive-arc-free DAG every timing heuristic can only shrink
// relative to the full DAG — never grow — because arcs were only
// removed.
func TestPrunedDAGUnderstatesTimingHeuristics(t *testing.T) {
	m := machine.Pipe1()
	for seed := int64(40); seed < 60; seed++ {
		insts := testgen.Block(seed, 22)
		full := New(build(t, dag.TableForward{}, insts), m).ComputeAll()
		pruned := New(build(t, dag.Landskov{}, insts), m).ComputeAll()
		for i := range full.EST {
			if pruned.EST[i] > full.EST[i] {
				t.Fatalf("seed %d node %d: pruned EST %d > full %d",
					seed, i, pruned.EST[i], full.EST[i])
			}
			if pruned.MaxDelayToLeaf[i] > full.MaxDelayToLeaf[i] {
				t.Fatalf("seed %d node %d: pruned MDTL grew", seed, i)
			}
			if pruned.MaxPathToLeaf[i] > full.MaxPathToLeaf[i] {
				t.Fatalf("seed %d node %d: pruned MPTL grew", seed, i)
			}
		}
	}
}

// TestDescendantsInsensitiveToTransitiveArcs: Table 1 does NOT mark
// #descendants as transitive-sensitive — removing transitive arcs must
// leave it unchanged, because reachability is unchanged.
func TestDescendantsInsensitiveToTransitiveArcs(t *testing.T) {
	m := machine.Pipe1()
	for seed := int64(70); seed < 85; seed++ {
		insts := testgen.Block(seed, 20)
		full := New(build(t, dag.N2Forward{}, insts), m)
		full.ComputeDescendants()
		pruned := New(build(t, dag.Landskov{}, insts), m)
		pruned.ComputeDescendants()
		for i := range full.NumDesc {
			if full.NumDesc[i] != pruned.NumDesc[i] {
				t.Fatalf("seed %d node %d: #descendants changed %d -> %d",
					seed, i, full.NumDesc[i], pruned.NumDesc[i])
			}
		}
	}
}

// TestChildrenSensitiveToTransitiveArcs: Table 1 DOES mark #children —
// "the number of children is artificially increased by each transitive
// arc" — so n² must exceed Landskov somewhere on dependence-dense blocks.
func TestChildrenSensitiveToTransitiveArcs(t *testing.T) {
	m := machine.Pipe1()
	grew := false
	for seed := int64(70); seed < 85; seed++ {
		insts := testgen.Block(seed, 20)
		full := build(t, dag.N2Forward{}, insts)
		pruned := build(t, dag.Landskov{}, insts)
		_ = m
		for i := 0; i < full.Len(); i++ {
			if full.Nodes[i].NumChildren() > pruned.Nodes[i].NumChildren() {
				grew = true
			}
			if full.Nodes[i].NumChildren() < pruned.Nodes[i].NumChildren() {
				t.Fatalf("seed %d node %d: n² has fewer children than landskov", seed, i)
			}
		}
	}
	if !grew {
		t.Fatal("no transitive-arc inflation observed; test inputs too sparse")
	}
}

// TestMaxPathFromRootMatchesLevels: the level number of Section 4's
// level algorithm is exactly max path length from root.
func TestMaxPathFromRootMatchesLevels(t *testing.T) {
	for seed := int64(90); seed < 100; seed++ {
		d := build(t, dag.TableForward{}, testgen.Block(seed, 25))
		a := New(d, machine.Pipe1())
		a.ComputeForward()
		ll := BuildLevels(d)
		for i := 0; i < d.Len(); i++ {
			if a.MaxPathFromRoot[i] != ll.Level[i] {
				t.Fatalf("seed %d node %d: MPFR %d != level %d",
					seed, i, a.MaxPathFromRoot[i], ll.Level[i])
			}
		}
	}
}

// TestFusedWithoutLocals: the observer variant that skips the add-arc
// heuristics must still fill the to-leaf values.
func TestFusedWithoutLocals(t *testing.T) {
	m := machine.Pipe1()
	insts := testgen.Block(11, 15)
	fused := &FusedBackward{A: New(nil, m)}
	b := &block.Block{Name: "t", Insts: insts}
	rt := resource.NewTable(resource.MemExprModel)
	rt.PrepareBlock(b.Insts)
	d := dag.TableBackward{Observer: fused}.Build(b, m, rt)
	if fused.A.MaxPathToLeaf == nil || fused.A.MaxDelayToLeaf == nil {
		t.Fatal("to-leaf heuristics missing")
	}
	if fused.A.ExecTime != nil {
		t.Fatal("locals computed despite ComputeLocals=false")
	}
	sep := New(d, m)
	sep.ComputeBackward()
	for i := 0; i < d.Len(); i++ {
		if fused.A.MaxDelayToLeaf[i] != sep.MaxDelayToLeaf[i] {
			t.Fatalf("node %d: fused %d != separate %d",
				i, fused.A.MaxDelayToLeaf[i], sep.MaxDelayToLeaf[i])
		}
	}
}
