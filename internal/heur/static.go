package heur

import (
	"daginsched/internal/buf"
	"daginsched/internal/dag"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
)

// Annot holds the static heuristic annotations of one DAG. Slices are
// nil until the corresponding Compute method runs; they are indexed by
// node. All values follow the definitions in Section 3 of the paper.
//
// An Annot may be reused across blocks: point D at the new DAG and
// rerun the Compute methods — each pass recycles its slices' capacity,
// so a per-worker Annot annotating a stream of same-scale blocks
// performs no steady-state allocations.
type Annot struct {
	D *dag.DAG
	M *machine.Model

	// Add-arc ("a") heuristics. NumChildren/NumParents live on the DAG
	// nodes themselves (arc-list lengths).
	ExecTime       []int32 // operation latency of the node
	InterlockChild []bool  // any outgoing arc with delay > 1
	SumDelayChild  []int32 // φ=sum delays to children
	MaxDelayChild  []int32 // φ=max delays to children
	SumDelayParent []int32 // φ=sum delays from parents
	MaxDelayParent []int32 // φ=max delays from parents

	// Forward ("f") heuristics.
	EST              []int32 // earliest start time (Schlansker: node latencies)
	MaxPathFromRoot  []int32
	MaxDelayFromRoot []int32 // arc-delay weighted

	// Backward ("b") heuristics.
	MaxPathToLeaf  []int32
	MaxDelayToLeaf []int32
	LST            []int32 // latest start time (requires EST first)
	Slack          []int32 // LST - EST; zero on the critical path
	NumDesc        []int32 // #descendants (reachability popcount - 1)
	SumExecDesc    []int32 // execution times summed over descendants

	// Register-usage ("a") heuristics.
	RegsBorn   []int32 // register definitions live past this node
	RegsKilled []int32 // register uses whose live range ends here
	Liveness   []int32 // net register-pressure effect (born - killed)

	// PackedPrio is the per-node packed static priority word (see
	// pack.go): the Section 6 ranking folded into one uint64 whose
	// integer order is the ranked lexicographic order with the
	// min-node-index tiebreak. Valid only while PrioExact is true;
	// every Compute pass that rewrites one of its inputs clears
	// PrioExact, and PackSection6Prio (run by ComputeFusedCSR) sets it
	// when every field fits its bit budget.
	PackedPrio []uint64
	PrioExact  bool
}

// New returns an empty annotation set for d under machine model m.
func New(d *dag.DAG, m *machine.Model) *Annot {
	return &Annot{D: d, M: m}
}

// ComputeAll runs every static pass.
func (a *Annot) ComputeAll() *Annot {
	a.ComputeLocal()
	a.ComputeForward()
	a.ComputeBackward()
	a.ComputeCritical()
	a.ComputeDescendants()
	a.ComputeRegisterUsage()
	return a
}

// ComputeLocal fills the add-arc ("a") heuristics. In the paper these
// are maintained by add_arc during construction; recomputing them from
// the final arc lists is equivalent and keeps the builders lean. On a
// frozen DAG both directions are single forward walks over the flat
// CSR arc arrays (grouped by From and To respectively), so no per-node
// slice header is touched.
func (a *Annot) ComputeLocal() {
	n := a.D.Len()
	a.PrioExact = false // SumDelayChild is a packed-priority input
	a.ExecTime = buf.Int32(a.ExecTime, n)
	a.InterlockChild = buf.Bool(a.InterlockChild, n)
	a.SumDelayChild = buf.Int32(a.SumDelayChild, n)
	a.MaxDelayChild = buf.Int32(a.MaxDelayChild, n)
	a.SumDelayParent = buf.Int32(a.SumDelayParent, n)
	a.MaxDelayParent = buf.Int32(a.MaxDelayParent, n)
	for i := 0; i < n; i++ {
		a.ExecTime[i] = int32(a.M.Latency(a.D.Nodes[i].Inst.Op))
	}
	if c := a.D.FrozenCSR(); c != nil {
		for _, arc := range c.SuccArcs() {
			i := arc.From
			a.SumDelayChild[i] += arc.Delay
			if arc.Delay > a.MaxDelayChild[i] {
				a.MaxDelayChild[i] = arc.Delay
			}
			if arc.Delay > 1 {
				a.InterlockChild[i] = true
			}
		}
		for _, arc := range c.PredArcs() {
			i := arc.To
			a.SumDelayParent[i] += arc.Delay
			if arc.Delay > a.MaxDelayParent[i] {
				a.MaxDelayParent[i] = arc.Delay
			}
		}
		return
	}
	for i := 0; i < n; i++ {
		node := &a.D.Nodes[i]
		for _, arc := range node.Succs {
			a.SumDelayChild[i] += arc.Delay
			if arc.Delay > a.MaxDelayChild[i] {
				a.MaxDelayChild[i] = arc.Delay
			}
			if arc.Delay > 1 {
				a.InterlockChild[i] = true
			}
		}
		for _, arc := range node.Preds {
			a.SumDelayParent[i] += arc.Delay
			if arc.Delay > a.MaxDelayParent[i] {
				a.MaxDelayParent[i] = arc.Delay
			}
		}
	}
}

// ComputeForward fills the forward-pass ("f") heuristics by walking the
// instruction list in program order, which is a topological order of
// every DAG this package sees (builders emit forward arcs only).
func (a *Annot) ComputeForward() {
	n := a.D.Len()
	a.EST = buf.Int32(a.EST, n)
	a.MaxPathFromRoot = buf.Int32(a.MaxPathFromRoot, n)
	a.MaxDelayFromRoot = buf.Int32(a.MaxDelayFromRoot, n)
	if c := a.D.FrozenCSR(); c != nil {
		// The flat predecessor array is grouped by To in ascending node
		// order, so one forward sweep over it visits every node's
		// parents after those parents are final — the same topological
		// guarantee the per-node walk relies on.
		for _, arc := range c.PredArcs() {
			i, p := arc.To, arc.From
			if est := a.EST[p] + arc.Delay; est > a.EST[i] {
				a.EST[i] = est
			}
			if l := a.MaxPathFromRoot[p] + 1; l > a.MaxPathFromRoot[i] {
				a.MaxPathFromRoot[i] = l
			}
			if d := a.MaxDelayFromRoot[p] + arc.Delay; d > a.MaxDelayFromRoot[i] {
				a.MaxDelayFromRoot[i] = d
			}
		}
		return
	}
	for i := 0; i < n; i++ {
		node := &a.D.Nodes[i]
		for _, arc := range node.Preds {
			p := arc.From
			// Schlansker's EST is max of earliest_start(p) + latency(p);
			// we use the arc delay, which equals latency(p) on RAW arcs
			// and stays accurate on 1-cycle WAR arcs.
			if est := a.EST[p] + arc.Delay; est > a.EST[i] {
				a.EST[i] = est
			}
			if l := a.MaxPathFromRoot[p] + 1; l > a.MaxPathFromRoot[i] {
				a.MaxPathFromRoot[i] = l
			}
			if d := a.MaxDelayFromRoot[p] + arc.Delay; d > a.MaxDelayFromRoot[i] {
				a.MaxDelayFromRoot[i] = d
			}
		}
	}
}

// ComputeBackward fills max path/delay to a leaf with a reverse walk of
// the instruction list — the mechanism Section 4 recommends over level
// lists ("any reverse topological sort, including a reverse scan of the
// original instructions in the basic block, produces the same result").
func (a *Annot) ComputeBackward() {
	n := a.D.Len()
	a.PrioExact = false // the to-leaf passes are packed-priority inputs
	a.MaxPathToLeaf = buf.Int32(a.MaxPathToLeaf, n)
	a.MaxDelayToLeaf = buf.Int32(a.MaxDelayToLeaf, n)
	if c := a.D.FrozenCSR(); c != nil {
		// One reverse walk over the flat successor-arc array: arcs are
		// grouped by From in ascending order, so walking the array
		// backward visits each node's arcs after all of its children
		// are final — no per-node slice header is ever loaded.
		arcs := c.SuccArcs()
		for k := len(arcs) - 1; k >= 0; k-- {
			arc := &arcs[k]
			i := arc.From
			if l := a.MaxPathToLeaf[arc.To] + 1; l > a.MaxPathToLeaf[i] {
				a.MaxPathToLeaf[i] = l
			}
			if d := a.MaxDelayToLeaf[arc.To] + arc.Delay; d > a.MaxDelayToLeaf[i] {
				a.MaxDelayToLeaf[i] = d
			}
		}
		return
	}
	for i := n - 1; i >= 0; i-- {
		a.backwardNode(int32(i))
	}
}

// ComputeFusedCSR fills the backward to-leaf heuristics and the
// child-side add-arc locals in one reverse walk over the frozen CSR
// view — the Annot-level counterpart of the construction-fused
// FusedBackward observer. It freezes the DAG if the builder did not.
// The engine's CSR pipeline uses it as the whole heuristic step: the
// paper's "single cheap walk" (Section 4), here over two flat arrays
// (nodes, arcs) with no per-node slice headers in the loop.
//
// It fills exactly the annotations FusedBackward with ComputeLocals
// fills (MaxPathToLeaf, MaxDelayToLeaf, ExecTime, InterlockChild,
// SumDelayChild, MaxDelayChild), with identical values, and finishes
// by packing the Section 6 priority words (PackSection6Prio) while the
// freshly computed inputs are still cache-hot.
//
// When the frozen CSR carries the packed 8-byte arc records the sweep
// streams those instead of the 16-byte arcs — half the memory traffic
// on the repo's single hottest loop. The per-node span walk visits the
// same arcs with the same finality guarantee (a node's span is only
// entered after every span below it is done), and every accumulation
// is order-independent, so the values are identical.
//
//sched:noalloc
func (a *Annot) ComputeFusedCSR() {
	c := a.D.Freeze()
	n := a.D.Len()
	a.MaxPathToLeaf = buf.Int32(a.MaxPathToLeaf, n)
	a.MaxDelayToLeaf = buf.Int32(a.MaxDelayToLeaf, n)
	a.ExecTime = buf.Int32(a.ExecTime, n)
	a.InterlockChild = buf.Bool(a.InterlockChild, n)
	a.SumDelayChild = buf.Int32(a.SumDelayChild, n)
	a.MaxDelayChild = buf.Int32(a.MaxDelayChild, n)
	for i := 0; i < n; i++ {
		a.ExecTime[i] = int32(a.M.Latency(a.D.Nodes[i].Inst.Op))
	}
	if c.HasPacked() {
		packed := c.PackedSuccArcs()
		for i := int32(n) - 1; i >= 0; i-- {
			lo, hi := c.SuccSpan(i)
			for _, p := range packed[lo:hi] {
				to, delay := p.Node(), c.Delay(p)
				if l := a.MaxPathToLeaf[to] + 1; l > a.MaxPathToLeaf[i] {
					a.MaxPathToLeaf[i] = l
				}
				if d := a.MaxDelayToLeaf[to] + delay; d > a.MaxDelayToLeaf[i] {
					a.MaxDelayToLeaf[i] = d
				}
				a.SumDelayChild[i] += delay
				if delay > a.MaxDelayChild[i] {
					a.MaxDelayChild[i] = delay
				}
				if delay > 1 {
					a.InterlockChild[i] = true
				}
			}
		}
		a.PackSection6Prio()
		return
	}
	arcs := c.SuccArcs()
	for k := len(arcs) - 1; k >= 0; k-- {
		arc := &arcs[k]
		i := arc.From
		if l := a.MaxPathToLeaf[arc.To] + 1; l > a.MaxPathToLeaf[i] {
			a.MaxPathToLeaf[i] = l
		}
		if d := a.MaxDelayToLeaf[arc.To] + arc.Delay; d > a.MaxDelayToLeaf[i] {
			a.MaxDelayToLeaf[i] = d
		}
		a.SumDelayChild[i] += arc.Delay
		if arc.Delay > a.MaxDelayChild[i] {
			a.MaxDelayChild[i] = arc.Delay
		}
		if arc.Delay > 1 {
			a.InterlockChild[i] = true
		}
	}
	a.PackSection6Prio()
}

// backwardNode computes the to-leaf heuristics of node i assuming every
// child is final. Shared by the reverse walk, the level-lists engine
// and the fused construction observer.
func (a *Annot) backwardNode(i int32) {
	for _, arc := range a.D.Nodes[i].Succs {
		if l := a.MaxPathToLeaf[arc.To] + 1; l > a.MaxPathToLeaf[i] {
			a.MaxPathToLeaf[i] = l
		}
		if d := a.MaxDelayToLeaf[arc.To] + arc.Delay; d > a.MaxDelayToLeaf[i] {
			a.MaxDelayToLeaf[i] = d
		}
	}
}

// ComputeCritical fills LST and slack. It needs EST (running
// ComputeForward first if necessary) because "the latest start time of
// a block-terminating dummy node is the value assigned to that node for
// earliest start time; therefore, this calculation can only begin after
// the forward pass".
func (a *Annot) ComputeCritical() {
	if a.EST == nil {
		a.ComputeForward()
	}
	n := a.D.Len()
	a.LST = buf.Int32(a.LST, n)
	a.Slack = buf.Int32(a.Slack, n)
	if n == 0 {
		return
	}
	// The dummy terminating node's EST: completion time of the whole DAG.
	var total int32
	for i := 0; i < n; i++ {
		if fin := a.EST[i] + int32(a.M.Latency(a.D.Nodes[i].Inst.Op)); fin > total {
			total = fin
		}
	}
	for i := n - 1; i >= 0; i-- {
		lat := int32(a.M.Latency(a.D.Nodes[i].Inst.Op))
		lst := total - lat
		for _, arc := range a.D.Nodes[i].Succs {
			if v := a.LST[arc.To] - arc.Delay; v < lst {
				lst = v
			}
		}
		a.LST[i] = lst
		a.Slack[i] = a.LST[i] - a.EST[i]
	}
}

// ComputeDescendants fills #descendants and the summed execution times
// of descendants using reachability bit maps, the paper's recommended
// method ("the #descendants is then merely the population count on the
// reachability bit map ... minus one").
func (a *Annot) ComputeDescendants() {
	n := a.D.Len()
	a.NumDesc = buf.Int32(a.NumDesc, n)
	a.SumExecDesc = buf.Int32(a.SumExecDesc, n)
	if a.ExecTime == nil {
		a.ComputeLocal()
	}
	reach := a.D.Reachability()
	for i := 0; i < n; i++ {
		a.NumDesc[i] = int32(reach[i].Count() - 1)
		var sum int32
		reach[i].ForEach(func(j int) {
			sum += a.ExecTime[j]
		})
		a.SumExecDesc[i] = sum - a.ExecTime[i]
	}
}

// ComputeRegisterUsage fills the prepass register-pressure heuristics.
// A register definition is "born" when some later instruction in the
// block reads it; a use is a "kill" when it is the last reference to
// that definition's value in the block. Liveness is Warren's net
// pressure effect, simplified to born − killed.
func (a *Annot) ComputeRegisterUsage() {
	n := a.D.Len()
	a.RegsBorn = buf.Int32(a.RegsBorn, n)
	a.RegsKilled = buf.Int32(a.RegsKilled, n)
	a.Liveness = buf.Int32(a.Liveness, n)
	// Walk backward tracking, per register, whether the value current at
	// each point is read by some later instruction.
	var readLater [64]bool // integer + FP registers
	var uses, defs []isa.ResRef
	for i := n - 1; i >= 0; i-- {
		in := a.D.Nodes[i].Inst
		defs = in.AppendDefs(defs[:0])
		for _, d := range defs {
			if d.Kind != isa.RReg && d.Kind != isa.RFReg {
				continue
			}
			if readLater[d.Reg] {
				a.RegsBorn[i]++
			}
			// Readers below i belong to this definition's value; the
			// value live before it has no readers past this point.
			readLater[d.Reg] = false
		}
		uses = in.AppendUses(uses[:0])
		for _, u := range uses {
			if u.Kind != isa.RReg && u.Kind != isa.RFReg {
				continue
			}
			if !readLater[u.Reg] {
				// First reader found walking backward = last reader in
				// program order: this use kills the live range.
				a.RegsKilled[i]++
				readLater[u.Reg] = true
			}
		}
	}
	for i := 0; i < n; i++ {
		a.Liveness[i] = a.RegsBorn[i] - a.RegsKilled[i]
	}
}

// FusedBackward is a dag.BackwardObserver that computes the to-leaf
// heuristics while the backward table-building pass constructs the DAG —
// the paper's third approach, which "eliminates child revisitation
// overhead" (Section 6): by the time a node is finalized all of its
// children already carry final values, so no separate intermediate pass
// is needed.
type FusedBackward struct {
	A *Annot
	// ComputeLocals additionally fills the add-arc heuristics used by
	// Section 6's scheduling pipeline (max delay to child, interlock).
	ComputeLocals bool
}

// Start implements dag.BackwardObserver.
func (f *FusedBackward) Start(d *dag.DAG) {
	n := d.Len()
	f.A.D = d
	f.A.PrioExact = false // the observer rewrites packed-priority inputs
	f.A.MaxPathToLeaf = buf.Int32(f.A.MaxPathToLeaf, n)
	f.A.MaxDelayToLeaf = buf.Int32(f.A.MaxDelayToLeaf, n)
	if f.ComputeLocals {
		f.A.ExecTime = buf.Int32(f.A.ExecTime, n)
		f.A.InterlockChild = buf.Bool(f.A.InterlockChild, n)
		f.A.SumDelayChild = buf.Int32(f.A.SumDelayChild, n)
		f.A.MaxDelayChild = buf.Int32(f.A.MaxDelayChild, n)
	}
}

// NodeDone implements dag.BackwardObserver.
func (f *FusedBackward) NodeDone(d *dag.DAG, i int32) {
	f.A.backwardNode(i)
	if !f.ComputeLocals {
		return
	}
	f.A.ExecTime[i] = int32(f.A.M.Latency(d.Nodes[i].Inst.Op))
	for _, arc := range d.Nodes[i].Succs {
		f.A.SumDelayChild[i] += arc.Delay
		if arc.Delay > f.A.MaxDelayChild[i] {
			f.A.MaxDelayChild[i] = arc.Delay
		}
		if arc.Delay > 1 {
			f.A.InterlockChild[i] = true
		}
	}
}
