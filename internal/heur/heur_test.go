package heur

import (
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/dag"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/testgen"
)

func build(t *testing.T, bld dag.Builder, insts []isa.Inst) *dag.DAG {
	t.Helper()
	b := &block.Block{Name: "t", Insts: insts}
	for i := range b.Insts {
		b.Insts[i].Index = i
	}
	rt := resource.NewTable(resource.MemExprModel)
	rt.PrepareBlock(b.Insts)
	d := bld.Build(b, machine.Pipe1(), rt)
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid DAG: %v", err)
	}
	return d
}

func figure1() []isa.Inst {
	return []isa.Inst{
		isa.Fp3(isa.FDIVS, isa.F(1), isa.F(2), isa.F(3)),
		isa.Fp3(isa.FADDS, isa.F(4), isa.F(5), isa.F(1)),
		isa.Fp3(isa.FADDS, isa.F(1), isa.F(3), isa.F(6)),
	}
}

func TestRegistryIsTable1(t *testing.T) {
	if len(Registry) != 26 {
		t.Fatalf("registry has %d heuristics, Table 1 has 26", len(Registry))
	}
	// Row counts per category, from Table 1.
	want := map[Category]int{
		StallBehavior: 4, InstClass: 2, CriticalPath: 7,
		Uncovering: 5, Structural: 4, RegisterUsage: 4,
	}
	for c, n := range want {
		if got := len(ByCategory(c)); got != n {
			t.Errorf("category %v has %d rows, want %d", c, got, n)
		}
	}
	// The "**" transitive-sensitive entries of Table 1.
	sensitive := map[Key]bool{
		EarliestExecTime: true, InterlockChild: true,
		EarliestStart: true, LatestStart: true, Slack: true,
		NumChildren: true, DelaysToChildren: true,
		NumParents: true, DelaysFromParents: true,
	}
	for _, d := range Registry {
		if d.TransitiveSensitive != sensitive[d.Key] {
			t.Errorf("%s: transitive-sensitive = %v, want %v",
				d.Key, d.TransitiveSensitive, sensitive[d.Key])
		}
	}
	// Pass codes for a sample of rows.
	passes := map[Key]Pass{
		InterlockWithPrev: PassV, ExecTime: PassA,
		MaxPathToLeaf: PassB, MaxPathFromRoot: PassF,
		EarliestStart: PassF, LatestStart: PassB, Slack: PassFB,
		NumUncovered: PassV, NumDescendants: PassB, Birthing: PassA,
	}
	for k, p := range passes {
		d, ok := ByKey(k)
		if !ok || d.Pass != p {
			t.Errorf("%s: pass = %v ok=%v, want %v", k, d.Pass, ok, p)
		}
	}
	keys := map[Key]bool{}
	for _, d := range Registry {
		if keys[d.Key] {
			t.Errorf("duplicate key %s", d.Key)
		}
		keys[d.Key] = true
	}
}

func TestByKeyUnknown(t *testing.T) {
	if _, ok := ByKey("nope"); ok {
		t.Error("unknown key resolved")
	}
	if _, ok := ByKey(OriginalOrder); ok {
		t.Error("original-order is a tiebreak, not a Table 1 row")
	}
}

func TestFigure1CriticalHeuristics(t *testing.T) {
	// With all arcs retained, node 1's max delay to a leaf is the full
	// 20-cycle divide; with the transitive arc removed (Landskov), the
	// WAR-then-RAW path understates it as 1+4 = 5 — the paper's Figure 1
	// argument.
	full := New(build(t, dag.TableForward{}, figure1()), machine.Pipe1()).ComputeAll()
	if full.MaxDelayToLeaf[0] != 20 {
		t.Errorf("full DAG: MaxDelayToLeaf[0] = %d, want 20", full.MaxDelayToLeaf[0])
	}
	if full.EST[2] != 20 {
		t.Errorf("full DAG: EST[2] = %d, want 20", full.EST[2])
	}
	pruned := New(build(t, dag.Landskov{}, figure1()), machine.Pipe1()).ComputeAll()
	if pruned.MaxDelayToLeaf[0] != 5 {
		t.Errorf("pruned DAG: MaxDelayToLeaf[0] = %d, want 5 (understated)", pruned.MaxDelayToLeaf[0])
	}
	if pruned.EST[2] != 5 {
		t.Errorf("pruned DAG: EST[2] = %d, want 5 (understated)", pruned.EST[2])
	}
}

func TestChainAnnotations(t *testing.T) {
	// ld (lat 2) -> add -> add chain.
	insts := []isa.Inst{
		isa.Load(isa.LD, isa.FP, -4, isa.O0),
		isa.RIR(isa.ADD, isa.O0, 1, isa.O1),
		isa.RIR(isa.ADD, isa.O1, 1, isa.O2),
	}
	a := New(build(t, dag.TableForward{}, insts), machine.Pipe1()).ComputeAll()

	if a.MaxPathToLeaf[0] != 2 || a.MaxPathToLeaf[1] != 1 || a.MaxPathToLeaf[2] != 0 {
		t.Errorf("MaxPathToLeaf = %v", a.MaxPathToLeaf)
	}
	if a.MaxDelayToLeaf[0] != 3 || a.MaxDelayToLeaf[1] != 1 {
		t.Errorf("MaxDelayToLeaf = %v", a.MaxDelayToLeaf)
	}
	if a.MaxPathFromRoot[2] != 2 || a.MaxDelayFromRoot[2] != 3 {
		t.Errorf("from-root = %v / %v", a.MaxPathFromRoot, a.MaxDelayFromRoot)
	}
	if a.EST[0] != 0 || a.EST[1] != 2 || a.EST[2] != 3 {
		t.Errorf("EST = %v", a.EST)
	}
	// Finish = EST[2] + 1 = 4; chain is fully critical: slack all zero.
	for i, s := range a.Slack {
		if s != 0 {
			t.Errorf("Slack[%d] = %d, want 0 on a pure chain", i, s)
		}
	}
	if !a.InterlockChild[0] || a.InterlockChild[1] {
		t.Errorf("InterlockChild = %v (load has a delay slot, add does not)", a.InterlockChild)
	}
	if a.ExecTime[0] != 2 || a.ExecTime[1] != 1 {
		t.Errorf("ExecTime = %v", a.ExecTime)
	}
	if a.NumDesc[0] != 2 || a.NumDesc[2] != 0 {
		t.Errorf("NumDesc = %v", a.NumDesc)
	}
	if a.SumExecDesc[0] != 2 {
		t.Errorf("SumExecDesc = %v", a.SumExecDesc)
	}
}

func TestSlackIdentifiesCriticalPath(t *testing.T) {
	// Diamond: a long FP chain and a short integer side branch.
	insts := []isa.Inst{
		isa.Fp3(isa.FDIVS, isa.F(1), isa.F(2), isa.F(3)), // critical
		isa.MovI(7, isa.O0), // slack
		isa.Fp3(isa.FADDS, isa.F(3), isa.F(2), isa.F(4)), // critical
	}
	a := New(build(t, dag.TableForward{}, insts), machine.Pipe1()).ComputeAll()
	if a.Slack[0] != 0 || a.Slack[2] != 0 {
		t.Errorf("critical chain slack = %d, %d", a.Slack[0], a.Slack[2])
	}
	if a.Slack[1] <= 0 {
		t.Errorf("independent mov should have positive slack, got %d", a.Slack[1])
	}
	if a.LST[1]+1 > a.EST[2]+4 { // mov may finish as late as block end
		t.Errorf("LST[1] = %d out of range", a.LST[1])
	}
}

func TestPhiDelays(t *testing.T) {
	// One parent with two children at different delays.
	insts := []isa.Inst{
		isa.Load(isa.LD, isa.FP, -4, isa.O0), // lat 2
		isa.RIR(isa.ADD, isa.O0, 1, isa.O1),  // RAW delay 2
		isa.Store(isa.ST, isa.O0, isa.FP, -8),
	}
	a := New(build(t, dag.TableForward{}, insts), machine.Pipe1()).ComputeAll()
	if a.SumDelayChild[0] != 4 || a.MaxDelayChild[0] != 2 {
		t.Errorf("delays to children: sum %d max %d", a.SumDelayChild[0], a.MaxDelayChild[0])
	}
	if a.SumDelayParent[1] != 2 || a.MaxDelayParent[1] != 2 {
		t.Errorf("delays from parents: sum %d max %d", a.SumDelayParent[1], a.MaxDelayParent[1])
	}
}

func TestLevelListsMatchReverseWalk(t *testing.T) {
	// Section 4 / conclusion 4: the level algorithm and the reverse walk
	// produce identical heuristics.
	for seed := int64(0); seed < 25; seed++ {
		d := build(t, dag.TableForward{}, testgen.Block(seed, 30))
		m := machine.Pipe1()
		walk := New(d, m)
		walk.ComputeBackward()
		lvl := New(d, m)
		lvl.ComputeBackwardLevelLists()
		for i := 0; i < d.Len(); i++ {
			if walk.MaxPathToLeaf[i] != lvl.MaxPathToLeaf[i] ||
				walk.MaxDelayToLeaf[i] != lvl.MaxDelayToLeaf[i] {
				t.Fatalf("seed %d node %d: walk (%d,%d) != levels (%d,%d)",
					seed, i, walk.MaxPathToLeaf[i], walk.MaxDelayToLeaf[i],
					lvl.MaxPathToLeaf[i], lvl.MaxDelayToLeaf[i])
			}
		}
	}
}

func TestLevelsWellFormed(t *testing.T) {
	d := build(t, dag.TableForward{}, testgen.Block(4, 20))
	ll := BuildLevels(d)
	counted := 0
	for lvl, nodes := range ll.Lists {
		for _, i := range nodes {
			counted++
			if ll.Level[i] != int32(lvl) {
				t.Fatalf("node %d in list %d but level %d", i, lvl, ll.Level[i])
			}
			for _, arc := range d.Nodes[i].Preds {
				if ll.Level[arc.From] >= ll.Level[i] {
					t.Fatalf("parent %d level %d >= child %d level %d",
						arc.From, ll.Level[arc.From], i, ll.Level[i])
				}
			}
		}
	}
	if counted != d.Len() {
		t.Fatalf("level lists hold %d nodes, want %d", counted, d.Len())
	}
}

func TestFusedBackwardMatchesSeparatePass(t *testing.T) {
	// The paper's third approach: heuristics computed during backward
	// construction must equal the separate intermediate pass.
	m := machine.Pipe1()
	for seed := int64(50); seed < 70; seed++ {
		insts := testgen.Block(seed, 25)
		fused := &FusedBackward{A: New(nil, m), ComputeLocals: true}
		b := &block.Block{Name: "t", Insts: insts}
		rt := resource.NewTable(resource.MemExprModel)
		rt.PrepareBlock(b.Insts)
		d := dag.TableBackward{Observer: fused}.Build(b, m, rt)

		sep := New(d, m)
		sep.ComputeBackward()
		sep.ComputeLocal()
		for i := 0; i < d.Len(); i++ {
			if fused.A.MaxPathToLeaf[i] != sep.MaxPathToLeaf[i] ||
				fused.A.MaxDelayToLeaf[i] != sep.MaxDelayToLeaf[i] ||
				fused.A.MaxDelayChild[i] != sep.MaxDelayChild[i] ||
				fused.A.InterlockChild[i] != sep.InterlockChild[i] {
				t.Fatalf("seed %d node %d: fused != separate", seed, i)
			}
		}
	}
}

func TestRegisterUsage(t *testing.T) {
	insts := []isa.Inst{
		isa.MovI(1, isa.O0),                      // born: o0 read later
		isa.MovI(2, isa.O1),                      // born: o1 read later
		isa.RRR(isa.ADD, isa.O0, isa.O1, isa.O2), // kills o0, o1; births o2
		isa.Store(isa.ST, isa.O2, isa.FP, -4),    // kills o2 (and fp? fp never dies: no, fp's last use is here)
	}
	a := New(build(t, dag.TableForward{}, insts), machine.Pipe1()).ComputeAll()
	if a.RegsBorn[0] != 1 || a.RegsBorn[1] != 1 {
		t.Errorf("RegsBorn = %v", a.RegsBorn)
	}
	if a.RegsKilled[2] != 2 {
		t.Errorf("RegsKilled[2] = %d, want 2", a.RegsKilled[2])
	}
	if a.RegsBorn[2] != 1 {
		t.Errorf("RegsBorn[2] = %d, want 1", a.RegsBorn[2])
	}
	// Store kills %o2 and is the last reader of %fp in the block.
	if a.RegsKilled[3] != 2 {
		t.Errorf("RegsKilled[3] = %d, want 2", a.RegsKilled[3])
	}
	if a.Liveness[2] != -1 {
		t.Errorf("Liveness[2] = %d, want -1 (net pressure drop)", a.Liveness[2])
	}
	// A dead definition (never read) is not a birth.
	dead := []isa.Inst{isa.MovI(9, isa.L5)}
	ad := New(build(t, dag.TableForward{}, dead), machine.Pipe1()).ComputeAll()
	if ad.RegsBorn[0] != 0 {
		t.Errorf("dead def counted as born: %v", ad.RegsBorn)
	}
}

func TestEmptyDAG(t *testing.T) {
	a := New(build(t, dag.TableForward{}, nil), machine.Pipe1()).ComputeAll()
	if len(a.EST) != 0 || len(a.MaxPathToLeaf) != 0 {
		t.Error("empty DAG should produce empty annotations")
	}
}

func TestSlackNonNegativeQuick(t *testing.T) {
	for seed := int64(300); seed < 330; seed++ {
		d := build(t, dag.TableForward{}, testgen.Block(seed, 20))
		a := New(d, machine.Pipe1())
		a.ComputeCritical()
		zero := false
		for i := 0; i < d.Len(); i++ {
			if a.Slack[i] < 0 {
				t.Fatalf("seed %d: Slack[%d] = %d < 0", seed, i, a.Slack[i])
			}
			if a.Slack[i] == 0 {
				zero = true
			}
			if a.LST[i] < a.EST[i] {
				t.Fatalf("seed %d: LST < EST at %d", seed, i)
			}
		}
		if d.Len() > 0 && !zero {
			t.Fatalf("seed %d: no node on the critical path", seed)
		}
	}
}

func TestDescendantsMatchBruteForce(t *testing.T) {
	for seed := int64(400); seed < 410; seed++ {
		d := build(t, dag.TableForward{}, testgen.Block(seed, 18))
		a := New(d, machine.Pipe1())
		a.ComputeDescendants()
		for i := 0; i < d.Len(); i++ {
			want := map[int32]bool{}
			var walk func(j int32)
			walk = func(j int32) {
				for _, arc := range d.Nodes[j].Succs {
					if !want[arc.To] {
						want[arc.To] = true
						walk(arc.To)
					}
				}
			}
			walk(int32(i))
			if int(a.NumDesc[i]) != len(want) {
				t.Fatalf("seed %d node %d: NumDesc %d, brute force %d",
					seed, i, a.NumDesc[i], len(want))
			}
		}
	}
}

func TestPassString(t *testing.T) {
	if PassA.String() != "a" || PassF.String() != "f" || PassB.String() != "b" ||
		PassFB.String() != "f+b" || PassV.String() != "v" {
		t.Error("pass codes wrong")
	}
}

func TestCategoryString(t *testing.T) {
	names := []string{"stall behavior", "inst. class", "critical path",
		"uncovering", "structural", "register usage"}
	for c := 0; c < NumCategories; c++ {
		if Category(c).String() != names[c] {
			t.Errorf("category %d name %q", c, Category(c).String())
		}
	}
}
