package heur

import (
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/dag"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/testgen"
)

// The fused-backward benchmark pair: both variants run the full
// per-block front end (prepare → backward table build → every heuristic
// the Section 6 selector reads) in recycled arena storage.
//
//	/observer fuses the heuristics into construction (PR 1's pipeline):
//	          values propagate through the observer as arcs are added.
//	/csr      builds plain, freezes the DAG into its flat CSR view, then
//	          computes the same values in one reverse walk over the flat
//	          succ arc array (the paper's "single cheap walk", now over
//	          contiguous memory).
//
// Both are 0 allocs/op in steady state; the CSR walk wins on locality.
func BenchmarkFusedBackward(b *testing.B) {
	m := machine.Pipe1()
	blk := &block.Block{Name: "bench", Insts: testgen.Block(777, 200)}
	for i := range blk.Insts {
		blk.Insts[i].Index = i
	}

	b.Run("observer", func(b *testing.B) {
		rt := resource.NewTable(resource.MemExprModel)
		ar := new(dag.BuildArena)
		a := New(nil, m)
		obs := &FusedBackward{A: a, ComputeLocals: true}
		bld := dag.TableBackward{Observer: obs}
		rt.PrepareBlock(blk.Insts)
		d := bld.BuildInto(ar, blk, m, rt)
		arcs := d.NumArcs
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.PrepareBlock(blk.Insts)
			bld.BuildInto(ar, blk, m, rt)
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N)*float64(arcs)/secs, "arcs/sec")
		}
	})

	b.Run("csr", func(b *testing.B) {
		rt := resource.NewTable(resource.MemExprModel)
		ar := new(dag.BuildArena)
		a := New(nil, m)
		bld := dag.TableBackward{}
		rt.PrepareBlock(blk.Insts)
		d := bld.BuildInto(ar, blk, m, rt)
		arcs := d.NumArcs
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.PrepareBlock(blk.Insts)
			d := bld.BuildInto(ar, blk, m, rt)
			d.Freeze()
			a.D = d
			a.ComputeFusedCSR()
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N)*float64(arcs)/secs, "arcs/sec")
		}
	})
}

// BenchmarkFusedBackwardCSR is the satellite's named entry point: the
// frozen-walk fused pass alone (build and freeze outside the timer),
// isolating the cost of computing every backward/local heuristic from
// the flat arc array.
func BenchmarkFusedBackwardCSR(b *testing.B) {
	m := machine.Pipe1()
	blk := &block.Block{Name: "bench", Insts: testgen.Block(777, 200)}
	for i := range blk.Insts {
		blk.Insts[i].Index = i
	}
	rt := resource.NewTable(resource.MemExprModel)
	rt.PrepareBlock(blk.Insts)
	d := dag.TableBackward{}.Build(blk, m, rt)
	d.Freeze()
	a := New(d, m)
	a.ComputeFusedCSR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ComputeFusedCSR()
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)*float64(d.NumArcs)/secs, "arcs/sec")
	}
}
