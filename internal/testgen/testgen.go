// Package testgen generates small random instruction blocks for the
// test suites. It is deliberately simpler than the calibrated benchmark
// generator in package synth: the goal here is adversarial density of
// dependences (heavy register reuse, mixed loads/stores, condition
// codes, register pairs) on tiny blocks, so property tests can compare
// DAG builders and schedulers against brute-force references.
package testgen

import (
	"math/rand"

	"daginsched/internal/isa"
)

// intPool is the register pool used for integer operands; the small
// size forces frequent WAR/WAW dependences.
var intPool = []isa.Reg{isa.O0, isa.O1, isa.O2, isa.L0, isa.L1, isa.G1}

// fpPool holds even FP registers so pair instructions stay legal.
var fpPool = []isa.Reg{isa.F0, isa.F(2), isa.F(4), isa.F(6)}

// Block generates n straight-line (CTI-free) instructions from seed.
// The mix covers integer ALU, loads, stores, condition codes and
// double-precision FP pairs.
func Block(seed int64, n int) []isa.Inst {
	rng := rand.New(rand.NewSource(seed))
	out := make([]isa.Inst, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, randInst(rng))
	}
	for i := range out {
		out[i].Index = i
	}
	return out
}

// IntBlock generates n instructions restricted to the integer subset
// (no FP, no pairs), which keeps brute-force interpreters simple.
func IntBlock(seed int64, n int) []isa.Inst {
	rng := rand.New(rand.NewSource(seed))
	out := make([]isa.Inst, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, randIntInst(rng))
	}
	for i := range out {
		out[i].Index = i
	}
	return out
}

func pick(rng *rand.Rand, pool []isa.Reg) isa.Reg {
	return pool[rng.Intn(len(pool))]
}

func randOffset(rng *rand.Rand) int32 {
	return int32(rng.Intn(4)) * 4
}

func randIntInst(rng *rand.Rand) isa.Inst {
	switch rng.Intn(8) {
	case 0:
		return isa.MovI(int32(rng.Intn(100)), pick(rng, intPool))
	case 1:
		return isa.RRR(isa.ADD, pick(rng, intPool), pick(rng, intPool), pick(rng, intPool))
	case 2:
		return isa.RIR(isa.SUB, pick(rng, intPool), int32(rng.Intn(16)), pick(rng, intPool))
	case 3:
		return isa.RRR(isa.XOR, pick(rng, intPool), pick(rng, intPool), pick(rng, intPool))
	case 4:
		return isa.Load(isa.LD, isa.FP, -randOffset(rng)-4, pick(rng, intPool))
	case 5:
		return isa.Store(isa.ST, pick(rng, intPool), isa.FP, -randOffset(rng)-4)
	case 6:
		return isa.RRR(isa.SUBCC, pick(rng, intPool), pick(rng, intPool), pick(rng, intPool))
	default:
		return isa.RIR(isa.SLL, pick(rng, intPool), int32(rng.Intn(8)), pick(rng, intPool))
	}
}

func randInst(rng *rand.Rand) isa.Inst {
	if rng.Intn(3) > 0 {
		return randIntInst(rng)
	}
	switch rng.Intn(6) {
	case 0:
		return isa.Fp3(isa.FADDD, pick(rng, fpPool), pick(rng, fpPool), pick(rng, fpPool))
	case 1:
		return isa.Fp3(isa.FMULD, pick(rng, fpPool), pick(rng, fpPool), pick(rng, fpPool))
	case 2:
		return isa.Fp3(isa.FDIVD, pick(rng, fpPool), pick(rng, fpPool), pick(rng, fpPool))
	case 3:
		return isa.Load(isa.LDDF, isa.SP, randOffset(rng)+64, pick(rng, fpPool))
	case 4:
		return isa.Store(isa.STDF, pick(rng, fpPool), isa.SP, randOffset(rng)+64)
	default:
		return isa.Fp2(isa.FMOVS, pick(rng, fpPool), pick(rng, fpPool))
	}
}
