package rename

import (
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/dag"
	"daginsched/internal/interp"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/sched"
	"daginsched/internal/testgen"
)

func buildDAG(t *testing.T, insts []isa.Inst) *dag.DAG {
	t.Helper()
	b := &block.Block{Name: "t", Insts: insts}
	for i := range b.Insts {
		b.Insts[i].Index = i
	}
	rt := resource.NewTable(resource.MemExprModel)
	rt.PrepareBlock(b.Insts)
	d := dag.TableForward{}.Build(b, machine.Pipe1(), rt)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRemovesWAWChain(t *testing.T) {
	// Two independent computations forced through one register.
	insts := []isa.Inst{
		isa.MovI(1, isa.O0),
		isa.Store(isa.ST, isa.O0, isa.FP, -4),
		isa.MovI(2, isa.O0), // WAW with 0, WAR with 1
		isa.Store(isa.ST, isa.O0, isa.FP, -8),
		isa.MovI(3, isa.O0), // the final value lives out: not renamed
	}
	r := Block(insts)
	if r.Renamed != 2 {
		t.Fatalf("renamed %d, want 2", r.Renamed)
	}
	before := buildDAG(t, insts).Statistics()
	after := buildDAG(t, r.Insts).Statistics()
	if after.ByKind[dag.WAR] != 0 || after.ByKind[dag.WAW] != 0 {
		t.Fatalf("false deps survive: %+v", after.ByKind)
	}
	if before.ByKind[dag.WAW] == 0 && before.ByKind[dag.WAR] == 0 {
		t.Fatal("test vacuous: no false deps before renaming")
	}
	// The last mov keeps its architectural register.
	if r.Insts[4].RD != isa.O0 {
		t.Fatalf("live-out definition renamed: %v", r.Insts[4])
	}
}

func TestUseAtRedefinitionRewritten(t *testing.T) {
	insts := []isa.Inst{
		isa.MovI(5, isa.O0),
		isa.RIR(isa.ADD, isa.O0, 1, isa.O0), // uses then redefines %o0
		isa.Store(isa.ST, isa.O0, isa.FP, -4),
		isa.MovI(9, isa.O0),
	}
	r := Block(insts)
	if r.Renamed == 0 {
		t.Fatal("nothing renamed")
	}
	// Semantics check below is the real guard; structurally, the add's
	// source must follow the renamed mov.
	if r.Insts[1].RS1 == isa.O0 {
		t.Fatalf("use at redefinition not rewritten: %v", r.Insts[1])
	}
}

func TestPairRenaming(t *testing.T) {
	insts := []isa.Inst{
		isa.Fp3(isa.FADDD, isa.F(0), isa.F(2), isa.F(4)),
		isa.Store(isa.STDF, isa.F(4), isa.SP, 64),
		isa.Fp3(isa.FMULD, isa.F(0), isa.F(2), isa.F(4)), // WAW on the pair
		isa.Store(isa.STDF, isa.F(4), isa.SP, 72),
		isa.Fp3(isa.FSUBD, isa.F(0), isa.F(2), isa.F(4)),
	}
	r := Block(insts)
	if r.Renamed < 1 {
		t.Fatalf("pair rename failed: %d", r.Renamed)
	}
	if got := r.Insts[0].RD; got.FPNum()%2 != 0 {
		t.Fatalf("pair renamed to odd register %v", got)
	}
}

func TestReservedNeverTouched(t *testing.T) {
	insts := []isa.Inst{
		isa.RIR(isa.ADD, isa.SP, -8, isa.SP),
		isa.Store(isa.ST, isa.O0, isa.SP, 0),
		isa.RIR(isa.ADD, isa.SP, 8, isa.SP),
	}
	r := Block(insts)
	if r.Renamed != 0 {
		t.Fatalf("stack pointer renamed: %v", r.Insts)
	}
}

func TestSemanticsPreserved(t *testing.T) {
	// The pass may consume scratch registers, but every register the
	// original program touches — and all memory — must match at exit.
	for seed := int64(0); seed < 40; seed++ {
		insts := testgen.Block(seed, 20)
		r := Block(insts)
		ref := interp.NewState(uint64(seed))
		if err := ref.Run(insts); err != nil {
			t.Fatal(err)
		}
		got := interp.NewState(uint64(seed))
		if err := got.Run(r.Insts); err != nil {
			t.Fatal(err)
		}
		var touched [96]bool
		var refs []isa.ResRef
		for i := range insts {
			for _, ref := range insts[i].AppendUses(refs[:0]) {
				if ref.Kind == isa.RReg || ref.Kind == isa.RFReg {
					touched[ref.Reg] = true
				}
			}
			for _, ref := range insts[i].AppendDefs(refs[:0]) {
				if ref.Kind == isa.RReg || ref.Kind == isa.RFReg {
					touched[ref.Reg] = true
				}
			}
		}
		for reg := 0; reg < 64; reg++ {
			if !touched[reg] {
				continue
			}
			var a, c uint32
			if reg < 32 {
				a, c = ref.R[reg], got.R[reg]
			} else {
				a, c = ref.F[reg-32], got.F[reg-32]
			}
			if a != c {
				t.Fatalf("seed %d: %v = %#x, want %#x\nbefore/after rename",
					seed, isa.Reg(reg), c, a)
			}
		}
		for k, v := range ref.Mem {
			if got.Mem[k] != v {
				t.Fatalf("seed %d: mem[%#x] = %#x, want %#x", seed, k, got.Mem[k], v)
			}
		}
	}
}

func TestRenamingNeverAddsArcsAndOftenHelps(t *testing.T) {
	m := machine.Pipe1()
	var before, after int64
	helped := false
	for seed := int64(100); seed < 130; seed++ {
		insts := testgen.Block(seed, 20)
		ren := Block(insts)
		db := buildDAG(t, insts)
		da := buildDAG(t, ren.Insts)
		sb := db.Statistics()
		sa := da.Statistics()
		if sa.ByKind[dag.WAR]+sa.ByKind[dag.WAW] > sb.ByKind[dag.WAR]+sb.ByKind[dag.WAW] {
			t.Fatalf("seed %d: renaming added false deps", seed)
		}
		al := sched.Krishnamurthy()
		before += int64(al.Run(db, m).Cycles)
		after += int64(al.Run(da, m).Cycles)
		if sa.Arcs < sb.Arcs {
			helped = true
		}
	}
	if !helped {
		t.Fatal("renaming never removed an arc on these blocks")
	}
	if after > before {
		t.Fatalf("renaming worsened schedules: %d -> %d cycles", before, after)
	}
}

func TestEmptyAndTinyBlocks(t *testing.T) {
	if r := Block(nil); len(r.Insts) != 0 || r.Renamed != 0 {
		t.Fatal("empty block mishandled")
	}
	one := []isa.Inst{isa.MovI(1, isa.O0)}
	if r := Block(one); r.Renamed != 0 {
		t.Fatal("live-out single def renamed")
	}
}
