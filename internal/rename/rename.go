// Package rename implements within-block register renaming, the
// transformation that removes the "false" dependences of Section 1:
// WAR (anti) and WAW (output) arcs exist only because a register name
// is reused, so redirecting a definition to an otherwise-unused
// register — and rewriting its uses — deletes those arcs and exposes
// instruction-level parallelism the scheduler can spend.
//
// The pass is conservative and purely local:
//
//   - only definitions whose live range is contained in the block are
//     renamed (the value must die before the block ends: a later
//     in-block definition of the same register exists, and no CTI or
//     block boundary consumes it afterwards);
//   - only registers free throughout the block (never read or written,
//     and not a reserved register) are used as new names;
//   - pair operations rename both halves together, to an even register.
//
// Renaming preserves architectural state at block exit for every
// register except the scratch names it consumed; the property tests
// verify this with the interpreter.
package rename

import (
	"daginsched/internal/isa"
)

// Result reports what the pass did to one block.
type Result struct {
	// Insts is the rewritten block.
	Insts []isa.Inst
	// Renamed counts definitions redirected to fresh registers.
	Renamed int
}

// reserved registers are never touched or allocated: the zero register,
// stack/frame pointers, and the call linkage registers.
func reserved(r isa.Reg) bool {
	switch r {
	case isa.G0, isa.SP, isa.FP, isa.O7, isa.I7:
		return true
	}
	return false
}

// Block renames the killed definitions of a straight-line block.
func Block(insts []isa.Inst) *Result {
	out := append([]isa.Inst(nil), insts...)
	res := &Result{Insts: out}

	// Which registers are completely untouched (candidate scratch)?
	var touched [isa.NumIntRegs + isa.NumFPRegs]bool
	var refs []isa.ResRef
	note := func(rs []isa.ResRef) {
		for _, r := range rs {
			if r.Kind == isa.RReg || r.Kind == isa.RFReg {
				touched[r.Reg] = true
			}
		}
	}
	for i := range out {
		note(out[i].AppendUses(refs[:0]))
		note(out[i].AppendDefs(refs[:0]))
	}
	freeInt := freeList(touched[:isa.NumIntRegs], 0)
	freeFP := freePairList(touched[isa.NumIntRegs:])

	// Walk forward; for each definition D of register R at position i,
	// find the next redefinition of R. If one exists before the block
	// ends (so the value dies in-block) and no CTI reads R in between,
	// rename D and the uses of its value to a fresh register.
	for i := 0; i < len(out); i++ {
		in := &out[i]
		if in.Op.IsCTI() || in.Op.EndsBlock() {
			continue
		}
		r := in.RD
		if r == isa.RegNone || reserved(r) {
			continue
		}
		pair := in.Op.Pair()
		if !definesReg(in) {
			continue
		}
		end := nextRedef(out, i+1, r, pair)
		if end < 0 {
			continue // value may live out of the block
		}
		if pairReadTears(out, i+1, end, r, pair) {
			// A double-word operand in the window overlaps the renamed
			// register(s) without coinciding exactly; redirecting part
			// of such a read would tear the pair.
			continue
		}
		var fresh isa.Reg
		if r.IsFP() {
			fresh = take(&freeFP)
		} else if r.IsInt() {
			fresh = take(&freeInt)
		} else {
			continue
		}
		if fresh == isa.RegNone {
			continue // no scratch register available
		}
		// Rewrite the definition and every use of the value up to and
		// including the redefining instruction (whose source operands
		// may still read our value: "add %r1, 1, %r1").
		in.RD = fresh
		for j := i + 1; j <= end; j++ {
			rewriteUses(&out[j], r, fresh, pair)
		}
		res.Renamed++
	}
	for i := range out {
		out[i].Index = i
	}
	return res
}

// definesReg reports whether the instruction's RD field is a register
// definition (stores use RD as a source).
func definesReg(in *isa.Inst) bool {
	switch in.Op.Format() {
	case isa.Fmt3, isa.FmtLoad, isa.FmtSethi, isa.FmtFp2, isa.FmtFp3, isa.FmtRdY:
		return in.RD != isa.G0
	}
	return false
}

// nextRedef returns the index of the next instruction that fully
// redefines r (and its pair half when pair is set), or -1. A use of r
// at or after a partial redefinition keeps the rename illegal, so any
// overlapping read after the scan window also returns -1 implicitly by
// requiring the redefinition to come first.
func nextRedef(insts []isa.Inst, from int, r isa.Reg, pair bool) int {
	var refs []isa.ResRef
	for j := from; j < len(insts); j++ {
		in := &insts[j]
		if in.Op.IsCTI() || in.Op.EndsBlock() {
			return -1 // the value may be read beyond the block
		}
		refs = in.AppendDefs(refs[:0])
		def, defPartner := false, !pair
		for _, d := range refs {
			if d.Kind != isa.RReg && d.Kind != isa.RFReg {
				continue
			}
			if d.Reg == r {
				def = true
			}
			if pair && d.Reg == r+1 {
				defPartner = true
			}
		}
		if def && defPartner {
			return j
		}
		if def != defPartner && pair {
			return -1 // half-redefined pairs are too subtle to rename
		}
		// A use of r after this point still belongs to our value: keep
		// scanning. (Uses are rewritten by the caller.)
	}
	return -1
}

// pairReadTears reports whether any double-word (pair) read in
// positions [from, to] overlaps the renamed register set — {r} for a
// single definition, {r, r+1} for a pair — without coinciding with it
// exactly. Such a read would be redirected on one half only.
func pairReadTears(insts []isa.Inst, from, to int, r isa.Reg, pair bool) bool {
	tears := func(base isa.Reg) bool {
		if base == isa.RegNone {
			return false
		}
		if pair {
			// Exact match {base, base+1} == {r, r+1} is a clean rewrite.
			if base == r {
				return false
			}
			return base == r-1 || base == r+1
		}
		return r == base || r == base+1
	}
	for j := from; j <= to && j < len(insts); j++ {
		in := &insts[j]
		if !in.Op.Pair() {
			continue
		}
		switch in.Op.Format() {
		case isa.FmtFp3, isa.FmtFcmp:
			if tears(in.RS1) || tears(in.RS2) {
				return true
			}
		case isa.FmtFp2:
			if tears(in.RS2) {
				return true
			}
		case isa.FmtStore:
			if tears(in.RD) {
				return true
			}
		}
	}
	return false
}

// rewriteUses redirects reads of old (and its pair half) to fresh in
// one instruction. Register fields that are definitions are left alone.
func rewriteUses(in *isa.Inst, old, fresh isa.Reg, pair bool) {
	swap := func(f *isa.Reg) {
		if *f == old {
			*f = fresh
		} else if pair && *f == old+1 {
			*f = fresh + 1
		}
	}
	switch in.Op.Format() {
	case isa.Fmt3:
		swap(&in.RS1)
		if !in.HasImm {
			swap(&in.RS2)
		}
	case isa.FmtLoad:
		swap(&in.Mem.Base)
		swap(&in.Mem.Index)
	case isa.FmtStore:
		swap(&in.RD) // store data is a use
		swap(&in.Mem.Base)
		swap(&in.Mem.Index)
	case isa.FmtFp2:
		swap(&in.RS2)
	case isa.FmtFp3, isa.FmtFcmp:
		swap(&in.RS1)
		swap(&in.RS2)
	case isa.FmtJmpl:
		swap(&in.RS1)
	}
}

// freeList collects untouched, unreserved integer registers.
func freeList(touched []bool, base isa.Reg) []isa.Reg {
	var out []isa.Reg
	for i, t := range touched {
		r := base + isa.Reg(i)
		if !t && !reserved(r) {
			out = append(out, r)
		}
	}
	return out
}

// freePairList collects untouched even/odd FP register pairs.
func freePairList(touched []bool) []isa.Reg {
	var out []isa.Reg
	for i := 0; i+1 < len(touched); i += 2 {
		if !touched[i] && !touched[i+1] {
			out = append(out, isa.F0+isa.Reg(i))
		}
	}
	return out
}

func take(pool *[]isa.Reg) isa.Reg {
	if len(*pool) == 0 {
		return isa.RegNone
	}
	r := (*pool)[0]
	*pool = (*pool)[1:]
	return r
}
