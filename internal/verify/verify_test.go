package verify

import (
	"strings"
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/dag"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/sched"
	"daginsched/internal/testgen"
)

func mkBlock(insts []isa.Inst) *block.Block {
	b := &block.Block{Name: "t", Insts: insts}
	for i := range b.Insts {
		b.Insts[i].Index = i
	}
	return b
}

func schedule(t *testing.T, b *block.Block, m *machine.Model) *sched.Result {
	t.Helper()
	rt := resource.NewTable(resource.MemExprModel)
	rt.PrepareBlock(b.Insts)
	d := dag.TableForward{}.Build(b, m, rt)
	return sched.Krishnamurthy().Run(d, m)
}

func TestAcceptsGoodSchedules(t *testing.T) {
	m := machine.Pipe1()
	for seed := int64(0); seed < 20; seed++ {
		b := mkBlock(testgen.Block(seed, 25))
		r := schedule(t, b, m)
		if err := Schedule(b, m, r, resource.MemExprModel, 3); err != nil {
			t.Fatalf("seed %d: good schedule rejected: %v", seed, err)
		}
	}
}

func TestRejectsTruncatedOrder(t *testing.T) {
	m := machine.Pipe1()
	b := mkBlock(testgen.Block(1, 10))
	r := schedule(t, b, m)
	r.Order = r.Order[:len(r.Order)-1]
	err := Schedule(b, m, r, resource.MemExprModel, 0)
	if err == nil || !strings.Contains(err.Error(), "completeness") {
		t.Fatalf("err = %v", err)
	}
}

func TestRejectsDuplicateNode(t *testing.T) {
	m := machine.Pipe1()
	b := mkBlock(testgen.Block(2, 10))
	r := schedule(t, b, m)
	r.Order[0] = r.Order[1]
	err := Schedule(b, m, r, resource.MemExprModel, 0)
	if err == nil || !strings.Contains(err.Error(), "completeness") {
		t.Fatalf("err = %v", err)
	}
}

func TestRejectsInvertedDependence(t *testing.T) {
	m := machine.Pipe1()
	b := mkBlock([]isa.Inst{
		isa.MovI(1, isa.O0),
		isa.RIR(isa.ADD, isa.O0, 1, isa.O1),
	})
	r := &sched.Result{Order: []int32{1, 0}}
	err := Schedule(b, m, r, resource.MemExprModel, 0)
	if err == nil || !strings.Contains(err.Error(), "legality") {
		t.Fatalf("err = %v", err)
	}
}

func TestRejectsBadTiming(t *testing.T) {
	m := machine.Pipe1()
	b := mkBlock([]isa.Inst{
		isa.Load(isa.LD, isa.FP, -4, isa.O0),
		isa.RIR(isa.ADD, isa.O0, 1, isa.O1),
	})
	r := &sched.Result{
		Order: []int32{0, 1},
		Issue: []int32{0, 1}, // load has a delay slot: 1 is too soon
	}
	err := Schedule(b, m, r, resource.MemExprModel, 0)
	if err == nil || !strings.Contains(err.Error(), "timing") {
		t.Fatalf("err = %v", err)
	}
}

func TestRejectsOverWidthIssue(t *testing.T) {
	m := machine.Pipe1()
	b := mkBlock([]isa.Inst{
		isa.MovI(1, isa.O0),
		isa.MovI(2, isa.O1),
	})
	r := &sched.Result{Order: []int32{0, 1}, Issue: []int32{0, 0}}
	err := Schedule(b, m, r, resource.MemExprModel, 0)
	if err == nil || !strings.Contains(err.Error(), "timing") {
		t.Fatalf("err = %v", err)
	}
}

func TestCatchesAliasViolationUnderStrictModel(t *testing.T) {
	// Two stores through different heap pointers: reordering them is
	// illegal under the single-resource model but legal under the
	// expression model — the verifier must honor the model the
	// scheduler used.
	m := machine.Pipe1()
	b := mkBlock([]isa.Inst{
		isa.Store(isa.ST, isa.O0, isa.G1, 0),
		isa.Store(isa.ST, isa.O1, isa.G2, 0),
	})
	r := &sched.Result{Order: []int32{1, 0}}
	err := Schedule(b, m, r, resource.MemSingleModel, 0)
	if err == nil || !strings.Contains(err.Error(), "legality") {
		t.Fatalf("err = %v", err)
	}
	// Under the expression model the same reordering is legal.
	if err := Schedule(b, m, r, resource.MemExprModel, 2); err != nil {
		t.Fatalf("expr model should accept disjoint stores: %v", err)
	}
}

func TestSemanticsTrialsRun(t *testing.T) {
	// The semantics trials execute the block twice per trial; a trivial
	// independent pair must pass under several seeds.
	m := machine.Pipe1()
	good := mkBlock([]isa.Inst{
		isa.MovI(1, isa.O0),
		isa.MovI(2, isa.O1),
	})
	r := schedule(t, good, m)
	if err := Schedule(good, m, r, resource.MemExprModel, 5); err != nil {
		t.Fatalf("unexpected: %v", err)
	}
}

func TestTrailingCTISkippedInSemantics(t *testing.T) {
	m := machine.Pipe1()
	insts := append(testgen.Block(5, 8),
		isa.CmpI(isa.O0, 0), isa.Branch(isa.BNE, "L"))
	b := mkBlock(insts)
	r := schedule(t, b, m)
	if err := Schedule(b, m, r, resource.MemExprModel, 2); err != nil {
		t.Fatalf("CTI block rejected: %v", err)
	}
}

func TestAllAlgorithmsPassVerification(t *testing.T) {
	models := []*machine.Model{machine.Pipe1(), machine.FPU(), machine.Super2()}
	for seed := int64(50); seed < 60; seed++ {
		b := mkBlock(testgen.Block(seed, 20))
		for _, m := range models {
			for _, al := range append(sched.Table2(), sched.SchlanskerVLIW()) {
				rt := resource.NewTable(resource.MemExprModel)
				rt.PrepareBlock(b.Insts)
				d := al.Builder().Build(b, m, rt)
				r := al.Run(d, m)
				// Reservation placements are unit-parallel: skip the
				// sequential width check by re-timing the order.
				if al.TimeIndexed {
					r = sched.Timed(d, m, r.Order)
				}
				if err := Schedule(b, m, r, resource.MemExprModel, 2); err != nil {
					t.Fatalf("seed %d %s on %s: %v", seed, al.Name, m.Name, err)
				}
			}
		}
	}
}
