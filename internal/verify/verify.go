// Package verify validates schedules end to end. It wraps the
// invariants the test suites enforce into a user-facing checker, so a
// downstream scheduler experiment can assert its output is sound:
//
//   - completeness: the order is a permutation of the block;
//   - legality: every dependence arc of an independently built DAG is
//     respected (parents first), under the strictest memory model;
//   - timing: issue cycles satisfy every arc delay and the machine's
//     issue width;
//   - semantics: for straight-line blocks, executing the permutation on
//     the architectural interpreter from random initial states produces
//     the same final state as program order.
package verify

import (
	"fmt"

	"daginsched/internal/block"
	"daginsched/internal/dag"
	"daginsched/internal/interp"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/sched"
)

// Error is a verification failure with a category tag.
type Error struct {
	Category string // "completeness", "legality", "timing", "semantics"
	Detail   string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("verify: %s: %s", e.Category, e.Detail)
}

// Schedule checks a schedule for one block on a machine. memModel must
// be the disambiguation policy the scheduler was entitled to use — a
// reordering of provably-disjoint memory accesses is legal under
// MemExprModel but not under MemSingleModel, so verifying with a
// stricter model than the scheduler's raises false alarms. The
// semantics trials (`trials` random initial states; 0 disables) are the
// model-independent ground truth. The trailing CTI of a well-formed
// block is skipped during execution automatically.
func Schedule(b *block.Block, m *machine.Model, r *sched.Result,
	memModel resource.MemModel, trials int) error {
	n := b.Len()
	if len(r.Order) != n {
		return &Error{"completeness", fmt.Sprintf("order has %d of %d instructions", len(r.Order), n)}
	}
	seen := make([]bool, n)
	for _, node := range r.Order {
		if node < 0 || int(node) >= n || seen[node] {
			return &Error{"completeness", fmt.Sprintf("node %d repeated or out of range", node)}
		}
		seen[node] = true
	}

	// Legality against an independently built DAG under the caller's
	// memory model.
	rt := resource.NewTable(memModel)
	rt.PrepareBlock(b.Insts)
	d := dag.TableForward{}.Build(b, m, rt)
	pos := make([]int32, n)
	for p, node := range r.Order {
		pos[node] = int32(p)
	}
	for i := range d.Nodes {
		for _, arc := range d.Nodes[i].Succs {
			if pos[arc.From] >= pos[arc.To] {
				return &Error{"legality", fmt.Sprintf("arc %d->%d (%s) inverted",
					arc.From, arc.To, arc.Kind)}
			}
			if r.Issue != nil && r.Issue[arc.To] < r.Issue[arc.From]+arc.Delay {
				return &Error{"timing", fmt.Sprintf("arc %d->%d needs %d cycles, got %d",
					arc.From, arc.To, arc.Delay, r.Issue[arc.To]-r.Issue[arc.From])}
			}
		}
	}
	if r.Issue != nil {
		if err := checkWidth(b, m, r); err != nil {
			return err
		}
	}

	for trial := 0; trial < trials; trial++ {
		if err := checkSemantics(b, r, uint64(trial)*7919+13); err != nil {
			return err
		}
	}
	return nil
}

// checkWidth verifies no cycle issues more instructions than the
// machine's width allows.
func checkWidth(b *block.Block, m *machine.Model, r *sched.Result) error {
	perCycle := map[int32]int{}
	for _, node := range r.Order {
		c := r.Issue[node]
		perCycle[c]++
		if perCycle[c] > m.IssueWidth {
			return &Error{"timing", fmt.Sprintf("cycle %d issues %d instructions on a width-%d machine",
				c, perCycle[c], m.IssueWidth)}
		}
	}
	return nil
}

// checkSemantics runs program order and the schedule from one random
// state; CTIs (legal only as the trailing instruction) are skipped.
func checkSemantics(b *block.Block, r *sched.Result, seed uint64) error {
	runnable := func(in *isa.Inst) bool {
		return !in.Op.IsCTI() && in.Op.Class() != isa.ClassWindow
	}
	ref := interp.NewState(seed)
	for i := range b.Insts {
		if !runnable(&b.Insts[i]) {
			continue
		}
		if err := ref.Exec(&b.Insts[i]); err != nil {
			return &Error{"semantics", err.Error()}
		}
	}
	got := interp.NewState(seed)
	for _, node := range r.Order {
		in := &b.Insts[node]
		if !runnable(in) {
			continue
		}
		if err := got.Exec(in); err != nil {
			return &Error{"semantics", err.Error()}
		}
	}
	if !got.Equal(ref) {
		return &Error{"semantics", fmt.Sprintf("seed %d: state diverged: %s", seed, got.Diff(ref))}
	}
	return nil
}
