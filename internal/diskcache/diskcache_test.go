package diskcache

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// testOpts keeps test files tiny: 256 index slots, 64 KiB of data.
var testOpts = Options{Buckets: 256, DataBytes: 64 << 10}

func openTemp(t *testing.T, opts Options) (*Cache, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sched.cache")
	c, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, path
}

// rec builds a distinguishable record from a small seed.
func rec(seed int) Record {
	n := 3 + seed%5
	r := Record{
		Fp:     uint64(seed)*0x9e3779b97f4a7c15 + 1,
		Key:    []byte{byte(seed), byte(seed >> 8), 0xab, byte(n)},
		Cycles: int32(10 + seed),
		Arcs:   int32(seed % 7),
	}
	for i := 0; i < n; i++ {
		r.Order = append(r.Order, int32((i+seed)%n))
		r.Issue = append(r.Issue, int32(i*2))
	}
	return r
}

func requireHit(t *testing.T, c *Cache, r Record) Entry {
	t.Helper()
	var e Entry
	if !c.Lookup(r.Fp, r.Key, &e) {
		t.Fatalf("lookup missed fp %#x", r.Fp)
	}
	if e.Cycles != r.Cycles || e.Arcs != r.Arcs {
		t.Fatalf("meta mismatch: got (%d,%d) want (%d,%d)", e.Cycles, e.Arcs, r.Cycles, r.Arcs)
	}
	for i := range r.Order {
		if e.Order[i] != r.Order[i] || e.Issue[i] != r.Issue[i] {
			t.Fatalf("payload mismatch at %d: got (%d,%d) want (%d,%d)",
				i, e.Order[i], e.Issue[i], r.Order[i], r.Issue[i])
		}
	}
	return e
}

func TestDiskCacheRoundTrip(t *testing.T) {
	c, _ := openTemp(t, testOpts)
	var recs []Record
	for i := 0; i < 50; i++ {
		recs = append(recs, rec(i))
	}
	if err := c.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	var e Entry // one scratch across all lookups, as a worker would hold
	for _, r := range recs {
		requireHit(t, c, r)
		_ = e
	}
	if got := c.Len(); got != 50 {
		t.Fatalf("Len = %d, want 50", got)
	}
	// Duplicate appends are no-ops.
	if err := c.AppendBatch(recs[:10]); err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got != 50 {
		t.Fatalf("Len after duplicate appends = %d, want 50", got)
	}
}

func TestDiskCachePersistsAcrossReopen(t *testing.T) {
	c, path := openTemp(t, testOpts)
	r := rec(7)
	if err := c.Append(r.Fp, r.Key, r.Order, r.Issue, r.Cycles, r.Arcs); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(path, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	requireHit(t, c2, r)

	// And read-only too.
	c3, err := Open(path, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	requireHit(t, c3, r)
	if err := c3.Append(r.Fp, r.Key, r.Order, r.Issue, r.Cycles, r.Arcs); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only append: err = %v, want ErrReadOnly", err)
	}
	if err := c3.Remove(r.Fp, r.Key); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only remove: err = %v, want ErrReadOnly", err)
	}
}

// TestDiskCacheCollisionNoAlias forces two distinct keys onto the same
// fingerprint: the full-key compare must keep them apart, exactly like
// the in-process tier.
func TestDiskCacheCollisionNoAlias(t *testing.T) {
	c, _ := openTemp(t, testOpts)
	a := rec(1)
	b := rec(2)
	b.Fp = a.Fp // simulate a 64-bit collision
	if err := c.Append(a.Fp, a.Key, a.Order, a.Issue, a.Cycles, a.Arcs); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(b.Fp, b.Key, b.Order, b.Issue, b.Cycles, b.Arcs); err != nil {
		t.Fatal(err)
	}
	requireHit(t, c, a)
	requireHit(t, c, b)
	var e Entry
	if c.Lookup(a.Fp, []byte("some-unrelated-key-bytes...."[:len(a.Key)]), &e) {
		t.Fatal("lookup hit with a colliding fingerprint but wrong key")
	}
}

func TestDiskCacheRemoveTombstone(t *testing.T) {
	c, _ := openTemp(t, testOpts)
	a, b := rec(3), rec(4)
	b.Fp = a.Fp // share a probe chain so the tombstone must not break it
	for _, r := range []Record{a, b} {
		if err := c.Append(r.Fp, r.Key, r.Order, r.Issue, r.Cycles, r.Arcs); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Remove(a.Fp, a.Key); err != nil {
		t.Fatal(err)
	}
	var e Entry
	if c.Lookup(a.Fp, a.Key, &e) {
		t.Fatal("removed entry still served")
	}
	requireHit(t, c, b) // probes must skip the tombstone, not stop at it
	// A removed entry can be re-memoized (the slot is reused).
	if err := c.Append(a.Fp, a.Key, a.Order, a.Issue, a.Cycles, a.Arcs); err != nil {
		t.Fatal(err)
	}
	requireHit(t, c, a)
}

// corrupt reopens the raw file and applies f while no Cache holds it.
func corrupt(t *testing.T, path string, f func(raw []byte) []byte) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, f(raw), 0o644); err != nil {
		t.Fatal(err)
	}
}

// populate writes nRecs records and closes, returning them.
func populate(t *testing.T, path string, nRecs int) []Record {
	t.Helper()
	c, err := Open(path, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for i := 0; i < nRecs; i++ {
		recs = append(recs, rec(i))
	}
	if err := c.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestDiskCacheTornTailRecovery simulates a writer dying mid-append:
// garbage past the committed entries plus a nonzero open count. The
// next writable open must truncate the tail and keep every committed
// entry.
func TestDiskCacheTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.cache")
	recs := populate(t, path, 20)
	var tail int64
	{
		c, err := Open(path, testOpts)
		if err != nil {
			t.Fatal(err)
		}
		tail = c.Tail()
		c.Close()
	}
	corrupt(t, path, func(raw []byte) []byte {
		// Half an entry header of garbage at the tail, tail word
		// advanced over it (the dying writer had updated it), open
		// count left nonzero (the crash marker).
		binary.LittleEndian.PutUint64(raw[offTail:], uint64(tail+48))
		for i := int64(0); i < 48 && tail+i < int64(len(raw)); i++ {
			raw[tail+i] = byte(0xa5 ^ i)
		}
		binary.LittleEndian.PutUint64(raw[offOpenCount:], 1)
		return raw
	})
	c, err := Open(path, testOpts)
	if err != nil {
		t.Fatalf("torn-tail file failed to open: %v", err)
	}
	defer c.Close()
	if got := c.Tail(); got != tail {
		t.Fatalf("recovered tail = %d, want truncation back to %d", got, tail)
	}
	for _, r := range recs {
		requireHit(t, c, r)
	}
	// And the file keeps accepting appends at the recovered tail.
	extra := rec(999)
	if err := c.Append(extra.Fp, extra.Key, extra.Order, extra.Issue, extra.Cycles, extra.Arcs); err != nil {
		t.Fatal(err)
	}
	requireHit(t, c, extra)
}

// TestDiskCacheTruncatedHeader covers a file cut off inside the
// header: a writable open recreates it empty; a read-only open rejects
// it with ErrCorrupt.
func TestDiskCacheTruncatedHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.cache")
	populate(t, path, 5)
	corrupt(t, path, func(raw []byte) []byte { return raw[:100] })

	if _, err := Open(path, Options{ReadOnly: true}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read-only open of truncated header: err = %v, want ErrCorrupt", err)
	}
	c, err := Open(path, testOpts)
	if err != nil {
		t.Fatalf("writable open of truncated header: %v", err)
	}
	defer c.Close()
	if got := c.Len(); got != 0 {
		t.Fatalf("recreated file has %d entries, want 0", got)
	}
	r := rec(1)
	if err := c.Append(r.Fp, r.Key, r.Order, r.Issue, r.Cycles, r.Arcs); err != nil {
		t.Fatal(err)
	}
	requireHit(t, c, r)
}

// TestDiskCacheBitFlippedEntry flips one payload bit in a committed
// entry. The flipped entry must read as a miss (checksum) and a
// recovery pass must drop it (and everything after it — truncate, the
// append-only contract) while the prefix stays served.
func TestDiskCacheBitFlippedEntry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.cache")
	recs := populate(t, path, 10)

	// Find the 6th entry's offset by walking sizes like recovery does.
	c0, err := Open(path, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	off := c0.dataStart
	for i := 0; i < 5; i++ {
		keyLen := int(c0.u32(off + 8))
		n := int(c0.u32(off + 12))
		off += int64(pad8(entryHeader + pad4(keyLen) + 8*n))
	}
	flipAt := off + entryHeader + 1 // a key byte of entry 5
	c0.Close()

	corrupt(t, path, func(raw []byte) []byte {
		raw[flipAt] ^= 0x40
		binary.LittleEndian.PutUint64(raw[offOpenCount:], 1) // crashed-writer marker
		return raw
	})
	c, err := Open(path, testOpts)
	if err != nil {
		t.Fatalf("bit-flipped file failed to open: %v", err)
	}
	defer c.Close()
	for i, r := range recs {
		var e Entry
		hit := c.Lookup(r.Fp, r.Key, &e)
		if i < 5 && !hit {
			t.Fatalf("entry %d (before the flip) lost", i)
		}
		if i >= 5 && hit {
			t.Fatalf("entry %d at/after the flipped entry still served", i)
		}
	}
	if i := c.Len(); i != 5 {
		t.Fatalf("Len after recovery = %d, want 5", i)
	}
}

// TestDiskCacheBitFlipWithoutRecovery flips a payload bit but leaves
// the file marked clean — no recovery runs, so the poisoned entry is
// still indexed, and the per-lookup checksum alone must refuse it.
func TestDiskCacheBitFlipWithoutRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.cache")
	recs := populate(t, path, 3)
	c0, err := Open(path, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	flipAt := c0.dataStart + entryHeader + int64(pad4(len(recs[0].Key))) + 2 // order payload of entry 0
	c0.Close()
	corrupt(t, path, func(raw []byte) []byte {
		raw[flipAt] ^= 0x01
		return raw
	})
	c, err := Open(path, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var e Entry
	if c.Lookup(recs[0].Fp, recs[0].Key, &e) {
		t.Fatal("checksum accepted a bit-flipped entry")
	}
	requireHit(t, c, recs[1])
}

// TestDiskCacheVersionMismatch bumps the on-disk version: writable
// opens recreate, read-only opens reject.
func TestDiskCacheVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.cache")
	populate(t, path, 5)
	corrupt(t, path, func(raw []byte) []byte {
		binary.LittleEndian.PutUint32(raw[offVersion:], version+1)
		// Re-seal the header checksum so only the version disagrees.
		binary.LittleEndian.PutUint64(raw[offHeaderSum:], fnvBytes(fnvOffset, raw[:offHeaderSum]))
		return raw
	})
	if _, err := Open(path, Options{ReadOnly: true}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read-only open of future version: err = %v, want ErrCorrupt", err)
	}
	c, err := Open(path, testOpts)
	if err != nil {
		t.Fatalf("writable open of future version: %v", err)
	}
	defer c.Close()
	if got := c.Len(); got != 0 {
		t.Fatalf("version-mismatched file not recreated: %d entries", got)
	}
}

// TestDiskCacheGarbageIndex sprays garbage over the index region only:
// lookups must stay safe (bounds-checked slots, checksummed entries),
// never panic, and a recovery pass must restore service.
func TestDiskCacheGarbageIndex(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.cache")
	recs := populate(t, path, 10)
	corrupt(t, path, func(raw []byte) []byte {
		for i := indexOff; i < indexOff+256*slotSize; i++ {
			raw[i] = byte(i * 2654435761)
		}
		binary.LittleEndian.PutUint64(raw[offOpenCount:], 1)
		return raw
	})
	c, err := Open(path, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, r := range recs {
		requireHit(t, c, r) // recovery rebuilt the index from the data
	}
}

func TestDiskCacheFull(t *testing.T) {
	c, _ := openTemp(t, Options{Buckets: 64, DataBytes: 4096})
	var err error
	for i := 0; i < 200 && err == nil; i++ {
		r := rec(i)
		err = c.Append(r.Fp, r.Key, r.Order, r.Issue, r.Cycles, r.Arcs)
	}
	if !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull once the data region is exhausted", err)
	}
	// Earlier entries still served.
	requireHit(t, c, rec(0))
}

// TestDiskCacheConcurrentLookups races lock-free readers against a
// writer appending fresh entries — the engine's actual access pattern
// (workers probing, the flusher publishing). Run under -race by CI.
func TestDiskCacheConcurrentLookups(t *testing.T) {
	c, _ := openTemp(t, Options{Buckets: 1024, DataBytes: 1 << 20})
	const nRecs = 200
	var recs []Record
	for i := 0; i < nRecs; i++ {
		recs = append(recs, rec(i))
	}
	if err := c.AppendBatch(recs[:nRecs/2]); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			var e Entry
			for pass := 0; pass < 50; pass++ {
				for i := range recs {
					r := &recs[(i+seed)%nRecs]
					if c.Lookup(r.Fp, r.Key, &e) {
						if e.Cycles != r.Cycles {
							panic("served entry does not match its record")
						}
					} else if i+seed < nRecs/2 && seed == 0 && pass == 0 && i < nRecs/2 {
						// Entries from the initial batch can never miss.
						panic("committed entry missed")
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := nRecs / 2; i < nRecs; i++ {
			r := recs[i]
			if err := c.Append(r.Fp, r.Key, r.Order, r.Issue, r.Cycles, r.Arcs); err != nil {
				panic(err)
			}
		}
	}()
	wg.Wait()
	for _, r := range recs {
		requireHit(t, c, r)
	}
}

// TestDiskCacheTwoHandles maps the same file twice in one process —
// the closest an in-process test gets to two processes sharing the
// tier — and checks appends through one handle are served by the
// other without reopening.
func TestDiskCacheTwoHandles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.cache")
	a, err := Open(path, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(path, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	r := rec(42)
	if err := a.Append(r.Fp, r.Key, r.Order, r.Issue, r.Cycles, r.Arcs); err != nil {
		t.Fatal(err)
	}
	requireHit(t, b, r)
	if err := b.Remove(r.Fp, r.Key); err != nil {
		t.Fatal(err)
	}
	var e Entry
	if a.Lookup(r.Fp, r.Key, &e) {
		t.Fatal("removal through one handle not visible through the other")
	}
}

// TestDiskCacheLookupZeroAlloc is the acceptance gate for the warm hit
// path: once the scratch Entry has grown, Lookup performs zero heap
// allocations per hit.
func TestDiskCacheLookupZeroAlloc(t *testing.T) {
	c, _ := openTemp(t, testOpts)
	r := rec(9)
	if err := c.Append(r.Fp, r.Key, r.Order, r.Issue, r.Cycles, r.Arcs); err != nil {
		t.Fatal(err)
	}
	var e Entry
	if !c.Lookup(r.Fp, r.Key, &e) { // grow the scratch once
		t.Fatal("warm-up lookup missed")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if !c.Lookup(r.Fp, r.Key, &e) {
			t.Fatal("steady-state lookup missed")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state L2 hit path allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkDiskCacheLookupHit measures the steady-state L2 hit path:
// probe, decode into recycled scratch, key compare, checksum.
func BenchmarkDiskCacheLookupHit(b *testing.B) {
	path := filepath.Join(b.TempDir(), "sched.cache")
	c, err := Open(path, Options{Buckets: 1024, DataBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	r := rec(5)
	for i := range r.Order { // a realistically sized payload
		_ = i
	}
	big := Record{Fp: 77, Key: make([]byte, 128), Cycles: 9, Arcs: 3}
	for i := 0; i < 64; i++ {
		big.Order = append(big.Order, int32(63-i))
		big.Issue = append(big.Issue, int32(i))
		if i < len(big.Key) {
			big.Key[i] = byte(i)
		}
	}
	if err := c.Append(big.Fp, big.Key, big.Order, big.Issue, big.Cycles, big.Arcs); err != nil {
		b.Fatal(err)
	}
	var e Entry
	c.Lookup(big.Fp, big.Key, &e)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Lookup(big.Fp, big.Key, &e) {
			b.Fatal("miss")
		}
	}
}
