// Package diskcache is the persistent tier of the engine's two-tier
// schedule cache: an append-only, memory-mapped, content-keyed file of
// memoized block schedules shared across processes and engine
// restarts. The in-process striped cache (internal/engine's L1) keeps
// the hottest entries behind per-shard mutexes; this file is the L2
// underneath it, so a fresh process reopening a populated cache file
// starts warm instead of recomputing every schedule.
//
// Persistence is safe by construction, not by trust: keys are the
// engine's canonical length-delimited block encodings (content, not
// identity), every entry carries a 64-bit checksum over its decoded
// fields, and every lookup re-validates both the full key and the
// checksum against the caller's scratch copy — a corrupt, torn or
// stale entry reads as a miss, never as a wrong schedule. On top of
// that, the engine's always-on legality gate re-checks every served
// schedule, so even a checksum-colliding corruption cannot surface an
// illegal order.
//
// # File format
//
//	header   4096 B   magic, version, geometry, header checksum;
//	                  tail and open-count are the two mutable words
//	index    8 B/slot open-addressed buckets: each slot is the absolute
//	                  file offset of an entry (0 empty, 1 tombstone),
//	                  published with a single atomic store
//	data     dataCap  append-only length-delimited entries
//
// Each entry is 8-byte aligned:
//
//	fp u64 · keyLen u32 · n u32 · cycles i32 · arcs i32 · sum u64
//	key [keyLen]B (padded to 4) · order [n]i32 · issue [n]i32
//
// # Crash safety
//
// Writers (serialized by flock across processes and a mutex within
// one) append entry bytes at the tail, advance the tail word, then
// publish the offset into its index slot with one atomic store —
// readers therefore never observe a torn entry through the index. A
// crash between those steps loses at most the entry being written:
// the open-count word stays nonzero when a writer dies, and the next
// writable Open rebuilds the index by scanning the data region
// entry-by-entry, truncating the tail at the first entry that fails
// its checksum ("recovery truncates any partial tail"). A header that
// fails validation (bad magic, version mismatch, impossible geometry,
// truncated file) is recreated empty by a writable Open and rejected
// with ErrCorrupt by a read-only one.
//
// Readers take no locks on the hot path: probe slots are loaded
// atomically, entry bytes are copied into caller-owned scratch, and
// all validation (key compare, checksum) runs on the copy, so a
// concurrent recovery in another process can at worst turn a hit into
// a miss.
package diskcache

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// ErrCorrupt is returned by a read-only Open of a file that fails
// header validation; errors.Is(err, ErrCorrupt) distinguishes "the
// cache file is damaged" from I/O failures. A writable Open never
// returns it — it recreates the file instead (a cache is always safe
// to lose).
var ErrCorrupt = errors.New("diskcache: corrupt cache file")

// ErrFull is returned by Append when the data region or the probed
// index window has no room. The caller simply stops memoizing; lookups
// keep working.
var ErrFull = errors.New("diskcache: cache file full")

// ErrReadOnly is returned by mutating calls on a read-only cache.
var ErrReadOnly = errors.New("diskcache: cache opened read-only")

const (
	version = 1

	headerSize = 4096
	indexOff   = headerSize
	slotSize   = 8

	// Header field offsets. magic..dataCap are immutable and covered
	// by headerSum; tail and openCount are the two mutable words.
	offMagic     = 0
	offVersion   = 8
	offBuckets   = 12
	offDataCap   = 16
	offHeaderSum = 24
	offTail      = 32
	offOpenCount = 40

	// entryHeader is the fixed prefix before the key/order/issue
	// payload: fp, keyLen, n, cycles, arcs, sum.
	entryHeader = 32

	// tombstone marks a removed slot: probes skip it, inserts reuse it.
	// Real offsets are >= dataStart > headerSize, so 1 cannot collide.
	tombstone = 1

	// maxProbe bounds both lookup and insert probe sequences; an insert
	// that finds no slot within the window reports ErrFull.
	maxProbe = 64

	// maxKeyLen / maxNodes bound the sanity checks decoding untrusted
	// length fields; both are far above any real block.
	maxKeyLen = 1 << 24
	maxNodes  = 1 << 24

	defaultBuckets = 1 << 16
	defaultData    = 256 << 20
)

var magic = [8]byte{'S', 'C', 'H', 'D', 'C', 'A', 'C', 'H'}

// Options configures Open. Geometry fields apply only when the file is
// created (or recreated after corruption); opening an existing healthy
// file adopts the geometry stored in its header.
type Options struct {
	// Buckets is the index slot count, rounded up to a power of two;
	// <= 0 means 65536.
	Buckets int
	// DataBytes is the data-region capacity; <= 0 means 256 MiB. The
	// file is created sparse, so unused capacity costs address space,
	// not disk.
	DataBytes int64
	// ReadOnly opens the file for lookups only: no appends, no
	// removals, no recovery, and corruption is reported (ErrCorrupt)
	// rather than repaired.
	ReadOnly bool
}

// Cache is one open handle on a schedule-cache file. Lookups are safe
// from any number of goroutines without locking; Append, AppendBatch,
// Remove and Close serialize on an internal mutex (and on flock across
// processes).
type Cache struct {
	f  *os.File
	mm []byte
	ro bool

	buckets   uint32
	dataStart int64
	dataEnd   int64 // dataStart + dataCap

	// mu serializes in-process writers; flock serializes cross-process
	// ones. Lookups take neither.
	mu     sync.Mutex //sched:lock-rank 40
	closed bool       //sched:guarded-by mu
}

// Record is one schedule to memoize, the unit of AppendBatch.
type Record struct {
	Fp           uint64
	Key          []byte
	Order, Issue []int32
	Cycles, Arcs int32
}

// Entry is the caller-owned scratch a Lookup decodes into. Reuse one
// per worker: the slices grow to the largest entry seen and are then
// recycled, which is what keeps the steady-state hit path
// allocation-free.
type Entry struct {
	Key          []byte
	Order, Issue []int32
	Cycles, Arcs int32
}

// Open opens (or creates) the cache file at path. A writable open
// validates the header — recreating the file when it is damaged — and,
// when the open-count word shows a writer died holding the file,
// rebuilds the index from the data region, truncating any partial
// tail. A read-only open validates and maps, rejecting damage with
// ErrCorrupt.
func Open(path string, opts Options) (*Cache, error) {
	buckets := uint32(defaultBuckets)
	if opts.Buckets > 0 {
		buckets = ceilPow2(uint32(opts.Buckets))
	}
	dataCap := int64(defaultData)
	if opts.DataBytes > 0 {
		dataCap = (opts.DataBytes + 7) &^ 7
	}

	flag, lock := os.O_RDWR|os.O_CREATE, syscall.LOCK_EX
	if opts.ReadOnly {
		flag, lock = os.O_RDONLY, syscall.LOCK_SH
	}
	f, err := os.OpenFile(path, flag, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), lock); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskcache: flock %s: %w", path, err)
	}
	c, err := openLocked(f, opts.ReadOnly, buckets, dataCap)
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	if err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

// openLocked validates/initializes the file and maps it; the flock is
// held by the caller for the duration.
func openLocked(f *os.File, ro bool, buckets uint32, dataCap int64) (*Cache, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	reason := ""
	switch {
	case st.Size() == 0:
		reason = "empty"
	case st.Size() < headerSize:
		reason = "truncated header"
	default:
		var hdr [headerSize]byte
		if _, err := f.ReadAt(hdr[:offTail], 0); err != nil {
			return nil, err
		}
		reason = validateHeader(hdr[:offTail], st.Size())
		if reason == "" {
			buckets = binary.LittleEndian.Uint32(hdr[offBuckets:])
			dataCap = int64(binary.LittleEndian.Uint64(hdr[offDataCap:]))
		}
	}
	if reason != "" {
		if ro {
			return nil, fmt.Errorf("%w: %s", ErrCorrupt, reason)
		}
		if err := initFile(f, buckets, dataCap); err != nil {
			return nil, err
		}
	}

	dataStart := int64(indexOff) + int64(buckets)*slotSize
	size := dataStart + dataCap
	prot := syscall.PROT_READ
	if !ro {
		prot |= syscall.PROT_WRITE
	}
	mm, err := syscall.Mmap(int(f.Fd()), 0, int(size), prot, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("diskcache: mmap %s: %w", f.Name(), err)
	}
	c := &Cache{f: f, mm: mm, ro: ro, buckets: buckets, dataStart: dataStart, dataEnd: size}
	if !ro {
		// A nonzero open count means a writer died (or is live) with
		// the file open: rebuild the index from the data region. The
		// count is reset by the rebuild, then re-incremented for us.
		if atomic.LoadUint64(c.word(offOpenCount)) != 0 {
			c.recover()
		}
		atomic.AddUint64(c.word(offOpenCount), 1)
	}
	return c, nil
}

// validateHeader returns "" for a healthy header, or the reason it is
// not. fileSize is checked against the geometry the header declares.
func validateHeader(hdr []byte, fileSize int64) string {
	if !bytes.Equal(hdr[offMagic:offMagic+8], magic[:]) {
		return "bad magic"
	}
	if v := binary.LittleEndian.Uint32(hdr[offVersion:]); v != version {
		return fmt.Sprintf("version %d (want %d)", v, version)
	}
	if sum := fnvBytes(fnvOffset, hdr[:offHeaderSum]); sum != binary.LittleEndian.Uint64(hdr[offHeaderSum:]) {
		return "header checksum mismatch"
	}
	buckets := binary.LittleEndian.Uint32(hdr[offBuckets:])
	dataCap := int64(binary.LittleEndian.Uint64(hdr[offDataCap:]))
	if buckets == 0 || buckets&(buckets-1) != 0 || dataCap <= 0 {
		return "impossible geometry"
	}
	if want := int64(indexOff) + int64(buckets)*slotSize + dataCap; fileSize != want {
		return fmt.Sprintf("file is %d bytes, geometry says %d", fileSize, want)
	}
	return ""
}

// initFile (re)creates an empty cache file with the given geometry.
func initFile(f *os.File, buckets uint32, dataCap int64) error {
	size := int64(indexOff) + int64(buckets)*slotSize + dataCap
	if err := f.Truncate(0); err != nil {
		return err
	}
	if err := f.Truncate(size); err != nil {
		return err
	}
	var hdr [headerSize]byte
	copy(hdr[offMagic:], magic[:])
	binary.LittleEndian.PutUint32(hdr[offVersion:], version)
	binary.LittleEndian.PutUint32(hdr[offBuckets:], buckets)
	binary.LittleEndian.PutUint64(hdr[offDataCap:], uint64(dataCap))
	binary.LittleEndian.PutUint64(hdr[offHeaderSum:], fnvBytes(fnvOffset, hdr[:offHeaderSum]))
	tail := int64(indexOff) + int64(buckets)*slotSize
	binary.LittleEndian.PutUint64(hdr[offTail:], uint64(tail))
	// openCount starts at zero; openLocked increments it after mapping.
	_, err := f.WriteAt(hdr[:], 0)
	return err
}

// Close releases the mapping and, for a writable handle, decrements
// the open-count word under flock so a clean shutdown leaves the file
// marked consistent. Callers must drain their own writers first.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if !c.ro {
		fd := int(c.f.Fd())
		if err := syscall.Flock(fd, syscall.LOCK_EX); err == nil {
			if n := atomic.LoadUint64(c.word(offOpenCount)); n > 0 {
				atomic.StoreUint64(c.word(offOpenCount), n-1)
			}
			syscall.Flock(fd, syscall.LOCK_UN)
		}
	}
	err := syscall.Munmap(c.mm)
	c.mm = nil
	if cerr := c.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadOnly reports whether the handle was opened read-only.
func (c *Cache) ReadOnly() bool { return c.ro }

// word returns the mutable header word at offset off for atomic
// access. The mapping is page-aligned and every word offset is a
// multiple of 8, so the alignment atomic ops require always holds.
//
//sched:noalloc
func (c *Cache) word(off int64) *uint64 {
	return (*uint64)(unsafe.Pointer(&c.mm[off]))
}

// slot returns index slot i for atomic access.
//
//sched:noalloc
func (c *Cache) slot(i uint32) *uint64 {
	return c.word(indexOff + int64(i)*slotSize)
}

// Lookup probes for (fp, key) and, on a hit, decodes the entry
// straight from the mapping into dst's recycled scratch — one copy, no
// allocations once dst has grown. Validation is exact and runs on the
// scratch copy: the full key must match byte-for-byte and the entry
// checksum must agree, so hash collisions, torn entries and bit flips
// all read as misses. The mapped bytes never escape: dst owns plain
// heap slices and nothing aliases the mapping after return.
//
//sched:noalloc
func (c *Cache) Lookup(fp uint64, key []byte, dst *Entry) bool {
	mask := c.buckets - 1
	idx := uint32(fp) & mask
	for p := uint32(0); p < maxProbe; p++ {
		v := atomic.LoadUint64(c.slot((idx + p) & mask))
		if v == 0 {
			return false
		}
		if v == tombstone {
			continue
		}
		off := int64(v)
		if off%8 != 0 || off < c.dataStart || off+entryHeader > c.dataEnd {
			continue // corrupt slot: skip, recovery will reap it
		}
		if c.u64(off) != fp {
			continue // different fingerprint sharing the bucket window
		}
		if c.decode(off, key, dst) {
			return true
		}
	}
	return false
}

// decode copies the entry at off into dst and validates key and
// checksum on the copy. It reports false for a key mismatch (a 64-bit
// fingerprint collision) or any corruption.
//
//sched:noalloc
func (c *Cache) decode(off int64, key []byte, dst *Entry) bool {
	keyLen := int(c.u32(off + 8))
	n := int(c.u32(off + 12))
	if keyLen != len(key) || keyLen > maxKeyLen || n < 0 || n > maxNodes {
		return false
	}
	keyOff := off + entryHeader
	orderOff := keyOff + int64(pad4(keyLen))
	issueOff := orderOff + 4*int64(n)
	if issueOff+4*int64(n) > c.dataEnd {
		return false
	}
	if cap(dst.Key) < keyLen {
		dst.Key = make([]byte, keyLen)
	}
	dst.Key = dst.Key[:keyLen]
	copy(dst.Key, c.mm[keyOff:keyOff+int64(keyLen)])
	if cap(dst.Order) < n {
		dst.Order = make([]int32, n)
	}
	dst.Order = dst.Order[:n]
	copy(dst.Order, c.i32s(orderOff, n))
	if cap(dst.Issue) < n {
		dst.Issue = make([]int32, n)
	}
	dst.Issue = dst.Issue[:n]
	copy(dst.Issue, c.i32s(issueOff, n))
	dst.Cycles = int32(c.u32(off + 16))
	dst.Arcs = int32(c.u32(off + 20))
	if !bytes.Equal(dst.Key, key) {
		return false
	}
	fp := c.u64(off)
	sum := foldEntry(fp, dst.Key, dst.Order, dst.Issue, dst.Cycles, dst.Arcs)
	return sum == c.u64(off+24)
}

// Append memoizes one schedule; a duplicate (same fingerprint and key,
// valid checksum) is a no-op. See AppendBatch for the locking cost.
func (c *Cache) Append(fp uint64, key []byte, order, issue []int32, cycles, arcs int32) error {
	rec := Record{Fp: fp, Key: key, Order: order, Issue: issue, Cycles: cycles, Arcs: arcs}
	return c.AppendBatch([]Record{rec})
}

// AppendBatch memoizes a batch of schedules under one flock
// acquisition — the write-behind flusher's entry point, amortizing the
// lock syscalls across the batch. Entries that no longer fit report
// ErrFull after the ones that do fit have been published.
func (c *Cache) AppendBatch(recs []Record) error {
	if c.ro {
		return ErrReadOnly
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrReadOnly
	}
	fd := int(c.f.Fd())
	if err := syscall.Flock(fd, syscall.LOCK_EX); err != nil {
		return fmt.Errorf("diskcache: flock: %w", err)
	}
	defer syscall.Flock(fd, syscall.LOCK_UN)
	var firstErr error
	for i := range recs {
		if err := c.appendLocked(&recs[i]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// appendLocked writes one record under mu+flock: reserve tail space,
// write the entry bytes, advance the tail, then publish the offset
// into the index with a single atomic store (the step that makes the
// entry visible — and it is the last one, so readers never see a torn
// entry).
func (c *Cache) appendLocked(r *Record) error {
	if len(r.Order) != len(r.Issue) {
		return fmt.Errorf("diskcache: order/issue length mismatch (%d vs %d)", len(r.Order), len(r.Issue))
	}
	mask := c.buckets - 1
	idx := uint32(r.Fp) & mask
	free := int64(-1) // first reusable slot (empty or tombstone) in the window
	var freeSlot uint32
	for p := uint32(0); p < maxProbe; p++ {
		s := (idx + p) & mask
		v := atomic.LoadUint64(c.slot(s))
		if v == 0 {
			if free < 0 {
				free, freeSlot = 0, s
			}
			break
		}
		if v == tombstone {
			if free < 0 {
				free, freeSlot = 0, s
			}
			continue
		}
		off := int64(v)
		if off%8 != 0 || off < c.dataStart || off+entryHeader > c.dataEnd {
			if free < 0 {
				free, freeSlot = 0, s // corrupt slot: reclaim
			}
			continue
		}
		if c.u64(off) == r.Fp && c.entryKeyEqual(off, r.Key) {
			if c.entryValid(off) {
				return nil // already memoized
			}
			free, freeSlot = 0, s // corrupt twin: overwrite its slot
			break
		}
	}
	if free < 0 {
		return ErrFull
	}

	n := len(r.Order)
	size := int64(pad8(entryHeader + pad4(len(r.Key)) + 8*n))
	tail := int64(atomic.LoadUint64(c.word(offTail)))
	if tail < c.dataStart || tail > c.dataEnd {
		tail = c.dataStart // a corrupt tail word: rewind rather than crash
	}
	if tail+size > c.dataEnd {
		return ErrFull
	}
	c.putU64(tail, r.Fp)
	c.putU32(tail+8, uint32(len(r.Key)))
	c.putU32(tail+12, uint32(n))
	c.putU32(tail+16, uint32(r.Cycles))
	c.putU32(tail+20, uint32(r.Arcs))
	c.putU64(tail+24, foldEntry(r.Fp, r.Key, r.Order, r.Issue, r.Cycles, r.Arcs))
	keyOff := tail + entryHeader
	copy(c.mm[keyOff:], r.Key)
	orderOff := keyOff + int64(pad4(len(r.Key)))
	copy(c.i32s(orderOff, n), r.Order)
	copy(c.i32s(orderOff+4*int64(n), n), r.Issue)

	atomic.StoreUint64(c.word(offTail), uint64(tail+size))
	atomic.StoreUint64(c.slot(freeSlot), uint64(tail))
	return nil
}

// Remove tombstones the slot holding (fp, key): the engine's poisoned-
// entry propagation, so an entry whose served schedule failed the
// legality gate cannot be served again. The entry bytes stay in the
// append-only data region but become unreachable (and are dropped by
// the next recovery's index rebuild only if also corrupt).
func (c *Cache) Remove(fp uint64, key []byte) error {
	if c.ro {
		return ErrReadOnly
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrReadOnly
	}
	fd := int(c.f.Fd())
	if err := syscall.Flock(fd, syscall.LOCK_EX); err != nil {
		return fmt.Errorf("diskcache: flock: %w", err)
	}
	defer syscall.Flock(fd, syscall.LOCK_UN)
	mask := c.buckets - 1
	idx := uint32(fp) & mask
	for p := uint32(0); p < maxProbe; p++ {
		s := (idx + p) & mask
		v := atomic.LoadUint64(c.slot(s))
		if v == 0 {
			return nil
		}
		if v == tombstone {
			continue
		}
		off := int64(v)
		if off%8 != 0 || off < c.dataStart || off+entryHeader > c.dataEnd {
			continue
		}
		if c.u64(off) == fp && c.entryKeyEqual(off, key) {
			atomic.StoreUint64(c.slot(s), tombstone)
			return nil
		}
	}
	return nil
}

// recover rebuilds the index from the data region: the index is wiped,
// entries are re-validated in append order and re-published, and the
// tail is truncated at the first entry that fails its checksum — the
// partial tail a dying writer can leave. Runs under the Open flock.
func (c *Cache) recover() {
	for i := uint32(0); i < c.buckets; i++ {
		atomic.StoreUint64(c.slot(i), 0)
	}
	end := int64(atomic.LoadUint64(c.word(offTail)))
	if end < c.dataStart || end > c.dataEnd {
		end = c.dataEnd // untrusted tail word: scan the whole region
	}
	off := c.dataStart
	for off+entryHeader <= end {
		keyLen := int(c.u32(off + 8))
		n := int(c.u32(off + 12))
		if keyLen == 0 && n == 0 && c.u64(off) == 0 {
			break // unwritten space
		}
		if keyLen < 0 || keyLen > maxKeyLen || n < 0 || n > maxNodes {
			break
		}
		size := int64(pad8(entryHeader + pad4(keyLen) + 8*n))
		if off+size > end {
			break // torn tail: the entry ran past the committed region
		}
		if !c.entryValid(off) {
			break // checksum failure: truncate here
		}
		c.republish(off)
		off += size
	}
	atomic.StoreUint64(c.word(offTail), uint64(off))
	atomic.StoreUint64(c.word(offOpenCount), 0)
}

// republish re-inserts the (already validated) entry at off into the
// index during recovery; first-wins on duplicate content.
func (c *Cache) republish(off int64) {
	fp := c.u64(off)
	mask := c.buckets - 1
	idx := uint32(fp) & mask
	for p := uint32(0); p < maxProbe; p++ {
		s := (idx + p) & mask
		v := atomic.LoadUint64(c.slot(s))
		if v == 0 {
			atomic.StoreUint64(c.slot(s), uint64(off))
			return
		}
		prev := int64(v)
		if c.u64(prev) == fp && c.entriesEqualKey(prev, off) {
			return // first (oldest) entry wins, matching the L1 discipline
		}
	}
}

// entryKeyEqual compares the stored key of the entry at off against
// key without copying.
//
//sched:noalloc
func (c *Cache) entryKeyEqual(off int64, key []byte) bool {
	keyLen := int(c.u32(off + 8))
	if keyLen != len(key) {
		return false
	}
	keyOff := off + entryHeader
	if keyOff+int64(keyLen) > c.dataEnd {
		return false
	}
	return bytes.Equal(c.mm[keyOff:keyOff+int64(keyLen)], key)
}

// entriesEqualKey reports whether the entries at offsets a and b store
// the same key.
func (c *Cache) entriesEqualKey(a, b int64) bool {
	la, lb := int(c.u32(a+8)), int(c.u32(b+8))
	if la != lb || a+entryHeader+int64(la) > c.dataEnd || b+entryHeader+int64(lb) > c.dataEnd {
		return false
	}
	return bytes.Equal(c.mm[a+entryHeader:a+entryHeader+int64(la)], c.mm[b+entryHeader:b+entryHeader+int64(lb)])
}

// entryValid re-derives the entry's checksum from the mapping and
// compares it to the stored one. Used by recovery and the writer's
// duplicate check; the reader path validates on its scratch copy
// instead (decode), which also defends against concurrent tears.
func (c *Cache) entryValid(off int64) bool {
	keyLen := int(c.u32(off + 8))
	n := int(c.u32(off + 12))
	if keyLen < 0 || keyLen > maxKeyLen || n < 0 || n > maxNodes {
		return false
	}
	keyOff := off + entryHeader
	orderOff := keyOff + int64(pad4(keyLen))
	issueOff := orderOff + 4*int64(n)
	if issueOff+4*int64(n) > c.dataEnd {
		return false
	}
	sum := foldEntry(c.u64(off), c.mm[keyOff:keyOff+int64(keyLen)],
		c.i32s(orderOff, n), c.i32s(issueOff, n),
		int32(c.u32(off+16)), int32(c.u32(off+20)))
	return sum == c.u64(off+24)
}

// Len counts the live (non-tombstone) index slots — an O(buckets) scan
// for tests and reports, not a hot-path statistic.
func (c *Cache) Len() int {
	n := 0
	for i := uint32(0); i < c.buckets; i++ {
		if v := atomic.LoadUint64(c.slot(i)); v != 0 && v != tombstone {
			n++
		}
	}
	return n
}

// Tail returns the data-region append offset (tests and reports).
func (c *Cache) Tail() int64 { return int64(atomic.LoadUint64(c.word(offTail))) }

// Raw byte accessors over the mapping. Entry bytes are immutable once
// published and offsets are derived from validated geometry, so plain
// (non-atomic) loads are safe; cross-goroutine visibility comes from
// the atomic slot load that yielded the offset.

//sched:noalloc
func (c *Cache) u64(off int64) uint64 {
	return binary.LittleEndian.Uint64(c.mm[off : off+8])
}

//sched:noalloc
func (c *Cache) u32(off int64) uint32 {
	return binary.LittleEndian.Uint32(c.mm[off : off+4])
}

func (c *Cache) putU64(off int64, v uint64) {
	binary.LittleEndian.PutUint64(c.mm[off:off+8], v)
}

func (c *Cache) putU32(off int64, v uint32) {
	binary.LittleEndian.PutUint32(c.mm[off:off+4], v)
}

// i32s returns the n int32s at off as a slice view over the mapping.
// off is always 4-aligned by construction (entries are 8-aligned and
// the key is padded to 4), and the view must never outlive the current
// operation — callers copy out of it immediately.
//
//sched:noalloc
func (c *Cache) i32s(off int64, n int) []int32 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&c.mm[off])), n)
}

// foldEntry is the per-entry checksum: FNV-1a folded over every
// decoded field. Both the writer (from its in-memory record) and the
// reader (from its scratch copy) derive it from logical values, never
// raw file bytes, so any byte-level tear or flip that survives into
// the decode is caught regardless of where it landed.
//
//sched:noalloc
func foldEntry(fp uint64, key []byte, order, issue []int32, cycles, arcs int32) uint64 {
	h := fnvU64(fnvOffset, fp)
	h = fnvU32(h, uint32(len(key)))
	h = fnvU32(h, uint32(len(order)))
	h = fnvU32(h, uint32(cycles))
	h = fnvU32(h, uint32(arcs))
	h = fnvBytes(h, key)
	for _, v := range order {
		h = fnvU32(h, uint32(v))
	}
	for _, v := range issue {
		h = fnvU32(h, uint32(v))
	}
	return h
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

//sched:noalloc
func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}

//sched:noalloc
func fnvU32(h uint64, v uint32) uint64 {
	h = (h ^ uint64(v&0xff)) * fnvPrime
	h = (h ^ uint64(v>>8&0xff)) * fnvPrime
	h = (h ^ uint64(v>>16&0xff)) * fnvPrime
	h = (h ^ uint64(v>>24&0xff)) * fnvPrime
	return h
}

//sched:noalloc
func fnvU64(h uint64, v uint64) uint64 {
	h = fnvU32(h, uint32(v))
	h = fnvU32(h, uint32(v>>32))
	return h
}

// pad4/pad8 round up to the next multiple of 4/8.
//
//sched:noalloc
func pad4(n int) int { return (n + 3) &^ 3 }

//sched:noalloc
func pad8(n int) int { return (n + 7) &^ 7 }

// ceilPow2 rounds v up to a power of two (minimum 64 slots).
func ceilPow2(v uint32) uint32 {
	if v < 64 {
		return 64
	}
	v--
	v |= v >> 1
	v |= v >> 2
	v |= v >> 4
	v |= v >> 8
	v |= v >> 16
	return v + 1
}
