package synth

import (
	"math"

	"daginsched/internal/isa"
)

// genScratch is the recycled working set of block generation: the
// fill map, the unique-expression set and the position list are reused
// block to block, so a streaming producer generates an unbounded
// corpus without per-block scratch allocations. The scratch never
// influences the rng draw sequence — a generator running on a warm
// scratch emits bit-identical blocks to one on a fresh scratch.
type genScratch struct {
	filled    []bool
	exprs     []isa.MemExpr
	positions []int
	// seen dedups candidate expressions, keyed on the struct itself
	// (MemExpr is comparable and every field distinguishes addresses):
	// equivalent to keying on MemExpr.Key() but with no formatting or
	// string allocation per draw. Its live entries always mirror exprs,
	// which doubles as the deletion log for the next block's reset.
	seen map[isa.MemExpr]bool
}

// blockGen emits the instructions of one synthetic basic block.
type blockGen struct {
	r   *rng
	p   Profile
	n   int // instructions to emit
	mem int // unique memory expressions to realize
	sc  *genScratch
}

// Register pools. Modest sizes force the register reuse (WAR/WAW
// pressure) that compiled code exhibits.
var (
	intRegs = []isa.Reg{isa.O0, isa.O1, isa.O2, isa.O3, isa.L0, isa.L1, isa.L2,
		isa.L3, isa.G1, isa.G2, isa.I0, isa.I1}
	fpRegs = []isa.Reg{isa.F0, isa.F0 + 2, isa.F0 + 4, isa.F0 + 6, isa.F0 + 8,
		isa.F0 + 10, isa.F0 + 12, isa.F0 + 14, isa.F0 + 16, isa.F0 + 18}
	symPool = []string{"_buf", "_tab", "_state", "_coef", "_x", "_y", "_z", "_acc"}
)

func (g *blockGen) intReg() isa.Reg { return intRegs[g.r.intn(len(intRegs))] }
func (g *blockGen) fpReg() isa.Reg  { return fpRegs[g.r.intn(len(fpRegs))] }

// generate lays out the block into dst (recycled when its capacity
// allows; every position is overwritten, so no zeroing is needed): an
// optional cmp+branch tail, memory operations realizing exactly g.mem
// unique expressions (biased toward the block end under MemLate), and
// an ALU/FP filler mix everywhere else.
func (g *blockGen) generate(dst []isa.Inst) []isa.Inst {
	n := g.n
	if cap(dst) < n {
		dst = make([]isa.Inst, n)
	}
	insts := dst[:n]
	sc := g.sc
	if cap(sc.filled) < n {
		sc.filled = make([]bool, n)
	} else {
		sc.filled = sc.filled[:n]
		clear(sc.filled)
	}
	filled := sc.filled

	// Branch tail on a fraction of multi-instruction blocks.
	body := n
	if n >= 3 && g.r.intn(10) < 7 {
		if g.p.FP && g.r.intn(3) == 0 {
			insts[n-2] = isa.Fcmp(isa.FCMPD, g.fpReg(), g.fpReg())
			insts[n-1] = isa.Branch(isa.FBNE, ".L")
		} else {
			insts[n-2] = isa.CmpI(g.intReg(), int32(g.r.intn(64)))
			insts[n-1] = isa.Branch(isa.BNE, ".L")
		}
		if g.r.intn(4) == 0 {
			insts[n-1].Annul = true
		}
		filled[n-2], filled[n-1] = true, true
		body = n - 2
	}

	// Unique memory expressions and their access instructions.
	exprs := g.memExprs()
	memOps := len(exprs)
	if memOps > 0 {
		// Reuse some expressions. Reuses are rarer in the fpppp-style
		// giant block (each symbolic address is touched near-once),
		// which keeps the windowed unique-expression counts from
		// smearing across window pieces.
		div := 2
		if g.p.MemLate {
			div = 4
		}
		extra := g.r.intn(memOps/div + 1)
		if memOps+extra > body {
			extra = body - memOps
		}
		memOps += extra
	}
	positions := g.memPositions(body, memOps, filled)
	for k, pos := range positions {
		e := exprs[k%len(exprs)] // first len(exprs) hits realize each expr once
		insts[pos] = g.memInst(e)
		filled[pos] = true
	}

	// Filler.
	for i := 0; i < n; i++ {
		if !filled[i] {
			insts[i] = g.filler()
		}
	}
	return insts
}

// memExprs builds g.mem distinct symbolic memory expressions in the
// benchmark's style: frame slots for the C programs, array/static
// storage for the Fortran kernels.
func (g *blockGen) memExprs() []isa.MemExpr {
	sc := g.sc
	if sc.seen == nil {
		sc.seen = make(map[isa.MemExpr]bool, g.mem)
	} else {
		// Targeted deletes, not clear(): clear walks every bucket the
		// map ever grew, which a giant block makes every later tiny
		// block pay for. The previous block's exprs are exactly the
		// map's entries.
		for _, e := range sc.exprs {
			delete(sc.seen, e)
		}
	}
	exprs := sc.exprs[:0]
	seen := sc.seen
	for len(exprs) < g.mem {
		var m isa.MemExpr
		if g.p.FP {
			switch g.r.intn(3) {
			case 0:
				m = isa.MemExpr{Base: isa.G0, Index: isa.RegNone,
					Sym: symPool[g.r.intn(len(symPool))], Offset: int32(g.r.intn(512)) * 8}
			default:
				m = isa.MemExpr{Base: isa.SP, Index: isa.RegNone,
					Offset: 64 + int32(g.r.intn(1024))*8}
			}
		} else {
			if g.r.intn(4) == 0 {
				m = isa.MemExpr{Base: isa.G0, Index: isa.RegNone,
					Sym: symPool[g.r.intn(len(symPool))], Offset: int32(g.r.intn(64)) * 4}
			} else {
				m = isa.MemExpr{Base: isa.FP, Index: isa.RegNone,
					Offset: -4 - int32(g.r.intn(256))*4}
			}
		}
		if !seen[m] {
			seen[m] = true
			exprs = append(exprs, m)
		}
	}
	sc.exprs = exprs
	return exprs
}

// memPositions picks where the memory operations sit. Under MemLate on
// large blocks, draws cluster toward the block end with a power-law
// profile — reproducing fpppp's layout ("the placement of symbolic
// memory address expressions more toward the end of the large basic
// block", Section 6). The exponent is calibrated so the windowed
// unique-expression maxima of Table 3 (120/161/209 at windows
// 1000/2000/4000, of 324 total) come out: the cumulative fraction of
// expressions within the final x of the block is ≈ x^0.4, i.e. the
// offset-from-end is distributed as u^2.5.
func (g *blockGen) memPositions(body, count int, filled []bool) []int {
	if count > body {
		count = body
	}
	out := g.sc.positions[:0]
	late := g.p.MemLate && body > 600
	for len(out) < count {
		var pos int
		if late {
			u := float64(g.r.next()%(1<<20)) / (1 << 20)
			fromEnd := int(float64(body) * u * u * math.Sqrt(u))
			pos = body - 1 - fromEnd
			if pos < 0 {
				pos = 0
			}
		} else {
			pos = g.r.intn(body)
		}
		if !filled[pos] {
			filled[pos] = true
			out = append(out, pos)
		}
	}
	g.sc.positions = out
	return out
}

// memInst builds a load or store on expression e.
func (g *blockGen) memInst(e isa.MemExpr) isa.Inst {
	if g.p.FP {
		switch g.r.intn(4) {
		case 0:
			return isa.Inst{Op: isa.STDF, RD: g.fpReg(), Mem: e,
				RS1: isa.RegNone, RS2: isa.RegNone}
		case 1:
			return isa.Inst{Op: isa.STF, RD: g.fpReg(), Mem: e,
				RS1: isa.RegNone, RS2: isa.RegNone}
		case 2:
			return isa.Inst{Op: isa.LDF, RD: g.fpReg(), Mem: e,
				RS1: isa.RegNone, RS2: isa.RegNone}
		default:
			return isa.Inst{Op: isa.LDDF, RD: g.fpReg(), Mem: e,
				RS1: isa.RegNone, RS2: isa.RegNone}
		}
	}
	switch g.r.intn(3) {
	case 0:
		return isa.Inst{Op: isa.ST, RD: g.intReg(), Mem: e,
			RS1: isa.RegNone, RS2: isa.RegNone}
	case 1:
		return isa.Inst{Op: isa.LDUB, RD: g.intReg(), Mem: e,
			RS1: isa.RegNone, RS2: isa.RegNone}
	default:
		return isa.Inst{Op: isa.LD, RD: g.intReg(), Mem: e,
			RS1: isa.RegNone, RS2: isa.RegNone}
	}
}

// filler builds a non-memory instruction in the benchmark's mix.
func (g *blockGen) filler() isa.Inst {
	if g.p.FP && g.r.intn(10) < 7 {
		switch g.r.intn(8) {
		case 0, 1, 2:
			return isa.Fp3(isa.FADDD, g.fpReg(), g.fpReg(), g.fpReg())
		case 3, 4:
			return isa.Fp3(isa.FMULD, g.fpReg(), g.fpReg(), g.fpReg())
		case 5:
			return isa.Fp3(isa.FSUBD, g.fpReg(), g.fpReg(), g.fpReg())
		case 6:
			return isa.Fp2(isa.FMOVS, g.fpReg(), g.fpReg())
		default:
			return isa.Fp3(isa.FDIVD, g.fpReg(), g.fpReg(), g.fpReg())
		}
	}
	switch g.r.intn(10) {
	case 0, 1, 2:
		return isa.RRR(isa.ADD, g.intReg(), g.intReg(), g.intReg())
	case 3, 4:
		return isa.RIR(isa.ADD, g.intReg(), int32(g.r.intn(128)), g.intReg())
	case 5:
		return isa.RIR(isa.SLL, g.intReg(), int32(g.r.intn(8)), g.intReg())
	case 6:
		return isa.RRR(isa.XOR, g.intReg(), g.intReg(), g.intReg())
	case 7:
		return isa.RIR(isa.SUB, g.intReg(), int32(g.r.intn(64)), g.intReg())
	case 8:
		return isa.MovI(int32(g.r.intn(256)), g.intReg())
	default:
		return isa.Sethi(int32(g.r.intn(1<<12))*1024, g.intReg())
	}
}
