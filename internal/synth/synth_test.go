package synth

import (
	"math"
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/resource"
)

// table3 holds the paper's Table 3 rows for the nine benchmarks.
var table3 = map[string]struct {
	blocks, insts, maxB, memMax int
	avgB, memAvg                float64
}{
	"grep":    {730, 1739, 34, 5, 2.38, 0.32},
	"regex":   {873, 2417, 52, 9, 2.77, 0.31},
	"dfa":     {1623, 4760, 45, 13, 2.93, 0.67},
	"cccp":    {3480, 8831, 36, 10, 2.54, 0.35},
	"linpack": {390, 3391, 145, 62, 8.69, 2.58},
	"lloops":  {263, 3753, 124, 40, 14.27, 4.37},
	"tomcatv": {112, 1928, 326, 68, 17.21, 5.24},
	"nasa7":   {756, 10654, 284, 60, 14.09, 4.23},
	"fpppp":   {662, 25545, 11750, 324, 38.59, 4.76},
}

func measure(t *testing.T, blocks []*block.Block) block.Stats {
	t.Helper()
	rt := resource.NewTable(resource.MemExprModel)
	return block.Measure(blocks, func(b *block.Block) int {
		rt.PrepareBlock(b.Insts)
		return rt.UniqueMemExprs()
	})
}

func TestProfilesMatchTable3(t *testing.T) {
	for _, p := range Profiles() {
		want := table3[p.Name]
		s := measure(t, p.Generate())
		if s.Blocks != want.blocks {
			t.Errorf("%s: blocks = %d, want %d", p.Name, s.Blocks, want.blocks)
		}
		if s.Insts != want.insts {
			t.Errorf("%s: insts = %d, want %d", p.Name, s.Insts, want.insts)
		}
		if s.MaxBlockLen != want.maxB {
			t.Errorf("%s: max block = %d, want %d", p.Name, s.MaxBlockLen, want.maxB)
		}
		if math.Abs(s.AvgBlockLen-want.avgB) > 0.02 {
			t.Errorf("%s: avg block = %.2f, want %.2f", p.Name, s.AvgBlockLen, want.avgB)
		}
		if s.MaxUniqueMem != want.memMax {
			t.Errorf("%s: max mem exprs = %d, want %d", p.Name, s.MaxUniqueMem, want.memMax)
		}
		if math.Abs(s.AvgUniqueMem-want.memAvg) > 0.10*want.memAvg+0.02 {
			t.Errorf("%s: avg mem exprs = %.2f, want %.2f", p.Name, s.AvgUniqueMem, want.memAvg)
		}
	}
}

// TestFppppWindowedBlockCounts reproduces Table 3's fpppp-1000/2000/
// 4000 rows: windowing must yield the paper's block counts exactly.
func TestFppppWindowedBlockCounts(t *testing.T) {
	p, ok := ByName("fpppp")
	if !ok {
		t.Fatal("fpppp profile missing")
	}
	cases := []struct{ window, blocks, maxB int }{
		{1000, 675, 1000},
		{2000, 668, 2000},
		{4000, 664, 4000},
	}
	for _, c := range cases {
		s := measure(t, p.GenerateWindowed(c.window))
		if s.Blocks != c.blocks {
			t.Errorf("fpppp-%d: blocks = %d, want %d", c.window, s.Blocks, c.blocks)
		}
		if s.MaxBlockLen != c.maxB {
			t.Errorf("fpppp-%d: max block = %d, want %d", c.window, s.MaxBlockLen, c.maxB)
		}
		if s.Insts != 25545 {
			t.Errorf("fpppp-%d: insts = %d", c.window, s.Insts)
		}
	}
}

func TestDeterministic(t *testing.T) {
	p, _ := ByName("grep")
	a := p.Generate()
	b := p.Generate()
	if len(a) != len(b) {
		t.Fatal("nondeterministic block count")
	}
	for i := range a {
		if len(a[i].Insts) != len(b[i].Insts) {
			t.Fatalf("block %d: nondeterministic size", i)
		}
		for j := range a[i].Insts {
			if a[i].Insts[j].String() != b[i].Insts[j].String() {
				t.Fatalf("block %d inst %d: %q != %q", i, j,
					a[i].Insts[j].String(), b[i].Insts[j].String())
			}
		}
	}
}

func TestMemLateBias(t *testing.T) {
	p, _ := ByName("fpppp")
	blocks := p.Generate()
	big := blocks[0]
	if big.Len() != 11750 {
		t.Fatalf("big block len %d", big.Len())
	}
	early, late := 0, 0
	for i, in := range big.Insts {
		if in.Op.IsLoad() || in.Op.IsStore() {
			if i < big.Len()*2/3 {
				early++
			} else {
				late++
			}
		}
	}
	if late <= early {
		t.Errorf("fpppp memory ops not biased late: early %d, late %d", early, late)
	}
}

func TestIntProfilesAreIntegerCode(t *testing.T) {
	p, _ := ByName("grep")
	for _, b := range p.Generate() {
		for _, in := range b.Insts {
			if in.Op.Class().IsFP() {
				t.Fatalf("grep block contains FP op %v", in.Op)
			}
		}
	}
}

func TestFPProfilesContainFP(t *testing.T) {
	p, _ := ByName("linpack")
	fp := 0
	total := 0
	for _, b := range p.Generate() {
		for _, in := range b.Insts {
			total++
			if in.Op.Class().IsFP() {
				fp++
			}
		}
	}
	if fp*3 < total {
		t.Errorf("linpack FP fraction too low: %d/%d", fp, total)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("dhrystone"); ok {
		t.Error("unknown benchmark resolved")
	}
}

func TestBlockNamesUnique(t *testing.T) {
	p, _ := ByName("regex")
	seen := map[string]bool{}
	for _, b := range p.Generate() {
		if seen[b.Name] {
			t.Fatalf("duplicate block name %q", b.Name)
		}
		seen[b.Name] = true
	}
}

func TestBlockIndicesAssigned(t *testing.T) {
	p, _ := ByName("grep")
	for _, b := range p.Generate() {
		for i, in := range b.Insts {
			if in.Index != i {
				t.Fatalf("block %s inst %d has Index %d", b.Name, i, in.Index)
			}
		}
	}
}
