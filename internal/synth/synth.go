// Package synth generates the synthetic benchmark suite that stands in
// for the paper's nine compiled programs (GNU grep/regex/dfa, GCC's
// cccp, Linpack, Livermore Loops, and SPEC's tomcatv/nasa7/fpppp in
// SPARC assembly). The original inputs — SunOS 4.1.1 "cc -O4 -S"
// output — are not reproducible today, so each benchmark is replaced by
// a deterministic generator calibrated to Table 3 of the paper: block
// count, instruction count, maximum block size, and unique memory
// expressions per block (average and maximum). Those are exactly the
// inputs that differentiate the three DAG-construction algorithms, so
// the substitution preserves the behavior Tables 4 and 5 measure.
//
// Two structural quirks of the originals are reproduced deliberately:
//
//   - fpppp is dominated by one enormous basic block (11750
//     instructions here; windowing it at 1000/2000/4000 reproduces the
//     fpppp-1000/-2000/-4000 rows, including their block counts), and
//   - fpppp's symbolic memory address expressions cluster "more toward
//     the end of the large basic block" (Section 6), the placement that
//     makes backward-pass table building intern memory resources early
//     and explains the forward/backward timing asymmetry.
package synth

import (
	"daginsched/internal/block"
)

// Profile calibrates one synthetic benchmark to its Table 3 row.
type Profile struct {
	Name string
	// Blocks and Insts are the exact Table 3 structural targets.
	Blocks int
	Insts  int
	// MaxBlock is the largest basic block. SecondBlock, when non-zero,
	// is one additional outsized block (fpppp needs a ~2500-instruction
	// second block for the windowed block counts to come out right).
	MaxBlock    int
	SecondBlock int
	// MemAvg and MemMax target unique memory expressions per block.
	MemAvg float64
	MemMax int
	// FP selects the floating-point instruction mix (Fortran kernels)
	// over the integer mix (C programs).
	FP bool
	// MemLate biases first encounters of new memory expressions toward
	// the end of large blocks (the fpppp quirk).
	MemLate bool
	// Seed fixes the generator stream.
	Seed uint64
}

// Profiles returns the nine Table 3 benchmarks. The fpppp-1000/2000/
// 4000 rows are produced by windowing the fpppp profile with
// block.SplitWindow, exactly as the paper produced them.
func Profiles() []Profile {
	return []Profile{
		{Name: "grep", Blocks: 730, Insts: 1739, MaxBlock: 34, MemAvg: 0.32, MemMax: 5, Seed: 101},
		{Name: "regex", Blocks: 873, Insts: 2417, MaxBlock: 52, MemAvg: 0.31, MemMax: 9, Seed: 102},
		{Name: "dfa", Blocks: 1623, Insts: 4760, MaxBlock: 45, MemAvg: 0.67, MemMax: 13, Seed: 103},
		{Name: "cccp", Blocks: 3480, Insts: 8831, MaxBlock: 36, MemAvg: 0.35, MemMax: 10, Seed: 104},
		{Name: "linpack", Blocks: 390, Insts: 3391, MaxBlock: 145, MemAvg: 2.58, MemMax: 62, FP: true, Seed: 105},
		{Name: "lloops", Blocks: 263, Insts: 3753, MaxBlock: 124, MemAvg: 4.37, MemMax: 40, FP: true, Seed: 106},
		{Name: "tomcatv", Blocks: 112, Insts: 1928, MaxBlock: 326, MemAvg: 5.24, MemMax: 68, FP: true, Seed: 107},
		{Name: "nasa7", Blocks: 756, Insts: 10654, MaxBlock: 284, MemAvg: 4.23, MemMax: 60, FP: true, Seed: 108},
		{Name: "fpppp", Blocks: 662, Insts: 25545, MaxBlock: 11750, SecondBlock: 2500,
			MemAvg: 4.76, MemMax: 324, FP: true, MemLate: true, Seed: 109},
	}
}

// ByName returns a profile by benchmark name.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// rng is SplitMix64: tiny, fast, deterministic.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Generate produces the benchmark's basic blocks. Block count,
// instruction count, maximum block size and per-block unique memory
// expressions match the profile exactly (memory averages to within the
// rounding the fix-up distribution allows).
func (p Profile) Generate() []*block.Block {
	return p.generateSeeded(p.Seed)
}

// generateSeeded is Generate on an explicit seed (GeneratePass uses
// reseeded streams for later passes).
func (p Profile) generateSeeded(seed uint64) []*block.Block {
	r := &rng{s: seed}
	sizes := p.blockSizes(r)
	memCounts := p.memCounts(r, sizes)
	blocks := make([]*block.Block, len(sizes))
	sc := &genScratch{}
	start := 0
	for i, n := range sizes {
		g := &blockGen{r: r, p: p, n: n, mem: memCounts[i], sc: sc}
		insts := g.generate(nil)
		b := &block.Block{Name: blockName(p.Name, i), Start: start}
		b.Insts = insts
		for j := range b.Insts {
			b.Insts[j].Index = j
		}
		blocks[i] = b
		start += n
	}
	return blocks
}

// GenerateWindowed applies an instruction window (fpppp-1000/2000/4000).
func (p Profile) GenerateWindowed(max int) []*block.Block {
	return block.SplitWindow(p.Generate(), max)
}

func blockName(bench string, i int) string {
	buf := make([]byte, 0, len(bench)+8)
	buf = append(buf, bench...)
	buf = append(buf, '.')
	if i == 0 {
		buf = append(buf, '0')
	}
	var digits [10]byte
	d := 0
	for v := i; v > 0; v /= 10 {
		digits[d] = byte('0' + v%10)
		d++
	}
	for d > 0 {
		d--
		buf = append(buf, digits[d])
	}
	return string(buf)
}

// blockSizes distributes p.Insts over p.Blocks blocks: the outsized
// blocks first, the remainder drawn from a skewed small-block
// distribution and fixed up to the exact total.
func (p Profile) blockSizes(r *rng) []int {
	sizes := make([]int, 0, p.Blocks)
	remaining := p.Insts
	if p.MaxBlock > 0 {
		sizes = append(sizes, p.MaxBlock)
		remaining -= p.MaxBlock
	}
	if p.SecondBlock > 0 {
		sizes = append(sizes, p.SecondBlock)
		remaining -= p.SecondBlock
	}
	rest := p.Blocks - len(sizes)
	if rest <= 0 {
		return sizes
	}
	// Cap small blocks below the named maxima so the max column stays
	// exact. The mean of the skewed draw is fixed up afterwards.
	cap := p.MaxBlock - 1
	if p.SecondBlock > 0 {
		cap = p.SecondBlock / 2
	}
	mean := remaining / rest
	if mean < 1 {
		mean = 1
	}
	small := make([]int, rest)
	total := 0
	for i := range small {
		// Geometric-ish: most blocks tiny, a tail up to ~6× the mean.
		v := 1 + r.intn(mean) + r.intn(mean)
		if r.intn(8) == 0 {
			v += r.intn(4*mean + 1)
		}
		if v > cap {
			v = cap
		}
		small[i] = v
		total += v
	}
	// Fix up to the exact instruction total.
	for guard := 0; total != remaining; guard++ {
		if guard > 64*p.Insts {
			panic("synth: block-size fix-up cannot reach the profile total")
		}
		i := r.intn(rest)
		switch {
		case total < remaining && small[i] < cap:
			small[i]++
			total++
		case total > remaining && small[i] > 1:
			small[i]--
			total--
		}
	}
	return append(sizes, small...)
}

// memCounts assigns each block its unique-memory-expression count:
// the outsized block gets MemMax; the rest are drawn around the density
// needed to land the benchmark average, clipped to the block size.
func (p Profile) memCounts(r *rng, sizes []int) []int {
	counts := make([]int, len(sizes))
	target := int(p.MemAvg*float64(p.Blocks) + 0.5)
	counts[0] = p.MemMax
	assigned := p.MemMax
	for i := 1; i < len(sizes); i++ {
		max := sizes[i] / 2
		if max < 1 {
			max = 1
		}
		if max > p.MemMax-1 {
			max = p.MemMax - 1
		}
		// Real code keeps expression density modest outside the one
		// pathological block; an uncapped draw would let a mid-sized
		// block rival the giant block's total and distort the windowed
		// Table 3 maxima.
		if dense := 8 + sizes[i]/20; max > dense {
			max = dense
		}
		counts[i] = r.intn(max + 1)
		if counts[i] > sizes[i] {
			counts[i] = sizes[i]
		}
		assigned += counts[i]
	}
	// Fix up toward the exact target; bail once attempts stop landing
	// (the average is then as close as the constraints allow).
	for guard := 0; assigned != target && guard < 64*p.Blocks; guard++ {
		i := 1 + r.intn(len(sizes)-1)
		switch {
		case assigned > target && counts[i] > 0:
			counts[i]--
			assigned--
		case assigned < target && counts[i] < sizes[i]/2 && counts[i] < p.MemMax-1:
			counts[i]++
			assigned++
		}
	}
	return counts
}
