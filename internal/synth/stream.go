// Streaming corpus generation: the constant-memory producer side of
// the engine's RunStream pipeline. Generate materializes a whole
// benchmark at once; Stream and StreamCorpus emit the same blocks one
// at a time onto a channel, recycling block storage from a caller-fed
// freelist, so an arbitrarily long synthetic stream occupies only the
// blocks currently in flight — RSS is bounded by the consumer's queue
// depth, never by the instruction total.
package synth

import (
	"context"

	"daginsched/internal/block"
)

// passStride reseeds each generation pass: pass k of a profile runs on
// Seed + k·passStride (the SplitMix64 gamma, so consecutive passes land
// in well-separated stream positions). Pass 0 therefore runs on Seed
// itself and emits exactly the blocks Generate returns.
const passStride = 0x9e3779b97f4a7c15

// Stream emits the profile's corpus onto out, recycling storage from
// free, until at least minInsts instructions have been emitted —
// repeating the corpus on reseeded generation passes as needed — or a
// single pass when minInsts <= 0. See StreamCorpus for the contract.
func (p Profile) Stream(ctx context.Context, minInsts int64, out chan<- *block.Block, free <-chan *block.Block) (blocks, insts int64, err error) {
	return StreamCorpus(ctx, []Profile{p}, minInsts, out, free)
}

// GeneratePass materializes generation pass k: the exact blocks
// StreamCorpus emits for this profile on its k-th cycle through the
// profile list. GeneratePass(0) is Generate. It exists so batch-mode
// yardsticks can schedule the same fresh-content sequence a stream
// sees instead of re-running one corpus against a warm cache.
func (p Profile) GeneratePass(pass uint64) []*block.Block {
	return p.generateSeeded(p.Seed + pass*passStride)
}

// StreamCorpus cycles through profiles emitting generated blocks onto
// out until at least minInsts instructions have been emitted (stopping
// at the first block boundary past the target), or for exactly one
// pass over every profile when minInsts <= 0. Pass 0 of each profile
// is bit-identical to its Generate corpus; later passes rerun the
// generator on a reseeded stream, so a long run is not one corpus
// served from cache but a continuing supply of fresh blocks.
//
// Block storage is recycled: each emission first tries a non-blocking
// receive from free (a freelist the consumer feeds with blocks it has
// finished with — nil if the caller does not recycle) and only
// allocates when the freelist is dry. In the steady state the blocks
// in circulation are exactly those in the consumer's queues, which is
// what bounds the producer's memory. out is closed on return. A
// cancelled ctx stops the stream at the next block boundary and
// returns ctx's error along with the tallies so far.
func StreamCorpus(ctx context.Context, profiles []Profile, minInsts int64, out chan<- *block.Block, free <-chan *block.Block) (blocks, insts int64, err error) {
	defer close(out)
	if ctx == nil {
		ctx = context.Background()
	}
	if len(profiles) == 0 {
		return 0, 0, nil
	}
	done := ctx.Done()
	sc := &genScratch{}
	// Block names depend only on (profile, index), not the pass, so
	// they are interned on pass 0 and reused — without this a long run
	// allocates a fresh name string per emitted block.
	names := make([][]string, len(profiles))
	for pi := range profiles {
		names[pi] = make([]string, profiles[pi].Blocks)
	}
	for pass := uint64(0); ; pass++ {
		for pi, p := range profiles {
			r := &rng{s: p.Seed + pass*passStride}
			sizes := p.blockSizes(r)
			memCounts := p.memCounts(r, sizes)
			start := 0
			for i, n := range sizes {
				var b *block.Block
				select {
				case b = <-free:
					// A recycled block that once carried a giant keeps
					// the giant's backing array; parked under a tiny
					// block that storage is dead weight, and over many
					// passes the freelist would fatten toward
					// every-slot-giant. Release grossly oversized
					// storage and let generate right-size it.
					if c := cap(b.Insts); c > 4096 && c > 4*n {
						b.Insts = nil
					}
				default:
					b = &block.Block{}
				}
				g := &blockGen{r: r, p: p, n: n, mem: memCounts[i], sc: sc}
				b.Insts = g.generate(b.Insts[:0])
				if i < len(names[pi]) {
					if names[pi][i] == "" {
						names[pi][i] = blockName(p.Name, i)
					}
					b.Name = names[pi][i]
				} else {
					b.Name = blockName(p.Name, i)
				}
				b.Start = start
				for j := range b.Insts {
					b.Insts[j].Index = j
				}
				start += n
				select {
				case out <- b:
				case <-done:
					return blocks, insts, ctx.Err()
				}
				blocks++
				insts += int64(n)
				if minInsts > 0 && insts >= minInsts {
					return blocks, insts, nil
				}
			}
		}
		if minInsts <= 0 {
			return blocks, insts, nil
		}
	}
}
