package synth

import (
	"context"
	"hash/fnv"
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/isa"
)

// drainStream runs StreamCorpus to completion on a background goroutine
// and collects the emitted blocks. Each received block is deep-copied
// before it is (optionally) recycled back through free.
func drainStream(t *testing.T, profiles []Profile, minInsts int64, recycle bool) []*block.Block {
	t.Helper()
	src := make(chan *block.Block, 4)
	var free chan *block.Block
	if recycle {
		free = make(chan *block.Block, 4)
	}
	errc := make(chan error, 1)
	go func() {
		_, _, err := StreamCorpus(context.Background(), profiles, minInsts, src, free)
		errc <- err
	}()
	var got []*block.Block
	for b := range src {
		cp := &block.Block{Name: b.Name, Start: b.Start}
		cp.Insts = append(cp.Insts, b.Insts...)
		got = append(got, cp)
		if recycle {
			select {
			case free <- b:
			default:
			}
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	return got
}

// requireSameBlocks compares two block sequences instruction by
// instruction (isa.Inst is comparable).
func requireSameBlocks(t *testing.T, label string, got, want []*block.Block) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d blocks, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Name != w.Name {
			t.Fatalf("%s block %d: name %q, want %q", label, i, g.Name, w.Name)
		}
		if g.Start != w.Start {
			t.Fatalf("%s block %d: start %d, want %d", label, i, g.Start, w.Start)
		}
		if len(g.Insts) != len(w.Insts) {
			t.Fatalf("%s block %d: %d insts, want %d", label, i, len(g.Insts), len(w.Insts))
		}
		for j := range g.Insts {
			if g.Insts[j] != w.Insts[j] {
				t.Fatalf("%s block %d inst %d: %v, want %v", label, i, j, g.Insts[j], w.Insts[j])
			}
		}
	}
}

// TestStreamSinglePassMatchesGenerate: one pass of StreamCorpus over a
// profile list is bit-identical to concatenating each profile's
// Generate corpus.
func TestStreamSinglePassMatchesGenerate(t *testing.T) {
	grep, _ := ByName("grep")
	linpack, _ := ByName("linpack")
	profiles := []Profile{grep, linpack}
	var want []*block.Block
	for _, p := range profiles {
		want = append(want, p.Generate()...)
	}
	requireSameBlocks(t, "no-recycle", drainStream(t, profiles, 0, false), want)
	requireSameBlocks(t, "recycled", drainStream(t, profiles, 0, true), want)
}

// TestStreamLaterPassesMatchGeneratePass: a stream long enough to wrap
// into a second pass emits exactly GeneratePass(1)'s blocks after the
// pass-0 corpus — and that content is genuinely fresh, not a repeat of
// pass 0.
func TestStreamLaterPassesMatchGeneratePass(t *testing.T) {
	p, _ := ByName("grep")
	pass0 := p.Generate()
	pass1 := p.GeneratePass(1)
	requireSameBlocks(t, "pass 0", p.GeneratePass(0), pass0)

	var n0, n1 int64
	for _, b := range pass0 {
		n0 += int64(b.Len())
	}
	for _, b := range pass1 {
		n1 += int64(b.Len())
	}
	got := drainStream(t, []Profile{p}, n0+n1, true)
	requireSameBlocks(t, "two passes", got, append(append([]*block.Block{}, pass0...), pass1...))

	fresh := false
	for i := range pass1 {
		if i >= len(pass0) || len(pass1[i].Insts) != len(pass0[i].Insts) {
			fresh = true
			break
		}
		for j := range pass1[i].Insts {
			if pass1[i].Insts[j] != pass0[i].Insts[j] {
				fresh = true
				break
			}
		}
	}
	if !fresh {
		t.Fatal("pass 1 repeated pass 0 verbatim; reseeding is broken")
	}
}

// TestStreamStopsAtBlockBoundary: the stream overshoots minInsts by
// less than one block and never undershoots.
func TestStreamStopsAtBlockBoundary(t *testing.T) {
	p, _ := ByName("grep")
	const target = 1000
	src := make(chan *block.Block, 4)
	go func() {
		for range src {
		}
	}()
	blocks, insts, err := p.Stream(context.Background(), target, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if insts < target {
		t.Fatalf("stream stopped at %d insts, target %d", insts, target)
	}
	if blocks == 0 {
		t.Fatal("no blocks emitted")
	}
}

// TestStreamCancellation: a cancelled context stops the producer and
// surfaces the context error.
func TestStreamCancellation(t *testing.T) {
	p, _ := ByName("grep")
	ctx, cancel := context.WithCancel(context.Background())
	src := make(chan *block.Block) // unbuffered: the producer must block
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, _, err = StreamCorpus(ctx, []Profile{p}, 1<<40, src, nil)
	}()
	<-src // let it start
	cancel()
	for range src {
	}
	<-done
	if err != context.Canceled {
		t.Fatalf("error %v, want context.Canceled", err)
	}
}

// TestStreamTrimsOversizedRecycledBlocks: a freelist block carrying a
// giant backing array is not allowed to park that storage under the
// small blocks that reuse it — without the trim, a long mixed-size
// stream fattens every freelist slot toward the largest block ever
// generated.
func TestStreamTrimsOversizedRecycledBlocks(t *testing.T) {
	p, _ := ByName("grep") // max block 34 insts
	src := make(chan *block.Block, 1)
	free := make(chan *block.Block, 1)
	giant := &block.Block{Insts: make([]isa.Inst, 0, 1<<17)}
	free <- giant
	go StreamCorpus(context.Background(), []Profile{p}, 0, src, free)
	first := <-src
	for range src {
	}
	if first != giant {
		t.Skip("freelist block not claimed first; nothing to assert")
	}
	if c := cap(first.Insts); c >= 1<<17 {
		t.Fatalf("recycled giant kept its %d-capacity backing array under a tiny block", c)
	}
}

// TestCorpusDeterminismPin pins a fingerprint of the full nine-profile
// corpus. The generators' draw sequences are load-bearing: Table 3
// calibration, the schedule cache's content keys and the streaming
// fair-yardstick comparisons all assume a profile's corpus never
// changes silently. If this test fails, a change altered generated
// content — either revert it, or consciously re-pin the hash AND
// re-verify TestProfilesMatchTable3 and the calibration tables.
func TestCorpusDeterminismPin(t *testing.T) {
	h := fnv.New64a()
	for _, p := range Profiles() {
		for _, pass := range []uint64{0, 1} {
			for _, b := range p.GeneratePass(pass) {
				h.Write([]byte(b.Name))
				for i := range b.Insts {
					h.Write([]byte(b.Insts[i].String()))
				}
			}
		}
	}
	const want = uint64(0x3fababab2f31a54c)
	if got := h.Sum64(); got != want {
		t.Fatalf("corpus fingerprint %#x, want %#x (see comment before re-pinning)", got, want)
	}
}
