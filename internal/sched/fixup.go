package sched

import (
	"daginsched/internal/dag"
	"daginsched/internal/machine"
)

// Fixup is the post-pass delay-slot filler Table 2 lists for
// Krishnamurthy: "a postpass 'fixup' to try to fill more operation
// delay slots than are filled by the heuristic scheduling pass." It
// scans the scheduled order; when instruction k stalls (issues later
// than one cycle after its predecessor), it searches later instructions
// for one that (a) does not depend on anything between the stall point
// and itself and (b) can issue in the idle slot, and hoists it. The
// pass repeats until no move helps; it never worsens the schedule.
func Fixup(d *dag.DAG, m *machine.Model, r *Result) *Result {
	order := append([]int32(nil), r.Order...)
	best := Timed(d, m, order)
	n := len(order)
	pinned := pinnedTail(d)
	for improved := true; improved; {
		improved = false
		pos := make([]int32, d.Len())
		for p, node := range order {
			pos[node] = int32(p)
		}
		for k := 1; k < n; k++ {
			gap := best.Issue[order[k]] - best.Issue[order[k-1]]
			if gap <= 1 {
				continue // no stall before position k
			}
			// Look for a later instruction that can hoist to position k.
			for j := k + 1; j < n; j++ {
				cand := order[j]
				if pinned[cand] || dependsOnRange(d, pos, cand, int32(k), int32(j)) {
					continue
				}
				trial := hoist(order, j, k)
				tr := Timed(d, m, trial)
				if tr.Cycles < best.Cycles {
					order, best = trial, tr
					improved = true
					break
				}
			}
			if improved {
				break
			}
		}
	}
	return best
}

// dependsOnRange reports whether cand has a DAG parent scheduled in
// positions [from, to) of the current order.
func dependsOnRange(d *dag.DAG, pos []int32, cand, from, to int32) bool {
	for _, arc := range d.Nodes[cand].Preds {
		if p := pos[arc.From]; p >= from && p < to {
			return true
		}
	}
	return false
}

// hoist returns a copy of order with the element at position j moved to
// position k (k < j), shifting the slice between them right.
func hoist(order []int32, j, k int) []int32 {
	out := append([]int32(nil), order...)
	v := out[j]
	copy(out[k+1:j+1], out[k:j])
	out[k] = v
	return out
}
