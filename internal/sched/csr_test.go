package sched

import (
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/dag"
	"daginsched/internal/heur"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/testgen"
)

// TestCSRSchedulesMatchSliceWalks freezes the DAG and re-runs every
// Table 2 algorithm: a scheduler reading the flat CSR arc arrays must
// reproduce the slice-walking schedule exactly — same order, same issue
// cycles, same completion time.
func TestCSRSchedulesMatchSliceWalks(t *testing.T) {
	models := []*machine.Model{machine.Pipe1(), machine.FPU(), machine.Super2()}
	for seed := int64(100); seed < 110; seed++ {
		for _, n := range []int{0, 1, 25, 80} {
			insts := testgen.Block(seed, n)
			for _, m := range models {
				for _, al := range Table2() {
					plain := buildDAG(t, al.Builder(), m, insts)
					want := al.Run(plain, m)

					frozen := buildDAG(t, al.Builder(), m, insts)
					frozen.Freeze()
					got := al.Run(frozen, m)

					if got.Cycles != want.Cycles || len(got.Order) != len(want.Order) {
						t.Fatalf("%s on %s seed %d n %d: frozen run %d cycles, want %d",
							al.Name, m.Name, seed, n, got.Cycles, want.Cycles)
					}
					for k := range want.Order {
						if got.Order[k] != want.Order[k] {
							t.Fatalf("%s on %s seed %d n %d: order diverges at %d",
								al.Name, m.Name, seed, n, k)
						}
					}
					for k := range want.Issue {
						if got.Issue[k] != want.Issue[k] {
							t.Fatalf("%s on %s seed %d n %d: issue diverges at node %d",
								al.Name, m.Name, seed, n, k)
						}
					}
				}
			}
		}
	}
}

// readyListDAG builds one mid-sized block the way the batch engine
// does, returning the DAG plus a ready annotation set.
func readyListDAG(tb testing.TB, m *machine.Model, freeze bool) (*dag.DAG, *heur.Annot) {
	b := &block.Block{Name: "bench", Insts: testgen.Block(4242, 200)}
	for i := range b.Insts {
		b.Insts[i].Index = i
	}
	rt := resource.NewTable(resource.MemExprModel)
	rt.PrepareBlock(b.Insts)
	d := dag.TableBackward{}.Build(b, m, rt)
	a := heur.New(d, m)
	if freeze {
		d.Freeze()
		a.ComputeFusedCSR()
	} else {
		a.ComputeBackward()
		a.ComputeLocal()
	}
	return d, a
}

// The ready-list microbenchmark pair: the forward scheduler's hot loop
// is the successor walk that decrements unscheduled-parent counts and
// admits newly ready nodes. BenchmarkForwardReadyList/slice chases the
// per-node Succs/Preds slices; /csr runs the same loop over the frozen
// flat arc arrays. Both recycle one Scratch, so steady state is 0
// allocs/op either way — the CSR variant wins on locality alone.
func BenchmarkForwardReadyList(b *testing.B) {
	m := machine.Pipe1()
	for _, mode := range []struct {
		name   string
		freeze bool
	}{{"slice", false}, {"csr", true}} {
		b.Run(mode.name, func(b *testing.B) {
			d, a := readyListDAG(b, m, mode.freeze)
			sel := NewPooledWinnow(Section6Ranked())
			var sc Scratch
			r := sc.Forward(d, m, a, sel)
			want := r.Cycles
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sc.Forward(d, m, a, sel).Cycles != want {
					b.Fatal("schedule diverged across runs")
				}
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)*float64(d.NumArcs)/secs, "arcs/sec")
			}
		})
	}
}
