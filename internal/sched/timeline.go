package sched

import (
	"fmt"
	"strings"

	"daginsched/internal/dag"
	"daginsched/internal/machine"
)

// Timeline renders a cycle-by-cycle issue chart of a schedule:
//
//	cycle  0 | ld [%fp-4], %o0
//	cycle  1 | mov 5, %o2
//	cycle  2 | add %o0, 1, %o1
//	cycle  3 | (stall)
//
// Occupied latency is shown with trailing '=' marks so multi-cycle
// operations are visible. Useful in examples and when debugging
// heuristic choices.
func Timeline(d *dag.DAG, m *machine.Model, r *Result) string {
	var b strings.Builder
	if len(r.Order) == 0 {
		return "(empty schedule)\n"
	}
	byCycle := map[int32][]int32{}
	var last int32
	for _, node := range r.Order {
		c := r.Issue[node]
		byCycle[c] = append(byCycle[c], node)
		if c > last {
			last = c
		}
	}
	for c := int32(0); c <= last; c++ {
		nodes := byCycle[c]
		if len(nodes) == 0 {
			fmt.Fprintf(&b, "cycle %3d | (stall)\n", c)
			continue
		}
		for k, node := range nodes {
			head := fmt.Sprintf("cycle %3d", c)
			if k > 0 {
				head = strings.Repeat(" ", len(head))
			}
			lat := m.Latency(d.Nodes[node].Inst.Op)
			marks := ""
			if lat > 1 {
				marks = " " + strings.Repeat("=", lat-1)
			}
			fmt.Fprintf(&b, "%s | %s%s\n", head, d.Nodes[node].Inst.String(), marks)
		}
	}
	return b.String()
}
