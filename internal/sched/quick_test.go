package sched

import (
	"math/rand"
	"testing"

	"daginsched/internal/dag"
	"daginsched/internal/heur"
	"daginsched/internal/interp"
	"daginsched/internal/machine"
	"daginsched/internal/testgen"
)

// allKeys is every selectable heuristic, including the tiebreak.
var allKeys = []heur.Key{
	heur.InterlockWithPrev, heur.EarliestExecTime, heur.InterlockChild,
	heur.ExecTime, heur.AlternateType, heur.FPUBusy,
	heur.MaxPathToLeaf, heur.MaxDelayToLeaf, heur.MaxPathFromRoot,
	heur.MaxDelayFromRoot, heur.EarliestStart, heur.LatestStart, heur.Slack,
	heur.NumChildren, heur.DelaysToChildren, heur.NumSingleParent,
	heur.DelaysSingleP, heur.NumUncovered,
	heur.NumParents, heur.DelaysFromParents, heur.NumDescendants, heur.SumExecDesc,
	heur.RegsBorn, heur.RegsKilled, heur.Liveness, heur.Birthing,
	heur.OriginalOrder,
}

// randomRanked draws a random ranked-key list (1..5 keys, random
// inverse flags).
func randomRanked(rng *rand.Rand) []RankedKey {
	n := 1 + rng.Intn(5)
	out := make([]RankedKey, n)
	for i := range out {
		out[i] = RankedKey{
			Key: allKeys[rng.Intn(len(allKeys))],
			Min: rng.Intn(2) == 0,
		}
	}
	return out
}

// fullAnnot computes every static pass so any key is answerable.
func fullAnnot(d *dag.DAG, m *machine.Model) *heur.Annot {
	return heur.New(d, m).ComputeAll()
}

// TestRandomSelectorsAlwaysLegalAndSound is the combinator-space
// property: ANY ranked heuristic combination, winnowed or packed,
// forward or backward, must produce a legal, semantics-preserving
// schedule. This is what makes the heuristic registry safe to expose as
// a public construction kit.
func TestRandomSelectorsAlwaysLegalAndSound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := machine.Pipe1()
	for trial := 0; trial < 120; trial++ {
		insts := testgen.Block(int64(trial%17), 18)
		d := buildDAG(t, dag.TableForward{}, m, insts)
		a := fullAnnot(d, m)
		ranked := randomRanked(rng)
		var sel Selector
		if rng.Intn(2) == 0 {
			sel = Winnow(ranked)
		} else {
			sel = Priority(ranked)
		}
		var r *Result
		if rng.Intn(2) == 0 {
			r = Forward(d, m, a, sel)
		} else {
			r = Backward(d, m, a, sel)
		}
		if !Legal(d, r) {
			t.Fatalf("trial %d: illegal schedule from keys %v", trial, ranked)
		}
		ref := interp.NewState(uint64(trial))
		if err := ref.Run(insts); err != nil {
			t.Fatal(err)
		}
		got := interp.NewState(uint64(trial))
		if err := got.RunOrder(insts, r.Order); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(ref) {
			t.Fatalf("trial %d: semantics broken by keys %v: %s",
				trial, ranked, got.Diff(ref))
		}
	}
}

// TestRandomSelectorsReservation covers the reservation placer the same
// way.
func TestRandomSelectorsReservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := machine.FPU()
	for trial := 0; trial < 60; trial++ {
		insts := testgen.Block(int64(trial%13+100), 15)
		d := buildDAG(t, dag.TableForward{}, m, insts)
		a := fullAnnot(d, m)
		r := Reservation(d, m, a, Winnow(randomRanked(rng)))
		if !Legal(d, r) {
			t.Fatalf("trial %d: illegal reservation schedule", trial)
		}
		for i := range d.Nodes {
			for _, arc := range d.Nodes[i].Succs {
				if r.Issue[arc.To] < r.Issue[arc.From]+arc.Delay {
					t.Fatalf("trial %d: delay violated on %d->%d", trial, arc.From, arc.To)
				}
			}
		}
	}
}

// TestSchedulersDeterministic: the same configuration must produce the
// same schedule on repeated runs (the candidate list is maintained with
// order-sensitive swaps, so this guards the index tiebreaks).
func TestSchedulersDeterministic(t *testing.T) {
	m := machine.Pipe1()
	for seed := int64(0); seed < 10; seed++ {
		insts := testgen.Block(seed, 30)
		for _, al := range append(Table2(), SchlanskerVLIW()) {
			d := buildDAG(t, al.Builder(), m, insts)
			a := al.Run(d, m)
			b := al.Run(d, m)
			for i := range a.Order {
				if a.Order[i] != b.Order[i] {
					t.Fatalf("%s seed %d: nondeterministic order", al.Name, seed)
				}
			}
		}
	}
}

// TestSchlanskerVLIWRecovers: the reservation pairing must beat the
// published backward emission in aggregate (the EXPERIMENTS.md finding).
func TestSchlanskerVLIWRecovers(t *testing.T) {
	m := machine.Pipe1()
	var seqTotal, resvTotal int64
	for seed := int64(0); seed < 40; seed++ {
		insts := testgen.Block(seed, 25)
		seqAl, resvAl := Schlansker(), SchlanskerVLIW()
		d := buildDAG(t, seqAl.Builder(), m, insts)
		seqTotal += int64(Timed(d, m, seqAl.Run(d, m).Order).Cycles)
		resvTotal += int64(Timed(d, m, resvAl.Run(d, m).Order).Cycles)
	}
	if resvTotal >= seqTotal {
		t.Fatalf("reservation pairing (%d cycles) did not beat backward emission (%d)",
			resvTotal, seqTotal)
	}
}
