package sched

import (
	"fmt"
	"sync"

	"daginsched/internal/buf"
	"daginsched/internal/heur"
)

// RankedKey is one heuristic in an algorithm's ranked list. Min selects
// inverse use (smaller is better), e.g. Shieh & Papachristou's
// #parents, or every earliest/latest-time heuristic.
type RankedKey struct {
	Key heur.Key
	Min bool
}

// Value evaluates heuristic k for candidate i against the live state.
// Values are raw (not direction-adjusted); selectors apply Min.
// Static keys read the Annot, dynamic keys the State.
func (s *State) Value(k heur.Key, i int32) int64 {
	a := s.A
	switch k {
	case heur.InterlockWithPrev:
		return bool64(s.InterlocksWithPrev(i))
	case heur.EarliestExecTime:
		return int64(s.EffectiveEET(i))
	case heur.InterlockChild:
		return bool64(a.InterlockChild[i])
	case heur.ExecTime:
		return int64(a.ExecTime[i])
	case heur.AlternateType:
		return bool64(s.AlternatesType(i))
	case heur.FPUBusy:
		return int64(s.FPUBusyPenalty(i))
	case heur.MaxPathToLeaf:
		return int64(a.MaxPathToLeaf[i])
	case heur.MaxDelayToLeaf:
		return int64(a.MaxDelayToLeaf[i])
	case heur.MaxPathFromRoot:
		return int64(a.MaxPathFromRoot[i])
	case heur.MaxDelayFromRoot:
		return int64(a.MaxDelayFromRoot[i])
	case heur.EarliestStart:
		return int64(a.EST[i])
	case heur.LatestStart:
		return int64(a.LST[i])
	case heur.Slack:
		return int64(a.Slack[i])
	case heur.NumChildren:
		return int64(len(s.succs(i)))
	case heur.DelaysToChildren:
		return int64(a.SumDelayChild[i])
	case heur.NumSingleParent:
		return int64(s.NumSingleParentChildren(i))
	case heur.DelaysSingleP:
		return int64(s.SumDelaysToSingleParentChildren(i))
	case heur.NumUncovered:
		return int64(s.NumUncoveredChildren(i))
	case heur.NumParents:
		return int64(len(s.preds(i)))
	case heur.DelaysFromParents:
		return int64(a.SumDelayParent[i])
	case heur.NumDescendants:
		return int64(a.NumDesc[i])
	case heur.SumExecDesc:
		return int64(a.SumExecDesc[i])
	case heur.RegsBorn:
		return int64(a.RegsBorn[i])
	case heur.RegsKilled:
		return int64(a.RegsKilled[i])
	case heur.Liveness:
		return int64(a.Liveness[i])
	case heur.Birthing:
		return bool64(s.IsBirthing(i))
	case heur.OriginalOrder:
		return int64(i)
	}
	panic(fmt.Sprintf("sched: unknown heuristic key %q", k))
}

func bool64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Selector picks the next instruction from the candidate list.
type Selector interface {
	// Pick returns the chosen node. cands is non-empty; the slice may be
	// reordered but not retained.
	Pick(s *State, cands []int32) int32
	// Keys returns the ranked heuristics, for Table 2 reporting.
	Keys() []RankedKey
}

// Winnow applies its heuristics "in a given order in a winnowing-like
// process": each key filters the survivors to those achieving the best
// value; ties after the last key break toward original program order
// (forward scheduling) so schedules are deterministic.
type Winnow []RankedKey

// Keys implements Selector.
func (w Winnow) Keys() []RankedKey { return w }

// winnowBufs recycles survivor double buffers for the selectors that
// don't own persistent ones (value-typed Winnow and Priority's long-
// ranking fallback), so casual picks stop allocating two fresh buffers
// apiece.
var winnowBufs = sync.Pool{New: func() any { return new([2][]int32) }}

// Pick implements Selector. The input slice is read-only: survivors are
// winnowed through pooled double buffers, so callers may maintain cands
// incrementally across picks.
func (w Winnow) Pick(s *State, cands []int32) int32 {
	bufs := winnowBufs.Get().(*[2][]int32)
	pick := winnowPick(s, w, cands, bufs)
	winnowBufs.Put(bufs)
	return pick
}

// winnowPick is the winnowing core shared by Winnow (pooled buffers)
// and PooledWinnow (persistent buffers). bufs holds the two survivor
// double buffers; their grown capacity is retained via the pointer so
// pooled callers allocate nothing in steady state.
func winnowPick(s *State, ranked []RankedKey, cands []int32, bufs *[2][]int32) int32 {
	return winnowTail(s, ranked, cands, bufs, 0)
}

// winnowTail winnows live through ranked starting at buffer parity par
// (so a caller that already filled bufs[0] can continue in bufs[1]).
func winnowTail(s *State, ranked []RankedKey, live []int32, bufs *[2][]int32, par int) int32 {
	for ki, rk := range ranked {
		if len(live) == 1 {
			break
		}
		best := adjusted(s, rk, live[0])
		for _, c := range live[1:] {
			if v := adjusted(s, rk, c); v > best {
				best = v
			}
		}
		dst := bufs[(ki+par)%2][:0]
		for _, c := range live {
			if adjusted(s, rk, c) == best {
				dst = append(dst, c)
			}
		}
		bufs[(ki+par)%2] = dst
		live = dst
	}
	return minIndex(live)
}

// PooledWinnow is Winnow with persistent survivor buffers: picks are
// identical, but the double buffers grow once to the largest candidate
// list and are then recycled, keeping the batch engine's selection loop
// allocation-free. Not safe for concurrent use — one per worker.
//
// When the ranking opens with two or more static keys, PooledWinnow
// additionally packs that prefix into one per-node word at block start
// (StartBlock) and replaces the prefix's winnowing stages with a single
// packed-word filter pass. The packing uses exact (unclamped) fields —
// a block whose values overflow simply skips the fast path — so the
// surviving set after the filter is identical to winnowing the prefix
// keys one by one, and picks never change.
type PooledWinnow struct {
	ranked []RankedKey
	bufs   [2][]int32

	prefixN     int      // leading static keys foldable into one word (0 = none)
	prefixKey   []uint64 // per-node packed prefix word for the current block
	prefixOK    bool     // packing exact for the current block
	prefixState *State   // state the prefix was packed against...
	prefixEpoch uint64   // ...and its reset epoch, so recycled state can't serve stale words
}

// prefixMaxKeys bounds the packed prefix: four 15-bit biased fields
// fill an int64-comparable word the same way Priority packs.
const prefixMaxKeys = 64 / fieldBits

// NewPooledWinnow returns a pooled selector over the given ranked keys.
func NewPooledWinnow(ranked []RankedKey) *PooledWinnow {
	p := &PooledWinnow{ranked: ranked}
	n := 0
	for _, rk := range ranked {
		if n == prefixMaxKeys || !staticKey(rk.Key) {
			break
		}
		n++
	}
	if n >= 2 {
		// A one-key prefix saves nothing: it is one filter stage either way.
		p.prefixN = n
	}
	return p
}

// Keys implements Selector.
func (p *PooledWinnow) Keys() []RankedKey { return p.ranked }

// StartBlock packs the static prefix for the block s was reset to. The
// scheduling loops call it before the first pick; a block whose values
// don't fit the exact fields leaves prefixOK false and every pick runs
// the plain winnow. (Steady-state allocation freedom is pinned by
// TestScratchForwardPrefixZeroAlloc rather than a noalloc annotation:
// the static call graph reaches State.Value's unknown-key panic
// formatting, which never executes for a well-formed ranking.)
func (p *PooledWinnow) StartBlock(s *State) {
	p.prefixOK = false
	if p.prefixN == 0 {
		return
	}
	n := s.D.Len()
	p.prefixKey = buf.Uint64(p.prefixKey, n)
	const half = int64(1) << (fieldBits - 1)
	for i := 0; i < n; i++ {
		var w uint64
		for _, rk := range p.ranked[:p.prefixN] {
			f := adjusted(s, rk, int32(i)) + half
			if f < 0 || f >= 1<<fieldBits {
				return // inexact: keep the plain winnow for this block
			}
			w = w<<fieldBits | uint64(f)
		}
		p.prefixKey[i] = w
	}
	p.prefixOK, p.prefixState, p.prefixEpoch = true, s, s.epoch
}

// Pick implements Selector.
func (p *PooledWinnow) Pick(s *State, cands []int32) int32 {
	if p.prefixOK && p.prefixState == s && p.prefixEpoch == s.epoch && len(cands) > 1 {
		best := p.prefixKey[cands[0]]
		for _, c := range cands[1:] {
			if k := p.prefixKey[c]; k > best {
				best = k
			}
		}
		dst := p.bufs[0][:0]
		for _, c := range cands {
			if p.prefixKey[c] == best {
				dst = append(dst, c)
			}
		}
		p.bufs[0] = dst
		return winnowTail(s, p.ranked[p.prefixN:], dst, &p.bufs, 1)
	}
	return winnowPick(s, p.ranked, cands, &p.bufs)
}

// staticKey reports whether a heuristic key reads only the DAG and its
// static annotations — i.e. its value cannot change while a block is
// being scheduled. The dynamic ("v") keys of Table 1 consult the live
// State and are excluded.
func staticKey(k heur.Key) bool {
	switch k {
	case heur.InterlockWithPrev, heur.EarliestExecTime, heur.AlternateType,
		heur.FPUBusy, heur.NumSingleParent, heur.DelaysSingleP,
		heur.NumUncovered, heur.Birthing:
		return false
	}
	return true
}

// Section6Ranked returns the heuristic ranking of the paper's Section 6
// timing study: maximum path length to a leaf, then maximum delay to a
// leaf, then total delays to children.
func Section6Ranked() []RankedKey {
	return []RankedKey{
		{Key: heur.MaxPathToLeaf},
		{Key: heur.MaxDelayToLeaf},
		{Key: heur.DelaysToChildren},
	}
}

// Priority combines its ranked heuristics "into a single priority value
// per node": each key's value is clamped into a fixed-width bit field
// and the fields are packed most-significant-first, so comparing the
// packed integers is exactly the ranked lexicographic comparison.
type Priority []RankedKey

// fieldBits is the per-key field width; values are clamped to fit.
// Four keys of 15 bits (plus sign handling) fit comfortably in int64.
const fieldBits = 15

// Keys implements Selector.
func (p Priority) Keys() []RankedKey { return p }

// Pick implements Selector.
func (p Priority) Pick(s *State, cands []int32) int32 {
	if len(p) > 4 {
		// More than four ranked keys cannot pack into one int64 field
		// set; fall back to the equivalent winnowing comparison (through
		// the shared buffer pool, so long rankings don't allocate fresh
		// survivor buffers on every pick).
		return Winnow(p).Pick(s, cands)
	}
	bestN := int32(-1)
	var bestV int64
	for _, c := range cands {
		v := p.value(s, c)
		if bestN < 0 || v > bestV || (v == bestV && c < bestN) {
			bestN, bestV = c, v
		}
	}
	return bestN
}

// value packs the candidate's priority fields.
func (p Priority) value(s *State, i int32) int64 {
	const half = int64(1) << (fieldBits - 1)
	var v int64
	for _, rk := range p {
		f := adjusted(s, rk, i) + half // bias into unsigned field range
		if f < 0 {
			f = 0
		}
		if f >= 1<<fieldBits {
			f = 1<<fieldBits - 1
		}
		v = v<<fieldBits | f
	}
	return v
}

// adjusted returns the direction-corrected value: larger is better.
func adjusted(s *State, rk RankedKey, i int32) int64 {
	v := s.Value(rk.Key, i)
	if rk.Min {
		return -v
	}
	return v
}

func minIndex(xs []int32) int32 {
	best := xs[0]
	for _, x := range xs[1:] {
		if x < best {
			best = x
		}
	}
	return best
}
