package sched

import "daginsched/internal/buf"

// readyHeap is the packed-priority ready list: an indexed binary
// max-heap over the per-node packed priority words (heur.PackedPrio).
// Admitting a freshly uncovered candidate and extracting the best one
// are both O(log candidates) with zero heuristic evaluations — the
// winnow path's per-pick rescan of every candidate through every
// ranked key becomes a handful of uint64 compares.
//
// Invariants:
//
//   - key[k] >= key[2k+1] and key[k] >= key[2k+2] (max-heap order);
//     node[k] is the node whose packed word key[k] is.
//   - pos[node[k]] == k for every live entry, and pos[i] == -1 for
//     every node not currently in the heap (position tracking, so
//     arbitrary removal and re-keying stay O(log n)).
//   - Packed words are distinct across nodes (the low bits carry the
//     complemented node index), so the heap's max is unique and pick
//     order is deterministic regardless of sift history.
//
// The three slices are recycled across blocks by reset; a Scratch owns
// one heap per worker, keeping the steady-state admit/pick path
// allocation-free.
type readyHeap struct {
	key  []uint64
	node []int32
	pos  []int32 // node index -> heap slot, -1 when absent
}

// reset readies the heap for a block of n nodes, recycling capacity.
//
//sched:noalloc
func (h *readyHeap) reset(n int) {
	h.key = h.key[:0]
	h.node = h.node[:0]
	h.pos = buf.Int32(h.pos, n)
	for i := range h.pos {
		h.pos[i] = -1
	}
}

// len returns the live candidate count.
//
//sched:noalloc
func (h *readyHeap) len() int { return len(h.key) }

// admit inserts node i with packed priority k.
//
//sched:noalloc
func (h *readyHeap) admit(i int32, k uint64) {
	//sched:lint-ignore noalloc amortized: heap capacity is retained across blocks by the owning Scratch
	h.key = append(h.key, k)
	//sched:lint-ignore noalloc amortized: heap capacity is retained across blocks by the owning Scratch
	h.node = append(h.node, i)
	h.pos[i] = int32(len(h.key) - 1)
	h.siftUp(len(h.key) - 1)
}

// admitLazy appends node i without restoring heap order; the caller
// must heapify before the next pick. Batching the block-start fill
// (and the pinned-tail flush) this way replaces k sift-ups with one
// O(k) Floyd pass.
//
//sched:noalloc
func (h *readyHeap) admitLazy(i int32, k uint64) {
	//sched:lint-ignore noalloc amortized: heap capacity is retained across blocks by the owning Scratch
	h.key = append(h.key, k)
	//sched:lint-ignore noalloc amortized: heap capacity is retained across blocks by the owning Scratch
	h.node = append(h.node, i)
	h.pos[i] = int32(len(h.key) - 1)
}

// heapify restores max-heap order over the whole array in O(n).
//
//sched:noalloc
func (h *readyHeap) heapify() {
	for p := len(h.key)/2 - 1; p >= 0; p-- {
		h.siftDown(p)
	}
}

// pickMax removes and returns the node with the largest packed word —
// the same node the winnow path would select.
//
//sched:noalloc
func (h *readyHeap) pickMax() int32 {
	best := h.node[0]
	h.removeAt(0)
	return best
}

// remove deletes node i from the heap wherever it sits.
//
//sched:noalloc
func (h *readyHeap) remove(i int32) {
	if p := h.pos[i]; p >= 0 {
		h.removeAt(int(p))
	}
}

// rekey updates node i's packed word in place, restoring heap order
// with a single directional sift.
//
//sched:noalloc
func (h *readyHeap) rekey(i int32, k uint64) {
	p := int(h.pos[i])
	old := h.key[p]
	h.key[p] = k
	if k > old {
		h.siftUp(p)
	} else if k < old {
		h.siftDown(p)
	}
}

// removeAt deletes the entry in heap slot p: the tail entry takes its
// place and sifts whichever way restores order.
//
//sched:noalloc
func (h *readyHeap) removeAt(p int) {
	last := len(h.key) - 1
	h.pos[h.node[p]] = -1
	if p != last {
		h.key[p] = h.key[last]
		h.node[p] = h.node[last]
		h.pos[h.node[p]] = int32(p)
	}
	h.key = h.key[:last]
	h.node = h.node[:last]
	if p < last {
		h.siftDown(p)
		h.siftUp(p)
	}
}

//sched:noalloc
func (h *readyHeap) siftUp(p int) {
	k, n := h.key[p], h.node[p]
	for p > 0 {
		parent := (p - 1) / 2
		if h.key[parent] >= k {
			break
		}
		h.key[p], h.node[p] = h.key[parent], h.node[parent]
		h.pos[h.node[p]] = int32(p)
		p = parent
	}
	h.key[p], h.node[p] = k, n
	h.pos[n] = int32(p)
}

//sched:noalloc
func (h *readyHeap) siftDown(p int) {
	k, n := h.key[p], h.node[p]
	size := len(h.key)
	for {
		c := 2*p + 1
		if c >= size {
			break
		}
		if r := c + 1; r < size && h.key[r] > h.key[c] {
			c = r
		}
		if k >= h.key[c] {
			break
		}
		h.key[p], h.node[p] = h.key[c], h.node[c]
		h.pos[h.node[p]] = int32(p)
		p = c
	}
	h.key[p], h.node[p] = k, n
	h.pos[n] = int32(p)
}
