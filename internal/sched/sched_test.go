package sched

import (
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/dag"
	"daginsched/internal/heur"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
	"daginsched/internal/testgen"
)

func buildDAG(t testing.TB, bld dag.Builder, m *machine.Model, insts []isa.Inst) *dag.DAG {
	t.Helper()
	b := &block.Block{Name: "t", Insts: insts}
	for i := range b.Insts {
		b.Insts[i].Index = i
	}
	rt := resource.NewTable(resource.MemExprModel)
	rt.PrepareBlock(b.Insts)
	d := bld.Build(b, m, rt)
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid DAG: %v", err)
	}
	return d
}

// loadStall is a block where naive order stalls on the load delay slot
// but an independent instruction can fill it.
func loadStall() []isa.Inst {
	return []isa.Inst{
		isa.Load(isa.LD, isa.FP, -4, isa.O0), // lat 2
		isa.RIR(isa.ADD, isa.O0, 1, isa.O1),  // stalls one cycle in order
		isa.MovI(5, isa.O2),                  // independent filler
	}
}

func TestInOrderBaselineStalls(t *testing.T) {
	m := machine.Pipe1()
	d := buildDAG(t, dag.TableForward{}, m, loadStall())
	r := InOrder(d, m)
	if r.Stalls(m) != 1 {
		t.Fatalf("in-order stalls = %d, want 1", r.Stalls(m))
	}
}

func TestAllAlgorithmsFillTheDelaySlot(t *testing.T) {
	// The forward algorithms must fill the load delay slot. The backward
	// algorithms (Tiemann, Schlansker) schedule positionally from the
	// leaves and cannot see forward stall slots — they must still be
	// legal and no worse than program order.
	for _, al := range Table2() {
		m := machine.Pipe1()
		d := buildDAG(t, al.Builder(), m, loadStall())
		r := al.Run(d, m)
		if !Legal(d, r) {
			t.Fatalf("%s: illegal schedule %v", al.Name, r.Order)
		}
		if al.SchedDir == dag.Forward {
			if r.Stalls(m) != 0 {
				t.Errorf("%s: stalls = %d (order %v), want 0", al.Name, r.Stalls(m), r.Order)
			}
		} else if base := InOrder(d, m); r.Cycles > base.Cycles {
			t.Errorf("%s: %d cycles, worse than in-order %d", al.Name, r.Cycles, base.Cycles)
		}
	}
}

func TestAllAlgorithmsProduceLegalSchedules(t *testing.T) {
	models := []*machine.Model{machine.Pipe1(), machine.FPU(), machine.Asym(), machine.Super2()}
	for seed := int64(0); seed < 15; seed++ {
		insts := testgen.Block(seed, 30)
		for _, m := range models {
			for _, al := range Table2() {
				d := buildDAG(t, al.Builder(), m, insts)
				r := al.Run(d, m)
				if !Legal(d, r) {
					t.Fatalf("%s on %s seed %d: illegal schedule", al.Name, m.Name, seed)
				}
				base := InOrder(d, m)
				if r.Cycles <= 0 || base.Cycles <= 0 {
					t.Fatalf("%s: nonpositive cycle counts", al.Name)
				}
			}
		}
	}
}

func TestCTIPinnedLast(t *testing.T) {
	insts := append(loadStall(),
		isa.CmpI(isa.O1, 0),
		isa.Branch(isa.BNE, "L1"))
	for _, al := range Table2() {
		m := machine.Pipe1()
		d := buildDAG(t, al.Builder(), m, insts)
		r := al.Run(d, m)
		if !CTILast(d, r) {
			t.Errorf("%s: CTI not last: %v", al.Name, r.Order)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	algos := Table2()
	if len(algos) != 6 {
		t.Fatalf("Table 2 has 6 algorithms, got %d", len(algos))
	}
	type row struct {
		dagDir  string // construction pass ("f", "b", or "" for n.g.)
		dagAlgo string
		sched   dag.Direction
		combine CombineKind
		rank1   heur.Key
		nKeys   int
		post    bool
	}
	want := map[string]row{
		"gibbons-muchnick":   {"b", "n2b", dag.Forward, WinnowKind, heur.InterlockWithPrev, 4, false},
		"krishnamurthy":      {"f", "tablef", dag.Forward, PriorityKind, heur.EarliestExecTime, 5, true},
		"schlansker":         {"", "", dag.Backward, PriorityKind, heur.Slack, 2, false},
		"shieh-papachristou": {"", "", dag.Forward, WinnowKind, heur.MaxDelayToLeaf, 5, false},
		"tiemann":            {"f", "tablef", dag.Backward, PriorityKind, heur.MaxDelayFromRoot, 3, false},
		"warren":             {"f", "n2f", dag.Forward, WinnowKind, heur.EarliestExecTime, 6, false},
	}
	for _, al := range algos {
		w, ok := want[al.Name]
		if !ok {
			t.Errorf("unexpected algorithm %q", al.Name)
			continue
		}
		if w.dagAlgo == "" {
			if al.Construction != nil {
				t.Errorf("%s: construction should be n.g.", al.Name)
			}
		} else if al.Construction == nil || al.Construction.Name() != w.dagAlgo ||
			al.Construction.Direction().String() != w.dagDir {
			t.Errorf("%s: construction %v, want %s/%s", al.Name, al.Construction, w.dagDir, w.dagAlgo)
		}
		if al.SchedDir != w.sched || al.Combine != w.combine {
			t.Errorf("%s: sched dir/combine wrong", al.Name)
		}
		if len(al.Ranked) != w.nKeys || al.Ranked[0].Key != w.rank1 {
			t.Errorf("%s: ranked keys %v", al.Name, al.Ranked)
		}
		if al.Postpass != w.post {
			t.Errorf("%s: postpass = %v", al.Name, al.Postpass)
		}
	}
}

func TestAlgorithmByName(t *testing.T) {
	if _, err := AlgorithmByName("warren"); err != nil {
		t.Error(err)
	}
	if _, err := AlgorithmByName("alphago"); err == nil {
		t.Error("unknown algorithm resolved")
	}
}

func TestPriorityMatchesWinnowSemantics(t *testing.T) {
	// Packing ranked fields into one priority value must give the same
	// pick as lexicographic winnowing (ties allowed to differ only when
	// the winnow tiebreak and priority tiebreak agree: both prefer the
	// smallest index).
	keys := []RankedKey{
		{Key: heur.MaxDelayToLeaf},
		{Key: heur.ExecTime},
		{Key: heur.NumChildren},
	}
	m := machine.Pipe1()
	for seed := int64(0); seed < 20; seed++ {
		insts := testgen.Block(seed, 25)
		d := buildDAG(t, dag.TableForward{}, m, insts)
		a := heur.New(d, m)
		a.ComputeLocal()
		a.ComputeBackward()
		rw := Forward(d, m, a, Winnow(keys))
		rp := Forward(d, m, a, Priority(keys))
		for i := range rw.Order {
			if rw.Order[i] != rp.Order[i] {
				t.Fatalf("seed %d: winnow %v != priority %v", seed, rw.Order, rp.Order)
			}
		}
	}
}

func TestPriorityFallbackBeyondFourKeys(t *testing.T) {
	keys := []RankedKey{
		{Key: heur.EarliestExecTime, Min: true},
		{Key: heur.FPUBusy, Min: true},
		{Key: heur.MaxPathToLeaf},
		{Key: heur.ExecTime},
		{Key: heur.MaxDelayToLeaf},
	}
	m := machine.FPU()
	insts := testgen.Block(42, 30)
	d := buildDAG(t, dag.TableForward{}, m, insts)
	a := heur.New(d, m)
	a.ComputeLocal()
	a.ComputeBackward()
	r := Forward(d, m, a, Priority(keys))
	if !Legal(d, r) {
		t.Fatal("five-key priority schedule illegal")
	}
}

func TestFixupNeverWorsens(t *testing.T) {
	m := machine.Pipe1()
	for seed := int64(0); seed < 25; seed++ {
		insts := testgen.Block(seed, 20)
		d := buildDAG(t, dag.TableForward{}, m, insts)
		base := InOrder(d, m)
		fixed := Fixup(d, m, base)
		if !Legal(d, fixed) {
			t.Fatalf("seed %d: fixup produced illegal schedule", seed)
		}
		if fixed.Cycles > base.Cycles {
			t.Fatalf("seed %d: fixup worsened %d -> %d", seed, base.Cycles, fixed.Cycles)
		}
	}
}

func TestFixupFillsASlot(t *testing.T) {
	// In-order schedule stalls after the load; fixup must hoist the mov.
	m := machine.Pipe1()
	d := buildDAG(t, dag.TableForward{}, m, loadStall())
	base := InOrder(d, m)
	fixed := Fixup(d, m, base)
	if fixed.Cycles >= base.Cycles {
		t.Fatalf("fixup did not improve: %d -> %d", base.Cycles, fixed.Cycles)
	}
	if fixed.Order[1] != 2 {
		t.Errorf("fixup order = %v, want the mov hoisted into slot 1", fixed.Order)
	}
}

// bruteForceOptimal enumerates every topological order (tiny blocks).
func bruteForceOptimal(d *dag.DAG, m *machine.Model) int32 {
	n := d.Len()
	best := int32(1 << 30)
	parents := make([]int, n)
	for i := 0; i < n; i++ {
		parents[i] = len(d.Nodes[i].Preds)
	}
	order := make([]int32, 0, n)
	used := make([]bool, n)
	var rec func()
	rec = func() {
		if len(order) == n {
			if c := Timed(d, m, order).Cycles; c < best {
				best = c
			}
			return
		}
		for i := 0; i < n; i++ {
			if used[i] || parents[i] != 0 {
				continue
			}
			used[i] = true
			order = append(order, int32(i))
			for _, arc := range d.Nodes[i].Succs {
				parents[arc.To]--
			}
			rec()
			for _, arc := range d.Nodes[i].Succs {
				parents[arc.To]++
			}
			order = order[:len(order)-1]
			used[i] = false
		}
	}
	rec()
	return best
}

func TestBranchAndBoundIsOptimal(t *testing.T) {
	m := machine.Pipe1()
	for seed := int64(0); seed < 12; seed++ {
		insts := testgen.Block(seed, 7)
		d := buildDAG(t, dag.TableForward{}, m, insts)
		want := bruteForceOptimal(d, m)
		r := BranchAndBound(d, m)
		if !Legal(d, r) {
			t.Fatalf("seed %d: illegal optimal schedule", seed)
		}
		if r.Cycles != want {
			t.Fatalf("seed %d: branch&bound %d cycles, brute force %d", seed, r.Cycles, want)
		}
	}
}

func TestBranchAndBoundNeverWorseThanHeuristics(t *testing.T) {
	m := machine.Pipe1()
	for seed := int64(100); seed < 112; seed++ {
		insts := testgen.Block(seed, 14)
		for _, al := range Table2() {
			d := buildDAG(t, al.Builder(), m, insts)
			hr := al.Run(d, m)
			opt := BranchAndBound(d, m)
			if opt.Cycles > hr.Cycles {
				t.Fatalf("seed %d: optimal %d worse than %s's %d",
					seed, opt.Cycles, al.Name, hr.Cycles)
			}
		}
	}
}

func TestBranchAndBoundSizeLimit(t *testing.T) {
	m := machine.Pipe1()
	d := buildDAG(t, dag.TableForward{}, m, testgen.Block(1, MaxBranchAndBound+1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic past MaxBranchAndBound")
		}
	}()
	BranchAndBound(d, m)
}

func TestFPUStructuralHazard(t *testing.T) {
	// Two independent divides on a single non-pipelined divider must
	// serialize; on the pipelined model they overlap.
	insts := []isa.Inst{
		isa.Fp3(isa.FDIVS, isa.F(1), isa.F(2), isa.F(3)),
		isa.Fp3(isa.FDIVS, isa.F(4), isa.F(5), isa.F(6)),
	}
	pipe := machine.Pipe1()
	dp := buildDAG(t, dag.TableForward{}, pipe, insts)
	rp := InOrder(dp, pipe)
	if rp.Cycles != 21 { // issue 0 and 1, finish 1+20
		t.Errorf("pipelined cycles = %d, want 21", rp.Cycles)
	}
	fpu := machine.FPU()
	df := buildDAG(t, dag.TableForward{}, fpu, insts)
	rf := InOrder(df, fpu)
	if rf.Cycles != 40 { // second divide waits for the unit: issue 20
		t.Errorf("non-pipelined cycles = %d, want 40", rf.Cycles)
	}
}

func TestSuperscalarDualIssue(t *testing.T) {
	// Independent integer + FP pairs dual-issue on super2.
	insts := []isa.Inst{
		isa.MovI(1, isa.O0),
		isa.Fp3(isa.FADDS, isa.F(1), isa.F(2), isa.F(3)),
		isa.MovI(2, isa.O1),
		isa.Fp3(isa.FADDS, isa.F(4), isa.F(5), isa.F(6)),
	}
	m := machine.Super2()
	d := buildDAG(t, dag.TableForward{}, m, insts)
	r := InOrder(d, m)
	if r.Issue[0] != 0 || r.Issue[1] != 0 || r.Issue[2] != 1 || r.Issue[3] != 1 {
		t.Errorf("dual-issue cycles = %v", r.Issue)
	}
	// Same-group instructions cannot share a cycle.
	ints := []isa.Inst{isa.MovI(1, isa.O0), isa.MovI(2, isa.O1)}
	d2 := buildDAG(t, dag.TableForward{}, m, ints)
	r2 := InOrder(d2, m)
	if r2.Issue[1] != 1 {
		t.Errorf("two IU ops issued same cycle: %v", r2.Issue)
	}
}

func TestAlternateTypePairsClasses(t *testing.T) {
	// Warren's alternate-type heuristic should interleave int/FP on the
	// superscalar machine: an int-int-fp-fp stream becomes pairable.
	insts := []isa.Inst{
		isa.MovI(1, isa.O0),
		isa.MovI(2, isa.O1),
		isa.Fp3(isa.FADDS, isa.F(1), isa.F(2), isa.F(3)),
		isa.Fp3(isa.FADDS, isa.F(4), isa.F(5), isa.F(6)),
	}
	m := machine.Super2()
	al := Warren()
	d := buildDAG(t, al.Builder(), m, insts)
	r := al.Run(d, m)
	if r.Cycles != 2+4-1 {
		t.Errorf("alternated schedule cycles = %d (order %v), want 5", r.Cycles, r.Order)
	}
	base := InOrder(d, m)
	if base.Cycles <= r.Cycles {
		t.Errorf("baseline (%d) should be worse than alternated (%d)", base.Cycles, r.Cycles)
	}
}

func TestTiemannBirthingPullsRAWParent(t *testing.T) {
	// Backward pass: after picking the last consumer, its RAW parent
	// gets a boost, shortening the register lifetime.
	insts := []isa.Inst{
		isa.MovI(1, isa.O0),                      // RAW parent of the add
		isa.MovI(2, isa.O1),                      // equal max-delay-to-root
		isa.RRR(isa.ADD, isa.O0, isa.O2, isa.O3), // consumer of %o0
	}
	m := machine.Pipe1()
	al := Tiemann()
	d := buildDAG(t, al.Builder(), m, insts)
	r := al.Run(d, m)
	if !Legal(d, r) {
		t.Fatal("illegal Tiemann schedule")
	}
	// Backward: add picked first (max delay from root); then birthing
	// boosts mov %o0 over mov %o1, so mov %o0 sits right before add.
	if r.Order[1] != 0 || r.Order[2] != 2 {
		t.Errorf("order = %v, want the RAW parent adjacent to its consumer", r.Order)
	}
}

func TestSchlanskerFollowsSlack(t *testing.T) {
	// The zero-slack divide chain must be scheduled first.
	insts := []isa.Inst{
		isa.MovI(3, isa.O5), // slackful
		isa.Fp3(isa.FDIVS, isa.F(1), isa.F(2), isa.F(3)), // critical
		isa.Fp3(isa.FADDS, isa.F(3), isa.F(1), isa.F(4)), // critical
	}
	m := machine.Pipe1()
	al := Schlansker()
	d := buildDAG(t, al.Builder(), m, insts)
	r := al.Run(d, m)
	// The backward pass picks zero-slack nodes first (fadds, then
	// fdivs), so the slackful mov is deferred to the earliest program
	// position: it must not separate the critical chain.
	if r.Order[1] != 1 || r.Order[2] != 2 {
		t.Errorf("order = %v, want the critical divide chain kept contiguous at the end", r.Order)
	}
}

func TestStateDynamicHeuristics(t *testing.T) {
	m := machine.Pipe1()
	insts := []isa.Inst{
		isa.Load(isa.LD, isa.FP, -4, isa.O0),     // 0: lat 2
		isa.RIR(isa.ADD, isa.O0, 1, isa.O1),      // 1: child of 0, delay 2
		isa.MovI(7, isa.O2),                      // 2: independent
		isa.RRR(isa.ADD, isa.O1, isa.O2, isa.O3), // 3: child of 1 and 2
	}
	d := buildDAG(t, dag.TableForward{}, m, insts)
	a := heur.New(d, m)
	a.ComputeLocal()
	s := newState(d, m, a)

	// Before anything is scheduled: node 0 uncovers nothing (delay-2
	// child), node 2 has one single-parent child... node 3 has two
	// unscheduled parents, so neither 1 nor 2 sees it as single-parent.
	if s.NumSingleParentChildren(0) != 1 {
		t.Errorf("single-parent children of 0 = %d, want 1", s.NumSingleParentChildren(0))
	}
	if s.NumUncoveredChildren(0) != 0 {
		t.Errorf("uncovered children of 0 = %d, want 0 (delay 2)", s.NumUncoveredChildren(0))
	}
	if s.NumSingleParentChildren(2) != 0 {
		t.Errorf("single-parent children of 2 = %d, want 0", s.NumSingleParentChildren(2))
	}
	if s.SumDelaysToSingleParentChildren(0) != 2 {
		t.Errorf("sum delays = %d, want 2", s.SumDelaysToSingleParentChildren(0))
	}

	s.place(0)
	if s.EET(1) != 2 {
		t.Errorf("EET(1) = %d after load, want 2", s.EET(1))
	}
	if !s.InterlocksWithPrev(1) {
		t.Error("add should interlock with the just-issued load")
	}
	if s.InterlocksWithPrev(2) {
		t.Error("independent mov should not interlock")
	}
	// After scheduling 2 as well, node 3 becomes single-parent of 1.
	s.place(2)
	if s.NumSingleParentChildren(1) != 1 || s.NumUncoveredChildren(1) != 1 {
		t.Errorf("node 1 uncover counts = %d/%d, want 1/1",
			s.NumSingleParentChildren(1), s.NumUncoveredChildren(1))
	}
}

func TestStallsSuperscalarIdeal(t *testing.T) {
	m := machine.Super2()
	insts := []isa.Inst{
		isa.MovI(1, isa.O0),
		isa.Fp3(isa.FADDS, isa.F(1), isa.F(2), isa.F(3)),
	}
	d := buildDAG(t, dag.TableForward{}, m, insts)
	r := InOrder(d, m)
	if r.Stalls(m) != 0 {
		t.Errorf("dual-issued pair should have 0 stalls, got %d", r.Stalls(m))
	}
}

func TestEmptyBlockScheduling(t *testing.T) {
	m := machine.Pipe1()
	d := buildDAG(t, dag.TableForward{}, m, nil)
	for _, al := range Table2() {
		r := al.Run(d, m)
		if len(r.Order) != 0 || r.Cycles != 0 {
			t.Errorf("%s: empty block mishandled", al.Name)
		}
	}
	if r := BranchAndBound(d, m); len(r.Order) != 0 {
		t.Error("branch&bound: empty block mishandled")
	}
}

func TestBackwardEqualsForwardLegality(t *testing.T) {
	// Backward scheduling with any key set must yield legal schedules.
	m := machine.Pipe1()
	for seed := int64(500); seed < 520; seed++ {
		insts := testgen.Block(seed, 22)
		d := buildDAG(t, dag.TableBackward{}, m, insts)
		a := heur.New(d, m)
		a.ComputeForward()
		r := Backward(d, m, a, Priority([]RankedKey{{Key: heur.MaxDelayFromRoot}}))
		if !Legal(d, r) {
			t.Fatalf("seed %d: illegal backward schedule", seed)
		}
	}
}

func TestCombineKindString(t *testing.T) {
	if WinnowKind.String() != "winnow" || PriorityKind.String() != "priority fn" {
		t.Error("combinator names wrong")
	}
}
