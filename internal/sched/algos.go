package sched

import (
	"fmt"

	"daginsched/internal/dag"
	"daginsched/internal/heur"
	"daginsched/internal/machine"
)

// CombineKind distinguishes how an algorithm merges its heuristics:
// "Some algorithms combine the heuristic information into a single
// priority value per node, while others apply heuristics in a given
// order in a winnowing-like process" (Section 5).
type CombineKind uint8

const (
	// WinnowKind filters candidates heuristic by heuristic.
	WinnowKind CombineKind = iota
	// PriorityKind packs ranked heuristics into one priority value.
	PriorityKind
)

// String names the combinator as Table 2 does.
func (c CombineKind) String() string {
	if c == PriorityKind {
		return "priority fn"
	}
	return "winnow"
}

// Algorithm is one published scheduling algorithm as characterized by
// Table 2 of the paper: a DAG-construction choice, a scheduling-pass
// direction, a ranked heuristic list and a combinator.
type Algorithm struct {
	Name string
	Cite string // reference as the paper cites it
	// Construction is the published DAG construction method; nil when
	// the reference does not give one ("n.g."), in which case Run uses
	// table-building forward.
	Construction dag.Builder
	// SchedDir is the scheduling-pass direction.
	SchedDir dag.Direction
	// Combine selects winnowing vs. a single priority value.
	Combine CombineKind
	// Ranked is the ordered heuristic list (rank 1 first).
	Ranked []RankedKey
	// Postpass enables Krishnamurthy's delay-slot fixup after the
	// heuristic pass.
	Postpass bool
	// TimeIndexed places instructions through the reservation table
	// (earliest empty slots, with backfilling) instead of sequential
	// forward/backward emission — the placement style VLIW
	// critical-path methods like Schlansker's assume.
	TimeIndexed bool
}

// Selector builds the algorithm's heuristic combinator.
func (al *Algorithm) Selector() Selector {
	if al.Combine == PriorityKind {
		return Priority(al.Ranked)
	}
	return Winnow(al.Ranked)
}

// Builder returns the construction algorithm to use: the published one,
// or table-building forward when the reference does not name one.
func (al *Algorithm) Builder() dag.Builder {
	if al.Construction != nil {
		return al.Construction
	}
	return dag.TableForward{}
}

// Run schedules an already-built DAG with the algorithm's direction,
// heuristics and post-pass.
func (al *Algorithm) Run(d *dag.DAG, m *machine.Model) *Result {
	a := heur.New(d, m)
	prepareAnnot(a, al.Ranked)
	var r *Result
	switch {
	case al.TimeIndexed:
		r = Reservation(d, m, a, al.Selector())
	case al.SchedDir == dag.Backward:
		r = Backward(d, m, a, al.Selector())
	default:
		r = Forward(d, m, a, al.Selector())
	}
	if al.Postpass {
		r = Fixup(d, m, r)
	}
	return r
}

// prepareAnnot computes exactly the static passes the ranked keys need.
func prepareAnnot(a *heur.Annot, ranked []RankedKey) {
	var local, fwd, bwd, crit, desc, regs bool
	for _, rk := range ranked {
		switch rk.Key {
		case heur.InterlockChild, heur.ExecTime, heur.DelaysToChildren,
			heur.DelaysFromParents:
			local = true
		case heur.MaxPathFromRoot, heur.MaxDelayFromRoot, heur.EarliestStart:
			fwd = true
		case heur.MaxPathToLeaf, heur.MaxDelayToLeaf:
			bwd = true
		case heur.LatestStart, heur.Slack:
			crit = true
		case heur.NumDescendants, heur.SumExecDesc:
			desc = true
		case heur.RegsBorn, heur.RegsKilled, heur.Liveness:
			regs = true
		}
	}
	if local {
		a.ComputeLocal()
	}
	if fwd {
		a.ComputeForward()
	}
	if bwd {
		a.ComputeBackward()
	}
	if crit {
		a.ComputeCritical()
	}
	if desc {
		a.ComputeDescendants()
	}
	if regs {
		a.ComputeRegisterUsage()
	}
}

// The six published algorithms of Table 2, configured row by row.

// GibbonsMuchnick is Gibbons & Muchnick [3]: backward n² construction,
// forward winnowing on (1) no interlock with the previous instruction,
// (2) interlock with child, (3) #children, (4) max path to a leaf.
func GibbonsMuchnick() *Algorithm {
	return &Algorithm{
		Name:         "gibbons-muchnick",
		Cite:         "Gibbons & Muchnick [3]",
		Construction: dag.N2Backward{},
		SchedDir:     dag.Forward,
		Combine:      WinnowKind,
		Ranked: []RankedKey{
			{Key: heur.InterlockWithPrev, Min: true}, // "no interlock"
			{Key: heur.InterlockChild},
			{Key: heur.NumChildren},
			{Key: heur.MaxPathToLeaf},
		},
	}
}

// Krishnamurthy is Krishnamurthy [8]: forward table building, forward
// scheduling with a priority function on (1) earliest time, (2) FPU
// interlocks, (3) max path to leaf, (4) execution time, (5) max delay
// to leaf, plus a post-pass fixup that fills remaining delay slots.
func Krishnamurthy() *Algorithm {
	return &Algorithm{
		Name:         "krishnamurthy",
		Cite:         "Krishnamurthy [8]",
		Construction: dag.TableForward{},
		SchedDir:     dag.Forward,
		Combine:      PriorityKind,
		Ranked: []RankedKey{
			{Key: heur.EarliestExecTime, Min: true},
			{Key: heur.FPUBusy, Min: true},
			{Key: heur.MaxPathToLeaf},
			{Key: heur.ExecTime},
			{Key: heur.MaxDelayToLeaf},
		},
		Postpass: true,
	}
}

// Schlansker is Schlansker [12]: construction not given, backward
// scheduling with a priority function on (1) slack, (2) latest start
// time — the critical-path algorithm whose forward+backward heuristic
// requirement Section 5 calls unavoidable.
func Schlansker() *Algorithm {
	return &Algorithm{
		Name:     "schlansker",
		Cite:     "Schlansker [12]",
		SchedDir: dag.Backward,
		Combine:  PriorityKind,
		Ranked: []RankedKey{
			{Key: heur.Slack, Min: true},
			{Key: heur.LatestStart, Min: false},
		},
	}
}

// SchlanskerVLIW is Schlansker's slack/LST priority driven through the
// reservation-table placer instead of sequential backward emission —
// the time-indexed schedule his VLIW tutorial assumes. On a strict
// in-order scalar pipeline the published backward emission clusters the
// zero-slack chain back to back (see EXPERIMENTS.md); this pairing
// recovers the method's intent. Not a Table 2 row.
func SchlanskerVLIW() *Algorithm {
	al := Schlansker()
	al.Name = "schlansker-resv"
	al.Cite = "Schlansker [12] + reservation table"
	al.TimeIndexed = true
	return al
}

// ShiehPapachristou is Shieh & Papachristou [13]: construction not
// given, forward winnowing on (1) max delay to leaf, (2) execution
// time, (3) #children, (4) #parents (inverse), (5) max path from root
// (inverse — the heuristic Section 5 says "could possibly be omitted or
// replaced with little effect because it is the last ... applied").
func ShiehPapachristou() *Algorithm {
	return &Algorithm{
		Name:     "shieh-papachristou",
		Cite:     "Shieh & Papachristou [13]",
		SchedDir: dag.Forward,
		Combine:  WinnowKind,
		Ranked: []RankedKey{
			{Key: heur.MaxDelayToLeaf},
			{Key: heur.ExecTime},
			{Key: heur.NumChildren},
			{Key: heur.NumParents, Min: true},
			{Key: heur.MaxPathFromRoot, Min: true},
		},
	}
}

// Tiemann is Tiemann's GNU scheduler [15]: forward table building,
// backward scheduling with a priority function on (1) max delay from
// root, (2) the birthing-instruction adjustment, (3) original order.
func Tiemann() *Algorithm {
	return &Algorithm{
		Name:         "tiemann",
		Cite:         "Tiemann (GCC) [15]",
		Construction: dag.TableForward{},
		SchedDir:     dag.Backward,
		Combine:      PriorityKind,
		Ranked: []RankedKey{
			{Key: heur.MaxDelayFromRoot},
			{Key: heur.Birthing},
			{Key: heur.OriginalOrder},
		},
	}
}

// Warren is Warren [16]: forward n² construction, forward winnowing on
// (1) earliest time, (2) alternate type, (3) max delay to leaf,
// (4) register liveness (inverse: lower pressure first), (5) #uncovered
// children, (6) original order.
func Warren() *Algorithm {
	return &Algorithm{
		Name:         "warren",
		Cite:         "Warren [16]",
		Construction: dag.N2Forward{},
		SchedDir:     dag.Forward,
		Combine:      WinnowKind,
		Ranked: []RankedKey{
			{Key: heur.EarliestExecTime, Min: true},
			{Key: heur.AlternateType},
			{Key: heur.MaxDelayToLeaf},
			{Key: heur.Liveness, Min: true},
			{Key: heur.NumUncovered},
			{Key: heur.OriginalOrder, Min: true},
		},
	}
}

// Table2 returns the six published algorithms in the paper's column
// order.
func Table2() []*Algorithm {
	return []*Algorithm{
		GibbonsMuchnick(), Krishnamurthy(), Schlansker(),
		ShiehPapachristou(), Tiemann(), Warren(),
	}
}

// AlgorithmByName returns a Table 2 algorithm by name, for CLI flags.
func AlgorithmByName(name string) (*Algorithm, error) {
	for _, al := range Table2() {
		if al.Name == name {
			return al, nil
		}
	}
	return nil, fmt.Errorf("sched: unknown algorithm %q", name)
}
