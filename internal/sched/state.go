// Package sched implements list scheduling over dependence DAGs: a
// forward scheduler with an issue clock, function-unit tracking and the
// dynamic ("v") heuristics of Table 1; a backward scheduler; the two
// heuristic combinators the paper distinguishes (winnowing vs. a single
// priority value); the six published algorithms analyzed in Table 2 of
// Smotherman et al. (MICRO-24, 1991); Krishnamurthy's post-pass fixup;
// the Section 1 reservation-table scheduler (earliest-empty-slot
// placement with backfilling); cross-block latency inheritance (Carry,
// the paper's third future-work item); and a branch-and-bound optimal
// scheduler (the first future-work item) for small blocks.
package sched

import (
	"daginsched/internal/buf"
	"daginsched/internal/dag"
	"daginsched/internal/heur"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
)

// Result is a schedule for one basic block.
type Result struct {
	// Order lists node indices in scheduled order.
	Order []int32
	// Issue is the issue cycle of each node, indexed by node.
	Issue []int32
	// Cycles is the completion time: max(issue + latency) over all nodes.
	Cycles int32
}

// Stalls returns the number of issue slots lost to waiting: the
// difference between the schedule's span in issue cycles and the
// minimum span the machine's issue width allows.
func (r *Result) Stalls(m *machine.Model) int32 {
	if len(r.Order) == 0 {
		return 0
	}
	last := int32(0)
	for _, c := range r.Issue {
		if c > last {
			last = c
		}
	}
	span := last + 1
	ideal := (int32(len(r.Order)) + int32(m.IssueWidth) - 1) / int32(m.IssueWidth)
	if span < ideal {
		return 0
	}
	return span - ideal
}

// State is the live scheduling state handed to selectors. It exposes
// every dynamic ("v") heuristic of Table 1.
type State struct {
	D *dag.DAG
	M *machine.Model
	A *heur.Annot

	// csr is the DAG's frozen flat-adjacency view when available (nil
	// otherwise). Every arc walk in the scheduling loop — the
	// ready-list decrement in place, the dynamic child/parent
	// heuristics — goes through succs/preds so a frozen DAG is
	// scheduled entirely over the two flat arc arrays.
	csr *dag.CSR

	time           int32   // current issue cycle
	eet            []int32 // earliest execution time per node (dynamic)
	unschedParents []int32
	unschedKids    []int32
	scheduled      []bool
	issue          []int32
	order          []int32
	last           int32 // most recently scheduled node, -1 initially

	usedSlots  int         // instructions issued in the current cycle
	usedGroups int         // bitmask of issue groups used this cycle
	unitBusy   []([]int32) // per class: busy-until time of each unit

	// Selection memos. memoGen is a generation counter bumped whenever
	// the clock advances or a function unit is occupied — the only two
	// events (besides a child's EET rising) that can change what
	// unitFree or EffectiveEET return. A cached value is live iff its
	// stamp equals memoGen, so invalidation is one integer increment
	// instead of a sweep. Stamps start at 0 against a memoGen of 1, so a
	// reset invalidates everything without clearing.
	memoGen  int32
	effMemo  []int32 // cached EffectiveEET per node
	effStamp []int32 // generation the cache entry was filled at
	ufFree   []int32 // per class: cached earliest-free cycle
	ufIdx    []int32 // per class: cached free-unit index
	ufStamp  []int32 // per class: generation of the cached pair

	// epoch counts resets. Selector-side per-block caches (PooledWinnow's
	// static prefix) key on (state, epoch) so a recycled State — or a
	// recycled DAG at the same address — can never serve stale values.
	epoch uint64
}

func newState(d *dag.DAG, m *machine.Model, a *heur.Annot) *State {
	s := &State{}
	s.reset(d, m, a)
	return s
}

// reset readies s for a fresh scheduling pass over d, recycling every
// slice's capacity. A per-worker State reset per block is what keeps
// the batch engine's steady-state scheduling path allocation-free.
func (s *State) reset(d *dag.DAG, m *machine.Model, a *heur.Annot) {
	n := d.Len()
	s.D, s.M, s.A = d, m, a
	s.csr = d.FrozenCSR()
	s.eet = buf.Int32(s.eet, n)
	s.unschedParents = buf.Int32(s.unschedParents, n)
	s.unschedKids = buf.Int32(s.unschedKids, n)
	s.scheduled = buf.Bool(s.scheduled, n)
	s.issue = buf.Int32(s.issue, n)
	if cap(s.order) < n {
		s.order = make([]int32, 0, n)
	} else {
		s.order = s.order[:0]
	}
	s.last = -1
	s.time, s.usedSlots, s.usedGroups = 0, 0, 0
	s.epoch++
	s.memoGen = 1
	s.effMemo = buf.Int32(s.effMemo, n)
	s.effStamp = buf.Int32(s.effStamp, n)
	s.ufFree = buf.Int32(s.ufFree, isa.NumClasses)
	s.ufIdx = buf.Int32(s.ufIdx, isa.NumClasses)
	s.ufStamp = buf.Int32(s.ufStamp, isa.NumClasses)
	if c := s.csr; c != nil {
		for i := int32(0); i < int32(n); i++ {
			s.unschedParents[i] = c.NumPreds(i)
			s.unschedKids[i] = c.NumSuccs(i)
			s.issue[i] = -1
		}
	} else {
		for i := 0; i < n; i++ {
			s.unschedParents[i] = int32(len(d.Nodes[i].Preds))
			s.unschedKids[i] = int32(len(d.Nodes[i].Succs))
			s.issue[i] = -1
		}
	}
	if cap(s.unitBusy) < isa.NumClasses {
		s.unitBusy = make([][]int32, isa.NumClasses)
	}
	for c := 0; c < isa.NumClasses; c++ {
		if k := m.Units[c]; k > 0 {
			s.unitBusy[c] = buf.Int32(s.unitBusy[c], k)
		} else {
			s.unitBusy[c] = s.unitBusy[c][:0]
		}
	}
}

// succs returns node i's successor arcs, from the flat CSR view when
// the DAG is frozen (identical order either way).
func (s *State) succs(i int32) []dag.Arc {
	if s.csr != nil {
		return s.csr.Succs(i)
	}
	return s.D.Nodes[i].Succs
}

// preds returns node i's predecessor arcs, from the flat CSR view when
// the DAG is frozen (identical order either way).
func (s *State) preds(i int32) []dag.Arc {
	if s.csr != nil {
		return s.csr.Preds(i)
	}
	return s.D.Nodes[i].Preds
}

// Time returns the current issue cycle.
func (s *State) Time() int32 { return s.time }

// Last returns the most recently scheduled node, or -1.
func (s *State) Last() int32 { return s.last }

// EET returns a node's earliest execution time, the dynamic heuristic
// maintained as parents are scheduled: "when an instruction is chosen
// each child has its earliest execution time updated by taking the
// maximum of the previous value and the current time plus the arc delay
// from the scheduled node".
func (s *State) EET(i int32) int32 { return s.eet[i] }

// unitFree returns the earliest cycle at which a function unit for
// class c is available, and the index of that unit. Classes with no
// unit limit are always free. The linear unit scan is memoized per
// class per generation: unit busy-until times only change when place
// occupies a unit (which bumps memoGen), so between occupations every
// selector probe of the same class is a stamp compare and two loads.
//
//sched:noalloc
func (s *State) unitFree(c isa.Class) (int32, int) {
	units := s.unitBusy[c]
	if len(units) == 0 {
		return 0, -1
	}
	if s.ufStamp[c] == s.memoGen {
		return s.ufFree[c], int(s.ufIdx[c])
	}
	best, bi := units[0], 0
	for i, t := range units[1:] {
		if t < best {
			best, bi = t, i+1
		}
	}
	s.ufFree[c], s.ufIdx[c], s.ufStamp[c] = best, int32(bi), s.memoGen
	return best, bi
}

// EffectiveEET is EET extended with structural hazards: the candidate
// also waits for a free function unit ("if the function units are not
// pipelined, then structural hazards can be considered by performing a
// maximum earliest starting time calculation that includes the finish
// times of any required function units").
//
// The result is memoized under the dirty-set rule: a cached entry
// survives until the generation bumps (clock advance or unit
// occupation) or the node's own EET rises because a parent was placed
// (place zeroes that node's stamp). Winnowing selectors evaluate this
// key twice per candidate per pick — once scanning for the best value,
// once filtering — so even within a single pick the memo halves the
// work.
//
//sched:noalloc
func (s *State) EffectiveEET(i int32) int32 {
	if s.effStamp[i] == s.memoGen {
		return s.effMemo[i]
	}
	t := s.eet[i]
	if free, _ := s.unitFree(s.D.Nodes[i].Inst.Class()); free > t {
		t = free
	}
	s.effMemo[i], s.effStamp[i] = t, s.memoGen
	return t
}

// InterlocksWithPrev is the Table 1 "interlock with previous
// instruction" predicate: the candidate has a dependence arc from the
// most recently scheduled node with a delay that blocks back-to-back
// issue.
func (s *State) InterlocksWithPrev(i int32) bool {
	if s.last < 0 {
		return false
	}
	for _, arc := range s.preds(i) {
		if arc.From == s.last && s.issue[s.last]+arc.Delay > s.time+1 {
			return true
		}
	}
	return false
}

// NumSingleParentChildren counts children whose only unscheduled parent
// is the candidate (Table 1's #single-parent children, computed with
// the #unscheduled_parents counters exactly as the paper's pseudocode
// does).
func (s *State) NumSingleParentChildren(i int32) int32 {
	var n int32
	for _, arc := range s.succs(i) {
		if s.unschedParents[arc.To] == 1 {
			n++
		}
	}
	return n
}

// SumDelaysToSingleParentChildren weights the single-parent children by
// their arc delays.
func (s *State) SumDelaysToSingleParentChildren(i int32) int32 {
	var n int32
	for _, arc := range s.succs(i) {
		if s.unschedParents[arc.To] == 1 {
			n += arc.Delay
		}
	}
	return n
}

// NumUncoveredChildren counts children that would join the candidate
// list immediately if i were scheduled: single-parent children at arc
// delay 1 ("the first if condition is extended to also require that the
// delay to the child be equal to one").
func (s *State) NumUncoveredChildren(i int32) int32 {
	var n int32
	for _, arc := range s.succs(i) {
		if s.unschedParents[arc.To] == 1 && arc.Delay == 1 {
			n++
		}
	}
	return n
}

// IsBirthing reports whether candidate i is an RAW parent of the most
// recently scheduled node — Tiemann's backward-pass "birthing
// instruction" adjustment, which shortens the lifetime of the
// corresponding live register.
func (s *State) IsBirthing(i int32) bool {
	if s.last < 0 {
		return false
	}
	for _, arc := range s.succs(i) {
		if arc.To == s.last && arc.Kind == dag.RAW {
			return true
		}
	}
	return false
}

// AlternatesType reports whether candidate i belongs to a different
// superscalar issue group than the most recently scheduled instruction.
func (s *State) AlternatesType(i int32) bool {
	if s.last < 0 {
		return true
	}
	return machine.IssueGroup(s.D.Nodes[i].Inst.Class()) !=
		machine.IssueGroup(s.D.Nodes[s.last].Inst.Class())
}

// FPUBusyPenalty returns how many cycles candidate i would wait for its
// (non-pipelined) function unit beyond the current time.
func (s *State) FPUBusyPenalty(i int32) int32 {
	free, _ := s.unitFree(s.D.Nodes[i].Inst.Class())
	if free <= s.time {
		return 0
	}
	return free - s.time
}
