package sched

import (
	"testing"

	"daginsched/internal/block"
	"daginsched/internal/dag"
	"daginsched/internal/heur"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/pipe"
	"daginsched/internal/resource"
	"daginsched/internal/testgen"
)

// chainBlocks builds a two-block chain with a cross-block latency: the
// first block ends by launching a divide into %f6; the second consumes
// it immediately but has independent work available to cover the wait.
func chainBlocks() [][]isa.Inst {
	return [][]isa.Inst{
		{
			isa.MovI(1, isa.O0),
			isa.Fp3(isa.FDIVD, isa.F(0), isa.F(2), isa.F(6)), // 20 cycles in flight
		},
		{
			// The dependent chain is the longest in the block, so a
			// purely local critical-path scheduler issues it first —
			// and then the whole block idles behind the in-flight
			// divide, with the cheap independent work trapped behind
			// the stall (in-order issue). A scheduler that knows the
			// inherited latency runs the independent work first.
			isa.Fp3(isa.FADDD, isa.F(6), isa.F(8), isa.F(10)), // wants the divide
			isa.Store(isa.STDF, isa.F(10), isa.SP, 64),
			// Independent cover, more of it than the faddd→stdf gap can
			// hide, so trapping it behind the stall costs real cycles.
			isa.MovI(2, isa.O1),
			isa.MovI(3, isa.O2),
			isa.MovI(4, isa.L0),
			isa.MovI(5, isa.L1),
			isa.MovI(6, isa.L2),
			isa.MovI(7, isa.L3),
			isa.RIR(isa.ADD, isa.O1, 1, isa.O3),
			isa.RIR(isa.ADD, isa.O2, 2, isa.O4),
			isa.Store(isa.ST, isa.O3, isa.FP, -4),
			isa.Store(isa.ST, isa.O4, isa.FP, -8),
		},
	}
}

func buildChain(t *testing.T, bodies [][]isa.Inst, m *machine.Model) ([]*dag.DAG, []isa.Inst) {
	t.Helper()
	var dags []*dag.DAG
	var flat []isa.Inst
	for _, body := range bodies {
		b := &block.Block{Name: "c", Insts: body, Start: len(flat)}
		for i := range b.Insts {
			b.Insts[i].Index = i
		}
		rt := resource.NewTable(resource.MemExprModel)
		rt.PrepareBlock(b.Insts)
		d := dag.TableForward{}.Build(b, m, rt)
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		dags = append(dags, d)
		flat = append(flat, body...)
	}
	return dags, flat
}

// simulateChain concatenates the per-block orders and runs the
// independent pipeline simulator over the whole program, which carries
// register state across block boundaries exactly like hardware would.
func simulateChain(flat []isa.Inst, dags []*dag.DAG, results []*Result, m *machine.Model) int32 {
	var order []int32
	base := int32(0)
	for bi, r := range results {
		for _, node := range r.Order {
			order = append(order, base+node)
		}
		base += int32(dags[bi].Len())
	}
	rt := resource.NewTable(resource.MemExprModel)
	rt.PrepareBlock(flat)
	return pipe.Simulate(flat, order, m, rt).Cycles
}

func TestCarryOutReportsInFlightLatencies(t *testing.T) {
	m := machine.Pipe1()
	dags, _ := buildChain(t, chainBlocks(), m)
	r := InOrder(dags[0], m)
	c := CarryOut(dags[0], m, r)
	// The divide issues at cycle 1, block ends at cycle 1, so %f6 (and
	// its pair half %f7) arrive 20 cycles later: 1+20 - 2 = 19 relative.
	if c.Ready[isa.F(6)] != 19 {
		t.Errorf("Ready[f6] = %d, want 19", c.Ready[isa.F(6)])
	}
	if c.Ready[isa.F(7)] != 20 { // odd half: +1 pair skew
		t.Errorf("Ready[f7] = %d, want 20", c.Ready[isa.F(7)])
	}
	if c.Ready[isa.O0] > 0 {
		t.Errorf("Ready[o0] = %d, want none (completed in-block)", c.Ready[isa.O0])
	}
}

func TestGlobalSchedulingCoversCrossBlockStall(t *testing.T) {
	m := machine.Pipe1()
	dags, flat := buildChain(t, chainBlocks(), m)
	local := ScheduleChain(dags, m, false)
	global := ScheduleChain(dags, m, true)
	// The local scheduler, blind to the in-flight divide, issues the
	// dependent faddd first; the global one defers it behind the cover.
	if local[1].Order[0] != 0 {
		t.Fatalf("local schedule unexpectedly avoided the stall: %v", local[1].Order)
	}
	if global[1].Order[0] == 0 {
		t.Fatalf("global schedule should defer the faddd: %v", global[1].Order)
	}
	lc := simulateChain(flat, dags, local, m)
	gc := simulateChain(flat, dags, global, m)
	if gc > lc {
		t.Fatalf("global scheduling worsened the chain: %d vs %d", gc, lc)
	}
	if gc == lc {
		t.Fatalf("global scheduling should help here: both %d", gc)
	}
}

func TestGlobalHelpsInAggregateOnRandomChains(t *testing.T) {
	// The carry adds information but the greedy selector is not optimal,
	// so individual chains may regress by a few tiebreak cycles; across
	// many chains the inherited latencies must win on balance and never
	// lose big anywhere.
	m := machine.Pipe1()
	var localTotal, globalTotal int32
	for seed := int64(0); seed < 20; seed++ {
		var bodies [][]isa.Inst
		for b := 0; b < 4; b++ {
			bodies = append(bodies, testgen.Block(seed*10+int64(b), 12))
		}
		dags, flat := buildChain(t, bodies, m)
		local := ScheduleChain(dags, m, false)
		global := ScheduleChain(dags, m, true)
		lc := simulateChain(flat, dags, local, m)
		gc := simulateChain(flat, dags, global, m)
		localTotal += lc
		globalTotal += gc
		if gc > lc+5 {
			t.Fatalf("seed %d: global %d far worse than local %d", seed, gc, lc)
		}
	}
	if globalTotal > localTotal {
		t.Fatalf("global scheduling lost in aggregate: %d vs %d cycles",
			globalTotal, localTotal)
	}
}

func TestCarryBusyUnits(t *testing.T) {
	m := machine.FPU()
	dags, _ := buildChain(t, chainBlocks(), m)
	r := InOrder(dags[0], m)
	c := CarryOut(dags[0], m, r)
	if c.Busy[isa.ClassFPD] <= 0 {
		t.Errorf("divider busy time not carried: %d", c.Busy[isa.ClassFPD])
	}
	// Applying the carry must delay a divide in the next block.
	a := newState(dags[1], m, nil)
	applyCarry(a, c)
	// No divide in block 2; but the unit busy must be seeded anyway.
	if a.unitBusy[isa.ClassFPD][0] != c.Busy[isa.ClassFPD] {
		t.Error("unit busy carry not applied")
	}
}

func TestJoinTakesPerRegisterMax(t *testing.T) {
	a := &Carry{}
	a.Ready[isa.F(6)] = 10
	a.Busy[isa.ClassFPD] = 4
	b := &Carry{}
	b.Ready[isa.F(6)] = 3
	b.Ready[isa.O0] = 7
	j := Join(a, nil, b)
	if j.Ready[isa.F(6)] != 10 || j.Ready[isa.O0] != 7 {
		t.Fatalf("join ready = %d/%d", j.Ready[isa.F(6)], j.Ready[isa.O0])
	}
	if j.Busy[isa.ClassFPD] != 4 {
		t.Fatalf("join busy = %d", j.Busy[isa.ClassFPD])
	}
	if empty := Join(); empty.Ready[isa.O0] != 0 {
		t.Fatal("empty join should be zero")
	}
}

func TestRunWithCarryFallsBackForBackward(t *testing.T) {
	m := machine.Pipe1()
	dags, _ := buildChain(t, chainBlocks(), m)
	carry := CarryOut(dags[0], m, InOrder(dags[0], m))
	// Backward algorithms cannot exploit the carry: same result as Run.
	tm := Tiemann()
	a := tm.RunWithCarry(dags[1], m, carry)
	b := tm.Run(dags[1], m)
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatal("backward fallback diverged from Run")
		}
	}
	// Forward algorithms do exploit it.
	kr := Krishnamurthy()
	fwd := kr.RunWithCarry(dags[1], m, carry)
	if !Legal(dags[1], fwd) {
		t.Fatal("carry-aware run illegal")
	}
}

func TestSelectorKeysAccessors(t *testing.T) {
	keys := []RankedKey{{Key: heur.ExecTime}}
	if len(Winnow(keys).Keys()) != 1 || len(Priority(keys).Keys()) != 1 {
		t.Fatal("Keys() accessors broken")
	}
}

func TestStateAccessors(t *testing.T) {
	m := machine.Pipe1()
	dags, _ := buildChain(t, chainBlocks(), m)
	s := newState(dags[0], m, nil)
	if s.Time() != 0 || s.Last() != -1 {
		t.Fatal("fresh state accessors wrong")
	}
	s.place(0)
	if s.Last() != 0 {
		t.Fatal("Last not updated")
	}
}

func TestNilCarryIsLocal(t *testing.T) {
	m := machine.Pipe1()
	dags, _ := buildChain(t, chainBlocks(), m)
	a := newState(dags[0], m, nil)
	applyCarry(a, nil) // must be a no-op
	for _, e := range a.eet {
		if e != 0 {
			t.Fatal("nil carry changed EETs")
		}
	}
}
