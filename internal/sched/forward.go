package sched

import (
	"daginsched/internal/buf"
	"daginsched/internal/dag"
	"daginsched/internal/heur"
	"daginsched/internal/machine"
)

// Forward runs a forward list-scheduling pass: candidates are nodes
// whose parents are all scheduled; the selector ranks them; the chosen
// instruction issues at the earliest cycle its dependences, its
// function unit and the machine's issue width allow.
//
// A block-terminating CTI is pinned last — the effect the paper
// describes as connecting "all true leaves to the block-ending branch
// node to ensure that the branch is the last node to be scheduled",
// implemented here without distorting the DAG's structural statistics.
// The CTI's delay-slot instruction, if the block retains one, stays
// glued after it by the same mechanism.
func Forward(d *dag.DAG, m *machine.Model, a *heur.Annot, sel Selector) *Result {
	s := newState(d, m, a)
	forced := pinnedTail(d)
	if prio := packedPrioFor(s, sel); prio != nil {
		var h readyHeap
		forwardLoopPacked(s, prio, forced, &h, make([]int32, 0, 4))
	} else {
		startBlock(sel, s)
		forwardLoop(s, sel, forced, make([]int32, 0, 16), nil)
	}
	return s.result()
}

// blockStarter is implemented by selectors that precompute per-block
// state (PooledWinnow's static-prefix packing). The scheduling loops
// call it once per block before the first pick.
type blockStarter interface{ StartBlock(s *State) }

//sched:noalloc
func startBlock(sel Selector, s *State) {
	if bs, ok := sel.(blockStarter); ok {
		bs.StartBlock(s)
	}
}

// packedPrioFor reports whether the selector's ranking can be served by
// the precomputed packed priority words: the annotation must have an
// exact packing for this block and the ranking must be exactly the
// packed key list, all in Max direction. When it returns non-nil the
// heap pick loop selects, at every step, the same node the winnowing
// (or exact priority-function) pick would — the packed word *is* the
// ranked lexicographic comparison with the min-index tiebreak.
//
//sched:noalloc
func packedPrioFor(s *State, sel Selector) []uint64 {
	a := s.A
	if a == nil || !a.PrioExact || len(a.PackedPrio) != s.D.Len() {
		return nil
	}
	want := heur.PackedRankingKeys()
	ks := sel.Keys()
	if len(ks) != len(want) {
		return nil
	}
	for i, rk := range ks {
		if rk.Min || rk.Key != want[i] {
			return nil
		}
	}
	return a.PackedPrio
}

// forwardLoopPacked is the packed-priority scheduling core: the ready
// list lives in an indexed max-heap keyed by the precomputed priority
// words, so each pick is O(log candidates) with zero heuristic
// evaluations. Pinned-tail nodes are parked on held and admitted only
// when the heap drains, mirroring forwardLoop's swap semantics exactly.
//
//sched:noalloc
func forwardLoopPacked(s *State, prio []uint64, forcedLast []bool, h *readyHeap, held []int32) []int32 {
	d := s.D
	n := int32(d.Len())
	h.reset(int(n))
	for i := int32(0); i < n; i++ {
		if s.unschedParents[i] == 0 {
			if forcedLast[i] {
				//sched:lint-ignore noalloc amortized: hold-list capacity is retained across blocks by the caller
				held = append(held, i)
			} else {
				h.admitLazy(i, prio[i])
			}
		}
	}
	h.heapify()
	c := s.csr
	packed := c != nil && c.HasPacked()
	for scheduled := int32(0); scheduled < n; scheduled++ {
		if h.len() == 0 {
			// Only pinned-tail nodes remain; release them.
			for _, i := range held {
				h.admitLazy(i, prio[i])
			}
			held = held[:0]
			h.heapify()
		}
		pick := h.pickMax()
		s.place(pick)
		if packed {
			lo, hi := c.SuccSpan(pick)
			pa := c.PackedSuccArcs()
			for _, p := range pa[lo:hi] {
				if to := p.Node(); s.unschedParents[to] == 0 {
					if forcedLast[to] {
						//sched:lint-ignore noalloc amortized: hold-list capacity is retained across blocks by the caller
						held = append(held, to)
					} else {
						h.admit(to, prio[to])
					}
				}
			}
			continue
		}
		for _, arc := range s.succs(pick) {
			if to := arc.To; s.unschedParents[to] == 0 {
				if forcedLast[to] {
					//sched:lint-ignore noalloc amortized: hold-list capacity is retained across blocks by the caller
					held = append(held, to)
				} else {
					h.admit(to, prio[to])
				}
			}
		}
	}
	return held
}

// forwardLoop is the forward list-scheduling core shared by Forward
// and Scratch.Forward. It schedules every node of s.D, drawing the
// candidate list and the pinned-tail hold list from the caller-
// provided buffers, and returns them (possibly regrown) so reusable
// callers can retain the capacity.
//
//sched:noalloc
func forwardLoop(s *State, sel Selector, forcedLast []bool, cands, held []int32) ([]int32, []int32) {
	d := s.D
	n := int32(d.Len())

	// The candidate list is maintained incrementally: a node enters when
	// its last unscheduled parent is placed. Rebuilding it per step
	// would make the scheduling pass quadratic in block size, which the
	// fpppp-sized blocks of Section 6 cannot afford.
	admit := func(i int32) {
		if forcedLast[i] {
			//sched:lint-ignore noalloc amortized: hold-list capacity is retained across blocks by the caller
			held = append(held, i)
		} else {
			//sched:lint-ignore noalloc amortized: candidate-list capacity is retained across blocks by the caller
			cands = append(cands, i)
		}
	}
	for i := int32(0); i < n; i++ {
		if s.unschedParents[i] == 0 {
			admit(i)
		}
	}
	for scheduled := int32(0); scheduled < n; scheduled++ {
		if len(cands) == 0 {
			// Only pinned-tail nodes remain.
			cands, held = held, cands
		}
		pick := sel.Pick(s, cands)
		for k, c := range cands {
			if c == pick {
				cands[k] = cands[len(cands)-1]
				cands = cands[:len(cands)-1]
				break
			}
		}
		s.place(pick)
		for _, arc := range s.succs(pick) {
			if s.unschedParents[arc.To] == 0 {
				admit(arc.To)
			}
		}
	}
	return cands, held
}

// pinnedTail marks the block-terminating CTI so it schedules last. Any
// trailing CTI in the block is pinned; everything else floats.
func pinnedTail(d *dag.DAG) []bool {
	return pinnedTailInto(make([]bool, d.Len()), d)
}

// pinnedTailInto is pinnedTail over a caller-provided (already
// false-filled) buffer of length d.Len().
func pinnedTailInto(pinned []bool, d *dag.DAG) []bool {
	if n := d.Len(); n > 0 && d.Nodes[n-1].Inst.Op.IsCTI() {
		pinned[n-1] = true
	}
	return pinned
}

// Scratch holds reusable scheduling state for the batch engine's hot
// path. Scratch.Forward is Forward with every piece of working storage
// — the State's slices, the candidate lists, the pinned-tail marks and
// the Result itself — recycled across calls, so scheduling a stream of
// same-scale blocks performs no steady-state allocations.
//
// The returned Result is owned by the Scratch and is invalidated by
// the next Forward call (its Order and Issue slices are the recycled
// state). Callers that keep schedules must copy them out. A Scratch is
// not safe for concurrent use; the engine gives each worker its own.
type Scratch struct {
	state       State
	cands, held []int32
	forced      []bool
	heap        readyHeap
	res         Result

	// DisablePacked restores the plain winnowing rescan: neither the
	// packed-priority heap nor the selector's packed static prefix is
	// engaged, so runs reproduce the pre-packing selection loop exactly
	// — the engine's escape hatch and the identity gate's (and the
	// packedsel benchmark's) reference configuration.
	DisablePacked bool
	usedPacked    bool
}

// UsedPacked reports whether the last Forward call selected through the
// packed-priority heap (vs. the winnowing rescan).
func (sc *Scratch) UsedPacked() bool { return sc.usedPacked }

// Forward is the reuse-aware equivalent of the package-level Forward.
// When the selector's ranking matches the block's exact packed priority
// words it dispatches to the heap pick loop; schedules are byte-
// identical on either path.
//
//sched:noalloc
func (sc *Scratch) Forward(d *dag.DAG, m *machine.Model, a *heur.Annot, sel Selector) *Result {
	s := &sc.state
	s.reset(d, m, a)
	sc.forced = pinnedTailInto(buf.Bool(sc.forced, d.Len()), d)
	sc.usedPacked = false
	if !sc.DisablePacked {
		if prio := packedPrioFor(s, sel); prio != nil {
			sc.usedPacked = true
			sc.held = forwardLoopPacked(s, prio, sc.forced, &sc.heap, sc.held[:0])
			s.finish(&sc.res)
			return &sc.res
		}
		startBlock(sel, s)
	}
	if cap(sc.cands) == 0 {
		sc.cands = make([]int32, 0, 16)
	}
	sc.cands, sc.held = forwardLoop(s, sel, sc.forced, sc.cands[:0], sc.held[:0])
	s.finish(&sc.res)
	return &sc.res
}

// place issues node pick at the earliest legal cycle and updates every
// dynamic heuristic input.
//
//sched:noalloc
func (s *State) place(pick int32) {
	in := s.D.Nodes[pick].Inst
	class := in.Class()
	at := s.EffectiveEET(pick)
	if at < s.time {
		at = s.time
	}
	// Issue-width and issue-group constraints within the current cycle.
	group := machine.IssueGroup(class)
	for {
		if at > s.time {
			// Advancing the clock opens a fresh cycle and invalidates the
			// selection memos (EffectiveEET caches outlive same-cycle picks).
			s.time, s.usedSlots, s.usedGroups = at, 0, 0
			s.memoGen++
		}
		if s.usedSlots < s.M.IssueWidth &&
			(s.M.IssueWidth == 1 || s.usedGroups&(1<<group) == 0) {
			break
		}
		at = s.time + 1
	}
	s.usedSlots++
	s.usedGroups |= 1 << group
	s.issue[pick] = at
	s.scheduled[pick] = true
	//sched:lint-ignore noalloc reset pre-sizes order to cap >= n, so n appends never grow it
	s.order = append(s.order, pick)
	s.last = pick
	// Occupy a function unit. Occupation changes what unitFree — and
	// therefore EffectiveEET — returns, so it bumps the memo generation.
	if units := s.unitBusy[class]; len(units) > 0 {
		_, ui := s.unitFree(class)
		units[ui] = at + int32(s.M.UnitBusy(in.Op))
		s.memoGen++
	}
	// Update children: unscheduled-parent counters and earliest
	// execution times. On a frozen DAG this is the scheduler's hottest
	// arc walk and runs over the packed 8-byte successor records —
	// half the memory traffic of the 16-byte arcs. A raised EET makes a
	// child's cached EffectiveEET stale, so its stamp is zeroed (the
	// dirty set is exactly the placed node's successor span).
	if c := s.csr; c != nil && c.HasPacked() {
		lo, hi := c.SuccSpan(pick)
		pa := c.PackedSuccArcs()
		for _, p := range pa[lo:hi] {
			to := p.Node()
			s.unschedParents[to]--
			if t := at + c.Delay(p); t > s.eet[to] {
				s.eet[to] = t
				s.effStamp[to] = 0
			}
		}
		return
	}
	for _, arc := range s.succs(pick) {
		s.unschedParents[arc.To]--
		if t := at + arc.Delay; t > s.eet[arc.To] {
			s.eet[arc.To] = t
			s.effStamp[arc.To] = 0
		}
	}
}

// result finalizes the schedule into a fresh Result.
func (s *State) result() *Result {
	r := new(Result)
	s.finish(r)
	return r
}

// finish fills r with the completed schedule. Order and Issue alias
// the state's slices, so r is only valid until the state's next reset.
func (s *State) finish(r *Result) {
	r.Order, r.Issue, r.Cycles = s.order, s.issue, 0
	for i, in := range s.D.Nodes {
		if s.issue[i] < 0 {
			continue
		}
		if fin := s.issue[i] + int32(s.M.Latency(in.Inst.Op)); fin > r.Cycles {
			r.Cycles = fin
		}
	}
}

// Backward runs a backward list-scheduling pass (Tiemann, Schlansker):
// candidates are nodes whose children are all scheduled; the selector
// ranks them; the resulting reverse order is then timed with one
// forward placement pass so Result carries real issue cycles.
func Backward(d *dag.DAG, m *machine.Model, a *heur.Annot, sel Selector) *Result {
	s := newState(d, m, a)
	startBlock(sel, s)
	n := int32(d.Len())
	rev := make([]int32, 0, n)
	picked := make([]bool, n)
	// Pin the trailing CTI first so it lands last in program order.
	if n > 0 && d.Nodes[n-1].Inst.Op.IsCTI() {
		rev = append(rev, n-1)
		picked[n-1] = true
		s.last = n - 1
		for _, arc := range s.preds(n - 1) {
			s.unschedKids[arc.From]--
		}
	}
	cands := make([]int32, 0, 16)
	for i := int32(0); i < n; i++ {
		if !picked[i] && s.unschedKids[i] == 0 {
			cands = append(cands, i)
		}
	}
	for int32(len(rev)) < n {
		pick := sel.Pick(s, cands)
		for k, c := range cands {
			if c == pick {
				cands[k] = cands[len(cands)-1]
				cands = cands[:len(cands)-1]
				break
			}
		}
		picked[pick] = true
		rev = append(rev, pick)
		s.last = pick
		for _, arc := range s.preds(pick) {
			if s.unschedKids[arc.From]--; s.unschedKids[arc.From] == 0 {
				cands = append(cands, arc.From)
			}
		}
	}
	order := make([]int32, n)
	for i, node := range rev {
		order[n-1-int32(i)] = node
	}
	return Timed(d, m, order)
}

// Timed places an already-ordered instruction sequence on the machine's
// issue model and returns the timing. It is also the evaluator the
// post-pass fixup and the tests use to score schedules.
func Timed(d *dag.DAG, m *machine.Model, order []int32) *Result {
	s := newState(d, m, nil)
	for _, i := range order {
		s.place(i)
	}
	return s.result()
}

// InOrder returns the timing of the block's original instruction order —
// the baseline every scheduling algorithm is compared against.
func InOrder(d *dag.DAG, m *machine.Model) *Result {
	order := make([]int32, d.Len())
	for i := range order {
		order[i] = int32(i)
	}
	return Timed(d, m, order)
}

// Legal reports whether a schedule respects every DAG arc's ordering
// (parents before children in Order) and covers each node exactly once.
func Legal(d *dag.DAG, r *Result) bool {
	if len(r.Order) != d.Len() {
		return false
	}
	pos := make([]int32, d.Len())
	seen := make([]bool, d.Len())
	for p, node := range r.Order {
		if node < 0 || int(node) >= d.Len() || seen[node] {
			return false
		}
		seen[node] = true
		pos[node] = int32(p)
	}
	for i := range d.Nodes {
		for _, arc := range d.Nodes[i].Succs {
			if pos[arc.From] >= pos[arc.To] {
				return false
			}
		}
	}
	return true
}

// CTILast reports whether the block-ending CTI (if any) stays last.
func CTILast(d *dag.DAG, r *Result) bool {
	n := d.Len()
	if n == 0 || !d.Nodes[n-1].Inst.Op.IsCTI() {
		return true
	}
	return len(r.Order) == n && r.Order[n-1] == int32(n-1)
}
