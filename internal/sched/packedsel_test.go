package sched

import (
	"math/rand"
	"testing"

	"daginsched/internal/dag"
	"daginsched/internal/heur"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/testgen"
)

// noFastPath hides a selector's ranking (Keys() == nil) and implements
// no block-start hook, so every fast path — the packed-priority heap,
// the static-prefix pre-winnow — is suppressed and picks run the plain
// winnowing rescan. It is the reference arm of the differential tests.
type noFastPath struct{ sel Selector }

func (n noFastPath) Pick(s *State, cands []int32) int32 { return n.sel.Pick(s, cands) }
func (n noFastPath) Keys() []RankedKey                  { return nil }

// packedSelInsts builds a test block; every other seed gets a trailing
// branch so the pinned-tail hold list is exercised on both pick loops.
func packedSelInsts(seed int64, n int) []isa.Inst {
	insts := testgen.Block(seed, n)
	if seed%2 == 0 {
		insts = append(insts, isa.Branch(isa.BA, "out"))
		for i := range insts {
			insts[i].Index = i
		}
	}
	return insts
}

func sameSchedule(t *testing.T, ctx string, got, want *Result) {
	t.Helper()
	if len(got.Order) != len(want.Order) || got.Cycles != want.Cycles {
		t.Fatalf("%s: schedule shape diverges: %d nodes/%d cycles vs %d/%d",
			ctx, len(got.Order), got.Cycles, len(want.Order), want.Cycles)
	}
	for i := range want.Order {
		if got.Order[i] != want.Order[i] {
			t.Fatalf("%s: Order[%d] = %d, want %d (got %v want %v)",
				ctx, i, got.Order[i], want.Order[i], got.Order, want.Order)
		}
	}
	for i := range want.Issue {
		if got.Issue[i] != want.Issue[i] {
			t.Fatalf("%s: Issue[%d] = %d, want %d", ctx, i, got.Issue[i], want.Issue[i])
		}
	}
}

// TestPackedSelMatchesWinnowSection6 is the tentpole identity property:
// on the engine's default Section 6 ranking, the packed-priority heap
// pick loop and the static-prefix pre-winnow both produce schedules
// byte-identical to the plain winnowing rescan, across block sizes,
// machine models and pinned-tail shapes.
func TestPackedSelMatchesWinnowSection6(t *testing.T) {
	models := []*machine.Model{machine.Pipe1(), machine.FPU(), machine.Asym(), machine.Super2()}
	// Section 6 plus a fourth static key: eligible for the packed static
	// prefix but not the heap (the ranking no longer matches the packed
	// priority word), so the prefix arm is exercised in isolation.
	prefixRanked := append(Section6Ranked(), RankedKey{Key: heur.ExecTime})
	var heapSc, prefixSc Scratch
	for seed := int64(0); seed < 12; seed++ {
		for _, n := range []int{1, 2, 7, 40, 150} {
			insts := packedSelInsts(seed, n)
			for _, m := range models {
				d := buildDAG(t, dag.TableBackward{}, m, insts)
				d.Freeze()
				a := heur.New(d, m)
				a.ComputeFusedCSR()
				if !a.PrioExact {
					t.Fatalf("seed %d n %d: fused sweep left no exact packing", seed, n)
				}
				ref := Forward(d, m, a, noFastPath{Winnow(Section6Ranked())})
				hr := heapSc.Forward(d, m, a, NewPooledWinnow(Section6Ranked()))
				if !heapSc.UsedPacked() {
					t.Fatalf("seed %d n %d %s: heap path not taken", seed, n, m.Name)
				}
				sameSchedule(t, "heap vs winnow", hr, ref)
				prefRef := Forward(d, m, a, noFastPath{Winnow(prefixRanked)})
				pr := prefixSc.Forward(d, m, a, NewPooledWinnow(prefixRanked))
				if prefixSc.UsedPacked() {
					t.Fatal("prefix-only ranking took the heap path")
				}
				sameSchedule(t, "prefix vs winnow", pr, prefRef)
				// The package-level Forward must auto-select the heap path
				// and still match.
				sameSchedule(t, "auto vs winnow", Forward(d, m, a, Winnow(Section6Ranked())), ref)
			}
		}
	}
}

// TestPackedSelMatchesWinnowTable2 runs every Table 2 ranking in its
// published direction, comparing the pooled fast paths (static-prefix
// pre-winnow, memoized state) against the plain winnowing rescan.
func TestPackedSelMatchesWinnowTable2(t *testing.T) {
	m := machine.Pipe1()
	for _, al := range Table2() {
		for seed := int64(0); seed < 8; seed++ {
			insts := packedSelInsts(seed, 35)
			d := buildDAG(t, al.Builder(), m, insts)
			d.Freeze()
			a := heur.New(d, m)
			prepareAnnot(a, al.Ranked)
			run := func(sel Selector) *Result {
				if al.SchedDir == dag.Backward {
					return Backward(d, m, a, sel)
				}
				return Forward(d, m, a, sel)
			}
			ref := run(noFastPath{Winnow(al.Ranked)})
			sameSchedule(t, al.Name, run(NewPooledWinnow(al.Ranked)), ref)
		}
	}
}

// TestPackedPrioForGating pins when the heap path may engage: only an
// exact packing with the exact packed ranking, all Max direction.
func TestPackedPrioForGating(t *testing.T) {
	m := machine.Pipe1()
	d := buildDAG(t, dag.TableBackward{}, m, testgen.Block(3, 25))
	d.Freeze()
	a := heur.New(d, m)
	a.ComputeFusedCSR()
	s := newState(d, m, a)
	if packedPrioFor(s, Winnow(Section6Ranked())) == nil {
		t.Fatal("exact packing with the packed ranking rejected")
	}
	if packedPrioFor(s, noFastPath{Winnow(Section6Ranked())}) != nil {
		t.Fatal("hidden ranking accepted")
	}
	wrongDir := Section6Ranked()
	wrongDir[1].Min = true
	if packedPrioFor(s, Winnow(wrongDir)) != nil {
		t.Fatal("Min-direction key accepted")
	}
	if packedPrioFor(s, Winnow(Section6Ranked()[:2])) != nil {
		t.Fatal("truncated ranking accepted")
	}
	a.PrioExact = false
	if packedPrioFor(s, Winnow(Section6Ranked())) != nil {
		t.Fatal("inexact packing accepted")
	}
	sNoA := newState(d, m, nil)
	if packedPrioFor(sNoA, Winnow(Section6Ranked())) != nil {
		t.Fatal("nil annotation accepted")
	}
}

// TestReadyHeapProperty drives the indexed heap through a random
// admit/remove/pick sequence against a naive linear-scan reference.
func TestReadyHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 200
	var h readyHeap
	for round := 0; round < 20; round++ {
		h.reset(n)
		ref := map[int32]uint64{}
		key := func(i int32) uint64 {
			// Deliberately collide high bits; low bits keep words unique.
			return uint64(rng.Intn(8))<<32 | uint64(n-i)
		}
		for step := 0; step < 600; step++ {
			switch op := rng.Intn(4); {
			case op == 0 || len(ref) == 0: // admit a node not present
				i := int32(rng.Intn(n))
				if _, ok := ref[i]; ok {
					continue
				}
				k := key(i)
				ref[i] = k
				h.admit(i, k)
			case op == 1: // remove an arbitrary present node
				for i := range ref {
					h.remove(i)
					delete(ref, i)
					break
				}
			case op == 2: // rekey an arbitrary present node
				for i := range ref {
					k := key(i)
					ref[i] = k
					h.rekey(i, k)
					break
				}
			default: // pickMax must equal the reference max
				var want int32 = -1
				var wantK uint64
				for i, k := range ref {
					if want < 0 || k > wantK {
						want, wantK = i, k
					}
				}
				if got := h.pickMax(); got != want {
					t.Fatalf("round %d step %d: pickMax = %d, want %d", round, step, got, want)
				}
				delete(ref, want)
			}
			if h.len() != len(ref) {
				t.Fatalf("round %d step %d: heap len %d, reference %d", round, step, h.len(), len(ref))
			}
		}
		// Drain: picks must come out in strictly descending key order.
		var last uint64
		for first := true; h.len() > 0; first = false {
			i := h.pickMax()
			k := ref[i]
			if !first && k >= last {
				t.Fatalf("drain out of order: %d after %d", k, last)
			}
			last = k
			delete(ref, i)
		}
	}
}

// TestScratchForwardPackedZeroAlloc pins the steady-state guarantee on
// the heap pick loop, and TestScratchForwardPrefixZeroAlloc the same
// for the static-prefix winnow.
func TestScratchForwardPackedZeroAlloc(t *testing.T) {
	m := machine.Pipe1()
	d := buildDAG(t, dag.TableBackward{}, m, packedSelInsts(4, 120))
	d.Freeze()
	a := heur.New(d, m)
	a.ComputeFusedCSR()
	var sc Scratch
	sel := NewPooledWinnow(Section6Ranked())
	sc.Forward(d, m, a, sel) // warm the scratch capacity
	if !sc.UsedPacked() {
		t.Fatal("heap path not taken")
	}
	if allocs := testing.AllocsPerRun(20, func() {
		sc.Forward(d, m, a, sel)
	}); allocs != 0 {
		t.Errorf("packed Forward allocates %.1f/op, want 0", allocs)
	}
}

func TestScratchForwardPrefixZeroAlloc(t *testing.T) {
	m := machine.Pipe1()
	d := buildDAG(t, dag.TableBackward{}, m, packedSelInsts(4, 120))
	d.Freeze()
	a := heur.New(d, m)
	a.ComputeFusedCSR()
	var sc Scratch
	// Four static keys: prefix-eligible, heap-ineligible (see the
	// Section 6 identity test).
	sel := NewPooledWinnow(append(Section6Ranked(), RankedKey{Key: heur.ExecTime}))
	sc.Forward(d, m, a, sel)
	if sc.UsedPacked() {
		t.Fatal("prefix-only ranking took the heap path")
	}
	if allocs := testing.AllocsPerRun(20, func() {
		sc.Forward(d, m, a, sel)
	}); allocs != 0 {
		t.Errorf("prefix Forward allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkForwardPackedSel measures the packed-priority heap loop
// against the winnowing rescan it replaces, on the engine's default
// ranking.
func BenchmarkForwardPackedSel(b *testing.B) {
	m := machine.Pipe1()
	insts := testgen.Block(4242, 300)
	d := buildDAG(b, dag.TableBackward{}, m, insts)
	d.Freeze()
	a := heur.New(d, m)
	a.ComputeFusedCSR()
	sel := NewPooledWinnow(Section6Ranked())
	b.Run("heap", func(b *testing.B) {
		var sc Scratch
		sc.Forward(d, m, a, sel)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sc.Forward(d, m, a, sel)
		}
	})
	b.Run("winnow", func(b *testing.B) {
		sc := Scratch{DisablePacked: true}
		ref := noFastPath{Winnow(Section6Ranked())}
		sc.Forward(d, m, a, ref)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sc.Forward(d, m, a, ref)
		}
	})
}
