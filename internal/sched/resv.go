package sched

import (
	"daginsched/internal/dag"
	"daginsched/internal/heur"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
)

// ReservationTable is the explicit busy-cycle table of Section 1's
// "more refined form of scheduling": one row per function unit, one
// column per cycle, growable in time.
type ReservationTable struct {
	m *machine.Model
	// busy[class][unit] is a growable bit-vector over cycles.
	busy [isa.NumClasses][][]bool
}

// NewReservationTable returns an empty table for machine m.
func NewReservationTable(m *machine.Model) *ReservationTable {
	rt := &ReservationTable{m: m}
	for c := 0; c < isa.NumClasses; c++ {
		rt.busy[c] = make([][]bool, m.ResvUnits(isa.Class(c)))
	}
	return rt
}

// place marks pattern's cycles busy at time t.
func (rt *ReservationTable) place(pattern []machine.StageUse, unitPick []int, t int) {
	for si, st := range pattern {
		row := rt.busy[st.Unit][unitPick[si]]
		end := t + st.Start + st.Len
		for len(row) < end {
			row = append(row, false)
		}
		for k := 0; k < st.Len; k++ {
			row[t+st.Start+k] = true
		}
		rt.busy[st.Unit][unitPick[si]] = row
	}
}

// TryPlace finds the earliest cycle >= from where op's pattern fits
// (trying each unit combination greedily per stage), places it, and
// returns the chosen cycle.
func (rt *ReservationTable) TryPlace(op isa.Opcode, from int) int {
	pattern := rt.m.Pattern(op)
	pick := make([]int, len(pattern))
	for t := from; ; t++ {
		if rt.pickUnits(pattern, pick, t, 0) {
			rt.place(pattern, pick, t)
			return t
		}
	}
}

// pickUnits searches unit assignments for every stage at cycle t.
// Pattern lengths are tiny (1–2 stages), so the recursion is shallow.
func (rt *ReservationTable) pickUnits(pattern []machine.StageUse, pick []int, t, si int) bool {
	if si == len(pattern) {
		return true
	}
	st := pattern[si]
	for u := range rt.busy[st.Unit] {
		pick[si] = u
		// Check only this stage here; earlier stages already verified.
		row := rt.busy[st.Unit][u]
		ok := true
		for k := 0; k < st.Len; k++ {
			cyc := t + st.Start + k
			if cyc < len(row) && row[cyc] {
				ok = false
				break
			}
		}
		if ok && rt.pickUnits(pattern, pick, t, si+1) {
			return true
		}
	}
	return false
}

// Reservation schedules a DAG with the reservation-table method: the
// candidate list is ranked by the given selector ("always inserts the
// 'highest priority' instruction"), and the chosen instruction goes
// into "the earliest empty slots of the table" at or after its
// dependence-ready time. Placement times need not be monotone — later
// picks may backfill earlier empty slots — so the resulting Order is
// the placement-time sort, suitable for a VLIW/microcode-style target.
func Reservation(d *dag.DAG, m *machine.Model, a *heur.Annot, sel Selector) *Result {
	n := d.Len()
	s := newState(d, m, a) // reuse EET bookkeeping and selector state
	table := NewReservationTable(m)
	pinned := pinnedTail(d)

	cands := make([]int32, 0, 16)
	var held []int32
	admit := func(i int32) {
		if pinned[i] {
			held = append(held, i)
		} else {
			cands = append(cands, i)
		}
	}
	for i := 0; i < n; i++ {
		if s.unschedParents[i] == 0 {
			admit(int32(i))
		}
	}
	type placed struct {
		node int32
		at   int32
	}
	order := make([]placed, 0, n)
	var maxAt int32 = -1
	for len(order) < n {
		if len(cands) == 0 {
			cands, held = held, cands
		}
		pick := sel.Pick(s, cands)
		for k, c := range cands {
			if c == pick {
				cands[k] = cands[len(cands)-1]
				cands = cands[:len(cands)-1]
				break
			}
		}
		from := s.eet[pick]
		if pinned[pick] && maxAt+1 > from {
			from = maxAt + 1 // the block-ending CTI stays last in time
		}
		at := int32(table.TryPlace(d.Nodes[pick].Inst.Op, int(from)))
		if at > maxAt {
			maxAt = at
		}
		s.scheduled[pick] = true
		s.issue[pick] = at
		s.last = pick
		order = append(order, placed{pick, at})
		for _, arc := range d.Nodes[pick].Succs {
			s.unschedParents[arc.To]--
			if t := at + arc.Delay; t > s.eet[arc.To] {
				s.eet[arc.To] = t
			}
			if s.unschedParents[arc.To] == 0 {
				admit(arc.To)
			}
		}
	}
	// Sort by placement time (stable on node index) to form the order.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && (order[j].at < order[j-1].at ||
			(order[j].at == order[j-1].at && order[j].node < order[j-1].node)); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	r := &Result{Order: make([]int32, n), Issue: s.issue}
	for i, p := range order {
		r.Order[i] = p.node
	}
	for i := range d.Nodes {
		if fin := s.issue[i] + int32(m.Latency(d.Nodes[i].Inst.Op)); fin > r.Cycles {
			r.Cycles = fin
		}
	}
	return r
}

// ReservationDefault runs Reservation with the Section 6 heuristic
// order (max path/delay to leaf), the natural pairing for a
// reservation-table scheduler.
func ReservationDefault(d *dag.DAG, m *machine.Model) *Result {
	a := heur.New(d, m)
	a.ComputeBackward()
	a.ComputeLocal()
	return Reservation(d, m, a, Winnow([]RankedKey{
		{Key: heur.MaxDelayToLeaf},
		{Key: heur.MaxPathToLeaf},
		{Key: heur.DelaysToChildren},
	}))
}
