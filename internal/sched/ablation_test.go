package sched

import (
	"testing"

	"daginsched/internal/dag"
	"daginsched/internal/heur"
	"daginsched/internal/machine"
	"daginsched/internal/testgen"
)

// totalCycles schedules many random blocks with one algorithm and sums
// the resulting makespans.
func totalCycles(t *testing.T, al *Algorithm, m *machine.Model, seeds, size int) int64 {
	t.Helper()
	var total int64
	for seed := 0; seed < seeds; seed++ {
		insts := testgen.Block(int64(seed), size)
		d := buildDAG(t, al.Builder(), m, insts)
		r := al.Run(d, m)
		if !Legal(d, r) {
			t.Fatalf("%s seed %d: illegal", al.Name, seed)
		}
		total += int64(r.Cycles)
	}
	return total
}

// TestShiehRank5Omittable verifies Section 5's remark: "the use of
// minimum path to a root in Shieh and Papachristou could possibly be
// omitted or replaced with little effect because it is the last
// heuristic to be applied."
func TestShiehRank5Omittable(t *testing.T) {
	m := machine.Pipe1()
	full := ShiehPapachristou()
	trimmed := ShiehPapachristou()
	trimmed.Name = "shieh-no-rank5"
	trimmed.Ranked = trimmed.Ranked[:4]

	a := totalCycles(t, full, m, 60, 25)
	b := totalCycles(t, trimmed, m, 60, 25)
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	// "Little effect": within 2% aggregate cycles.
	if diff*50 > a {
		t.Errorf("omitting rank 5 changed cycles by %d of %d (> 2%%)", diff, a)
	}
}

// TestEETSubsumesInterlockWithPrev verifies Section 3's claim about the
// interlock-with-previous-instruction heuristic: "This is an expensive
// heuristic, and its function is much better performed by earliest
// execution time." Swapping EET into Gibbons & Muchnick's rank 1 must
// not lose in aggregate.
func TestEETSubsumesInterlockWithPrev(t *testing.T) {
	m := machine.Pipe1()
	gm := GibbonsMuchnick()
	eetGM := GibbonsMuchnick()
	eetGM.Name = "gm-eet"
	eetGM.Ranked = append([]RankedKey{{Key: heur.EarliestExecTime, Min: true}},
		eetGM.Ranked[1:]...)

	interlock := totalCycles(t, gm, m, 60, 25)
	eet := totalCycles(t, eetGM, m, 60, 25)
	if eet > interlock {
		t.Errorf("EET variant (%d cycles) lost to interlock variant (%d)", eet, interlock)
	}
}

// TestUncoveredBeatsChildrenAsEstimate verifies Table 1's discussion:
// #uncovered children "measures exactly how many nodes will be added to
// the candidate list", while #children is "inaccurate" and
// #single-parent children in between. We validate the accuracy ordering
// directly against ground truth at each scheduling step.
func TestUncoveredBeatsChildrenAsEstimate(t *testing.T) {
	m := machine.Pipe1()
	var errChildren, errSingle, errUncovered int64
	for seed := int64(0); seed < 30; seed++ {
		insts := testgen.Block(seed, 20)
		d := buildDAG(t, dag.TableForward{}, m, insts)
		a := heur.New(d, m)
		a.ComputeLocal()
		s := newState(d, m, a)
		for picked := 0; picked < d.Len(); picked++ {
			// Find any ready node; measure all three estimates on it.
			var pick int32 = -1
			for i := 0; i < d.Len(); i++ {
				if !s.scheduled[i] && s.unschedParents[i] == 0 {
					pick = int32(i)
					break
				}
			}
			if pick < 0 {
				t.Fatal("no ready node")
			}
			nc := int64(d.Nodes[pick].NumChildren())
			sp := int64(s.NumSingleParentChildren(pick))
			uc := int64(s.NumUncoveredChildren(pick))
			// Ground truth: children that become immediately issuable
			// (all parents scheduled and delay-1 arrival) after placing.
			var truth int64
			for _, arc := range d.Nodes[pick].Succs {
				if s.unschedParents[arc.To] == 1 && arc.Delay == 1 {
					truth++
				}
			}
			abs := func(v int64) int64 {
				if v < 0 {
					return -v
				}
				return v
			}
			errChildren += abs(nc - truth)
			errSingle += abs(sp - truth)
			errUncovered += abs(uc - truth)
			s.place(pick)
		}
	}
	if errUncovered != 0 {
		t.Errorf("#uncovered children should be exact, error %d", errUncovered)
	}
	if errSingle > errChildren {
		t.Errorf("#single-parent (%d) should beat #children (%d)", errSingle, errChildren)
	}
	if errChildren == 0 {
		t.Error("test vacuous: #children never wrong on these blocks")
	}
}

// TestPostpassFixupHelpsKrishnamurthy quantifies the Table 2 post-pass:
// across many blocks it must help at least sometimes and never hurt.
func TestPostpassFixupHelpsKrishnamurthy(t *testing.T) {
	m := machine.Pipe1()
	with := Krishnamurthy()
	without := Krishnamurthy()
	without.Name = "krishnamurthy-nofix"
	without.Postpass = false
	a := totalCycles(t, with, m, 60, 25)
	b := totalCycles(t, without, m, 60, 25)
	if a > b {
		t.Errorf("post-pass fixup hurt: %d vs %d", a, b)
	}
}
