package sched

import (
	"testing"

	"daginsched/internal/dag"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/testgen"
)

func TestReservationTablePlacement(t *testing.T) {
	m := machine.FPU()
	rt := NewReservationTable(m)
	// Two divides on the single non-pipelined divider serialize.
	if at := rt.TryPlace(isa.FDIVD, 0); at != 0 {
		t.Fatalf("first divide at %d", at)
	}
	if at := rt.TryPlace(isa.FDIVD, 0); at != 20 {
		t.Fatalf("second divide at %d, want 20", at)
	}
	// An FP add uses the (free) adder: placeable immediately.
	if at := rt.TryPlace(isa.FADDD, 0); at != 0 {
		t.Fatalf("add at %d, want 0 (separate unit)", at)
	}
}

func TestReservationMemoryHoldsAGenSlot(t *testing.T) {
	m := machine.Pipe1()
	rt := NewReservationTable(m)
	// A load holds the load unit and the integer AGen slot at cycle 0.
	if at := rt.TryPlace(isa.LD, 0); at != 0 {
		t.Fatalf("load at %d", at)
	}
	// An integer op now conflicts on the IU row at cycle 0.
	if at := rt.TryPlace(isa.ADD, 0); at != 1 {
		t.Fatalf("add at %d, want 1 (IU row busy)", at)
	}
}

func TestReservationBackfills(t *testing.T) {
	// Critical-path-first ranking places the long chain, then backfills
	// the independent mov into a cycle before the last placement.
	insts := []isa.Inst{
		isa.Fp3(isa.FDIVS, isa.F(1), isa.F(2), isa.F(3)),
		isa.Fp3(isa.FADDS, isa.F(3), isa.F(2), isa.F(4)),
		isa.MovI(7, isa.O0),
	}
	m := machine.Pipe1()
	d := buildDAG(t, dag.TableForward{}, m, insts)
	r := ReservationDefault(d, m)
	if !Legal(d, r) {
		t.Fatalf("illegal reservation schedule: %v", r.Order)
	}
	if r.Issue[2] >= r.Issue[1] {
		t.Errorf("mov should backfill before the dependent add: issues %v", r.Issue)
	}
	// div issues at 0 (20 cycles), add becomes ready at 20 and finishes
	// at 24; the backfilled mov adds nothing to the makespan.
	if r.Cycles != 24 {
		t.Errorf("cycles = %d, want 24", r.Cycles)
	}
}

func TestReservationLegalOnRandomBlocks(t *testing.T) {
	models := []*machine.Model{machine.Pipe1(), machine.FPU()}
	for seed := int64(0); seed < 20; seed++ {
		insts := testgen.Block(seed, 25)
		for _, m := range models {
			d := buildDAG(t, dag.TableForward{}, m, insts)
			r := ReservationDefault(d, m)
			if !Legal(d, r) {
				t.Fatalf("seed %d on %s: illegal schedule", seed, m.Name)
			}
			if len(r.Order) != d.Len() {
				t.Fatalf("seed %d: wrong order length", seed)
			}
		}
	}
}

func TestReservationRespectsArcDelays(t *testing.T) {
	for seed := int64(30); seed < 45; seed++ {
		insts := testgen.Block(seed, 20)
		m := machine.FPU()
		d := buildDAG(t, dag.TableForward{}, m, insts)
		r := ReservationDefault(d, m)
		for i := range d.Nodes {
			for _, arc := range d.Nodes[i].Succs {
				if r.Issue[arc.To] < r.Issue[arc.From]+arc.Delay {
					t.Fatalf("seed %d: arc %d->%d delay %d violated: issues %d, %d",
						seed, arc.From, arc.To, arc.Delay,
						r.Issue[arc.From], r.Issue[arc.To])
				}
			}
		}
	}
}

func TestReservationCTIStaysLast(t *testing.T) {
	insts := append(testgen.Block(5, 10),
		isa.CmpI(isa.O0, 0), isa.Branch(isa.BNE, "L"))
	for i := range insts {
		insts[i].Index = i
	}
	m := machine.Pipe1()
	d := buildDAG(t, dag.TableForward{}, m, insts)
	r := ReservationDefault(d, m)
	if !CTILast(d, r) {
		t.Fatalf("CTI not last: %v", r.Order)
	}
	last := r.Order[len(r.Order)-1]
	for i := range d.Nodes {
		if int32(i) != last && r.Issue[i] >= r.Issue[last] {
			t.Fatalf("node %d placed at/after the CTI: %v", i, r.Issue)
		}
	}
}

func TestReservationNeverWorseThanInOrderOnFPU(t *testing.T) {
	// Structural hazards are where reservation tables earn their keep:
	// the pattern matcher finds free slots an in-order issue would idle
	// through.
	worse := 0
	for seed := int64(100); seed < 130; seed++ {
		insts := testgen.Block(seed, 25)
		m := machine.FPU()
		d := buildDAG(t, dag.TableForward{}, m, insts)
		r := ReservationDefault(d, m)
		base := InOrder(d, m)
		if r.Cycles > base.Cycles {
			worse++
		}
	}
	if worse > 3 {
		t.Errorf("reservation scheduling lost to program order on %d/30 blocks", worse)
	}
}

func TestReservationEmptyBlock(t *testing.T) {
	m := machine.Pipe1()
	d := buildDAG(t, dag.TableForward{}, m, nil)
	if r := ReservationDefault(d, m); len(r.Order) != 0 || r.Cycles != 0 {
		t.Error("empty block mishandled")
	}
}
