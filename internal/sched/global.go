package sched

import (
	"daginsched/internal/dag"
	"daginsched/internal/heur"
	"daginsched/internal/isa"
	"daginsched/internal/machine"
	"daginsched/internal/resource"
)

// Carry is the global scheduling information of the paper's third
// future-work item: "operation latencies inherited from immediately
// preceding blocks". Section 2 describes the mechanism as pseudo-nodes
// and arcs; here the same constraint is carried as per-register ready
// times, expressed in cycles after the successor block's first issue
// slot. Only the fixed register resources transfer — memory-expression
// IDs are per-block — which matches what dominates cross-block stalls
// (a load or divide issued just before a branch).
type Carry struct {
	// Ready[r] is the earliest cycle (relative to the next block's
	// cycle 0) at which register resource r's value is available.
	Ready [resource.NumFixed]int32
	// Busy[c] is the remaining busy time of class c's function units,
	// for non-pipelined units straddling the block boundary.
	Busy [isa.NumClasses]int32
}

// CarryOut derives the carry from a scheduled block: for every register
// defined in the block, how far past the block's last issue cycle its
// value lands, and how long each bounded function unit stays busy.
func CarryOut(d *dag.DAG, m *machine.Model, r *Result) *Carry {
	c := &Carry{}
	if len(r.Order) == 0 {
		return c
	}
	var lastIssue int32
	for _, t := range r.Issue {
		if t > lastIssue {
			lastIssue = t
		}
	}
	base := lastIssue + 1 // the successor block's cycle 0
	var defs []isa.ResRef
	for i := range d.Nodes {
		in := d.Nodes[i].Inst
		defs = in.AppendDefs(defs[:0])
		for _, def := range defs {
			if def.Kind == isa.RMem {
				continue
			}
			lat := int32(m.Latency(in.Op))
			if in.PairSecondDef(def) {
				lat += int32(m.PairSkew)
			}
			if ready := r.Issue[i] + lat - base; ready > c.Ready[def.Reg] {
				c.Ready[def.Reg] = ready
			}
		}
		if cls := in.Class(); m.Units[cls] > 0 {
			if busy := r.Issue[i] + int32(m.UnitBusy(in.Op)) - base; busy > c.Busy[cls] {
				c.Busy[cls] = busy
			}
		}
	}
	return c
}

// applyCarry seeds a fresh scheduling state with inherited latencies:
// every node consuming (or overwriting) a carried register cannot issue
// before its value arrives, and busy function units stay occupied.
func applyCarry(s *State, carry *Carry) {
	if carry == nil {
		return
	}
	var refs []isa.ResRef
	for i := range s.D.Nodes {
		in := s.D.Nodes[i].Inst
		lb := int32(0)
		refs = in.AppendUses(refs[:0])
		refs = in.AppendDefs(refs)
		for _, ref := range refs {
			if ref.Kind != isa.RMem && carry.Ready[ref.Reg] > lb {
				lb = carry.Ready[ref.Reg]
			}
		}
		if lb > s.eet[i] {
			s.eet[i] = lb
		}
	}
	for c := 0; c < isa.NumClasses; c++ {
		for u := range s.unitBusy[c] {
			if carry.Busy[c] > s.unitBusy[c][u] {
				s.unitBusy[c][u] = carry.Busy[c]
			}
		}
	}
}

// ForwardWithCarry is Forward extended with inherited latencies: the
// purely local scheduler would happily issue a dependent instruction in
// the first cycle of a block even though the previous block's divide is
// still in flight; the carry makes that cost visible so the selector
// can cover it.
func ForwardWithCarry(d *dag.DAG, m *machine.Model, a *heur.Annot, sel Selector, carry *Carry) *Result {
	s := newState(d, m, a)
	applyCarry(s, carry)
	n := int32(d.Len())
	forcedLast := pinnedTail(d)
	cands := make([]int32, 0, 16)
	var held []int32
	admit := func(i int32) {
		if forcedLast[i] {
			held = append(held, i)
		} else {
			cands = append(cands, i)
		}
	}
	for i := int32(0); i < n; i++ {
		if s.unschedParents[i] == 0 {
			admit(i)
		}
	}
	for scheduled := int32(0); scheduled < n; scheduled++ {
		if len(cands) == 0 {
			cands, held = held, cands
		}
		pick := sel.Pick(s, cands)
		for k, c := range cands {
			if c == pick {
				cands[k] = cands[len(cands)-1]
				cands = cands[:len(cands)-1]
				break
			}
		}
		s.place(pick)
		for _, arc := range d.Nodes[pick].Succs {
			if s.unschedParents[arc.To] == 0 {
				admit(arc.To)
			}
		}
	}
	return s.result()
}

// Join merges carries from multiple control-flow predecessors: each
// register's ready time is the maximum over the incoming carries (the
// conservative answer when the runtime path is unknown). A nil operand
// represents a predecessor with no information and joins as all-zero.
func Join(cs ...*Carry) *Carry {
	out := &Carry{}
	for _, c := range cs {
		if c == nil {
			continue
		}
		for r, v := range c.Ready {
			if v > out.Ready[r] {
				out.Ready[r] = v
			}
		}
		for k, v := range c.Busy {
			if v > out.Busy[k] {
				out.Busy[k] = v
			}
		}
	}
	return out
}

// RunWithCarry runs the algorithm with inherited latencies seeded into
// the initial earliest-execution-times. Only forward sequential
// algorithms can exploit the carry; backward and time-indexed ones fall
// back to Run (their published formulations have no entry point for
// it), which is safe because carries affect schedule quality only.
func (al *Algorithm) RunWithCarry(d *dag.DAG, m *machine.Model, carry *Carry) *Result {
	if al.SchedDir != dag.Forward || al.TimeIndexed {
		return al.Run(d, m)
	}
	a := heur.New(d, m)
	prepareAnnot(a, al.Ranked)
	r := ForwardWithCarry(d, m, a, al.Selector(), carry)
	if al.Postpass {
		r = Fixup(d, m, r)
	}
	return r
}

// ScheduleChain schedules a sequence of blocks with (global=true) or
// without (global=false) latency inheritance, threading each block's
// carry into the next, and returns the per-block results. The selector
// runs with earliest-execution-time at rank 1, the configuration where
// inherited latencies pay off.
func ScheduleChain(dags []*dag.DAG, m *machine.Model, global bool) []*Result {
	sel := Priority([]RankedKey{
		{Key: heur.EarliestExecTime, Min: true},
		{Key: heur.MaxDelayToLeaf},
	})
	out := make([]*Result, len(dags))
	var carry *Carry
	for i, d := range dags {
		a := heur.New(d, m)
		a.ComputeBackward()
		if global {
			out[i] = ForwardWithCarry(d, m, a, sel, carry)
			carry = CarryOut(d, m, out[i])
		} else {
			out[i] = Forward(d, m, a, sel)
		}
	}
	return out
}
